# Core benchmarks tracked across PRs: the precompute grid (allocations per
# replay are the dense-engine target figure), the cluster-space build
# (packed/slice keys across worker counts), the per-replay sweep unit, the
# single-run algorithms, and the Delta-Judgment ablation.
BENCH_ROOT    := BenchmarkFig7PrecomputeKParallel|BenchmarkFig6VaryD|BenchmarkFig8Delta|BenchmarkBuildIndexMovieLens|BenchmarkApplyDelta|BenchmarkExecuteMovieLens|BenchmarkAppendWAL|BenchmarkJoinMovieLens|BenchmarkJoinTriangle|BenchmarkTraceOverhead
BENCH_SUMMARIZE := BenchmarkSweeperRunD
BENCH_COUNT   ?= 1
BENCH_TIME    ?= 3x
BENCH_OUT     ?= bench.txt
BENCH_JSON    ?= BENCH_10.json

.PHONY: build test race bench benchgate fuzz fmt vet lint qagcheck crash ci e2e serve

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

vet:
	go vet ./...

fmt:
	gofmt -l .

# lint builds the repo's own analyzer suite (docs/ANALYZERS.md) and runs it
# over every package via the go vet -vettool protocol. Violations of the
# determinism/COW/concurrency invariants fail the build; deliberate
# exceptions carry //qag:allow <analyzer> <reason>.
lint:
	go build -o bin/qagvet ./cmd/qagvet
	go vet -vettool=$(CURDIR)/bin/qagvet ./...

# qagcheck runs the test suite with the runtime assertion build tag: index
# coverage ordering, codec capacity, and solution antichain checks panic on
# violation instead of compiling to nothing.
qagcheck:
	go test -tags qagcheck ./...

# crash compiles the fault-injection hooks in (-tags qagfault,
# docs/FAULTS.md) and runs the crash harness under the race detector: a
# child qagviewd server is SIGKILLed at every registered WAL/snapshot crash
# point and recovery must preserve every acknowledged write, plus sticky
# fsync-failure and torn-write tests.
crash:
	go test -race -tags qagfault ./internal/wal/... ./internal/server/... ./internal/faultinject/...

# bench runs the tracked benchmarks with allocation reporting and writes the
# result to $(BENCH_OUT), the artifact CI uploads as the perf baseline, plus
# a machine-readable $(BENCH_JSON) (benchmark name -> ns/op, B/op, allocs/op)
# so the perf trajectory can be diffed across PRs without text parsing.
bench:
	go test -run '^$$' -bench '$(BENCH_ROOT)' -benchmem -benchtime $(BENCH_TIME) -count $(BENCH_COUNT) . | tee $(BENCH_OUT)
	go test -run '^$$' -bench '$(BENCH_SUMMARIZE)' -benchmem -benchtime 50x -count $(BENCH_COUNT) ./internal/summarize/ | tee -a $(BENCH_OUT)
	go run ./cmd/benchjson < $(BENCH_OUT) > $(BENCH_JSON)

# benchgate re-measures and fails on a >30% regression against the
# committed baseline (the CI bench job's gate). Refresh the baseline from a
# trusted run: make bench && cp $(BENCH_JSON) bench_baseline.json
benchgate: bench
	go run ./cmd/benchcmp -baseline bench_baseline.json -candidate $(BENCH_JSON) -threshold 0.30

# fuzz gives the SQL front end a short adversarial workout: the parser
# fuzzer, then the differential executor fuzzer (reference vs vectorized at
# par 1/8 x packed/string keys x hash/generic join paths).
fuzz:
	go test -run '^$$' -fuzz FuzzParse -fuzztime 30s ./internal/engine/
	go test -run '^$$' -fuzz FuzzExec -fuzztime 30s ./internal/engine/

# e2e builds qagviewd and drives its session/solution/diff endpoints.
e2e:
	./scripts/e2e_smoke.sh

# serve runs the exploration server on :8080 with the MovieLens sample.
serve:
	go run ./cmd/qagviewd -addr :8080 -sample movielens

ci: vet lint build test race crash
