# Core benchmarks tracked across PRs: the precompute grid (allocations per
# replay are the dense-engine target figure), the cluster-space build
# (packed/slice keys across worker counts), the per-replay sweep unit, the
# single-run algorithms, and the Delta-Judgment ablation.
BENCH_ROOT    := BenchmarkFig7PrecomputeKParallel|BenchmarkFig6VaryD|BenchmarkFig8Delta|BenchmarkBuildIndexMovieLens
BENCH_SUMMARIZE := BenchmarkSweeperRunD
BENCH_COUNT   ?= 1
BENCH_TIME    ?= 3x
BENCH_OUT     ?= bench.txt
BENCH_JSON    ?= BENCH_3.json

.PHONY: build test race bench fuzz fmt vet ci

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

vet:
	go vet ./...

fmt:
	gofmt -l .

# bench runs the tracked benchmarks with allocation reporting and writes the
# result to $(BENCH_OUT), the artifact CI uploads as the perf baseline, plus
# a machine-readable $(BENCH_JSON) (benchmark name -> ns/op, B/op, allocs/op)
# so the perf trajectory can be diffed across PRs without text parsing.
bench:
	go test -run '^$$' -bench '$(BENCH_ROOT)' -benchmem -benchtime $(BENCH_TIME) -count $(BENCH_COUNT) . | tee $(BENCH_OUT)
	go test -run '^$$' -bench '$(BENCH_SUMMARIZE)' -benchmem -benchtime 50x -count $(BENCH_COUNT) ./internal/summarize/ | tee -a $(BENCH_OUT)
	go run ./cmd/benchjson < $(BENCH_OUT) > $(BENCH_JSON)

# fuzz gives the SQL front end a short adversarial workout.
fuzz:
	go test -fuzz FuzzParse -fuzztime 30s ./internal/engine/

ci: vet build test race
