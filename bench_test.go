// Benchmarks: one testing.B benchmark per table/figure of the paper's
// evaluation. Each benchmark exercises the operation whose cost the figure
// reports; the cmd/experiments binary prints the corresponding rows. See
// EXPERIMENTS.md for the figure-by-figure mapping.
package qagview_test

import (
	"context"
	"io"
	"log/slog"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"qagview"
	"qagview/internal/baselines"
	"qagview/internal/dtree"
	"qagview/internal/exp"
	"qagview/internal/lattice"
	"qagview/internal/movielens"
	"qagview/internal/obs"
	"qagview/internal/summarize"
	"qagview/internal/tpcds"
	"qagview/internal/userstudy"
	"qagview/internal/wal"
)

// benchState holds datasets and summarizers shared by all benchmarks; built
// once on first use.
type benchState struct {
	env *exp.Env

	adventure *qagview.Result // running-example query, N ~ 50
	mid       *qagview.Result // m=8, N ~ 2087
	tp        *qagview.Result // TPC-DS m=7

	advSumm *qagview.Summarizer // L = N over adventure
	midSumm *qagview.Summarizer // L = 500 over mid

	space *lattice.Space // mid result as a lattice space
}

var (
	stateOnce sync.Once
	state     *benchState
	stateErr  error
)

func getState(b *testing.B) *benchState {
	b.Helper()
	stateOnce.Do(func() {
		env, err := exp.NewEnv(
			movielens.DefaultConfig(),
			tpcds.Config{Rows: 150_000, Seed: 7},
		)
		if err != nil {
			stateErr = err
			return
		}
		s := &benchState{env: env}
		if s.adventure, err = env.AdventureResultN(50); err != nil {
			stateErr = err
			return
		}
		if s.mid, err = env.MovieLensResult(8, 2087); err != nil {
			stateErr = err
			return
		}
		if s.tp, err = env.TPCDSResult(7, 20000); err != nil {
			stateErr = err
			return
		}
		if s.advSumm, err = qagview.NewSummarizer(s.adventure, s.adventure.N()); err != nil {
			stateErr = err
			return
		}
		L := 500
		if s.mid.N() < L {
			L = s.mid.N()
		}
		if s.midSumm, err = qagview.NewSummarizer(s.mid, L); err != nil {
			stateErr = err
			return
		}
		if s.space, err = lattice.NewSpace(s.mid.GroupBy, s.mid.Rows, s.mid.Vals); err != nil {
			stateErr = err
			return
		}
		state = s
	})
	if stateErr != nil {
		b.Fatal(stateErr)
	}
	return state
}

// BenchmarkFig2Guidance measures generating the parameter-selection view:
// a full precompute over k=2..15 and D=1..4 at L=15 (Figure 2; the paper
// reports 20-40 ms for this on MovieLens).
func BenchmarkFig2Guidance(b *testing.B) {
	s := getState(b)
	L := 15
	summ, err := qagview.NewSummarizer(s.adventure, L)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store, err := summ.Precompute(2, 15, []int{1, 2, 3, 4})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := store.Solution(10, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5 measures the algorithms of the brute-force comparison at
// L=5, D=3, k=4 (Figures 5a/5b).
func BenchmarkFig5(b *testing.B) {
	s := getState(b)
	p := qagview.Params{K: 4, L: 5, D: 3}
	for _, algo := range []qagview.Algorithm{
		qagview.BruteForce, qagview.BottomUp, qagview.FixedOrder, qagview.Hybrid,
	} {
		algo := algo
		b.Run(string(algo), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.advSumm.Summarize(algo, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("random-fixed-order", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < b.N; i++ {
			if _, err := s.advSumm.Summarize(qagview.RandomFixedOrder, p, qagview.WithRand(rng)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("kmeans-fixed-order", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < b.N; i++ {
			if _, err := s.advSumm.Summarize(qagview.KMeansFixedOrder, p, qagview.WithRand(rng)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig6VaryK sweeps k at L=40, D=3 (Figures 6a/6b).
func BenchmarkFig6VaryK(b *testing.B) {
	s := getState(b)
	for _, k := range []int{5, 10, 20, 40} {
		p := qagview.Params{K: k, L: 40, D: 3}
		b.Run(label("k", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.midSumm.Summarize(qagview.Hybrid, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6VaryL sweeps L at k=3, D=3 (Figures 6c/6d).
func BenchmarkFig6VaryL(b *testing.B) {
	s := getState(b)
	for _, L := range []int{3, 9, 27, 81} {
		p := qagview.Params{K: 3, L: L, D: 3}
		b.Run(label("L", L), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.midSumm.Summarize(qagview.Hybrid, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6VaryD sweeps D at k=10, L=40 (Figures 6e/6f).
func BenchmarkFig6VaryD(b *testing.B) {
	s := getState(b)
	for _, d := range []int{1, 3, 6} {
		p := qagview.Params{K: 10, L: 40, D: d}
		b.Run(label("D", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.midSumm.Summarize(qagview.BottomUp, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6VaryM measures initialization (cluster-space construction) as
// the number of grouping attributes m grows (Figures 6g/6h).
func BenchmarkFig6VaryM(b *testing.B) {
	s := getState(b)
	for _, m := range []int{4, 6, 8, 10} {
		res, err := s.env.MovieLensResult(m, 200)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(label("m", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := qagview.NewSummarizer(res, 20); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7PrecomputeK measures the precompute path (init + sweep) for
// k up to 20 at L=500, D=2 (Figure 7a).
func BenchmarkFig7PrecomputeK(b *testing.B) {
	s := getState(b)
	for i := 0; i < b.N; i++ {
		L := 500
		if s.mid.N() < L {
			L = s.mid.N()
		}
		summ, err := qagview.NewSummarizer(s.mid, L)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := summ.Precompute(1, 20, []int{2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7PrecomputeKParallel measures the per-D fan-out of the
// precompute sweep on the Figure 7 grid (k up to 20, D in 1..4, L=500),
// sweeping the worker count. On a machine with >= 4 cores the par=4 case
// should run the sweep at least ~2x faster than par=1; output is
// bit-identical at every level (see TestParallelMatchesSequential).
func BenchmarkFig7PrecomputeKParallel(b *testing.B) {
	s := getState(b)
	ds := []int{1, 2, 3, 4}
	for _, par := range []int{1, 2, 4, 8} {
		par := par
		b.Run(label("par", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.midSumm.Precompute(1, 20, ds, qagview.Parallelism(par)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7Retrieve measures the precomputed retrieval path that makes
// repeated runs cheap (Figures 7b-7f): one interval-tree stab plus coverage
// reconstruction.
func BenchmarkFig7Retrieve(b *testing.B) {
	s := getState(b)
	store, err := s.midSumm.Precompute(1, 20, []int{2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Solution(1+i%20, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8InitOpt compares optimized vs naive cluster-space
// construction at L=200 (Figure 8a).
func BenchmarkFig8InitOpt(b *testing.B) {
	s := getState(b)
	b.Run("optimized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := lattice.BuildIndex(s.space, 200); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := lattice.BuildIndexNaive(s.space, 200); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBuildIndexMovieLens measures cluster-space construction on the
// MovieLens space (m=8, N≈2087, L=500) across key representations and
// phase-2 worker counts: slice-par1 is the pre-packed baseline, packed-par1
// isolates the uint64-key win, and the higher worker counts add the parallel
// coverage mapping. The built index is bit-identical in every variant (see
// the lattice build tests).
func BenchmarkBuildIndexMovieLens(b *testing.B) {
	s := getState(b)
	L := 500
	if s.space.N() < L {
		L = s.space.N()
	}
	run := func(name string, opts ...lattice.BuildOption) {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := lattice.BuildIndex(s.space, L, opts...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	run("slice-par1", lattice.WithSliceKeys(), lattice.BuildParallelism(1))
	run("packed-par1", lattice.BuildParallelism(1))
	for _, par := range []int{2, 4, 8} {
		run("packed-par"+itoa(par), lattice.BuildParallelism(par))
	}
}

// BenchmarkApplyDelta measures incremental cluster-space maintenance
// against the full rebuild it replaces, on the MovieLens space (m=8,
// N≈2087, L=500): a batch of answer-tuple appends ranking below the top L
// (the common live-table case) is absorbed by Index.ApplyDelta — probing
// only the appended tuples and splicing the coverage arena — versus
// NewSpace + BuildIndex from scratch. Output is bit-identical either way
// (see lattice's delta equivalence tests); single-row batches should be
// well over an order of magnitude faster incrementally.
func BenchmarkApplyDelta(b *testing.B) {
	s := getState(b)
	L := 500
	if s.space.N() < L {
		L = s.space.N()
	}
	base, err := lattice.BuildIndex(s.space, L)
	if err != nil {
		b.Fatal(err)
	}
	baseRows := make([][]string, s.space.N())
	for i, tup := range s.space.Tuples {
		baseRows[i] = s.space.Render(tup)
	}
	low := s.space.Vals[L-1] - 1
	rng := rand.New(rand.NewSource(11))
	for _, batch := range []int{1, 64, 4096} {
		d := lattice.Delta{
			AppendRows: make([][]string, batch),
			AppendVals: make([]float64, batch),
		}
		for i := 0; i < batch; i++ {
			d.AppendRows[i] = baseRows[rng.Intn(len(baseRows))]
			d.AppendVals[i] = low - rng.Float64()
		}
		combinedRows := append(append([][]string(nil), baseRows...), d.AppendRows...)
		combinedVals := append(append([]float64(nil), s.space.Vals...), d.AppendVals...)
		b.Run(label("batch", batch)+"/incremental", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := base.ApplyDelta(d); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(label("batch", batch)+"/rebuild", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sp, err := lattice.NewSpace(s.space.Attrs, combinedRows, combinedVals)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := lattice.BuildIndex(sp, L); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8Delta compares Hybrid with and without Delta-Judgment at
// L=500, k=20, D=2 (Figure 8b).
func BenchmarkFig8Delta(b *testing.B) {
	s := getState(b)
	p := qagview.Params{K: 20, L: s.midSumm.L(), D: 2}
	b.Run("with-delta", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.midSumm.Summarize(qagview.Hybrid, p, qagview.WithDelta(true)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("without-delta", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.midSumm.Summarize(qagview.Hybrid, p, qagview.WithDelta(false)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig9TPCDS measures initialization plus one Hybrid run over the
// TPC-DS workload at L=500, k=20, D=2 (Figures 9a/9b).
func BenchmarkFig9TPCDS(b *testing.B) {
	s := getState(b)
	L := 500
	if s.tp.N() < L {
		L = s.tp.N()
	}
	for i := 0; i < b.N; i++ {
		summ, err := qagview.NewSummarizer(s.tp, L)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := summ.Summarize(qagview.Hybrid, qagview.Params{K: 20, L: L, D: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1UserStudy measures one full simulated-subject study pass
// for the varying-method group (Tables 1/2).
func BenchmarkTable1UserStudy(b *testing.B) {
	s := getState(b)
	space, err := lattice.NewSpace(s.mid.GroupBy, s.mid.Rows, s.mid.Vals)
	if err != nil {
		b.Fatal(err)
	}
	ix, err := lattice.BuildIndex(space, 50)
	if err != nil {
		b.Fatal(err)
	}
	sol, err := summarize.Hybrid(ix, summarize.Params{K: 10, L: 50, D: 1})
	if err != nil {
		b.Fatal(err)
	}
	rules := userstudy.FromSolution(ix, sol)
	labels := make([]bool, space.N())
	for i := range labels {
		labels[i] = i < 50
	}
	tuples := make([][]int32, space.N())
	for i := range tuples {
		tuples[i] = space.Tuples[i]
	}
	tree, err := dtree.TuneK(tuples, labels, space.Vals, 10, 7)
	if err != nil {
		b.Fatal(err)
	}
	dtRules := userstudy.FromDecisionTree(space, tree)
	cfg := userstudy.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := userstudy.Simulate(space, 50, rules, cfg); err != nil {
			b.Fatal(err)
		}
		if _, err := userstudy.Simulate(space, 50, dtRules, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig16Placement measures the optimal comparison-view placement
// (Hungarian matching) for consecutive k=20 solutions (Figures 16a/16b).
func BenchmarkFig16Placement(b *testing.B) {
	s := getState(b)
	oldSol, err := s.midSumm.Summarize(qagview.Hybrid, qagview.Params{K: 20, L: 30, D: 2})
	if err != nil {
		b.Fatal(err)
	}
	newSol, err := s.midSumm.Summarize(qagview.Hybrid, qagview.Params{K: 20, L: 40, D: 2})
	if err != nil {
		b.Fatal(err)
	}
	diff, err := s.midSumm.Compare(oldSol, newSol)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := diff.OptimalOrder(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA5Baselines measures the related-work baselines on the running
// example (Appendix A.5).
func BenchmarkA5Baselines(b *testing.B) {
	s := getState(b)
	space, err := lattice.NewSpace(s.adventure.GroupBy, s.adventure.Rows, s.adventure.Vals)
	if err != nil {
		b.Fatal(err)
	}
	L := 10
	if space.N() < L {
		L = space.N()
	}
	ix, err := lattice.BuildIndex(space, L)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("smart-drill-down", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baselines.SmartDrillDown(ix, 4, baselines.ScopeTopL); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("diversified-topk-exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baselines.DiversifiedTopKExact(space, L, 4, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("disc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baselines.DisC(space, L, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mmr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baselines.MMR(space, L, 4, 0.5); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func label(name string, v int) string {
	return name + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkVariantsAblation compares the Bottom-Up design choices the paper
// evaluates in Section 5.1: the standard solution-average criterion against
// the max-LCA-average criterion and the level-(D-1) start.
func BenchmarkVariantsAblation(b *testing.B) {
	s := getState(b)
	p := qagview.Params{K: 5, L: 40, D: 3}
	for _, algo := range []qagview.Algorithm{
		qagview.BottomUp, qagview.BottomUpMaxLCA, qagview.BottomUpLevelStart,
	} {
		algo := algo
		b.Run(string(algo), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.midSumm.Summarize(algo, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineAggregate measures the SQL substrate: grouping 100k rating
// rows over the running example's four attributes.
func BenchmarkEngineAggregate(b *testing.B) {
	s := getState(b)
	sql, err := movielens.Query(4, 50, "genre_adventure = 1")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.env.ML.Query(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecuteMovieLens compares the row-at-a-time reference executor
// with the vectorized, morsel-parallel pipeline on the MovieLens workload:
// the running example's selective query (WHERE + HAVING) and a full-scan
// grouping, sequential and parallel. The executors are proven bit-identical
// (see internal/engine), so this measures pure execution cost.
func BenchmarkExecuteMovieLens(b *testing.B) {
	s := getState(b)
	selective, err := movielens.Query(4, 50, "genre_adventure = 1")
	if err != nil {
		b.Fatal(err)
	}
	fullscan, err := movielens.Query(4, 0, "")
	if err != nil {
		b.Fatal(err)
	}
	variants := []struct {
		name string
		opts []qagview.QueryOption
	}{
		{"reference", []qagview.QueryOption{qagview.ExecReference()}},
		{"vec_par1", []qagview.QueryOption{qagview.ExecParallelism(1)}},
		{"vec_par8", []qagview.QueryOption{qagview.ExecParallelism(8)}},
	}
	for _, q := range []struct{ name, sql string }{
		{"selective", selective},
		{"fullscan", fullscan},
	} {
		for _, v := range variants {
			b.Run(q.name+"/"+v.name, func(b *testing.B) {
				// Warm the dictionary-code cache and executor pools so the
				// loop measures steady-state (refresh-path) execution.
				if _, err := s.env.ML.Query(q.sql, v.opts...); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := s.env.ML.Query(q.sql, v.opts...); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAppendWAL measures the durable append path behind live-table
// writes when qagviewd runs with -wal: every record is CRC-framed, written,
// and fsynced before the caller's ack. The serial case pays a full fsync
// per record and is dominated by the device's flush latency; the parallel
// case exercises group commit — concurrent appends staged while a flush is
// in flight share the next write+fsync — so per-record cost drops with
// offered load. Replay is discarded (fresh dir per run).
func BenchmarkAppendWAL(b *testing.B) {
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i)
	}
	open := func(b *testing.B) *wal.Log {
		b.Helper()
		l, _, err := wal.Open(b.TempDir(), func(wal.Record) error { return nil })
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { l.Close() })
		return l
	}
	b.Run("serial", func(b *testing.B) {
		l := open(b)
		b.SetBytes(int64(len(payload)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := l.Append(wal.Record{Op: 2, Table: "bench", Gen: uint64(i + 1), Data: payload}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("group-commit-par8", func(b *testing.B) {
		l := open(b)
		var gen atomic.Uint64
		b.SetBytes(int64(len(payload)))
		b.SetParallelism(8)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if err := l.Append(wal.Record{Op: 2, Table: "bench", Gen: gen.Add(1), Data: payload}); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
}

// BenchmarkJoinMovieLens measures the multi-table path on the MovieLens star
// schema: the running example's aggregate over ratings JOIN users JOIN
// movies (acyclic, so the auto rule picks left-deep hash joins), on packed
// and string build keys and across worker counts, plus the forced
// worst-case-optimal plan for comparison. All variants are bit-identical
// to the nested-loop reference (see internal/engine and internal/movielens
// equivalence tests); this measures pure join + aggregation cost.
func BenchmarkJoinMovieLens(b *testing.B) {
	star, err := movielens.GenerateStar(movielens.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	db := qagview.NewDB()
	for _, r := range star.Tables() {
		if err := db.Register(r); err != nil {
			b.Fatal(err)
		}
	}
	sql, err := movielens.JoinQuery(4, 50, "genre_adventure = 1")
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range []struct {
		name string
		opts []qagview.QueryOption
	}{
		{"hash_par1", []qagview.QueryOption{qagview.ExecParallelism(1)}},
		{"hash_par8", []qagview.QueryOption{qagview.ExecParallelism(8)}},
		{"hash_par8_strkeys", []qagview.QueryOption{qagview.ExecParallelism(8), qagview.ExecStringKeys()}},
		{"wcoj_par8", []qagview.QueryOption{qagview.ExecParallelism(8), qagview.ExecGenericJoin()}},
	} {
		b.Run(v.name, func(b *testing.B) {
			// Warm the dictionary and column-group caches so the loop
			// measures steady-state execution, not one-time indexing.
			if _, err := db.Query(sql, v.opts...); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(sql, v.opts...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkJoinTriangle measures the worst-case-optimal path where it earns
// its name: counting triangles in a random directed graph. The join graph is
// cyclic, so the auto rule runs leapfrog (output-optimal); the forced binary
// hash-join plan materializes the quadratic open-wedge intermediate first —
// the asymptotic blowup the WCOJ path exists to avoid.
func BenchmarkJoinTriangle(b *testing.B) {
	// Hub-skewed graph: half the edges touch one of a few hub nodes, so the
	// open-wedge intermediate (hub degree squared) dwarfs the triangle count
	// — the regime the worst-case-optimal path is built for.
	const nodes, edges, hubs = 4000, 20000, 6
	rng := rand.New(rand.NewSource(11))
	src := make([]int64, edges)
	dst := make([]int64, edges)
	for i := range src {
		src[i] = int64(rng.Intn(nodes))
		dst[i] = int64(rng.Intn(nodes))
		if i%2 == 0 {
			if i%4 == 0 {
				src[i] = int64(rng.Intn(hubs))
			} else {
				dst[i] = int64(rng.Intn(hubs))
			}
		}
	}
	rel, err := qagview.FromColumns("edges",
		qagview.IntColumn("src", src), qagview.IntColumn("dst", dst))
	if err != nil {
		b.Fatal(err)
	}
	db := qagview.NewDB()
	if err := db.Register(rel); err != nil {
		b.Fatal(err)
	}
	const sql = `SELECT e1.src, count(*) AS c FROM edges e1
		JOIN edges e2 ON e1.dst = e2.src
		JOIN edges e3 ON e2.dst = e3.src AND e3.dst = e1.src
		GROUP BY e1.src ORDER BY c DESC LIMIT 20`
	for _, v := range []struct {
		name string
		opts []qagview.QueryOption
	}{
		{"wcoj_par1", []qagview.QueryOption{qagview.ExecParallelism(1)}},
		{"wcoj_par8", []qagview.QueryOption{qagview.ExecParallelism(8)}},
		{"hash_par8", []qagview.QueryOption{qagview.ExecParallelism(8), qagview.ExecHashJoin()}},
	} {
		b.Run(v.name, func(b *testing.B) {
			if _, err := db.Query(sql, v.opts...); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(sql, v.opts...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTraceOverhead gates the tentpole's "near-zero cost when off"
// claim: the same MovieLens query (a) without any context, (b) with a
// context threaded but no trace attached — the exact path every request
// takes when tracing is disabled, where StartSpan must return without
// allocating — and (c) with a forced trace recording the full span tree.
// The benchcmp gate keeps off/untraced within noise of each other; traced
// shows what opting in costs.
func BenchmarkTraceOverhead(b *testing.B) {
	s := getState(b)
	sql, err := movielens.Query(4, 50, "genre_adventure = 1")
	if err != nil {
		b.Fatal(err)
	}
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	tracer := obs.NewTracer(16, quiet)
	for _, v := range []struct {
		name string
		opts func() ([]qagview.QueryOption, *obs.Trace)
	}{
		{"off", func() ([]qagview.QueryOption, *obs.Trace) {
			return nil, nil
		}},
		{"ctx_untraced", func() ([]qagview.QueryOption, *obs.Trace) {
			return []qagview.QueryOption{qagview.ExecContext(context.Background())}, nil
		}},
		{"traced", func() ([]qagview.QueryOption, *obs.Trace) {
			ctx, tr := tracer.StartTrace(context.Background(), "bench.query", true)
			return []qagview.QueryOption{qagview.ExecContext(ctx)}, tr
		}},
	} {
		b.Run(v.name, func(b *testing.B) {
			opts, _ := v.opts()
			if _, err := s.env.ML.Query(sql, opts...); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				opts, tr := v.opts()
				if _, err := s.env.ML.Query(sql, opts...); err != nil {
					b.Fatal(err)
				}
				tracer.Finish(tr)
			}
		})
	}
}
