// Command benchcmp is the CI bench-regression gate: it compares a fresh
// benchmark JSON (as emitted by cmd/benchjson, see `make bench`) against the
// committed baseline and exits non-zero when any tracked benchmark regressed
// by more than the threshold in ns/op or allocs/op.
//
// Usage:
//
//	benchcmp -baseline bench_baseline.json -candidate BENCH_7.json [-threshold 0.30]
//
// Benchmarks present in only one file are reported but never fail the gate
// (benchmarks come and go across PRs); the gate only guards benchmarks both
// sides know about, and prints refresh instructions when the candidate has
// benchmarks the baseline lacks, so new entries don't silently stay
// unguarded. CI boxes are noisy, so the default threshold is deliberately
// loose (30%) — the gate exists to catch algorithmic regressions (a lost
// fast path, an alloc-per-op explosion), not 5% jitter.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// result mirrors cmd/benchjson's per-benchmark measurement object.
type result struct {
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	Runs        int      `json:"runs"`
}

func main() {
	baselinePath := flag.String("baseline", "bench_baseline.json", "committed baseline JSON")
	candidatePath := flag.String("candidate", "BENCH_7.json", "freshly measured JSON")
	threshold := flag.Float64("threshold", 0.30, "relative regression that fails the gate (0.30 = +30%)")
	flag.Parse()

	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	candidate, err := load(*candidatePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	report, extras, regressed := compare(baseline, candidate, *threshold)
	fmt.Print(report)
	if len(extras) > 0 {
		fmt.Print(refreshNote(extras, *candidatePath, *baselinePath))
	}
	if regressed {
		fmt.Printf(`
benchcmp: FAIL — at least one benchmark regressed more than %.0f%% against %s.
If the regression is intentional (e.g. the benchmark now does more work),
refresh the baseline and commit it with a justification in the PR:

    make bench && cp %s %s

Otherwise, find the hot path you lost: compare the failing benchmark's
profile between this branch and main (go test -bench <name> -cpuprofile).
`, *threshold*100, *baselinePath, *candidatePath, *baselinePath)
		os.Exit(1)
	}
	fmt.Println("benchcmp: OK — no benchmark regressed past the threshold")
}

func load(path string) (map[string]result, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := map[string]result{}
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s holds no benchmarks", path)
	}
	return out, nil
}

// compare renders the per-benchmark delta table, lists the candidate-only
// benchmarks (sorted; never a failure), and reports whether any shared
// benchmark regressed past the threshold on ns/op or allocs/op.
func compare(baseline, candidate map[string]result, threshold float64) (string, []string, bool) {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)

	var sb strings.Builder
	regressed := false
	for _, name := range names {
		base := baseline[name]
		cand, ok := candidate[name]
		if !ok {
			fmt.Fprintf(&sb, "~ %-45s only in baseline (renamed or removed?)\n", name)
			continue
		}
		nsBad, nsDelta := exceeds(base.NsPerOp, cand.NsPerOp, threshold)
		line := fmt.Sprintf("%-45s ns/op %12.0f -> %12.0f (%+6.1f%%)", name, base.NsPerOp, cand.NsPerOp, nsDelta*100)
		allocBad := false
		if base.AllocsPerOp != nil && cand.AllocsPerOp != nil {
			var allocDelta float64
			allocBad, allocDelta = exceeds(*base.AllocsPerOp, *cand.AllocsPerOp, threshold)
			// Tiny alloc counts jump across thresholds on harmless noise
			// (e.g. 2 -> 3 allocs is +50%); require a real absolute move too.
			if *cand.AllocsPerOp-*base.AllocsPerOp < 16 {
				allocBad = false
			}
			line += fmt.Sprintf("  allocs/op %9.0f -> %9.0f (%+6.1f%%)", *base.AllocsPerOp, *cand.AllocsPerOp, allocDelta*100)
		}
		if nsBad || allocBad {
			regressed = true
			fmt.Fprintf(&sb, "! %s  REGRESSED\n", line)
		} else {
			fmt.Fprintf(&sb, "  %s\n", line)
		}
	}
	extras := make([]string, 0)
	for name := range candidate {
		if _, ok := baseline[name]; !ok {
			extras = append(extras, name)
		}
	}
	sort.Strings(extras)
	for _, name := range extras {
		fmt.Fprintf(&sb, "+ %-45s new benchmark (not in baseline)\n", name)
	}
	return sb.String(), extras, regressed
}

// refreshNote explains how to bring candidate-only benchmarks under the
// gate. Informational only: new benchmarks never fail the run.
func refreshNote(extras []string, candidatePath, baselinePath string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, `
benchcmp: note — %d benchmark(s) are not in the baseline and are NOT yet
guarded by the regression gate: %s.
To start tracking them, refresh the baseline from a trusted CI run of this
branch (same runner class as the gate) and commit it:

    make bench && cp %s %s
`, len(extras), strings.Join(extras, ", "), candidatePath, baselinePath)
	return sb.String()
}

// exceeds reports whether cand regressed past the threshold relative to
// base, and the relative delta.
func exceeds(base, cand, threshold float64) (bool, float64) {
	if base <= 0 {
		return false, 0
	}
	delta := (cand - base) / base
	return delta > threshold, delta
}
