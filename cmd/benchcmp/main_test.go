package main

import (
	"strings"
	"testing"
)

func fp(v float64) *float64 { return &v }

func TestCompareDetectsRegressions(t *testing.T) {
	baseline := map[string]result{
		"BenchmarkFast":   {NsPerOp: 1000, AllocsPerOp: fp(100), Runs: 3},
		"BenchmarkSteady": {NsPerOp: 5000, AllocsPerOp: fp(50), Runs: 3},
		"BenchmarkGone":   {NsPerOp: 10, Runs: 1},
	}

	t.Run("clean", func(t *testing.T) {
		candidate := map[string]result{
			"BenchmarkFast":   {NsPerOp: 1200, AllocsPerOp: fp(100), Runs: 3}, // +20% < 30%
			"BenchmarkSteady": {NsPerOp: 4000, AllocsPerOp: fp(50), Runs: 3},  // improved
			"BenchmarkNew":    {NsPerOp: 7, Runs: 1},
		}
		report, _, regressed := compare(baseline, candidate, 0.30)
		if regressed {
			t.Fatalf("clean run flagged as regression:\n%s", report)
		}
		if !strings.Contains(report, "only in baseline") || !strings.Contains(report, "new benchmark") {
			t.Fatalf("membership changes not reported:\n%s", report)
		}
	})

	t.Run("ns regression", func(t *testing.T) {
		candidate := map[string]result{
			"BenchmarkFast":   {NsPerOp: 1400, AllocsPerOp: fp(100), Runs: 3}, // +40%
			"BenchmarkSteady": {NsPerOp: 5000, AllocsPerOp: fp(50), Runs: 3},
		}
		report, _, regressed := compare(baseline, candidate, 0.30)
		if !regressed {
			t.Fatalf("+40%% ns/op not flagged:\n%s", report)
		}
		if !strings.Contains(report, "BenchmarkFast") || !strings.Contains(report, "REGRESSED") {
			t.Fatalf("report does not name the regressed benchmark:\n%s", report)
		}
	})

	t.Run("alloc regression", func(t *testing.T) {
		candidate := map[string]result{
			"BenchmarkFast":   {NsPerOp: 1000, AllocsPerOp: fp(200), Runs: 3}, // 2x allocs
			"BenchmarkSteady": {NsPerOp: 5000, AllocsPerOp: fp(50), Runs: 3},
		}
		_, _, regressed := compare(baseline, candidate, 0.30)
		if !regressed {
			t.Fatal("2x allocs/op not flagged")
		}
	})

	t.Run("tiny alloc jitter tolerated", func(t *testing.T) {
		base := map[string]result{"BenchmarkTiny": {NsPerOp: 100, AllocsPerOp: fp(2), Runs: 3}}
		candidate := map[string]result{"BenchmarkTiny": {NsPerOp: 100, AllocsPerOp: fp(3), Runs: 3}}
		if _, _, regressed := compare(base, candidate, 0.30); regressed {
			t.Fatal("2 -> 3 allocs/op must not fail the gate")
		}
	})

	t.Run("boundary is exclusive", func(t *testing.T) {
		candidate := map[string]result{
			"BenchmarkFast":   {NsPerOp: 1300, AllocsPerOp: fp(100), Runs: 3}, // exactly +30%
			"BenchmarkSteady": {NsPerOp: 5000, AllocsPerOp: fp(50), Runs: 3},
		}
		if _, _, regressed := compare(baseline, candidate, 0.30); regressed {
			t.Fatal("exactly +30% must pass a 30% threshold")
		}
	})
}

// TestCompareReportsCandidateOnly pins the new-benchmark path: entries
// present only in the candidate are returned (sorted) and reported, never
// fail the gate, and the printed note carries refresh instructions naming
// the actual file paths.
func TestCompareReportsCandidateOnly(t *testing.T) {
	baseline := map[string]result{
		"BenchmarkSteady": {NsPerOp: 5000, AllocsPerOp: fp(50), Runs: 3},
	}
	candidate := map[string]result{
		"BenchmarkSteady": {NsPerOp: 5100, AllocsPerOp: fp(50), Runs: 3},
		"BenchmarkZNew":   {NsPerOp: 7, Runs: 1},
		"BenchmarkANew":   {NsPerOp: 9, Runs: 1},
	}
	report, extras, regressed := compare(baseline, candidate, 0.30)
	if regressed {
		t.Fatalf("candidate-only benchmarks must not fail the gate:\n%s", report)
	}
	if len(extras) != 2 || extras[0] != "BenchmarkANew" || extras[1] != "BenchmarkZNew" {
		t.Fatalf("extras = %v, want sorted [BenchmarkANew BenchmarkZNew]", extras)
	}
	for _, name := range extras {
		if !strings.Contains(report, "+ "+name) {
			t.Fatalf("report does not list %s as new:\n%s", name, report)
		}
	}
	note := refreshNote(extras, "BENCH_7.json", "bench_baseline.json")
	for _, want := range []string{"BenchmarkANew", "BenchmarkZNew", "cp BENCH_7.json bench_baseline.json", "NOT yet"} {
		if !strings.Contains(note, want) {
			t.Fatalf("refresh note missing %q:\n%s", want, note)
		}
	}
}

// TestCompareNoExtras checks the empty-extras shape (no note triggered).
func TestCompareNoExtras(t *testing.T) {
	m := map[string]result{"BenchmarkSteady": {NsPerOp: 5000, Runs: 3}}
	_, extras, _ := compare(m, m, 0.30)
	if len(extras) != 0 {
		t.Fatalf("extras = %v, want none", extras)
	}
}
