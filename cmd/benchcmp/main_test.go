package main

import (
	"strings"
	"testing"
)

func fp(v float64) *float64 { return &v }

func TestCompareDetectsRegressions(t *testing.T) {
	baseline := map[string]result{
		"BenchmarkFast":   {NsPerOp: 1000, AllocsPerOp: fp(100), Runs: 3},
		"BenchmarkSteady": {NsPerOp: 5000, AllocsPerOp: fp(50), Runs: 3},
		"BenchmarkGone":   {NsPerOp: 10, Runs: 1},
	}

	t.Run("clean", func(t *testing.T) {
		candidate := map[string]result{
			"BenchmarkFast":   {NsPerOp: 1200, AllocsPerOp: fp(100), Runs: 3}, // +20% < 30%
			"BenchmarkSteady": {NsPerOp: 4000, AllocsPerOp: fp(50), Runs: 3},  // improved
			"BenchmarkNew":    {NsPerOp: 7, Runs: 1},
		}
		report, regressed := compare(baseline, candidate, 0.30)
		if regressed {
			t.Fatalf("clean run flagged as regression:\n%s", report)
		}
		if !strings.Contains(report, "only in baseline") || !strings.Contains(report, "new benchmark") {
			t.Fatalf("membership changes not reported:\n%s", report)
		}
	})

	t.Run("ns regression", func(t *testing.T) {
		candidate := map[string]result{
			"BenchmarkFast":   {NsPerOp: 1400, AllocsPerOp: fp(100), Runs: 3}, // +40%
			"BenchmarkSteady": {NsPerOp: 5000, AllocsPerOp: fp(50), Runs: 3},
		}
		report, regressed := compare(baseline, candidate, 0.30)
		if !regressed {
			t.Fatalf("+40%% ns/op not flagged:\n%s", report)
		}
		if !strings.Contains(report, "BenchmarkFast") || !strings.Contains(report, "REGRESSED") {
			t.Fatalf("report does not name the regressed benchmark:\n%s", report)
		}
	})

	t.Run("alloc regression", func(t *testing.T) {
		candidate := map[string]result{
			"BenchmarkFast":   {NsPerOp: 1000, AllocsPerOp: fp(200), Runs: 3}, // 2x allocs
			"BenchmarkSteady": {NsPerOp: 5000, AllocsPerOp: fp(50), Runs: 3},
		}
		_, regressed := compare(baseline, candidate, 0.30)
		if !regressed {
			t.Fatal("2x allocs/op not flagged")
		}
	})

	t.Run("tiny alloc jitter tolerated", func(t *testing.T) {
		base := map[string]result{"BenchmarkTiny": {NsPerOp: 100, AllocsPerOp: fp(2), Runs: 3}}
		candidate := map[string]result{"BenchmarkTiny": {NsPerOp: 100, AllocsPerOp: fp(3), Runs: 3}}
		if _, regressed := compare(base, candidate, 0.30); regressed {
			t.Fatal("2 -> 3 allocs/op must not fail the gate")
		}
	})

	t.Run("boundary is exclusive", func(t *testing.T) {
		candidate := map[string]result{
			"BenchmarkFast":   {NsPerOp: 1300, AllocsPerOp: fp(100), Runs: 3}, // exactly +30%
			"BenchmarkSteady": {NsPerOp: 5000, AllocsPerOp: fp(50), Runs: 3},
		}
		if _, regressed := compare(baseline, candidate, 0.30); regressed {
			t.Fatal("exactly +30% must pass a 30% threshold")
		}
	})
}
