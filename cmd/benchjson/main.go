// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON object on stdout, mapping each benchmark name to its
// ns/op, B/op, and allocs/op. CI emits this next to the raw bench.txt (see
// `make bench`), so the perf trajectory across PRs can be diffed and plotted
// without re-parsing the text format.
//
// Usage:
//
//	go test -bench . -benchmem | benchjson > BENCH.json
//
// Lines that are not benchmark results (headers, PASS/ok, warnings) are
// ignored. Repeated runs of the same benchmark (-count > 1) are averaged.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is the per-benchmark measurement set; pointer fields are omitted
// from the JSON when the run did not report them (-benchmem absent).
type Result struct {
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	Runs        int      `json:"runs"`
}

func main() {
	results, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// accum sums repeated runs of one benchmark for averaging.
type accum struct {
	ns, bytes, allocs float64
	nBytes, nAllocs   int
	runs              int
}

func parse(sc *bufio.Scanner) (map[string]Result, error) {
	acc := map[string]*accum{}
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		name, fields, ok := benchLine(sc.Text())
		if !ok {
			continue
		}
		a := acc[name]
		if a == nil {
			a = &accum{}
			acc[name] = a
		}
		a.runs++
		// Direct lookups, not a range over fields: accumulation order across a
		// map iteration is randomized, and these are float sums.
		if v, ok := fields["ns/op"]; ok {
			a.ns += v
		}
		if v, ok := fields["B/op"]; ok {
			a.bytes += v
			a.nBytes++
		}
		if v, ok := fields["allocs/op"]; ok {
			a.allocs += v
			a.nAllocs++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]Result, len(acc))
	for name, a := range acc {
		r := Result{NsPerOp: a.ns / float64(a.runs), Runs: a.runs}
		if a.nBytes > 0 {
			v := a.bytes / float64(a.nBytes)
			r.BytesPerOp = &v
		}
		if a.nAllocs > 0 {
			v := a.allocs / float64(a.nAllocs)
			r.AllocsPerOp = &v
		}
		out[name] = r
	}
	return out, nil
}

// benchLine parses one "BenchmarkX-8  100  123 ns/op  45 B/op  6 allocs/op"
// line into its name (CPU suffix stripped) and unit → value map.
func benchLine(line string) (string, map[string]float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the GOMAXPROCS suffix go test appends (Benchmark/case-8).
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	vals := map[string]float64{}
	// fields[1] is the iteration count; the rest alternate value, unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		vals[fields[i+1]] = v
	}
	if _, ok := vals["ns/op"]; !ok {
		return "", nil, false
	}
	return name, vals, true
}
