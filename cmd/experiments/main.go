// Command experiments regenerates every table and figure of the paper's
// evaluation over the synthetic datasets. With no arguments it runs the full
// registry; otherwise it runs the named experiments.
//
// Usage:
//
//	experiments [-scale small|paper] [-list] [id ...]
//
// Experiment ids follow the paper's numbering: fig1 fig2 fig5 fig6k fig6l
// fig6d fig6m fig7k fig7runs fig7l fig7n fig7par figscale fig8a fig8b fig9
// table1 fig16 a5.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"qagview/internal/exp"
)

func main() {
	scale := flag.String("scale", "paper", "dataset scale: small (fast) or paper (MovieLens-100K sized)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	par := flag.Int("par", 1, "precompute worker count (1 = the paper's sequential timings, 0 = GOMAXPROCS)")
	buildpar := flag.Int("buildpar", 1, "cluster-space build worker count (1 = the paper's sequential timings, 0 = GOMAXPROCS)")
	flag.Parse()

	if *list {
		for _, x := range exp.Registry() {
			fmt.Printf("%-10s %s\n", x.ID, x.Title)
		}
		return
	}

	var env *exp.Env
	var err error
	switch *scale {
	case "small":
		env, err = exp.NewSmallEnv()
	case "paper":
		env, err = exp.NewDefaultEnv()
	default:
		err = fmt.Errorf("unknown scale %q", *scale)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	env.Parallelism = *par
	env.BuildParallelism = *buildpar

	ids := flag.Args()
	var selected []exp.Experiment
	if len(ids) == 0 {
		selected = exp.Registry()
	} else {
		for _, id := range ids {
			x, err := exp.Find(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			selected = append(selected, x)
		}
	}

	for _, x := range selected {
		t0 := time.Now()
		tables, err := x.Run(env)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", x.ID, err)
			os.Exit(1)
		}
		fmt.Printf("### %s — %s (took %v)\n\n", x.ID, x.Title, time.Since(t0).Round(time.Millisecond))
		for _, tb := range tables {
			fmt.Println(tb.Format())
		}
	}
}
