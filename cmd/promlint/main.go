// Command promlint validates Prometheus text-exposition output on stdin
// with the same parser the server tests use (internal/obs.ParseExposition).
// The e2e smoke pipes /metrics?format=prometheus through it so a scrape
// that drifts out of the exposition grammar fails the suite, not just a
// human eyeball.
//
// Usage:
//
//	curl -s localhost:8080/metrics?format=prometheus | promlint \
//	    -require qagviewd_requests_total,qagviewd_goroutines
//
// Exit status is non-zero when the input does not parse or a -require'd
// metric family is absent.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"qagview/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(1)
	}
}

func run() error {
	require := flag.String("require", "", "comma-separated metric family names that must be present")
	flag.Parse()

	raw, err := io.ReadAll(os.Stdin)
	if err != nil {
		return fmt.Errorf("reading stdin: %w", err)
	}
	fams, err := obs.ParseExposition(string(raw))
	if err != nil {
		return fmt.Errorf("exposition does not parse: %w", err)
	}
	have := make(map[string]int, len(fams))
	samples := 0
	for _, f := range fams {
		have[f.Name] = len(f.Samples)
		samples += len(f.Samples)
	}
	if *require != "" {
		var missing []string
		for _, name := range strings.Split(*require, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if have[name] == 0 {
				missing = append(missing, name)
			}
		}
		if len(missing) > 0 {
			return fmt.Errorf("missing required families: %s", strings.Join(missing, ", "))
		}
	}
	fmt.Printf("ok: %d families, %d samples\n", len(fams), samples)
	return nil
}
