// Command qagvet machine-checks qagview's determinism, copy-on-write, and
// concurrency invariants (see docs/ANALYZERS.md). It speaks the
// `go vet -vettool` protocol, so the usual invocation is:
//
//	go build -o bin/qagvet ./cmd/qagvet
//	go vet -vettool=bin/qagvet ./...
//
// (`make lint` does exactly that.) As a convenience, running qagvet with
// package patterns re-executes `go vet -vettool=<self>` on them:
//
//	bin/qagvet ./...
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"qagview/internal/analysis/suite"
	"qagview/internal/analysis/unit"
)

func main() {
	args := os.Args[1:]
	if delegates(args) {
		os.Exit(unit.Main("qagvet", args, suite.Analyzers, os.Stdout, os.Stderr))
	}
	// Package patterns: let the go command drive us as its vettool, which
	// handles build setup, export data, and result caching.
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "qagvet: cannot locate own executable: %v\n", err)
		os.Exit(1)
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "qagvet: running go vet: %v\n", err)
		os.Exit(1)
	}
}

// delegates reports whether the arguments are a go-command vettool
// invocation (-V=full, -flags, or a vet.cfg path) rather than user-supplied
// package patterns.
func delegates(args []string) bool {
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" || a == "-flags" || a == "--flags" || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}
