// Command qagview runs an aggregate query over a dataset and prints its
// cluster summary — the CLI face of the paper's two-layer output.
//
// Usage examples:
//
//	qagview -data movielens -k 4 -l 8 -d 2 -expand
//	qagview -data tpcds -sql "SELECT cd_gender, i_category, avg(net_profit) AS val FROM store_sales GROUP BY cd_gender, i_category ORDER BY val DESC" -k 5 -l 10 -d 1
//	qagview -data data.csv -table sales -sql "..." -k 4 -l 8 -d 2
//	qagview -data movielens -guide -kmax 12 -dlist 1,2,3
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"qagview"
	"qagview/internal/movielens"
	"qagview/internal/tpcds"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qagview:", err)
		os.Exit(1)
	}
}

func run() error {
	data := flag.String("data", "movielens", "dataset: movielens, tpcds, or a CSV file path")
	table := flag.String("table", "", "table name for CSV input (default: file base name)")
	sqlQ := flag.String("sql", "", "aggregate query (default: a dataset-specific example)")
	k := flag.Int("k", 4, "maximum number of clusters")
	l := flag.Int("l", 8, "coverage: top-L answers must be covered")
	d := flag.Int("d", 2, "diversity: minimum pairwise cluster distance")
	algo := flag.String("algo", string(qagview.Hybrid), "algorithm: bottom-up, fixed-order, hybrid, brute-force, ...")
	expand := flag.Bool("expand", false, "show the second layer (covered answers per cluster)")
	guide := flag.Bool("guide", false, "print the parameter-selection guidance series instead of one solution")
	kmax := flag.Int("kmax", 12, "guidance: maximum k")
	dlist := flag.String("dlist", "1,2,3", "guidance: comma-separated D values")
	par := flag.Int("par", 0, "guidance: precompute worker count (0 = GOMAXPROCS)")
	buildpar := flag.Int("buildpar", 0, "cluster-space build worker count (0 = GOMAXPROCS)")
	flag.Parse()

	db := qagview.NewDB()
	defaultSQL := ""
	switch *data {
	case "movielens":
		rel, err := movielens.Generate(movielens.DefaultConfig())
		if err != nil {
			return err
		}
		if err := db.Register(rel); err != nil {
			return err
		}
		defaultSQL, err = movielens.Query(4, 50, "genre_adventure = 1")
		if err != nil {
			return err
		}
	case "tpcds":
		rel, err := tpcds.Generate(tpcds.DefaultConfig())
		if err != nil {
			return err
		}
		if err := db.Register(rel); err != nil {
			return err
		}
		defaultSQL, err = tpcds.Query(4, 100)
		if err != nil {
			return err
		}
	default:
		f, err := os.Open(*data)
		if err != nil {
			return err
		}
		defer f.Close()
		name := *table
		if name == "" {
			name = strings.TrimSuffix(filepath.Base(*data), filepath.Ext(*data))
		}
		rel, err := qagview.ReadCSV(f, name, nil)
		if err != nil {
			return err
		}
		if err := db.Register(rel); err != nil {
			return err
		}
	}
	sql := *sqlQ
	if sql == "" {
		sql = defaultSQL
	}
	if sql == "" {
		return fmt.Errorf("-sql is required for CSV input")
	}

	res, err := db.Query(sql)
	if err != nil {
		return err
	}
	if res.N() == 0 {
		return fmt.Errorf("query returned no groups")
	}
	fmt.Printf("query returned %d ranked groups over %v\n\n", res.N(), res.GroupBy)

	coverage := *l
	if coverage > res.N() {
		coverage = res.N()
	}
	var bopts []qagview.BuildOption
	if *buildpar > 0 {
		bopts = append(bopts, qagview.BuildParallelism(*buildpar))
	}
	s, err := qagview.NewSummarizer(res, coverage, bopts...)
	if err != nil {
		return err
	}

	if *guide {
		var ds []int
		for _, part := range strings.Split(*dlist, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad -dlist: %w", err)
			}
			ds = append(ds, v)
		}
		km := *kmax
		var popts []qagview.PrecomputeOption
		if *par > 0 {
			popts = append(popts, qagview.Parallelism(*par))
		}
		store, err := s.Precompute(1, km, ds, popts...)
		if err != nil {
			return err
		}
		g := store.Guidance()
		fmt.Printf("guidance (avg value of solution), L=%d:\n", coverage)
		fmt.Printf("%-4s", "D\\k")
		for kk := g.KMin; kk <= g.KMax; kk++ {
			fmt.Printf(" %7d", kk)
		}
		fmt.Println()
		for _, dd := range ds {
			fmt.Printf("%-4d", dd)
			for i, v := range g.Series[dd] {
				if !g.Stored(dd, g.KMin+i) {
					fmt.Printf(" %7s", "-")
					continue
				}
				fmt.Printf(" %7.3f", v)
			}
			fmt.Println()
		}
		return nil
	}

	p := qagview.Params{K: *k, L: coverage, D: *d}
	sol, err := s.Summarize(qagview.Algorithm(*algo), p)
	if err != nil {
		return err
	}
	if err := s.Validate(p, sol); err != nil {
		return fmt.Errorf("internal error: infeasible solution: %w", err)
	}
	fmt.Printf("%d clusters, objective (avg value of covered answers) = %.4f, covering %d answers\n\n",
		sol.Size(), sol.AvgValue(), len(sol.Covered))
	fmt.Print(s.Format(sol, *expand))
	return nil
}
