// Command qagviewd serves interactive exploration sessions over HTTP/JSON:
// load tables, run aggregate queries, open (query, L) sessions, and read
// (k, D) solutions, guidance series, and solution diffs — the serving face
// of the paper's interactive mode (Section 6), sized for many concurrent
// users by the session LRU and background precompute.
//
// Tables are live: POST /v1/tables/{id}/rows appends rows and bumps the
// table's data generation, and stale sessions refresh lazily on their next
// read through the incremental-maintenance subsystem (internal/delta) —
// delta-maintained cluster index, warm-started sweeps, generation-stamped
// stores — instead of rebuilding. Every session response carries the
// data_version it reflects; DELETE /v1/sessions/{id} evicts explicitly.
//
// Usage examples:
//
//	qagviewd -addr :8080 -sample movielens
//	qagviewd -addr :8080 -snapshots /var/lib/qagviewd -max-sessions 128 -max-mb 512
//	qagviewd -addr :8080 -sample tpcds -execpar 4
//	qagviewd -addr :8080 -wal /var/lib/qagviewd/wal -wal-checkpoint-mb 64
//
// -execpar bounds the morsel worker pool of the vectorized query executor
// used by session builds, refreshes, and /v1/queries (0 = GOMAXPROCS);
// results are bit-identical at every setting.
//
// With -wal set, table creates and row appends are written to a
// write-ahead log and fsynced before the request is acknowledged; on
// startup the log replays on top of the newest table snapshots, so a crash
// — even kill -9 — never loses an acknowledged write. SIGTERM drains
// gracefully: writes get 503 + Retry-After, in-flight requests finish,
// background builds are cancelled and awaited, and the WAL is flushed and
// checkpointed before exit. See README.md ("Durability and fault
// tolerance") and docs/FAULTS.md.
//
// See README.md ("Serving", "Live tables") for the endpoint table and curl
// walkthroughs.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"qagview/internal/movielens"
	"qagview/internal/server"
	"qagview/internal/tpcds"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qagviewd:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	sample := flag.String("sample", "", "preload a sample dataset: movielens or tpcds")
	sampleRatings := flag.Int("sample-ratings", 0, "override the sample's row count (0 = dataset default)")
	snapshots := flag.String("snapshots", "", "directory for precompute-store snapshots (empty = disabled)")
	maxSessions := flag.Int("max-sessions", 64, "maximum live sessions (LRU beyond)")
	maxMB := flag.Int64("max-mb", 256, "session-cache byte budget in MiB (0 = unlimited)")
	execPar := flag.Int("execpar", 0, "morsel workers per query execution (0 = GOMAXPROCS); results are identical at any setting")
	walDir := flag.String("wal", "", "write-ahead-log directory: makes live tables durable across crashes (empty = disabled)")
	walCheckpointMB := flag.Int64("wal-checkpoint-mb", 64, "checkpoint (snapshot tables, prune the log) when the WAL exceeds this size; 0 disables automatic checkpoints")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request handler deadline; expired queries return 503 (0 = none)")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout: full request read, headers and body (0 = none)")
	writeTimeout := flag.Duration("write-timeout", 60*time.Second, "http.Server WriteTimeout: full response write (0 = none)")
	idleTimeout := flag.Duration("idle-timeout", 120*time.Second, "http.Server IdleTimeout for keep-alive connections (0 = none)")
	maxInflightBuilds := flag.Int("max-inflight-builds", 0, "concurrently admitted session builds before 429 (0 = 2xGOMAXPROCS, negative = unlimited)")
	traceOn := flag.Bool("trace", false, "trace every request into the /debug/traces ring (off: only ?trace=1 and slow-query capture trace)")
	slowQueryMS := flag.Int("slow-query-ms", 0, "retain and log traces of requests at or above this duration in milliseconds (0 = disabled)")
	traceRing := flag.Int("trace-ring", 0, "retained traces per ring at /debug/traces (0 = default 256)")
	debugAddr := flag.String("debug-addr", "", "separate listener for pprof and /debug/traces (empty = disabled); never expose publicly")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	slog.SetDefault(logger)

	cfg := server.Config{
		MaxSessions:       *maxSessions,
		SnapshotDir:       *snapshots,
		ExecParallelism:   *execPar,
		WALDir:            *walDir,
		RequestTimeout:    *requestTimeout,
		MaxInflightBuilds: *maxInflightBuilds,
		TraceEnabled:      *traceOn,
		TraceRing:         *traceRing,
		SlowQuery:         time.Duration(*slowQueryMS) * time.Millisecond,
		Logger:            logger,
	}
	if *maxMB == 0 {
		cfg.MaxCacheBytes = -1
	} else {
		cfg.MaxCacheBytes = *maxMB << 20
	}
	if *walCheckpointMB == 0 {
		cfg.WALCheckpointBytes = -1
	} else {
		cfg.WALCheckpointBytes = *walCheckpointMB << 20
	}
	if *snapshots != "" {
		if err := os.MkdirAll(*snapshots, 0o755); err != nil {
			return err
		}
	}
	srv := server.New(cfg)
	defer srv.Close()

	switch *sample {
	case "":
	case "movielens":
		mlCfg := movielens.DefaultConfig()
		if *sampleRatings > 0 {
			mlCfg.Ratings = *sampleRatings
		}
		star, err := movielens.GenerateStar(mlCfg)
		if err != nil {
			return err
		}
		flat, err := movielens.Denormalize(star)
		if err != nil {
			return err
		}
		// Register the denormalized RatingTable for the paper's single-table
		// running example, plus the star's base tables so multi-table SQL
		// (FROM ratings JOIN users ... JOIN movies ...) works out of the box.
		for _, rel := range append(star.Tables(), flat) {
			if err := srv.Register(rel); err != nil {
				return err
			}
			logger.Info("loaded sample table", "table", rel.Name(), "rows", rel.NumRows())
		}
	case "tpcds":
		flat, err := tpcds.Generate(tpcds.DefaultConfig())
		if err != nil {
			return err
		}
		star, err := tpcds.GenerateStar(tpcds.DefaultConfig())
		if err != nil {
			return err
		}
		for _, rel := range append(star.Tables(), flat) {
			if err := srv.Register(rel); err != nil {
				return err
			}
			logger.Info("loaded sample table", "table", rel.Name(), "rows", rel.NumRows())
		}
	default:
		return fmt.Errorf("unknown -sample %q (want movielens or tpcds)", *sample)
	}

	// Recovery runs after sample preloads (samples are regenerated
	// deterministically each boot and are not logged; WAL records replay on
	// top) and before the listener opens, so nothing is served or
	// acknowledged against un-recovered state.
	if *walDir != "" {
		stats, err := srv.Recover()
		if err != nil {
			return fmt.Errorf("recovering %s: %w", *walDir, err)
		}
		logger.Info("recovered WAL",
			"dir", *walDir,
			"snapshots", stats.SnapshotsLoaded,
			"records_replayed", stats.RecordsReplayed,
			"records_skipped", stats.RecordsSkipped,
			"torn_bytes_truncated", stats.TruncatedBytes)
	}

	// The debug listener carries pprof and the trace ring on its own port:
	// profiling endpoints stay off the service address entirely.
	if *debugAddr != "" {
		ds := &http.Server{Addr: *debugAddr, Handler: srv.DebugHandler(), ReadHeaderTimeout: 10 * time.Second}
		go func() {
			logger.Info("debug listener (pprof, /debug/traces)", "addr", *debugAddr)
			if err := ds.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "error", err)
			}
		}()
		defer ds.Close()
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	errc := make(chan error, 1)
	go func() {
		logger.Info("qagviewd listening", "addr", *addr)
		errc <- hs.ListenAndServe()
	}()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		// Graceful drain: refuse new writes immediately, let in-flight
		// requests finish, then stop background builds and make everything
		// acknowledged durable (WAL flush + checkpoint) before exiting.
		logger.Info("draining on signal", "signal", sig.String())
		srv.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		if err := srv.Drain(); err != nil {
			return fmt.Errorf("draining: %w", err)
		}
		logger.Info("drained cleanly")
		return nil
	}
}
