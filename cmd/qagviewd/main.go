// Command qagviewd serves interactive exploration sessions over HTTP/JSON:
// load tables, run aggregate queries, open (query, L) sessions, and read
// (k, D) solutions, guidance series, and solution diffs — the serving face
// of the paper's interactive mode (Section 6), sized for many concurrent
// users by the session LRU and background precompute.
//
// Tables are live: POST /v1/tables/{id}/rows appends rows and bumps the
// table's data generation, and stale sessions refresh lazily on their next
// read through the incremental-maintenance subsystem (internal/delta) —
// delta-maintained cluster index, warm-started sweeps, generation-stamped
// stores — instead of rebuilding. Every session response carries the
// data_version it reflects; DELETE /v1/sessions/{id} evicts explicitly.
//
// Usage examples:
//
//	qagviewd -addr :8080 -sample movielens
//	qagviewd -addr :8080 -snapshots /var/lib/qagviewd -max-sessions 128 -max-mb 512
//	qagviewd -addr :8080 -sample tpcds -execpar 4
//
// -execpar bounds the morsel worker pool of the vectorized query executor
// used by session builds, refreshes, and /v1/queries (0 = GOMAXPROCS);
// results are bit-identical at every setting.
//
// See README.md ("Serving", "Live tables") for the endpoint table and curl
// walkthroughs.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"qagview/internal/movielens"
	"qagview/internal/server"
	"qagview/internal/tpcds"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qagviewd:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	sample := flag.String("sample", "", "preload a sample dataset: movielens or tpcds")
	sampleRatings := flag.Int("sample-ratings", 0, "override the sample's row count (0 = dataset default)")
	snapshots := flag.String("snapshots", "", "directory for precompute-store snapshots (empty = disabled)")
	maxSessions := flag.Int("max-sessions", 64, "maximum live sessions (LRU beyond)")
	maxMB := flag.Int64("max-mb", 256, "session-cache byte budget in MiB (0 = unlimited)")
	execPar := flag.Int("execpar", 0, "morsel workers per query execution (0 = GOMAXPROCS); results are identical at any setting")
	flag.Parse()

	cfg := server.Config{
		MaxSessions:     *maxSessions,
		SnapshotDir:     *snapshots,
		ExecParallelism: *execPar,
	}
	if *maxMB == 0 {
		cfg.MaxCacheBytes = -1
	} else {
		cfg.MaxCacheBytes = *maxMB << 20
	}
	if *snapshots != "" {
		if err := os.MkdirAll(*snapshots, 0o755); err != nil {
			return err
		}
	}
	srv := server.New(cfg)
	defer srv.Close()

	switch *sample {
	case "":
	case "movielens":
		mlCfg := movielens.DefaultConfig()
		if *sampleRatings > 0 {
			mlCfg.Ratings = *sampleRatings
		}
		rel, err := movielens.Generate(mlCfg)
		if err != nil {
			return err
		}
		if err := srv.Register(rel); err != nil {
			return err
		}
		log.Printf("loaded sample table %s (%d rows)", rel.Name(), rel.NumRows())
	case "tpcds":
		rel, err := tpcds.Generate(tpcds.DefaultConfig())
		if err != nil {
			return err
		}
		if err := srv.Register(rel); err != nil {
			return err
		}
		log.Printf("loaded sample table %s (%d rows)", rel.Name(), rel.NumRows())
	default:
		return fmt.Errorf("unknown -sample %q (want movielens or tpcds)", *sample)
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		log.Printf("qagviewd listening on %s", *addr)
		errc <- hs.ListenAndServe()
	}()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		log.Printf("received %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return nil
	}
}
