package qagview_test

import (
	"fmt"
	"log"

	"qagview"
)

// Example demonstrates the core workflow: register a table, run an
// aggregate query, and summarize the high-valued answers.
func Example() {
	rel, err := qagview.FromColumns("sales",
		qagview.StringColumn("region", []string{
			"west", "west", "west", "west", "east", "east", "south", "south",
		}),
		qagview.StringColumn("product", []string{
			"gadget", "gadget", "widget", "widget", "gadget", "widget", "gadget", "widget",
		}),
		qagview.FloatColumn("profit", []float64{9, 8, 7, 7, 8, 2, 3, 1}),
	)
	if err != nil {
		log.Fatal(err)
	}
	db := qagview.NewDB()
	if err := db.Register(rel); err != nil {
		log.Fatal(err)
	}
	res, err := db.Query(`SELECT region, product, avg(profit) AS val
		FROM sales GROUP BY region, product ORDER BY val DESC`)
	if err != nil {
		log.Fatal(err)
	}
	s, err := qagview.NewSummarizer(res, res.N())
	if err != nil {
		log.Fatal(err)
	}
	sol, err := s.Summarize(qagview.Hybrid, qagview.Params{K: 2, L: 3, D: 1})
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range s.Rows(sol) {
		fmt.Printf("%v avg=%.1f size=%d\n", row.Pattern, row.Avg, row.Size)
	}
	// Output:
	// [east gadget] avg=8.0 size=1
	// [west *] avg=7.8 size=2
}

// ExampleSummarizer_Precompute shows interactive parameter exploration:
// precompute a (k, D) grid once, then retrieve any solution instantly and
// inspect the guidance series.
func ExampleSummarizer_Precompute() {
	rows := [][]string{
		{"a", "x"}, {"a", "y"}, {"a", "z"}, {"b", "x"}, {"b", "y"}, {"c", "z"},
	}
	vals := []float64{6, 5, 4, 3, 2, 1}
	s, err := qagview.NewSummarizerFromRows([]string{"g1", "g2"}, rows, vals, 4)
	if err != nil {
		log.Fatal(err)
	}
	store, err := s.Precompute(1, 3, []int{1, 2})
	if err != nil {
		log.Fatal(err)
	}
	v21, err := store.Value(2, 1)
	if err != nil {
		log.Fatal(err)
	}
	sol, err := store.Solution(2, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("value(k=2, D=1) = %.2f with %d clusters\n", v21, sol.Size())
	// Output:
	// value(k=2, D=1) = 4.50 with 2 clusters
}
