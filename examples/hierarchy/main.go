// Concept-hierarchy extension demo (Appendix A.6 of the paper): summarize
// average ratings per (age, gender, occupation) where the age attribute
// generalizes along a numeric range hierarchy, so merged clusters display
// ranges like "[20, 38)" instead of '*'.
package main

import (
	"fmt"
	"log"
	"strconv"

	"qagview"
	"qagview/internal/movielens"
)

func main() {
	rel, err := movielens.Generate(movielens.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	db := qagview.NewDB()
	if err := db.Register(rel); err != nil {
		log.Fatal(err)
	}
	res, err := db.Query(`SELECT age, gender, occupation, avg(rating) AS val
		FROM RatingTable WHERE genre_adventure = 1
		GROUP BY age, gender, occupation HAVING count(*) > 20 ORDER BY val DESC`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query produced %d groups over (age, gender, occupation)\n\n", res.N())

	// Age hierarchy: [10, 70) with fanout 3, per the paper's Figure 11.
	lo, hi := ageBounds(res)
	ageTree, err := qagview.NumericRanges(lo, hi+1, 3)
	if err != nil {
		log.Fatal(err)
	}

	L := 12
	if res.N() < L {
		L = res.N()
	}
	h, err := qagview.NewHierarchicalSummarizer(res, []*qagview.HierarchyTree{ageTree, nil, nil}, L)
	if err != nil {
		log.Fatal(err)
	}
	p := qagview.HiParams{K: 4, L: L, D: 2}
	sol, err := h.Summarize(qagview.BottomUp, p)
	if err != nil {
		log.Fatal(err)
	}
	if err := h.Validate(p, sol); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hierarchical summary (k=4, L=%d, D=2), objective %.3f:\n\n", L, sol.AvgValue())
	fmt.Print(h.Format(sol, false))

	// Contrast: the flat framework can only star the age attribute.
	s, err := qagview.NewSummarizer(res, L)
	if err != nil {
		log.Fatal(err)
	}
	flat, err := s.Summarize(qagview.BottomUp, qagview.Params{K: 4, L: L, D: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nflat summary for comparison (age generalizes only to '*'):\n\n")
	fmt.Print(s.Format(flat, false))
}

func ageBounds(res *qagview.Result) (lo, hi int) {
	lo, hi = 1<<30, 0
	for _, row := range res.Rows {
		v, err := strconv.Atoi(row[0])
		if err != nil {
			log.Fatal(err)
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
