// Interactive exploration demo (Section 6 and Appendix A.7 of the paper):
// precompute solutions over a (k, D) grid, render the guidance view that
// helps pick parameters (Figure 2), retrieve two consecutive solutions, and
// show the comparison view's optimal cluster placement versus the default.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"qagview"
	"qagview/internal/movielens"
)

func main() {
	rel, err := movielens.Generate(movielens.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	db := qagview.NewDB()
	if err := db.Register(rel); err != nil {
		log.Fatal(err)
	}
	sql, err := movielens.Query(4, 30, "")
	if err != nil {
		log.Fatal(err)
	}
	res, err := db.Query(sql)
	if err != nil {
		log.Fatal(err)
	}
	L := 15
	if res.N() < L {
		log.Fatalf("need %d groups, have %d", L, res.N())
	}
	s, err := qagview.NewSummarizer(res, L)
	if err != nil {
		log.Fatal(err)
	}

	// The per-D replays are independent, so the grid precompute fans out
	// over all cores by default; qagview.Parallelism(1) would reproduce the
	// paper's sequential path with bit-identical output.
	kMin, kMax := 2, 12
	ds := []int{1, 2, 3}
	t0 := time.Now()
	store, err := s.Precompute(kMin, kMax, ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("precomputed %d (k, D) combinations as %d intervals in %v\n\n",
		(kMax-kMin+1)*len(ds), store.StoredIntervals(),
		time.Since(t0).Round(time.Microsecond))

	// Figure 2 analogue: one line per D, value vs k, as an ASCII chart.
	g := store.Guidance()
	fmt.Printf("guidance view (avg value vs k), L=%d:\n\n", L)
	lo, hi := bounds(g)
	for _, d := range ds {
		fmt.Printf("D=%d |", d)
		for i, v := range g.Series[d] {
			if !g.Stored(d, kMin+i) {
				fmt.Printf(" %-5s", "-")
				continue
			}
			fmt.Printf(" %s", bar(v, lo, hi))
		}
		fmt.Println()
	}
	fmt.Print("      ")
	for k := kMin; k <= kMax; k++ {
		fmt.Printf("k=%-4d", k)
	}
	fmt.Println()
	fmt.Println("\n(each cell: value scaled to", fmt.Sprintf("[%.3f, %.3f]", lo, hi), "as a 1-5 bar)")

	// A user inspects k=8, D=2, then narrows to k=5: show both solutions and
	// how the clusters redistribute.
	before, err := store.Solution(8, 2)
	if err != nil {
		log.Fatal(err)
	}
	after, err := store.Solution(5, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsolution at k=8, D=2 (value %.3f):\n%s", before.AvgValue(), s.Format(before, false))
	fmt.Printf("\nsolution at k=5, D=2 (value %.3f):\n%s", after.AvgValue(), s.Format(after, false))

	diff, err := s.Compare(before, after)
	if err != nil {
		log.Fatal(err)
	}
	def := diff.DefaultOrder()
	opt, err := diff.OptimalOrder()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncomparison view (Appendix A.7): band distance and crossings")
	fmt.Printf("  default placement: distance %d, crossings %d\n",
		diff.TotalDistance(def), diff.Crossings(def))
	fmt.Printf("  matched placement: distance %d, crossings %d\n",
		diff.TotalDistance(opt), diff.Crossings(opt))
	fmt.Println("\nband overlaps (old cluster row x new cluster column, tuple counts):")
	for i := range diff.M {
		fmt.Printf("  old#%d |", i)
		for _, v := range diff.M[i] {
			fmt.Printf(" %3d", v)
		}
		fmt.Println()
	}
}

func bounds(g *qagview.Guidance) (lo, hi float64) {
	first := true
	for d, series := range g.Series {
		for i, v := range series {
			if !g.Stored(d, g.KMin+i) {
				continue // zero placeholder, not a value
			}
			if first || v < lo {
				lo = v
			}
			if first || v > hi {
				hi = v
			}
			first = false
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	return lo, hi
}

// bar renders v in [lo, hi] as a 5-char bar.
func bar(v, lo, hi float64) string {
	n := int((v - lo) / (hi - lo) * 5)
	if n < 1 {
		n = 1
	}
	if n > 5 {
		n = 5
	}
	return fmt.Sprintf("%-5s", strings.Repeat("#", n))
}
