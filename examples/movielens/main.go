// The paper's running example (Examples 1.1 and 1.2): summarize the average
// adventure-genre ratings per (half-decade, age group, gender, occupation)
// with k=4, L=8, D=2, printing the analogues of Figures 1a-1c, and contrast
// the summary with the plain top-4 answers.
package main

import (
	"fmt"
	"log"

	"qagview"
	"qagview/internal/movielens"
)

func main() {
	rel, err := movielens.Generate(movielens.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	db := qagview.NewDB()
	if err := db.Register(rel); err != nil {
		log.Fatal(err)
	}

	sql, err := movielens.Query(4, 50, "genre_adventure = 1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- Example 1.1 query --")
	fmt.Println(sql)
	res, err := db.Query(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n-- Figure 1a analogue: %d result tuples, top 8 and bottom 8 --\n", res.N())
	printRanked(res, 8)

	s, err := qagview.NewSummarizer(res, res.N())
	if err != nil {
		log.Fatal(err)
	}
	p := qagview.Params{K: 4, L: 8, D: 2}
	sol, err := s.Summarize(qagview.Hybrid, p)
	if err != nil {
		log.Fatal(err)
	}
	if err := s.Validate(p, sol); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n-- Figure 1b analogue: clusters for k=4, L=8, D=2 --")
	fmt.Print(s.Format(sol, false))
	fmt.Println("\n-- Figure 1c analogue: clusters expanded to the answers they cover --")
	fmt.Print(s.Format(sol, true))

	// The motivation of Section 1: the plain top-4 answers repeat
	// information and can mislead; compare their common properties against
	// the summary's patterns.
	fmt.Println("\n-- Plain top-4 answers (what the summary replaces) --")
	printRanked(res, 4)
	fmt.Printf("\nsummary objective: %.3f over %d covered answers; trivial all-* baseline: %.3f\n",
		sol.AvgValue(), len(sol.Covered), s.LowerBound().AvgValue())
}

func printRanked(res *qagview.Result, n int) {
	show := func(i int) {
		fmt.Printf("%3d  ", i+1)
		for _, c := range res.Rows[i] {
			fmt.Printf("%-12s", c)
		}
		fmt.Printf("%.3f\n", res.Vals[i])
	}
	for i := 0; i < n && i < res.N(); i++ {
		show(i)
	}
	if res.N() > 2*n {
		fmt.Println("  ...")
	}
	for i := res.N() - n; i < res.N(); i++ {
		if i >= n {
			show(i)
		}
	}
}
