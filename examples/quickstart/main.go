// Quickstart: summarize the top answers of an aggregate query over a small
// in-memory table, end to end in ~40 lines.
package main

import (
	"fmt"
	"log"

	"qagview"
)

func main() {
	// 1. Build a relation (normally loaded via qagview.ReadCSV).
	rel := mustRelation()
	db := qagview.NewDB()
	if err := db.Register(rel); err != nil {
		log.Fatal(err)
	}

	// 2. Run the aggregate query: average score per (region, product, tier).
	res, err := db.Query(`SELECT region, product, tier, avg(score) AS val
		FROM reviews GROUP BY region, product, tier ORDER BY val DESC`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query produced %d ranked groups\n", res.N())

	// 3. Summarize: at most k=3 clusters covering the top L=6 answers, any
	// two clusters at distance >= D=2.
	s, err := qagview.NewSummarizer(res, res.N())
	if err != nil {
		log.Fatal(err)
	}
	p := qagview.Params{K: 3, L: 6, D: 2}
	sol, err := s.Summarize(qagview.Hybrid, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("objective (avg value of covered answers): %.3f\n\n", sol.AvgValue())

	// 4. Display both layers: clusters, then the answers they cover.
	fmt.Print(s.Format(sol, true))
}

func mustRelation() *qagview.Relation {
	regions := []string{}
	products := []string{}
	tiers := []string{}
	scores := []float64{}
	add := func(region, product, tier string, score float64, n int) {
		for i := 0; i < n; i++ {
			regions = append(regions, region)
			products = append(products, product)
			tiers = append(tiers, tier)
			scores = append(scores, score+float64(i%3)*0.1)
		}
	}
	// Planted structure: the west/gadget pairs score high across tiers.
	add("west", "gadget", "pro", 4.6, 4)
	add("west", "gadget", "basic", 4.3, 4)
	add("west", "widget", "pro", 4.1, 4)
	add("east", "gadget", "pro", 4.0, 4)
	add("east", "widget", "basic", 2.4, 4)
	add("south", "widget", "basic", 2.1, 4)
	add("south", "gadget", "basic", 3.0, 4)
	add("east", "widget", "pro", 2.8, 4)
	rel, err := qagview.FromColumns("reviews",
		qagview.StringColumn("region", regions),
		qagview.StringColumn("product", products),
		qagview.StringColumn("tier", tiers),
		qagview.FloatColumn("score", scores),
	)
	if err != nil {
		log.Fatal(err)
	}
	return rel
}
