// Example serving walks the qagviewd HTTP API end to end: it starts the
// server in-process on an ephemeral port, loads a table, opens an
// exploration session, and reads solutions, a guidance grid, and a slider
// diff — printing the equivalent curl command for every step, so the output
// doubles as a copy-paste walkthrough against a real deployment
// (`qagviewd -addr :8080 -sample movielens`).
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"qagview/internal/movielens"
	"qagview/internal/server"
)

func main() {
	srv := server.New(server.Config{MaxSessions: 8})
	defer srv.Close()

	rel, err := movielens.Generate(movielens.Config{Users: 400, Movies: 600, Ratings: 20_000, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Register(rel); err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = http.Serve(ln, srv.Handler()) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("qagviewd serving on %s (table RatingTable, %d rows)\n", base, rel.NumRows())

	sql := "SELECT hdec, agegrp, gender, avg(rating) AS val FROM RatingTable " +
		"GROUP BY hdec, agegrp, gender HAVING count(*) > 50 ORDER BY val DESC"

	// 1. Run the aggregate query to see the ranked answer space.
	body := fmt.Sprintf(`{"sql": %q, "limit": 3}`, sql)
	out := call("POST", base+"/v1/queries", body)
	fmt.Printf("top groups: n=%v, first row %v (val %v)\n\n",
		out["n"], out["rows"].([]any)[0], out["vals"].([]any)[0])

	// 2. Open an exploration session: Summarizer for (query, L) plus a
	// background (k, D) precompute.
	body = fmt.Sprintf(`{"sql": %q, "l": 8, "kmin": 1, "kmax": 6, "ds": [1, 2]}`, sql)
	out = call("POST", base+"/v1/sessions", body)
	id := out["session"].(string)
	fmt.Printf("session %s: %v clusters over %v answers (store_ready=%v)\n\n",
		id, out["clusters"], out["n"], out["store_ready"])

	// 3. Read solutions while dragging the k slider. Early reads may be
	// served live while the store builds; the response labels its source.
	for _, k := range []int{2, 3, 4} {
		out = call("GET", fmt.Sprintf("%s/v1/sessions/%s/solution?k=%d&d=2", base, id, k), "")
		fmt.Printf("k=%d (%s): objective %.3f, %d clusters\n",
			k, out["source"], out["objective"].(float64), len(out["clusters"].([]any)))
	}
	fmt.Println()

	// 4. Wait for the background sweep, then read the guidance grid (the
	// value-vs-k series behind the paper's parameter-selection view).
	for {
		out = call("GET", base+"/v1/sessions/"+id, "")
		if out["store_ready"] == true {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	out = call("GET", base+"/v1/sessions/"+id+"/guidance", "")
	fmt.Printf("guidance series for D=2: %v\n\n", compact(out["series"].(map[string]any)["2"]))

	// 5. Diff two neighbouring slider positions (the sankey view's data).
	out = call("GET", fmt.Sprintf("%s/v1/sessions/%s/diff?k1=2&d1=2&k2=4&d2=2", base, id), "")
	fmt.Printf("diff k=2 -> k=4: %d left clusters, %d right clusters, overlap %v\n\n",
		len(out["left"].([]any)), len(out["right"].([]any)), compact(out["overlap"]))

	// 6. Operational surfaces.
	out = call("GET", base+"/metrics", "")
	sessions := out["sessions"].(map[string]any)
	fmt.Printf("metrics: %v live sessions, %v cache bytes\n", sessions["live"], sessions["bytes"])
}

// call issues the request, prints the equivalent curl line, and decodes the
// JSON response.
func call(method, url, body string) map[string]any {
	curl := "curl -s"
	if method != "GET" {
		curl += " -X " + method + " -H 'Content-Type: application/json' -d '" + body + "'"
	}
	fmt.Printf("$ %s '%s'\n", curl, url)

	var req *http.Request
	var err error
	if body == "" {
		req, err = http.NewRequest(method, url, nil)
	} else {
		req, err = http.NewRequest(method, url, strings.NewReader(body))
		if err == nil {
			req.Header.Set("Content-Type", "application/json")
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode >= 400 {
		log.Fatalf("%s %s: HTTP %d: %s", method, url, resp.StatusCode, raw)
	}
	out := map[string]any{}
	if err := json.Unmarshal(raw, &out); err != nil {
		log.Fatalf("decoding %s response: %v", url, err)
	}
	return out
}

// compact renders a JSON fragment on one line for the walkthrough output.
func compact(v any) string {
	raw, _ := json.Marshal(v)
	return string(raw)
}
