// TPC-DS scalability demo (Section 7.4 of the paper): generate the synthetic
// store_sales table, run a wide aggregate query producing tens of thousands
// of groups, and time initialization, a single summarization, and the
// precompute-then-retrieve path.
package main

import (
	"fmt"
	"log"
	"time"

	"qagview"
	"qagview/internal/tpcds"
)

func main() {
	t0 := time.Now()
	rel, err := tpcds.Generate(tpcds.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated store_sales: %d rows x %d columns in %v\n",
		rel.NumRows(), rel.NumCols(), time.Since(t0).Round(time.Millisecond))

	db := qagview.NewDB()
	if err := db.Register(rel); err != nil {
		log.Fatal(err)
	}
	sql, err := tpcds.Query(7, 3)
	if err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	res, err := db.Query(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aggregate query: N = %d groups in %v\n", res.N(), time.Since(t0).Round(time.Millisecond))

	L := 1000
	if res.N() < L {
		L = res.N()
	}
	t0 = time.Now()
	s, err := qagview.NewSummarizer(res, L)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initialization (cluster space: %d clusters): %v\n",
		s.NumClusters(), time.Since(t0).Round(time.Millisecond))

	p := qagview.Params{K: 20, L: L, D: 2}
	t0 = time.Now()
	sol, err := s.Summarize(qagview.Hybrid, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single Hybrid run (k=20, L=%d, D=2): %v, objective %.2f\n",
		L, time.Since(t0).Round(time.Millisecond), sol.AvgValue())

	t0 = time.Now()
	store, err := s.Precompute(1, 20, []int{1, 2, 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("precompute k=1..20 x D={1,2,3}: %v (%d stored intervals)\n",
		time.Since(t0).Round(time.Millisecond), store.StoredIntervals())

	t0 = time.Now()
	for k := 1; k <= 20; k++ {
		for _, d := range []int{1, 2, 3} {
			if _, err := store.Solution(k, d); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("retrieved all 60 (k, D) solutions in %v\n", time.Since(t0).Round(time.Millisecond))
	ret, err := store.Solution(20, 2)
	if err != nil {
		log.Fatal(err)
	}
	if ret.Size() < 20 {
		// On this weakly structured workload the greedy merge trace can
		// cascade to few clusters below some k (see EXPERIMENTS.md); the
		// stored solution is still feasible for every requested k.
		fmt.Printf("note: sweep solution at k=20, D=2 has %d clusters (greedy merge cascade)\n", ret.Size())
	}

	fmt.Println("\ntop clusters at k=20, D=2:")
	fmt.Print(s.Format(sol, false))
}
