module qagview

go 1.22
