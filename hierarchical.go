package qagview

import (
	"fmt"
	"strings"

	"qagview/internal/hierarchy"
	"qagview/internal/hisummarize"
)

// Hierarchy types, re-exported for the Appendix A.6 extension: summarization
// where attributes generalize along concept hierarchies (age ranges, date
// ranges) instead of collapsing directly to '*'.
type (
	// HierarchyTree is a preprocessed concept hierarchy for one attribute.
	HierarchyTree = hierarchy.Tree
	// HierarchyNode is an input node for NewHierarchy.
	HierarchyNode = hierarchy.Node
	// HiParams are the (k, L, D) parameters for hierarchical summarization.
	HiParams = hisummarize.Params
	// HiSolution is a feasible hierarchical cluster set.
	HiSolution = hisummarize.Solution
)

// Hierarchy constructors, re-exported.
var (
	// NewHierarchy preprocesses a hierarchy rooted at the given node.
	NewHierarchy = hierarchy.New
	// NumericRanges builds a range hierarchy over [lo, hi) with the given
	// fanout, as in the paper's age example (Appendix A.6, Figure 11).
	NumericRanges = hierarchy.NumericRanges
)

// HierarchicalSummarizer owns the hierarchical cluster space for one query
// result: the Appendix A.6 variant of Summarizer.
type HierarchicalSummarizer struct {
	space *hisummarize.Space
	ix    *hisummarize.Index
}

// NewHierarchicalSummarizer builds the hierarchical cluster space for the
// top-L tuples. trees supplies one hierarchy per grouping attribute; nil
// entries (or a nil slice) fall back to the flat '*' semantics for that
// attribute. Every data value must be a leaf of its attribute's hierarchy.
func NewHierarchicalSummarizer(res *Result, trees []*HierarchyTree, L int) (*HierarchicalSummarizer, error) {
	if res == nil {
		return nil, fmt.Errorf("qagview: nil result")
	}
	space, err := hisummarize.NewSpace(res.GroupBy, trees, res.Rows, res.Vals)
	if err != nil {
		return nil, err
	}
	ix, err := hisummarize.BuildIndex(space, L)
	if err != nil {
		return nil, err
	}
	return &HierarchicalSummarizer{space: space, ix: ix}, nil
}

// Summarize runs the named algorithm (bottom-up, fixed-order, or hybrid —
// the variants supported by the extension) for the given parameters.
func (h *HierarchicalSummarizer) Summarize(algo Algorithm, p HiParams) (*HiSolution, error) {
	switch algo {
	case BottomUp:
		return hisummarize.BottomUp(h.ix, p)
	case FixedOrder:
		return hisummarize.FixedOrder(h.ix, p)
	case Hybrid:
		return hisummarize.Hybrid(h.ix, p)
	default:
		return nil, fmt.Errorf("qagview: algorithm %q is not supported with hierarchies", algo)
	}
}

// Validate checks a hierarchical solution against Definition 4.1 under the
// hierarchy semantics.
func (h *HierarchicalSummarizer) Validate(p HiParams, sol *HiSolution) error {
	return hisummarize.Validate(h.ix, p, sol)
}

// Format renders a hierarchical solution, with range labels for generalized
// attributes; expand includes the covered answers.
func (h *HierarchicalSummarizer) Format(sol *HiSolution, expand bool) string {
	var sb strings.Builder
	header := append(append([]string{}, h.space.Attrs...), "avg val", "size")
	sb.WriteString(strings.Join(header, "  "))
	sb.WriteByte('\n')
	for _, c := range sol.Clusters {
		cells := append(append([]string{}, h.space.Render(c.Pat)...),
			fmt.Sprintf("%.3f", c.Avg()), fmt.Sprintf("%d", c.Size()))
		sb.WriteString(strings.Join(cells, "  "))
		sb.WriteByte('\n')
		if expand {
			for _, t := range c.Cov {
				row := append(append([]string{" "}, h.space.Render(h.space.Tuples[t])...),
					fmt.Sprintf("%.3f", h.space.Vals[t]), fmt.Sprintf("#%d", int(t)+1))
				sb.WriteString(strings.Join(row, "  "))
				sb.WriteByte('\n')
			}
		}
	}
	return sb.String()
}
