package qagview

import (
	"strings"
	"testing"
)

func TestHierarchicalSummarizerEndToEnd(t *testing.T) {
	db := movieDB(t)
	res, err := db.Query(`SELECT age, gender, avg(rating) AS val FROM RatingTable
		WHERE genre_adventure = 1 GROUP BY age, gender HAVING count(*) > 10 ORDER BY val DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if res.N() < 10 {
		t.Fatalf("only %d groups", res.N())
	}
	ageTree, err := NumericRanges(0, 80, 3)
	if err != nil {
		t.Fatal(err)
	}
	L := 10
	h, err := NewHierarchicalSummarizer(res, []*HierarchyTree{ageTree, nil}, L)
	if err != nil {
		t.Fatal(err)
	}
	p := HiParams{K: 3, L: L, D: 1}
	for _, algo := range []Algorithm{BottomUp, FixedOrder, Hybrid} {
		sol, err := h.Summarize(algo, p)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if err := h.Validate(p, sol); err != nil {
			t.Errorf("%s infeasible: %v", algo, err)
		}
	}
	if _, err := h.Summarize(BruteForce, p); err == nil {
		t.Error("unsupported algorithm accepted")
	}
	sol, err := h.Summarize(BottomUp, p)
	if err != nil {
		t.Fatal(err)
	}
	text := h.Format(sol, true)
	if !strings.Contains(text, "avg val") || !strings.Contains(text, "#1") {
		t.Errorf("Format malformed:\n%s", text)
	}
}

func TestNewHierarchicalSummarizerErrors(t *testing.T) {
	if _, err := NewHierarchicalSummarizer(nil, nil, 3); err == nil {
		t.Error("nil result accepted")
	}
	res := &Result{GroupBy: []string{"a"}, Rows: [][]string{{"x"}}, Vals: []float64{1}}
	if _, err := NewHierarchicalSummarizer(res, nil, 5); err == nil {
		t.Error("L > N accepted")
	}
	tree, err := NumericRanges(0, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	bad := &Result{GroupBy: []string{"a"}, Rows: [][]string{{"99"}}, Vals: []float64{1}}
	if _, err := NewHierarchicalSummarizer(bad, []*HierarchyTree{tree}, 1); err == nil {
		t.Error("value outside hierarchy accepted")
	}
}
