// Package analysis is a small, dependency-free reimplementation of the core
// of golang.org/x/tools/go/analysis, built only on the standard library's
// go/ast and go/types. It exists because qagview's correctness rests on
// invariants no generic linter can see — bit-identical determinism,
// copy-on-write index maintenance, pooled-state hygiene, cancellation
// observance, and lock scoping — and those contracts deserve machine
// checking, not folklore (see docs/ANALYZERS.md for the precise statements).
//
// The shape mirrors go/analysis on purpose: an Analyzer bundles a name, a
// doc string, and a Run function over a Pass; a Pass presents one
// type-checked package and collects Diagnostics. Drivers differ: the
// `go vet -vettool` protocol driver lives in internal/analysis/unit, and the
// fixture-based test harness in internal/analysis/analysistest.
//
// All analyzers honor a shared suppression syntax:
//
//	//qag:allow <analyzer> <reason>
//
// placed on the flagged line or the line directly above it. The reason is
// mandatory; an allow comment without one is itself reported. detiter
// additionally accepts the shorthand //qag:det (see suppress.go).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //qag:allow comments.
	Name string
	// Doc is a one-paragraph description of the invariant checked.
	Doc string
	// Run reports violations found in the pass's package.
	Run func(*Pass) error
}

// Pass presents one type-checked package to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	// Analyzer names the reporting analyzer.
	Analyzer string
	// Pos locates the violation.
	Pos token.Pos
	// Message states the violation and, where possible, the fix.
	Message string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// ObjectOf resolves an identifier to its object, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.TypesInfo.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// Run runs every analyzer over one type-checked package, applies //qag:allow
// suppression, and returns the surviving diagnostics sorted by position.
// Malformed allow comments (missing analyzer name or reason) are reported as
// diagnostics of the pseudo-analyzer "qagallow".
func Run(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	sup := collectSuppressions(fset, files)
	var out []Diagnostic
	out = append(out, sup.malformed...)
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		for _, d := range pass.diags {
			if !sup.suppressed(a.Name, fset.Position(d.Pos)) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := fset.Position(out[i].Pos), fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// NewInfo returns a types.Info with every map analyzers rely on populated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
