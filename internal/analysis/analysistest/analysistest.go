// Package analysistest is a fixture-based test harness for qagvet analyzers,
// mirroring golang.org/x/tools/go/analysis/analysistest on the standard
// library only.
//
// A test points Run at a package directory under testdata/src. Every .go file
// there is parsed and type-checked, the analyzer runs, and its diagnostics
// are compared against `// want` comments in the fixtures:
//
//	sum += v // want `float accumulation`
//	total := tally(m) // want `append` `float`
//
// Each quoted fragment is a regexp that must match the message of exactly one
// diagnostic reported on that line; diagnostics with no matching want, and
// wants with no matching diagnostic, fail the test. Suppression is exercised
// the natural way: a fixture line carrying //qag:allow and no want comment
// asserts the diagnostic is swallowed.
//
// Fixture packages are hermetic: imports resolve only against testdata/src,
// never the real module or GOROOT. Analyzers match types by package-path
// segment (analysis.IsNamed), so a fixture ships a few-line stub for each
// dependency — a `sync` with just Pool and Mutex, a `lattice` with just
// Cluster and Index — under testdata/src/<path>. This keeps the tests
// independent of export data and makes the stand-in types explicit.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"qagview/internal/analysis"
)

// Run loads each named package from dir/src, applies the analyzer, and
// checks diagnostics against the // want comments in the fixtures.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	for _, pkgPath := range pkgPaths {
		t.Run(pkgPath, func(t *testing.T) {
			t.Helper()
			runOne(t, dir, a, pkgPath)
		})
	}
}

// TestData returns the absolute path of the calling package's testdata
// directory.
func TestData(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func runOne(t *testing.T, dir string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	fset := token.NewFileSet()
	ld := &loader{root: filepath.Join(dir, "src"), fset: fset, pkgs: make(map[string]*loaded)}
	lp, err := ld.load(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture package %s: %v", pkgPath, err)
	}
	diags, err := analysis.Run([]*analysis.Analyzer{a}, fset, lp.files, lp.pkg, lp.info)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgPath, err)
	}
	check(t, fset, lp.files, diags)
}

// loaded is one type-checked fixture package.
type loaded struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader resolves fixture packages by import path under root, recursively.
type loader struct {
	root string
	fset *token.FileSet
	pkgs map[string]*loaded
}

// Import implements types.Importer over testdata/src only, so fixtures are
// hermetic.
func (ld *loader) Import(path string) (*types.Package, error) {
	lp, err := ld.load(path)
	if err != nil {
		return nil, err
	}
	return lp.pkg, nil
}

func (ld *loader) load(path string) (*loaded, error) {
	if lp, ok := ld.pkgs[path]; ok {
		return lp, nil
	}
	pdir := filepath.Join(ld.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(pdir)
	if err != nil {
		return nil, fmt.Errorf("fixture import %q does not resolve under %s (fixtures are hermetic; add a stub package): %w", path, ld.root, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(pdir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture package %q has no .go files", path)
	}
	info := analysis.NewInfo()
	tc := &types.Config{Importer: ld}
	pkg, err := tc.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking fixture %q: %w", path, err)
	}
	lp := &loaded{pkg: pkg, files: files, info: info}
	ld.pkgs[path] = lp
	return lp, nil
}

var _ types.Importer = (*loader)(nil)

// want is one expectation parsed from a fixture comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// wantRE extracts the expectation list from a comment: `// want "re" ...`
// with double-quoted or backquoted fragments.
var (
	wantPrefixRE   = regexp.MustCompile(`//\s*want\s+`)
	wantFragmentRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")
)

// reporter is the slice of testing.T the matcher needs; tests of the harness
// itself substitute a recorder.
type reporter interface {
	Errorf(format string, args ...any)
}

func collectWants(t reporter, fset *token.FileSet, files []*ast.File) []*want {
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				loc := wantPrefixRE.FindStringIndex(c.Text)
				if loc == nil {
					continue
				}
				rest := c.Text[loc[1]:]
				frags := wantFragmentRE.FindAllString(rest, -1)
				if len(frags) == 0 {
					t.Errorf("%s: // want comment with no quoted expectations", fset.Position(c.Pos()))
					continue
				}
				pos := fset.Position(c.Pos())
				for _, frag := range frags {
					body := frag[1 : len(frag)-1]
					if frag[0] == '"' {
						body = strings.ReplaceAll(body, `\"`, `"`)
						body = strings.ReplaceAll(body, `\\`, `\`)
					}
					re, err := regexp.Compile(body)
					if err != nil {
						t.Errorf("%s: bad want regexp %s: %v", pos, frag, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: frag})
				}
			}
		}
	}
	return wants
}

// check matches diagnostics against wants one-to-one per line.
func check(t reporter, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	wants := collectWants(t, fset, files)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s [%s]", pos, d.Message, d.Analyzer)
		}
	}
	var missing []string
	for _, w := range wants {
		if !w.matched {
			missing = append(missing, fmt.Sprintf("%s:%d: no diagnostic matching %s", w.file, w.line, w.raw))
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		t.Errorf("%s", m)
	}
}
