package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"qagview/internal/analysis"
)

// recorder captures matcher failures so the harness's own guarantees — a
// regression in diagnostics or suppression fails the test — are themselves
// tested.
type recorder struct{ msgs []string }

func (r *recorder) Errorf(format string, args ...any) {
	r.msgs = append(r.msgs, fmt.Sprintf(format, args...))
}

const fixture = `package p

func f() {
	println("one") // want ` + "`bad thing`" + `
	println("two")
}
`

func parseFixture(t *testing.T) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", fixture, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

// posOnLine returns a position on the given 1-based line of the fixture.
func posOnLine(fset *token.FileSet, line int) token.Pos {
	var pos token.Pos
	fset.Iterate(func(f *token.File) bool {
		pos = f.LineStart(line)
		return false
	})
	return pos
}

func TestCheckMatches(t *testing.T) {
	fset, files := parseFixture(t)
	rec := &recorder{}
	check(rec, fset, files, []analysis.Diagnostic{
		{Analyzer: "demo", Pos: posOnLine(fset, 4), Message: "a bad thing happened"},
	})
	if len(rec.msgs) != 0 {
		t.Fatalf("matching diagnostic reported errors: %v", rec.msgs)
	}
}

func TestCheckFailsOnMissingDiagnostic(t *testing.T) {
	fset, files := parseFixture(t)
	rec := &recorder{}
	check(rec, fset, files, nil)
	if len(rec.msgs) != 1 || !strings.Contains(rec.msgs[0], "no diagnostic matching") {
		t.Fatalf("want one missing-diagnostic error, got %v", rec.msgs)
	}
}

func TestCheckFailsOnUnexpectedDiagnostic(t *testing.T) {
	fset, files := parseFixture(t)
	rec := &recorder{}
	check(rec, fset, files, []analysis.Diagnostic{
		{Analyzer: "demo", Pos: posOnLine(fset, 4), Message: "a bad thing happened"},
		{Analyzer: "demo", Pos: posOnLine(fset, 5), Message: "noise on an unannotated line"},
	})
	if len(rec.msgs) != 1 || !strings.Contains(rec.msgs[0], "unexpected diagnostic") {
		t.Fatalf("want one unexpected-diagnostic error, got %v", rec.msgs)
	}
}

func TestCheckFailsOnWrongMessage(t *testing.T) {
	fset, files := parseFixture(t)
	rec := &recorder{}
	check(rec, fset, files, []analysis.Diagnostic{
		{Analyzer: "demo", Pos: posOnLine(fset, 4), Message: "an unrelated message"},
	})
	// The diagnostic matches no want (wrong message) and the want matches no
	// diagnostic: both directions must fail.
	if len(rec.msgs) != 2 {
		t.Fatalf("want two errors (unexpected + missing), got %v", rec.msgs)
	}
}
