// Package cowcheck machine-checks the copy-on-write contract of qagview's
// incremental-maintenance subsystem (PR 5): a published lattice.Index is an
// immutable snapshot — concurrent readers (summarize runs, in-flight
// precompute sweeps) hold it without synchronization — so every change must
// flow through the COW entry points (ApplyDelta/Rebase), and shared
// dictionaries must be cloned before they are extended.
//
// Rules:
//
//  1. Foreign index writes: outside internal/lattice, any write to a field
//     of lattice.Cluster or lattice.Index (`c.Sum = ...`,
//     `ix.Clusters[i] = ...`), or through a coverage-arena subslice
//     (`c.Cov[i] = ...`, including one-level local aliases
//     `cov := c.Cov; cov[i] = ...`), is flagged. Cluster.Cov is a view into
//     the index's shared arena: writing one cluster's view corrupts its
//     neighbors for every reader of the index.
//
//  2. Dict mutation without Clone: outside internal/relation, calling the
//     interning method relation.Dict.ID — which mutates the dictionary — is
//     flagged unless a Dict.Clone or relation.NewDict call appears earlier in
//     the same function: cloning (the Clone-then-mutate idiom of
//     lattice.encodeRowsCOW) and fresh construction (lattice.NewSpace) both
//     establish ownership of the dictionary being extended. Lookup is the
//     read-only query and is always fine.
//
//  3. Discarded COW result: calling ApplyDelta or Rebase on a lattice.Index
//     and discarding every result (expression statement, or all-blank
//     assignment) is flagged: the receiver is never mutated, so the call
//     had no effect and the caller almost certainly believed otherwise.
package cowcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"qagview/internal/analysis"
)

// Analyzer is the cowcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "cowcheck",
	Doc:  "flags violations of the lattice.Index / relation.Dict copy-on-write contract",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	inLattice := analysis.PkgSegment(pass.Pkg, "lattice")
	inRelation := analysis.PkgSegment(pass.Pkg, "relation")
	analysis.FuncBodies(pass.Files, func(body *ast.BlockStmt) {
		covAliases := collectCovAliases(pass, body)
		var firstOwned token.Pos = token.NoPos
		if !inRelation {
			firstOwned = firstDictOwned(pass, body)
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if !inLattice {
					for _, lhs := range st.Lhs {
						checkWrite(pass, covAliases, lhs)
					}
				}
				if allBlank(st.Lhs) {
					for _, rhs := range st.Rhs {
						if call, ok := rhs.(*ast.CallExpr); ok {
							checkDiscardedCOW(pass, call)
						}
					}
				}
			case *ast.IncDecStmt:
				if !inLattice {
					checkWrite(pass, covAliases, st.X)
				}
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					checkDiscardedCOW(pass, call)
				}
			case *ast.CallExpr:
				if !inRelation {
					checkDictMutation(pass, st, firstOwned)
				}
			}
			return true
		})
	})
	return nil
}

// checkWrite flags assignments through lattice-owned state.
func checkWrite(pass *analysis.Pass, covAliases map[types.Object]bool, lhs ast.Expr) {
	switch l := lhs.(type) {
	case *ast.SelectorExpr:
		// c.Sum = ..., ix.Clusters = ... — direct field writes.
		if t := pass.TypeOf(l.X); isLatticeOwned(t) {
			pass.Reportf(lhs.Pos(), "write to lattice.%s.%s outside internal/lattice: published indexes are immutable copy-on-write snapshots; route the change through ApplyDelta/Rebase", analysis.Deref(t).(*types.Named).Obj().Name(), l.Sel.Name)
		}
	case *ast.IndexExpr:
		// c.Cov[i] = ..., cov[i] = ... (alias), ix.Clusters[i] = ...
		if isCovView(pass, covAliases, l.X) {
			pass.Reportf(lhs.Pos(), "write through a coverage-arena subslice outside internal/lattice: Cluster.Cov views the index's shared arena, so this corrupts other clusters for every reader; build new coverage via ApplyDelta/Rebase")
			return
		}
		if sel, ok := l.X.(*ast.SelectorExpr); ok {
			if t := pass.TypeOf(sel.X); isLatticeOwned(t) {
				pass.Reportf(lhs.Pos(), "write into lattice.%s.%s outside internal/lattice: published indexes are immutable copy-on-write snapshots", analysis.Deref(t).(*types.Named).Obj().Name(), sel.Sel.Name)
			}
		}
	}
}

// isCovView reports whether e denotes a Cluster.Cov subslice: the selector
// itself or a local alias assigned from one.
func isCovView(pass *analysis.Pass, covAliases map[types.Object]bool, e ast.Expr) bool {
	if sel, ok := e.(*ast.SelectorExpr); ok {
		return sel.Sel.Name == "Cov" && analysis.IsNamed(pass.TypeOf(sel.X), "lattice", "Cluster")
	}
	if id, ok := e.(*ast.Ident); ok {
		return covAliases[pass.ObjectOf(id)]
	}
	return false
}

// collectCovAliases finds local variables assigned (one level) from a
// Cluster.Cov selector, in source order.
func collectCovAliases(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	aliases := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			rhs := as.Rhs[i]
			// Slicing an alias keeps it an alias: cov2 := cov[1:].
			if sl, ok := rhs.(*ast.SliceExpr); ok {
				rhs = sl.X
			}
			if isCovView(pass, aliases, rhs) {
				if obj := pass.ObjectOf(id); obj != nil {
					aliases[obj] = true
				}
			}
		}
		return true
	})
	return aliases
}

func isLatticeOwned(t types.Type) bool {
	return analysis.IsNamed(t, "lattice", "Cluster") || analysis.IsNamed(t, "lattice", "Index")
}

// checkDictMutation flags Dict.ID calls with no earlier ownership-taking call
// (Dict.Clone or NewDict) in the same function.
func checkDictMutation(pass *analysis.Pass, call *ast.CallExpr, firstOwned token.Pos) {
	recv, ok := analysis.MethodCall(call, "ID")
	if !ok || !analysis.IsNamed(pass.TypeOf(recv), "relation", "Dict") {
		return
	}
	if firstOwned != token.NoPos && firstOwned < call.Pos() {
		return
	}
	pass.Reportf(call.Pos(), "Dict.ID interns (mutates) a dictionary that may be shared with a published index; Clone the dictionary first (Clone-then-mutate, see lattice.encodeRowsCOW), or use the read-only Lookup")
}

// firstDictOwned returns the position of the first call that takes ownership
// of a dictionary — Dict.Clone, or NewDict construction — or NoPos.
func firstDictOwned(pass *analysis.Pass, body *ast.BlockStmt) token.Pos {
	pos := token.NoPos
	note := func(p token.Pos) {
		if pos == token.NoPos || p < pos {
			pos = p
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, ok := analysis.MethodCall(call, "Clone"); ok && analysis.IsNamed(pass.TypeOf(recv), "relation", "Dict") {
			note(call.Pos())
		}
		if analysis.CalleeName(call) == "NewDict" && analysis.IsNamed(pass.TypeOf(call), "relation", "Dict") {
			note(call.Pos())
		}
		return true
	})
	return pos
}

// checkDiscardedCOW flags ApplyDelta/Rebase calls whose results are all
// discarded.
func checkDiscardedCOW(pass *analysis.Pass, call *ast.CallExpr) {
	name := analysis.CalleeName(call)
	if name != "ApplyDelta" && name != "Rebase" {
		return
	}
	recv, ok := analysis.MethodCall(call, name)
	if !ok || !analysis.IsNamed(pass.TypeOf(recv), "lattice", "Index") {
		return
	}
	pass.Reportf(call.Pos(), "%s result discarded: the receiver index is never mutated (copy-on-write); use the returned index or delete the call", name)
}

func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return len(lhs) > 0
}
