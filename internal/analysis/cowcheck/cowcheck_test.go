package cowcheck_test

import (
	"testing"

	"qagview/internal/analysis/analysistest"
	"qagview/internal/analysis/cowcheck"
)

func TestCowcheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), cowcheck.Analyzer, "a", "lattice", "relation")
}
