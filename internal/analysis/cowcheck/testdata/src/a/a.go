// Package a exercises cowcheck from outside the owning packages.
package a

import (
	"lattice"
	"relation"
)

// Rule 1: field writes to published index state.
func fieldWrites(ix *lattice.Index, c *lattice.Cluster) {
	c.Sum = 3.0                      // want `write to lattice.Cluster.Sum outside internal/lattice`
	ix.Clusters[0].Sum = 1           // want `write to lattice.Cluster.Sum outside internal/lattice`
	ix.Clusters[0] = *c              // want `write into lattice.Index.Clusters outside internal/lattice`
	ix.Dicts[0] = relation.NewDict() // want `write into lattice.Index.Dicts outside internal/lattice`
}

// Rule 1: writes through coverage-arena views, direct and via aliases.
func covWrites(c *lattice.Cluster) {
	c.Cov[0] = 1 // want `write through a coverage-arena subslice`
	cov := c.Cov
	cov[1] = 2 // want `write through a coverage-arena subslice`
	tail := cov[1:]
	tail[0] = 3 // want `write through a coverage-arena subslice`
}

// Reading coverage is what the views are for.
func covReads(c *lattice.Cluster) int32 {
	var total int32
	cov := c.Cov
	for _, id := range cov {
		total += id
	}
	return total + c.Cov[0]
}

// Rule 2: interning into a possibly-shared dictionary.
func internShared(d *relation.Dict) int32 {
	return d.ID("v") // want `Dict.ID interns \(mutates\) a dictionary that may be shared`
}

// Clone-then-mutate (the encodeRowsCOW idiom) is the sanctioned path.
func internCloned(d *relation.Dict) int32 {
	own := d.Clone()
	return own.ID("v")
}

// Fresh construction owns the dictionary outright (the NewSpace idiom).
func internFresh(vals []string) *relation.Dict {
	d := relation.NewDict()
	for _, v := range vals {
		d.ID(v)
	}
	return d
}

// Lookup is the read-only query.
func lookupOnly(d *relation.Dict) (int32, bool) {
	return d.Lookup("v")
}

// Rule 3: COW results must be used.
func discarded(ix *lattice.Index) {
	ix.ApplyDelta(1)        // want `ApplyDelta result discarded`
	ix.Rebase(2)            // want `Rebase result discarded`
	_, _ = ix.ApplyDelta(3) // want `ApplyDelta result discarded`
}

func used(ix *lattice.Index) *lattice.Index {
	nix, _ := ix.ApplyDelta(1)
	return nix.Rebase(2)
}

// Suppression: a justified exception is honored.
func allowedWrite(c *lattice.Cluster) {
	//qag:allow cowcheck fixture: cluster is a private deep copy under test
	c.Sum = 9
}
