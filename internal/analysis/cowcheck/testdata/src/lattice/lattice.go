// Package lattice is a hermetic fixture stub standing in for
// qagview/internal/lattice. It doubles as the in-package negative: writes to
// Cluster/Index state inside the owning package are the maintenance code
// itself and are not flagged.
package lattice

import "relation"

type Cluster struct {
	ID  int32
	Cov []int32
	Sum float64
}

type Index struct {
	Clusters []Cluster
	Dicts    []*relation.Dict
}

func (ix *Index) ApplyDelta(n int) (*Index, int) { return ix, n }

func (ix *Index) Rebase(n int) *Index { return ix }

// maintain is the owning package's own mutation path: exempt from rule 1.
func maintain(ix *Index) {
	ix.Clusters[0].Sum = 1
	ix.Clusters[0].Cov[0] = 2
	ix.Clusters[0] = Cluster{}
}
