// Package relation is a hermetic fixture stub standing in for
// qagview/internal/relation: cowcheck matches types by package-path segment,
// so only the shapes matter.
package relation

type Dict struct{ m map[string]int32 }

func NewDict() *Dict { return &Dict{m: make(map[string]int32)} }

// ID interns (mutates); Lookup is read-only; Clone takes ownership.
func (d *Dict) ID(v string) int32 { return 0 }

func (d *Dict) Lookup(v string) (int32, bool) { return 0, false }

func (d *Dict) Clone() *Dict { return &Dict{m: d.m} }
