// Package ctxsweep machine-checks the eviction-cancellation contract of the
// serving layer (PR 4): sweeps and replays are expensive, and a session can
// be evicted (or superseded by a refresh) while its background work is
// queued — so every loop in internal/precompute and internal/server that
// dispatches replay/sweep work must observe its context between iterations,
// otherwise a cancelled session keeps burning CPU until the whole grid
// finishes.
//
// A loop (for/range) is flagged when its body calls a sweep/replay entry
// point — RunD, runOne, Run, RunSweeper, Precompute, Summarize, or
// buildStore — but contains no ctx.Err() or ctx.Done() use on a
// context.Context value. The check is lexical: a select with a ctx.Done()
// case, an `if ctx.Err() != nil` guard, or a worker closure that checks
// ctx.Err() before each item all satisfy it.
//
// The analyzer only runs on packages named precompute or server, and skips
// _test.go files; elsewhere loops of sweep calls are legitimate (benchmarks,
// experiments, tests of the sweep itself — a test driving Run in a loop is
// exercising the sweep, not serving an evictable session).
package ctxsweep

import (
	"go/ast"
	"strings"

	"qagview/internal/analysis"
)

// Analyzer is the ctxsweep analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ctxsweep",
	Doc:  "flags loops in precompute/server that dispatch sweep work without observing ctx cancellation",
	Run:  run,
}

// sweepEntryPoints are the callee names that count as dispatching
// replay/sweep work.
var sweepEntryPoints = map[string]bool{
	"RunD":       true,
	"runOne":     true,
	"Run":        true,
	"RunSweeper": true,
	"Precompute": true,
	"Summarize":  true,
	"buildStore": true,
}

func run(pass *analysis.Pass) error {
	if !analysis.PkgSegment(pass.Pkg, "precompute") && !analysis.PkgSegment(pass.Pkg, "server") {
		return nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch l := n.(type) {
			case *ast.ForStmt:
				body = l.Body
			case *ast.RangeStmt:
				body = l.Body
			default:
				return true
			}
			name, dispatches := sweepCall(body)
			if dispatches && !observesCtx(pass, body) {
				pass.Reportf(n.Pos(), "loop dispatches sweep/replay work (%s) without observing ctx.Err()/ctx.Done() between iterations: an evicted or superseded session would keep computing; check the context each iteration (see precompute.runAll)", name)
			}
			return true
		})
	}
	return nil
}

// sweepCall reports whether the loop body calls a sweep entry point, and
// which one.
func sweepCall(body *ast.BlockStmt) (string, bool) {
	found := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if name := analysis.CalleeName(call); sweepEntryPoints[name] {
				found = name
				return false
			}
		}
		return true
	})
	return found, found != ""
}

// observesCtx reports whether the loop body mentions ctx.Err or ctx.Done on
// a context.Context value.
func observesCtx(pass *analysis.Pass, body *ast.BlockStmt) bool {
	seen := false
	ast.Inspect(body, func(n ast.Node) bool {
		if seen {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Err" && sel.Sel.Name != "Done" {
			return true
		}
		if analysis.IsContext(pass.TypeOf(sel.X)) {
			seen = true
			return false
		}
		return true
	})
	return seen
}
