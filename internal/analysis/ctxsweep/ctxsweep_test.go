package ctxsweep_test

import (
	"testing"

	"qagview/internal/analysis/analysistest"
	"qagview/internal/analysis/ctxsweep"
)

func TestCtxsweep(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), ctxsweep.Analyzer, "precompute", "b")
}
