// Package b is out of scope for ctxsweep (neither precompute nor server):
// looping sweep entry points here — benchmarks, experiments — is legitimate.
package b

func Run(d int) {}

func loops(ds []int) {
	for _, d := range ds {
		Run(d)
	}
}
