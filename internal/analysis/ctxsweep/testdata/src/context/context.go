// Package context is a hermetic fixture stub: ctxsweep matches
// context.Context by package-path segment and the Err/Done selectors.
package context

type Context interface {
	Err() error
	Done() <-chan struct{}
}

type background struct{}

func (background) Err() error            { return nil }
func (background) Done() <-chan struct{} { return nil }

func Background() Context { return background{} }
