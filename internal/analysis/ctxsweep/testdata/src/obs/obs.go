// Package obs is a hermetic fixture stub of the tracing layer: StartSpan
// threads a context.Context through the loop body, but starting a span is
// observability, not a cancellation check — ctxsweep must keep flagging
// loops whose only ctx use is span plumbing.
package obs

import "context"

type Span struct{}

func (s *Span) End() {}

func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, nil
}
