// Package precompute is an in-scope fixture (ctxsweep runs on packages whose
// path ends in precompute or server): dispatch loops must observe their
// context between iterations.
package precompute

import (
	"context"

	"obs"
)

type sweeper struct{}

func (s *sweeper) RunD(d int) {}

func Run(d int) {}

func runOne(d int) {}

func other(d int) {}

// A dispatch loop that never looks at its context: an evicted session keeps
// computing the whole grid.
func blindLoop(ctx context.Context, s *sweeper, ds []int) {
	for _, d := range ds { // want `loop dispatches sweep/replay work \(RunD\) without observing ctx`
		s.RunD(d)
	}
}

func blindFor(ctx context.Context, n int) {
	for d := 0; d < n; d++ { // want `loop dispatches sweep/replay work \(Run\) without observing ctx`
		Run(d)
	}
}

// Checking ctx.Err each iteration satisfies the contract.
func guardedErr(ctx context.Context, s *sweeper, ds []int) {
	for _, d := range ds {
		if ctx.Err() != nil {
			return
		}
		s.RunD(d)
	}
}

// So does a select on ctx.Done.
func guardedDone(ctx context.Context, ds []int) {
	for _, d := range ds {
		select {
		case <-ctx.Done():
			return
		default:
		}
		runOne(d)
	}
}

// A worker closure that checks the context before each item also counts: the
// check is lexical over the loop body.
func guardedClosure(ctx context.Context, ds []int) {
	for _, d := range ds {
		func() {
			if ctx.Err() != nil {
				return
			}
			Run(d)
		}()
	}
}

// Starting a span each iteration threads the context through the body, but
// span plumbing is observability, not cancellation: the selector is
// obs.StartSpan, not ctx.Err/ctx.Done, so the loop is still flagged.
func spannedBlind(ctx context.Context, ds []int) {
	for _, d := range ds { // want `loop dispatches sweep/replay work \(Run\) without observing ctx`
		sctx, sp := obs.StartSpan(ctx, "precompute.replay")
		_ = sctx
		Run(d)
		sp.End()
	}
}

// A span alongside a real ctx.Err guard satisfies the contract as before.
func spannedGuarded(ctx context.Context, ds []int) {
	for _, d := range ds {
		if ctx.Err() != nil {
			return
		}
		_, sp := obs.StartSpan(ctx, "precompute.replay")
		Run(d)
		sp.End()
	}
}

// Loops of non-sweep work need no context.
func harmless(ds []int) {
	for _, d := range ds {
		other(d)
	}
}

// Suppression with a reason is honored.
func allowed(ctx context.Context, ds []int) {
	//qag:allow ctxsweep fixture: bounded to two iterations by construction
	for _, d := range ds[:2] {
		Run(d)
	}
}
