// Package detiter flags map iteration whose body performs order-sensitive
// work — the classic killer of qagview's bit-identical-determinism promise
// (every optimization since PR 2 is pinned by equivalence tests to a
// reference implementation, and a single `for k := range m` feeding floats
// or output slices in map order breaks that silently and flakily).
//
// Flagged inside `range` over a map:
//
//   - accumulation into a floating-point variable declared outside the loop
//     (`sum += m[k]`, `sum = sum + v`): float addition is not associative,
//     so the result depends on Go's randomized map order;
//   - append to a slice declared outside the loop: the element order — and
//     anything derived from it, cluster lists, solution output, JSON — is
//     randomized.
//
// Not flagged (deterministic despite map order):
//
//   - integer/string accumulation (associative, order-independent);
//   - writes keyed by the range key (`out[k] = f(v)`): each key is written
//     independently;
//   - sort-after-collect: an append whose slice is passed to a sort/slices
//     call later in the same function is the canonical safe idiom and is
//     recognized automatically.
//
// Deliberate exceptions carry `//qag:det <reason>` (or the long form
// `//qag:allow detiter <reason>`).
package detiter

import (
	"go/ast"
	"go/token"
	"go/types"

	"qagview/internal/analysis"
)

// Analyzer is the detiter analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "detiter",
	Doc:  "flags order-sensitive work (float accumulation, escaping appends) inside map iteration",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	analysis.FuncBodies(pass.Files, func(body *ast.BlockStmt) {
		ast.Inspect(body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !analysis.IsMap(pass.TypeOf(rs.X)) {
				return true
			}
			checkMapRange(pass, body, rs)
			return true
		})
	})
	return nil
}

func checkMapRange(pass *analysis.Pass, fn *ast.BlockStmt, rs *ast.RangeStmt) {
	keyObj := identObj(pass, rs.Key)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			checkAccumulate(pass, rs, keyObj, as.Lhs[0])
		case token.ASSIGN, token.DEFINE:
			for i, lhs := range as.Lhs {
				if i < len(as.Rhs) {
					if call, ok := as.Rhs[i].(*ast.CallExpr); ok && isBuiltinAppend(pass, call) {
						checkAppend(pass, fn, rs, keyObj, lhs)
						continue
					}
					// x = x + v is accumulation spelled long-hand.
					if bin, ok := as.Rhs[i].(*ast.BinaryExpr); ok && (bin.Op == token.ADD || bin.Op == token.SUB) && sameObject(pass, lhs, bin.X) {
						checkAccumulate(pass, rs, keyObj, lhs)
					}
				}
			}
		}
		return true
	})
}

// checkAccumulate flags compound float accumulation into state that outlives
// the loop body.
func checkAccumulate(pass *analysis.Pass, rs *ast.RangeStmt, keyObj types.Object, lhs ast.Expr) {
	if !analysis.IsFloat(pass.TypeOf(lhs)) {
		return
	}
	if keyedByRangeKey(pass, keyObj, lhs) || declaredWithin(pass, lhs, rs.Body) {
		return
	}
	pass.Reportf(lhs.Pos(), "float accumulation in map-iteration order is nondeterministic (float addition is not associative); iterate a sorted key slice, or annotate //qag:det with why the order cannot matter")
}

// checkAppend flags appends to slices that outlive the loop body, unless the
// slice is sorted later in the same function.
func checkAppend(pass *analysis.Pass, fn *ast.BlockStmt, rs *ast.RangeStmt, keyObj types.Object, lhs ast.Expr) {
	if keyedByRangeKey(pass, keyObj, lhs) || declaredWithin(pass, lhs, rs.Body) {
		return
	}
	root := analysis.RootIdent(lhs)
	if root == nil {
		return
	}
	obj := pass.ObjectOf(root)
	if obj == nil {
		return
	}
	if sortedAfter(pass, fn, rs.End(), obj) {
		return
	}
	pass.Reportf(lhs.Pos(), "append in map-iteration order collects elements in nondeterministic order; sort the slice after the loop (sort-after-collect), iterate sorted keys, or annotate //qag:det with why the order cannot matter")
}

// keyedByRangeKey reports whether lhs is an index expression keyed by the
// loop's range key (out[k] = ... writes each key independently).
func keyedByRangeKey(pass *analysis.Pass, keyObj types.Object, lhs ast.Expr) bool {
	if keyObj == nil {
		return false
	}
	ix, ok := lhs.(*ast.IndexExpr)
	if !ok {
		return false
	}
	id, ok := ix.Index.(*ast.Ident)
	return ok && pass.ObjectOf(id) == keyObj
}

// declaredWithin reports whether the root identifier of e is declared inside
// node's source range (loop-local state cannot leak iteration order).
func declaredWithin(pass *analysis.Pass, e ast.Expr, node ast.Node) bool {
	root := analysis.RootIdent(e)
	if root == nil {
		return true // no root identifier: not trackable, stay quiet
	}
	obj := pass.ObjectOf(root)
	if obj == nil {
		return true
	}
	return obj.Pos() >= node.Pos() && obj.Pos() <= node.End()
}

// sortedAfter reports whether a sort/slices-package call mentioning obj
// appears after pos in the function body — the sort-after-collect idiom.
func sortedAfter(pass *analysis.Pass, fn *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.ObjectOf(pkgID).(*types.PkgName)
		if !ok {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if root := analysis.RootIdent(arg); root != nil && pass.ObjectOf(root) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := pass.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}

func sameObject(pass *analysis.Pass, a, b ast.Expr) bool {
	ia, ok := a.(*ast.Ident)
	if !ok {
		return false
	}
	ib, ok := b.(*ast.Ident)
	if !ok {
		return false
	}
	oa := pass.ObjectOf(ia)
	return oa != nil && oa == pass.ObjectOf(ib)
}

func identObj(pass *analysis.Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.ObjectOf(id)
}
