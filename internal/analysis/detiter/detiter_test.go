package detiter_test

import (
	"testing"

	"qagview/internal/analysis/analysistest"
	"qagview/internal/analysis/detiter"
)

func TestDetiter(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), detiter.Analyzer, "a")
}
