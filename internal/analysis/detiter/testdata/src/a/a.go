// Package a exercises detiter: order-sensitive work inside map iteration.
package a

import "sort"

// Float accumulation across map order: the classic violation.
func sumFloats(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation in map-iteration order`
	}
	return sum
}

// Long-hand spelling of the same accumulation.
func sumLonghand(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum = sum + v // want `float accumulation in map-iteration order`
	}
	return sum
}

// Integer accumulation is associative: order-free, not flagged.
func sumInts(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Append collecting in map order, never sorted: flagged.
func collectKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append in map-iteration order`
	}
	return keys
}

// Sort-after-collect: the canonical safe idiom, recognized automatically.
func collectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sort.Slice with a comparator also counts as sorting the collected slice.
func collectSortSlice(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// Writes keyed by the range key touch each key independently: order-free.
func keyedWrites(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v * 2
		out[k] += 1
	}
	return out
}

// Loop-local state cannot leak iteration order.
func loopLocal(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var batch []int
		batch = append(batch, vs...)
		n += len(batch)
	}
	return n
}

// Range over a slice is ordered; nothing to check.
func sliceRange(xs []float64) float64 {
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum
}

// The //qag:det shorthand suppresses detiter when it carries a reason.
func allowedShort(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //qag:det fixture: values are exact powers of two, addition is order-free
	}
	return sum
}

// The long form works too, on the line above.
func allowedLong(m map[string]int) []string {
	var out []string
	for k := range m {
		//qag:allow detiter fixture: consumer sorts before use
		out = append(out, k)
	}
	return out
}

// The wildcard allows every analyzer.
func allowedAll(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //qag:allow all fixture: wildcard suppression
	}
	return sum
}

// An allow without a reason is itself a finding, and suppresses nothing.
func malformedDet(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //qag:det // want `malformed //qag:det` `float accumulation`
	}
	return sum
}

func malformedAllow(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //qag:allow detiter // want `malformed //qag:allow` `float accumulation`
	}
	return sum
}
