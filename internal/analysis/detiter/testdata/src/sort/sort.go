// Package sort is a hermetic fixture stub: detiter recognizes the
// sort-after-collect idiom by the imported package path ("sort"/"slices"),
// so the stub only needs the call shapes.
package sort

func Slice(x any, less func(i, j int) bool) {}

func Strings(x []string) {}

func Ints(x []int) {}
