// Package lockscope machine-checks the serving layer's locking discipline:
// internal/server keeps its mutex critical sections small and non-blocking
// (the session manager's mu guards map/LRU state only; everything slow —
// query execution, sweeps, snapshot IO, response encoding — happens outside
// the lock). A blocking operation under a held sync.Mutex/RWMutex turns one
// slow client or one stuck build into a server-wide stall, because every
// handler funnels through those locks.
//
// Within internal/server, while a mutex is lexically held — between
// x.Lock()/x.RLock() and the matching x.Unlock()/x.RUnlock(), or to the end
// of the function when the unlock is deferred — the analyzer flags:
//
//   - channel sends and receives;
//   - selects without a default clause (blocking selects);
//   - sync.WaitGroup.Wait and sync.Cond.Wait;
//   - response encoding: json.Encoder.Encode and http.ResponseWriter
//     Write/WriteHeader.
//
// The scan is lexical and per-block: a lock taken inside a branch is
// considered held only within that branch, and nested function literals are
// scanned as their own functions, not as part of the enclosing critical
// section (a `go func` under a lock does not block the lock holder).
// Deliberate blocking under a lock — e.g. the refresh path waiting out a
// superseded build while holding the per-session refresh mutex — must carry
// //qag:allow lockscope <reason>.
package lockscope

import (
	"go/ast"
	"go/token"

	"qagview/internal/analysis"
)

// Analyzer is the lockscope analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockscope",
	Doc:  "flags blocking operations (channel ops, Wait, response encoding) while a mutex is held in internal/server",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PkgSegment(pass.Pkg, "server") {
		return nil
	}
	analysis.FuncBodies(pass.Files, func(body *ast.BlockStmt) {
		scanStmts(pass, body.List, 0)
		// Nested closures run on their own schedule (go, defer, callbacks):
		// each is scanned as an independent function with no lock held.
		ast.Inspect(body, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				scanStmts(pass, fl.Body.List, 0)
			}
			return true
		})
	})
	return nil
}

// scanStmts walks one statement list in source order, tracking how many
// mutexes are lexically held. Nested statements inherit the current count;
// lock-state changes inside them do not escape (a branch that locks and
// unlocks is self-contained; a branch that leaks a lock is beyond a lexical
// check).
func scanStmts(pass *analysis.Pass, stmts []ast.Stmt, held int) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				switch lockOp(pass, call) {
				case opLock:
					held++
					continue
				case opUnlock:
					if held > 0 {
						held--
					}
					continue
				}
			}
		case *ast.DeferStmt:
			// defer x.Unlock() keeps the lock held to function end — which is
			// exactly what the lexical counter already says. The deferred call
			// itself runs at exit, not inside this critical section.
			continue
		}
		if held > 0 {
			reportBlocking(pass, stmt)
		}
		scanNested(pass, stmt, held)
	}
}

// scanNested recurses into the statement lists nested inside stmt.
func scanNested(pass *analysis.Pass, stmt ast.Stmt, held int) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		scanStmts(pass, s.List, held)
	case *ast.IfStmt:
		scanStmts(pass, s.Body.List, held)
		if s.Else != nil {
			scanNested(pass, s.Else, held)
		}
	case *ast.ForStmt:
		scanStmts(pass, s.Body.List, held)
	case *ast.RangeStmt:
		scanStmts(pass, s.Body.List, held)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			scanStmts(pass, c.(*ast.CaseClause).Body, held)
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			scanStmts(pass, c.(*ast.CaseClause).Body, held)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			scanStmts(pass, c.(*ast.CommClause).Body, held)
		}
	case *ast.LabeledStmt:
		scanStmts(pass, []ast.Stmt{s.Stmt}, held)
	}
}

// reportBlocking flags blocking operations in the expressions directly
// attached to stmt. Nested statement lists are owned by scanNested, and
// function literals by the independent closure scan, so both are skipped.
func reportBlocking(pass *analysis.Pass, stmt ast.Stmt) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.BlockStmt, *ast.FuncLit, *ast.CaseClause, *ast.CommClause:
			return false
		case *ast.SendStmt:
			pass.Reportf(v.Pos(), "channel send while a mutex is held: a full channel stalls every caller contending for the lock; hand off outside the critical section")
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				pass.Reportf(v.Pos(), "channel receive while a mutex is held: the lock stays held until a sender shows up; receive outside the critical section")
			}
		case *ast.SelectStmt:
			if !hasDefault(v) {
				pass.Reportf(v.Pos(), "blocking select while a mutex is held; add a default case or select outside the critical section")
			}
			return false
		case *ast.CallExpr:
			checkBlockingCall(pass, v)
		}
		return true
	})
}

func checkBlockingCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	t := pass.TypeOf(sel.X)
	switch sel.Sel.Name {
	case "Wait":
		if analysis.IsNamed(t, "sync", "WaitGroup") || analysis.IsNamed(t, "sync", "Cond") {
			pass.Reportf(call.Pos(), "%s.Wait while a mutex is held: waits of unbounded duration belong outside the critical section", analysis.Deref(t).String())
		}
	case "Encode":
		if analysis.IsNamed(t, "json", "Encoder") {
			pass.Reportf(call.Pos(), "json.Encoder.Encode while a mutex is held: encoding to a slow client stalls the lock; snapshot under the lock, encode outside it")
		}
	case "Write", "WriteHeader":
		if analysis.IsNamed(t, "http", "ResponseWriter") {
			pass.Reportf(call.Pos(), "http response write while a mutex is held: a slow client stalls the lock; copy what you need and write after unlocking")
		}
	}
}

type lockKind int

const (
	opNone lockKind = iota
	opLock
	opUnlock
)

// lockOp classifies a call as a mutex lock/unlock operation.
func lockOp(pass *analysis.Pass, call *ast.CallExpr) lockKind {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return opNone
	}
	t := pass.TypeOf(sel.X)
	if !analysis.IsNamed(t, "sync", "Mutex") && !analysis.IsNamed(t, "sync", "RWMutex") {
		return opNone
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return opLock
	case "Unlock", "RUnlock":
		return opUnlock
	}
	return opNone
}

func hasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
