package lockscope_test

import (
	"testing"

	"qagview/internal/analysis/analysistest"
	"qagview/internal/analysis/lockscope"
)

func TestLockscope(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), lockscope.Analyzer, "server", "c")
}
