// Package c is out of scope for lockscope (not a server package): other
// layers may block under their own locks when the design calls for it.
package c

import "sync"

type box struct {
	mu    sync.Mutex
	ready chan struct{}
}

func (b *box) wait() {
	b.mu.Lock()
	<-b.ready
	b.mu.Unlock()
}
