// Package json is a hermetic fixture stub for encoding/json.
package json

type Encoder struct{}

func NewEncoder(w any) *Encoder { return &Encoder{} }

func (e *Encoder) Encode(v any) error { return nil }
