// Package http is a hermetic fixture stub for net/http.
package http

type Header map[string][]string

type ResponseWriter interface {
	Header() Header
	Write([]byte) (int, error)
	WriteHeader(statusCode int)
}
