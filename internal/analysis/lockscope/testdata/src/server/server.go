// Package server is the in-scope fixture for lockscope: critical sections in
// the serving layer must be small and non-blocking.
package server

import (
	"encoding/json"
	"net/http"
	"sync"
)

type manager struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	wg    sync.WaitGroup
	ready chan struct{}
	state int
}

// Channel operations under a held mutex.
func (m *manager) sendUnderLock(ch chan int) {
	m.mu.Lock()
	ch <- m.state // want `channel send while a mutex is held`
	m.mu.Unlock()
}

func (m *manager) recvUnderLock() {
	m.mu.Lock()
	<-m.ready // want `channel receive while a mutex is held`
	m.mu.Unlock()
}

// A deferred unlock holds the lock to the end of the function.
func (m *manager) deferredUnlock() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.state++
	<-m.ready // want `channel receive while a mutex is held`
}

// After a paired unlock the section is over.
func (m *manager) afterUnlock(ch chan int) {
	m.mu.Lock()
	m.state++
	m.mu.Unlock()
	ch <- m.state
	<-m.ready
}

// A read lock is still a lock: writers queue behind a stalled RLock holder.
func (m *manager) readLock() {
	m.rw.RLock()
	<-m.ready // want `channel receive while a mutex is held`
	m.rw.RUnlock()
}

// Blocking select vs. non-blocking poll.
func (m *manager) selects(ch chan int) {
	m.mu.Lock()
	select { // want `blocking select while a mutex is held`
	case <-ch:
	case m.ready <- struct{}{}:
	}
	select {
	case <-ch:
	default:
	}
	m.mu.Unlock()
}

// Waits of unbounded duration.
func (m *manager) waits() {
	m.mu.Lock()
	m.wg.Wait() // want `Wait while a mutex is held`
	m.mu.Unlock()
}

// Encoding to a client while holding the lock.
func (m *manager) encode(w http.ResponseWriter) {
	enc := json.NewEncoder(w)
	m.mu.Lock()
	w.WriteHeader(200)  // want `http response write while a mutex is held`
	enc.Encode(m.state) // want `json.Encoder.Encode while a mutex is held`
	m.mu.Unlock()
}

// The right shape: snapshot under the lock, write after unlocking.
func (m *manager) snapshotThenWrite(w http.ResponseWriter) {
	m.mu.Lock()
	snap := m.state
	m.mu.Unlock()
	w.WriteHeader(200)
	json.NewEncoder(w).Encode(snap)
}

// A goroutine spawned under the lock runs on its own schedule: its channel
// ops do not hold up the lock holder.
func (m *manager) spawn(ch chan int) {
	m.mu.Lock()
	go func() {
		ch <- 1
		<-m.ready
	}()
	m.mu.Unlock()
}

// A lock scoped to a branch does not leak past it.
func (m *manager) branchScoped(cond bool, ch chan int) {
	if cond {
		m.mu.Lock()
		m.state++
		m.mu.Unlock()
	}
	ch <- m.state
}

// Held state reaches into nested branches and switch/select case bodies.
func (m *manager) nested(cond bool, mode int, ch chan int) {
	m.mu.Lock()
	if cond {
		switch mode {
		case 1:
			ch <- m.state // want `channel send while a mutex is held`
		}
	}
	m.mu.Unlock()
}

// Suppression: a justified wait is honored.
func (m *manager) allowedWait() {
	m.mu.Lock()
	//qag:allow lockscope fixture: ready is closed by a cancelled build, promptly
	<-m.ready
	m.mu.Unlock()
}
