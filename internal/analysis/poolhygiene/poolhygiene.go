// Package poolhygiene machine-checks the sync.Pool contract of the pooled
// replay state introduced in PR 2: replay buffers (worksets, coverage
// bitmaps, pair buffers, LCA memos) are recycled across (k, D) replays, so
// a value must be re-initialized on every checkout path before use, and must
// never be touched after it has been returned to the pool (another goroutine
// may already own it).
//
// Rules, per function (including its nested closures and defers):
//
//  1. Put without reset: `pool.Put(x)` (pool of type sync.Pool, x an
//     identifier) requires a reset-like call — a method whose name starts
//     with Reset/Init/Adopt/Clear (any case) — lexically before the Put (or
//     anywhere in the function when the Put itself is deferred), on
//     x itself, on a value reachable from x (st.ws.resetFrom(...)), or on an
//     alias of one (ws := st.ws; ws.resetFrom(...)). The canonical sweeper
//     shape — checkout, resetFrom, deferred Put — passes; recycling a value
//     no path re-initialized does not.
//
//  2. Use after Put: once `pool.Put(x)` executes, any later use of x or its
//     aliases in the same (innermost) function is flagged — the value may
//     concurrently belong to another goroutine. A Put inside a deferred
//     closure only constrains the remainder of that closure.
//
// Aliases are tracked by a lexical union of simple assignments
// (`a := b.field`, `a := v.(*T)`), which is exactly the shape the sweeper
// code uses; exotic flows should be restructured or annotated with
// //qag:allow poolhygiene <reason>.
package poolhygiene

import (
	"go/ast"
	"go/types"
	"strings"

	"qagview/internal/analysis"
)

// Analyzer is the poolhygiene analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "poolhygiene",
	Doc:  "flags sync.Pool.Put without a prior reset and uses of pooled values after Put",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	analysis.FuncBodies(pass.Files, func(body *ast.BlockStmt) {
		checkFunc(pass, body)
	})
	return nil
}

// aliasGroups unions objects connected by simple assignments so that a
// pooled value, its fields, and their local names are treated as one value.
type aliasGroups struct {
	parent map[types.Object]types.Object
}

func (g *aliasGroups) find(o types.Object) types.Object {
	for {
		p, ok := g.parent[o]
		if !ok || p == o {
			return o
		}
		o = p
	}
}

func (g *aliasGroups) union(a, b types.Object) {
	ra, rb := g.find(a), g.find(b)
	if ra != rb {
		g.parent[ra] = rb
	}
}

func (g *aliasGroups) same(a, b types.Object) bool {
	return a != nil && b != nil && g.find(a) == g.find(b)
}

func collectAliases(pass *analysis.Pass, body *ast.BlockStmt) *aliasGroups {
	g := &aliasGroups{parent: make(map[types.Object]types.Object)}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			lo := pass.ObjectOf(id)
			root := analysis.RootIdent(unwrap(as.Rhs[i]))
			if lo == nil || root == nil {
				continue
			}
			if ro := pass.ObjectOf(root); ro != nil {
				g.union(lo, ro)
			}
		}
		return true
	})
	return g
}

// unwrap strips type assertions and parens so RootIdent sees through
// `st := v.(*replayState)`.
func unwrap(e ast.Expr) ast.Expr {
	for {
		switch v := e.(type) {
		case *ast.TypeAssertExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return e
		}
	}
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	aliases := collectAliases(pass, body)

	// Put calls that are themselves deferred (`defer pool.Put(st)`) run at
	// function exit: lexically-later uses are fine, and a reset anywhere in
	// the function happens before the Put does.
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		return true
	})

	// Reset-like calls: (pos, root object of the receiver chain).
	type resetCall struct {
		pos  ast.Node
		root types.Object
	}
	var resets []resetCall
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !resetLike(sel.Sel.Name) {
			return true
		}
		if root := analysis.RootIdent(sel.X); root != nil {
			if ro := pass.ObjectOf(root); ro != nil {
				resets = append(resets, resetCall{pos: call, root: ro})
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, ok := analysis.MethodCall(call, "Put")
		if !ok || !analysis.IsNamed(pass.TypeOf(recv), "sync", "Pool") || len(call.Args) != 1 {
			return true
		}
		arg, ok := unwrap(call.Args[0]).(*ast.Ident)
		if !ok {
			return true // Put of a fresh composite (pool seeding): zero value is its reset state
		}
		argObj := pass.ObjectOf(arg)
		if argObj == nil {
			return true
		}
		resetSeen := false
		for _, r := range resets {
			if (deferred[call] || r.pos.Pos() < call.Pos()) && aliases.same(r.root, argObj) {
				resetSeen = true
				break
			}
		}
		if !resetSeen {
			pass.Reportf(call.Pos(), "sync.Pool.Put of %s with no prior reset-like call (Reset/Init/Adopt/Clear...) on it in this function: recycled replay state must be re-initialized on every checkout path", arg.Name)
		}
		if !deferred[call] {
			checkUseAfterPut(pass, body, aliases, call, argObj, arg.Name)
		}
		return true
	})
}

// checkUseAfterPut flags reads of the pooled value after the Put, scoped to
// the innermost function literal containing the Put (a deferred Put only
// constrains the rest of the deferred closure, not the enclosing body that
// lexically follows it).
func checkUseAfterPut(pass *analysis.Pass, body *ast.BlockStmt, aliases *aliasGroups, put *ast.CallExpr, obj types.Object, name string) {
	scope := innermostFunc(body, put)
	ast.Inspect(scope, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl != scope {
			// A nested closure defined after the Put does not necessarily run
			// after it; leave it to its own analysis.
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || id.Pos() <= put.End() {
			return true
		}
		if o := pass.ObjectOf(id); aliases.same(o, obj) {
			pass.Reportf(id.Pos(), "use of %s after it was returned to the pool (Put at %s): the value may already belong to another goroutine", name, pass.Fset.Position(put.Pos()))
		}
		return true
	})
}

// innermostFunc returns the body of the innermost function literal that
// contains pos, or the outer body itself.
func innermostFunc(body *ast.BlockStmt, at ast.Node) ast.Node {
	var best ast.Node = body
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			if fl.Body.Pos() <= at.Pos() && at.End() <= fl.Body.End() {
				best = fl.Body
			}
		}
		return true
	})
	return best
}

func resetLike(name string) bool {
	l := strings.ToLower(name)
	for _, prefix := range [...]string{"reset", "init", "adopt", "clear"} {
		if strings.HasPrefix(l, prefix) {
			return true
		}
	}
	return false
}
