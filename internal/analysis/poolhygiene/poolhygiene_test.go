package poolhygiene_test

import (
	"testing"

	"qagview/internal/analysis/analysistest"
	"qagview/internal/analysis/poolhygiene"
)

func TestPoolhygiene(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), poolhygiene.Analyzer, "a")
}
