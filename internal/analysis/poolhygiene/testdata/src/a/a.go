// Package a exercises poolhygiene: pooled replay-state checkout/return
// discipline, modeled on the sweeper's shapes.
package a

import "sync"

type workset struct{ rows []int }

func (ws *workset) resetFrom(base *workset) { ws.rows = ws.rows[:0] }

func (ws *workset) adoptIndex(ix int) { ws.rows = ws.rows[:0] }

type state struct{ ws *workset }

type sweeper struct {
	pool sync.Pool
	base *workset
}

// The canonical checkout shape: get, reset through an alias, deferred return.
func (sw *sweeper) canonical() {
	v := sw.pool.Get()
	st := v.(*state)
	ws := st.ws
	ws.resetFrom(sw.base)
	defer sw.pool.Put(st)
	use(ws)
}

// Reset via a different reset-like method (the warm-start shape).
func (sw *sweeper) warm(ix int) {
	st := sw.pool.Get().(*state)
	st.ws.adoptIndex(ix)
	sw.pool.Put(st)
}

// Recycling without any reset: the next checkout inherits stale replay state.
func (sw *sweeper) noReset() {
	st := sw.pool.Get().(*state)
	use(st.ws)
	sw.pool.Put(st) // want `no prior reset-like call`
}

// Seeding the pool with a fresh composite is fine: zero value is reset.
func (sw *sweeper) seed() {
	sw.pool.Put(&state{ws: &workset{}})
}

// Touching the value after returning it: it may belong to another goroutine.
func (sw *sweeper) useAfter() int {
	st := sw.pool.Get().(*state)
	st.ws.resetFrom(sw.base)
	sw.pool.Put(st)
	return len(st.ws.rows) // want `use of st after it was returned to the pool`
}

// A deferred Put only constrains the rest of the deferred closure; the body
// that lexically follows the defer statement still owns the value.
func (sw *sweeper) deferredPut() {
	st := sw.pool.Get().(*state)
	st.ws.resetFrom(sw.base)
	defer func() {
		sw.pool.Put(st)
	}()
	use(st.ws)
}

// But inside the closure, after the Put the value is gone.
func (sw *sweeper) useAfterInClosure() {
	st := sw.pool.Get().(*state)
	st.ws.resetFrom(sw.base)
	defer func() {
		sw.pool.Put(st)
		use(st.ws) // want `use of st after it was returned to the pool`
	}()
	use(st.ws)
}

// Suppression with a reason is honored.
func (sw *sweeper) allowed() {
	st := sw.pool.Get().(*state)
	//qag:allow poolhygiene fixture: st is reset inside use before reuse
	sw.pool.Put(st)
}

func use(ws *workset) {}
