// Package sync is a hermetic fixture stub: poolhygiene matches sync.Pool by
// package-path segment and method shape.
package sync

type Pool struct{ New func() any }

func (p *Pool) Get() any {
	if p.New != nil {
		return p.New()
	}
	return nil
}

func (p *Pool) Put(x any) {}
