// Package suite registers the qagvet analyzers. It is a separate package
// (rather than a list inside internal/analysis) because every analyzer
// imports internal/analysis for the framework types.
package suite

import (
	"qagview/internal/analysis"
	"qagview/internal/analysis/cowcheck"
	"qagview/internal/analysis/ctxsweep"
	"qagview/internal/analysis/detiter"
	"qagview/internal/analysis/lockscope"
	"qagview/internal/analysis/poolhygiene"
)

// Analyzers is the full qagvet suite, in the order diagnostics are
// attributed. See docs/ANALYZERS.md for the invariant behind each.
var Analyzers = []*analysis.Analyzer{
	detiter.Analyzer,
	cowcheck.Analyzer,
	poolhygiene.Analyzer,
	ctxsweep.Analyzer,
	lockscope.Analyzer,
}
