package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression comments:
//
//	//qag:allow <analyzer> <reason>   suppress <analyzer> on this or next line
//	//qag:det <reason>                shorthand for //qag:allow detiter ...
//
// The reason is mandatory: an allow that cannot say why it is safe is a
// comment rot hazard, so the framework reports it instead of honoring it.

const (
	allowPrefix = "//qag:allow"
	detPrefix   = "//qag:det"
)

// suppressions indexes allow comments by (file, line, analyzer).
type suppressions struct {
	fset *token.FileSet
	// byLine maps filename -> line -> analyzer names allowed there.
	byLine    map[string]map[int][]string
	malformed []Diagnostic
}

func collectSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{fset: fset, byLine: make(map[string]map[int][]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				s.record(c)
			}
		}
	}
	return s
}

func (s *suppressions) record(c *ast.Comment) {
	text := strings.TrimSpace(c.Text)
	// Cut at an embedded "//" so trailing annotations in the same comment
	// (notably analysistest's `// want ...` expectations) are not swallowed
	// into the reason.
	if i := strings.Index(text[2:], "//"); i >= 0 {
		text = strings.TrimSpace(text[:i+2])
	}
	var name, rest string
	switch {
	case strings.HasPrefix(text, allowPrefix):
		fields := strings.Fields(strings.TrimPrefix(text, allowPrefix))
		if len(fields) < 2 {
			s.malformed = append(s.malformed, Diagnostic{
				Analyzer: "qagallow",
				Pos:      c.Pos(),
				Message:  "malformed //qag:allow: want \"//qag:allow <analyzer> <reason>\"",
			})
			return
		}
		name, rest = fields[0], strings.Join(fields[1:], " ")
	case strings.HasPrefix(text, detPrefix) && !strings.HasPrefix(text, detPrefix+"i"):
		rest = strings.TrimSpace(strings.TrimPrefix(text, detPrefix))
		if rest == "" {
			s.malformed = append(s.malformed, Diagnostic{
				Analyzer: "qagallow",
				Pos:      c.Pos(),
				Message:  "malformed //qag:det: want \"//qag:det <reason>\"",
			})
			return
		}
		name = "detiter"
	default:
		return
	}
	_ = rest // the reason is required but not machine-interpreted
	pos := s.fset.Position(c.Pos())
	lines := s.byLine[pos.Filename]
	if lines == nil {
		lines = make(map[int][]string)
		s.byLine[pos.Filename] = lines
	}
	lines[pos.Line] = append(lines[pos.Line], name)
}

// suppressed reports whether a diagnostic of the named analyzer at pos is
// covered by an allow comment on the same line or the line directly above.
func (s *suppressions) suppressed(analyzer string, pos token.Position) bool {
	lines, ok := s.byLine[pos.Filename]
	if !ok {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == analyzer || name == "all" {
				return true
			}
		}
	}
	return false
}
