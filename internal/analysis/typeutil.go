package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Type and package predicates shared by the analyzers. Analyzers match types
// by (package path tail, type name) rather than full import path so that
// analysistest fixtures can declare stand-in packages ("lattice",
// "relation") without importing the real module.

// PkgSegment reports whether the final "/"-separated segment of pkg's import
// path equals seg. PkgSegment(nil, ...) is false.
func PkgSegment(pkg *types.Package, seg string) bool {
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		p = p[i+1:]
	}
	return p == seg
}

// Deref strips one level of pointer.
func Deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// IsNamed reports whether t (possibly behind a pointer) is the named type
// pkgSeg.name, matching the package by its final path segment.
func IsNamed(t types.Type, pkgSeg, name string) bool {
	if t == nil {
		return false
	}
	n, ok := Deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && PkgSegment(obj.Pkg(), pkgSeg)
}

// IsFloat reports whether t's underlying type is a floating-point basic type.
func IsFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// IsMap reports whether t's underlying type is a map.
func IsMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// IsContext reports whether t is context.Context.
func IsContext(t types.Type) bool { return IsNamed(t, "context", "Context") }

// MethodCall matches call as a method invocation x.name(...) and returns the
// receiver expression. The receiver's type is not checked here.
func MethodCall(call *ast.CallExpr, name string) (recv ast.Expr, ok bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil, false
	}
	return sel.X, true
}

// CalleeName returns the bare name of the called function or method: "Foo"
// for Foo(...), pkg.Foo(...), and x.Foo(...); "" for indirect calls.
func CalleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// RootIdent returns the identifier at the base of a selector/index/slice
// chain: x for x.a.b[i].c, nil when the base is not an identifier.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.CallExpr:
			e = v.Fun
		default:
			return nil
		}
	}
}

// FuncBodies walks every function body in the files: declarations and
// literals, each visited exactly once with its body.
func FuncBodies(files []*ast.File, fn func(body *ast.BlockStmt)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					fn(d.Body)
				}
				return false // literals inside are walked via the body below
			case *ast.FuncLit:
				fn(d.Body)
				return false
			}
			return true
		})
	}
}
