// Package unit implements the `go vet -vettool` command-line protocol for
// the qagvet analyzer suite, using only the standard library (the canonical
// implementation is golang.org/x/tools/go/analysis/unitchecker; this module
// is dependency-free by policy).
//
// The go command drives a vettool like so:
//
//   - `tool -V=full` must print "<name> version devel ... buildID=<id>";
//     the id fingerprints the tool for the build cache, so it hashes the
//     executable — rebuilding qagvet with changed analyzers invalidates
//     cached vet results.
//   - `tool -flags` must print a JSON array describing the tool's flags
//     (qagvet has none, so it prints []).
//   - `tool <dir>/vet.cfg` analyzes one package: the JSON config carries the
//     file list and the export-data files of every dependency, so the
//     package is type-checked with the gc importer, no source re-resolution
//     needed. Diagnostics go to stderr as "file:line:col: message [name]"
//     and make the tool exit 2, which fails `go vet`.
//
// A facts file is written to cfg.VetxOutput so the go command can cache the
// run; qagvet's analyzers are fact-free, so the file is a fixed placeholder
// and dependency packages (cfg.VetxOnly) return without type-checking.
package unit

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"qagview/internal/analysis"
)

// Config is the JSON schema of the go command's vet.cfg (a subset of
// cmd/go/internal/work.vetConfig; unknown fields are ignored).
type Config struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string
	ImportMap    map[string]string
	PackageFile  map[string]string
	Standard     map[string]bool
	PackageVetx  map[string]string
	VetxOnly     bool
	VetxOutput   string

	SucceedOnTypecheckFailure bool
}

// Main runs the protocol against os.Args-style arguments (excluding the
// program name) and returns the process exit code.
func Main(progname string, args []string, analyzers []*analysis.Analyzer, stdout, stderr io.Writer) int {
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			fmt.Fprintf(stdout, "%s version devel buildID=%s\n", progname, selfID())
			return 0
		case arg == "-flags" || arg == "--flags":
			fmt.Fprintln(stdout, "[]")
			return 0
		}
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintf(stderr, "%s: expected a single vet.cfg argument (this tool implements the go vet -vettool protocol; run it via `go vet -vettool=%s ./...`)\n", progname, progname)
		return 1
	}
	diags, err := runConfig(args[0], analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", progname, err)
		return 1
	}
	if len(diags.list) == 0 {
		return 0
	}
	for _, d := range diags.list {
		fmt.Fprintf(stderr, "%s: %s [%s]\n", diags.fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	return 2
}

type result struct {
	fset *token.FileSet
	list []analysis.Diagnostic
}

func runConfig(cfgFile string, analyzers []*analysis.Analyzer) (result, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return result{}, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return result{}, fmt.Errorf("parsing %s: %w", cfgFile, err)
	}
	// The facts file must exist for the go command to cache this run. qagvet
	// keeps no facts, so dependencies need no analysis at all.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("qagvet: no facts\n"), 0o666); err != nil {
			return result{}, err
		}
	}
	if cfg.VetxOnly {
		return result{}, nil
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return result{}, nil
			}
			return result{}, err
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		// Map source-level import paths through vendoring/test-variant
		// canonicalization, then open the dependency's export data.
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", buildArch()),
		Error:    func(error) {}, // the returned error carries the first one
	}
	if cfg.GoVersion != "" {
		tc.GoVersion = cfg.GoVersion
	}
	info := analysis.NewInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return result{}, nil
		}
		return result{}, fmt.Errorf("typechecking %s: %v", cfg.ImportPath, err)
	}
	diags, err := analysis.Run(analyzers, fset, files, pkg, info)
	if err != nil {
		return result{}, err
	}
	return result{fset: fset, list: diags}, nil
}

func buildArch() string {
	if v := os.Getenv("GOARCH"); v != "" {
		return v
	}
	return runtime.GOARCH
}

// selfID fingerprints the running executable so the go command's vet result
// cache is keyed on the analyzer suite actually built into the binary.
func selfID() string {
	exe, err := os.Executable()
	if err == nil {
		if f, err := os.Open(exe); err == nil {
			defer f.Close()
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				return fmt.Sprintf("%x", h.Sum(nil)[:16])
			}
		}
	}
	// Degraded mode: still a valid buildID, just not content-addressed.
	return fmt.Sprintf("unknown-%s", filepath.Base(os.Args[0]))
}
