package unit

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// The go command probes a vettool with -V=full before anything else; the
// reply must carry a buildID so vet results are cached against the tool
// build.
func TestProtocolVersion(t *testing.T) {
	var out bytes.Buffer
	code := Main("qagvet", []string{"-V=full"}, nil, &out, io.Discard)
	if code != 0 {
		t.Fatalf("-V=full exit = %d, want 0", code)
	}
	got := out.String()
	if !strings.HasPrefix(got, "qagvet version ") || !strings.Contains(got, "buildID=") {
		t.Fatalf("-V=full output %q lacks name/buildID", got)
	}
}

// -flags must answer with a JSON flag list; qagvet has none.
func TestProtocolFlags(t *testing.T) {
	var out bytes.Buffer
	code := Main("qagvet", []string{"-flags"}, nil, &out, io.Discard)
	if code != 0 {
		t.Fatalf("-flags exit = %d, want 0", code)
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Fatalf("-flags output = %q, want []", out.String())
	}
}

func TestRejectsNonProtocolArgs(t *testing.T) {
	var errb bytes.Buffer
	code := Main("qagvet", []string{"./..."}, nil, io.Discard, &errb)
	if code != 1 {
		t.Fatalf("bad args exit = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "vet.cfg") {
		t.Fatalf("error %q does not mention the protocol", errb.String())
	}
}

func TestMissingConfigFile(t *testing.T) {
	var errb bytes.Buffer
	code := Main("qagvet", []string{"/nonexistent/vet.cfg"}, nil, io.Discard, &errb)
	if code != 1 {
		t.Fatalf("missing cfg exit = %d, want 1", code)
	}
}
