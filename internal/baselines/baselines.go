// Package baselines implements the four related-work approaches the paper
// compares against qualitatively in Appendix A.5: smart drill-down
// (Joglekar et al., ICDE 2016), diversified top-k (Qin et al., PVLDB 2012),
// DisC diversity (Drosou and Pitoura, PVLDB 2012), and the MMR-based
// λ-parameterized diversification of Vieira et al. (ICDE 2011). They share
// the lattice.Space element model so their outputs can be compared directly
// against the paper's clusters.
package baselines

import (
	"fmt"
	"sort"

	"qagview/internal/lattice"
	"qagview/internal/pattern"
)

// Scope selects which elements a baseline operates on.
type Scope int

const (
	// ScopeAll uses every element of the answer space.
	ScopeAll Scope = iota
	// ScopeTopL uses only the top-L elements.
	ScopeTopL
)

// Rule is one smart-drill-down output rule with its scoring components.
type Rule struct {
	// Cluster is the rule's pattern with coverage.
	Cluster *lattice.Cluster
	// MarginalCount is MCount(r, R): elements covered by r and none of the
	// preceding rules, within the scope.
	MarginalCount int
	// Weight is W(r): the number of non-* attributes.
	Weight int
	// Val is the average value of the marginal elements (the paper's
	// relevance extension of the smart-drill-down score).
	Val float64
	// Score is MarginalCount * Weight * Val.
	Score float64
}

// SmartDrillDown greedily selects k rules maximizing the marginal score
// MCount(r, R) x W(r) x val(r), per Appendix A.5.1. Candidate rules are the
// generated clusters of the index; scope restricts both candidate coverage
// counting and the element universe.
func SmartDrillDown(ix *lattice.Index, k int, scope Scope) ([]Rule, error) {
	if k < 1 {
		return nil, fmt.Errorf("baselines: k = %d, want >= 1", k)
	}
	limit := ix.Space.N()
	if scope == ScopeTopL {
		limit = ix.L
	}
	covered := make([]bool, ix.Space.N())
	var out []Rule
	for len(out) < k {
		var best *Rule
		for ci := range ix.Clusters {
			c := &ix.Clusters[ci]
			w := ix.Space.M() - c.Pat.Level()
			if w == 0 {
				continue // the all-star rule carries zero weight
			}
			mc := 0
			sum := 0.0
			for _, t := range c.Cov {
				if int(t) < limit && !covered[t] {
					mc++
					sum += ix.Space.Vals[t]
				}
			}
			if mc == 0 {
				continue
			}
			val := sum / float64(mc)
			score := float64(mc) * float64(w) * val
			if best == nil || score > best.Score {
				best = &Rule{Cluster: c, MarginalCount: mc, Weight: w, Val: val, Score: score}
			}
		}
		if best == nil {
			break // everything in scope is covered
		}
		for _, t := range best.Cluster.Cov {
			if int(t) < limit {
				covered[t] = true
			}
		}
		out = append(out, *best)
	}
	return out, nil
}

// DiversifiedTopKGreedy selects up to k of the top-L elements in descending
// value order, keeping only elements at distance >= D from every selected
// one, per the diversified top-k formulation of Appendix A.5.2. It returns
// selected ranks (0-based).
func DiversifiedTopKGreedy(s *lattice.Space, L, k, D int) ([]int, error) {
	if err := checkElemParams(s, L, k, D); err != nil {
		return nil, err
	}
	var chosen []int
	for rank := 0; rank < L && len(chosen) < k; rank++ {
		ok := true
		for _, c := range chosen {
			if pattern.TupleDistance(s.Tuples[rank], s.Tuples[c]) < D {
				ok = false
				break
			}
		}
		if ok {
			chosen = append(chosen, rank)
		}
	}
	return chosen, nil
}

// DiversifiedTopKExact maximizes the sum of values over subsets of at most k
// top-L elements with pairwise distance >= D, by branch and bound. Use only
// for small L.
func DiversifiedTopKExact(s *lattice.Space, L, k, D int) ([]int, error) {
	if err := checkElemParams(s, L, k, D); err != nil {
		return nil, err
	}
	var best []int
	bestSum := -1.0
	var cur []int
	var rec func(start int, sum float64)
	rec = func(start int, sum float64) {
		if sum > bestSum {
			bestSum = sum
			best = append(best[:0], cur...)
		}
		if len(cur) == k {
			return
		}
		// Upper bound: add the next k-len largest remaining values.
		bound := sum
		for i, left := start, k-len(cur); i < L && left > 0; i, left = i+1, left-1 {
			bound += s.Vals[i]
		}
		if bound <= bestSum {
			return
		}
		for rank := start; rank < L; rank++ {
			ok := true
			for _, c := range cur {
				if pattern.TupleDistance(s.Tuples[rank], s.Tuples[c]) < D {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			cur = append(cur, rank)
			rec(rank+1, sum+s.Vals[rank])
			cur = cur[:len(cur)-1]
		}
	}
	rec(0, 0)
	sort.Ints(best)
	return best, nil
}

// DisC computes a greedy DisC-diverse subset of the top-L elements for
// radius r (Appendix A.5.3): chosen elements are pairwise at distance > r,
// and every top-L element is within distance <= r of a chosen one. Scanning
// in descending value order yields a maximal independent set, which is also
// dominating under the metric. It returns chosen ranks.
func DisC(s *lattice.Space, L, r int) ([]int, error) {
	if L < 1 || L > s.N() {
		return nil, fmt.Errorf("baselines: L = %d out of range [1, %d]", L, s.N())
	}
	if r < 0 || r > s.M() {
		return nil, fmt.Errorf("baselines: radius = %d out of range [0, %d]", r, s.M())
	}
	var chosen []int
	for rank := 0; rank < L; rank++ {
		ok := true
		for _, c := range chosen {
			if pattern.TupleDistance(s.Tuples[rank], s.Tuples[c]) <= r {
				ok = false
				break
			}
		}
		if ok {
			chosen = append(chosen, rank)
		}
	}
	return chosen, nil
}

// MMR is the λ-parameterized maximal-marginal-relevance selection of
// Appendix A.5.4 over the top-L elements: greedily pick the element
// maximizing (1-λ) * normalized value + λ * normalized distance to the
// closest already-selected element. λ = 0 degenerates to the top-k by value;
// λ = 1 ignores values after the first pick. It returns selected ranks in
// selection order.
func MMR(s *lattice.Space, L, k int, lambda float64) ([]int, error) {
	if err := checkElemParams(s, L, k, 0); err != nil {
		return nil, err
	}
	if lambda < 0 || lambda > 1 {
		return nil, fmt.Errorf("baselines: lambda = %v out of [0, 1]", lambda)
	}
	maxVal := s.Vals[0]
	if maxVal == 0 {
		maxVal = 1
	}
	m := float64(s.M())
	used := make([]bool, L)
	var chosen []int
	for len(chosen) < k && len(chosen) < L {
		best := -1
		bestScore := 0.0
		for rank := 0; rank < L; rank++ {
			if used[rank] {
				continue
			}
			rel := s.Vals[rank] / maxVal
			div := 1.0
			for _, c := range chosen {
				d := float64(pattern.TupleDistance(s.Tuples[rank], s.Tuples[c])) / m
				if d < div {
					div = d
				}
			}
			score := (1-lambda)*rel + lambda*div
			if best < 0 || score > bestScore {
				best = rank
				bestScore = score
			}
		}
		used[best] = true
		chosen = append(chosen, best)
	}
	return chosen, nil
}

// NeighborhoodAvg returns, for a chosen representative rank, the average
// value of top-L elements within distance < D of it (including itself) —
// the "avg score" column the paper reports when comparing representative-
// element baselines against cluster summaries.
func NeighborhoodAvg(s *lattice.Space, L, rank, d int) float64 {
	sum, cnt := 0.0, 0
	for r := 0; r < L; r++ {
		if pattern.TupleDistance(s.Tuples[rank], s.Tuples[r]) < d {
			sum += s.Vals[r]
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

func checkElemParams(s *lattice.Space, L, k, d int) error {
	if L < 1 || L > s.N() {
		return fmt.Errorf("baselines: L = %d out of range [1, %d]", L, s.N())
	}
	if k < 1 {
		return fmt.Errorf("baselines: k = %d, want >= 1", k)
	}
	if d < 0 || d > s.M() {
		return fmt.Errorf("baselines: D = %d out of range [0, %d]", d, s.M())
	}
	return nil
}
