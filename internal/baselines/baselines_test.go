package baselines

import (
	"fmt"
	"math/rand"
	"testing"

	"qagview/internal/lattice"
	"qagview/internal/pattern"
)

func space(t *testing.T, seed int64, n, m, dom int) *lattice.Space {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]string, 0, n)
	vals := make([]float64, 0, n)
	seen := map[string]bool{}
	for len(rows) < n {
		row := make([]string, m)
		key := ""
		boost := 0.0
		for j := range row {
			v := rng.Intn(dom)
			row[j] = fmt.Sprintf("v%d_%d", j, v)
			key += row[j]
			if v == 0 && j < 2 {
				boost++
			}
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		rows = append(rows, row)
		vals = append(vals, rng.Float64()+boost)
	}
	attrs := make([]string, m)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("A%d", i)
	}
	s, err := lattice.NewSpace(attrs, rows, vals)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSmartDrillDownGreedy(t *testing.T) {
	s := space(t, 1, 60, 4, 3)
	ix, err := lattice.BuildIndex(s, 15)
	if err != nil {
		t.Fatal(err)
	}
	rules, err := SmartDrillDown(ix, 4, ScopeTopL)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 || len(rules) > 4 {
		t.Fatalf("rule count = %d", len(rules))
	}
	// Scores of successive rules cannot exceed the first pick (greedy takes
	// the max marginal first, and marginals only shrink as coverage grows...
	// not strictly monotone in general, but the first rule must dominate any
	// single-rule alternative).
	for _, c := range ix.Clusters {
		w := ix.Space.M() - c.Pat.Level()
		if w == 0 {
			continue
		}
		mc := 0
		sum := 0.0
		for _, tt := range c.Cov {
			if int(tt) < 15 {
				mc++
				sum += s.Vals[tt]
			}
		}
		if mc == 0 {
			continue
		}
		if sc := float64(mc) * float64(w) * (sum / float64(mc)); sc > rules[0].Score+1e-9 {
			t.Fatalf("greedy first rule %v (score %v) beaten by %v (score %v)",
				rules[0].Cluster.Pat, rules[0].Score, c.Pat, sc)
		}
	}
	// Marginal counts sum to at most the scope size.
	total := 0
	for _, r := range rules {
		total += r.MarginalCount
		if r.Weight < 1 || r.Weight > s.M() {
			t.Errorf("weight out of range: %+v", r)
		}
	}
	if total > 15 {
		t.Errorf("marginal counts sum to %d > scope 15", total)
	}
	if _, err := SmartDrillDown(ix, 0, ScopeAll); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestSmartDrillDownScopeAll(t *testing.T) {
	s := space(t, 2, 40, 4, 3)
	ix, err := lattice.BuildIndex(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	rules, err := SmartDrillDown(ix, 50, ScopeAll)
	if err != nil {
		t.Fatal(err)
	}
	// With k larger than needed, greedy stops when all coverable elements
	// within scope are covered.
	covered := map[int32]bool{}
	for _, r := range rules {
		for _, tt := range r.Cluster.Cov {
			covered[tt] = true
		}
	}
	// Every element covered by at least one generated cluster must be
	// covered by the rule set (greedy exhausts marginals).
	reachable := map[int32]bool{}
	for _, c := range ix.Clusters {
		if s.M()-c.Pat.Level() == 0 {
			continue
		}
		for _, tt := range c.Cov {
			reachable[tt] = true
		}
	}
	for tt := range reachable {
		if !covered[tt] {
			t.Fatalf("element %d reachable but uncovered", tt)
		}
	}
}

func TestDiversifiedTopKGreedy(t *testing.T) {
	s := space(t, 3, 50, 4, 3)
	chosen, err := DiversifiedTopKGreedy(s, 20, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(chosen) == 0 || len(chosen) > 4 {
		t.Fatalf("chose %d", len(chosen))
	}
	if chosen[0] != 0 {
		t.Errorf("greedy must take the top element first, got rank %d", chosen[0])
	}
	for i, a := range chosen {
		for _, b := range chosen[i+1:] {
			if pattern.TupleDistance(s.Tuples[a], s.Tuples[b]) < 2 {
				t.Errorf("chosen %d and %d too close", a, b)
			}
		}
	}
}

func TestDiversifiedTopKExactDominatesGreedy(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		s := space(t, 10+seed, 30, 4, 3)
		L, k, D := 12, 3, 2
		g, err := DiversifiedTopKGreedy(s, L, k, D)
		if err != nil {
			t.Fatal(err)
		}
		e, err := DiversifiedTopKExact(s, L, k, D)
		if err != nil {
			t.Fatal(err)
		}
		sum := func(ranks []int) float64 {
			v := 0.0
			for _, r := range ranks {
				v += s.Vals[r]
			}
			return v
		}
		if sum(e) < sum(g)-1e-9 {
			t.Errorf("seed %d: exact %v < greedy %v", seed, sum(e), sum(g))
		}
		for i, a := range e {
			for _, b := range e[i+1:] {
				if pattern.TupleDistance(s.Tuples[a], s.Tuples[b]) < D {
					t.Errorf("exact solution violates distance")
				}
			}
		}
	}
}

func TestDisCIndependentAndDominating(t *testing.T) {
	s := space(t, 4, 40, 4, 3)
	L, r := 20, 1
	chosen, err := DisC(s, L, r)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range chosen {
		for _, b := range chosen[i+1:] {
			if pattern.TupleDistance(s.Tuples[a], s.Tuples[b]) <= r {
				t.Errorf("chosen %d, %d within radius", a, b)
			}
		}
	}
	for rank := 0; rank < L; rank++ {
		ok := false
		for _, c := range chosen {
			if pattern.TupleDistance(s.Tuples[rank], s.Tuples[c]) <= r {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("element %d not dominated", rank)
		}
	}
	if _, err := DisC(s, 0, 1); err == nil {
		t.Error("L=0 accepted")
	}
	if _, err := DisC(s, 5, 99); err == nil {
		t.Error("huge radius accepted")
	}
}

func TestMMRLambdaZeroIsTopK(t *testing.T) {
	s := space(t, 5, 30, 4, 3)
	chosen, err := MMR(s, 10, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range chosen {
		if r != i {
			t.Fatalf("lambda=0 should select top-k in order, got %v", chosen)
		}
	}
}

func TestMMRDiversityIncreasesWithLambda(t *testing.T) {
	s := space(t, 6, 40, 4, 3)
	minDist := func(ranks []int) int {
		best := s.M() + 1
		for i, a := range ranks {
			for _, b := range ranks[i+1:] {
				if d := pattern.TupleDistance(s.Tuples[a], s.Tuples[b]); d < best {
					best = d
				}
			}
		}
		return best
	}
	lo, err := MMR(s, 20, 4, 0.0)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := MMR(s, 20, 4, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if minDist(hi) < minDist(lo) {
		t.Errorf("lambda=1 (min dist %d) less diverse than lambda=0 (min dist %d)", minDist(hi), minDist(lo))
	}
	if _, err := MMR(s, 10, 3, -0.1); err == nil {
		t.Error("negative lambda accepted")
	}
	if _, err := MMR(s, 10, 3, 1.1); err == nil {
		t.Error("lambda > 1 accepted")
	}
}

func TestNeighborhoodAvg(t *testing.T) {
	s := space(t, 7, 30, 4, 3)
	v := NeighborhoodAvg(s, 10, 0, 2)
	if v <= 0 {
		t.Errorf("avg = %v", v)
	}
	// Radius 1 includes only the element itself (all rows are distinct).
	if got := NeighborhoodAvg(s, 10, 3, 1); got != s.Vals[3] {
		t.Errorf("self-only neighborhood avg = %v, want %v", got, s.Vals[3])
	}
}

func TestParamValidation(t *testing.T) {
	s := space(t, 8, 20, 4, 3)
	if _, err := DiversifiedTopKGreedy(s, 0, 2, 1); err == nil {
		t.Error("L=0 accepted")
	}
	if _, err := DiversifiedTopKGreedy(s, 5, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := DiversifiedTopKGreedy(s, 5, 2, 9); err == nil {
		t.Error("D>m accepted")
	}
	if _, err := DiversifiedTopKExact(s, 99, 2, 1); err == nil {
		t.Error("L>N accepted")
	}
}
