// Package delta is the incremental-maintenance subsystem for live tables:
// it keeps a materialized exploration context — cluster index, warm sweeper,
// precomputed (k, D) stores — consistent with an answer set that changes
// under it, without rebuilding from scratch.
//
// The paper's interactive loop assumes a frozen answer set; a production
// service does not get that luxury. This package tracks how every derived
// layer depends on the base tuples and propagates batched appends and
// deletes through them: Diff matches a re-ranked query result against the
// current space to find what actually changed, Maintainer applies the delta
// through lattice.Index.Rebase (copy-on-write, bit-identical to a rebuild),
// warm-starts the next summarization sweeper from the previous one
// (summarize.Sweeper.Warm), and stamps every precomputed store with a
// monotonically increasing data generation so serving layers can tell fresh
// sweeps from superseded ones.
package delta

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strings"

	"qagview/internal/lattice"
)

// Diff matches a replacement answer set (rows with values, any order)
// against the current space, producing the origin mapping Rebase consumes:
// origin[i] is the index of the current tuple that row i carries over
// unchanged, or -1 for a new row. Current tuples not named by origin are
// deletions. Matching is by rendered row and exact value bits, multiset-
// style: duplicate (row, value) pairs match in rank order, which preserves
// their relative order through a rebase. changed reports whether the new set
// differs from the current one at all (any append, delete, or reorder).
func Diff(s *lattice.Space, rows [][]string, vals []float64) (origin []int32, changed bool, err error) {
	if len(rows) != len(vals) {
		return nil, false, fmt.Errorf("delta: %d rows but %d values", len(rows), len(vals))
	}
	m := s.M()
	var sb strings.Builder
	var bits [8]byte
	keyOf := func(row []string, val float64) string {
		sb.Reset()
		for _, v := range row {
			sb.WriteString(v)
			sb.WriteByte(0)
		}
		binary.LittleEndian.PutUint64(bits[:], math.Float64bits(val))
		sb.Write(bits[:])
		return sb.String()
	}
	current := make(map[string][]int32, s.N())
	for i, t := range s.Tuples {
		k := keyOf(s.Render(t), s.Vals[i])
		current[k] = append(current[k], int32(i))
	}
	origin = make([]int32, len(rows))
	matched := 0
	for i, row := range rows {
		if len(row) != m {
			return nil, false, fmt.Errorf("delta: row %d has %d attributes, want %d", i, len(row), m)
		}
		k := keyOf(row, vals[i])
		if q := current[k]; len(q) > 0 {
			origin[i] = q[0]
			current[k] = q[1:]
			matched++
		} else {
			origin[i] = -1
		}
	}
	changed = matched != s.N() || matched != len(rows)
	if !changed {
		for i, o := range origin {
			if o != int32(i) {
				changed = true // same multiset, reordered ranking
				break
			}
		}
	}
	return origin, changed, nil
}

// sortResult orders (rows, vals) by descending value, stable — the ranking
// lattice.NewSpace derives and Rebase requires — returning fresh slices when
// a reorder was needed and the inputs unchanged otherwise.
func sortResult(rows [][]string, vals []float64) ([][]string, []float64) {
	sorted := true
	for i := 1; i < len(vals); i++ {
		if vals[i] > vals[i-1] {
			sorted = false
			break
		}
	}
	if sorted {
		return rows, vals
	}
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })
	outRows := make([][]string, len(rows))
	outVals := make([]float64, len(vals))
	for out, in := range idx {
		outRows[out] = rows[in]
		outVals[out] = vals[in]
	}
	return outRows, outVals
}
