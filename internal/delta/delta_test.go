package delta

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"qagview/internal/engine"
	"qagview/internal/lattice"
	"qagview/internal/movielens"
	"qagview/internal/precompute"
	"qagview/internal/relation"
	"qagview/internal/summarize"
)

func buildIndex(t testing.TB, attrs []string, rows [][]string, vals []float64, L int) *lattice.Index {
	t.Helper()
	s, err := lattice.NewSpace(attrs, rows, vals)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := lattice.BuildIndex(s, L)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func randomRows(rng *rand.Rand, n, m, dom int) ([][]string, []float64) {
	rows := make([][]string, 0, n)
	vals := make([]float64, 0, n)
	seen := map[string]bool{}
	for len(rows) < n {
		row := make([]string, m)
		key := ""
		boost := 0.0
		for j := range row {
			v := rng.Intn(dom)
			row[j] = fmt.Sprintf("v%d_%d", j, v)
			key += row[j] + "|"
			if v == 0 && j < 2 {
				boost++
			}
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		rows = append(rows, row)
		vals = append(vals, rng.Float64()*3+boost)
	}
	return rows, vals
}

func attrNames(m int) []string {
	attrs := make([]string, m)
	for j := range attrs {
		attrs[j] = fmt.Sprintf("A%d", j)
	}
	return attrs
}

// renderSolution canonicalizes a solution for cross-encoding comparison:
// rendered patterns with exact average bits and covered ranks.
func renderSolution(s *lattice.Space, sol *summarize.Solution) string {
	out := ""
	for _, c := range sol.Clusters {
		out += fmt.Sprintf("%v avg=%x cov=%v\n", s.Render(c.Pat), math.Float64bits(c.Avg()), c.Cov)
	}
	out += fmt.Sprintf("covered=%v sum=%x", sol.Covered, math.Float64bits(sol.Sum))
	return out
}

// assertStoresEqual compares two stores cell by cell over their full grid:
// solution renderings and guidance series, bit for bit.
func assertStoresEqual(t *testing.T, label string, got, want *precompute.Store, gs, ws *lattice.Space) {
	t.Helper()
	if got.KMin != want.KMin || got.KMax != want.KMax || !reflect.DeepEqual(got.Ds, want.Ds) {
		t.Fatalf("%s: grid (%d..%d %v) vs (%d..%d %v)", label, got.KMin, got.KMax, got.Ds, want.KMin, want.KMax, want.Ds)
	}
	for _, d := range want.Ds {
		for k := want.KMin; k <= want.KMax; k++ {
			wsol, werr := want.Solution(k, d)
			gsol, gerr := got.Solution(k, d)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("%s: k=%d d=%d error %v vs %v", label, k, d, gerr, werr)
			}
			if werr != nil {
				continue
			}
			if renderSolution(gs, gsol) != renderSolution(ws, wsol) {
				t.Fatalf("%s: k=%d d=%d solutions differ:\n%s\nvs\n%s",
					label, k, d, renderSolution(gs, gsol), renderSolution(ws, wsol))
			}
		}
	}
	gg, wg := got.Guidance(), want.Guidance()
	if !reflect.DeepEqual(gg.MinSizes, wg.MinSizes) {
		t.Fatalf("%s: min sizes %v vs %v", label, gg.MinSizes, wg.MinSizes)
	}
	for d, series := range wg.Series {
		for i := range series {
			if math.Float64bits(gg.Series[d][i]) != math.Float64bits(series[i]) {
				t.Fatalf("%s: guidance D=%d k-offset %d: %v vs %v", label, d, i, gg.Series[d][i], series[i])
			}
		}
	}
}

func TestDiff(t *testing.T) {
	rows := [][]string{{"a", "x"}, {"b", "x"}, {"a", "y"}}
	vals := []float64{3, 2, 1}
	s, err := lattice.NewSpace([]string{"p", "q"}, rows, vals)
	if err != nil {
		t.Fatal(err)
	}
	// Identity.
	origin, changed, err := Diff(s, rows, vals)
	if err != nil || changed {
		t.Fatalf("identity diff: changed=%v err=%v", changed, err)
	}
	if !reflect.DeepEqual(origin, []int32{0, 1, 2}) {
		t.Fatalf("identity origin %v", origin)
	}
	// Value change = delete + append; one fresh row; one deletion.
	origin, changed, err = Diff(s,
		[][]string{{"a", "x"}, {"b", "x"}, {"c", "x"}},
		[]float64{3, 2.5, 1})
	if err != nil || !changed {
		t.Fatalf("diff: changed=%v err=%v", changed, err)
	}
	if !reflect.DeepEqual(origin, []int32{0, -1, -1}) {
		t.Fatalf("origin %v, want [0 -1 -1]", origin)
	}
	// Duplicates pair in rank order.
	dupRows := [][]string{{"a", "x"}, {"a", "x"}, {"b", "y"}}
	dupVals := []float64{2, 2, 1}
	ds, err := lattice.NewSpace([]string{"p", "q"}, dupRows, dupVals)
	if err != nil {
		t.Fatal(err)
	}
	origin, changed, err = Diff(ds, dupRows, dupVals)
	if err != nil || changed {
		t.Fatalf("dup identity: changed=%v err=%v", changed, err)
	}
	if !reflect.DeepEqual(origin, []int32{0, 1, 2}) {
		t.Fatalf("dup origin %v", origin)
	}
	// A pure reorder of tied rows still reports changed.
	origin, changed, err = Diff(ds,
		[][]string{{"a", "x"}, {"b", "y"}, {"a", "x"}},
		[]float64{2, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	_ = origin
	if !changed {
		t.Fatal("reordered multiset must report changed")
	}
}

// TestMaintainerMatchesRebuild chains refreshes over a synthetic answer set
// — appends below the top L, value changes, deletes, and a new leader — and
// after every generation proves the maintained state equals a cold rebuild:
// the precomputed store over the full grid, and every greedy algorithm's
// solution, bit for bit.
func TestMaintainerMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const m, L, kMax = 4, 25, 8
	attrs := attrNames(m)
	rows, vals := randomRows(rng, 100, m, 4)
	ix := buildIndex(t, attrs, rows, vals, L)
	mt := New(ix)
	if mt.Generation() != 1 {
		t.Fatalf("fresh generation = %d", mt.Generation())
	}
	ds := []int{1, 2}
	curRows, curVals := rows, vals
	for step := 0; step < 3; step++ {
		// Perturb the answer set: drop two rows, change one value, add three
		// rows (one leading the ranking on the last step).
		next := make([][]string, 0, len(curRows)+3)
		nextVals := make([]float64, 0, len(curVals)+3)
		for i := range curRows {
			if i == 7 || i == len(curRows)-1 {
				continue
			}
			v := curVals[i]
			if i == 12 {
				v += 0.25
			}
			next = append(next, curRows[i])
			nextVals = append(nextVals, v)
		}
		add, addVals := randomRows(rng, 3, m, 4)
		for i := range add {
			add[i][0] = fmt.Sprintf("s%d_%d", step, i) // force fresh vocabulary
			if step == 2 && i == 0 {
				addVals[i] = 99 // new leader: top-L churn
			}
		}
		next = append(next, add...)
		nextVals = append(nextVals, addVals...)

		stats, changed, err := mt.Refresh(next, nextVals)
		if err != nil {
			t.Fatal(err)
		}
		if !changed {
			t.Fatalf("step %d: refresh saw no change", step)
		}
		if wantGen := uint64(step + 2); mt.Generation() != wantGen {
			t.Fatalf("step %d: generation %d, want %d", step, mt.Generation(), wantGen)
		}
		if step == 2 && stats.FastPath {
			t.Fatal("a new leader must churn the top L")
		}

		cold := buildIndex(t, attrs, next, nextVals, L)
		warmStore, err := mt.Precompute(1, kMax, ds)
		if err != nil {
			t.Fatal(err)
		}
		if warmStore.Generation() != mt.Generation() {
			t.Fatalf("store generation %d vs maintainer %d", warmStore.Generation(), mt.Generation())
		}
		coldStore, err := precompute.Run(cold, L, 1, kMax, ds)
		if err != nil {
			t.Fatal(err)
		}
		assertStoresEqual(t, fmt.Sprintf("step%d", step), warmStore, coldStore, mt.Index().Space, cold.Space)

		for _, algo := range []summarize.Algorithm{summarize.AlgoBottomUp, summarize.AlgoFixedOrder, summarize.AlgoHybrid} {
			p := summarize.Params{K: 5, L: L, D: 2}
			wsol, err := summarize.Run(algo, mt.Index(), p)
			if err != nil {
				t.Fatal(err)
			}
			csol, err := summarize.Run(algo, cold, p)
			if err != nil {
				t.Fatal(err)
			}
			if renderSolution(mt.Index().Space, wsol) != renderSolution(cold.Space, csol) {
				t.Fatalf("step %d: %s solutions differ", step, algo)
			}
		}
		// The maintained ranking must itself match the cold space's ranking.
		for i, tup := range mt.Index().Space.Tuples {
			if !reflect.DeepEqual(mt.Index().Space.Render(tup), cold.Space.Render(cold.Space.Tuples[i])) {
				t.Fatalf("step %d: rank %d rows differ", step, i)
			}
		}
		curRows, curVals = next, nextVals
	}
	// An identical refresh is a no-op that keeps the generation.
	gen := mt.Generation()
	if _, changed, err := mt.Refresh(curRows, curVals); err != nil || changed {
		t.Fatalf("no-op refresh: changed=%v err=%v", changed, err)
	}
	if mt.Generation() != gen {
		t.Fatalf("no-op refresh bumped the generation to %d", mt.Generation())
	}
}

// catalog is a minimal engine.Catalog over named relations.
type catalog map[string]*relation.Relation

func (c catalog) Table(name string) (*relation.Relation, error) {
	r, ok := c[name]
	if !ok {
		return nil, fmt.Errorf("unknown table %q", name)
	}
	return r, nil
}

// appendRatings returns a copy of the MovieLens table with extra rating rows
// cloned from existing ones (ratings bumped to 5), which shifts group
// averages, group counts, and HAVING membership — the realistic base-table
// write a live service absorbs.
func appendRatings(t *testing.T, rel *relation.Relation, rng *rand.Rand, n int) *relation.Relation {
	t.Helper()
	cols := make([]relation.Column, rel.NumCols())
	for ci := 0; ci < rel.NumCols(); ci++ {
		src := rel.Column(ci)
		c := relation.Column{Name: src.Name, Kind: src.Kind}
		switch src.Kind {
		case relation.KindString:
			c.Str = append(append([]string(nil), src.Str...), make([]string, n)...)
		case relation.KindInt:
			c.Int = append(append([]int64(nil), src.Int...), make([]int64, n)...)
		case relation.KindFloat:
			c.Float = append(append([]float64(nil), src.Float...), make([]float64, n)...)
		}
		cols[ci] = c
	}
	base := rel.NumRows()
	ratingCol := rel.ColumnIndex("rating")
	if ratingCol < 0 || cols[ratingCol].Kind != relation.KindFloat {
		t.Fatal("fixture: no float rating column")
	}
	for i := 0; i < n; i++ {
		donor := rng.Intn(base)
		for ci := range cols {
			switch cols[ci].Kind {
			case relation.KindString:
				cols[ci].Str[base+i] = cols[ci].Str[donor]
			case relation.KindInt:
				cols[ci].Int[base+i] = cols[ci].Int[donor]
			case relation.KindFloat:
				cols[ci].Float[base+i] = cols[ci].Float[donor]
			}
		}
		cols[ratingCol].Float[base+i] = 5
	}
	out, err := relation.FromColumns(rel.Name(), cols...)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMaintainerMovieLens is the end-to-end MovieLens equivalence: append
// base rows to the rating table, re-run the aggregate query, refresh the
// maintainer, and prove the maintained index and store equal a cold rebuild
// over the new result.
func TestMaintainerMovieLens(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rel, err := movielens.Generate(movielens.Config{Users: 300, Movies: 400, Ratings: 20000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sql, err := movielens.Query(4, 30, "")
	if err != nil {
		t.Fatal(err)
	}
	cat := catalog{rel.Name(): rel}
	res, err := engine.ExecuteSQL(cat, sql)
	if err != nil {
		t.Fatal(err)
	}
	L := 60
	if res.N() < L {
		L = res.N()
	}
	ix := buildIndex(t, res.GroupBy, res.Rows, res.Vals, L)
	mt := New(ix)
	if _, err := mt.Precompute(1, 6, []int{1, 2}); err != nil {
		t.Fatal(err)
	}

	for step := 0; step < 2; step++ {
		rel = appendRatings(t, rel, rng, 400)
		cat[rel.Name()] = rel
		res, err = engine.ExecuteSQL(cat, sql)
		if err != nil {
			t.Fatal(err)
		}
		_, changed, err := mt.Refresh(res.Rows, res.Vals)
		if err != nil {
			t.Fatal(err)
		}
		if !changed {
			t.Fatalf("step %d: 400 appended ratings changed nothing", step)
		}
		cold := buildIndex(t, res.GroupBy, res.Rows, res.Vals, L)
		warmStore, err := mt.Precompute(1, 6, []int{1, 2})
		if err != nil {
			t.Fatal(err)
		}
		coldStore, err := precompute.Run(cold, L, 1, 6, []int{1, 2})
		if err != nil {
			t.Fatal(err)
		}
		assertStoresEqual(t, fmt.Sprintf("movielens-step%d", step), warmStore, coldStore, mt.Index().Space, cold.Space)
	}
}
