package delta

import (
	"context"
	"fmt"

	"qagview/internal/lattice"
	"qagview/internal/obs"
	"qagview/internal/precompute"
	"qagview/internal/summarize"
)

// Maintainer owns the mutable spine of one live exploration context: the
// current cluster index, the warm sweeper chained across data generations,
// and the monotonically increasing generation counter that versions both.
//
// A Maintainer is single-writer: Refresh, Apply, and Precompute must be
// serialized by the caller (serving layers do this with a per-session
// refresh lock), and an in-flight Precompute must have returned — after its
// context was cancelled, if need be — before the next Refresh runs, because
// warming the sweeper migrates the replay states that sweep is using.
// Indexes published through Index() are immutable snapshots and may be read
// concurrently with anything.
type Maintainer struct {
	gen     uint64
	ix      *lattice.Index
	sw      *summarize.Sweeper
	sumOpts []summarize.Option
}

// New wraps an already built index at generation 1. Summarize options are
// applied to every sweeper the maintainer constructs (the warm chain carries
// them forward automatically).
func New(ix *lattice.Index, sumOpts ...summarize.Option) *Maintainer {
	return &Maintainer{gen: 1, ix: ix, sumOpts: sumOpts}
}

// Generation returns the current data generation: 1 for the freshly built
// index, bumped by every refresh that changed anything.
func (m *Maintainer) Generation() uint64 { return m.gen }

// Index returns the current-generation index (an immutable snapshot).
func (m *Maintainer) Index() *lattice.Index { return m.ix }

// Refresh reconciles the maintainer with a re-run query result: the rows are
// ranked (stable by descending value, as NewSpace would), diffed against the
// current space, and — when anything changed — applied through the
// incremental Rebase, warming the sweeper onto the new index and bumping the
// generation. changed is false (and the generation unchanged) when the
// result is identical to the current answer set.
func (m *Maintainer) Refresh(rows [][]string, vals []float64) (lattice.DeltaStats, bool, error) {
	return m.RefreshCtx(context.Background(), rows, vals)
}

// RefreshCtx is Refresh under a caller context, so traced requests (see
// internal/obs) record the diff and rebase stages as spans. The context
// carries observability only — refreshes are not cancellable midway.
func (m *Maintainer) RefreshCtx(ctx context.Context, rows [][]string, vals []float64) (stats lattice.DeltaStats, changed bool, err error) {
	ctx, sp := obs.StartSpan(ctx, "delta.refresh")
	defer sp.End()
	rows, vals = sortResult(rows, vals)
	_, dsp := obs.StartSpan(ctx, "delta.diff")
	origin, changed, err := Diff(m.ix.Space, rows, vals)
	dsp.End()
	if err != nil {
		return stats, false, err
	}
	if !changed {
		sp.SetAttr("changed", "false")
		return stats, false, nil
	}
	_, rsp := obs.StartSpan(ctx, "delta.rebase")
	nix, stats, err := m.ix.Rebase(rows, vals, origin)
	rsp.End()
	if err != nil {
		return stats, false, err
	}
	m.install(nix, stats)
	sp.SetAttr("changed", "true")
	return stats, true, nil
}

// Apply applies a prebuilt batch of appends and deletes (callers that know
// their delta exactly, without re-running a query). Empty batches are
// no-ops.
func (m *Maintainer) Apply(d lattice.Delta) (lattice.DeltaStats, error) {
	if d.Empty() {
		return lattice.DeltaStats{FastPath: true}, nil
	}
	nix, stats, err := m.ix.ApplyDelta(d)
	if err != nil {
		return stats, err
	}
	m.install(nix, stats)
	return stats, nil
}

// install publishes the successor index, warms the sweeper chain onto it,
// and bumps the generation.
func (m *Maintainer) install(nix *lattice.Index, stats lattice.DeltaStats) {
	if m.sw != nil {
		if sw, err := m.sw.Warm(nix, stats.FastPath); err == nil {
			m.sw = sw
		} else {
			// A failed warm leaves the old sweeper's state half-migrated;
			// drop it and let the next Precompute cold-start.
			m.sw = nil
		}
	}
	m.ix = nix
	m.gen++
}

// Precompute builds a (k, D) store over the current index, stamped with the
// current generation. The underlying sweeper is created on first use and
// warm-started across generations after that; a kMax beyond what the chain
// was provisioned for re-provisions it cold. Precompute options (context,
// parallelism) pass through; the generation stamp is set by the maintainer.
func (m *Maintainer) Precompute(kMin, kMax int, ds []int, opts ...precompute.Option) (*precompute.Store, error) {
	if kMax < 1 {
		return nil, fmt.Errorf("delta: kMax = %d, want >= 1", kMax)
	}
	if m.sw == nil || m.sw.KMax() < kMax {
		sw, err := summarize.NewSweeper(m.ix, m.ix.L, kMax, m.sumOpts...)
		if err != nil {
			return nil, err
		}
		m.sw = sw
	}
	// The maintainer's stamp goes first so an explicit caller-provided
	// WithGeneration (a serving layer with its own version numbering) wins.
	opts = append([]precompute.Option{precompute.WithGeneration(m.gen)}, opts...)
	return precompute.RunSweeper(m.sw, kMin, kMax, ds, opts...)
}
