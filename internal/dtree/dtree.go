// Package dtree implements the adapted decision-tree baseline of the
// paper's user study (Section 8): a CART-style binary decision tree over
// categorical attributes using equality splits and Gini impurity, trained to
// separate the top-L tuples from the rest, with the height tuned so that the
// number of "positive" leaves (where top-L tuples are the majority) is as
// close as possible to, but no greater than, k — mirroring the paper's use
// of scikit-learn's DecisionTreeClassifier.
package dtree

import (
	"fmt"
	"sort"
)

// Cond is one path condition attr == Value (or attr != Value when Negated).
type Cond struct {
	Attr    int
	Value   int32
	Negated bool
}

// Rule is the conjunction of conditions along a root-to-leaf path, with the
// leaf's statistics.
type Rule struct {
	Conds []Cond
	// Positive is true when top-L tuples are the majority at the leaf.
	Positive bool
	// Support is the number of training tuples at the leaf.
	Support int
	// PosFrac is the fraction of top-L tuples at the leaf.
	PosFrac float64
	// MeanVal is the mean value of training tuples at the leaf.
	MeanVal float64
}

// Matches reports whether the rule's conditions hold for tuple x.
func (r *Rule) Matches(x []int32) bool {
	for _, c := range r.Conds {
		if c.Negated {
			if x[c.Attr] == c.Value {
				return false
			}
		} else if x[c.Attr] != c.Value {
			return false
		}
	}
	return true
}

// Complexity measures how hard the rule is for a person to internalize: one
// unit per equality condition, two per negated condition (the paper
// hypothesizes — and its study confirms — that negations and deeper paths
// make decision-tree patterns harder to interpret and memorize than plain
// *-patterns).
func (r *Rule) Complexity() int {
	c := 0
	for _, cond := range r.Conds {
		if cond.Negated {
			c += 2
		} else {
			c++
		}
	}
	return c
}

type node struct {
	// Leaf fields.
	leaf     bool
	positive bool
	support  int
	posFrac  float64
	meanVal  float64
	// Split fields.
	attr        int
	value       int32
	eq, ne      *node
	condsToHere []Cond
}

// Tree is a trained decision tree.
type Tree struct {
	root   *node
	height int
	m      int
}

// Train grows a tree of at most maxHeight levels of splits on the given
// tuples: labels[i] is true when tuple i is a top-L tuple; vals[i] is its
// value (used only for leaf statistics).
func Train(tuples [][]int32, labels []bool, vals []float64, maxHeight int) (*Tree, error) {
	if len(tuples) == 0 {
		return nil, fmt.Errorf("dtree: no training tuples")
	}
	if len(labels) != len(tuples) || len(vals) != len(tuples) {
		return nil, fmt.Errorf("dtree: %d tuples, %d labels, %d vals", len(tuples), len(labels), len(vals))
	}
	if maxHeight < 1 {
		return nil, fmt.Errorf("dtree: maxHeight = %d, want >= 1", maxHeight)
	}
	m := len(tuples[0])
	idx := make([]int, len(tuples))
	for i := range idx {
		idx[i] = i
	}
	t := &Tree{height: maxHeight, m: m}
	t.root = grow(tuples, labels, vals, idx, maxHeight, nil)
	return t, nil
}

func gini(pos, total int) float64 {
	if total == 0 {
		return 0
	}
	p := float64(pos) / float64(total)
	return 2 * p * (1 - p)
}

func grow(tuples [][]int32, labels []bool, vals []float64, idx []int, depth int, conds []Cond) *node {
	pos := 0
	sum := 0.0
	for _, i := range idx {
		if labels[i] {
			pos++
		}
		sum += vals[i]
	}
	mk := func() *node {
		return &node{
			leaf:        true,
			positive:    2*pos > len(idx),
			support:     len(idx),
			posFrac:     float64(pos) / float64(len(idx)),
			meanVal:     sum / float64(len(idx)),
			condsToHere: append([]Cond(nil), conds...),
		}
	}
	if depth == 0 || pos == 0 || pos == len(idx) {
		return mk()
	}
	// Find the best (attr, value) equality split by weighted Gini.
	m := len(tuples[idx[0]])
	baseGini := gini(pos, len(idx))
	bestGain := 1e-12
	bestAttr, bestVal := -1, int32(0)
	for a := 0; a < m; a++ {
		// Count (value -> total, pos) in one pass.
		type cnt struct{ tot, pos int }
		counts := map[int32]*cnt{}
		for _, i := range idx {
			v := tuples[i][a]
			c := counts[v]
			if c == nil {
				c = &cnt{}
				counts[v] = c
			}
			c.tot++
			if labels[i] {
				c.pos++
			}
		}
		if len(counts) < 2 {
			continue
		}
		// Deterministic iteration order.
		keys := make([]int32, 0, len(counts))
		for v := range counts {
			keys = append(keys, v)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, v := range keys {
			c := counts[v]
			if c.tot == 0 || c.tot == len(idx) {
				continue
			}
			w := float64(c.tot) / float64(len(idx))
			g := w*gini(c.pos, c.tot) + (1-w)*gini(pos-c.pos, len(idx)-c.tot)
			if gain := baseGini - g; gain > bestGain {
				bestGain = gain
				bestAttr, bestVal = a, v
			}
		}
	}
	if bestAttr < 0 {
		return mk()
	}
	var eqIdx, neIdx []int
	for _, i := range idx {
		if tuples[i][bestAttr] == bestVal {
			eqIdx = append(eqIdx, i)
		} else {
			neIdx = append(neIdx, i)
		}
	}
	n := &node{attr: bestAttr, value: bestVal, condsToHere: append([]Cond(nil), conds...)}
	n.eq = grow(tuples, labels, vals, eqIdx, depth-1, append(append([]Cond(nil), conds...), Cond{Attr: bestAttr, Value: bestVal}))
	n.ne = grow(tuples, labels, vals, neIdx, depth-1, append(append([]Cond(nil), conds...), Cond{Attr: bestAttr, Value: bestVal, Negated: true}))
	return n
}

// Classify reports whether the tree predicts x to be a top-L tuple.
func (t *Tree) Classify(x []int32) bool {
	n := t.root
	for !n.leaf {
		if x[n.attr] == n.value {
			n = n.eq
		} else {
			n = n.ne
		}
	}
	return n.positive
}

// Height returns the height bound the tree was trained with.
func (t *Tree) Height() int { return t.height }

// Rules returns one rule per leaf, positive leaves first, in path order.
func (t *Tree) Rules() []Rule {
	var pos, neg []Rule
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			r := Rule{
				Conds:    n.condsToHere,
				Positive: n.positive,
				Support:  n.support,
				PosFrac:  n.posFrac,
				MeanVal:  n.meanVal,
			}
			if n.positive {
				pos = append(pos, r)
			} else {
				neg = append(neg, r)
			}
			return
		}
		walk(n.eq)
		walk(n.ne)
	}
	walk(t.root)
	return append(pos, neg...)
}

// PositiveRules returns only the rules of positive leaves (the paper's
// "clusters" for the decision-tree method).
func (t *Tree) PositiveRules() []Rule {
	var out []Rule
	for _, r := range t.Rules() {
		if r.Positive {
			out = append(out, r)
		}
	}
	return out
}

// PositiveLeaves counts leaves where top-L tuples are the majority.
func (t *Tree) PositiveLeaves() int { return len(t.PositiveRules()) }

// TuneK trains trees of increasing height up to maxHeight and returns the
// one whose positive-leaf count is as close as possible to, but no greater
// than, k (the paper's tuning procedure). If even height 1 exceeds k it
// returns the height-1 tree.
func TuneK(tuples [][]int32, labels []bool, vals []float64, k, maxHeight int) (*Tree, error) {
	if k < 1 {
		return nil, fmt.Errorf("dtree: k = %d, want >= 1", k)
	}
	var best *Tree
	bestLeaves := -1
	for h := 1; h <= maxHeight; h++ {
		t, err := Train(tuples, labels, vals, h)
		if err != nil {
			return nil, err
		}
		n := t.PositiveLeaves()
		if n <= k && n > bestLeaves {
			best = t
			bestLeaves = n
		}
	}
	if best == nil {
		return Train(tuples, labels, vals, 1)
	}
	return best, nil
}
