package dtree

import (
	"math/rand"
	"testing"
)

// xorData builds a dataset where the positive class is (A=0 AND B=1), which
// a depth-2 tree separates exactly.
func xorData() (tuples [][]int32, labels []bool, vals []float64) {
	for a := int32(0); a < 3; a++ {
		for b := int32(0); b < 3; b++ {
			for rep := 0; rep < 4; rep++ {
				tuples = append(tuples, []int32{a, b, int32(rep)})
				pos := a == 0 && b == 1
				labels = append(labels, pos)
				v := 1.0
				if pos {
					v = 5.0
				}
				vals = append(vals, v)
			}
		}
	}
	return
}

func TestTrainSeparatesPerfectly(t *testing.T) {
	tuples, labels, vals := xorData()
	tr, err := Train(tuples, labels, vals, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range tuples {
		if tr.Classify(x) != labels[i] {
			t.Fatalf("misclassified %v (want %v)", x, labels[i])
		}
	}
	if n := tr.PositiveLeaves(); n != 1 {
		t.Errorf("positive leaves = %d, want 1", n)
	}
	rules := tr.PositiveRules()
	if len(rules) != 1 {
		t.Fatalf("positive rules = %d", len(rules))
	}
	r := rules[0]
	if r.PosFrac != 1 || r.MeanVal != 5 {
		t.Errorf("leaf stats wrong: %+v", r)
	}
	if !r.Matches([]int32{0, 1, 99}) || r.Matches([]int32{1, 1, 0}) {
		t.Error("rule Matches wrong")
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, nil, nil, 2); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := Train([][]int32{{1}}, []bool{true}, nil, 2); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Train([][]int32{{1}}, []bool{true}, []float64{1}, 0); err == nil {
		t.Error("height 0 accepted")
	}
}

func TestPureNodeStops(t *testing.T) {
	tuples := [][]int32{{0, 0}, {0, 1}, {1, 0}}
	labels := []bool{true, true, true}
	vals := []float64{1, 2, 3}
	tr, err := Train(tuples, labels, vals, 5)
	if err != nil {
		t.Fatal(err)
	}
	rules := tr.Rules()
	if len(rules) != 1 || !rules[0].Positive || len(rules[0].Conds) != 0 {
		t.Errorf("pure data should give a single root leaf: %+v", rules)
	}
}

func TestRuleComplexityCountsNegations(t *testing.T) {
	r := Rule{Conds: []Cond{{Attr: 0, Value: 1}, {Attr: 1, Value: 2, Negated: true}}}
	if got := r.Complexity(); got != 3 {
		t.Errorf("Complexity = %d, want 3 (1 + 2 for negation)", got)
	}
}

func TestTuneKRespectsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var tuples [][]int32
	var labels []bool
	var vals []float64
	for i := 0; i < 400; i++ {
		x := []int32{int32(rng.Intn(4)), int32(rng.Intn(4)), int32(rng.Intn(4)), int32(rng.Intn(4))}
		pos := (x[0] == 0 && x[1] <= 1) || (x[2] == 3 && x[3] == 0)
		tuples = append(tuples, x)
		labels = append(labels, pos)
		vals = append(vals, rng.Float64())
	}
	for _, k := range []int{1, 2, 4, 8} {
		tr, err := TuneK(tuples, labels, vals, k, 8)
		if err != nil {
			t.Fatal(err)
		}
		if n := tr.PositiveLeaves(); n > k && tr.Height() != 1 {
			t.Errorf("k=%d: %d positive leaves", k, n)
		}
	}
	if _, err := TuneK(tuples, labels, vals, 0, 4); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestDeeperTreesDoNotLoseTrainAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var tuples [][]int32
	var labels []bool
	var vals []float64
	for i := 0; i < 300; i++ {
		x := []int32{int32(rng.Intn(3)), int32(rng.Intn(3)), int32(rng.Intn(3))}
		tuples = append(tuples, x)
		labels = append(labels, x[0] == 1 && x[1] != 2)
		vals = append(vals, 1)
	}
	acc := func(tr *Tree) float64 {
		ok := 0
		for i, x := range tuples {
			if tr.Classify(x) == labels[i] {
				ok++
			}
		}
		return float64(ok) / float64(len(tuples))
	}
	var prev float64
	for h := 1; h <= 5; h++ {
		tr, err := Train(tuples, labels, vals, h)
		if err != nil {
			t.Fatal(err)
		}
		a := acc(tr)
		if a < prev-1e-9 {
			t.Errorf("height %d train accuracy %v below height %d accuracy %v", h, a, h-1, prev)
		}
		prev = a
	}
	if prev < 0.99 {
		t.Errorf("depth-5 tree should fit this target, accuracy = %v", prev)
	}
}

func TestRulesPartitionSpace(t *testing.T) {
	tuples, labels, vals := xorData()
	tr, err := Train(tuples, labels, vals, 3)
	if err != nil {
		t.Fatal(err)
	}
	rules := tr.Rules()
	for _, x := range tuples {
		n := 0
		for i := range rules {
			if rules[i].Matches(x) {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("tuple %v matched %d leaf rules, want exactly 1", x, n)
		}
	}
	// Support adds up to the dataset size.
	total := 0
	for _, r := range rules {
		total += r.Support
	}
	if total != len(tuples) {
		t.Errorf("supports sum to %d, want %d", total, len(tuples))
	}
}
