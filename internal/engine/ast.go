// Package engine implements the aggregate query substrate of qagview: a
// small SQL executor for queries of the form the paper runs against
// PostgreSQL (Section 3):
//
//	SELECT g1, ..., gm, aggr(x) AS val
//	FROM t
//	WHERE p1 AND p2 ...
//	GROUP BY g1, ..., gm
//	HAVING count(*) > c
//	ORDER BY val DESC
//	LIMIT n
//
// The output of such a query — ranked group-by tuples with a numeric value —
// is the relation S that the summarization framework consumes.
package engine

import "fmt"

// AggFunc identifies an aggregate function.
type AggFunc int

// Supported aggregates.
const (
	AggAvg AggFunc = iota
	AggSum
	AggCount
	AggMin
	AggMax
)

// String returns the SQL name of the aggregate.
func (a AggFunc) String() string {
	switch a {
	case AggAvg:
		return "avg"
	case AggSum:
		return "sum"
	case AggCount:
		return "count"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(a))
	}
}

// CmpOp is a comparison operator in WHERE/HAVING predicates.
type CmpOp int

// Supported comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String returns the SQL spelling of the operator.
func (o CmpOp) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", int(o))
	}
}

// Literal is a WHERE/HAVING comparand: either a string or a number.
type Literal struct {
	IsNum bool
	Num   float64
	Str   string
}

// Predicate is a conjunct `column op literal`.
type Predicate struct {
	Column string
	Op     CmpOp
	Lit    Literal
}

// AggExpr is `fn(arg) AS alias`. Arg is "*" only for count(*).
type AggExpr struct {
	Fn    AggFunc
	Arg   string // column name, or "*" for count(*)
	Alias string // output name; defaults to the rendered expression
}

// Having is a HAVING conjunct `fn(arg) op number`.
type Having struct {
	Agg AggExpr
	Op  CmpOp
	Num float64
}

// Query is the parsed form of a supported aggregate query.
type Query struct {
	GroupBy []string // also the SELECT group columns, in SELECT order
	Agg     AggExpr
	Table   string
	Where   []Predicate
	Having  []Having
	OrderBy string // output column to order by ("" = no ordering)
	Desc    bool
	Limit   int // -1 = no limit
}
