// Package engine implements the aggregate query substrate of qagview: a
// small SQL executor for queries of the form the paper runs against
// PostgreSQL (Section 3), extended with inner equi-joins so star-schema
// aggregates run against base tables:
//
//	SELECT g1, ..., gm, aggr(x) AS val
//	FROM t1 [AS a1] [JOIN t2 [AS a2] ON c1 = c2 [AND ...]] ...
//	WHERE p1 AND p2 ...
//	GROUP BY g1, ..., gm
//	HAVING count(*) > c
//	ORDER BY val DESC
//	LIMIT n
//
// Column references may be qualified (`alias.column`); ON conditions are
// conjunctions of column equalities, each relating the newly joined table to
// one already in scope. The full dialect — grammar, type and NULL/NaN/±0
// semantics, the hash-vs-WCOJ join selection rule — is documented in
// docs/SQL.md.
//
// The output of such a query — ranked group-by tuples with a numeric value —
// is the relation S that the summarization framework consumes.
package engine

import "fmt"

// AggFunc identifies an aggregate function.
type AggFunc int

// Supported aggregates.
const (
	AggAvg AggFunc = iota
	AggSum
	AggCount
	AggMin
	AggMax
)

// String returns the SQL name of the aggregate.
func (a AggFunc) String() string {
	switch a {
	case AggAvg:
		return "avg"
	case AggSum:
		return "sum"
	case AggCount:
		return "count"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(a))
	}
}

// CmpOp is a comparison operator in WHERE/HAVING predicates.
type CmpOp int

// Supported comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String returns the SQL spelling of the operator.
func (o CmpOp) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", int(o))
	}
}

// Literal is a WHERE/HAVING comparand: either a string or a number.
type Literal struct {
	IsNum bool
	Num   float64
	Str   string
}

// Predicate is a conjunct `column op literal`.
type Predicate struct {
	Column string
	Op     CmpOp
	Lit    Literal
}

// AggExpr is `fn(arg) AS alias`. Arg is "*" only for count(*).
type AggExpr struct {
	Fn    AggFunc
	Arg   string // column name, or "*" for count(*)
	Alias string // output name; defaults to the rendered expression
}

// Having is a HAVING conjunct `fn(arg) op number`.
type Having struct {
	Agg AggExpr
	Op  CmpOp
	Num float64
}

// TableRef is one FROM-clause relation with an optional alias. The alias (or
// the table name when no alias is given) is the name column qualifiers
// resolve against, and must be unique within the query.
type TableRef struct {
	Table string
	Alias string
}

// Name returns the name the relation is known by inside the query: the alias
// if present, else the table name.
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// JoinCond is one ON conjunct `left = right`: both sides are column
// references (optionally qualified), and only equality is supported.
type JoinCond struct {
	Left  string
	Right string
}

// Join is one `JOIN table [AS alias] ON cond [AND cond ...]` clause. Each
// conjunct must relate the newly joined table to a table already in scope,
// which keeps every query's join graph connected.
type Join struct {
	Table TableRef
	On    []JoinCond
}

// Query is the parsed form of a supported aggregate query.
type Query struct {
	GroupBy []string // also the SELECT group columns, in SELECT order
	Agg     AggExpr
	Table   string // first FROM relation
	Alias   string // its alias, if any
	Joins   []Join // additional FROM relations, in clause order
	Where   []Predicate
	Having  []Having
	OrderBy string // output column to order by ("" = no ordering)
	Desc    bool
	Limit   int // -1 = no limit
}

// From returns the first FROM relation as a TableRef.
func (q *Query) From() TableRef { return TableRef{Table: q.Table, Alias: q.Alias} }

// Tables returns the distinct base tables the query reads, in FROM order.
// Serving layers use it to tie sessions to every table whose updates
// invalidate them (a self-join lists its table once).
func (q *Query) Tables() []string {
	ts := []string{q.Table}
	for _, j := range q.Joins {
		seen := false
		for _, t := range ts {
			if t == j.Table.Table {
				seen = true
				break
			}
		}
		if !seen {
			ts = append(ts, j.Table.Table)
		}
	}
	return ts
}
