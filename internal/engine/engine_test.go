package engine

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"qagview/internal/relation"
)

type catalog map[string]*relation.Relation

func (c catalog) Table(name string) (*relation.Relation, error) {
	r, ok := c[name]
	if !ok {
		return nil, fmt.Errorf("no table %q", name)
	}
	return r, nil
}

func ratings(t *testing.T) catalog {
	t.Helper()
	r, err := relation.FromColumns("ratings",
		relation.StringCol("gender", []string{"M", "M", "F", "F", "M", "F", "M", "M"}),
		relation.StringCol("occupation", []string{"student", "student", "student", "writer", "writer", "writer", "student", "writer"}),
		relation.IntCol("adventure", []int64{1, 1, 1, 1, 1, 0, 1, 1}),
		relation.FloatCol("rating", []float64{5, 4, 3, 2, 1, 5, 3, 4}),
	)
	if err != nil {
		t.Fatal(err)
	}
	return catalog{"ratings": r}
}

func TestParseFullTemplate(t *testing.T) {
	q, err := Parse(`SELECT gender, occupation, avg(rating) AS val
		FROM ratings
		WHERE adventure = 1 AND gender != 'X'
		GROUP BY gender, occupation
		HAVING count(*) > 1
		ORDER BY val DESC
		LIMIT 10`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := strings.Join(q.GroupBy, ","); got != "gender,occupation" {
		t.Errorf("GroupBy = %q", got)
	}
	if q.Agg.Fn != AggAvg || q.Agg.Arg != "rating" || q.Agg.Alias != "val" {
		t.Errorf("Agg = %+v", q.Agg)
	}
	if len(q.Where) != 2 || q.Where[1].Op != OpNe || q.Where[1].Lit.Str != "X" {
		t.Errorf("Where = %+v", q.Where)
	}
	if len(q.Having) != 1 || q.Having[0].Agg.Fn != AggCount || q.Having[0].Num != 1 {
		t.Errorf("Having = %+v", q.Having)
	}
	if q.OrderBy != "val" || !q.Desc || q.Limit != 10 {
		t.Errorf("order/limit = %q %v %d", q.OrderBy, q.Desc, q.Limit)
	}
}

func TestParseDefaults(t *testing.T) {
	q, err := Parse("select a, sum(x) from t group by a")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Agg.Alias != "sum(x)" {
		t.Errorf("default alias = %q", q.Agg.Alias)
	}
	if q.Limit != -1 || q.OrderBy != "" || q.Where != nil || q.Having != nil {
		t.Errorf("defaults wrong: %+v", q)
	}
}

func TestParseOrderAsc(t *testing.T) {
	q, err := Parse("select a, sum(x) as v from t group by a order by v asc")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Desc {
		t.Error("ASC parsed as Desc")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"select from t group by a",
		"select a from t group by a", // no aggregate
		"select a, sum(x), avg(y) from t group by a",                // two aggregates
		"select a, sum(*) from t group by a",                        // sum(*)
		"select a, sum(x) from t group by b",                        // group mismatch
		"select a, b, sum(x) from t group by a",                     // arity mismatch
		"select a, sum(x) from t group by a limit -3",               // negative limit
		"select a, sum(x) from t group by a limit 2.5",              // fractional limit
		"select a, sum(x) from t where a ~ 3 group by a",            // bad operator char
		"select a, sum(x) from t where a = 'oops group by a",        // unterminated string
		"select a, sum(x) from t group by a having a > 3",           // non-aggregate having
		"select a, sum(x) from t group by a having sum(*) > 3",      // sum(*) in having
		"select a, sum(x) from t group by a order by v extra stuff", // trailing
		"select a, sum x from t group by a",                         // missing paren
		"select select, sum(x) from t group by select",              // keyword as column
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q): want error", sql)
		}
	}
}

func TestExecuteRunningExample(t *testing.T) {
	cat := ratings(t)
	res, err := ExecuteSQL(cat, `SELECT gender, occupation, avg(rating) AS val
		FROM ratings WHERE adventure = 1
		GROUP BY gender, occupation HAVING count(*) > 1
		ORDER BY val DESC`)
	if err != nil {
		t.Fatalf("ExecuteSQL: %v", err)
	}
	// adventure=1 rows: (M,student,5),(M,student,4),(F,student,3),(F,writer,2),
	// (M,writer,1),(M,student,3),(M,writer,4).
	// Groups with count>1: (M,student):avg 4, (M,writer):avg 2.5.
	if res.N() != 2 {
		t.Fatalf("N = %d, want 2; rows=%v vals=%v", res.N(), res.Rows, res.Vals)
	}
	if got := strings.Join(res.Rows[0], "|"); got != "M|student" || res.Vals[0] != 4 {
		t.Errorf("top row = %q val %v", got, res.Vals[0])
	}
	if got := strings.Join(res.Rows[1], "|"); got != "M|writer" || res.Vals[1] != 2.5 {
		t.Errorf("second row = %q val %v", got, res.Vals[1])
	}
	if res.ValName != "val" {
		t.Errorf("ValName = %q", res.ValName)
	}
}

func TestExecuteAggregates(t *testing.T) {
	cat := ratings(t)
	cases := []struct {
		agg  string
		want map[string]float64 // gender -> value, adventure=1 only
	}{
		{"avg(rating)", map[string]float64{"M": 3.4, "F": 2.5}},
		{"sum(rating)", map[string]float64{"M": 17, "F": 5}},
		{"count(rating)", map[string]float64{"M": 5, "F": 2}},
		{"count(*)", map[string]float64{"M": 5, "F": 2}},
		{"min(rating)", map[string]float64{"M": 1, "F": 2}},
		{"max(rating)", map[string]float64{"M": 5, "F": 3}},
	}
	for _, c := range cases {
		res, err := ExecuteSQL(cat, "SELECT gender, "+c.agg+" AS val FROM ratings WHERE adventure = 1 GROUP BY gender")
		if err != nil {
			t.Fatalf("%s: %v", c.agg, err)
		}
		got := map[string]float64{}
		for i := range res.Rows {
			got[res.Rows[i][0]] = res.Vals[i]
		}
		for g, want := range c.want {
			if math.Abs(got[g]-want) > 1e-12 {
				t.Errorf("%s group %s = %v, want %v", c.agg, g, got[g], want)
			}
		}
	}
}

func TestExecuteLimitAndOrder(t *testing.T) {
	cat := ratings(t)
	res, err := ExecuteSQL(cat, `SELECT gender, occupation, avg(rating) AS val
		FROM ratings GROUP BY gender, occupation ORDER BY val DESC LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if res.N() != 2 {
		t.Fatalf("N = %d, want 2", res.N())
	}
	if res.Vals[0] < res.Vals[1] {
		t.Errorf("not descending: %v", res.Vals)
	}
	asc, err := ExecuteSQL(cat, `SELECT gender, occupation, avg(rating) AS val
		FROM ratings GROUP BY gender, occupation ORDER BY val ASC`)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.Float64sAreSorted(asc.Vals) {
		t.Errorf("ASC not ascending: %v", asc.Vals)
	}
}

func TestExecuteNumericWhere(t *testing.T) {
	cat := ratings(t)
	res, err := ExecuteSQL(cat, `SELECT gender, count(*) AS val FROM ratings
		WHERE rating >= 4 GROUP BY gender ORDER BY val DESC`)
	if err != nil {
		t.Fatal(err)
	}
	// rating >= 4: rows 0 (M,5), 1 (M,4), 5 (F,5), 7 (M,4).
	got := map[string]float64{}
	for i := range res.Rows {
		got[res.Rows[i][0]] = res.Vals[i]
	}
	if got["M"] != 3 || got["F"] != 1 {
		t.Errorf("counts = %v", got)
	}
}

func TestExecuteErrors(t *testing.T) {
	cat := ratings(t)
	bad := []string{
		"SELECT nope, avg(rating) AS val FROM ratings GROUP BY nope",
		"SELECT gender, avg(nope) AS val FROM ratings GROUP BY gender",
		"SELECT gender, avg(occupation) AS val FROM ratings GROUP BY gender",
		"SELECT gender, avg(rating) AS val FROM ratings WHERE nope = 1 GROUP BY gender",
		"SELECT gender, avg(rating) AS val FROM ratings WHERE gender = 1 GROUP BY gender",
		"SELECT gender, avg(rating) AS val FROM ratings WHERE rating = 'x' GROUP BY gender",
		"SELECT gender, avg(rating) AS val FROM ratings WHERE gender > 'a' GROUP BY gender",
		"SELECT gender, avg(rating) AS val FROM ratings GROUP BY gender HAVING avg(nope) > 1",
		"SELECT gender, avg(rating) AS val FROM ratings GROUP BY gender HAVING avg(occupation) > 1",
		"SELECT gender, avg(rating) AS val FROM ratings GROUP BY gender ORDER BY gender",
		"SELECT gender, avg(rating) AS val FROM missing GROUP BY gender",
	}
	for _, sql := range bad {
		if _, err := ExecuteSQL(cat, sql); err == nil {
			t.Errorf("ExecuteSQL(%q): want error", sql)
		}
	}
}

// TestExecuteMatchesNaive cross-checks the executor against a tiny
// independent aggregator on random data.
func TestExecuteMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 500
	a := make([]string, n)
	b := make([]string, n)
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = fmt.Sprintf("a%d", rng.Intn(5))
		b[i] = fmt.Sprintf("b%d", rng.Intn(4))
		x[i] = math.Round(rng.Float64()*100) / 10
	}
	rel := relation.MustFromColumns("t",
		relation.StringCol("a", a), relation.StringCol("b", b), relation.FloatCol("x", x))
	res, err := ExecuteSQL(catalog{"t": rel},
		"SELECT a, b, avg(x) AS val FROM t GROUP BY a, b HAVING count(*) > 10 ORDER BY val DESC")
	if err != nil {
		t.Fatal(err)
	}
	type agg struct {
		sum float64
		cnt int
	}
	naive := map[string]*agg{}
	for i := 0; i < n; i++ {
		k := a[i] + "|" + b[i]
		if naive[k] == nil {
			naive[k] = &agg{}
		}
		naive[k].sum += x[i]
		naive[k].cnt++
	}
	want := map[string]float64{}
	for k, v := range naive {
		if v.cnt > 10 {
			want[k] = v.sum / float64(v.cnt)
		}
	}
	if len(want) != res.N() {
		t.Fatalf("group count = %d, want %d", res.N(), len(want))
	}
	for i := range res.Rows {
		k := res.Rows[i][0] + "|" + res.Rows[i][1]
		w, ok := want[k]
		if !ok {
			t.Errorf("unexpected group %q", k)
			continue
		}
		if math.Abs(w-res.Vals[i]) > 1e-9 {
			t.Errorf("group %q = %v, want %v", k, res.Vals[i], w)
		}
	}
	for i := 1; i < res.N(); i++ {
		if res.Vals[i-1] < res.Vals[i] {
			t.Errorf("not sorted desc at %d: %v > %v", i, res.Vals[i], res.Vals[i-1])
		}
	}
}

func TestLexStringsAndNumbers(t *testing.T) {
	toks, err := lexAll(`x = 'it''s' AND y >= -1.5e+2`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.kind)
		texts = append(texts, tok.text)
	}
	if texts[2] != "it's" {
		t.Errorf("escaped string = %q", texts[2])
	}
	if kinds[2] != tokString {
		t.Errorf("kind = %v", kinds[2])
	}
	if texts[6] != "-1.5e+2" || kinds[6] != tokNumber {
		t.Errorf("number token = %q kind %v", texts[6], kinds[6])
	}
}
