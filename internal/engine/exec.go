package engine

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"qagview/internal/relation"
)

// Result is the output relation S of an aggregate query: ranked group-by
// tuples, each with a numeric value. Rows are in the query's ORDER BY order
// (for the paper's template, descending value), so row i has rank i+1.
type Result struct {
	// GroupBy holds the m group-by attribute names.
	GroupBy []string
	// ValName is the alias of the aggregate output column.
	ValName string
	// Table is the FROM relation the query ran against; serving layers use
	// it to tie sessions to the table whose updates invalidate them.
	Table string
	// Rows holds one rendered group-by tuple per output row.
	Rows [][]string
	// Vals holds the aggregate value per output row, aligned with Rows.
	Vals []float64
}

// N returns the number of result tuples.
func (r *Result) N() int { return len(r.Rows) }

// aggState accumulates one group's aggregate and HAVING aggregates.
type aggState struct {
	row     []string
	sum     float64
	cnt     int64
	min     float64
	max     float64
	hsum    []float64
	hcnt    []int64
	hmin    []float64
	hmax    []float64
	touched bool
}

// Catalog resolves table names for Execute. The root qagview.DB type
// implements it.
type Catalog interface {
	// Table returns the named relation, or an error if unknown.
	Table(name string) (*relation.Relation, error)
}

// Execute runs a parsed query against the catalog.
func Execute(cat Catalog, q *Query) (*Result, error) {
	rel, err := cat.Table(q.Table)
	if err != nil {
		return nil, err
	}
	return executeOn(rel, q)
}

// ExecuteSQL parses and runs sql against the catalog.
func ExecuteSQL(cat Catalog, sql string) (*Result, error) {
	q, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return Execute(cat, q)
}

func executeOn(rel *relation.Relation, q *Query) (*Result, error) {
	// Resolve columns.
	groupCols := make([]*relation.Column, len(q.GroupBy))
	for i, name := range q.GroupBy {
		c, ok := rel.ColumnByName(name)
		if !ok {
			return nil, fmt.Errorf("engine: unknown group-by column %q in table %q", name, rel.Name())
		}
		groupCols[i] = c
	}
	var aggCol *relation.Column
	if q.Agg.Arg != "*" {
		c, ok := rel.ColumnByName(q.Agg.Arg)
		if !ok {
			return nil, fmt.Errorf("engine: unknown aggregate column %q in table %q", q.Agg.Arg, rel.Name())
		}
		if c.Kind == relation.KindString && q.Agg.Fn != AggCount {
			return nil, fmt.Errorf("engine: aggregate %s over text column %q", q.Agg.Fn, c.Name)
		}
		aggCol = c
	} else if q.Agg.Fn != AggCount {
		return nil, fmt.Errorf("engine: %s(*) is not supported", q.Agg.Fn)
	}
	preds, err := compilePredicates(rel, q.Where)
	if err != nil {
		return nil, err
	}
	havingCols := make([]*relation.Column, len(q.Having))
	for i, h := range q.Having {
		if h.Agg.Arg == "*" {
			if h.Agg.Fn != AggCount {
				return nil, fmt.Errorf("engine: %s(*) is not supported in HAVING", h.Agg.Fn)
			}
			continue
		}
		c, ok := rel.ColumnByName(h.Agg.Arg)
		if !ok {
			return nil, fmt.Errorf("engine: unknown HAVING column %q", h.Agg.Arg)
		}
		if c.Kind == relation.KindString && h.Agg.Fn != AggCount {
			return nil, fmt.Errorf("engine: aggregate %s over text column %q in HAVING", h.Agg.Fn, c.Name)
		}
		havingCols[i] = c
	}
	if q.OrderBy != "" && q.OrderBy != q.Agg.Alias {
		return nil, fmt.Errorf("engine: ORDER BY %q must reference the aggregate alias %q", q.OrderBy, q.Agg.Alias)
	}

	// Group.
	groups := make(map[string]*aggState)
	var order []string // group keys in first-seen order, for determinism
	var sb strings.Builder
	for row := 0; row < rel.NumRows(); row++ {
		match := true
		for _, p := range preds {
			if !p(row) {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		sb.Reset()
		for _, c := range groupCols {
			sb.WriteString(c.StringAt(row))
			sb.WriteByte(0)
		}
		key := sb.String()
		st, ok := groups[key]
		if !ok {
			vals := make([]string, len(groupCols))
			for i, c := range groupCols {
				vals[i] = c.StringAt(row)
			}
			st = &aggState{
				row:  vals,
				min:  math.Inf(1),
				max:  math.Inf(-1),
				hsum: make([]float64, len(q.Having)),
				hcnt: make([]int64, len(q.Having)),
				hmin: make([]float64, len(q.Having)),
				hmax: make([]float64, len(q.Having)),
			}
			for i := range st.hmin {
				st.hmin[i] = math.Inf(1)
				st.hmax[i] = math.Inf(-1)
			}
			groups[key] = st
			order = append(order, key)
		}
		st.cnt++
		if aggCol != nil {
			v, err := aggCol.FloatAt(row)
			if err != nil {
				return nil, err
			}
			st.sum += v
			if v < st.min {
				st.min = v
			}
			if v > st.max {
				st.max = v
			}
			st.touched = true
		}
		for i := range q.Having {
			if havingCols[i] == nil {
				st.hcnt[i]++
				continue
			}
			v, err := havingCols[i].FloatAt(row)
			if err != nil {
				return nil, err
			}
			st.hcnt[i]++
			st.hsum[i] += v
			if v < st.hmin[i] {
				st.hmin[i] = v
			}
			if v > st.hmax[i] {
				st.hmax[i] = v
			}
		}
	}

	// HAVING filter and final value.
	res := &Result{GroupBy: append([]string(nil), q.GroupBy...), ValName: q.Agg.Alias, Table: q.Table}
	for _, key := range order {
		st := groups[key]
		keep := true
		for i, h := range q.Having {
			v := finalize(h.Agg.Fn, st.hsum[i], st.hcnt[i], st.hmin[i], st.hmax[i])
			if !cmpFloat(v, h.Op, h.Num) {
				keep = false
				break
			}
		}
		if !keep {
			continue
		}
		res.Rows = append(res.Rows, st.row)
		res.Vals = append(res.Vals, finalize(q.Agg.Fn, st.sum, st.cnt, st.min, st.max))
	}

	// ORDER BY and LIMIT. Sorting is stable so first-seen order breaks ties
	// deterministically.
	if q.OrderBy != "" {
		idx := make([]int, len(res.Rows))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			if q.Desc {
				return res.Vals[idx[a]] > res.Vals[idx[b]]
			}
			return res.Vals[idx[a]] < res.Vals[idx[b]]
		})
		rows := make([][]string, len(idx))
		vals := make([]float64, len(idx))
		for i, j := range idx {
			rows[i], vals[i] = res.Rows[j], res.Vals[j]
		}
		res.Rows, res.Vals = rows, vals
	}
	if q.Limit >= 0 && q.Limit < len(res.Rows) {
		res.Rows = res.Rows[:q.Limit]
		res.Vals = res.Vals[:q.Limit]
	}
	return res, nil
}

func finalize(fn AggFunc, sum float64, cnt int64, min, max float64) float64 {
	switch fn {
	case AggAvg:
		if cnt == 0 {
			return 0
		}
		return sum / float64(cnt)
	case AggSum:
		return sum
	case AggCount:
		return float64(cnt)
	case AggMin:
		return min
	case AggMax:
		return max
	default:
		return 0
	}
}

func cmpFloat(a float64, op CmpOp, b float64) bool {
	switch op {
	case OpEq:
		return a == b
	case OpNe:
		return a != b
	case OpLt:
		return a < b
	case OpLe:
		return a <= b
	case OpGt:
		return a > b
	case OpGe:
		return a >= b
	default:
		return false
	}
}

// compilePredicates turns WHERE conjuncts into per-row closures bound to the
// relation's columns. Numeric literals compare numerically against numeric
// columns; string literals compare against the rendered value of any column.
func compilePredicates(rel *relation.Relation, preds []Predicate) ([]func(int) bool, error) {
	out := make([]func(int) bool, 0, len(preds))
	for _, p := range preds {
		c, ok := rel.ColumnByName(p.Column)
		if !ok {
			return nil, fmt.Errorf("engine: unknown WHERE column %q in table %q", p.Column, rel.Name())
		}
		p := p
		if p.Lit.IsNum {
			if c.Kind == relation.KindString {
				return nil, fmt.Errorf("engine: numeric comparison against text column %q", c.Name)
			}
			col := c
			out = append(out, func(row int) bool {
				v, _ := col.FloatAt(row)
				return cmpFloat(v, p.Op, p.Lit.Num)
			})
			continue
		}
		if c.Kind != relation.KindString {
			return nil, fmt.Errorf("engine: string comparison against %s column %q", c.Kind, c.Name)
		}
		if p.Op != OpEq && p.Op != OpNe {
			return nil, fmt.Errorf("engine: operator %s is not supported for text column %q", p.Op, c.Name)
		}
		col := c
		out = append(out, func(row int) bool {
			eq := col.Str[row] == p.Lit.Str
			if p.Op == OpEq {
				return eq
			}
			return !eq
		})
	}
	return out, nil
}
