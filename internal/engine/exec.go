package engine

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"

	"qagview/internal/obs"
	"qagview/internal/relation"
)

// Result is the output relation S of an aggregate query: ranked group-by
// tuples, each with a numeric value. Rows are in the query's ORDER BY order
// (for the paper's template, descending value), so row i has rank i+1.
type Result struct {
	// GroupBy holds the m group-by attribute names.
	GroupBy []string
	// ValName is the alias of the aggregate output column.
	ValName string
	// Table is the first FROM relation the query ran against, kept for
	// callers that predate joins.
	Table string
	// Tables lists every distinct base table the query read, in FROM order
	// (len 1 for single-table queries); serving layers use it to tie
	// sessions to all tables whose updates invalidate them.
	Tables []string
	// Rows holds one rendered group-by tuple per output row.
	Rows [][]string
	// Vals holds the aggregate value per output row, aligned with Rows.
	Vals []float64
	// Profile holds the per-operator execution profile when the query ran
	// with ExecProfile; nil otherwise. Profiles observe, they never alter
	// output: the equivalence suites compare result fields with profiling
	// on and off.
	Profile Profile `json:"profile,omitempty"`
}

// N returns the number of result tuples.
func (r *Result) N() int { return len(r.Rows) }

// aggState accumulates one group's aggregate and HAVING aggregates in the
// reference executor.
type aggState struct {
	row  []string
	sum  float64
	cnt  int64
	min  float64
	max  float64
	hsum []float64
	hcnt []int64
	hmin []float64
	hmax []float64
}

// Catalog resolves table names for Execute. The root qagview.DB type
// implements it.
type Catalog interface {
	// Table returns the named relation, or an error if unknown.
	Table(name string) (*relation.Relation, error)
}

// joinMode selects the multi-table execution path.
type joinMode int

const (
	// joinAuto picks the hash path for acyclic join graphs and the
	// worst-case-optimal generic path for cyclic ones.
	joinAuto joinMode = iota
	// joinHash forces the left-deep binary hash-join plan everywhere.
	joinHash
	// joinGeneric forces the worst-case-optimal leapfrog path everywhere.
	joinGeneric
)

// execConfig collects execution options.
type execConfig struct {
	par        int
	ctx        context.Context
	reference  bool
	stringKeys bool
	joins      joinMode
	profile    bool
	prof       *execProf // non-nil iff profile
}

// ExecOption customizes query execution. The zero configuration runs the
// vectorized executor with GOMAXPROCS morsel workers; every option produces
// bit-identical results (see the equivalence tests), so options tune cost,
// never output.
type ExecOption func(*execConfig)

// ExecParallelism bounds the morsel worker pool of the vectorized executor
// (default GOMAXPROCS). n <= 1 runs the same pipeline on the calling
// goroutine; output is bit-identical at every setting.
func ExecParallelism(n int) ExecOption {
	return func(c *execConfig) { c.par = n }
}

// ExecContext attaches a context to the execution: cancellation is observed
// between morsels and Execute returns ctx.Err(). Serving layers use it to
// abandon scans for evicted sessions.
func ExecContext(ctx context.Context) ExecOption {
	return func(c *execConfig) { c.ctx = ctx }
}

// ExecReference forces the row-at-a-time reference executor that the
// vectorized pipeline is proven bit-identical to, for ablations and
// differential tests.
func ExecReference() ExecOption {
	return func(c *execConfig) { c.reference = true }
}

// ExecStringKeys forces the vectorized executor's string-key fallback over
// the packed uint64 group keys (the fallback engages automatically when the
// group columns' dictionary widths exceed 64 bits), for ablations; output is
// identical either way. The same switch governs hash-join build keys.
func ExecStringKeys() ExecOption {
	return func(c *execConfig) { c.stringKeys = true }
}

// ExecHashJoin forces the left-deep binary hash-join plan even on cyclic
// join graphs, where the auto rule would pick the worst-case-optimal path.
// Output is bit-identical either way; the binary plan can materialize
// asymptotically larger intermediates (the blowup BenchmarkJoinTriangle
// measures).
func ExecHashJoin() ExecOption {
	return func(c *execConfig) { c.joins = joinHash }
}

// ExecGenericJoin forces the worst-case-optimal leapfrog path even on
// acyclic join graphs, where the auto rule would pick hash joins. Output is
// bit-identical either way.
func ExecGenericJoin() ExecOption {
	return func(c *execConfig) { c.joins = joinGeneric }
}

// ExecProfile collects a per-operator execution profile (rows in/out,
// batches, wall time) into Result.Profile. Profiling observes only — the
// result rows and values are bit-identical with it on or off.
func ExecProfile() ExecOption {
	return func(c *execConfig) { c.profile = true }
}

// Execute runs a parsed query against the catalog. Multi-table queries join
// their FROM relations first (see join.go) and aggregate over the joined
// rows; both forms run the same vectorized pipeline and stay bit-identical
// to the reference executor at every parallelism.
func Execute(cat Catalog, q *Query, opts ...ExecOption) (*Result, error) {
	cfg := execConfig{par: runtime.GOMAXPROCS(0)}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.profile {
		cfg.prof = newExecProf()
	}
	ctx, sp := obs.StartSpan(cfg.ctx, "engine.execute")
	if sp != nil {
		sp.SetAttr("table", q.From().Table)
		sp.SetInt("parallelism", int64(cfg.par))
		cfg.ctx = ctx
	}
	res, err := execute(cat, q, cfg)
	sp.End()
	if err == nil && cfg.prof != nil {
		res.Profile = cfg.prof.snapshot()
	}
	return res, err
}

func execute(cat Catalog, q *Query, cfg execConfig) (*Result, error) {
	if len(q.Joins) > 0 {
		return executeJoin(cat, q, cfg)
	}
	rel, err := cat.Table(q.Table)
	if err != nil {
		return nil, err
	}
	pSt := cfg.prof.op("plan")
	t0 := profNow(pSt)
	_, psp := obs.StartSpan(cfg.ctx, "plan")
	p, err := planQuery(rel, q)
	psp.End()
	pSt.addWall(t0)
	if err != nil {
		return nil, err
	}
	if cfg.reference {
		return executeProfiledRef(p, cfg)
	}
	return executeVec(p, cfg)
}

// executeProfiledRef runs the reference executor, reporting it as a
// single opaque operator when profiling (the row-at-a-time oracle has no
// vectorized operator structure to expose).
func executeProfiledRef(p *execPlan, cfg execConfig) (*Result, error) {
	st := cfg.prof.op("reference")
	t0 := profNow(st)
	_, sp := obs.StartSpan(cfg.ctx, "reference")
	res, err := executeRef(p)
	sp.End()
	st.addWall(t0)
	if err == nil {
		st.addRows(int64(p.rel.NumRows()), int64(len(res.Rows)))
	}
	return res, err
}

// ExecuteSQL parses and runs sql against the catalog.
func ExecuteSQL(cat Catalog, sql string, opts ...ExecOption) (*Result, error) {
	q, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return Execute(cat, q, opts...)
}

// predBind is a WHERE conjunct resolved against a column, ready for either
// executor to compile (closures for the reference, batch kernels for the
// vectorized pipeline).
type predBind struct {
	col *relation.Column
	op  CmpOp
	lit Literal
}

// execPlan is a query resolved and validated against one relation: both
// executors run from the same plan, so they accept and reject exactly the
// same queries with the same errors.
type execPlan struct {
	rel        *relation.Relation
	q          *Query
	groupCols  []*relation.Column
	aggCol     *relation.Column   // nil for count(*)
	havingCols []*relation.Column // nil entries are count(*)
	preds      []predBind
}

// lookupCol resolves a (possibly qualified) column reference against the
// plan's relation. Materialized join relations name their columns with the
// query's exact reference text, so the direct probe hits; for single-table
// queries a qualifier naming the FROM table (or its alias) is stripped.
func lookupCol(rel *relation.Relation, q *Query, name string) (*relation.Column, bool) {
	if c, ok := rel.ColumnByName(name); ok {
		return c, true
	}
	if len(q.Joins) > 0 {
		return nil, false
	}
	if i := strings.IndexByte(name, '.'); i >= 0 && name[:i] == q.From().Name() {
		return rel.ColumnByName(name[i+1:])
	}
	return nil, false
}

// planQuery resolves the query's columns and validates types.
func planQuery(rel *relation.Relation, q *Query) (*execPlan, error) {
	p := &execPlan{rel: rel, q: q}
	p.groupCols = make([]*relation.Column, len(q.GroupBy))
	for i, name := range q.GroupBy {
		c, ok := lookupCol(rel, q, name)
		if !ok {
			return nil, fmt.Errorf("engine: unknown group-by column %q in table %q", name, rel.Name())
		}
		p.groupCols[i] = c
	}
	if q.Agg.Arg != "*" {
		c, ok := lookupCol(rel, q, q.Agg.Arg)
		if !ok {
			return nil, fmt.Errorf("engine: unknown aggregate column %q in table %q", q.Agg.Arg, rel.Name())
		}
		if c.Kind == relation.KindString {
			// count(textcol) is rejected too: this dialect has no NULLs, so it
			// could only mean count(*) — and letting it through would make the
			// executors gather float values from a text column.
			return nil, fmt.Errorf("engine: aggregate %s over text column %q (use count(*) to count rows)", q.Agg.Fn, c.Name)
		}
		p.aggCol = c
	} else if q.Agg.Fn != AggCount {
		return nil, fmt.Errorf("engine: %s(*) is not supported", q.Agg.Fn)
	}
	for _, pr := range q.Where {
		c, ok := lookupCol(rel, q, pr.Column)
		if !ok {
			return nil, fmt.Errorf("engine: unknown WHERE column %q in table %q", pr.Column, rel.Name())
		}
		if pr.Lit.IsNum {
			if c.Kind == relation.KindString {
				return nil, fmt.Errorf("engine: numeric comparison against text column %q", c.Name)
			}
		} else {
			if c.Kind != relation.KindString {
				return nil, fmt.Errorf("engine: string comparison against %s column %q", c.Kind, c.Name)
			}
			if pr.Op != OpEq && pr.Op != OpNe {
				return nil, fmt.Errorf("engine: operator %s is not supported for text column %q", pr.Op, c.Name)
			}
		}
		p.preds = append(p.preds, predBind{col: c, op: pr.Op, lit: pr.Lit})
	}
	p.havingCols = make([]*relation.Column, len(q.Having))
	for i, h := range q.Having {
		if h.Agg.Arg == "*" {
			if h.Agg.Fn != AggCount {
				return nil, fmt.Errorf("engine: %s(*) is not supported in HAVING", h.Agg.Fn)
			}
			continue
		}
		c, ok := lookupCol(rel, q, h.Agg.Arg)
		if !ok {
			return nil, fmt.Errorf("engine: unknown HAVING column %q", h.Agg.Arg)
		}
		if c.Kind == relation.KindString {
			return nil, fmt.Errorf("engine: aggregate %s over text column %q in HAVING (use count(*) to count rows)", h.Agg.Fn, c.Name)
		}
		p.havingCols[i] = c
	}
	if q.OrderBy != "" && q.OrderBy != q.Agg.Alias {
		return nil, fmt.Errorf("engine: ORDER BY %q must reference the aggregate alias %q", q.OrderBy, q.Agg.Alias)
	}
	return p, nil
}

// executeRef is the row-at-a-time reference executor: per-row predicate
// closures, a rendered string key per row, and a Go map of group states. The
// vectorized pipeline (executeVec) is proven bit-identical to it; it stays as
// the differential-testing oracle, per the playbook of PRs 2 and 3.
func executeRef(p *execPlan) (*Result, error) {
	q := p.q
	preds := compilePredicates(p.preds)

	// Group. Keys are length-prefixed rendered values: a plain separator
	// byte would merge distinct groups whose values contain the separator
	// (see TestExecuteGroupKeyNulSeparator).
	groups := make(map[string]*aggState)
	var order []string // group keys in first-seen order, for determinism
	var kb []byte      // reused key scratch
	for row := 0; row < p.rel.NumRows(); row++ {
		match := true
		for _, pr := range preds {
			if !pr(row) {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		kb = kb[:0]
		for _, c := range p.groupCols {
			s := c.StringAt(row)
			kb = binary.AppendUvarint(kb, uint64(len(s)))
			kb = append(kb, s...)
		}
		st, ok := groups[string(kb)]
		if !ok {
			vals := make([]string, len(p.groupCols))
			for i, c := range p.groupCols {
				vals[i] = c.StringAt(row)
			}
			st = &aggState{
				row:  vals,
				min:  math.Inf(1),
				max:  math.Inf(-1),
				hsum: make([]float64, len(q.Having)),
				hcnt: make([]int64, len(q.Having)),
				hmin: make([]float64, len(q.Having)),
				hmax: make([]float64, len(q.Having)),
			}
			for i := range st.hmin {
				st.hmin[i] = math.Inf(1)
				st.hmax[i] = math.Inf(-1)
			}
			key := string(kb)
			groups[key] = st
			order = append(order, key)
		}
		st.cnt++
		if p.aggCol != nil {
			v, err := p.aggCol.FloatAt(row)
			if err != nil {
				return nil, err
			}
			st.sum += v
			if v < st.min {
				st.min = v
			}
			if v > st.max {
				st.max = v
			}
		}
		for i := range q.Having {
			if p.havingCols[i] == nil {
				st.hcnt[i]++
				continue
			}
			v, err := p.havingCols[i].FloatAt(row)
			if err != nil {
				return nil, err
			}
			st.hcnt[i]++
			st.hsum[i] += v
			if v < st.hmin[i] {
				st.hmin[i] = v
			}
			if v > st.hmax[i] {
				st.hmax[i] = v
			}
		}
	}

	// HAVING filter and final value.
	res := &Result{GroupBy: append([]string(nil), q.GroupBy...), ValName: q.Agg.Alias, Table: q.Table, Tables: q.Tables()}
	for _, key := range order {
		st := groups[key]
		keep := true
		for i, h := range q.Having {
			v := finalize(h.Agg.Fn, st.hsum[i], st.hcnt[i], st.hmin[i], st.hmax[i])
			if !cmpFloat(v, h.Op, h.Num) {
				keep = false
				break
			}
		}
		if !keep {
			continue
		}
		res.Rows = append(res.Rows, st.row)
		res.Vals = append(res.Vals, finalize(q.Agg.Fn, st.sum, st.cnt, st.min, st.max))
	}
	orderAndLimit(q, res)
	return res, nil
}

// orderAndLimit applies ORDER BY and LIMIT in place. Sorting is stable so
// first-seen group order breaks ties deterministically; both executors
// produce that order, so their sorted output is bit-identical too.
func orderAndLimit(q *Query, res *Result) {
	if q.OrderBy != "" {
		idx := make([]int, len(res.Rows))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			if q.Desc {
				return res.Vals[idx[a]] > res.Vals[idx[b]]
			}
			return res.Vals[idx[a]] < res.Vals[idx[b]]
		})
		rows := make([][]string, len(idx))
		vals := make([]float64, len(idx))
		for i, j := range idx {
			rows[i], vals[i] = res.Rows[j], res.Vals[j]
		}
		res.Rows, res.Vals = rows, vals
	}
	if q.Limit >= 0 && q.Limit < len(res.Rows) {
		res.Rows = res.Rows[:q.Limit]
		res.Vals = res.Vals[:q.Limit]
	}
}

func finalize(fn AggFunc, sum float64, cnt int64, min, max float64) float64 {
	switch fn {
	case AggAvg:
		if cnt == 0 {
			return 0
		}
		return sum / float64(cnt)
	case AggSum:
		return sum
	case AggCount:
		return float64(cnt)
	case AggMin:
		return min
	case AggMax:
		return max
	default:
		return 0
	}
}

func cmpFloat(a float64, op CmpOp, b float64) bool {
	switch op {
	case OpEq:
		return a == b
	case OpNe:
		return a != b
	case OpLt:
		return a < b
	case OpLe:
		return a <= b
	case OpGt:
		return a > b
	case OpGe:
		return a >= b
	default:
		return false
	}
}

// compilePredicates turns resolved WHERE conjuncts into per-row closures.
// Numeric literals compare numerically against numeric columns; string
// literals compare against string columns.
func compilePredicates(preds []predBind) []func(int) bool {
	out := make([]func(int) bool, 0, len(preds))
	for _, p := range preds {
		p := p
		if p.lit.IsNum {
			col := p.col
			out = append(out, func(row int) bool {
				v, _ := col.FloatAt(row)
				return cmpFloat(v, p.op, p.lit.Num)
			})
			continue
		}
		col := p.col
		out = append(out, func(row int) bool {
			eq := col.Str[row] == p.lit.Str
			if p.op == OpEq {
				return eq
			}
			return !eq
		})
	}
	return out
}
