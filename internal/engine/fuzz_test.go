package engine

import (
	"math"
	"reflect"
	"testing"

	"qagview/internal/relation"
)

// fuzzCatalog resolves every table name to one tiny relation, so accepted
// queries exercise the executor (WHERE, GROUP BY, HAVING, ORDER BY, LIMIT)
// against real columns; unknown columns and type mismatches must surface as
// errors, never panics.
type fuzzCatalog struct{ rel *relation.Relation }

func (c fuzzCatalog) Table(string) (*relation.Relation, error) { return c.rel, nil }

// emptyCatalog rejects every table, the exec-on-empty-catalog contract.
type emptyCatalog struct{}

func (emptyCatalog) Table(name string) (*relation.Relation, error) {
	return nil, errUnknownTable(name)
}

func errUnknownTable(name string) error {
	return &unknownTableError{name}
}

type unknownTableError struct{ name string }

func (e *unknownTableError) Error() string { return "fuzz: unknown table " + e.name }

// FuzzParse feeds arbitrary SQL through the lexer and parser, and runs every
// accepted query through the executor against both an empty catalog and a
// small populated one. The front end must never panic: malformed input,
// unknown tables/columns, and degenerate literals must all come back as
// errors.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT gender, occupation, avg(rating) AS val FROM ratings WHERE adventure = 1 AND gender != 'X' GROUP BY gender, occupation HAVING count(*) > 1 ORDER BY val DESC LIMIT 10",
		"select a, sum(x) from t group by a",
		"select a, sum(x) as v from t group by a order by v asc",
		"select a, b, min(x) as v from t where a >= 2 group by a, b having max(x) < 9 order by v desc",
		"select a, count(*) as c from t group by a order by c desc limit 0",
		"select a, avg(x) from t where s = 'it''s' group by a",
		"select a, sum(x) from t where a < -1.5e3 group by a",
		"SELECT",
		"select from t group by a",
		"select a, sum(*) from t group by a",
		"select a, sum(x) from t where a ~ 3 group by a",
		"select a, sum(x) from t where a = 'oops group by a",
		"select a, sum(x), avg(y) from t group by a",
		"select a, sum(x) from t group by a limit -3",
		"\x00\xff(*)',",
		"select a, sum(x) from t group by a having count(*) > 184467440737095516150",
		"select a, count(gender) as c from ratings group by a",
		"select a, sum(rating) as v from ratings group by a having count(gender) > 0",
		"select u.a, avg(x) as v from t join u on t.a = u.a group by u.a",
		"SELECT r.gender, avg(r.rating) AS val FROM ratings r JOIN users u ON r.a = u.a JOIN movies m ON r.a = m.a GROUP BY r.gender",
		"select a, sum(x) from t join u on t.a = u.a and u.b = t.b group by a",
		"select a, sum(x) from t join t on t.a = t.a group by a",
		"select a, sum(x) from t join u group by a",
		"select a, sum(x) from t join u on t.a = 3 group by a",
		"select a, sum(x) from t join u on a = u.a group by a",
		"select q.a, sum(x) from t join u on t.a = u.a group by q.a",
		"select t.a.b, sum(x) from t join u on t.a = u.a group by t.a.b",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	rel, err := relation.FromColumns("ratings",
		relation.StringCol("a", []string{"x", "y", "x", "z"}),
		relation.StringCol("gender", []string{"M", "F", "M", "F"}),
		relation.IntCol("adventure", []int64{1, 0, 1, 1}),
		relation.FloatCol("rating", []float64{5, 3, 4, 2}),
	)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		q, err := Parse(sql)
		if err != nil {
			if q != nil {
				t.Fatalf("Parse returned both a query and an error for %q", sql)
			}
			return
		}
		if q == nil {
			t.Fatalf("Parse returned neither a query nor an error for %q", sql)
		}
		// Accepted queries must round-trip through execution without
		// crashing, on an empty catalog and on a populated one.
		if _, err := Execute(emptyCatalog{}, q); err == nil {
			t.Fatalf("Execute on empty catalog succeeded for %q", sql)
		}
		_, _ = Execute(fuzzCatalog{rel}, q)
		// The combined entry point must agree with Parse on acceptance.
		_, _ = ExecuteSQL(fuzzCatalog{rel}, sql)
	})
}

// fuzzExecCatalog is the multi-table catalog for FuzzExec: a fact table
// reachable as both "t" and "ratings" (the single-table seeds use either), a
// string-keyed dimension sharing key values with the fact's "a" column, a
// float-keyed dimension whose keys include NaN and -0, and a tiny edge table
// so fuzzed self-joins can form cyclic graphs and reach the leapfrog path.
func fuzzExecCatalog(f *testing.F) catalog {
	f.Helper()
	fact, err := relation.FromColumns("ratings",
		relation.StringCol("a", []string{"x", "y\x00", "x", "\x00y", "", "y\x00"}),
		relation.StringCol("gender", []string{"M", "F", "M", "F", "F", "M"}),
		relation.IntCol("adventure", []int64{1, 0, 1, 1, 0, 1}),
		relation.FloatCol("rating", []float64{5, math.NaN(), 4, math.Copysign(0, -1), 0, 4}),
	)
	if err != nil {
		f.Fatal(err)
	}
	dim, err := relation.FromColumns("dim",
		relation.StringCol("a", []string{"x", "\x00y", "z", ""}),
		relation.StringCol("region", []string{"east", "west", "east", "north"}),
	)
	if err != nil {
		f.Fatal(err)
	}
	fdim, err := relation.FromColumns("fdim",
		relation.FloatCol("rating", []float64{5, math.NaN(), math.Copysign(0, -1), 0, 4}),
		relation.IntCol("stars", []int64{2, -1, 0, 0, 1}),
	)
	if err != nil {
		f.Fatal(err)
	}
	edges, err := relation.FromColumns("edges",
		relation.IntCol("src", []int64{1, 2, 3, 1, 2, 4}),
		relation.IntCol("dst", []int64{2, 3, 1, 3, 4, 1}),
	)
	if err != nil {
		f.Fatal(err)
	}
	return catalog{"t": fact, "ratings": fact, "dim": dim, "fdim": fdim, "edges": edges}
}

// FuzzExec is the differential fuzzer for the executors: every accepted
// query runs through the row-at-a-time (nested-loop) reference and through
// the vectorized pipeline at several worker counts, on both key paths and
// every join strategy, and all of them must agree bit for bit (or all fail
// with the same error). The fuzz relations include NUL-bearing strings, NaN,
// and -0 to stress the key encodings, and the catalog has joinable
// dimension/edge tables so fuzzed FROM clauses exercise the hash and
// worst-case-optimal join paths against the nested-loop reference.
func FuzzExec(f *testing.F) {
	seeds := []string{
		"SELECT gender, occupation, avg(rating) AS val FROM ratings WHERE adventure = 1 AND gender != 'X' GROUP BY gender, occupation HAVING count(*) > 1 ORDER BY val DESC LIMIT 10",
		"select a, sum(rating) as v from t group by a order by v asc",
		"select a, gender, min(rating) as v from t where adventure >= 1 group by a, gender having max(rating) < 9 order by v desc",
		"select a, count(*) as c from t group by a order by c desc limit 1",
		"select rating, count(*) as c from t group by rating order by c desc",
		"select a, a, avg(adventure) as v from t group by a, a order by v desc",
		"select region, avg(rating) as v from t join dim on t.a = dim.a group by region order by v desc",
		"select region, gender, count(*) as c from t join dim on t.a = dim.a group by region, gender order by c desc",
		"select region, sum(stars) as v from t join dim on t.a = dim.a join fdim on t.rating = fdim.rating group by region order by v desc",
		"select stars, count(*) as c from t join fdim on t.rating = fdim.rating group by stars",
		"select e1.src, count(*) as c from edges e1 join e2 on e1.dst = e2.src group by e1.src",
		"select e1.src, count(*) as c from edges e1 join edges e2 on e1.dst = e2.src join edges e3 on e2.dst = e3.src and e3.dst = e1.src group by e1.src order by c desc",
		"select d1.region, d2.region, count(*) as c from dim d1 join dim d2 on d1.a = d2.a group by d1.region, d2.region",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	cat := fuzzExecCatalog(f)
	joinModes := []struct {
		name string
		opt  []ExecOption
	}{
		{"auto", nil},
		{"hash", []ExecOption{ExecHashJoin()}},
		{"generic", []ExecOption{ExecGenericJoin()}},
	}
	f.Fuzz(func(t *testing.T, sql string) {
		q, err := Parse(sql)
		if err != nil {
			return
		}
		want, refErr := Execute(cat, q, ExecReference())
		for _, par := range []int{1, 8} {
			for _, strKeys := range []bool{false, true} {
				for _, mode := range joinModes {
					opts := append([]ExecOption{ExecParallelism(par)}, mode.opt...)
					if strKeys {
						opts = append(opts, ExecStringKeys())
					}
					got, err := Execute(cat, q, opts...)
					if (err == nil) != (refErr == nil) {
						t.Fatalf("par=%d strKeys=%v join=%s: err = %v, reference err = %v (query %q)", par, strKeys, mode.name, err, refErr, sql)
					}
					if err != nil {
						if err.Error() != refErr.Error() {
							t.Fatalf("par=%d strKeys=%v join=%s: err %q, reference err %q (query %q)", par, strKeys, mode.name, err, refErr, sql)
						}
						continue
					}
					if !reflect.DeepEqual(want.GroupBy, got.GroupBy) || want.ValName != got.ValName ||
						want.Table != got.Table || !reflect.DeepEqual(want.Tables, got.Tables) ||
						!reflect.DeepEqual(want.Rows, got.Rows) {
						t.Fatalf("par=%d strKeys=%v join=%s: result mismatch for %q:\nwant %+v\ngot  %+v", par, strKeys, mode.name, sql, want, got)
					}
					if len(want.Vals) != len(got.Vals) {
						t.Fatalf("par=%d strKeys=%v join=%s: %d vals, want %d (query %q)", par, strKeys, mode.name, len(got.Vals), len(want.Vals), sql)
					}
					for i := range want.Vals {
						if math.Float64bits(want.Vals[i]) != math.Float64bits(got.Vals[i]) {
							t.Fatalf("par=%d strKeys=%v join=%s: val[%d] bits differ: %v vs %v (query %q)", par, strKeys, mode.name, i, got.Vals[i], want.Vals[i], sql)
						}
					}
				}
			}
		}
	})
}
