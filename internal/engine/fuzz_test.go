package engine

import (
	"testing"

	"qagview/internal/relation"
)

// fuzzCatalog resolves every table name to one tiny relation, so accepted
// queries exercise the executor (WHERE, GROUP BY, HAVING, ORDER BY, LIMIT)
// against real columns; unknown columns and type mismatches must surface as
// errors, never panics.
type fuzzCatalog struct{ rel *relation.Relation }

func (c fuzzCatalog) Table(string) (*relation.Relation, error) { return c.rel, nil }

// emptyCatalog rejects every table, the exec-on-empty-catalog contract.
type emptyCatalog struct{}

func (emptyCatalog) Table(name string) (*relation.Relation, error) {
	return nil, errUnknownTable(name)
}

func errUnknownTable(name string) error {
	return &unknownTableError{name}
}

type unknownTableError struct{ name string }

func (e *unknownTableError) Error() string { return "fuzz: unknown table " + e.name }

// FuzzParse feeds arbitrary SQL through the lexer and parser, and runs every
// accepted query through the executor against both an empty catalog and a
// small populated one. The front end must never panic: malformed input,
// unknown tables/columns, and degenerate literals must all come back as
// errors.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT gender, occupation, avg(rating) AS val FROM ratings WHERE adventure = 1 AND gender != 'X' GROUP BY gender, occupation HAVING count(*) > 1 ORDER BY val DESC LIMIT 10",
		"select a, sum(x) from t group by a",
		"select a, sum(x) as v from t group by a order by v asc",
		"select a, b, min(x) as v from t where a >= 2 group by a, b having max(x) < 9 order by v desc",
		"select a, count(*) as c from t group by a order by c desc limit 0",
		"select a, avg(x) from t where s = 'it''s' group by a",
		"select a, sum(x) from t where a < -1.5e3 group by a",
		"SELECT",
		"select from t group by a",
		"select a, sum(*) from t group by a",
		"select a, sum(x) from t where a ~ 3 group by a",
		"select a, sum(x) from t where a = 'oops group by a",
		"select a, sum(x), avg(y) from t group by a",
		"select a, sum(x) from t group by a limit -3",
		"\x00\xff(*)',",
		"select a, sum(x) from t group by a having count(*) > 184467440737095516150",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	rel, err := relation.FromColumns("ratings",
		relation.StringCol("a", []string{"x", "y", "x", "z"}),
		relation.StringCol("gender", []string{"M", "F", "M", "F"}),
		relation.IntCol("adventure", []int64{1, 0, 1, 1}),
		relation.FloatCol("rating", []float64{5, 3, 4, 2}),
	)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		q, err := Parse(sql)
		if err != nil {
			if q != nil {
				t.Fatalf("Parse returned both a query and an error for %q", sql)
			}
			return
		}
		if q == nil {
			t.Fatalf("Parse returned neither a query nor an error for %q", sql)
		}
		// Accepted queries must round-trip through execution without
		// crashing, on an empty catalog and on a populated one.
		if _, err := Execute(emptyCatalog{}, q); err == nil {
			t.Fatalf("Execute on empty catalog succeeded for %q", sql)
		}
		_, _ = Execute(fuzzCatalog{rel}, q)
		// The combined entry point must agree with Parse on acceptance.
		_, _ = ExecuteSQL(fuzzCatalog{rel}, sql)
	})
}
