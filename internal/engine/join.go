package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"strings"
	"sync"
	"sync/atomic"

	"qagview/internal/obs"
	"qagview/internal/pattern"
	"qagview/internal/relation"
)

// This file implements multi-table execution. A join query runs in three
// stages: planJoin resolves the FROM relations, ON conditions and column
// references (producing every name-resolution error); a join algorithm
// computes the matching row-id tuples in the canonical order — lexicographic
// by FROM-position row ids, the order the nested-loop reference produces
// naturally; and materialize gathers the referenced columns into an
// anonymous joined relation that the unchanged single-table executors
// aggregate over. Three algorithms produce the same tuples bit-identically:
//
//   - nestedLoopTuples: FROM-order nested loops, the reference oracle;
//   - hashTuples: a left-deep binary hash-join plan with a morsel-parallel
//     probe (the default for acyclic join graphs);
//   - leapfrogTuples (wcoj.go): the worst-case-optimal generic join (the
//     default for cyclic graphs, where binary plans can materialize
//     asymptotically larger intermediates).
//
// Join keys use value identity per equivalence class of equated columns:
// text classes compare strings, all-int classes compare exact int64s, and
// classes containing a float column compare float64 bit patterns with every
// NaN collapsed to one key (so NaN joins NaN and ±0 stay distinct, matching
// GROUP BY semantics; see docs/SQL.md).

// ErrAmbiguousColumn reports an unqualified column reference that resolves
// in more than one FROM relation.
var ErrAmbiguousColumn = errors.New("ambiguous column")

// joinKeyKind is the key domain of one equivalence class of equated columns.
type joinKeyKind int

const (
	kkString joinKeyKind = iota
	kkInt
	kkFloat
)

// boundCond is one resolved ON conjunct, normalized so rt is the newly
// joined (higher FROM position) table.
type boundCond struct {
	lt, lc int // earlier table and column index
	rt, rc int // newly joined table and column index
	lcol   *relation.Column
	rcol   *relation.Column
	key    joinKeyKind
}

// match evaluates the condition between one row of each side under the
// class's key domain.
func (c *boundCond) match(lrow, rrow int32) bool {
	switch c.key {
	case kkString:
		return c.lcol.Str[lrow] == c.rcol.Str[rrow]
	case kkInt:
		return c.lcol.Int[lrow] == c.rcol.Int[rrow]
	default:
		return numKeyBits(c.lcol, lrow) == numKeyBits(c.rcol, rrow)
	}
}

// joinRef is one distinct column reference the aggregation reads, in
// first-use order; its name is the exact reference text, which becomes the
// materialized column name planQuery resolves against.
type joinRef struct {
	name     string
	tab, col int
}

// joinPlan is a multi-table query resolved and validated against the
// catalog.
type joinPlan struct {
	q      *Query
	rels   []*relation.Relation // FROM order
	names  []string             // display name per FROM entry (alias or table)
	conds  []boundCond          // all ON conjuncts, clause order
	steps  [][]int              // conds evaluated when joining table i+1
	refs   []joinRef
	cyclic bool

	// Variable classes (connected components of equated columns), filled by
	// assignKeyKinds for the worst-case-optimal path: per-class occurrence
	// lists in first-appearance order and the class key domain.
	varOccs [][][2]int // per class: (table, column) occurrences
	varKind []joinKeyKind
}

var canonNaNBits = math.Float64bits(math.NaN())

// floatKeyBits is the float join-key domain: the value's bit pattern with
// every NaN payload collapsed, so NaN = NaN holds and -0 stays distinct
// from +0 — value identity, exactly as GROUP BY groups floats.
func floatKeyBits(v float64) uint64 {
	if v != v {
		return canonNaNBits
	}
	return math.Float64bits(v)
}

// numKeyBits renders a numeric column value into the float key domain; int
// columns convert exactly like Column.FloatAt.
func numKeyBits(c *relation.Column, row int32) uint64 {
	if c.Kind == relation.KindInt {
		return floatKeyBits(float64(c.Int[row]))
	}
	return floatKeyBits(c.Float[row])
}

// planJoin resolves a multi-table query: FROM relations through the
// catalog, ON conditions into normalized bound conjuncts with key domains,
// and every column reference the aggregation reads.
func planJoin(cat Catalog, q *Query) (*joinPlan, error) {
	jp := &joinPlan{q: q}
	addTable := func(tr TableRef) error {
		name := tr.Name()
		for _, n := range jp.names {
			if n == name {
				return fmt.Errorf("engine: duplicate table name or alias %q in FROM; alias one of the uses", name)
			}
		}
		rel, err := cat.Table(tr.Table)
		if err != nil {
			return err
		}
		jp.rels = append(jp.rels, rel)
		jp.names = append(jp.names, name)
		return nil
	}
	if err := addTable(q.From()); err != nil {
		return nil, err
	}
	for _, j := range q.Joins {
		if err := addTable(j.Table); err != nil {
			return nil, err
		}
	}

	jp.steps = make([][]int, len(q.Joins))
	for i, j := range q.Joins {
		newT := i + 1
		scope := newT + 1
		for _, on := range j.On {
			lt, lc, err := jp.resolveRef(on.Left, scope)
			if err != nil {
				return nil, err
			}
			rt, rc, err := jp.resolveRef(on.Right, scope)
			if err != nil {
				return nil, err
			}
			if lt == rt {
				return nil, fmt.Errorf("engine: ON condition %s = %s relates table %q to itself", on.Left, on.Right, jp.names[lt])
			}
			if lt == newT {
				lt, lc, rt, rc = rt, rc, lt, lc
			}
			if rt != newT {
				return nil, fmt.Errorf("engine: ON condition %s = %s for JOIN %q must reference the joined table", on.Left, on.Right, jp.names[newT])
			}
			jp.steps[i] = append(jp.steps[i], len(jp.conds))
			jp.conds = append(jp.conds, boundCond{
				lt: lt, lc: lc, rt: rt, rc: rc,
				lcol: jp.rels[lt].Column(lc), rcol: jp.rels[rt].Column(rc),
			})
		}
	}
	if err := jp.assignKeyKinds(); err != nil {
		return nil, err
	}
	jp.cyclic = jp.computeCyclic()
	if err := jp.collectRefs(); err != nil {
		return nil, err
	}
	return jp, nil
}

// resolveRef resolves a (possibly qualified) column reference against the
// first scope FROM entries.
func (jp *joinPlan) resolveRef(ref string, scope int) (int, int, error) {
	if i := strings.IndexByte(ref, '.'); i >= 0 {
		qual, bare := ref[:i], ref[i+1:]
		for t := 0; t < scope; t++ {
			if jp.names[t] == qual {
				c := jp.rels[t].ColumnIndex(bare)
				if c < 0 {
					return 0, 0, fmt.Errorf("engine: unknown column %q in table %q", bare, qual)
				}
				return t, c, nil
			}
		}
		return 0, 0, fmt.Errorf("engine: unknown table or alias %q in column reference %q (tables in scope: %s)",
			qual, ref, strings.Join(jp.names[:scope], ", "))
	}
	ft, fc := -1, -1
	var in []string
	for t := 0; t < scope; t++ {
		if c := jp.rels[t].ColumnIndex(ref); c >= 0 {
			in = append(in, jp.names[t])
			ft, fc = t, c
		}
	}
	switch len(in) {
	case 0:
		return 0, 0, fmt.Errorf("engine: unknown column %q (tables in scope: %s)", ref, strings.Join(jp.names[:scope], ", "))
	case 1:
		return ft, fc, nil
	default:
		return 0, 0, fmt.Errorf("engine: %w %q: present in tables %s; qualify it", ErrAmbiguousColumn, ref, strings.Join(in, ", "))
	}
}

// assignKeyKinds unions the (table, column) occurrences of all ON
// conditions into equivalence classes — equality is transitive, so every
// column in a class must share one key domain — and assigns each condition
// its class's domain: text, exact int64, or float bit identity when any
// member is a float column. Equating text with numeric columns is a plan
// error. The class structure is also recorded for the worst-case-optimal
// path, which enumerates classes as join variables.
func (jp *joinPlan) assignKeyKinds() error {
	id := make(map[[2]int]int)
	var occs [][2]int
	var kinds []relation.Kind
	var parent []int
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	occ := func(t, c int) int {
		k := [2]int{t, c}
		if i, ok := id[k]; ok {
			return i
		}
		i := len(parent)
		id[k] = i
		occs = append(occs, k)
		kinds = append(kinds, jp.rels[t].Column(c).Kind)
		parent = append(parent, i)
		return i
	}
	condOcc := make([][2]int, len(jp.conds))
	for i := range jp.conds {
		a := occ(jp.conds[i].lt, jp.conds[i].lc)
		b := occ(jp.conds[i].rt, jp.conds[i].rc)
		condOcc[i] = [2]int{a, b}
		parent[find(a)] = find(b)
	}
	n := len(parent)
	strAt := make([]int, n)
	numAt := make([]int, n)
	hasFloat := make([]bool, n)
	for i := range strAt {
		strAt[i], numAt[i] = -1, -1
	}
	for i := 0; i < n; i++ {
		r := find(i)
		if kinds[i] == relation.KindString {
			if strAt[r] < 0 {
				strAt[r] = i
			}
		} else {
			if numAt[r] < 0 {
				numAt[r] = i
			}
			if kinds[i] == relation.KindFloat {
				hasFloat[r] = true
			}
		}
	}
	colName := func(i int) string {
		return jp.names[occs[i][0]] + "." + jp.rels[occs[i][0]].Column(occs[i][1]).Name
	}
	classOf := make([]int, n) // root -> class id in first-cond order
	for i := range classOf {
		classOf[i] = -1
	}
	for ci := range jp.conds {
		r := find(condOcc[ci][0])
		if strAt[r] >= 0 && numAt[r] >= 0 {
			return fmt.Errorf("engine: ON equates text column %s with %s column %s",
				colName(strAt[r]), kinds[numAt[r]], colName(numAt[r]))
		}
		switch {
		case strAt[r] >= 0:
			jp.conds[ci].key = kkString
		case hasFloat[r]:
			jp.conds[ci].key = kkFloat
		default:
			jp.conds[ci].key = kkInt
		}
		if classOf[r] < 0 {
			classOf[r] = len(jp.varOccs)
			jp.varOccs = append(jp.varOccs, nil)
			jp.varKind = append(jp.varKind, jp.conds[ci].key)
		}
	}
	for i := 0; i < n; i++ {
		v := classOf[find(i)]
		jp.varOccs[v] = append(jp.varOccs[v], occs[i])
	}
	return nil
}

// computeCyclic reports whether the join graph — FROM entries as nodes,
// distinct condition pairs as edges — contains a cycle. Connectivity is
// guaranteed by construction (every ON conjunct relates the joined table to
// an earlier one), so cyclic means #distinct edges > #nodes - 1.
func (jp *joinPlan) computeCyclic() bool {
	parent := make([]int, len(jp.rels))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	seen := make(map[[2]int]bool, len(jp.conds))
	cyclic := false
	for _, c := range jp.conds {
		a, b := c.lt, c.rt
		if a > b {
			a, b = b, a
		}
		e := [2]int{a, b}
		if seen[e] {
			continue
		}
		seen[e] = true
		ra, rb := find(a), find(b)
		if ra == rb {
			cyclic = true
		} else {
			parent[ra] = rb
		}
	}
	return cyclic
}

// collectRefs resolves every column reference the aggregation reads, in
// first-use order, deduplicated by reference text.
func (jp *joinPlan) collectRefs() error {
	seen := make(map[string]bool)
	add := func(ref string) error {
		if ref == "" || ref == "*" || seen[ref] {
			return nil
		}
		t, c, err := jp.resolveRef(ref, len(jp.rels))
		if err != nil {
			return err
		}
		seen[ref] = true
		jp.refs = append(jp.refs, joinRef{name: ref, tab: t, col: c})
		return nil
	}
	for _, g := range jp.q.GroupBy {
		if err := add(g); err != nil {
			return err
		}
	}
	if err := add(jp.q.Agg.Arg); err != nil {
		return err
	}
	for _, w := range jp.q.Where {
		if err := add(w.Column); err != nil {
			return err
		}
	}
	for _, h := range jp.q.Having {
		if err := add(h.Agg.Arg); err != nil {
			return err
		}
	}
	return nil
}

func (jp *joinPlan) joinedName() string { return strings.Join(jp.names, "+") }

// schemaRel is the joined relation's shape with zero rows, used to validate
// the aggregation before paying for the join.
func (jp *joinPlan) schemaRel() (*relation.Relation, error) {
	cols := make([]relation.Column, len(jp.refs))
	for i, rf := range jp.refs {
		cols[i] = relation.Column{Name: rf.name, Kind: jp.rels[rf.tab].Column(rf.col).Kind}
	}
	return relation.FromColumns(jp.joinedName(), cols...)
}

// materialize gathers the referenced columns through the row-id tuples into
// the anonymous joined relation the aggregation runs over. Column names are
// the exact reference texts, so planQuery resolves them by direct lookup.
func (jp *joinPlan) materialize(tuples [][]int32) (*relation.Relation, error) {
	n := 0
	if len(tuples) > 0 {
		n = len(tuples[0])
	}
	cols := make([]relation.Column, len(jp.refs))
	for i, rf := range jp.refs {
		src := jp.rels[rf.tab].Column(rf.col)
		rows := tuples[rf.tab]
		switch src.Kind {
		case relation.KindString:
			vals := make([]string, n)
			for k, r := range rows {
				vals[k] = src.Str[r]
			}
			cols[i] = relation.StringCol(rf.name, vals)
		case relation.KindInt:
			vals := make([]int64, n)
			for k, r := range rows {
				vals[k] = src.Int[r]
			}
			cols[i] = relation.IntCol(rf.name, vals)
		default:
			vals := make([]float64, n)
			for k, r := range rows {
				vals[k] = src.Float[r]
			}
			cols[i] = relation.FloatCol(rf.name, vals)
		}
	}
	return relation.FromColumns(jp.joinedName(), cols...)
}

// executeJoin plans and runs a multi-table query end to end.
func executeJoin(cat Catalog, q *Query, cfg execConfig) (*Result, error) {
	ctx, jsp := obs.StartSpan(cfg.ctx, "join")
	if jsp != nil {
		cfg.ctx = ctx
	}
	defer jsp.End()

	plSt := cfg.prof.op("join.plan")
	t0 := profNow(plSt)
	_, psp := obs.StartSpan(cfg.ctx, "join.plan")
	jp, err := planJoin(cat, q)
	if err == nil {
		// Validate the aggregation against the join's output schema before
		// paying for the join: planQuery over the zero-row shape surfaces
		// type and ORDER BY errors up front, identically on every path.
		var srel *relation.Relation
		if srel, err = jp.schemaRel(); err == nil {
			_, err = planQuery(srel, q)
		}
	}
	psp.End()
	plSt.addWall(t0)
	if err != nil {
		return nil, err
	}
	var tuples [][]int32
	switch {
	case cfg.reference:
		tuples, err = jp.tuplesOp(cfg, "join.nestedloop", jp.nestedLoopTuples)
	case cfg.joins == joinGeneric || (cfg.joins == joinAuto && jp.cyclic):
		tuples, err = jp.tuplesOp(cfg, "join.leapfrog", jp.leapfrogTuples)
	default:
		tuples, err = jp.hashTuples(cfg)
	}
	if err != nil {
		return nil, err
	}
	mSt := cfg.prof.op("join.materialize")
	t1 := profNow(mSt)
	_, msp := obs.StartSpan(cfg.ctx, "join.materialize")
	jrel, err := jp.materialize(tuples)
	msp.End()
	mSt.addWall(t1)
	if err != nil {
		return nil, err
	}
	nTuples := 0
	if len(tuples) > 0 {
		nTuples = len(tuples[0])
	}
	mSt.addRows(int64(nTuples), int64(jrel.NumRows()))
	msp.SetInt("rows", int64(jrel.NumRows()))
	pSt := cfg.prof.op("plan")
	t2 := profNow(pSt)
	_, qsp := obs.StartSpan(cfg.ctx, "plan")
	p, err := planQuery(jrel, q)
	qsp.End()
	pSt.addWall(t2)
	if err != nil {
		return nil, err
	}
	if cfg.reference {
		return executeProfiledRef(p, cfg)
	}
	return executeVec(p, cfg)
}

// tuplesOp runs one whole-join tuple producer (the nested-loop reference
// or the worst-case-optimal leapfrog) under a span and profile operator.
func (jp *joinPlan) tuplesOp(cfg execConfig, name string, f func(context.Context) ([][]int32, error)) ([][]int32, error) {
	st := cfg.prof.op(name)
	t0 := profNow(st)
	_, sp := obs.StartSpan(cfg.ctx, name)
	tuples, err := f(cfg.ctx)
	sp.End()
	st.addWall(t0)
	if err != nil {
		return nil, err
	}
	n := 0
	if len(tuples) > 0 {
		n = len(tuples[0])
	}
	st.addRows(0, int64(n))
	sp.SetInt("tuples", int64(n))
	return tuples, nil
}

// ---- nested-loop reference ----

// nestedLoopTuples is the reference join: FROM-order nested loops over
// ascending row ids, evaluating every ON conjunct as a per-row comparison
// at the step that binds its later table. Its output order — lexicographic
// by the FROM-position row-id tuple — is the canonical order the optimized
// paths are proven bit-identical to.
func (jp *joinPlan) nestedLoopTuples(ctx context.Context) ([][]int32, error) {
	nt := len(jp.rels)
	tuples := make([][]int32, nt)
	cur := make([]int32, nt)
	var rec func(depth int) error
	rec = func(depth int) error {
		if depth == nt {
			for t := range cur {
				tuples[t] = append(tuples[t], cur[t])
			}
			return nil
		}
		var conds []int
		if depth >= 1 {
			conds = jp.steps[depth-1]
		}
		n := jp.rels[depth].NumRows()
		for r := 0; r < n; r++ {
			if depth == 0 && r%morselRows == 0 && ctx != nil && ctx.Err() != nil {
				return ctx.Err()
			}
			ok := true
			for _, ci := range conds {
				c := &jp.conds[ci]
				if !c.match(cur[c.lt], int32(r)) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			cur[depth] = int32(r)
			if err := rec(depth + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return tuples, nil
}

// ---- binary hash join ----

// valIndex maps join-key values to dense build-side codes, in one of the
// three key domains.
type valIndex struct {
	kind joinKeyKind
	s    map[string]int32
	i    map[int64]int32
	f    map[uint64]int32
}

// lookup returns the build code of the value at (c, row), or -1 when the
// value does not occur on the build side.
func (v *valIndex) lookup(c *relation.Column, row int32) int32 {
	switch v.kind {
	case kkString:
		if code, ok := v.s[c.Str[row]]; ok {
			return code
		}
	case kkInt:
		if code, ok := v.i[c.Int[row]]; ok {
			return code
		}
	default:
		if code, ok := v.f[numKeyBits(c, row)]; ok {
			return code
		}
	}
	return -1
}

// buildJoinCodes recodes one build-side column into a dense join-key
// domain. The column's native dictionary already is that domain for text
// and exact-int classes (and for float columns under float identity, since
// float dictionaries key on canonical-NaN bit patterns); only an int column
// joining under float equality needs a fresh dictionary, because distinct
// int64s beyond 2^53 can collapse to one float key.
func buildJoinCodes(rel *relation.Relation, col int, kind joinKeyKind) ([]int32, int, *valIndex) {
	c := rel.Column(col)
	if kind == kkFloat && c.Kind == relation.KindInt {
		vi := &valIndex{kind: kkFloat, f: make(map[uint64]int32, 64)}
		codes := make([]int32, len(c.Int))
		for i, v := range c.Int {
			b := floatKeyBits(float64(v))
			id, ok := vi.f[b]
			if !ok {
				id = int32(len(vi.f))
				vi.f[b] = id
			}
			codes[i] = id
		}
		return codes, len(vi.f), vi
	}
	d := rel.DictCodes(col)
	g := rel.CodeGroups(col)
	vi := &valIndex{kind: kind}
	switch kind {
	case kkString:
		vi.s = make(map[string]int32, d.Card)
		for code := 0; code < d.Card; code++ {
			vi.s[c.Str[g.Rep(int32(code))]] = int32(code)
		}
	case kkInt:
		vi.i = make(map[int64]int32, d.Card)
		for code := 0; code < d.Card; code++ {
			vi.i[c.Int[g.Rep(int32(code))]] = int32(code)
		}
	default:
		vi.f = make(map[uint64]int32, d.Card)
		for code := 0; code < d.Card; code++ {
			vi.f[floatKeyBits(c.Float[g.Rep(int32(code))])] = int32(code)
		}
	}
	return d.Codes, d.Card, vi
}

// hashTuples runs the left-deep binary plan: tuples over the first table
// start as its ascending row ids, and every JOIN step builds a hash table
// over the new table keyed by its ON columns' join codes — packed into one
// uint64 via pattern.NewCodec when the dictionary widths fit, concatenated
// little-endian bytes otherwise — and probes it with the current tuples,
// morsel-parallel with a shard-ordered merge. Probing tuples in order and
// storing build rows ascending keeps the output in canonical lexicographic
// order at every worker count.
func (jp *joinPlan) hashTuples(cfg execConfig) ([][]int32, error) {
	base := make([]int32, jp.rels[0].NumRows())
	for i := range base {
		base[i] = int32(i)
	}
	cur := [][]int32{base}
	for step := range jp.steps {
		next, err := jp.hashStep(cur, step, cfg)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

func (jp *joinPlan) hashStep(cur [][]int32, step int, cfg execConfig) ([][]int32, error) {
	newT := step + 1
	nProbe := len(cur[0])
	if nProbe == 0 {
		return make([][]int32, newT+1), nil
	}
	build := jp.rels[newT]
	condIdx := jp.steps[step]
	nc := len(condIdx)

	// Instrumentation handles for this step; nil (and alloc-free) when
	// neither profiling nor tracing is on.
	var bSt, prSt *opStats
	if cfg.prof != nil {
		bSt = cfg.prof.op("join.build(" + jp.names[newT] + ")")
		prSt = cfg.prof.op("join.probe(" + jp.names[newT] + ")")
	}
	stepParent := obs.FromContext(cfg.ctx)
	bsp := stepParent.Child("join.build")
	bsp.SetAttr("table", jp.names[newT])
	tBuild := profNow(bSt)

	// Build-side join codes and probe-side translations, one per condition:
	// trans[k] maps the probe column's native dictionary codes to build
	// codes (-1 = value absent from the build side), resolved once per
	// distinct probe value through one representative row.
	codes := make([][]int32, nc)
	cards := make([]int, nc)
	trans := make([][]int32, nc)
	probeCodes := make([][]int32, nc)
	probeTab := make([]int, nc)
	for k, ci := range condIdx {
		c := &jp.conds[ci]
		bCodes, bCard, vi := buildJoinCodes(build, c.rc, c.key)
		codes[k], cards[k] = bCodes, bCard
		pd := jp.rels[c.lt].DictCodes(c.lc)
		pg := jp.rels[c.lt].CodeGroups(c.lc)
		tr := make([]int32, pd.Card)
		for pc := 0; pc < pd.Card; pc++ {
			tr[pc] = vi.lookup(c.lcol, pg.Rep(int32(pc)))
		}
		trans[k] = tr
		probeCodes[k] = pd.Codes
		probeTab[k] = c.lt
	}

	// Key layout: packed when the per-condition code widths fit one word.
	var shifts []uint
	packed := false
	if !cfg.stringKeys {
		if codec, ok := pattern.NewCodec(cards); ok {
			packed = true
			shifts = make([]uint, nc)
			for k := range shifts {
				shifts[k] = uint(bits.TrailingZeros64(codec.Field(k)))
			}
		}
	}

	// Build table: rows scanned ascending, so every key's row list is
	// ascending and probe output stays in canonical order.
	nb := build.NumRows()
	var hmap map[uint64][]int32
	var smap map[string][]int32
	if packed {
		hmap = make(map[uint64][]int32, nb)
		for r := 0; r < nb; r++ {
			var key uint64
			for k := range codes {
				key |= uint64(uint32(codes[k][r])) << shifts[k]
			}
			hmap[key] = append(hmap[key], int32(r))
		}
	} else {
		smap = make(map[string][]int32, nb)
		var kb []byte
		for r := 0; r < nb; r++ {
			kb = kb[:0]
			for k := range codes {
				c := uint32(codes[k][r])
				kb = append(kb, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
			}
			smap[string(kb)] = append(smap[string(kb)], int32(r))
		}
	}

	bsp.SetInt("rows", int64(nb))
	bsp.End()
	bSt.observe(int64(nb), int64(nb), tBuild)
	psp := stepParent.Child("join.probe")
	psp.SetAttr("table", jp.names[newT])

	// probe translates one morsel of tuples and appends every match to dst.
	probe := func(lo, hi int, dst [][]int32) [][]int32 {
		var kb []byte
		for i := lo; i < hi; i++ {
			var rows []int32
			if packed {
				var key uint64
				miss := false
				for k := range trans {
					bc := trans[k][probeCodes[k][cur[probeTab[k]][i]]]
					if bc < 0 {
						miss = true
						break
					}
					key |= uint64(uint32(bc)) << shifts[k]
				}
				if miss {
					continue
				}
				rows = hmap[key]
			} else {
				kb = kb[:0]
				miss := false
				for k := range trans {
					bc := trans[k][probeCodes[k][cur[probeTab[k]][i]]]
					if bc < 0 {
						miss = true
						break
					}
					c := uint32(bc)
					kb = append(kb, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
				}
				if miss {
					continue
				}
				rows = smap[string(kb)]
			}
			for _, br := range rows {
				for t := 0; t < newT; t++ {
					dst[t] = append(dst[t], cur[t][i])
				}
				dst[newT] = append(dst[newT], br)
			}
		}
		return dst
	}

	nM := (nProbe + morselRows - 1) / morselRows
	workers := cfg.par
	if workers > nM {
		workers = nM
	}
	if workers <= 1 {
		dst := make([][]int32, newT+1)
		for m := 0; m < nM; m++ {
			if cfg.ctx != nil && cfg.ctx.Err() != nil {
				psp.End()
				return nil, cfg.ctx.Err()
			}
			lo := m * morselRows
			hi := min(lo+morselRows, nProbe)
			t0 := profNow(prSt)
			before := len(dst[newT])
			dst = probe(lo, hi, dst)
			prSt.observe(int64(hi-lo), int64(len(dst[newT])-before), t0)
		}
		psp.SetInt("tuples", int64(len(dst[newT])))
		psp.End()
		return dst, nil
	}

	// Morsel-parallel probe, mirroring vexec's runPar: workers pull probe
	// morsels off a shared counter, the merge consumes them strictly in
	// shard order — concatenation order, and therefore the tuple order, is
	// identical at every worker count.
	results := make([][][]int32, nM)
	done := make([]chan struct{}, nM)
	for i := range done {
		done[i] = make(chan struct{})
	}
	var next atomic.Int64
	var cancelled atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= nM {
					return
				}
				if cfg.ctx != nil && cfg.ctx.Err() != nil {
					cancelled.Store(true)
					close(done[i])
					continue
				}
				lo := i * morselRows
				hi := min(lo+morselRows, nProbe)
				t0 := profNow(prSt)
				out := probe(lo, hi, make([][]int32, newT+1))
				prSt.observe(int64(hi-lo), int64(len(out[newT])), t0)
				results[i] = out
				close(done[i])
			}
		}()
	}
	out := make([][]int32, newT+1)
	for i := 0; i < nM; i++ {
		<-done[i]
		if results[i] == nil {
			continue // claimed after cancellation
		}
		if !cancelled.Load() {
			for t := range out {
				out[t] = append(out[t], results[i][t]...)
			}
		}
	}
	wg.Wait() // probe counters and any enclosing trace stay complete
	psp.SetInt("tuples", int64(len(out[newT])))
	psp.End()
	if cancelled.Load() {
		return nil, cfg.ctx.Err()
	}
	return out, nil
}
