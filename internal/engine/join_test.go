package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"qagview/internal/relation"
)

// joinGrid runs sql through the nested-loop reference and through every
// optimized combination — worker counts 1, 2, 8 × packed/string keys ×
// auto/hash/generic join paths — asserting each reproduces the reference
// bit for bit.
func joinGrid(t *testing.T, cat Catalog, sql string) {
	t.Helper()
	want, err := ExecuteSQL(cat, sql, ExecReference())
	if err != nil {
		t.Fatalf("reference: %v (query %s)", err, sql)
	}
	for _, par := range []int{1, 2, 8} {
		for _, strKeys := range []bool{false, true} {
			for _, mode := range []string{"auto", "hash", "generic"} {
				opts := []ExecOption{ExecParallelism(par)}
				if strKeys {
					opts = append(opts, ExecStringKeys())
				}
				switch mode {
				case "hash":
					opts = append(opts, ExecHashJoin())
				case "generic":
					opts = append(opts, ExecGenericJoin())
				}
				got, err := ExecuteSQL(cat, sql, opts...)
				if err != nil {
					t.Fatalf("par=%d strKeys=%v mode=%s: %v (query %s)", par, strKeys, mode, err, sql)
				}
				label := fmt.Sprintf("par=%d strKeys=%v mode=%s query=%s", par, strKeys, mode, sql)
				assertBitIdentical(t, label, want, got)
				if !reflect.DeepEqual(want.Tables, got.Tables) {
					t.Fatalf("%s: Tables = %v, want %v", label, got.Tables, want.Tables)
				}
			}
		}
	}
}

// starCatalog is a small star schema engineered to hit the join edge cases:
// NUL bytes inside dimension values, NaN and ±0 on both sides of a float
// key, int keys past 2^53 (which collapse only under a float-domain class),
// and dangling foreign keys on both sides.
func starCatalog(nFacts int) catalog {
	rng := rand.New(rand.NewSource(7))
	nU, nI := 17, 9
	uids := make([]int64, nU)
	names := make([]string, nU)
	scores := make([]float64, nU)
	nvoc := []string{"ann", "an\x00n", "\x00", "", "bob", "cy"}
	for i := range uids {
		uids[i] = int64(i * 3) // sparse ids: some fact fks dangle
		names[i] = nvoc[rng.Intn(len(nvoc))]
		switch i % 5 {
		case 0:
			scores[i] = math.NaN()
		case 1:
			scores[i] = math.Copysign(0, -1)
		case 2:
			scores[i] = 0
		default:
			scores[i] = float64(i) / 4
		}
	}
	iids := make([]int64, nI)
	cats := make([]string, nI)
	for i := range iids {
		iids[i] = int64(i)
		cats[i] = fmt.Sprintf("c%d", i%4)
	}
	fuid := make([]int64, nFacts)
	fiid := make([]int64, nFacts)
	fkey := make([]float64, nFacts) // float fk, NaN/±0 included
	x := make([]float64, nFacts)
	big := make([]int64, nFacts)
	for i := 0; i < nFacts; i++ {
		fuid[i] = int64(rng.Intn(nU * 4)) // hits and misses
		fiid[i] = int64(rng.Intn(nI + 2))
		switch rng.Intn(8) {
		case 0:
			fkey[i] = math.NaN()
		case 1:
			fkey[i] = math.Copysign(0, -1)
		case 2:
			fkey[i] = 0
		default:
			fkey[i] = float64(rng.Intn(6))
		}
		switch rng.Intn(9) {
		case 0:
			x[i] = math.NaN()
		case 1:
			x[i] = math.Copysign(0, -1)
		default:
			x[i] = math.Floor(rng.Float64()*800) / 8
		}
		big[i] = (1 << 53) + int64(rng.Intn(4))
	}
	// fdim's float key carries NaN and ±0 so NaN=NaN matches and ±0 stay
	// distinct; bigdim's int key has 2^53-adjacent values that collapse
	// only when equated with a float column.
	fdimKey := []float64{math.NaN(), math.Copysign(0, -1), 0, 1, 2, 3, 4, 5}
	fdimTag := []string{"nan", "negzero", "zero", "one", "two", "three", "four", "five"}
	bigKey := []int64{1 << 53, (1 << 53) + 1, (1 << 53) + 2, (1 << 53) + 3}
	bigTag := []string{"b0", "b1", "b2", "b3"}
	bigF := []float64{float64(uint64(1) << 53), float64((uint64(1) << 53) + 2)}
	bigFTag := []string{"f0", "f2"}
	return catalog{
		"users": relation.MustFromColumns("users",
			relation.IntCol("uid", uids),
			relation.StringCol("name", names),
			relation.FloatCol("score", scores),
		),
		"items": relation.MustFromColumns("items",
			relation.IntCol("iid", iids),
			relation.StringCol("cat", cats),
		),
		"facts": relation.MustFromColumns("facts",
			relation.IntCol("uid", fuid),
			relation.IntCol("iid", fiid),
			relation.FloatCol("fkey", fkey),
			relation.FloatCol("x", x),
			relation.IntCol("big", big),
		),
		"fdim": relation.MustFromColumns("fdim",
			relation.FloatCol("fkey", fdimKey),
			relation.StringCol("tag", fdimTag),
		),
		"bigdim": relation.MustFromColumns("bigdim",
			relation.IntCol("bk", bigKey),
			relation.StringCol("btag", bigTag),
		),
		"bigfdim": relation.MustFromColumns("bigfdim",
			relation.FloatCol("bf", bigF),
			relation.StringCol("bftag", bigFTag),
		),
	}
}

// edgeCatalog is a random directed graph for cyclic (triangle) queries.
func edgeCatalog(nEdges, nNodes int) catalog {
	rng := rand.New(rand.NewSource(11))
	src := make([]int64, nEdges)
	dst := make([]int64, nEdges)
	w := make([]float64, nEdges)
	for i := 0; i < nEdges; i++ {
		src[i] = int64(rng.Intn(nNodes))
		dst[i] = int64(rng.Intn(nNodes))
		w[i] = math.Floor(rng.Float64()*100) / 4
	}
	return catalog{"edges": relation.MustFromColumns("edges",
		relation.IntCol("src", src),
		relation.IntCol("dst", dst),
		relation.FloatCol("w", w),
	)}
}

// TestJoinBitIdenticalStar is the core multi-table bit-identity grid over
// the synthetic star schema: binary and chain joins, qualified and
// unqualified references, value-identity float keys (NaN, ±0), int keys
// joining float columns past 2^53, WHERE/HAVING over joined columns.
func TestJoinBitIdenticalStar(t *testing.T) {
	cat := starCatalog(603)
	queries := []string{
		"select name, avg(x) as val from facts join users on facts.uid = users.uid group by name order by val desc",
		"select u.name, count(*) as c from facts f join users u on f.uid = u.uid group by u.name order by c desc",
		"select name, cat, sum(x) as val from facts f join users u on f.uid = u.uid join items i on f.iid = i.iid group by name, cat order by val desc",
		"select tag, count(*) as c from facts join fdim on facts.fkey = fdim.fkey group by tag order by c desc",
		"select tag, name, avg(x) as val from facts f join fdim d on f.fkey = d.fkey join users u on f.uid = u.uid group by tag, name order by val asc limit 10",
		"select btag, count(*) as c from facts join bigdim on facts.big = bigdim.bk group by btag order by c desc",
		"select bftag, count(*) as c from facts join bigfdim on facts.big = bigfdim.bf group by bftag order by c desc",
		"select btag, bftag, count(*) as c from facts join bigdim on facts.big = bigdim.bk join bigfdim on bigdim.bk = bigfdim.bf group by btag, bftag order by c desc",
		"select name, min(score) as val from facts f join users u on f.uid = u.uid where x >= 2.5 group by name order by val desc",
		"select name, avg(x) as val from facts f join users u on f.uid = u.uid group by name having count(*) > 3 order by val desc limit 4",
		"select u.score, count(*) as c from facts f join users u on f.uid = u.uid group by u.score order by c desc",
		"select cat, max(w.x) as val from facts w join items i on w.iid = i.iid where cat <> 'c2' group by cat order by val desc",
	}
	for _, sql := range queries {
		joinGrid(t, cat, sql)
	}
}

// TestJoinBitIdenticalCyclic pins the worst-case-optimal path against the
// reference and the forced binary plan on cyclic queries (triangles, with
// and without extra conditions), where the auto rule selects leapfrog.
func TestJoinBitIdenticalCyclic(t *testing.T) {
	cat := edgeCatalog(220, 24)
	queries := []string{
		"select e1.src, count(*) as c from edges e1 join edges e2 on e1.dst = e2.src join edges e3 on e2.dst = e3.src and e3.dst = e1.src group by e1.src order by c desc",
		"select e1.src, e2.src, count(*) as c from edges e1 join edges e2 on e1.dst = e2.src join edges e3 on e2.dst = e3.src and e3.dst = e1.src group by e1.src, e2.src order by c desc limit 15",
		"select e1.src, sum(e3.w) as val from edges e1 join edges e2 on e1.dst = e2.src join edges e3 on e2.dst = e3.src and e3.dst = e1.src group by e1.src order by val desc",
		// Acyclic self-join chains take the hash path by default; the grid
		// also forces them through leapfrog.
		"select e1.src, count(*) as c from edges e1 join edges e2 on e1.dst = e2.src group by e1.src order by c desc",
		"select e1.src, avg(e2.w) as val from edges e1 join edges e2 on e1.dst = e2.src where e1.w > 10 group by e1.src order by val desc",
	}
	for _, sql := range queries {
		joinGrid(t, cat, sql)
	}
	if res, err := ExecuteSQL(cat,
		"select e1.src, count(*) as c from edges e1 join edges e2 on e1.dst = e2.src join edges e3 on e2.dst = e3.src and e3.dst = e1.src group by e1.src order by c desc"); err != nil {
		t.Fatal(err)
	} else if !reflect.DeepEqual(res.Tables, []string{"edges"}) {
		t.Fatalf("self-join Tables = %v, want [edges]", res.Tables)
	}
}

// TestJoinEmptySides pins the degenerate shapes: an empty probe side, an
// empty build side, and a join with no matches all produce the same empty
// result on every path.
func TestJoinEmptySides(t *testing.T) {
	empty := relation.MustFromColumns("e",
		relation.IntCol("k", nil), relation.FloatCol("v", nil))
	full := relation.MustFromColumns("f",
		relation.IntCol("k", []int64{1, 2, 3}), relation.FloatCol("w", []float64{1, 2, 3}))
	disjoint := relation.MustFromColumns("d",
		relation.IntCol("k", []int64{7, 8}), relation.FloatCol("u", []float64{7, 8}))
	cat := catalog{"e": empty, "f": full, "d": disjoint}
	for _, sql := range []string{
		"select f.k, avg(w) as val from f join e on f.k = e.k group by f.k order by val desc",
		"select e.k, avg(v) as val from e join f on e.k = f.k group by e.k order by val desc",
		"select f.k, avg(w) as val from f join d on f.k = d.k group by f.k order by val desc",
	} {
		joinGrid(t, cat, sql)
	}
}

// TestJoinQualifiedSingleTable checks that qualifiers naming the FROM table
// or its alias resolve on single-table queries too.
func TestJoinQualifiedSingleTable(t *testing.T) {
	cat := ratings(t)
	for _, sql := range []string{
		"select ratings.gender, avg(ratings.rating) as val from ratings group by ratings.gender order by val desc",
		"select r.gender, avg(r.rating) as val from ratings r where r.adventure = 1 group by r.gender order by val desc",
	} {
		res, err := ExecuteSQL(cat, sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		if res.N() == 0 {
			t.Fatalf("%s: empty result", sql)
		}
		ref, err := ExecuteSQL(cat, sql, ExecReference())
		if err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, sql, ref, res)
	}
	// A qualifier that names no table in scope stays an error.
	if _, err := ExecuteSQL(cat, "select z.gender, count(*) as c from ratings group by z.gender"); err == nil {
		t.Fatal("wrong qualifier on single-table query should fail")
	}
}

// TestJoinPlanErrors pins the join-specific error surface: ambiguity,
// resolution failures, invalid ON shapes, duplicate FROM names.
func TestJoinPlanErrors(t *testing.T) {
	cat := starCatalog(50)
	cases := []struct {
		sql  string
		want string
	}{
		{"select uid, count(*) as c from facts join users on facts.uid = users.uid group by uid",
			"ambiguous column"},
		{"select name, count(*) as c from facts join users on facts.uid = users.nope group by name",
			`unknown column "nope" in table "users"`},
		{"select name, count(*) as c from facts join users on zz.uid = users.uid group by name",
			`unknown table or alias "zz"`},
		{"select nope, count(*) as c from facts join users on facts.uid = users.uid group by nope",
			"tables in scope: facts, users"},
		{"select name, count(*) as c from facts join users on users.uid = users.uid group by name",
			"relates table \"users\" to itself"},
		{"select name, count(*) as c from facts f join items f on f.uid = f.iid group by name",
			"duplicate table name or alias"},
		{"select name, count(*) as c from facts join users on facts.uid = users.name group by name",
			"equates text column"},
		{"select cat, count(*) as c from facts f join users u on f.uid = u.uid join items i on u.uid = f.uid group by cat",
			`must reference the joined table`},
	}
	for _, c := range cases {
		_, err := ExecuteSQL(cat, c.sql)
		if err == nil {
			t.Fatalf("%s: expected error containing %q", c.sql, c.want)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: error %q does not contain %q", c.sql, err, c.want)
		}
	}
	// The ambiguity error is a distinct, testable sentinel.
	_, err := ExecuteSQL(cat, "select uid, count(*) as c from facts join users on facts.uid = users.uid group by uid")
	if !errors.Is(err, ErrAmbiguousColumn) {
		t.Fatalf("err = %v, want errors.Is ErrAmbiguousColumn", err)
	}
	// Reference and vectorized paths fail identically.
	for _, c := range cases {
		_, errRef := ExecuteSQL(cat, c.sql, ExecReference())
		_, errVec := ExecuteSQL(cat, c.sql, ExecParallelism(4))
		if fmt.Sprint(errRef) != fmt.Sprint(errVec) {
			t.Fatalf("%s: reference error %q != vectorized error %q", c.sql, errRef, errVec)
		}
	}
}

// TestJoinParse pins the parsed structure of join clauses.
func TestJoinParse(t *testing.T) {
	q, err := Parse("select name, avg(x) as val from facts f inner join users as u on f.uid = u.uid and f.k = u.k group by name")
	if err != nil {
		t.Fatal(err)
	}
	if q.Table != "facts" || q.Alias != "f" {
		t.Fatalf("From = %q/%q", q.Table, q.Alias)
	}
	if len(q.Joins) != 1 || q.Joins[0].Table != (TableRef{Table: "users", Alias: "u"}) {
		t.Fatalf("Joins = %+v", q.Joins)
	}
	if on := q.Joins[0].On; len(on) != 2 || on[0] != (JoinCond{"f.uid", "u.uid"}) || on[1] != (JoinCond{"f.k", "u.k"}) {
		t.Fatalf("On = %+v", q.Joins[0].On)
	}
	if got := q.Tables(); !reflect.DeepEqual(got, []string{"facts", "users"}) {
		t.Fatalf("Tables = %v", got)
	}
	for _, bad := range []string{
		"select a, count(*) as c from t left join u on t.a = u.a group by a",
		"select a, count(*) as c from t join u on t.a > u.a group by a",
		"select a, count(*) as c from t join u on t.a = 3 group by a",
		"select a, count(*) as c from t join u group by a",
		"select a.b.c, count(*) as c from t group by a.b.c",
		"select a, count(*) as c from t.x group by a",
		"select a, count(*) as c from t as join group by a",
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) should fail", bad)
		}
	}
}

// TestJoinContextCancel checks cancellation is observed inside every join
// algorithm.
func TestJoinContextCancel(t *testing.T) {
	cat := edgeCatalog(9000, 40)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sql := "select e1.src, count(*) as c from edges e1 join edges e2 on e1.dst = e2.src join edges e3 on e2.dst = e3.src and e3.dst = e1.src group by e1.src order by c desc"
	for _, opts := range [][]ExecOption{
		{ExecReference(), ExecContext(ctx)},
		{ExecParallelism(8), ExecContext(ctx), ExecHashJoin()},
		{ExecParallelism(1), ExecContext(ctx), ExecHashJoin()},
		{ExecParallelism(1), ExecContext(ctx)}, // leapfrog
	} {
		if _, err := ExecuteSQL(cat, sql, opts...); err != context.Canceled {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	}
}
