package engine

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokComma
	tokLParen
	tokRParen
	tokStar
	tokOp // = != <> < <= > >=
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of query"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer splits a query string into tokens. Identifiers are case-preserved;
// keyword matching is done case-insensitively by the parser.
type lexer struct {
	src string
	pos int
}

func (l *lexer) errf(pos int, format string, args ...any) error {
	return fmt.Errorf("engine: parse error at offset %d: %s", pos, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == ',':
		l.pos++
		return token{tokComma, ",", start}, nil
	case c == '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case c == ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case c == '*':
		l.pos++
		return token{tokStar, "*", start}, nil
	case c == '=':
		l.pos++
		return token{tokOp, "=", start}, nil
	case c == '!':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{tokOp, "!=", start}, nil
		}
		return token{}, l.errf(start, "unexpected '!'")
	case c == '<':
		if l.pos+1 < len(l.src) && (l.src[l.pos+1] == '=' || l.src[l.pos+1] == '>') {
			l.pos += 2
			return token{tokOp, l.src[start : start+2], start}, nil
		}
		l.pos++
		return token{tokOp, "<", start}, nil
	case c == '>':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{tokOp, ">=", start}, nil
		}
		l.pos++
		return token{tokOp, ">", start}, nil
	case c == '\'' || c == '"':
		quote := c
		l.pos++
		var sb strings.Builder
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == quote {
				// Doubled quote escapes itself, SQL style.
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == quote {
					sb.WriteByte(quote)
					l.pos += 2
					continue
				}
				l.pos++
				return token{tokString, sb.String(), start}, nil
			}
			sb.WriteByte(ch)
			l.pos++
		}
		return token{}, l.errf(start, "unterminated string literal")
	case c >= '0' && c <= '9' || c == '-' || c == '.':
		l.pos++
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch >= '0' && ch <= '9' || ch == '.' || ch == 'e' || ch == 'E' ||
				((ch == '+' || ch == '-') && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E')) {
				l.pos++
				continue
			}
			break
		}
		return token{tokNumber, l.src[start:l.pos], start}, nil
	case isIdentStart(c):
		l.pos++
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		// A '.' followed by an identifier continues a qualified name
		// (alias.column); the parser rejects names with too many parts.
		for l.pos+1 < len(l.src) && l.src[l.pos] == '.' && isIdentStart(l.src[l.pos+1]) {
			l.pos += 2
			for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
				l.pos++
			}
		}
		return token{tokIdent, l.src[start:l.pos], start}, nil
	default:
		return token{}, l.errf(start, "unexpected character %q", string(c))
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

func lexAll(src string) ([]token, error) {
	l := &lexer{src: src}
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
