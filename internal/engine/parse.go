package engine

import (
	"fmt"
	"strconv"
	"strings"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

// Parse parses a supported aggregate query. See the package comment for the
// grammar.
func Parse(sql string) (*Query, error) {
	toks, err := lexAll(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, p.errf("unexpected trailing input %s", t)
	}
	return q, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("engine: parse error near offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

// keyword consumes an identifier equal (case-insensitively) to kw.
func (p *parser) keyword(kw string) error {
	t := p.peek()
	if t.kind != tokIdent || !strings.EqualFold(t.text, kw) {
		return p.errf("expected %s, got %s", strings.ToUpper(kw), t)
	}
	p.advance()
	return nil
}

func (p *parser) isKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier, got %s", t)
	}
	p.advance()
	return t.text, nil
}

// bareIdent consumes an identifier that may not be qualified (table names,
// aliases).
func (p *parser) bareIdent(what string) (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errf("expected %s, got %s", what, t)
	}
	if strings.Contains(t.text, ".") {
		return "", p.errf("%s %s cannot be qualified", what, t)
	}
	p.advance()
	return t.text, nil
}

// colRef consumes a column reference: a bare name or alias.column.
func (p *parser) colRef() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errf("expected column reference, got %s", t)
	}
	if strings.Count(t.text, ".") > 1 {
		return "", p.errf("column reference %s has too many qualifiers", t)
	}
	p.advance()
	return t.text, nil
}

func (p *parser) number() (float64, error) {
	t := p.peek()
	if t.kind != tokNumber {
		return 0, p.errf("expected number, got %s", t)
	}
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, p.errf("bad number %q: %v", t.text, err)
	}
	p.advance()
	return v, nil
}

var keywords = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "by": true,
	"having": true, "order": true, "limit": true, "and": true, "as": true,
	"asc": true, "desc": true,
	"join": true, "on": true, "inner": true, "left": true, "right": true,
	"full": true, "outer": true, "cross": true, "using": true,
}

var aggNames = map[string]AggFunc{
	"avg": AggAvg, "sum": AggSum, "count": AggCount, "min": AggMin, "max": AggMax,
}

func (p *parser) query() (*Query, error) {
	q := &Query{Limit: -1}
	if err := p.keyword("select"); err != nil {
		return nil, err
	}
	sawAgg := false
	for {
		t := p.peek()
		if t.kind != tokIdent {
			return nil, p.errf("expected select item, got %s", t)
		}
		name := t.text
		if fn, isAgg := aggNames[strings.ToLower(name)]; isAgg && p.toks[p.pos+1].kind == tokLParen {
			agg, err := p.aggExpr(fn)
			if err != nil {
				return nil, err
			}
			if sawAgg {
				return nil, p.errf("only one aggregate is supported in SELECT")
			}
			sawAgg = true
			q.Agg = agg
		} else {
			if keywords[strings.ToLower(name)] {
				return nil, p.errf("expected select item, got keyword %s", t)
			}
			if strings.Count(name, ".") > 1 {
				return nil, p.errf("column reference %s has too many qualifiers", t)
			}
			p.advance()
			q.GroupBy = append(q.GroupBy, name)
		}
		if p.peek().kind == tokComma {
			p.advance()
			continue
		}
		break
	}
	if !sawAgg {
		return nil, p.errf("SELECT must include exactly one aggregate expression")
	}
	if err := p.keyword("from"); err != nil {
		return nil, err
	}
	from, err := p.tableRef()
	if err != nil {
		return nil, err
	}
	q.Table, q.Alias = from.Table, from.Alias
	for {
		if p.isKeyword("inner") {
			p.advance()
			if err := p.keyword("join"); err != nil {
				return nil, err
			}
		} else if p.isKeyword("join") {
			p.advance()
		} else if p.isKeyword("left") || p.isKeyword("right") || p.isKeyword("full") ||
			p.isKeyword("outer") || p.isKeyword("cross") {
			return nil, p.errf("only [INNER] JOIN is supported, got %s", p.peek())
		} else {
			break
		}
		j, err := p.join()
		if err != nil {
			return nil, err
		}
		q.Joins = append(q.Joins, j)
	}

	if p.isKeyword("where") {
		p.advance()
		for {
			pred, err := p.predicate()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, pred)
			if p.isKeyword("and") {
				p.advance()
				continue
			}
			break
		}
	}

	if err := p.keyword("group"); err != nil {
		return nil, err
	}
	if err := p.keyword("by"); err != nil {
		return nil, err
	}
	var groupCols []string
	for {
		col, err := p.colRef()
		if err != nil {
			return nil, err
		}
		groupCols = append(groupCols, col)
		if p.peek().kind == tokComma {
			p.advance()
			continue
		}
		break
	}
	if err := sameColumns(q.GroupBy, groupCols); err != nil {
		return nil, err
	}

	if p.isKeyword("having") {
		p.advance()
		for {
			h, err := p.having()
			if err != nil {
				return nil, err
			}
			q.Having = append(q.Having, h)
			if p.isKeyword("and") {
				p.advance()
				continue
			}
			break
		}
	}

	if p.isKeyword("order") {
		p.advance()
		if err := p.keyword("by"); err != nil {
			return nil, err
		}
		col, err := p.colRef()
		if err != nil {
			return nil, err
		}
		q.OrderBy = col
		q.Desc = false
		if p.isKeyword("desc") {
			p.advance()
			q.Desc = true
		} else if p.isKeyword("asc") {
			p.advance()
		}
	}

	if p.isKeyword("limit") {
		p.advance()
		n, err := p.number()
		if err != nil {
			return nil, err
		}
		if n < 0 || n != float64(int(n)) {
			return nil, p.errf("LIMIT must be a non-negative integer")
		}
		q.Limit = int(n)
	}
	return q, nil
}

// tableRef parses `table [AS] [alias]`. A bare identifier after the table
// name is an alias unless it is a reserved word.
func (p *parser) tableRef() (TableRef, error) {
	name, err := p.bareIdent("table name")
	if err != nil {
		return TableRef{}, err
	}
	tr := TableRef{Table: name}
	if p.isKeyword("as") {
		p.advance()
		t := p.peek()
		if t.kind == tokIdent && keywords[strings.ToLower(t.text)] {
			return TableRef{}, p.errf("table alias cannot be the reserved word %s", t)
		}
		a, err := p.bareIdent("table alias")
		if err != nil {
			return TableRef{}, err
		}
		tr.Alias = a
	} else if t := p.peek(); t.kind == tokIdent && !keywords[strings.ToLower(t.text)] &&
		!strings.Contains(t.text, ".") {
		p.advance()
		tr.Alias = t.text
	}
	return tr, nil
}

// join parses `table [AS alias] ON left = right [AND left = right ...]`.
func (p *parser) join() (Join, error) {
	tr, err := p.tableRef()
	if err != nil {
		return Join{}, err
	}
	if err := p.keyword("on"); err != nil {
		return Join{}, err
	}
	j := Join{Table: tr}
	for {
		left, err := p.colRef()
		if err != nil {
			return Join{}, err
		}
		if t := p.peek(); t.kind != tokOp || t.text != "=" {
			return Join{}, p.errf("JOIN ON supports only column = column equality, got %s", t)
		}
		p.advance()
		right, err := p.colRef()
		if err != nil {
			return Join{}, err
		}
		j.On = append(j.On, JoinCond{Left: left, Right: right})
		if p.isKeyword("and") {
			p.advance()
			continue
		}
		break
	}
	return j, nil
}

// sameColumns verifies SELECT group columns and GROUP BY columns agree as
// sets, as the supported query template requires.
func sameColumns(sel, grp []string) error {
	if len(sel) != len(grp) {
		return fmt.Errorf("engine: SELECT lists %d group columns but GROUP BY lists %d", len(sel), len(grp))
	}
	in := make(map[string]bool, len(grp))
	for _, g := range grp {
		in[g] = true
	}
	for _, s := range sel {
		if !in[s] {
			return fmt.Errorf("engine: SELECT column %q is not in GROUP BY", s)
		}
	}
	return nil
}

func (p *parser) aggExpr(fn AggFunc) (AggExpr, error) {
	p.advance() // function name
	if p.peek().kind != tokLParen {
		return AggExpr{}, p.errf("expected ( after %s, got %s", fn, p.peek())
	}
	p.advance() // '('
	var arg string
	t := p.peek()
	switch t.kind {
	case tokStar:
		if fn != AggCount {
			return AggExpr{}, p.errf("%s(*) is not supported; only count(*)", fn)
		}
		arg = "*"
		p.advance()
	case tokIdent:
		if strings.Count(t.text, ".") > 1 {
			return AggExpr{}, p.errf("column reference %s has too many qualifiers", t)
		}
		arg = t.text
		p.advance()
	default:
		return AggExpr{}, p.errf("expected column or * in aggregate, got %s", t)
	}
	if p.peek().kind != tokRParen {
		return AggExpr{}, p.errf("expected ), got %s", p.peek())
	}
	p.advance()
	alias := fmt.Sprintf("%s(%s)", fn, arg)
	if p.isKeyword("as") {
		p.advance()
		a, err := p.bareIdent("alias")
		if err != nil {
			return AggExpr{}, err
		}
		alias = a
	}
	return AggExpr{Fn: fn, Arg: arg, Alias: alias}, nil
}

func (p *parser) predicate() (Predicate, error) {
	col, err := p.colRef()
	if err != nil {
		return Predicate{}, err
	}
	op, err := p.cmpOp()
	if err != nil {
		return Predicate{}, err
	}
	lit, err := p.literal()
	if err != nil {
		return Predicate{}, err
	}
	return Predicate{Column: col, Op: op, Lit: lit}, nil
}

func (p *parser) cmpOp() (CmpOp, error) {
	t := p.peek()
	if t.kind != tokOp {
		return 0, p.errf("expected comparison operator, got %s", t)
	}
	p.advance()
	switch t.text {
	case "=":
		return OpEq, nil
	case "!=", "<>":
		return OpNe, nil
	case "<":
		return OpLt, nil
	case "<=":
		return OpLe, nil
	case ">":
		return OpGt, nil
	case ">=":
		return OpGe, nil
	}
	return 0, p.errf("unknown operator %q", t.text)
}

func (p *parser) literal() (Literal, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return Literal{}, p.errf("bad number %q: %v", t.text, err)
		}
		p.advance()
		return Literal{IsNum: true, Num: v}, nil
	case tokString:
		p.advance()
		return Literal{Str: t.text}, nil
	default:
		return Literal{}, p.errf("expected literal, got %s", t)
	}
}

func (p *parser) having() (Having, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return Having{}, p.errf("expected aggregate in HAVING, got %s", t)
	}
	fn, ok := aggNames[strings.ToLower(t.text)]
	if !ok {
		return Having{}, p.errf("expected aggregate function in HAVING, got %s", t)
	}
	agg, err := p.aggExpr(fn)
	if err != nil {
		return Having{}, err
	}
	op, err := p.cmpOp()
	if err != nil {
		return Having{}, err
	}
	n, err := p.number()
	if err != nil {
		return Having{}, err
	}
	return Having{Agg: agg, Op: op, Num: n}, nil
}
