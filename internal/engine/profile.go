package engine

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// OpProfile is one operator's execution evidence: rows in and out, batch
// (morsel) count, and wall time. Wall time is cumulative across workers
// for parallel operators, so it can exceed the query's elapsed time —
// the same convention as EXPLAIN ANALYZE's per-worker totals.
type OpProfile struct {
	Op        string `json:"op"`
	RowsIn    int64  `json:"rows_in"`
	RowsOut   int64  `json:"rows_out"`
	Batches   int64  `json:"batches,omitempty"`
	WallNanos int64  `json:"wall_ns"`
}

// Profile is the per-operator execution profile of one query, in plan
// order. It is attached to Result when ExecProfile is set; profiles
// report, they never influence output (equivalence suites run with and
// without them).
type Profile []OpProfile

// String renders the profile as an EXPLAIN ANALYZE-style table.
func (p Profile) String() string {
	if len(p) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %12s %12s %8s %12s\n", "operator", "rows_in", "rows_out", "batches", "wall")
	for _, op := range p {
		fmt.Fprintf(&b, "%-22s %12d %12d %8d %12s\n",
			op.Op, op.RowsIn, op.RowsOut, op.Batches, time.Duration(op.WallNanos))
	}
	return b.String()
}

// opStats accumulates one operator's counters. Workers update them
// concurrently through atomics; every method is nil-safe so unprofiled
// runs thread nil pointers and pay a single branch.
type opStats struct {
	rowsIn  atomic.Int64
	rowsOut atomic.Int64
	batches atomic.Int64
	wall    atomic.Int64
}

// observe folds one batch into the operator's counters. start is the
// batch start time captured by the caller (only when profiling: callers
// guard the time.Now with a nil check so the disabled path never reads
// the clock).
func (o *opStats) observe(rowsIn, rowsOut int64, start time.Time) {
	if o == nil {
		return
	}
	o.rowsIn.Add(rowsIn)
	o.rowsOut.Add(rowsOut)
	o.batches.Add(1)
	o.wall.Add(int64(time.Since(start)))
}

// addWall adds elapsed wall time without a batch (single-shot operators).
func (o *opStats) addWall(start time.Time) {
	if o == nil {
		return
	}
	o.wall.Add(int64(time.Since(start)))
}

func (o *opStats) addRows(in, out int64) {
	if o == nil {
		return
	}
	o.rowsIn.Add(in)
	o.rowsOut.Add(out)
}

// execProf collects the ordered operator list for one Execute call.
// Operators are registered single-threaded (from the driving goroutine,
// in plan order); workers only touch the returned *opStats.
type execProf struct {
	mu  sync.Mutex
	ops []profOp
}

type profOp struct {
	name string
	st   *opStats
}

func newExecProf() *execProf { return &execProf{} }

// op registers (or finds) an operator by name and returns its counters.
// Returns nil on a nil profiler, which every opStats method absorbs.
func (p *execProf) op(name string) *opStats {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.ops {
		if p.ops[i].name == name {
			return p.ops[i].st
		}
	}
	st := &opStats{}
	p.ops = append(p.ops, profOp{name: name, st: st})
	return st
}

// snapshot renders the profile in registration (plan) order.
func (p *execProf) snapshot() Profile {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(Profile, len(p.ops))
	for i, op := range p.ops {
		out[i] = OpProfile{
			Op:        op.name,
			RowsIn:    op.st.rowsIn.Load(),
			RowsOut:   op.st.rowsOut.Load(),
			Batches:   op.st.batches.Load(),
			WallNanos: op.st.wall.Load(),
		}
	}
	return out
}

// profNow reads the clock only when profiling is on: the disabled path
// must not pay for time.Now.
func profNow(o *opStats) time.Time {
	if o == nil {
		return time.Time{}
	}
	return time.Now()
}
