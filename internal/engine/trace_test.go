package engine

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
	"testing"

	"qagview/internal/obs"
)

func tracedCtx(t *testing.T) (context.Context, *obs.Tracer, *obs.Trace) {
	t.Helper()
	tr := obs.NewTracer(8, slog.New(slog.NewTextHandler(nullWriter{}, nil)))
	tr.SetEnabled(true)
	ctx, trace := tr.StartTrace(context.Background(), "test", false)
	if trace == nil {
		t.Fatal("tracer did not start a trace")
	}
	return ctx, tr, trace
}

type nullWriter struct{}

func (nullWriter) Write(p []byte) (int, error) { return len(p), nil }

// findSpan walks the snapshot tree for the first span with the name.
func findSpan(s obs.SpanSnapshot, name string) (obs.SpanSnapshot, bool) {
	if s.Name == name {
		return s, true
	}
	for _, c := range s.Children {
		if got, ok := findSpan(c, name); ok {
			return got, true
		}
	}
	return obs.SpanSnapshot{}, false
}

// TestSpanNestingParallel pins the satellite requirement: under
// ExecParallelism > 1 over a multi-morsel relation, the span tree nests
// engine.execute -> vexec -> scan -> worker-N, with merge and finalize
// as vexec children, and the per-worker morsel counts cover every morsel.
func TestSpanNestingParallel(t *testing.T) {
	cat := syntheticCatalog(3*morselRows + 123)
	ctx, tr, trace := tracedCtx(t)
	res, err := ExecuteSQL(cat, "select a, sum(x) as v from t group by a order by v desc",
		ExecParallelism(4), ExecContext(ctx))
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if res.N() == 0 {
		t.Fatal("empty result")
	}
	tr.Finish(trace)
	snap, ok := tr.Get(trace.ID)
	if !ok {
		t.Fatal("trace not retained")
	}
	exec, ok := findSpan(snap.Root, "engine.execute")
	if !ok {
		t.Fatalf("no engine.execute span in %+v", snap.Root)
	}
	vex, ok := findSpan(exec, "vexec")
	if !ok {
		t.Fatal("no vexec span under engine.execute")
	}
	scan, ok := findSpan(vex, "scan")
	if !ok {
		t.Fatal("no scan span under vexec")
	}
	if _, ok := findSpan(vex, "merge"); !ok {
		t.Fatal("no merge span under vexec")
	}
	if _, ok := findSpan(vex, "finalize"); !ok {
		t.Fatal("no finalize span under vexec")
	}
	// 4 morsels at par 4 -> 4 workers, each a child of scan; their claimed
	// morsel counts must sum to the morsel count.
	if len(scan.Children) != 4 {
		t.Fatalf("scan has %d worker spans, want 4: %+v", len(scan.Children), scan.Children)
	}
	var claimed int64
	for i, w := range scan.Children {
		if w.Name != fmt.Sprintf("worker-%d", i) {
			t.Fatalf("worker span %d named %q", i, w.Name)
		}
		for _, a := range w.Attrs {
			if a.Key == "morsels" {
				var n int64
				fmt.Sscan(a.Val, &n)
				claimed += n
			}
		}
	}
	if claimed != 4 {
		t.Fatalf("workers processed %d morsels total, want 4", claimed)
	}
	for _, w := range scan.Children {
		if w.Open {
			t.Fatalf("worker span %s still open after Execute returned", w.Name)
		}
	}
}

// TestJoinSpans: a traced join query produces join.build/join.probe spans
// (per step) plus the aggregation pipeline spans.
func TestJoinSpans(t *testing.T) {
	cat := starCatalog(3 * morselRows)
	ctx, tr, trace := tracedCtx(t)
	res, err := ExecuteSQL(cat,
		"select u.name, avg(f.x) as av from facts f join users u on f.uid = u.uid group by u.name order by av desc",
		ExecParallelism(4), ExecContext(ctx))
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if res.N() == 0 {
		t.Fatal("empty result")
	}
	tr.Finish(trace)
	snap, _ := tr.Get(trace.ID)
	for _, name := range []string{"engine.execute", "join", "join.plan", "join.build", "join.probe", "join.materialize", "vexec", "scan", "merge", "finalize"} {
		if _, ok := findSpan(snap.Root, name); !ok {
			t.Fatalf("missing span %q in traced join query", name)
		}
	}
}

// TestEquivalenceUnderTracing re-runs the bit-identity grid with tracing
// and profiling on: instrumentation must not perturb determinism.
func TestEquivalenceUnderTracing(t *testing.T) {
	cat := syntheticCatalog(2*morselRows + 77)
	queries := []string{
		"select a, b, sum(x) as v from t group by a, b order by v desc",
		"select a, count(*) as c from t where g = 1 group by a order by c desc limit 3",
	}
	for _, sql := range queries {
		want, err := ExecuteSQL(cat, sql, ExecReference())
		if err != nil {
			t.Fatalf("reference: %v", err)
		}
		for _, par := range []int{1, 4} {
			ctx, tr, trace := tracedCtx(t)
			got, err := ExecuteSQL(cat, sql, ExecParallelism(par), ExecContext(ctx), ExecProfile())
			tr.Finish(trace)
			if err != nil {
				t.Fatalf("traced par=%d: %v", par, err)
			}
			assertBitIdentical(t, fmt.Sprintf("traced par=%d query=%s", par, sql), want, got)
			if len(got.Profile) == 0 {
				t.Fatal("ExecProfile produced no profile")
			}
		}
	}
}

// TestExecProfileContents checks the operator profile reports coherent
// rows/batches for a multi-morsel aggregation and for a join.
func TestExecProfileContents(t *testing.T) {
	rows := 3*morselRows + 123
	cat := syntheticCatalog(rows)
	res, err := ExecuteSQL(cat, "select a, sum(x) as v from t group by a order by v desc",
		ExecParallelism(2), ExecProfile())
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	prof := map[string]OpProfile{}
	for _, op := range res.Profile {
		prof[op.Op] = op
	}
	scan, ok := prof["scan"]
	if !ok {
		t.Fatalf("no scan operator in %v", res.Profile)
	}
	if scan.RowsIn != int64(rows) {
		t.Fatalf("scan rows_in %d, want %d", scan.RowsIn, rows)
	}
	if scan.Batches != 4 {
		t.Fatalf("scan batches %d, want 4 morsels", scan.Batches)
	}
	merge, ok := prof["merge"]
	if !ok || merge.RowsIn != scan.RowsOut {
		t.Fatalf("merge rows_in %d, want scan rows_out %d", merge.RowsIn, scan.RowsOut)
	}
	fin := prof["finalize"]
	if fin.RowsOut != int64(res.N()) {
		t.Fatalf("finalize rows_out %d, want %d", fin.RowsOut, res.N())
	}
	// Rendered form is the Go-API EXPLAIN ANALYZE.
	s := res.Profile.String()
	for _, want := range []string{"operator", "scan", "merge", "finalize"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Profile.String() missing %q:\n%s", want, s)
		}
	}

	// Join profile: per-step build/probe operators appear in plan order.
	jres, err := ExecuteSQL(starCatalog(2000),
		"select cat, count(*) as c from facts join items on facts.iid = items.iid group by cat order by c desc",
		ExecParallelism(2), ExecProfile())
	if err != nil {
		t.Fatalf("join execute: %v", err)
	}
	var names []string
	for _, op := range jres.Profile {
		names = append(names, op.Op)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"join.plan", "join.build(items)", "join.probe(items)", "join.materialize", "plan", "scan", "merge", "finalize"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("join profile missing %q: %v", want, names)
		}
	}
}

// TestProfileDoesNotLeakWithoutOption: no ExecProfile, no profile.
func TestProfileDoesNotLeakWithoutOption(t *testing.T) {
	cat := syntheticCatalog(500)
	res, err := ExecuteSQL(cat, "select a, count(*) as c from t group by a order by c desc")
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile != nil {
		t.Fatalf("unexpected profile: %v", res.Profile)
	}
}
