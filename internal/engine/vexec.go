package engine

import (
	"math"
	"math/bits"
	"strconv"
	"sync"
	"sync/atomic"

	"qagview/internal/obs"
	"qagview/internal/pattern"
	"qagview/internal/relation"
)

// This file implements the vectorized, morsel-parallel executor behind
// Execute. The relation is cut into fixed-size morsels of consecutive rows;
// workers pull morsels from a shared counter and run the per-row work that
// parallelizes — predicate kernels producing selection vectors, dictionary
// codes packed into uint64 group keys, per-morsel grouping into a local
// open-addressing table, and gathers of the aggregate columns — while one
// deterministic merge consumes the morsels in shard order and folds them
// into the global group table.
//
// The merge is what makes the output bit-identical to the row-at-a-time
// reference (executeRef) at every worker count: morsels are contiguous
// ascending row ranges merged in order, so groups appear in the reference's
// first-seen order, and all float accumulation (sums, HAVING aggregates)
// happens inside the merge, row by row in global row order — workers never
// add two floats. The merge's hash-probe cost is one global-table probe per
// morsel-local group (not per row); its per-row cost is array arithmetic.
//
// Morsel buffers and the global table are pooled and reset across calls, so
// steady-state execution (session refreshes re-running their query on every
// data-generation bump) allocates only the output.

// morselRows is the shard size: big enough to amortize per-morsel overhead,
// small enough that a morsel's selection and key vectors stay cache-resident.
const morselRows = 4096

// fibHash is 2^64/phi, the multiplicative-hash constant of
// lattice.packedMap; packed group keys have the same low-entropy shape as
// packed patterns (few fields vary), which this spreads well.
const fibHash = 0x9E3779B97F4A7C15

// vecPlan extends the resolved plan with the vectorized execution state:
// per-group-column dictionary codes and the packed-key layout.
type vecPlan struct {
	*execPlan
	codes  [][]int32 // dictionary codes per group column, full-table
	shifts []uint    // bit offset of each group column's packed field
	packed bool      // false: string-key fallback (widths exceed 64 bits)
}

// newVecPlan derives the key representation: per-attribute field widths from
// the dictionary cardinalities via pattern.NewCodec (the width-derivation
// trick of the packed-pattern fast path), falling back to string keys when
// the summed widths overflow one word.
func newVecPlan(p *execPlan, forceStringKeys bool) *vecPlan {
	m := len(p.groupCols)
	vp := &vecPlan{execPlan: p, codes: make([][]int32, m)}
	cards := make([]int, m)
	for j, c := range p.groupCols {
		d := p.rel.DictCodes(p.rel.ColumnIndex(c.Name))
		vp.codes[j] = d.Codes
		cards[j] = d.Card
	}
	if forceStringKeys {
		return vp
	}
	codec, ok := pattern.NewCodec(cards)
	if !ok {
		return vp
	}
	vp.packed = true
	vp.shifts = make([]uint, m)
	for j := range vp.shifts {
		vp.shifts[j] = uint(bits.TrailingZeros64(codec.Field(j)))
	}
	return vp
}

// ---- predicate kernels ----

// filterMorsel computes the selection vector of rows in [lo, hi) passing
// every WHERE conjunct: the first kernel scans the range, later kernels
// refine the selection in place. No per-row closure calls, no per-row error
// checks — column kinds were validated at plan time.
func (vp *vecPlan) filterMorsel(lo, hi int32, sel []int32) []int32 {
	if len(vp.preds) == 0 {
		for r := lo; r < hi; r++ {
			sel = append(sel, r)
		}
		return sel
	}
	sel = filterRange(vp.preds[0], lo, hi, sel)
	for _, pb := range vp.preds[1:] {
		if len(sel) == 0 {
			break
		}
		sel = filterSel(pb, sel)
	}
	return sel
}

func filterRange(p predBind, lo, hi int32, out []int32) []int32 {
	switch p.col.Kind {
	case relation.KindInt:
		return filterNumRange(p.col.Int, p.op, p.lit.Num, lo, hi, out)
	case relation.KindFloat:
		return filterNumRange(p.col.Float, p.op, p.lit.Num, lo, hi, out)
	default:
		return filterStrRange(p.col.Str, p.op == OpEq, p.lit.Str, lo, hi, out)
	}
}

func filterSel(p predBind, sel []int32) []int32 {
	switch p.col.Kind {
	case relation.KindInt:
		return filterNumSel(p.col.Int, p.op, p.lit.Num, sel)
	case relation.KindFloat:
		return filterNumSel(p.col.Float, p.op, p.lit.Num, sel)
	default:
		return filterStrSel(p.col.Str, p.op == OpEq, p.lit.Str, sel)
	}
}

// filterNumRange appends the rows of [lo, hi) whose value compares true to
// out. Ints convert to float64 exactly like Column.FloatAt, so comparison
// semantics match the reference executor bit for bit.
func filterNumRange[T int64 | float64](vals []T, op CmpOp, lit float64, lo, hi int32, out []int32) []int32 {
	switch op {
	case OpEq:
		for r := lo; r < hi; r++ {
			if float64(vals[r]) == lit {
				out = append(out, r)
			}
		}
	case OpNe:
		for r := lo; r < hi; r++ {
			if float64(vals[r]) != lit {
				out = append(out, r)
			}
		}
	case OpLt:
		for r := lo; r < hi; r++ {
			if float64(vals[r]) < lit {
				out = append(out, r)
			}
		}
	case OpLe:
		for r := lo; r < hi; r++ {
			if float64(vals[r]) <= lit {
				out = append(out, r)
			}
		}
	case OpGt:
		for r := lo; r < hi; r++ {
			if float64(vals[r]) > lit {
				out = append(out, r)
			}
		}
	case OpGe:
		for r := lo; r < hi; r++ {
			if float64(vals[r]) >= lit {
				out = append(out, r)
			}
		}
	}
	return out
}

func filterNumSel[T int64 | float64](vals []T, op CmpOp, lit float64, sel []int32) []int32 {
	k := 0
	switch op {
	case OpEq:
		for _, r := range sel {
			if float64(vals[r]) == lit {
				sel[k] = r
				k++
			}
		}
	case OpNe:
		for _, r := range sel {
			if float64(vals[r]) != lit {
				sel[k] = r
				k++
			}
		}
	case OpLt:
		for _, r := range sel {
			if float64(vals[r]) < lit {
				sel[k] = r
				k++
			}
		}
	case OpLe:
		for _, r := range sel {
			if float64(vals[r]) <= lit {
				sel[k] = r
				k++
			}
		}
	case OpGt:
		for _, r := range sel {
			if float64(vals[r]) > lit {
				sel[k] = r
				k++
			}
		}
	case OpGe:
		for _, r := range sel {
			if float64(vals[r]) >= lit {
				sel[k] = r
				k++
			}
		}
	}
	return sel[:k]
}

func filterStrRange(vals []string, eq bool, lit string, lo, hi int32, out []int32) []int32 {
	if eq {
		for r := lo; r < hi; r++ {
			if vals[r] == lit {
				out = append(out, r)
			}
		}
	} else {
		for r := lo; r < hi; r++ {
			if vals[r] != lit {
				out = append(out, r)
			}
		}
	}
	return out
}

func filterStrSel(vals []string, eq bool, lit string, sel []int32) []int32 {
	k := 0
	if eq {
		for _, r := range sel {
			if vals[r] == lit {
				sel[k] = r
				k++
			}
		}
	} else {
		for _, r := range sel {
			if vals[r] != lit {
				sel[k] = r
				k++
			}
		}
	}
	return sel[:k]
}

// ---- morsel-local state ----

// localTableSize is the next power of two above morselRows: a morsel has at
// most morselRows distinct groups, keeping the local table's load below 50%.
const localTableSize = 8192

const localShift = 64 - 13 // 13 = log2(localTableSize)

// localTable maps packed keys to morsel-local group ids: fixed-size open
// addressing with epoch-stamped slots, so reset between morsels is one
// counter bump instead of a 128 KiB clear.
type localTable struct {
	entries []localEntry
	epoch   uint32
}

type localEntry struct {
	key   uint64
	id    int32
	epoch uint32
}

func (t *localTable) reset() {
	if t.entries == nil {
		t.entries = make([]localEntry, localTableSize)
	}
	t.epoch++
	if t.epoch == 0 { // wrapped: stale epochs could alias, start clean
		clear(t.entries)
		t.epoch = 1
	}
}

func (t *localTable) getOrPut(key uint64, id int32) (int32, bool) {
	for i := (key * fibHash) >> localShift; ; i = (i + 1) & (localTableSize - 1) {
		e := &t.entries[i]
		if e.epoch != t.epoch {
			e.key, e.id, e.epoch = key, id, t.epoch
			return id, true
		}
		if e.key == key {
			return e.id, false
		}
	}
}

// morselBuf holds one morsel's vectorized state, pooled across morsels and
// Execute calls.
type morselBuf struct {
	sel      []int32   // selected row indexes, ascending
	keys     []uint64  // packed group key per selected row
	localOf  []int32   // morsel-local group id per selected row
	aggVals  []float64 // gathered aggregate-column values per selected row
	havVals  [][]float64
	firstRow []int32 // first selected row per local group

	groupKeys  []uint64 // local groups in first-seen order (packed path)
	groupSKeys []string // local groups in first-seen order (fallback path)

	table  localTable
	stable map[string]int32 // fallback-path local table
	kbuf   []byte           // fallback-path key scratch
}

var bufPool = sync.Pool{New: func() any { return new(morselBuf) }}

// reset truncates the first-seen bookkeeping; the per-row vectors are fully
// overwritten by the next processMorsel and keep their capacity.
func (b *morselBuf) reset() {
	b.sel = b.sel[:0]
	b.groupKeys = b.groupKeys[:0]
	b.groupSKeys = b.groupSKeys[:0]
	b.firstRow = b.firstRow[:0]
}

func sizedI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func sizedU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

func sizedF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// processMorsel runs the parallelizable pipeline stages on rows [lo, hi):
// filter, key, local-group, gather. It touches only b and read-only plan
// state, so any number of workers can run it concurrently.
func (vp *vecPlan) processMorsel(b *morselBuf, lo, hi int32) {
	b.reset()
	b.sel = vp.filterMorsel(lo, hi, b.sel)
	n := len(b.sel)
	b.localOf = sizedI32(b.localOf, n)

	if vp.packed {
		// Key build, column at a time: or-in each attribute's dictionary
		// code at its field offset. Codes never collide with the codec's
		// Star sentinel, so packing is injective.
		b.keys = sizedU64(b.keys, n)
		for j, codes := range vp.codes {
			sh := vp.shifts[j]
			if j == 0 {
				for i, r := range b.sel {
					b.keys[i] = uint64(uint32(codes[r])) << sh
				}
			} else {
				for i, r := range b.sel {
					b.keys[i] |= uint64(uint32(codes[r])) << sh
				}
			}
		}
		b.table.reset()
		for i, key := range b.keys {
			id, isNew := b.table.getOrPut(key, int32(len(b.groupKeys)))
			if isNew {
				b.groupKeys = append(b.groupKeys, key)
				b.firstRow = append(b.firstRow, b.sel[i])
			}
			b.localOf[i] = id
		}
	} else {
		// Fallback: the codes of each group column as 4 little-endian bytes,
		// concatenated — injective like the packed key, just not one word.
		if b.stable == nil {
			b.stable = make(map[string]int32, 64)
		} else {
			clear(b.stable)
		}
		for i, r := range b.sel {
			kb := b.kbuf[:0]
			for _, codes := range vp.codes {
				c := uint32(codes[r])
				kb = append(kb, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
			}
			b.kbuf = kb
			id, ok := b.stable[string(kb)]
			if !ok {
				id = int32(len(b.groupSKeys))
				key := string(kb)
				b.stable[key] = id
				b.groupSKeys = append(b.groupSKeys, key)
				b.firstRow = append(b.firstRow, r)
			}
			b.localOf[i] = id
		}
	}

	if vp.aggCol != nil {
		b.aggVals = sizedF64(b.aggVals, n)
		gather(vp.aggCol, b.sel, b.aggVals)
	}
	for cap(b.havVals) < len(vp.havingCols) {
		b.havVals = append(b.havVals[:cap(b.havVals)], nil)
	}
	b.havVals = b.havVals[:len(vp.havingCols)]
	for h, c := range vp.havingCols {
		if c == nil {
			b.havVals[h] = nil // count(*): no values to gather
			continue
		}
		b.havVals[h] = sizedF64(b.havVals[h], n)
		gather(c, b.sel, b.havVals[h])
	}
}

// gather copies the numeric column's values at the selected rows into out;
// int columns convert exactly like Column.FloatAt. Kinds were validated at
// plan time, so no per-row error path.
func gather(c *relation.Column, sel []int32, out []float64) {
	if c.Kind == relation.KindInt {
		for i, r := range sel {
			out[i] = float64(c.Int[r])
		}
	} else {
		for i, r := range sel {
			out[i] = c.Float[r]
		}
	}
}

// ---- global group table and deterministic merge ----

// groupTable is the merge-side aggregation state: an open-addressing
// Fibonacci-hashed table (modeled on lattice.packedMap, epoch-stamped for
// O(1) reuse) from packed keys to dense group ids, plus columnar per-group
// accumulators. Single-writer: only the merge goroutine touches it.
type groupTable struct {
	entries []gtEntry
	shift   uint
	epoch   uint32
	n       int // live entries, for the load-factor check

	smap map[string]int32 // fallback-path key table

	firstRow []int32
	cnt      []int64
	sum      []float64
	min      []float64
	max      []float64
	hcnt     [][]int64
	hsum     [][]float64
	hmin     [][]float64
	hmax     [][]float64

	remap []int32 // per-morsel local-to-global group id scratch
}

type gtEntry struct {
	key   uint64
	id    int32
	epoch uint32
}

var tablePool = sync.Pool{New: func() any { return new(groupTable) }}

// reset truncates the per-group accumulators, keeping capacity for reuse.
func (t *groupTable) reset() {
	t.firstRow = t.firstRow[:0]
	t.cnt = t.cnt[:0]
	t.sum = t.sum[:0]
	t.min = t.min[:0]
	t.max = t.max[:0]
	for i := range t.hcnt {
		t.hcnt[i] = t.hcnt[i][:0]
		t.hsum[i] = t.hsum[i][:0]
		t.hmin[i] = t.hmin[i][:0]
		t.hmax[i] = t.hmax[i][:0]
	}
	t.remap = t.remap[:0]
	t.n = 0
}

// resetFor readies a pooled table for a query with nh HAVING conjuncts.
func (t *groupTable) resetFor(nh int) {
	t.reset()
	if t.entries == nil {
		t.entries = make([]gtEntry, 1024)
		t.shift = 64 - 10
	}
	t.epoch++
	if t.epoch == 0 {
		clear(t.entries)
		t.epoch = 1
	}
	if t.smap == nil {
		t.smap = make(map[string]int32, 64)
	} else {
		clear(t.smap)
	}
	for cap(t.hcnt) < nh {
		t.hcnt = append(t.hcnt[:cap(t.hcnt)], nil)
		t.hsum = append(t.hsum[:cap(t.hsum)], nil)
		t.hmin = append(t.hmin[:cap(t.hmin)], nil)
		t.hmax = append(t.hmax[:cap(t.hmax)], nil)
	}
	t.hcnt = t.hcnt[:nh]
	t.hsum = t.hsum[:nh]
	t.hmin = t.hmin[:nh]
	t.hmax = t.hmax[:nh]
	for i := 0; i < nh; i++ {
		t.hcnt[i] = t.hcnt[i][:0]
		t.hsum[i] = t.hsum[i][:0]
		t.hmin[i] = t.hmin[i][:0]
		t.hmax[i] = t.hmax[i][:0]
	}
}

func (t *groupTable) getOrPut(key uint64, id int32) (int32, bool) {
	if (t.n+1)*4 >= len(t.entries)*3 {
		t.grow()
	}
	mask := uint64(len(t.entries) - 1)
	for i := (key * fibHash) >> t.shift; ; i = (i + 1) & mask {
		e := &t.entries[i]
		if e.epoch != t.epoch {
			e.key, e.id, e.epoch = key, id, t.epoch
			t.n++
			return id, true
		}
		if e.key == key {
			return e.id, false
		}
	}
}

func (t *groupTable) grow() {
	old := t.entries
	t.entries = make([]gtEntry, 2*len(old))
	t.shift--
	mask := uint64(len(t.entries) - 1)
	for _, e := range old {
		if e.epoch != t.epoch {
			continue
		}
		j := (e.key * fibHash) >> t.shift
		for t.entries[j].epoch == t.epoch {
			j = (j + 1) & mask
		}
		t.entries[j] = e
	}
}

// addGroup appends a fresh group, initialized exactly like the reference's
// aggState (min/max seeded with infinities).
func (t *groupTable) addGroup(firstRow int32) {
	t.firstRow = append(t.firstRow, firstRow)
	t.cnt = append(t.cnt, 0)
	t.sum = append(t.sum, 0)
	t.min = append(t.min, math.Inf(1))
	t.max = append(t.max, math.Inf(-1))
	for i := range t.hcnt {
		t.hcnt[i] = append(t.hcnt[i], 0)
		t.hsum[i] = append(t.hsum[i], 0)
		t.hmin[i] = append(t.hmin[i], math.Inf(1))
		t.hmax[i] = append(t.hmax[i], math.Inf(-1))
	}
}

// mergeMorsel folds one processed morsel into the global state. Called in
// morsel order, it reproduces the reference executor's row order exactly:
// global group ids are assigned in first-seen order and every float
// accumulates row by row.
func (t *groupTable) mergeMorsel(vp *vecPlan, b *morselBuf) {
	t.remap = t.remap[:0]
	if vp.packed {
		for li, key := range b.groupKeys {
			gid, isNew := t.getOrPut(key, int32(len(t.firstRow)))
			if isNew {
				t.addGroup(b.firstRow[li])
			}
			t.remap = append(t.remap, gid)
		}
	} else {
		for li, key := range b.groupSKeys {
			gid, ok := t.smap[key]
			if !ok {
				gid = int32(len(t.firstRow))
				t.smap[key] = gid
				t.addGroup(b.firstRow[li])
			}
			t.remap = append(t.remap, gid)
		}
	}
	hasAgg := vp.aggCol != nil
	nh := len(vp.havingCols)
	for i := range b.localOf {
		g := t.remap[b.localOf[i]]
		t.cnt[g]++
		if hasAgg {
			v := b.aggVals[i]
			t.sum[g] += v
			if v < t.min[g] {
				t.min[g] = v
			}
			if v > t.max[g] {
				t.max[g] = v
			}
		}
		for h := 0; h < nh; h++ {
			t.hcnt[h][g]++
			if hv := b.havVals[h]; hv != nil {
				v := hv[i]
				t.hsum[h][g] += v
				if v < t.hmin[h][g] {
					t.hmin[h][g] = v
				}
				if v > t.hmax[h][g] {
					t.hmax[h][g] = v
				}
			}
		}
	}
}

// finalizeResult renders the merged groups: HAVING filter, group rows from
// each group's first matching row, then the shared ORDER BY / LIMIT pass.
func (t *groupTable) finalizeResult(vp *vecPlan) *Result {
	q := vp.q
	res := &Result{GroupBy: append([]string(nil), q.GroupBy...), ValName: q.Agg.Alias, Table: q.Table, Tables: q.Tables()}
	for g := range t.firstRow {
		keep := true
		for h, hv := range q.Having {
			v := finalize(hv.Agg.Fn, t.hsum[h][g], t.hcnt[h][g], t.hmin[h][g], t.hmax[h][g])
			if !cmpFloat(v, hv.Op, hv.Num) {
				keep = false
				break
			}
		}
		if !keep {
			continue
		}
		row := make([]string, len(vp.groupCols))
		fr := int(t.firstRow[g])
		for j, c := range vp.groupCols {
			row[j] = c.StringAt(fr)
		}
		res.Rows = append(res.Rows, row)
		res.Vals = append(res.Vals, finalize(q.Agg.Fn, t.sum[g], t.cnt[g], t.min[g], t.max[g]))
	}
	orderAndLimit(q, res)
	return res
}

// ---- driver ----

// executeVec runs the vectorized pipeline, checking the pooled group table
// out and back in around the actual run so the table is returned exactly
// once on every path (success or cancellation).
func executeVec(p *execPlan, cfg execConfig) (*Result, error) {
	vp := newVecPlan(p, cfg.stringKeys)
	t := tablePool.Get().(*groupTable)
	t.resetFor(len(vp.havingCols))
	res, err := vp.run(t, cfg)
	t.reset()
	tablePool.Put(t)
	return res, err
}

// run drives the pipeline into t: sequential below two morsels or workers,
// morsel-parallel otherwise, with the merge always consuming morsels in
// shard order. Tracing and profiling observe the same structure on both
// paths — a "scan" operator (morsel filter/key/gather, per-worker child
// spans when parallel), a "merge" operator, and a "finalize" operator —
// and never change claim order or accumulation order.
func (vp *vecPlan) run(t *groupTable, cfg execConfig) (*Result, error) {
	n := vp.rel.NumRows()
	nMorsels := (n + morselRows - 1) / morselRows
	workers := cfg.par
	if workers > nMorsels {
		workers = nMorsels
	}
	ctx, vsp := obs.StartSpan(cfg.ctx, "vexec")
	if vsp != nil {
		vsp.SetInt("rows", int64(n))
		vsp.SetInt("morsels", int64(nMorsels))
		vsp.SetInt("workers", int64(workers))
		cfg.ctx = ctx
	}
	scan := cfg.prof.op("scan")
	merge := cfg.prof.op("merge")
	var err error
	if workers <= 1 {
		err = vp.runSeq(t, cfg, n, nMorsels, scan, merge)
	} else {
		err = vp.runPar(t, cfg, n, nMorsels, workers, scan, merge)
	}
	if err != nil {
		vsp.End()
		return nil, err
	}
	fin := cfg.prof.op("finalize")
	t0 := profNow(fin)
	_, fsp := obs.StartSpan(cfg.ctx, "finalize")
	res := t.finalizeResult(vp)
	fsp.End()
	fin.addWall(t0)
	fin.addRows(int64(len(t.firstRow)), int64(len(res.Rows)))
	if fsp != nil {
		fsp.SetInt("groups", int64(len(t.firstRow)))
		fsp.SetInt("rows_out", int64(len(res.Rows)))
	}
	vsp.End()
	return res, nil
}

// runSeq processes and merges every morsel on the calling goroutine,
// observing ctx between morsels. The scan and merge spans are siblings
// that both cover the loop: sequential execution interleaves the two
// stages, and the profile's wall split is the accurate per-stage view.
func (vp *vecPlan) runSeq(t *groupTable, cfg execConfig, n, nMorsels int, scan, merge *opStats) error {
	ctx := cfg.ctx
	parent := obs.FromContext(ctx)
	scanSp := parent.Child("scan")
	mergeSp := parent.Child("merge")
	b := bufPool.Get().(*morselBuf)
	var err error
	var selected int64
	for m := 0; m < nMorsels; m++ {
		if ctx != nil && ctx.Err() != nil {
			err = ctx.Err()
			break
		}
		lo, hi := morselBounds(m, n)
		t0 := profNow(scan)
		vp.processMorsel(b, lo, hi)
		scan.observe(int64(hi-lo), int64(len(b.sel)), t0)
		selected += int64(len(b.sel))
		t1 := profNow(merge)
		before := len(t.firstRow)
		t.mergeMorsel(vp, b)
		merge.observe(int64(len(b.sel)), int64(len(t.firstRow)-before), t1)
	}
	b.reset()
	bufPool.Put(b)
	scanSp.SetInt("rows_selected", selected)
	mergeSp.SetInt("groups", int64(len(t.firstRow)))
	scanSp.End()
	mergeSp.End()
	return err
}

// runPar fans morsels out to a worker pool via a shared atomic counter
// (idle workers steal whatever morsel is next), while the calling goroutine
// merges completed morsels strictly in shard order — that order, plus the
// merge owning all float accumulation, is what makes the output identical
// to the sequential path. The per-morsel done channels give the merge its
// happens-before edge on results[i].
func (vp *vecPlan) runPar(t *groupTable, cfg execConfig, n, nMorsels, workers int, scan, merge *opStats) error {
	ctx := cfg.ctx
	parent := obs.FromContext(ctx)
	scanSp := parent.Child("scan")
	results := make([]*morselBuf, nMorsels)
	done := make([]chan struct{}, nMorsels)
	for i := range done {
		done[i] = make(chan struct{})
	}
	var next atomic.Int64
	var cancelled atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		// Worker spans are created here, in launch order, so the span
		// tree's child order is deterministic; the goroutines only fill
		// in timings and morsel counts.
		var wsp *obs.Span
		if scanSp != nil {
			wsp = scanSp.Child("worker-" + strconv.Itoa(w))
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			var claimed int64
			for {
				i := int(next.Add(1)) - 1
				if i >= nMorsels {
					wsp.SetInt("morsels", claimed)
					wsp.End()
					return
				}
				// Observe cancellation between morsels: a cancelled
				// execution stops claiming work, and every claimed
				// morsel is still signalled so the merge never blocks.
				if ctx != nil && ctx.Err() != nil {
					cancelled.Store(true)
					close(done[i])
					continue
				}
				claimed++
				wb := bufPool.Get().(*morselBuf)
				lo, hi := morselBounds(i, n)
				t0 := profNow(scan)
				vp.processMorsel(wb, lo, hi)
				scan.observe(int64(hi-lo), int64(len(wb.sel)), t0)
				results[i] = wb
				close(done[i])
			}
		}()
	}
	mergeSp := parent.Child("merge")
	for i := 0; i < nMorsels; i++ {
		<-done[i]
		mb := results[i]
		if mb == nil {
			continue // claimed after cancellation
		}
		if !cancelled.Load() {
			t1 := profNow(merge)
			before := len(t.firstRow)
			t.mergeMorsel(vp, mb)
			merge.observe(int64(len(mb.sel)), int64(len(t.firstRow)-before), t1)
		}
		mb.reset()
		bufPool.Put(mb)
	}
	// Join the workers: they exit as soon as the morsel counter runs dry,
	// and waiting keeps worker spans and profile counters complete before
	// the result (and any enclosing trace) is finalized.
	wg.Wait()
	mergeSp.SetInt("groups", int64(len(t.firstRow)))
	mergeSp.End()
	scanSp.End()
	if cancelled.Load() {
		return ctx.Err()
	}
	return nil
}

// morselBounds returns morsel m's row range over a relation of n rows.
func morselBounds(m, n int) (int32, int32) {
	lo := m * morselRows
	hi := lo + morselRows
	if hi > n {
		hi = n
	}
	return int32(lo), int32(hi)
}
