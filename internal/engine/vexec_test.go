package engine

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"qagview/internal/movielens"
	"qagview/internal/relation"
	"qagview/internal/tpcds"
)

// assertBitIdentical fails unless got is bit-for-bit the same result as want:
// rendered rows compare by string equality, values by their float64 bit
// patterns (so +0 vs -0 or differently-ordered float sums are caught).
func assertBitIdentical(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if !reflect.DeepEqual(want.GroupBy, got.GroupBy) || want.ValName != got.ValName || want.Table != got.Table {
		t.Fatalf("%s: header mismatch: want (%v, %q, %q), got (%v, %q, %q)",
			label, want.GroupBy, want.ValName, want.Table, got.GroupBy, got.ValName, got.Table)
	}
	if !reflect.DeepEqual(want.Rows, got.Rows) {
		t.Fatalf("%s: rows mismatch:\nwant %v\ngot  %v", label, want.Rows, got.Rows)
	}
	if len(want.Vals) != len(got.Vals) {
		t.Fatalf("%s: %d vals, want %d", label, len(got.Vals), len(want.Vals))
	}
	for i := range want.Vals {
		if math.Float64bits(want.Vals[i]) != math.Float64bits(got.Vals[i]) {
			t.Fatalf("%s: val[%d] = %v (bits %x), want %v (bits %x)",
				label, i, got.Vals[i], math.Float64bits(got.Vals[i]),
				want.Vals[i], math.Float64bits(want.Vals[i]))
		}
	}
}

// execGrid runs sql through the reference executor and through the
// vectorized one at worker counts 1, 2, and 8, on both key paths, asserting
// every combination reproduces the reference bit for bit.
func execGrid(t *testing.T, cat Catalog, sql string) {
	t.Helper()
	want, err := ExecuteSQL(cat, sql, ExecReference())
	if err != nil {
		t.Fatalf("reference: %v (query %s)", err, sql)
	}
	for _, par := range []int{1, 2, 8} {
		for _, strKeys := range []bool{false, true} {
			opts := []ExecOption{ExecParallelism(par)}
			if strKeys {
				opts = append(opts, ExecStringKeys())
			}
			got, err := ExecuteSQL(cat, sql, opts...)
			if err != nil {
				t.Fatalf("vectorized par=%d strKeys=%v: %v (query %s)", par, strKeys, err, sql)
			}
			assertBitIdentical(t, fmt.Sprintf("par=%d strKeys=%v query=%s", par, strKeys, sql), want, got)
		}
	}
}

// syntheticCatalog builds a multi-morsel relation engineered to hit the
// executor's edge cases: NUL bytes inside group values, NaN and ±0 in both
// group and aggregate columns, int values past 2^53 (lossy float conversion
// in predicates), and five row-id-like columns whose combined dictionary
// widths overflow 64 bits (forcing the automatic string-key fallback).
func syntheticCatalog(rows int) catalog {
	rng := rand.New(rand.NewSource(42))
	a := make([]string, rows)  // small vocabulary, some values contain NUL
	b := make([]string, rows)  // small vocabulary
	g := make([]int64, rows)   // 0/1 flag
	big := make([]int64, rows) // huge ints: float64(v) is lossy
	x := make([]float64, rows) // agg values with NaN and ±0
	u := make([][]int64, 5)    // 5 near-unique columns -> widths > 64 bits
	for j := range u {
		u[j] = make([]int64, rows)
	}
	avoc := []string{"red", "re\x00d", "\x00", "", "blue"}
	bvoc := []string{"s", "t", "u\x00", "v"}
	for i := 0; i < rows; i++ {
		a[i] = avoc[rng.Intn(len(avoc))]
		b[i] = bvoc[rng.Intn(len(bvoc))]
		g[i] = int64(rng.Intn(2))
		big[i] = (1 << 53) + int64(rng.Intn(4)) // 2^53..2^53+3: adjacent values collide as float64
		switch rng.Intn(10) {
		case 0:
			x[i] = math.NaN()
		case 1:
			x[i] = math.Copysign(0, -1)
		case 2:
			x[i] = 0
		default:
			x[i] = math.Floor(rng.Float64()*1000) / 8
		}
		for j := range u {
			u[j][i] = int64((i*(j+3) + j) % (rows - 1))
		}
	}
	rel := relation.MustFromColumns("t",
		relation.StringCol("a", a),
		relation.StringCol("b", b),
		relation.IntCol("g", g),
		relation.IntCol("big", big),
		relation.FloatCol("x", x),
		relation.IntCol("u0", u[0]),
		relation.IntCol("u1", u[1]),
		relation.IntCol("u2", u[2]),
		relation.IntCol("u3", u[3]),
		relation.IntCol("u4", u[4]),
	)
	return catalog{"t": rel}
}

// TestExecuteVecMatchesReferenceSynthetic is the core bit-identity grid:
// every query shape the parser accepts, on a relation spanning multiple
// morsels, across worker counts and key paths.
func TestExecuteVecMatchesReferenceSynthetic(t *testing.T) {
	cat := syntheticCatalog(3*morselRows + 123)
	queries := []string{
		"select a, count(*) as c from t group by a order by c desc",
		"select a, b, avg(x) as val from t group by a, b order by val desc",
		"select a, b, sum(x) as val from t group by a, b order by val asc",
		"select a, min(x) as val from t where g = 1 group by a order by val desc",
		"select a, max(x) as val from t where g = 1 and b <> 's' group by a order by val desc",
		"select b, avg(x) as val from t where x > 10.5 group by b order by val desc limit 2",
		"select a, b, avg(x) as val from t group by a, b having count(*) > 100 order by val desc",
		"select a, sum(g) as val from t group by a having sum(x) < 100000 order by val desc",
		"select a, avg(x) as val from t where a <> 're\x00d' group by a order by val desc",
		"select a, a, count(*) as c from t group by a, a order by c desc",
		"select g, count(x) as c from t group by g order by c asc",
		"select a, avg(x) as val from t where big > 9007199254740992 group by a order by val desc",
		"select x, count(*) as c from t group by x order by c desc limit 5",
		"select big, avg(x) as val from t group by big order by val desc",
		"select a, b, g, avg(x) as val from t group by a, b, g having count(*) > 10 and max(x) >= 1 order by val desc limit 7",
		"select a, avg(x) as val from t group by a limit 3",
		// Five near-unique group columns: dictionary widths overflow one
		// word, so even without ExecStringKeys this exercises the fallback.
		"select u0, u1, u2, u3, u4, sum(x) as val from t group by u0, u1, u2, u3, u4 order by val desc limit 20",
	}
	for _, sql := range queries {
		execGrid(t, cat, sql)
	}
}

// TestExecuteVecEmptyRelation pins the degenerate shapes: zero rows and a
// WHERE rejecting every row must produce the same (empty) result everywhere.
func TestExecuteVecEmptyRelation(t *testing.T) {
	empty := catalog{"t": relation.MustFromColumns("t",
		relation.StringCol("a", nil),
		relation.FloatCol("x", nil),
	)}
	execGrid(t, empty, "select a, avg(x) as val from t group by a order by val desc")

	cat := syntheticCatalog(morselRows + 7)
	execGrid(t, cat, "select a, avg(x) as val from t where g = 7 group by a order by val desc")
}

// TestExecuteGroupKeyNulSeparator is the regression test for the group-key
// collision bug: the executor used to join group values with a '\x00'
// separator, so ("a\x00", "b") and ("a", "\x00b") collapsed into one group.
// The length-prefixed encoding keeps them apart, in both executors.
func TestExecuteGroupKeyNulSeparator(t *testing.T) {
	cat := catalog{"t": relation.MustFromColumns("t",
		relation.StringCol("s1", []string{"a\x00", "a", "a\x00", "a"}),
		relation.StringCol("s2", []string{"b", "\x00b", "b", "\x00b"}),
	)}
	sql := "select s1, s2, count(*) as c from t group by s1, s2 order by c desc"
	for _, opts := range [][]ExecOption{
		{ExecReference()},
		{ExecParallelism(1)},
		{ExecParallelism(1), ExecStringKeys()},
	} {
		res, err := ExecuteSQL(cat, sql, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if res.N() != 2 {
			t.Fatalf("got %d groups, want 2 (NUL-containing values merged): %v", res.N(), res.Rows)
		}
		for _, v := range res.Vals {
			if v != 2 {
				t.Fatalf("got counts %v, want [2 2]", res.Vals)
			}
		}
	}
	execGrid(t, cat, sql)
}

// TestExecuteVecMovieLens proves bit-identity on the paper's MovieLens
// workload (the hot path of session builds and refreshes).
func TestExecuteVecMovieLens(t *testing.T) {
	cfg := movielens.DefaultConfig()
	cfg.Ratings = 30_000
	rel, err := movielens.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat := catalog{"RatingTable": rel}
	type tpl struct {
		m, minCount int
		where       string
	}
	for _, c := range []tpl{
		{4, 50, "genre_adventure = 1"},
		{4, 0, ""},
		{6, 20, ""},
		{1, 10, "rating >= 3"},
	} {
		sql, err := movielens.Query(c.m, c.minCount, c.where)
		if err != nil {
			t.Fatal(err)
		}
		execGrid(t, cat, sql)
	}
}

// TestExecuteVecTPCDS proves bit-identity on the TPC-DS-style catalog.
func TestExecuteVecTPCDS(t *testing.T) {
	rel, err := tpcds.Generate(tpcds.Config{Rows: 60_000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cat := catalog{"store_sales": rel}
	for _, c := range [][2]int{{3, 100}, {8, 0}, {1, 500}} {
		sql, err := tpcds.Query(c[0], c[1])
		if err != nil {
			t.Fatal(err)
		}
		execGrid(t, cat, sql)
	}
}

// TestExecuteVecContextCancel checks that cancellation is observed between
// morsels on both the sequential and the parallel dispatch paths.
func TestExecuteVecContextCancel(t *testing.T) {
	cat := syntheticCatalog(2*morselRows + 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, par := range []int{1, 8} {
		_, err := ExecuteSQL(cat, "select a, avg(x) as val from t group by a order by val desc",
			ExecParallelism(par), ExecContext(ctx))
		if err != context.Canceled {
			t.Fatalf("par=%d: err = %v, want context.Canceled", par, err)
		}
	}
	// An un-cancelled context must not interfere.
	res, err := ExecuteSQL(cat, "select a, count(*) as c from t group by a order by c desc",
		ExecParallelism(8), ExecContext(context.Background()))
	if err != nil || res.N() == 0 {
		t.Fatalf("live context: res=%v err=%v", res, err)
	}
}

// TestExecuteVecPooledReuse runs many executions back to back (the refresh
// steady state) to confirm pooled buffers reset correctly between queries of
// different shapes.
func TestExecuteVecPooledReuse(t *testing.T) {
	cat := syntheticCatalog(morselRows + 100)
	queries := []string{
		"select a, b, avg(x) as val from t group by a, b having count(*) > 5 order by val desc",
		"select g, count(*) as c from t group by g order by c desc",
		"select a, sum(x) as val from t where g = 0 group by a order by val asc limit 2",
	}
	wants := make([]*Result, len(queries))
	for i, sql := range queries {
		w, err := ExecuteSQL(cat, sql, ExecReference())
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = w
	}
	for round := 0; round < 20; round++ {
		i := round % len(queries)
		got, err := ExecuteSQL(cat, queries[i], ExecParallelism(1+round%3))
		if err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, fmt.Sprintf("round %d query %d", round, i), wants[i], got)
	}
}
