package engine

import (
	"context"
	"sort"

	"qagview/internal/relation"
)

// This file implements the worst-case-optimal multi-way join (the generic /
// leapfrog join of Ngo et al.): attribute-at-a-time enumeration over
// per-relation tries of sorted dictionary codes. It is selected when the
// join graph is cyclic — where any left-deep binary plan can materialize an
// intermediate asymptotically larger than the output (the triangle query's
// |E|^2 vs. AGM-bound |E|^{3/2}) — and on demand via ExecGenericJoin.
//
// Join variables are the equivalence classes of equated columns
// (joinPlan.varOccs). Each variable gets a joint code space: the union of
// its occurrence columns' dictionaries, recoded first-seen into one dense
// domain under the class's key kind. Each relation's trie is its rows
// sorted lexicographically by the joint codes of its variables (in global
// variable order) with row id as the tiebreak — exactly the per-column
// sorted code indexes of relation.CodeGroups, composed per relation. The
// enumeration intersects, level by level, the current code ranges of every
// relation containing the variable (leapfrog: repeatedly seek the lagging
// iterator to the current maximum), and at a full binding emits the cross
// product of the per-relation row ranges. A final lexicographic sort by
// FROM-position row ids lands the tuples in the canonical nested-loop
// order, making the path bit-identical to the reference and the hash plan.

// lfTable is one relation's trie: surviving rows sorted by their variables'
// joint codes, plus the per-level code of each sorted row.
type lfTable struct {
	vars  []int     // global variable indexes present in this relation, ascending
	rows  []int32   // sorted surviving row ids
	codes [][]int32 // codes[l][k] = joint code of rows[k] at level l
}

// lfPart locates a variable inside a relation's trie.
type lfPart struct {
	ti  int // table index
	lvl int // level of the variable within that table's trie
}

type leapfrog struct {
	jp     *joinPlan
	tables []*lfTable
	atVar  [][]lfPart // per variable: the tries containing it
}

// jointCodes recodes every occurrence column of variable v into one joint
// first-seen code space, returning local->joint translation per occurrence.
// Values present in only some relations keep distinct joint codes and
// simply never intersect.
func (jp *joinPlan) jointCodes(v int) map[[2]int][]int32 {
	vi := &valIndex{kind: jp.varKind[v]}
	switch vi.kind {
	case kkString:
		vi.s = make(map[string]int32, 64)
	case kkInt:
		vi.i = make(map[int64]int32, 64)
	default:
		vi.f = make(map[uint64]int32, 64)
	}
	assign := func(c *relation.Column, row int32) int32 {
		switch vi.kind {
		case kkString:
			s := c.Str[row]
			id, ok := vi.s[s]
			if !ok {
				id = int32(len(vi.s))
				vi.s[s] = id
			}
			return id
		case kkInt:
			n := c.Int[row]
			id, ok := vi.i[n]
			if !ok {
				id = int32(len(vi.i))
				vi.i[n] = id
			}
			return id
		default:
			b := numKeyBits(c, row)
			id, ok := vi.f[b]
			if !ok {
				id = int32(len(vi.f))
				vi.f[b] = id
			}
			return id
		}
	}
	out := make(map[[2]int][]int32, len(jp.varOccs[v]))
	for _, occ := range jp.varOccs[v] {
		t, ci := occ[0], occ[1]
		c := jp.rels[t].Column(ci)
		d := jp.rels[t].DictCodes(ci)
		g := jp.rels[t].CodeGroups(ci)
		tr := make([]int32, d.Card)
		for code := 0; code < d.Card; code++ {
			tr[code] = assign(c, g.Rep(int32(code)))
		}
		out[occ] = tr
	}
	return out
}

// newLeapfrog builds the tries.
func (jp *joinPlan) newLeapfrog() *leapfrog {
	nt := len(jp.rels)
	nv := len(jp.varOccs)
	lf := &leapfrog{jp: jp, tables: make([]*lfTable, nt), atVar: make([][]lfPart, nv)}

	// rowJoint[t][v] = per-row joint code of variable v in table t (nil if
	// absent); multi-occurrence rows that disagree across occurrences of
	// one variable are dropped (they can never satisfy the equalities).
	rowJoint := make([][][]int32, nt)
	drop := make([][]bool, nt)
	for t := 0; t < nt; t++ {
		rowJoint[t] = make([][]int32, nv)
	}
	for v := 0; v < nv; v++ {
		trs := jp.jointCodes(v)
		for _, occ := range jp.varOccs[v] {
			t, ci := occ[0], occ[1]
			tr := trs[occ]
			codes := jp.rels[t].DictCodes(ci).Codes
			if rowJoint[t][v] == nil {
				jc := make([]int32, len(codes))
				for r, c := range codes {
					jc[r] = tr[c]
				}
				rowJoint[t][v] = jc
				continue
			}
			if drop[t] == nil {
				drop[t] = make([]bool, len(codes))
			}
			jc := rowJoint[t][v]
			for r, c := range codes {
				if tr[c] != jc[r] {
					drop[t][r] = true
				}
			}
		}
	}

	for t := 0; t < nt; t++ {
		lt := &lfTable{}
		for v := 0; v < nv; v++ {
			if rowJoint[t][v] != nil {
				lt.vars = append(lt.vars, v)
			}
		}
		n := jp.rels[t].NumRows()
		rows := make([]int32, 0, n)
		for r := 0; r < n; r++ {
			if drop[t] == nil || !drop[t][r] {
				rows = append(rows, int32(r))
			}
		}
		byVar := make([][]int32, len(lt.vars))
		for l, v := range lt.vars {
			byVar[l] = rowJoint[t][v]
		}
		sort.Slice(rows, func(a, b int) bool {
			ra, rb := rows[a], rows[b]
			for _, jc := range byVar {
				if jc[ra] != jc[rb] {
					return jc[ra] < jc[rb]
				}
			}
			return ra < rb
		})
		lt.rows = rows
		lt.codes = make([][]int32, len(lt.vars))
		for l := range lt.vars {
			cs := make([]int32, len(rows))
			for k, r := range rows {
				cs[k] = byVar[l][r]
			}
			lt.codes[l] = cs
		}
		lf.tables[t] = lt
		for l, v := range lt.vars {
			lf.atVar[v] = append(lf.atVar[v], lfPart{ti: t, lvl: l})
		}
	}
	return lf
}

// leapfrogTuples runs the generic join and returns the matching row-id
// tuples in canonical lexicographic order.
func (jp *joinPlan) leapfrogTuples(ctx context.Context) ([][]int32, error) {
	lf := jp.newLeapfrog()
	nt := len(jp.rels)
	nv := len(jp.varOccs)
	tuples := make([][]int32, nt)

	// Current sorted-row range per table, narrowed as variables bind.
	lo := make([]int, nt)
	hi := make([]int, nt)
	for t := range lf.tables {
		hi[t] = len(lf.tables[t].rows)
	}
	for t := range lf.tables {
		if hi[t] == 0 {
			return tuples, nil
		}
	}

	cur := make([]int32, nt)
	var emit func(t int)
	emit = func(t int) {
		if t == nt {
			for i := range cur {
				tuples[i] = append(tuples[i], cur[i])
			}
			return
		}
		rows := lf.tables[t].rows
		for k := lo[t]; k < hi[t]; k++ {
			cur[t] = rows[k]
			emit(t + 1)
		}
	}

	// seek returns the first position in [from, to) whose code at level lvl
	// is >= c; codes are ascending within the bound prefix.
	seek := func(codes []int32, from, to int, c int32) int {
		return from + sort.Search(to-from, func(i int) bool { return codes[from+i] >= c })
	}

	var rec func(v int) error
	rec = func(v int) error {
		if v == nv {
			emit(0)
			return nil
		}
		parts := lf.atVar[v]
		// Iterator positions start at each participating trie's range
		// start; the range ends stay fixed for this level.
		pos := make([]int, len(parts))
		end := make([]int, len(parts))
		for i, p := range parts {
			pos[i] = lo[p.ti]
			end[i] = hi[p.ti]
		}
		for {
			if v == 0 && ctx != nil && ctx.Err() != nil {
				return ctx.Err()
			}
			// Find the maximum current code; seek laggards up to it.
			var maxCode int32
			for i, p := range parts {
				c := lf.tables[p.ti].codes[p.lvl][pos[i]]
				if i == 0 || c > maxCode {
					maxCode = c
				}
			}
			equal := true
			for i, p := range parts {
				codes := lf.tables[p.ti].codes[p.lvl]
				if codes[pos[i]] < maxCode {
					pos[i] = seek(codes, pos[i], end[i], maxCode)
					if pos[i] >= end[i] {
						return nil
					}
					if codes[pos[i]] != maxCode {
						equal = false
					}
				}
			}
			if !equal {
				continue
			}
			// All iterators agree on maxCode: bind it, narrow every
			// participating trie to the code's subrange, recurse, then
			// advance past the subrange.
			sub := make([]int, len(parts))
			for i, p := range parts {
				sub[i] = seek(lf.tables[p.ti].codes[p.lvl], pos[i], end[i], maxCode+1)
			}
			saveLo := make([]int, len(parts))
			saveHi := make([]int, len(parts))
			for i, p := range parts {
				saveLo[i], saveHi[i] = lo[p.ti], hi[p.ti]
				lo[p.ti], hi[p.ti] = pos[i], sub[i]
			}
			err := rec(v + 1)
			for i, p := range parts {
				lo[p.ti], hi[p.ti] = saveLo[i], saveHi[i]
			}
			if err != nil {
				return err
			}
			done := false
			for i := range parts {
				pos[i] = sub[i]
				if pos[i] >= end[i] {
					done = true
				}
			}
			if done {
				return nil
			}
		}
	}
	if err := rec(0); err != nil {
		return nil, err
	}

	// Final canonical ordering: lexicographic by FROM-position row ids.
	n := len(tuples[0])
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		for t := 0; t < nt; t++ {
			if tuples[t][ia] != tuples[t][ib] {
				return tuples[t][ia] < tuples[t][ib]
			}
		}
		return false
	})
	out := make([][]int32, nt)
	for t := 0; t < nt; t++ {
		col := make([]int32, n)
		for i, j := range idx {
			col[i] = tuples[t][j]
		}
		out[t] = col
	}
	return out, nil
}
