// Package exp is the experiment harness: one function per table/figure of
// the paper's evaluation (Sections 7 and 8 and Appendices A.5/A.7),
// regenerating the same rows/series the paper reports over the synthetic
// datasets. The cmd/experiments binary prints these tables; the root
// bench_test.go benchmarks the underlying operations.
package exp

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"qagview"
	"qagview/internal/movielens"
	"qagview/internal/tpcds"
)

// Env holds generated datasets and caches query results. Building TPC-DS is
// deferred until a TPC-DS experiment asks for it.
type Env struct {
	ML *qagview.DB
	tp *qagview.DB

	// Parallelism bounds the worker pool of precompute experiments.
	// 0 keeps the library default (GOMAXPROCS); 1 forces sequential runs,
	// which reproduces the paper's single-threaded timings — cmd/experiments
	// defaults to 1 so the Figure 7 single-vs-precompute tables stay
	// comparable to the paper (the single-run path has no parallel variant).
	Parallelism int

	// BuildParallelism bounds the worker pool of the cluster-space builds
	// the experiments time (lattice.BuildParallelism). 0 keeps the library
	// default (GOMAXPROCS); cmd/experiments defaults to 1 for the same
	// paper-comparability reason as Parallelism. The figscale experiment
	// sweeps worker counts itself and ignores this setting.
	BuildParallelism int

	mlCfg movielens.Config
	tpCfg tpcds.Config

	cache map[string]*qagview.Result
}

// preOpts translates the environment's parallelism setting into precompute
// options for the figure regenerators.
func (e *Env) preOpts() []qagview.PrecomputeOption {
	if e.Parallelism == 0 {
		return nil
	}
	return []qagview.PrecomputeOption{qagview.Parallelism(e.Parallelism)}
}

// buildOpts translates the environment's build-parallelism setting into
// summarizer build options.
func (e *Env) buildOpts() []qagview.BuildOption {
	if e.BuildParallelism == 0 {
		return nil
	}
	return []qagview.BuildOption{qagview.BuildParallelism(e.BuildParallelism)}
}

// NewEnv generates the MovieLens-like dataset eagerly and remembers the
// TPC-DS configuration for lazy generation.
func NewEnv(mlCfg movielens.Config, tpCfg tpcds.Config) (*Env, error) {
	rel, err := movielens.Generate(mlCfg)
	if err != nil {
		return nil, err
	}
	db := qagview.NewDB()
	if err := db.Register(rel); err != nil {
		return nil, err
	}
	return &Env{ML: db, mlCfg: mlCfg, tpCfg: tpCfg, cache: map[string]*qagview.Result{}}, nil
}

// NewDefaultEnv uses the paper-scale MovieLens 100K configuration and the
// default synthetic TPC-DS size.
func NewDefaultEnv() (*Env, error) {
	return NewEnv(movielens.DefaultConfig(), tpcds.DefaultConfig())
}

// NewSmallEnv is a fast configuration for tests.
func NewSmallEnv() (*Env, error) {
	return NewEnv(
		movielens.Config{Users: 300, Movies: 400, Ratings: 30_000, Seed: 1},
		tpcds.Config{Rows: 40_000, Seed: 7},
	)
}

// TPCDS returns the TPC-DS database, generating it on first use.
func (e *Env) TPCDS() (*qagview.DB, error) {
	if e.tp != nil {
		return e.tp, nil
	}
	rel, err := tpcds.Generate(e.tpCfg)
	if err != nil {
		return nil, err
	}
	db := qagview.NewDB()
	if err := db.Register(rel); err != nil {
		return nil, err
	}
	e.tp = db
	return db, nil
}

// Query runs sql against db with result caching keyed by the SQL text.
func (e *Env) Query(db *qagview.DB, sql string) (*qagview.Result, error) {
	if r, ok := e.cache[sql]; ok {
		return r, nil
	}
	r, err := db.Query(sql)
	if err != nil {
		return nil, err
	}
	e.cache[sql] = r
	return r, nil
}

// MovieLensResult returns the aggregate result over the first m MovieLens
// grouping attributes with the HAVING threshold tuned so the output has
// roughly targetN groups (the paper's experiments fix N = 927, 2087, 6955
// this way). targetN <= 0 disables tuning (threshold 0).
func (e *Env) MovieLensResult(m, targetN int) (*qagview.Result, error) {
	return e.tunedResult(e.ML, "RatingTable", movielensQuery, m, targetN)
}

// TPCDSResult is MovieLensResult for the synthetic store_sales table.
func (e *Env) TPCDSResult(m, targetN int) (*qagview.Result, error) {
	db, err := e.TPCDS()
	if err != nil {
		return nil, err
	}
	return e.tunedResult(db, "store_sales", tpcdsQuery, m, targetN)
}

// AdventureResult is the running example's query (Example 1.1): the first
// four grouping attributes restricted to adventure movies.
func (e *Env) AdventureResult(minCount int) (*qagview.Result, error) {
	q, err := movielens.Query(4, minCount, "genre_adventure = 1")
	if err != nil {
		return nil, err
	}
	return e.Query(e.ML, q)
}

func movielensQuery(m, minCount int) (string, error) {
	return movielens.Query(m, minCount, "")
}

func tpcdsQuery(m, minCount int) (string, error) {
	return tpcds.Query(m, minCount)
}

// tunedResult picks the HAVING threshold so that about targetN groups
// survive: it first fetches per-group counts, then thresholds at the
// targetN-th largest count.
func (e *Env) tunedResult(db *qagview.DB, table string, mkQuery func(m, c int) (string, error),
	m, targetN int) (*qagview.Result, error) {
	if targetN <= 0 {
		q, err := mkQuery(m, 0)
		if err != nil {
			return nil, err
		}
		return e.Query(db, q)
	}
	q0, err := mkQuery(m, 0)
	if err != nil {
		return nil, err
	}
	counts, err := e.Query(db, strings.Replace(q0, "avg(", "count(", 1))
	if err != nil {
		return nil, err
	}
	if counts.N() == 0 {
		return nil, fmt.Errorf("exp: query over %s yields no groups", table)
	}
	cs := append([]float64(nil), counts.Vals...)
	sort.Sort(sort.Reverse(sort.Float64Slice(cs)))
	threshold := 0
	if targetN < len(cs) {
		threshold = int(cs[targetN]) // groups with count > this ≈ targetN
	}
	q, err := mkQuery(m, threshold)
	if err != nil {
		return nil, err
	}
	return e.Query(db, q)
}

// timer measures wall time for harness rows.
type timer struct{ t0 time.Time }

func startTimer() timer { return timer{t0: time.Now()} }

func (t timer) ms() float64 { return float64(time.Since(t.t0).Microseconds()) / 1000 }

func fms(v float64) string { return fmt.Sprintf("%.2f", v) }
