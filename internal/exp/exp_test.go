package exp

import (
	"strings"
	"testing"
)

// sharedEnv is built once; experiments cache query results inside it.
var sharedEnv *Env

func env(t *testing.T) *Env {
	t.Helper()
	if sharedEnv == nil {
		e, err := NewSmallEnv()
		if err != nil {
			t.Fatal(err)
		}
		sharedEnv = e
	}
	return sharedEnv
}

// TestEveryExperimentRuns executes the full registry against the small
// environment: every experiment must produce at least one non-empty table.
func TestEveryExperimentRuns(t *testing.T) {
	e := env(t)
	for _, x := range Registry() {
		x := x
		t.Run(x.ID, func(t *testing.T) {
			tables, err := x.Run(e)
			if err != nil {
				t.Fatalf("%s: %v", x.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s: no tables", x.ID)
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Errorf("%s/%s: empty table", x.ID, tb.ID)
				}
				text := tb.Format()
				if !strings.Contains(text, tb.ID) {
					t.Errorf("%s: Format missing id header", tb.ID)
				}
			}
		})
	}
}

func TestFindRegistry(t *testing.T) {
	if _, err := Find("fig5"); err != nil {
		t.Errorf("Find(fig5): %v", err)
	}
	if _, err := Find("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestTunedResultHitsTarget(t *testing.T) {
	e := env(t)
	res, err := e.MovieLensResult(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.N() < 50 || res.N() > 400 {
		t.Errorf("tuned N = %d, wanted near 100", res.N())
	}
}

func TestTableFormatAlignment(t *testing.T) {
	tb := Table{ID: "x", Title: "demo", Header: []string{"a", "bb"}, Notes: "n"}
	tb.Add("longer", 1.5)
	text := tb.Format()
	if !strings.Contains(text, "longer") || !strings.Contains(text, "1.500") || !strings.Contains(text, "note: n") {
		t.Errorf("format output:\n%s", text)
	}
}
