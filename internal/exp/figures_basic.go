package exp

import (
	"fmt"
	"math"
	"math/rand"

	"qagview"
	"qagview/internal/movielens"
)

// AdventureResultN is the running-example query with the HAVING threshold
// tuned for roughly targetN output groups.
func (e *Env) AdventureResultN(targetN int) (*qagview.Result, error) {
	return e.tunedResult(e.ML, "RatingTable", func(m, c int) (string, error) {
		return movielens.Query(4, c, "genre_adventure = 1")
	}, 4, targetN)
}

// Fig1 reproduces the running example (Figures 1a-1c): the top/bottom of the
// adventure-genre ranking and the k=4, L=8, D=2 summary with its expansion.
func Fig1(e *Env) ([]Table, error) {
	res, err := e.AdventureResultN(50)
	if err != nil {
		return nil, err
	}
	if res.N() < 8 {
		return nil, fmt.Errorf("exp: adventure query yields only %d groups", res.N())
	}
	ranking := Table{
		ID:     "fig1a",
		Title:  "Top-8 and bottom-8 adventure aggregate answers",
		Header: append(append([]string{"rank"}, res.GroupBy...), "val"),
		Notes:  fmt.Sprintf("N = %d groups (paper: 50)", res.N()),
	}
	addRank := func(i int) {
		cells := []any{i + 1}
		for _, c := range res.Rows[i] {
			cells = append(cells, c)
		}
		cells = append(cells, res.Vals[i])
		ranking.Add(cells...)
	}
	for i := 0; i < 8 && i < res.N(); i++ {
		addRank(i)
	}
	for i := res.N() - 8; i < res.N(); i++ {
		if i >= 8 {
			addRank(i)
		}
	}

	s, err := qagview.NewSummarizer(res, res.N())
	if err != nil {
		return nil, err
	}
	p := qagview.Params{K: 4, L: 8, D: 2}
	sol, err := s.Summarize(qagview.Hybrid, p)
	if err != nil {
		return nil, err
	}
	if err := s.Validate(p, sol); err != nil {
		return nil, err
	}
	clusters := Table{
		ID:     "fig1b",
		Title:  "Clusters for k=4, L=8, D=2 (first layer)",
		Header: append(append([]string{}, res.GroupBy...), "avg val", "size"),
	}
	expanded := Table{
		ID:     "fig1c",
		Title:  "Clusters with covered answers (second layer)",
		Header: append(append([]string{}, res.GroupBy...), "val", "rank"),
	}
	for _, row := range s.Rows(sol) {
		cells := []any{}
		for _, c := range row.Pattern {
			cells = append(cells, c)
		}
		clusters.Add(append(cells, row.Avg, row.Size)...)
		expanded.Add(append(cells, row.Avg, "cluster")...)
		for _, m := range row.Members {
			mc := []any{}
			for _, c := range m.Row {
				mc = append(mc, c)
			}
			expanded.Add(append(mc, m.Val, fmt.Sprintf("%d", m.Rank))...)
		}
	}
	return []Table{ranking, clusters, expanded}, nil
}

// Fig2 reproduces the parameter-selection guidance view: solution value vs k
// for each D, at L = 15.
func Fig2(e *Env) ([]Table, error) {
	res, err := e.AdventureResultN(50)
	if err != nil {
		return nil, err
	}
	L := 15
	if res.N() < L {
		L = res.N()
	}
	s, err := qagview.NewSummarizer(res, L)
	if err != nil {
		return nil, err
	}
	kMin, kMax := 2, 15
	ds := []int{1, 2, 3, 4, 5, 6}
	if m := s.M(); kMax > 0 {
		for len(ds) > 0 && ds[len(ds)-1] > m {
			ds = ds[:len(ds)-1]
		}
	}
	store, err := s.Precompute(kMin, kMax, ds, e.preOpts()...)
	if err != nil {
		return nil, err
	}
	g := store.Guidance()
	t := Table{
		ID:    "fig2",
		Title: fmt.Sprintf("Guidance view: avg value vs k (columns) per D (rows), L=%d", L),
		Notes: "the paper's Figure 2 plots these series as lines",
	}
	t.Header = []string{"D"}
	for k := kMin; k <= kMax; k++ {
		t.Header = append(t.Header, fmt.Sprintf("k=%d", k))
	}
	for _, d := range ds {
		cells := []any{d}
		for i, v := range g.Series[d] {
			if !g.Stored(d, kMin+i) {
				cells = append(cells, "-")
				continue
			}
			cells = append(cells, v)
		}
		t.Add(cells...)
	}
	return []Table{t}, nil
}

// Fig5 compares brute force against the heuristics at L=5, D=3, k=2..4
// (Figures 5a and 5b): running time and objective value, with the random
// and k-means Fixed-Order variants averaged over 100 runs.
func Fig5(e *Env) ([]Table, error) {
	res, err := e.AdventureResultN(50)
	if err != nil {
		return nil, err
	}
	s, err := qagview.NewSummarizer(res, res.N())
	if err != nil {
		return nil, err
	}
	runtime := Table{
		ID:     "fig5a",
		Title:  "Running time (ms) vs k; L=5, D=3",
		Header: []string{"algorithm", "k=2", "k=3", "k=4"},
	}
	value := Table{
		ID:     "fig5b",
		Title:  "Average value vs k; L=5, D=3",
		Header: []string{"algorithm", "k=2", "k=3", "k=4"},
	}
	algos := []qagview.Algorithm{
		qagview.BruteForce, qagview.BottomUp, qagview.FixedOrder, qagview.Hybrid,
	}
	const randomRuns = 100
	for _, algo := range algos {
		rt := []any{string(algo)}
		vt := []any{string(algo)}
		for k := 2; k <= 4; k++ {
			p := qagview.Params{K: k, L: 5, D: 3}
			t0 := startTimer()
			sol, err := s.Summarize(algo, p)
			if err != nil {
				return nil, fmt.Errorf("%s k=%d: %w", algo, k, err)
			}
			rt = append(rt, fms(t0.ms()))
			vt = append(vt, sol.AvgValue())
		}
		runtime.Add(rt...)
		value.Add(vt...)
	}
	for _, algo := range []qagview.Algorithm{qagview.RandomFixedOrder, qagview.KMeansFixedOrder} {
		rt := []any{string(algo)}
		vt := []any{string(algo)}
		for k := 2; k <= 4; k++ {
			p := qagview.Params{K: k, L: 5, D: 3}
			t0 := startTimer()
			var vals []float64
			for run := 0; run < randomRuns; run++ {
				sol, err := s.Summarize(algo, p, qagview.WithRand(rand.New(rand.NewSource(int64(run)))))
				if err != nil {
					return nil, err
				}
				vals = append(vals, sol.AvgValue())
			}
			rt = append(rt, fms(t0.ms()/randomRuns))
			vt = append(vt, fmt.Sprintf("%.3f±%.3f", mean(vals), std(vals)))
		}
		runtime.Add(rt...)
		value.Add(vt...)
	}
	lb := s.LowerBound()
	value.Add("lower-bound", lb.AvgValue(), lb.AvgValue(), lb.AvgValue())
	value.Notes = fmt.Sprintf("random variants averaged over %d seeds; N = %d", randomRuns, res.N())
	return []Table{runtime, value}, nil
}

// fig6Setup builds the default Figure 6 summarizer: m = 8 grouping
// attributes with the output tuned to roughly 200 groups (the paper's input
// sizes for this figure range from 140 to 280).
func (e *Env) fig6Setup(L int) (*qagview.Summarizer, *qagview.Result, error) {
	res, err := e.MovieLensResult(8, 200)
	if err != nil {
		return nil, nil, err
	}
	if res.N() < L {
		return nil, nil, fmt.Errorf("exp: fig6 result has %d < L = %d groups", res.N(), L)
	}
	s, err := qagview.NewSummarizer(res, L)
	if err != nil {
		return nil, nil, err
	}
	return s, res, nil
}

var fig6Algos = []qagview.Algorithm{qagview.BottomUp, qagview.FixedOrder, qagview.Hybrid}

// sweepTables runs the three main algorithms over a parameter sweep and
// emits the runtime and value tables.
func sweepTables(idPrefix, axis string, points []int, run func(algo qagview.Algorithm, x int) (float64, float64, error), lower func(x int) (float64, error)) ([]Table, error) {
	runtime := Table{ID: idPrefix + "-runtime", Title: "Running time (ms) vs " + axis}
	value := Table{ID: idPrefix + "-value", Title: "Average value vs " + axis}
	runtime.Header = []string{"algorithm"}
	value.Header = []string{"algorithm"}
	for _, x := range points {
		runtime.Header = append(runtime.Header, fmt.Sprintf("%s=%d", axis, x))
		value.Header = append(value.Header, fmt.Sprintf("%s=%d", axis, x))
	}
	for _, algo := range fig6Algos {
		rt := []any{string(algo)}
		vt := []any{string(algo)}
		for _, x := range points {
			ms, v, err := run(algo, x)
			if err != nil {
				return nil, fmt.Errorf("%s %s=%d: %w", algo, axis, x, err)
			}
			rt = append(rt, fms(ms))
			vt = append(vt, v)
		}
		runtime.Add(rt...)
		value.Add(vt...)
	}
	if lower != nil {
		vt := []any{"lower-bound"}
		for _, x := range points {
			v, err := lower(x)
			if err != nil {
				return nil, err
			}
			vt = append(vt, v)
		}
		value.Add(vt...)
	}
	return []Table{runtime, value}, nil
}

// Fig6K varies the size parameter k (Figures 6a/6b): L=40, D=3.
func Fig6K(e *Env) ([]Table, error) {
	s, res, err := e.fig6Setup(40)
	if err != nil {
		return nil, err
	}
	tables, err := sweepTables("fig6ab", "k", []int{5, 10, 20, 40},
		func(algo qagview.Algorithm, k int) (float64, float64, error) {
			p := qagview.Params{K: k, L: 40, D: 3}
			t0 := startTimer()
			sol, err := s.Summarize(algo, p)
			if err != nil {
				return 0, 0, err
			}
			return t0.ms(), sol.AvgValue(), nil
		},
		func(int) (float64, error) { return s.LowerBound().AvgValue(), nil })
	if err != nil {
		return nil, err
	}
	tables[0].Notes = fmt.Sprintf("m=8, L=40, D=3, N=%d", res.N())
	return tables, nil
}

// Fig6L varies the coverage parameter L (Figures 6c/6d): k=3, D=3.
func Fig6L(e *Env) ([]Table, error) {
	s, res, err := e.fig6Setup(81)
	if err != nil {
		return nil, err
	}
	tables, err := sweepTables("fig6cd", "L", []int{3, 9, 27, 81},
		func(algo qagview.Algorithm, L int) (float64, float64, error) {
			p := qagview.Params{K: 3, L: L, D: 3}
			t0 := startTimer()
			sol, err := s.Summarize(algo, p)
			if err != nil {
				return 0, 0, err
			}
			return t0.ms(), sol.AvgValue(), nil
		},
		func(int) (float64, error) { return s.LowerBound().AvgValue(), nil })
	if err != nil {
		return nil, err
	}
	tables[0].Notes = fmt.Sprintf("m=8, k=3, D=3, N=%d", res.N())
	return tables, nil
}

// Fig6D varies the distance parameter D (Figures 6e/6f): k=10, L=40.
func Fig6D(e *Env) ([]Table, error) {
	s, res, err := e.fig6Setup(40)
	if err != nil {
		return nil, err
	}
	tables, err := sweepTables("fig6ef", "D", []int{1, 2, 3, 4, 5, 6},
		func(algo qagview.Algorithm, D int) (float64, float64, error) {
			p := qagview.Params{K: 10, L: 40, D: D}
			t0 := startTimer()
			sol, err := s.Summarize(algo, p)
			if err != nil {
				return 0, 0, err
			}
			return t0.ms(), sol.AvgValue(), nil
		},
		func(int) (float64, error) { return s.LowerBound().AvgValue(), nil })
	if err != nil {
		return nil, err
	}
	tables[0].Notes = fmt.Sprintf("m=8, k=10, L=40, N=%d", res.N())
	return tables, nil
}

// Fig6M varies the number of grouping attributes m (Figures 6g/6h):
// initialization time per m, and algorithm running time at k=L=20, D=3.
func Fig6M(e *Env) ([]Table, error) {
	initT := Table{
		ID:     "fig6g",
		Title:  "Initialization time (ms) vs m",
		Header: []string{"m", "N", "clusters", "init ms"},
	}
	algoT := Table{
		ID:     "fig6h",
		Title:  "Running time (ms) vs m; k=L=20, D=3",
		Header: append([]string{"m"}, algoNames(fig6Algos)...),
	}
	for m := 4; m <= 10; m++ {
		res, err := e.MovieLensResult(m, 200)
		if err != nil {
			return nil, err
		}
		if res.N() < 20 {
			return nil, fmt.Errorf("exp: m=%d yields only %d groups", m, res.N())
		}
		t0 := startTimer()
		s, err := qagview.NewSummarizer(res, 20)
		if err != nil {
			return nil, err
		}
		initMs := t0.ms()
		initT.Add(m, res.N(), s.NumClusters(), fms(initMs))
		row := []any{m}
		for _, algo := range fig6Algos {
			d := 3
			if d > m {
				d = m
			}
			p := qagview.Params{K: 20, L: 20, D: d}
			t1 := startTimer()
			if _, err := s.Summarize(algo, p); err != nil {
				return nil, err
			}
			row = append(row, fms(t1.ms()))
		}
		algoT.Add(row...)
	}
	return []Table{initT, algoT}, nil
}

func algoNames(algos []qagview.Algorithm) []string {
	out := make([]string, len(algos))
	for i, a := range algos {
		out[i] = string(a)
	}
	return out
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func std(xs []float64) float64 {
	m := mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)))
}
