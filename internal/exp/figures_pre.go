package exp

import (
	"fmt"
	"runtime"

	"qagview"
	"qagview/internal/lattice"
)

// singleRun measures the non-precomputed path: initialization (cluster space
// build) plus one Hybrid run for (k, L, D). It returns (init ms, algo ms).
func singleRun(e *Env, res *qagview.Result, k, L, D int) (float64, float64, error) {
	t0 := startTimer()
	s, err := qagview.NewSummarizer(res, L, e.buildOpts()...)
	if err != nil {
		return 0, 0, err
	}
	initMs := t0.ms()
	t1 := startTimer()
	p := qagview.Params{K: k, L: L, D: D}
	if _, err := s.Summarize(qagview.Hybrid, p); err != nil {
		return 0, 0, err
	}
	return initMs, t1.ms(), nil
}

// precomputeRun measures the precomputed path: initialization, the sweep
// over k in [1, kMax] for the given D, and one retrieval. It returns
// (init ms, sweep ms, retrieval ms).
func precomputeRun(e *Env, res *qagview.Result, kMax, L, D int) (float64, float64, float64, error) {
	t0 := startTimer()
	s, err := qagview.NewSummarizer(res, L, e.buildOpts()...)
	if err != nil {
		return 0, 0, 0, err
	}
	initMs := t0.ms()
	t1 := startTimer()
	store, err := s.Precompute(1, kMax, []int{D}, e.preOpts()...)
	if err != nil {
		return 0, 0, 0, err
	}
	sweepMs := t1.ms()
	t2 := startTimer()
	if _, err := store.Solution(kMax, D); err != nil {
		return 0, 0, 0, err
	}
	return initMs, sweepMs, t2.ms(), nil
}

// Fig7K varies k for the precomputation path (Figure 7a): L=1000, D=2,
// N≈2087.
func Fig7K(e *Env) ([]Table, error) {
	res, err := e.MovieLensResult(8, 2087)
	if err != nil {
		return nil, err
	}
	L := 1000
	if res.N() < L {
		L = res.N()
	}
	t := Table{
		ID:     "fig7a",
		Title:  "Precompute runtime (ms) vs k; L=1000, D=2",
		Header: []string{"k", "init ms", "algo ms", "retrieve ms"},
		Notes:  fmt.Sprintf("N = %d (paper: 2087)", res.N()),
	}
	for _, k := range []int{5, 10, 20, 50, 80} {
		initMs, sweepMs, retMs, err := precomputeRun(e, res, k, L, 2)
		if err != nil {
			return nil, err
		}
		t.Add(k, fms(initMs), fms(sweepMs), fms(retMs))
	}
	return []Table{t}, nil
}

// Fig7L varies L for single vs precompute (Figures 7c/7d): k=20, D=2,
// N≈2087.
func Fig7L(e *Env) ([]Table, error) {
	res, err := e.MovieLensResult(8, 2087)
	if err != nil {
		return nil, err
	}
	return singleVsPrecompute(e, "fig7cd", res, []int{200, 500, 1000},
		fmt.Sprintf("k=20, D=2, N=%d (paper: 2087)", res.N()))
}

// Fig7N varies the answer-set size N (Figures 7e/7f): k=20, L=500, D=2.
func Fig7N(e *Env) ([]Table, error) {
	single := Table{
		ID:     "fig7e",
		Title:  "Single run (ms) vs N; k=20, L=500, D=2",
		Header: []string{"N", "init ms", "algo ms"},
	}
	pre := Table{
		ID:     "fig7f",
		Title:  "With precomputation (ms) vs N; k=20, L=500, D=2",
		Header: []string{"N", "init ms", "algo ms", "retrieve ms"},
	}
	for _, target := range []int{927, 2087, 6955} {
		res, err := e.MovieLensResult(8, target)
		if err != nil {
			return nil, err
		}
		L := 500
		if res.N() < L {
			L = res.N()
		}
		i1, a1, err := singleRun(e, res, 20, L, 2)
		if err != nil {
			return nil, err
		}
		single.Add(res.N(), fms(i1), fms(a1))
		i2, a2, r2, err := precomputeRun(e, res, 20, L, 2)
		if err != nil {
			return nil, err
		}
		pre.Add(res.N(), fms(i2), fms(a2), fms(r2))
	}
	return []Table{single, pre}, nil
}

// Fig7Runs compares cumulative cost over six runs (Figure 7b): the single
// path repeats init+algo per run; the precompute path pays init+sweep once
// and then retrieves.
func Fig7Runs(e *Env) ([]Table, error) {
	res, err := e.MovieLensResult(8, 6955)
	if err != nil {
		return nil, err
	}
	L := 500
	if res.N() < L {
		L = res.N()
	}
	ks := []int{5, 8, 10, 12, 15, 20}
	t := Table{
		ID:     "fig7b",
		Title:  "Cumulative runtime (ms) over six runs (varying k)",
		Header: []string{"runs", "single cumulative ms", "precompute cumulative ms"},
		Notes:  fmt.Sprintf("N = %d (paper: ~7000); runs request k = %v", res.N(), ks),
	}
	// Single path.
	var singleCum []float64
	total := 0.0
	for _, k := range ks {
		i, a, err := singleRun(e, res, k, L, 2)
		if err != nil {
			return nil, err
		}
		total += i + a
		singleCum = append(singleCum, total)
	}
	// Precompute path.
	t0 := startTimer()
	s, err := qagview.NewSummarizer(res, L, e.buildOpts()...)
	if err != nil {
		return nil, err
	}
	store, err := s.Precompute(1, 20, []int{2}, e.preOpts()...)
	if err != nil {
		return nil, err
	}
	preBase := t0.ms()
	var preCum []float64
	total = preBase
	for _, k := range ks {
		t1 := startTimer()
		if _, err := store.Solution(k, 2); err != nil {
			return nil, err
		}
		total += t1.ms()
		preCum = append(preCum, total)
	}
	for i := range ks {
		t.Add(i+1, fms(singleCum[i]), fms(preCum[i]))
	}
	return []Table{t}, nil
}

func singleVsPrecompute(e *Env, id string, res *qagview.Result, Ls []int, note string) ([]Table, error) {
	single := Table{
		ID:     id + "-single",
		Title:  "Single run (ms) vs L",
		Header: []string{"L", "init ms", "algo ms"},
		Notes:  note,
	}
	pre := Table{
		ID:     id + "-pre",
		Title:  "With precomputation (ms) vs L",
		Header: []string{"L", "init ms", "algo ms", "retrieve ms"},
		Notes:  note,
	}
	for _, L := range Ls {
		if L > res.N() {
			L = res.N()
		}
		i1, a1, err := singleRun(e, res, 20, L, 2)
		if err != nil {
			return nil, err
		}
		single.Add(L, fms(i1), fms(a1))
		i2, a2, r2, err := precomputeRun(e, res, 20, L, 2)
		if err != nil {
			return nil, err
		}
		pre.Add(L, fms(i2), fms(a2), fms(r2))
	}
	return []Table{single, pre}, nil
}

// Fig7Par measures the parallel precompute fan-out: one full (k, D) guidance
// grid (the Figure 2 workload at Figure 7 scale) timed at increasing worker
// counts, verifying along the way that every parallelism level produces the
// sequential guidance series bit-for-bit.
func Fig7Par(e *Env) ([]Table, error) {
	res, err := e.MovieLensResult(8, 2087)
	if err != nil {
		return nil, err
	}
	L := 500
	if res.N() < L {
		L = res.N()
	}
	s, err := qagview.NewSummarizer(res, L, e.buildOpts()...)
	if err != nil {
		return nil, err
	}
	kMin, kMax := 1, 20
	ds := []int{1, 2, 3, 4, 5, 6}
	for len(ds) > 0 && ds[len(ds)-1] > s.M() {
		ds = ds[:len(ds)-1]
	}
	t := Table{
		ID:     "fig7par",
		Title:  fmt.Sprintf("Precompute grid (ms) vs worker count; k=[%d,%d], D=%v, L=%d", kMin, kMax, ds, L),
		Header: []string{"workers", "sweep ms", "speedup", "identical to sequential", "pooled reuses", "lca memo hit%"},
		Notes: fmt.Sprintf("N = %d; GOMAXPROCS = %d; the per-D replays are independent given the shared Fixed-Order state; "+
			"pooled reuses = replays served from the replay-state pool instead of allocating",
			res.N(), runtime.GOMAXPROCS(0)),
	}
	var baseMs float64
	var baseline *qagview.Guidance
	for _, workers := range []int{1, 2, 4, 8} {
		t0 := startTimer()
		store, err := s.Precompute(kMin, kMax, ds, qagview.Parallelism(workers))
		if err != nil {
			return nil, err
		}
		ms := t0.ms()
		rs := store.ReplayStats()
		g := store.Guidance()
		same := true
		if baseline == nil {
			baseline = g
			baseMs = ms
		} else {
			for _, d := range ds {
				a, b := baseline.Series[d], g.Series[d]
				for i := range a {
					if a[i] != b[i] {
						same = false
					}
				}
			}
		}
		hitPct := 0.0
		if probes := rs.LCAMemoHits + rs.LCAMemoMisses; probes > 0 {
			hitPct = 100 * float64(rs.LCAMemoHits) / float64(probes)
		}
		t.Add(workers, fms(ms), fmt.Sprintf("%.2fx", baseMs/ms), same,
			fmt.Sprintf("%d/%d", rs.PooledReuses, rs.Replays), fmt.Sprintf("%.1f", hitPct))
	}
	return []Table{t}, nil
}

// Fig8A ablates the cluster-generation/mapping optimization (Figure 8a):
// initialization time with and without it, varying L.
func Fig8A(e *Env) ([]Table, error) {
	res, err := e.MovieLensResult(8, 2087)
	if err != nil {
		return nil, err
	}
	space, err := lattice.NewSpace(res.GroupBy, res.Rows, res.Vals)
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:     "fig8a",
		Title:  "Initialization (ms) with vs without the cluster-mapping optimization",
		Header: []string{"L", "optimized ms", "naive ms", "optimized probes", "naive probes"},
		Notes:  fmt.Sprintf("N = %d; probes = tuple-cluster mapping operations", res.N()),
	}
	for _, L := range []int{200, 500, 1000} {
		if L > space.N() {
			L = space.N()
		}
		t0 := startTimer()
		_, optStats, err := lattice.BuildIndexStats(space, L, true, e.buildOpts()...)
		if err != nil {
			return nil, err
		}
		optMs := t0.ms()
		t1 := startTimer()
		_, naiveStats, err := lattice.BuildIndexStats(space, L, false, e.buildOpts()...)
		if err != nil {
			return nil, err
		}
		t.Add(L, fms(optMs), fms(t1.ms()), optStats.MappingOps, naiveStats.MappingOps)
	}
	return []Table{t}, nil
}

// Fig8B ablates Delta-Judgment (Figure 8b): Hybrid running time with and
// without it, varying L, k=20, D=2.
func Fig8B(e *Env) ([]Table, error) {
	res, err := e.MovieLensResult(8, 2087)
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:     "fig8b",
		Title:  "Algorithm time (ms) with vs without Delta-Judgment; k=20, D=2",
		Header: []string{"L", "with delta ms", "without delta ms", "value (delta)", "value (no delta)", "full evals (delta)", "full evals (no delta)", "lca memo hits"},
		Notes: fmt.Sprintf("N = %d; Delta-Judgment is exact up to floating-point "+
			"tie-breaking among equal-valued merges, so the two values may differ "+
			"in the last digits", res.N()),
	}
	for _, L := range []int{200, 500, 1000} {
		if L > res.N() {
			L = res.N()
		}
		s, err := qagview.NewSummarizer(res, L, e.buildOpts()...)
		if err != nil {
			return nil, err
		}
		p := qagview.Params{K: 20, L: L, D: 2}
		var withStats, withoutStats qagview.Stats
		t0 := startTimer()
		a, err := s.Summarize(qagview.Hybrid, p, qagview.WithDelta(true), qagview.WithStats(&withStats))
		if err != nil {
			return nil, err
		}
		withMs := t0.ms()
		t1 := startTimer()
		b, err := s.Summarize(qagview.Hybrid, p, qagview.WithDelta(false), qagview.WithStats(&withoutStats))
		if err != nil {
			return nil, err
		}
		for name, sol := range map[string]*qagview.Solution{"delta": a, "no-delta": b} {
			if err := s.Validate(p, sol); err != nil {
				return nil, fmt.Errorf("exp: %s solution infeasible at L=%d: %v", name, L, err)
			}
		}
		t.Add(L, fms(withMs), fms(t1.ms()), a.AvgValue(), b.AvgValue(),
			withStats.FullEvals, withoutStats.FullEvals, withStats.LCAMemoHits)
	}
	return []Table{t}, nil
}

// Fig9 is the TPC-DS scalability experiment (Figures 9a/9b): k=20, D=2,
// N≈47361, L in {500, 1000, 2000}.
func Fig9(e *Env) ([]Table, error) {
	res, err := e.TPCDSResult(7, 47361)
	if err != nil {
		return nil, err
	}
	return singleVsPrecompute(e, "fig9", res, []int{500, 1000, 2000},
		fmt.Sprintf("TPC-DS store_sales; k=20, D=2, N=%d (paper: 47361)", res.N()))
}
