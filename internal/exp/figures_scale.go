package exp

import (
	"fmt"
	"runtime"

	"qagview/internal/lattice"
)

// FigScale measures cluster-space build throughput as the answer-set size N
// grows: one BuildIndexStats per (N, worker count), with the per-phase
// breakdown (sequential cluster generation, the parallelized tuple→cluster
// coverage mapping, deterministic arena assembly) and the probe throughput
// of the mapping phase. The slice-keyed single-worker build of each N is the
// baseline, so the speedup column shows the combined effect of the packed
// uint64 keys and the phase-2 fan-out; every build is verified bit-identical
// by the lattice and summarize equivalence tests, so this table is purely
// about throughput.
func FigScale(e *Env) ([]Table, error) {
	t := Table{
		ID:    "figscale",
		Title: "Cluster-space build (ms) vs N and workers; L=500",
		Header: []string{"N", "clusters", "workers", "keys", "generate ms", "map ms",
			"assemble ms", "total ms", "speedup", "probes/ms"},
		Notes: fmt.Sprintf("GOMAXPROCS = %d; speedup is vs the slice-keyed 1-worker build of the same N; "+
			"probes/ms covers the mapping phase only", runtime.GOMAXPROCS(0)),
	}
	workerCounts := []int{1, 2, 4, 8}
	for _, target := range []int{927, 2087, 6955} {
		res, err := e.MovieLensResult(8, target)
		if err != nil {
			return nil, err
		}
		space, err := lattice.NewSpace(res.GroupBy, res.Rows, res.Vals)
		if err != nil {
			return nil, err
		}
		L := 500
		if space.N() < L {
			L = space.N()
		}
		t0 := startTimer()
		_, base, err := lattice.BuildIndexStats(space, L, true,
			lattice.WithSliceKeys(), lattice.BuildParallelism(1))
		if err != nil {
			return nil, err
		}
		baseMs := t0.ms()
		t.Add(space.N(), base.Generated, base.Workers, "slice",
			fms(base.GenerateMs), fms(base.MapMs), fms(base.AssembleMs),
			fms(baseMs), "1.00x", probesPerMs(base))
		for _, workers := range workerCounts {
			t1 := startTimer()
			_, st, err := lattice.BuildIndexStats(space, L, true, lattice.BuildParallelism(workers))
			if err != nil {
				return nil, err
			}
			ms := t1.ms()
			keys := "packed"
			if !st.PackedKeys {
				keys = "slice"
			}
			t.Add(space.N(), st.Generated, st.Workers, keys,
				fms(st.GenerateMs), fms(st.MapMs), fms(st.AssembleMs),
				fms(ms), fmt.Sprintf("%.2fx", baseMs/ms), probesPerMs(st))
		}
	}
	return []Table{t}, nil
}

// probesPerMs renders the mapping-phase throughput of a build.
func probesPerMs(st lattice.BuildStats) string {
	if st.MapMs <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", float64(st.MappingOps)/st.MapMs)
}
