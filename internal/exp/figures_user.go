package exp

import (
	"fmt"

	"qagview"
	"qagview/internal/baselines"
	"qagview/internal/dtree"
	"qagview/internal/lattice"
	"qagview/internal/summarize"
	"qagview/internal/userstudy"
)

// studySetup builds the lattice objects the user-study and baseline
// experiments need directly.
func studySetup(res *qagview.Result, L int) (*lattice.Space, *lattice.Index, error) {
	space, err := lattice.NewSpace(res.GroupBy, res.Rows, res.Vals)
	if err != nil {
		return nil, nil, err
	}
	ix, err := lattice.BuildIndex(space, L)
	if err != nil {
		return nil, nil, err
	}
	return space, ix, nil
}

// Table1 reproduces the user study summary (Tables 1/2) with simulated
// subjects: the varying-method, varying-k, and varying-D task groups.
func Table1(e *Env) ([]Table, error) {
	res, err := e.MovieLensResult(4, 300)
	if err != nil {
		return nil, err
	}
	if res.N() < 60 {
		return nil, fmt.Errorf("exp: need at least 60 groups for the user study, have %d", res.N())
	}
	cfg := userstudy.DefaultConfig()

	out := Table{
		ID:     "table1",
		Title:  "Simulated user study (paper Table 1)",
		Header: []string{"task group", "condition", "section", "time/question (s)", "T-accuracy", "TH-accuracy"},
		Notes:  fmt.Sprintf("%d simulated subjects; mean±std", cfg.Subjects),
	}
	emit := func(group, cond string, rep userstudy.Report) {
		for _, sec := range []userstudy.Section{userstudy.PatternsOnly, userstudy.MemoryOnly, userstudy.PatternsMembers} {
			o := rep[sec]
			out.Add(group, cond, sec.String(),
				fmt.Sprintf("%.1f±%.1f", o.TimeMean, o.TimeStd),
				fmt.Sprintf("%.3f±%.3f", o.TAcc, o.TAccStd),
				fmt.Sprintf("%.3f±%.3f", o.THAcc, o.THAccStd))
		}
	}

	ourRules := func(space *lattice.Space, ix *lattice.Index, k, L, D int) (userstudy.RuleSet, error) {
		sol, err := summarize.Hybrid(ix, summarize.Params{K: k, L: L, D: D})
		if err != nil {
			return userstudy.RuleSet{}, err
		}
		return userstudy.FromSolution(ix, sol), nil
	}

	// Varying-method: L=50, k=10, D=1; ours vs decision tree (height tuned).
	{
		L := 50
		space, ix, err := studySetup(res, L)
		if err != nil {
			return nil, err
		}
		ours, err := ourRules(space, ix, 10, L, 1)
		if err != nil {
			return nil, err
		}
		rep, err := userstudy.Simulate(space, L, ours, cfg)
		if err != nil {
			return nil, err
		}
		emit("varying-method", "our method", rep)

		labels := make([]bool, space.N())
		for i := range labels {
			labels[i] = i < L
		}
		tuples := make([][]int32, space.N())
		for i := range tuples {
			tuples[i] = space.Tuples[i]
		}
		tree, err := dtree.TuneK(tuples, labels, space.Vals, 10, 7)
		if err != nil {
			return nil, err
		}
		dt := userstudy.FromDecisionTree(space, tree)
		if len(dt.Rules) == 0 {
			return nil, fmt.Errorf("exp: decision tree has no positive leaves")
		}
		rep, err = userstudy.Simulate(space, L, dt, cfg)
		if err != nil {
			return nil, err
		}
		emit("varying-method", fmt.Sprintf("decision tree (h=%d)", tree.Height()), rep)
	}

	// Varying-k: L=30, D=1; k=5 vs k=10.
	{
		L := 30
		space, ix, err := studySetup(res, L)
		if err != nil {
			return nil, err
		}
		for _, k := range []int{5, 10} {
			rules, err := ourRules(space, ix, k, L, 1)
			if err != nil {
				return nil, err
			}
			rep, err := userstudy.Simulate(space, L, rules, cfg)
			if err != nil {
				return nil, err
			}
			emit("varying-k", fmt.Sprintf("k=%d", k), rep)
		}
	}

	// Varying-D: L=10, k=7; D=1 vs D=3.
	{
		L := 10
		space, ix, err := studySetup(res, L)
		if err != nil {
			return nil, err
		}
		for _, d := range []int{1, 3} {
			rules, err := ourRules(space, ix, 7, L, d)
			if err != nil {
				return nil, err
			}
			rep, err := userstudy.Simulate(space, L, rules, cfg)
			if err != nil {
				return nil, err
			}
			emit("varying-D", fmt.Sprintf("D=%d", d), rep)
		}
	}
	return []Table{out}, nil
}

// Fig16 reproduces the comparison-visualization experiment (Figures 16a and
// 16b): total weighted distance and band crossings under the matched
// (Hungarian) placement vs the default value-ordered placement, for
// consecutive solutions with D=2 and (k, (L1, L2)) in {(5,(8,10)),
// (10,(15,20)), (20,(30,40))}.
func Fig16(e *Env) ([]Table, error) {
	res, err := e.MovieLensResult(8, 2087)
	if err != nil {
		return nil, err
	}
	dist := Table{
		ID:     "fig16a",
		Title:  "Total distance: matched vs default placement",
		Header: []string{"k", "L1->L2", "matched", "default"},
	}
	cross := Table{
		ID:     "fig16b",
		Title:  "Band crossings: matched vs default placement",
		Header: []string{"k", "L1->L2", "matched", "default"},
	}
	cases := []struct{ k, l1, l2 int }{{5, 8, 10}, {10, 15, 20}, {20, 30, 40}}
	for _, c := range cases {
		s, err := qagview.NewSummarizer(res, c.l2)
		if err != nil {
			return nil, err
		}
		oldSol, err := s.Summarize(qagview.Hybrid, qagview.Params{K: c.k, L: c.l1, D: 2})
		if err != nil {
			return nil, err
		}
		newSol, err := s.Summarize(qagview.Hybrid, qagview.Params{K: c.k, L: c.l2, D: 2})
		if err != nil {
			return nil, err
		}
		diff, err := s.Compare(oldSol, newSol)
		if err != nil {
			return nil, err
		}
		opt, err := diff.OptimalOrder()
		if err != nil {
			return nil, err
		}
		def := diff.DefaultOrder()
		lbl := fmt.Sprintf("%d->%d", c.l1, c.l2)
		dist.Add(c.k, lbl, diff.TotalDistance(opt), diff.TotalDistance(def))
		cross.Add(c.k, lbl, diff.Crossings(opt), diff.Crossings(def))
	}
	return []Table{dist, cross}, nil
}

// AppendixA5 reproduces the qualitative baseline comparison on the running
// example (Appendix A.5): smart drill-down, diversified top-k, DisC
// diversity, and MMR outputs with k=4, D=2, L=10.
func AppendixA5(e *Env) ([]Table, error) {
	res, err := e.AdventureResultN(50)
	if err != nil {
		return nil, err
	}
	L := 10
	if res.N() < L {
		return nil, fmt.Errorf("exp: adventure result has only %d groups", res.N())
	}
	space, ix, err := studySetup(res, L)
	if err != nil {
		return nil, err
	}
	var tables []Table

	// Our method, for reference (Figure 1b analogue at these parameters).
	s, err := qagview.NewSummarizer(res, L)
	if err != nil {
		return nil, err
	}
	sol, err := s.Summarize(qagview.Hybrid, qagview.Params{K: 4, L: L, D: 2})
	if err != nil {
		return nil, err
	}
	ours := Table{
		ID:     "a5-ours",
		Title:  "Our method (k=4, L=10, D=2)",
		Header: append(append([]string{}, res.GroupBy...), "avg val", "size"),
	}
	for _, r := range s.Rows(sol) {
		cells := []any{}
		for _, c := range r.Pattern {
			cells = append(cells, c)
		}
		ours.Add(append(cells, r.Avg, r.Size)...)
	}
	tables = append(tables, ours)

	for _, scope := range []struct {
		name  string
		scope baselines.Scope
	}{{"top-10 elements", baselines.ScopeTopL}, {"all elements", baselines.ScopeAll}} {
		rules, err := baselines.SmartDrillDown(ix, 4, scope.scope)
		if err != nil {
			return nil, err
		}
		t := Table{
			ID:     "a5-smartdrilldown-" + string(scope.name[0:3]),
			Title:  "Smart drill-down on " + scope.name,
			Header: append(append([]string{}, res.GroupBy...), "avg score", "marginal", "weight"),
		}
		for _, r := range rules {
			cells := []any{}
			for _, c := range space.Render(r.Cluster.Pat) {
				cells = append(cells, c)
			}
			t.Add(append(cells, r.Val, r.MarginalCount, r.Weight)...)
		}
		tables = append(tables, t)
	}

	divk, err := baselines.DiversifiedTopKExact(space, L, 4, 2)
	if err != nil {
		return nil, err
	}
	dt := Table{
		ID:     "a5-divtopk",
		Title:  "Diversified top-k on top-10 elements (k=4, D=2)",
		Header: append(append([]string{}, res.GroupBy...), "score", "avg score (radius D-1)"),
	}
	for _, rank := range divk {
		cells := []any{}
		for _, c := range res.Rows[rank] {
			cells = append(cells, c)
		}
		dt.Add(append(cells, res.Vals[rank], baselines.NeighborhoodAvg(space, L, rank, 2))...)
	}
	tables = append(tables, dt)

	disc, err := baselines.DisC(space, L, 1)
	if err != nil {
		return nil, err
	}
	dc := Table{
		ID:     "a5-disc",
		Title:  "DisC diversity on top-10 elements (radius 1)",
		Header: append(append([]string{}, res.GroupBy...), "score", "avg score (radius D-1)"),
	}
	for _, rank := range disc {
		cells := []any{}
		for _, c := range res.Rows[rank] {
			cells = append(cells, c)
		}
		dc.Add(append(cells, res.Vals[rank], baselines.NeighborhoodAvg(space, L, rank, 2))...)
	}
	tables = append(tables, dc)

	mmr := Table{
		ID:     "a5-mmr",
		Title:  "MMR λ-parameterized selection on top-10 elements (k=4)",
		Header: append(append([]string{"lambda"}, res.GroupBy...), "score"),
	}
	for _, lambda := range []float64{0, 0.2, 0.5, 0.8, 1.0} {
		picks, err := baselines.MMR(space, L, 4, lambda)
		if err != nil {
			return nil, err
		}
		for _, rank := range picks {
			cells := []any{fmt.Sprintf("%.1f", lambda)}
			for _, c := range res.Rows[rank] {
				cells = append(cells, c)
			}
			mmr.Add(append(cells, res.Vals[rank])...)
		}
	}
	tables = append(tables, mmr)
	return tables, nil
}
