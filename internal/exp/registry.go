package exp

import (
	"fmt"
	"sort"
)

// Experiment is one registered table/figure regenerator.
type Experiment struct {
	ID    string
	Title string
	Run   func(*Env) ([]Table, error)
}

// Registry lists every experiment, keyed by the paper's figure/table ids.
func Registry() []Experiment {
	return []Experiment{
		{"fig1", "Running example: ranking, clusters, expansion (Figures 1a-1c)", Fig1},
		{"fig2", "Parameter-selection guidance series (Figure 2)", Fig2},
		{"fig5", "Brute force vs heuristics (Figures 5a/5b)", Fig5},
		{"fig6k", "Effect of size parameter k (Figures 6a/6b)", Fig6K},
		{"fig6l", "Effect of coverage parameter L (Figures 6c/6d)", Fig6L},
		{"fig6d", "Effect of distance parameter D (Figures 6e/6f)", Fig6D},
		{"fig6m", "Effect of attribute count m (Figures 6g/6h)", Fig6M},
		{"fig7k", "Precompute cost vs k (Figure 7a)", Fig7K},
		{"fig7runs", "Single vs precompute over six runs (Figure 7b)", Fig7Runs},
		{"fig7l", "Single vs precompute vs L (Figures 7c/7d)", Fig7L},
		{"fig7n", "Single vs precompute vs N (Figures 7e/7f)", Fig7N},
		{"fig7par", "Parallel precompute scaling over the (k, D) grid", Fig7Par},
		{"figscale", "Cluster-space build throughput vs N and workers", FigScale},
		{"fig8a", "Cluster generation/mapping ablation (Figure 8a)", Fig8A},
		{"fig8b", "Delta-Judgment ablation (Figure 8b)", Fig8B},
		{"fig9", "TPC-DS scalability (Figures 9a/9b)", Fig9},
		{"table1", "Simulated user study (Tables 1/2)", Table1},
		{"fig16", "Comparison-view placement quality (Figures 16a/16b)", Fig16},
		{"a5", "Qualitative baseline comparison (Appendix A.5)", AppendixA5},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, error) {
	for _, x := range Registry() {
		if x.ID == id {
			return x, nil
		}
	}
	ids := make([]string, 0)
	for _, x := range Registry() {
		ids = append(ids, x.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q (have %v)", id, ids)
}
