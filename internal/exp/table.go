package exp

import (
	"fmt"
	"strings"
)

// Table is one printable experiment output.
type Table struct {
	// ID is the experiment identifier ("fig5a", "table1", ...).
	ID string
	// Title describes the table in the paper's terms.
	Title string
	// Header and Rows hold the cells.
	Header []string
	Rows   [][]string
	// Notes records configuration details (dataset sizes, tuned thresholds).
	Notes string
}

// Add appends a row, stringifying the cells.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&sb, "note: %s\n", t.Notes)
	}
	return sb.String()
}
