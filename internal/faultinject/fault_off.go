//go:build !qagfault

package faultinject

// Enabled reports whether the live fault registry is compiled in.
const Enabled = false

// Crash is a no-op in production builds; under -tags qagfault it SIGKILLs
// the process when the named point is armed.
func Crash(string) {}

// Err returns nil in production builds; under -tags qagfault it returns the
// injected error when the named point is armed.
func Err(string) error { return nil }

// ShortWrite reports whether an armed short-write directive covers the
// point; always false in production builds.
func ShortWrite(string) bool { return false }
