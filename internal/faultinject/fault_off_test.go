//go:build !qagfault

package faultinject

import "testing"

// The production build must carry zero fault machinery: every hook is an
// inlineable no-op and Enabled is a compile-time false, so gated code is
// dead-stripped.
func TestDisabledHooksAreNoOps(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled must be false without the qagfault build tag")
	}
	Crash("wal.fsync.after") // must not kill the process
	if err := Err("wal.sync"); err != nil {
		t.Fatalf("Err returned %v in a production build", err)
	}
	if ShortWrite("wal.write") {
		t.Fatal("ShortWrite true in a production build")
	}
}
