//go:build qagfault

package faultinject

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
)

// Enabled reports whether the live fault registry is compiled in.
const Enabled = true

// directive is one armed fault: crash or error at a named point, firing on
// the nth hit (crashes) or from the nth hit on (errors).
type directive struct {
	point string
	crash bool
	errno error // for err: directives
	short bool  // err:<point>:short — partial write then failure
	nth   int64 // 1-based hit that fires
	hits  atomic.Int64
}

var (
	mu     sync.Mutex
	armed  []*directive
	parsed bool
)

func init() {
	if spec := os.Getenv("QAGFAULT"); spec != "" {
		if err := Arm(spec); err != nil {
			fmt.Fprintln(os.Stderr, "faultinject: bad QAGFAULT:", err)
			os.Exit(2)
		}
	}
}

// Arm parses and installs a comma-separated directive list, e.g.
// "crash:wal.fsync.after" or "err:wal.sync:enospc,crash:wal.prune.before:2".
// It replaces any previously armed set (including the one from QAGFAULT).
func Arm(spec string) error {
	var ds []*directive
	for _, raw := range strings.Split(spec, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		parts := strings.Split(raw, ":")
		d := &directive{nth: 1}
		switch parts[0] {
		case "crash":
			if len(parts) < 2 || len(parts) > 3 {
				return fmt.Errorf("want crash:<point>[:n], got %q", raw)
			}
			d.crash = true
			d.point = parts[1]
			if len(parts) == 3 {
				n, err := strconv.ParseInt(parts[2], 10, 64)
				if err != nil || n < 1 {
					return fmt.Errorf("bad hit count in %q", raw)
				}
				d.nth = n
			}
		case "err":
			if len(parts) < 3 || len(parts) > 4 {
				return fmt.Errorf("want err:<point>:<kind>[:n], got %q", raw)
			}
			d.point = parts[1]
			switch parts[2] {
			case "enospc":
				d.errno = syscall.ENOSPC
			case "eio":
				d.errno = syscall.EIO
			case "short":
				d.errno = fmt.Errorf("faultinject: injected short write: %w", syscall.ENOSPC)
				d.short = true
			default:
				return fmt.Errorf("unknown error kind %q in %q (want enospc, eio, or short)", parts[2], raw)
			}
			if len(parts) == 4 {
				n, err := strconv.ParseInt(parts[3], 10, 64)
				if err != nil || n < 1 {
					return fmt.Errorf("bad hit count in %q", raw)
				}
				d.nth = n
			}
		default:
			return fmt.Errorf("unknown directive %q (want crash: or err:)", raw)
		}
		ds = append(ds, d)
	}
	mu.Lock()
	armed = ds
	mu.Unlock()
	return nil
}

// Reset disarms every directive.
func Reset() { Arm("") }

func lookup(point string) []*directive {
	mu.Lock()
	defer mu.Unlock()
	var out []*directive
	for _, d := range armed {
		if d.point == point {
			out = append(out, d)
		}
	}
	return out
}

// Crash SIGKILLs the process if a crash directive for the point reaches its
// armed hit — the same no-cleanup death as kill -9, so nothing buffered
// survives that fsync did not already make durable.
func Crash(point string) {
	for _, d := range lookup(point) {
		if !d.crash {
			continue
		}
		if d.hits.Add(1) == d.nth {
			// SIGKILL cannot be caught: no deferred functions, no flushes.
			_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
			select {} // block until the (asynchronous) signal lands
		}
	}
}

// Err returns the injected error if an err directive for the point is at or
// past its armed hit; errors are sticky from that hit on, modeling a disk
// that stays full.
func Err(point string) error {
	for _, d := range lookup(point) {
		if d.crash {
			continue
		}
		if d.hits.Add(1) >= d.nth {
			return d.errno
		}
	}
	return nil
}

// ShortWrite reports whether the most recent Err for the point came from a
// short-write directive (the caller then writes a partial batch before
// returning the error, leaving a genuinely torn tail).
func ShortWrite(point string) bool {
	for _, d := range lookup(point) {
		if !d.crash && d.short && d.hits.Load() >= d.nth {
			return true
		}
	}
	return false
}
