//go:build qagfault

package faultinject

import (
	"errors"
	"syscall"
	"testing"
)

func TestArmParsing(t *testing.T) {
	t.Cleanup(Reset)
	for _, bad := range []string{
		"crash",                 // missing point
		"crash:p:0",             // hit count < 1
		"crash:p:1:2",           // too many fields
		"err:p",                 // missing kind
		"err:p:bogus",           // unknown kind
		"explode:p",             // unknown directive
		"crash:p:x",             // non-numeric hit
		"err:p:enospc:notanint", // non-numeric hit
	} {
		if err := Arm(bad); err == nil {
			t.Errorf("Arm(%q) accepted a malformed spec", bad)
		}
	}
	if err := Arm("err:a.b:enospc, crash:c.d:3 ,"); err != nil {
		t.Fatalf("Arm rejected a valid spec: %v", err)
	}
}

func TestErrStickyFromNthHit(t *testing.T) {
	t.Cleanup(Reset)
	if err := Arm("err:p:enospc:3"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if err := Err("p"); err != nil {
			t.Fatalf("hit %d fired early: %v", i, err)
		}
	}
	for i := 3; i <= 5; i++ {
		if err := Err("p"); !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("hit %d: got %v, want sticky ENOSPC", i, err)
		}
	}
	if Err("other") != nil {
		t.Fatal("unarmed point fired")
	}
}

func TestShortWriteFlag(t *testing.T) {
	t.Cleanup(Reset)
	if err := Arm("err:w:short"); err != nil {
		t.Fatal(err)
	}
	if ShortWrite("w") {
		t.Fatal("ShortWrite true before the first Err hit")
	}
	if err := Err("w"); err == nil {
		t.Fatal("short directive returned no error")
	}
	if !ShortWrite("w") {
		t.Fatal("ShortWrite false after the directive fired")
	}
	Reset()
	if ShortWrite("w") {
		t.Fatal("ShortWrite survived Reset")
	}
}
