// Package faultinject is the deterministic fault-injection registry behind
// the crash-recovery harness (docs/FAULTS.md). Production binaries compile
// the no-op half (fault_off.go): every Crash and Err site reduces to nothing
// and the registry costs zero. Building with -tags qagfault swaps in the
// live half (fault_on.go), which arms named fault points from the QAGFAULT
// environment variable (or Arm, for in-process tests):
//
//	QAGFAULT=crash:wal.fsync.after        SIGKILL the process at the point
//	QAGFAULT=crash:wal.fsync.after:3      ... on its 3rd hit
//	QAGFAULT=err:wal.sync:enospc          inject ENOSPC at the point
//	QAGFAULT=err:wal.write:short          inject a short write + error
//
// Directives are comma-separated. Crash means SIGKILL — no deferred
// functions, no buffered flushes — so an armed run is byte-for-byte the
// kill -9 the recovery path must survive.
package faultinject

// Registered crash points, in the order the durable write path reaches
// them. The qagfault harness iterates this list and asserts crash-recovery
// bit-identity at every entry; adding a fault site means adding its name
// here (and to docs/FAULTS.md) so the harness covers it.
const (
	// CrashWALAppendStaged fires with the record staged in the in-memory
	// commit buffer, before any byte reaches the segment file: the record is
	// lost, and it was never acked.
	CrashWALAppendStaged = "wal.append.staged"
	// CrashWALFsyncBefore fires with the batch written to the segment file
	// but not yet fsynced: the records may or may not survive, and none were
	// acked.
	CrashWALFsyncBefore = "wal.fsync.before"
	// CrashWALFsyncAfter fires with the batch durable but the acks not yet
	// delivered: recovery must apply the records even though no client saw a
	// 2xx.
	CrashWALFsyncAfter = "wal.fsync.after"
	// CrashWALRotateSealed fires during checkpoint with the old segment
	// sealed and the new one created, before any table snapshot is written.
	CrashWALRotateSealed = "wal.rotate.sealed"
	// CrashSnapshotRenameBefore fires with a table snapshot written and
	// fsynced under its temp name, before the atomic rename publishes it.
	CrashSnapshotRenameBefore = "snapshot.rename.before"
	// CrashSnapshotRenameAfter fires with the table snapshot published,
	// before the WAL segments it covers are pruned.
	CrashSnapshotRenameAfter = "snapshot.rename.after"
	// CrashWALPruneBefore fires with every table snapshot durable, before
	// the sealed segments are deleted.
	CrashWALPruneBefore = "wal.prune.before"
	// CrashWALPruneAfter fires with the sealed segments deleted — the
	// checkpoint fully committed.
	CrashWALPruneAfter = "wal.prune.after"
)

// CrashPoints enumerates every registered crash point for harnesses that
// iterate them.
var CrashPoints = []string{
	CrashWALAppendStaged,
	CrashWALFsyncBefore,
	CrashWALFsyncAfter,
	CrashWALRotateSealed,
	CrashSnapshotRenameBefore,
	CrashSnapshotRenameAfter,
	CrashWALPruneBefore,
	CrashWALPruneAfter,
}

// Registered error-injection points (err: directives).
const (
	// ErrWALWrite makes the segment write deliver roughly half the batch and
	// then fail — a torn tail the next open must truncate.
	ErrWALWrite = "wal.write"
	// ErrWALSync makes the batch fsync fail with ENOSPC; the log goes
	// fail-stop (sticky broken) because a failed fsync may have dropped
	// arbitrary dirty pages.
	ErrWALSync = "wal.sync"
	// ErrSnapshotWrite makes a table-snapshot write fail before the rename;
	// the checkpoint aborts and the WAL keeps covering the table.
	ErrSnapshotWrite = "snapshot.write"
)
