// Package hierarchy implements the concept-hierarchy extension of Appendix
// A.6 of the paper: per-attribute trees whose internal nodes are range or
// category generalizations of the leaf values, with O(log n) lowest-common-
// ancestor queries via binary lifting (the paper cites Harel-Tarjan-style
// fast LCA). Merging two values under a hierarchy generalizes to their LCA
// label instead of collapsing straight to '*', yielding range summaries such
// as "[20, 40)" for ages.
package hierarchy

import (
	"fmt"
)

// Node is an input tree node; Label must be unique within the tree.
type Node struct {
	Label    string
	Children []*Node
}

// Tree is a preprocessed hierarchy supporting O(log n) LCA queries.
type Tree struct {
	labels   []string
	parent   []int
	depth    []int
	children [][]int
	byLabel  map[string]int
	up       [][]int // binary lifting table: up[j][v] = 2^j-th ancestor
}

// New validates and preprocesses a hierarchy rooted at root.
func New(root *Node) (*Tree, error) {
	if root == nil {
		return nil, fmt.Errorf("hierarchy: nil root")
	}
	t := &Tree{byLabel: make(map[string]int)}
	var add func(n *Node, parent int, depth int) error
	add = func(n *Node, parent, depth int) error {
		if n.Label == "" {
			return fmt.Errorf("hierarchy: empty label under %q", labelOf(t, parent))
		}
		if _, dup := t.byLabel[n.Label]; dup {
			return fmt.Errorf("hierarchy: duplicate label %q", n.Label)
		}
		id := len(t.labels)
		t.byLabel[n.Label] = id
		t.labels = append(t.labels, n.Label)
		t.parent = append(t.parent, parent)
		t.depth = append(t.depth, depth)
		t.children = append(t.children, nil)
		if parent >= 0 {
			t.children[parent] = append(t.children[parent], id)
		}
		for _, c := range n.Children {
			if err := add(c, id, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := add(root, -1, 0); err != nil {
		return nil, err
	}
	// Binary lifting table.
	levels := 1
	for 1<<levels < len(t.labels) {
		levels++
	}
	t.up = make([][]int, levels+1)
	t.up[0] = append([]int(nil), t.parent...)
	for j := 1; j <= levels; j++ {
		t.up[j] = make([]int, len(t.labels))
		for v := range t.labels {
			mid := t.up[j-1][v]
			if mid < 0 {
				t.up[j][v] = -1
			} else {
				t.up[j][v] = t.up[j-1][mid]
			}
		}
	}
	return t, nil
}

func labelOf(t *Tree, id int) string {
	if id < 0 {
		return "<root>"
	}
	return t.labels[id]
}

// Len returns the number of nodes.
func (t *Tree) Len() int { return len(t.labels) }

// Root returns the root label.
func (t *Tree) Root() string { return t.labels[0] }

// Contains reports whether label is a node of the hierarchy.
func (t *Tree) Contains(label string) bool {
	_, ok := t.byLabel[label]
	return ok
}

// IsLeaf reports whether label is a leaf (a concrete attribute value).
func (t *Tree) IsLeaf(label string) (bool, error) {
	id, ok := t.byLabel[label]
	if !ok {
		return false, fmt.Errorf("hierarchy: unknown label %q", label)
	}
	return len(t.children[id]) == 0, nil
}

// Depth returns the depth of the labeled node (root = 0).
func (t *Tree) Depth(label string) (int, error) {
	id, ok := t.byLabel[label]
	if !ok {
		return 0, fmt.Errorf("hierarchy: unknown label %q", label)
	}
	return t.depth[id], nil
}

// lcaID computes the LCA of two node ids by binary lifting.
func (t *Tree) lcaID(a, b int) int {
	if t.depth[a] < t.depth[b] {
		a, b = b, a
	}
	diff := t.depth[a] - t.depth[b]
	for j := 0; diff > 0; j++ {
		if diff&1 == 1 {
			a = t.up[j][a]
		}
		diff >>= 1
	}
	if a == b {
		return a
	}
	for j := len(t.up) - 1; j >= 0; j-- {
		if t.up[j][a] != t.up[j][b] {
			a = t.up[j][a]
			b = t.up[j][b]
		}
	}
	return t.parent[a]
}

// LCA returns the label of the lowest common ancestor of two labels.
func (t *Tree) LCA(a, b string) (string, error) {
	ia, ok := t.byLabel[a]
	if !ok {
		return "", fmt.Errorf("hierarchy: unknown label %q", a)
	}
	ib, ok := t.byLabel[b]
	if !ok {
		return "", fmt.Errorf("hierarchy: unknown label %q", b)
	}
	return t.labels[t.lcaID(ia, ib)], nil
}

// Generalize returns the label of the lowest node covering all the given
// labels (the range to display when merging cluster values; Appendix A.6's
// union-of-leaves operation).
func (t *Tree) Generalize(labels ...string) (string, error) {
	if len(labels) == 0 {
		return "", fmt.Errorf("hierarchy: no labels to generalize")
	}
	cur, ok := t.byLabel[labels[0]]
	if !ok {
		return "", fmt.Errorf("hierarchy: unknown label %q", labels[0])
	}
	for _, l := range labels[1:] {
		id, ok := t.byLabel[l]
		if !ok {
			return "", fmt.Errorf("hierarchy: unknown label %q", l)
		}
		cur = t.lcaID(cur, id)
	}
	return t.labels[cur], nil
}

// Covers reports whether ancestor's subtree contains label.
func (t *Tree) Covers(ancestor, label string) (bool, error) {
	ia, ok := t.byLabel[ancestor]
	if !ok {
		return false, fmt.Errorf("hierarchy: unknown label %q", ancestor)
	}
	ib, ok := t.byLabel[label]
	if !ok {
		return false, fmt.Errorf("hierarchy: unknown label %q", label)
	}
	return t.lcaID(ia, ib) == ia, nil
}

// NumericRanges builds a range hierarchy over the integers [lo, hi): leaves
// are individual values, and each internal level groups `fanout` children
// into a "[a, b)" range node, as in the paper's Figure 11 age example.
func NumericRanges(lo, hi, fanout int) (*Tree, error) {
	if hi <= lo {
		return nil, fmt.Errorf("hierarchy: empty range [%d, %d)", lo, hi)
	}
	if fanout < 2 {
		return nil, fmt.Errorf("hierarchy: fanout = %d, want >= 2", fanout)
	}
	// Start with leaf nodes for each value.
	level := make([]*Node, 0, hi-lo)
	starts := make([]int, 0, hi-lo)
	ends := make([]int, 0, hi-lo)
	for v := lo; v < hi; v++ {
		level = append(level, &Node{Label: fmt.Sprintf("%d", v)})
		starts = append(starts, v)
		ends = append(ends, v+1)
	}
	for len(level) > 1 {
		var next []*Node
		var ns, ne []int
		for i := 0; i < len(level); i += fanout {
			j := i + fanout
			if j > len(level) {
				j = len(level)
			}
			if j-i == 1 && len(next) > 0 {
				// Fold a trailing singleton into the previous group to avoid
				// a redundant single-child chain.
				prev := next[len(next)-1]
				prev.Children = append(prev.Children, level[i])
				ne[len(ne)-1] = ends[i]
				prev.Label = fmt.Sprintf("[%d, %d)", ns[len(ns)-1], ne[len(ne)-1])
				continue
			}
			n := &Node{
				Label:    fmt.Sprintf("[%d, %d)", starts[i], ends[j-1]),
				Children: append([]*Node(nil), level[i:j]...),
			}
			next = append(next, n)
			ns = append(ns, starts[i])
			ne = append(ne, ends[j-1])
		}
		level, starts, ends = next, ns, ne
	}
	return New(level[0])
}
