package hierarchy

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

func ageTree(t *testing.T) *Tree {
	t.Helper()
	// The paper's Figure 11 example: [0,60) -> [0,20), [20,40), [40,60) ->
	// decade leaves.
	root := &Node{Label: "[0, 60)", Children: []*Node{
		{Label: "[0, 20)", Children: []*Node{{Label: "0s"}, {Label: "10s"}}},
		{Label: "[20, 40)", Children: []*Node{{Label: "20s"}, {Label: "30s"}}},
		{Label: "[40, 60)", Children: []*Node{{Label: "40s"}, {Label: "50s"}}},
	}}
	tr, err := New(root)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil root accepted")
	}
	if _, err := New(&Node{Label: ""}); err == nil {
		t.Error("empty label accepted")
	}
	if _, err := New(&Node{Label: "a", Children: []*Node{{Label: "a"}}}); err == nil {
		t.Error("duplicate label accepted")
	}
}

func TestLCAExamples(t *testing.T) {
	tr := ageTree(t)
	cases := []struct{ a, b, want string }{
		{"20s", "30s", "[20, 40)"},
		{"20s", "50s", "[0, 60)"},
		{"0s", "0s", "0s"},
		{"[20, 40)", "30s", "[20, 40)"},
		{"[0, 20)", "[40, 60)", "[0, 60)"},
	}
	for _, c := range cases {
		got, err := tr.LCA(c.a, c.b)
		if err != nil {
			t.Fatalf("LCA(%s, %s): %v", c.a, c.b, err)
		}
		if got != c.want {
			t.Errorf("LCA(%s, %s) = %s, want %s", c.a, c.b, got, c.want)
		}
	}
	if _, err := tr.LCA("20s", "nope"); err == nil {
		t.Error("unknown label accepted")
	}
}

func TestGeneralize(t *testing.T) {
	tr := ageTree(t)
	got, err := tr.Generalize("20s", "30s")
	if err != nil || got != "[20, 40)" {
		t.Errorf("Generalize = %q, %v", got, err)
	}
	got, err = tr.Generalize("0s", "20s", "50s")
	if err != nil || got != "[0, 60)" {
		t.Errorf("Generalize three = %q, %v", got, err)
	}
	if _, err := tr.Generalize(); err == nil {
		t.Error("empty generalize accepted")
	}
}

func TestCoversAndLeaves(t *testing.T) {
	tr := ageTree(t)
	if ok, _ := tr.Covers("[20, 40)", "20s"); !ok {
		t.Error("range should cover its leaf")
	}
	if ok, _ := tr.Covers("[20, 40)", "50s"); ok {
		t.Error("range covers foreign leaf")
	}
	if leaf, _ := tr.IsLeaf("20s"); !leaf {
		t.Error("20s should be a leaf")
	}
	if leaf, _ := tr.IsLeaf("[0, 60)"); leaf {
		t.Error("root should not be a leaf")
	}
	if d, _ := tr.Depth("20s"); d != 2 {
		t.Errorf("depth = %d", d)
	}
	if tr.Root() != "[0, 60)" {
		t.Errorf("root = %q", tr.Root())
	}
	if !tr.Contains("30s") || tr.Contains("70s") {
		t.Error("Contains wrong")
	}
}

// TestLCAMatchesNaive checks binary lifting against parent-walking on random
// trees.
func TestLCAMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(60)
		nodes := make([]*Node, n)
		parents := make([]int, n)
		nodes[0] = &Node{Label: "n0"}
		parents[0] = -1
		for i := 1; i < n; i++ {
			nodes[i] = &Node{Label: fmt.Sprintf("n%d", i)}
			p := rng.Intn(i)
			parents[i] = p
			nodes[p].Children = append(nodes[p].Children, nodes[i])
		}
		tr, err := New(nodes[0])
		if err != nil {
			t.Fatal(err)
		}
		naive := func(a, b int) int {
			seen := map[int]bool{}
			for x := a; x >= 0; x = parents[x] {
				seen[x] = true
			}
			for y := b; y >= 0; y = parents[y] {
				if seen[y] {
					return y
				}
			}
			return 0
		}
		for q := 0; q < 50; q++ {
			a, b := rng.Intn(n), rng.Intn(n)
			got, err := tr.LCA(fmt.Sprintf("n%d", a), fmt.Sprintf("n%d", b))
			if err != nil {
				t.Fatal(err)
			}
			want := fmt.Sprintf("n%d", naive(a, b))
			if got != want {
				t.Fatalf("trial %d: LCA(n%d, n%d) = %s, want %s", trial, a, b, got, want)
			}
		}
	}
}

func TestNumericRanges(t *testing.T) {
	tr, err := NumericRanges(0, 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Every leaf value must be present and covered by the root.
	for v := 0; v < 60; v++ {
		lbl := strconv.Itoa(v)
		if !tr.Contains(lbl) {
			t.Fatalf("missing leaf %s", lbl)
		}
		if ok, _ := tr.Covers(tr.Root(), lbl); !ok {
			t.Fatalf("root does not cover %s", lbl)
		}
	}
	// Generalizing a tight pair stays below the root.
	g, err := tr.Generalize("20", "21")
	if err != nil {
		t.Fatal(err)
	}
	if g == tr.Root() {
		t.Errorf("generalize(20, 21) jumped to root")
	}
	if !strings.HasPrefix(g, "[") {
		t.Errorf("expected range label, got %q", g)
	}
	if _, err := NumericRanges(5, 5, 2); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := NumericRanges(0, 10, 1); err == nil {
		t.Error("fanout 1 accepted")
	}
}

func TestNumericRangesSingleValue(t *testing.T) {
	tr, err := NumericRanges(7, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 || tr.Root() != "7" {
		t.Errorf("single-value tree: len=%d root=%q", tr.Len(), tr.Root())
	}
}
