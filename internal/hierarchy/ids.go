package hierarchy

import "fmt"

// The ID-based API below serves the hierarchical summarization extension
// (internal/hisummarize), which stores patterns as dense node ids instead of
// labels. Node ids are assigned in preorder; the root is always id 0.

// IDOf returns the node id of a label.
func (t *Tree) IDOf(label string) (int, bool) {
	id, ok := t.byLabel[label]
	return id, ok
}

// Label returns the label of a node id. It panics on out-of-range ids.
func (t *Tree) Label(id int) string { return t.labels[id] }

// RootID returns the id of the root node.
func (t *Tree) RootID() int { return 0 }

// ParentID returns the parent of id, or -1 for the root.
func (t *Tree) ParentID(id int) int { return t.parent[id] }

// DepthID returns the depth of id (root = 0).
func (t *Tree) DepthID(id int) int { return t.depth[id] }

// IsLeafID reports whether id has no children.
func (t *Tree) IsLeafID(id int) bool { return len(t.children[id]) == 0 }

// LCAIDs returns the lowest common ancestor id of two node ids.
func (t *Tree) LCAIDs(a, b int) (int, error) {
	if a < 0 || a >= len(t.labels) || b < 0 || b >= len(t.labels) {
		return 0, fmt.Errorf("hierarchy: node id out of range (%d, %d)", a, b)
	}
	return t.lcaID(a, b), nil
}

// CoversID reports whether anc is an ancestor of (or equal to) desc.
func (t *Tree) CoversID(anc, desc int) bool {
	if anc < 0 || desc < 0 {
		return false
	}
	if t.depth[anc] > t.depth[desc] {
		return false
	}
	return t.lcaID(anc, desc) == anc
}

// PathToRoot returns the node ids from id up to the root, inclusive, in
// leaf-to-root order.
func (t *Tree) PathToRoot(id int) []int {
	var out []int
	for v := id; v >= 0; v = t.parent[v] {
		out = append(out, v)
	}
	return out
}

// MaxDepth returns the maximum node depth in the tree.
func (t *Tree) MaxDepth() int {
	max := 0
	for _, d := range t.depth {
		if d > max {
			max = d
		}
	}
	return max
}

// Flat builds the degenerate two-level hierarchy for a categorical
// attribute: a root labeled rootLabel (conventionally "*") with one leaf per
// distinct value. It is the hierarchy under which the extension's semantics
// collapse to the paper's plain *-patterns.
func Flat(rootLabel string, values []string) (*Tree, error) {
	root := &Node{Label: rootLabel}
	seen := map[string]bool{}
	for _, v := range values {
		if seen[v] {
			continue
		}
		seen[v] = true
		root.Children = append(root.Children, &Node{Label: v})
	}
	if len(root.Children) == 0 {
		return nil, fmt.Errorf("hierarchy: no values for flat hierarchy %q", rootLabel)
	}
	return New(root)
}
