package hisummarize

import (
	"fmt"
	"sort"
)

// Params are the summarization parameters, as in the base framework.
type Params struct {
	K, L, D int
}

// Validate checks the parameters against an index.
func (p Params) Validate(ix *Index) error {
	if p.K < 1 {
		return fmt.Errorf("hisummarize: k = %d, want >= 1", p.K)
	}
	if p.L < 1 || p.L > ix.L {
		return fmt.Errorf("hisummarize: L = %d out of range [1, %d]", p.L, ix.L)
	}
	if p.D < 0 || p.D > ix.Space.M() {
		return fmt.Errorf("hisummarize: D = %d out of range [0, %d]", p.D, ix.Space.M())
	}
	return nil
}

// Solution is a feasible hierarchical cluster set.
type Solution struct {
	Clusters []*Cluster
	Covered  []int32
	Sum      float64
}

// AvgValue is the Max-Avg objective over covered tuples.
func (s *Solution) AvgValue() float64 {
	if len(s.Covered) == 0 {
		return 0
	}
	return s.Sum / float64(len(s.Covered))
}

// Size returns the number of clusters.
func (s *Solution) Size() int { return len(s.Clusters) }

// Validate checks all feasibility conditions of Definition 4.1 under the
// hierarchical semantics.
func Validate(ix *Index, p Params, sol *Solution) error {
	if err := p.Validate(ix); err != nil {
		return err
	}
	if len(sol.Clusters) == 0 {
		return fmt.Errorf("hisummarize: empty solution")
	}
	if len(sol.Clusters) > p.K {
		return fmt.Errorf("hisummarize: %d clusters exceed k = %d", len(sol.Clusters), p.K)
	}
	covered := make(map[int32]bool)
	for _, c := range sol.Clusters {
		for _, t := range c.Cov {
			covered[t] = true
		}
	}
	for rank := 0; rank < p.L; rank++ {
		if !covered[int32(rank)] {
			return fmt.Errorf("hisummarize: rank %d not covered", rank+1)
		}
	}
	for i, a := range sol.Clusters {
		for _, b := range sol.Clusters[i+1:] {
			if d := ix.Space.Distance(a.Pat, b.Pat); d < p.D {
				return fmt.Errorf("hisummarize: clusters %v and %v at distance %d < %d",
					ix.Space.FormatPattern(a.Pat), ix.Space.FormatPattern(b.Pat), d, p.D)
			}
			if ix.Space.Comparable(a.Pat, b.Pat) {
				return fmt.Errorf("hisummarize: clusters %v and %v comparable",
					ix.Space.FormatPattern(a.Pat), ix.Space.FormatPattern(b.Pat))
			}
		}
	}
	return nil
}

// workset is the greedy working state; unlike the flat implementation it
// evaluates marginals by direct scans (the hierarchy spaces the appendix
// targets are small enough that Delta-Judgment is unnecessary).
type workset struct {
	ix       *Index
	clusters map[int32]*Cluster
	covered  map[int32]bool
	sum      float64
	cnt      int
}

func newWorkset(ix *Index) *workset {
	return &workset{ix: ix, clusters: map[int32]*Cluster{}, covered: map[int32]bool{}}
}

func (ws *workset) size() int { return len(ws.clusters) }

func (ws *workset) evalAdd(c *Cluster) float64 {
	dsum, dcnt := 0.0, 0
	for _, t := range c.Cov {
		if !ws.covered[t] {
			dsum += ws.ix.Space.Vals[t]
			dcnt++
		}
	}
	if ws.cnt+dcnt == 0 {
		return 0
	}
	return (ws.sum + dsum) / float64(ws.cnt+dcnt)
}

func (ws *workset) add(c *Cluster) {
	for id, old := range ws.clusters {
		if id != c.ID && ws.ix.Space.Covers(c.Pat, old.Pat) {
			delete(ws.clusters, id)
		}
	}
	ws.clusters[c.ID] = c
	for _, t := range c.Cov {
		if !ws.covered[t] {
			ws.covered[t] = true
			ws.sum += ws.ix.Space.Vals[t]
			ws.cnt++
		}
	}
}

func (ws *workset) sortedIDs() []int32 {
	ids := make([]int32, 0, len(ws.clusters))
	for id := range ws.clusters {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (ws *workset) solution() *Solution {
	sol := &Solution{}
	for _, id := range ws.sortedIDs() {
		sol.Clusters = append(sol.Clusters, ws.clusters[id])
	}
	seen := map[int32]bool{}
	for _, c := range sol.Clusters {
		for _, t := range c.Cov {
			if !seen[t] {
				seen[t] = true
				sol.Covered = append(sol.Covered, t)
				sol.Sum += ws.ix.Space.Vals[t]
			}
		}
	}
	sort.Slice(sol.Covered, func(a, b int) bool { return sol.Covered[a] < sol.Covered[b] })
	sort.SliceStable(sol.Clusters, func(a, b int) bool {
		return sol.Clusters[a].Avg() > sol.Clusters[b].Avg()
	})
	return sol
}

// bestMerge finds the pair of current clusters (restricted by filter on
// their distance) whose LCA maximizes the tentative objective.
func (ws *workset) bestMerge(filter func(d int) bool) (*Cluster, bool, error) {
	ids := ws.sortedIDs()
	var best *Cluster
	bestVal := 0.0
	for i, a := range ids {
		ca := ws.clusters[a]
		for _, b := range ids[i+1:] {
			cb := ws.clusters[b]
			if filter != nil && !filter(ws.ix.Space.Distance(ca.Pat, cb.Pat)) {
				continue
			}
			lca, err := ws.ix.LCACluster(ca, cb)
			if err != nil {
				return nil, false, err
			}
			v := ws.evalAdd(lca)
			if best == nil || v > bestVal {
				best = lca
				bestVal = v
			}
		}
	}
	return best, best != nil, nil
}

// phases runs distance enforcement then size reduction (Algorithm 1).
func (ws *workset) phases(p Params) error {
	for {
		lca, ok, err := ws.bestMerge(func(d int) bool { return d < p.D })
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		ws.add(lca)
	}
	for ws.size() > p.K {
		lca, ok, err := ws.bestMerge(nil)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		ws.add(lca)
	}
	return nil
}

// BottomUp is Algorithm 1 over hierarchical patterns.
func BottomUp(ix *Index, p Params) (*Solution, error) {
	if err := p.Validate(ix); err != nil {
		return nil, err
	}
	ws := newWorkset(ix)
	for rank := 0; rank < p.L; rank++ {
		ws.add(ix.Singleton(rank))
	}
	if err := ws.phases(p); err != nil {
		return nil, err
	}
	return ws.solution(), nil
}

// FixedOrder is Algorithm 3 over hierarchical patterns.
func FixedOrder(ix *Index, p Params) (*Solution, error) {
	if err := p.Validate(ix); err != nil {
		return nil, err
	}
	ws := newWorkset(ix)
	if err := fixedOrderPhase(ws, p); err != nil {
		return nil, err
	}
	return ws.solution(), nil
}

func fixedOrderPhase(ws *workset, p Params) error {
	for rank := 0; rank < p.L; rank++ {
		if ws.covered[int32(rank)] {
			continue
		}
		cand := ws.ix.Singleton(rank)
		subsumed := false
		for _, c := range ws.clusters {
			if ws.ix.Space.Covers(c.Pat, cand.Pat) {
				subsumed = true
				break
			}
		}
		if subsumed {
			continue
		}
		if ws.size() < p.K {
			minDist := ws.ix.Space.M() + 1
			for _, c := range ws.clusters {
				if d := ws.ix.Space.Distance(cand.Pat, c.Pat); d < minDist {
					minDist = d
				}
			}
			if ws.size() == 0 || minDist >= p.D {
				ws.add(cand)
				continue
			}
			if err := mergeBestPartner(ws, cand, func(d int) bool { return d < p.D }); err != nil {
				return err
			}
			continue
		}
		if err := mergeBestPartner(ws, cand, nil); err != nil {
			return err
		}
	}
	return nil
}

func mergeBestPartner(ws *workset, cand *Cluster, filter func(d int) bool) error {
	var best *Cluster
	bestVal := 0.0
	for _, id := range ws.sortedIDs() {
		c := ws.clusters[id]
		if filter != nil && !filter(ws.ix.Space.Distance(cand.Pat, c.Pat)) {
			continue
		}
		lca, err := ws.ix.LCACluster(c, cand)
		if err != nil {
			return err
		}
		v := ws.evalAdd(lca)
		if best == nil || v > bestVal {
			best = lca
			bestVal = v
		}
	}
	if best == nil {
		return fmt.Errorf("hisummarize: no merge partner")
	}
	ws.add(best)
	return nil
}

// Hybrid runs Fixed-Order with a doubled candidate pool, then the Bottom-Up
// phases (Section 5.3).
func Hybrid(ix *Index, p Params) (*Solution, error) {
	if err := p.Validate(ix); err != nil {
		return nil, err
	}
	ws := newWorkset(ix)
	pool := p
	pool.K = 2 * p.K
	if err := fixedOrderPhase(ws, pool); err != nil {
		return nil, err
	}
	if err := ws.phases(p); err != nil {
		return nil, err
	}
	return ws.solution(), nil
}
