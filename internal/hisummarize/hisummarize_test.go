package hisummarize

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"qagview/internal/hierarchy"
	"qagview/internal/lattice"
	"qagview/internal/summarize"
)

// ageSpace builds a space with a real age-range hierarchy on the first
// attribute and flat semantics elsewhere, with high values concentrated in
// ages 20-39.
func ageSpace(t *testing.T, n int, seed int64) *Space {
	t.Helper()
	ageTree, err := hierarchy.NumericRanges(10, 70, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]string, 0, n)
	vals := make([]float64, 0, n)
	seen := map[string]bool{}
	for len(rows) < n {
		age := 10 + rng.Intn(60)
		g := []string{"M", "F"}[rng.Intn(2)]
		occ := fmt.Sprintf("occ%d", rng.Intn(6))
		key := fmt.Sprintf("%d|%s|%s", age, g, occ)
		if seen[key] {
			continue
		}
		seen[key] = true
		rows = append(rows, []string{fmt.Sprintf("%d", age), g, occ})
		v := rng.Float64()
		if age >= 20 && age < 40 {
			v += 1.5
		}
		vals = append(vals, v)
	}
	s, err := NewSpace([]string{"age", "gender", "occupation"},
		[]*hierarchy.Tree{ageTree, nil, nil}, rows, vals)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSpaceValidation(t *testing.T) {
	if _, err := NewSpace(nil, nil, [][]string{{"a"}}, []float64{1}); err == nil {
		t.Error("no attrs accepted")
	}
	if _, err := NewSpace([]string{"a"}, make([]*hierarchy.Tree, 2), [][]string{{"x"}}, []float64{1}); err == nil {
		t.Error("tree arity mismatch accepted")
	}
	if _, err := NewSpace([]string{"a"}, nil, nil, nil); err == nil {
		t.Error("empty rows accepted")
	}
	tree, err := hierarchy.NumericRanges(0, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSpace([]string{"a"}, []*hierarchy.Tree{tree}, [][]string{{"99"}}, []float64{1}); err == nil {
		t.Error("value outside hierarchy accepted")
	}
	// Internal node as a data value must be rejected.
	root := tree.Root()
	if _, err := NewSpace([]string{"a"}, []*hierarchy.Tree{tree}, [][]string{{root}}, []float64{1}); err == nil {
		t.Error("internal node as data value accepted")
	}
}

func TestDistanceAndCoversSemantics(t *testing.T) {
	s := ageSpace(t, 40, 1)
	a, b := s.Tuples[0], s.Tuples[1]
	// Self-distance of a concrete tuple is 0; covers itself.
	if s.Distance(a, a) != 0 || !s.Covers(a, a) {
		t.Error("identity semantics wrong")
	}
	lca, err := s.LCA(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Covers(lca, a) || !s.Covers(lca, b) {
		t.Error("LCA does not cover inputs")
	}
	// Monotonicity (Proposition 4.2 analogue): replacing a pattern by an
	// ancestor never decreases the distance to another pattern.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		x := s.Tuples[rng.Intn(s.N())]
		y := s.Tuples[rng.Intn(s.N())]
		anc := x.Clone()
		for j := range anc {
			// Walk up a random number of steps.
			id := int(anc[j])
			for steps := rng.Intn(3); steps > 0; steps-- {
				if p := s.Trees[j].ParentID(id); p >= 0 {
					id = p
				}
			}
			anc[j] = int32(id)
		}
		if !s.Covers(anc, x) {
			t.Fatal("constructed non-ancestor")
		}
		if s.Distance(anc, y) < s.Distance(x, y) {
			t.Fatalf("monotonicity violated: d(%v,%v)=%d < d(%v,%v)=%d",
				anc, y, s.Distance(anc, y), x, y, s.Distance(x, y))
		}
	}
}

func TestBuildIndexCoverageExact(t *testing.T) {
	s := ageSpace(t, 50, 3)
	ix, err := BuildIndex(s, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range ix.Clusters {
		var want []int32
		var sum float64
		for ti, tup := range s.Tuples {
			if s.Covers(c.Pat, tup) {
				want = append(want, int32(ti))
				sum += s.Vals[ti]
			}
		}
		if len(want) != len(c.Cov) {
			t.Fatalf("cluster %v cov size %d, want %d", s.FormatPattern(c.Pat), len(c.Cov), len(want))
		}
		for i := range want {
			if want[i] != c.Cov[i] {
				t.Fatalf("cluster %v cov mismatch", s.FormatPattern(c.Pat))
			}
		}
		if d := c.Sum - sum; d > 1e-9 || d < -1e-9 {
			t.Fatalf("cluster %v sum mismatch", s.FormatPattern(c.Pat))
		}
	}
	if _, err := BuildIndex(s, 0); err == nil {
		t.Error("L=0 accepted")
	}
	if _, err := BuildIndex(s, s.N()+1); err == nil {
		t.Error("L>N accepted")
	}
}

func TestAlgorithmsFeasibleOverGrid(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		s := ageSpace(t, 60, 10+seed)
		ix, err := BuildIndex(s, 15)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 3, 6} {
			for _, L := range []int{5, 15} {
				for _, D := range []int{0, 1, 2, 3} {
					p := Params{K: k, L: L, D: D}
					for name, algo := range map[string]func(*Index, Params) (*Solution, error){
						"bottom-up": BottomUp, "fixed-order": FixedOrder, "hybrid": Hybrid,
					} {
						sol, err := algo(ix, p)
						if err != nil {
							t.Fatalf("seed=%d %s %+v: %v", seed, name, p, err)
						}
						if err := Validate(ix, p, sol); err != nil {
							t.Errorf("seed=%d %s %+v infeasible: %v", seed, name, p, err)
						}
					}
				}
			}
		}
	}
}

func TestRangePatternsEmergeForAgeStructure(t *testing.T) {
	// With high values planted in ages 20-39 and an age hierarchy present,
	// a small-k summary should generalize ages to range nodes rather than
	// jumping straight to the root.
	s := ageSpace(t, 80, 4)
	ix, err := BuildIndex(s, 20)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := BottomUp(ix, Params{K: 3, L: 20, D: 1})
	if err != nil {
		t.Fatal(err)
	}
	sawRange := false
	for _, c := range sol.Clusters {
		lbl := s.Render(c.Pat)[0]
		if strings.HasPrefix(lbl, "[") && lbl != s.Trees[0].Root() {
			sawRange = true
		}
	}
	if !sawRange {
		patterns := make([]string, 0, sol.Size())
		for _, c := range sol.Clusters {
			patterns = append(patterns, s.FormatPattern(c.Pat))
		}
		t.Errorf("no intermediate age range in summary: %v", patterns)
	}
}

// TestFlatHierarchyMatchesBaseFramework is the key differential test: with
// flat hierarchies the extension must behave exactly like the base
// framework. We compare cluster spaces and check base-framework feasibility
// of the hierarchical solution after translating root -> '*'.
func TestFlatHierarchyMatchesBaseFramework(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows := make([][]string, 0, 50)
	vals := make([]float64, 0, 50)
	seen := map[string]bool{}
	for len(rows) < 50 {
		row := []string{
			fmt.Sprintf("a%d", rng.Intn(4)),
			fmt.Sprintf("b%d", rng.Intn(4)),
			fmt.Sprintf("c%d", rng.Intn(4)),
		}
		key := strings.Join(row, "|")
		if seen[key] {
			continue
		}
		seen[key] = true
		rows = append(rows, row)
		vals = append(vals, rng.Float64()*5)
	}
	attrs := []string{"x", "y", "z"}

	hs, err := NewSpace(attrs, nil, rows, vals)
	if err != nil {
		t.Fatal(err)
	}
	hix, err := BuildIndex(hs, 10)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := lattice.NewSpace(attrs, rows, vals)
	if err != nil {
		t.Fatal(err)
	}
	fix, err := lattice.BuildIndex(fs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if hix.NumClusters() != fix.NumClusters() {
		t.Fatalf("cluster space sizes differ: hierarchical %d vs flat %d",
			hix.NumClusters(), fix.NumClusters())
	}

	p := Params{K: 3, L: 10, D: 2}
	hsol, err := BottomUp(hix, p)
	if err != nil {
		t.Fatal(err)
	}
	// Translate the hierarchical solution into the flat framework and
	// validate it there under identical parameters.
	var flatClusters []*lattice.Cluster
	for _, c := range hsol.Clusters {
		rendered := hs.Render(c.Pat)
		flatPat, ok := fs.Encode(rendered)
		if !ok {
			t.Fatalf("cannot encode %v in flat space", rendered)
		}
		fc, ok := fix.Lookup(flatPat)
		if !ok {
			t.Fatalf("pattern %v missing from flat index", rendered)
		}
		if fc.Size() != c.Size() {
			t.Fatalf("coverage differs for %v: %d vs %d", rendered, c.Size(), fc.Size())
		}
		flatClusters = append(flatClusters, fc)
	}
	fsol := &summarize.Solution{Clusters: flatClusters}
	seenT := map[int32]bool{}
	for _, c := range flatClusters {
		for _, tt := range c.Cov {
			if !seenT[tt] {
				seenT[tt] = true
				fsol.Covered = append(fsol.Covered, tt)
				fsol.Sum += fs.Vals[tt]
			}
		}
	}
	if err := summarize.Validate(fix, summarize.Params{K: 3, L: 10, D: 2}, fsol); err != nil {
		t.Errorf("hierarchical solution infeasible under base framework: %v", err)
	}
	// The greedy objective should match the base framework's Bottom-Up,
	// which explores the identical candidate space with identical scoring.
	bsol, err := summarize.BottomUp(fix, summarize.Params{K: 3, L: 10, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	if diff := hsol.AvgValue() - bsol.AvgValue(); diff > 1e-9 || diff < -1e-9 {
		t.Logf("note: greedy tie-breaking diverged: hierarchical %v vs flat %v",
			hsol.AvgValue(), bsol.AvgValue())
	}
}

func TestRootClusterAndFormat(t *testing.T) {
	s := ageSpace(t, 30, 5)
	ix, err := BuildIndex(s, 5)
	if err != nil {
		t.Fatal(err)
	}
	root := ix.Root()
	if root.Size() != s.N() {
		t.Errorf("root covers %d of %d", root.Size(), s.N())
	}
	if got := s.FormatPattern(root.Pat); !strings.Contains(got, "*") {
		t.Errorf("root pattern = %s; want flat attrs rendered as *", got)
	}
	if _, err := ix.LCACluster(root, ix.Singleton(0)); err != nil {
		t.Errorf("LCA closure: %v", err)
	}
	foreign := &Cluster{ID: 999, Pat: Pattern{9999, 0, 0}}
	if _, err := ix.LCACluster(foreign, foreign); err == nil {
		t.Error("foreign cluster LCA should error")
	}
}

func TestParamsValidate(t *testing.T) {
	s := ageSpace(t, 30, 6)
	ix, err := BuildIndex(s, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Params{{0, 5, 1}, {2, 0, 1}, {2, 6, 1}, {2, 5, -1}, {2, 5, 9}} {
		if err := p.Validate(ix); err == nil {
			t.Errorf("params %+v accepted", p)
		}
	}
}
