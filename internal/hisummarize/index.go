package hisummarize

import (
	"fmt"
)

// Cluster is a hierarchical pattern with its coverage.
type Cluster struct {
	ID  int32
	Pat Pattern
	// Cov lists covered tuple indices, ascending.
	Cov []int32
	// Sum is the total value of covered tuples.
	Sum float64
}

// Size returns |cov(C)|.
func (c *Cluster) Size() int { return len(c.Cov) }

// Avg returns the average value of covered tuples.
func (c *Cluster) Avg() float64 {
	if len(c.Cov) == 0 {
		return 0
	}
	return c.Sum / float64(len(c.Cov))
}

// Index is the generated hierarchical cluster space for one (S, L): every
// generalization of a top-L tuple, mapped to the tuples it covers. As in the
// flat case, the space is closed under LCA.
type Index struct {
	Space    *Space
	L        int
	Clusters []*Cluster

	byKey     map[string]int32
	singleton []int32
}

// BuildIndex generates clusters from the top-L tuples and maps every tuple
// to the generated clusters it belongs to (the optimized strategy of
// Section 6.3, generalized to hierarchy root paths).
func BuildIndex(s *Space, L int) (*Index, error) {
	if L < 1 || L > s.N() {
		return nil, fmt.Errorf("hisummarize: L = %d out of range [1, %d]", L, s.N())
	}
	ix := &Index{Space: s, L: L, byKey: make(map[string]int32), singleton: make([]int32, L)}
	// One scratch key buffer serves every enumeration: map insertion is the
	// only point that materializes a string, and map probes on string(scratch)
	// do not allocate.
	scratch := make([]byte, 0, 4*s.M())
	for rank := 0; rank < L; rank++ {
		s.Ancestors(s.Tuples[rank], func(p Pattern) {
			scratch = p.AppendKey(scratch[:0])
			if _, ok := ix.byKey[string(scratch)]; ok {
				return
			}
			id := int32(len(ix.Clusters))
			ix.byKey[string(scratch)] = id
			ix.Clusters = append(ix.Clusters, &Cluster{ID: id, Pat: p.Clone()})
		})
		ix.singleton[rank] = ix.byKey[s.Tuples[rank].Key()]
	}
	for ti, t := range s.Tuples {
		val := s.Vals[ti]
		s.Ancestors(t, func(p Pattern) {
			scratch = p.AppendKey(scratch[:0])
			if id, ok := ix.byKey[string(scratch)]; ok {
				c := ix.Clusters[id]
				c.Cov = append(c.Cov, int32(ti))
				c.Sum += val
			}
		})
	}
	return ix, nil
}

// NumClusters returns the generated space size.
func (ix *Index) NumClusters() int { return len(ix.Clusters) }

// Cluster returns the cluster with the given id.
func (ix *Index) Cluster(id int32) *Cluster { return ix.Clusters[id] }

// Singleton returns the concrete cluster of the rank-th top tuple.
func (ix *Index) Singleton(rank int) *Cluster { return ix.Clusters[ix.singleton[rank]] }

// Lookup finds a generated cluster by pattern. The key is assembled in a
// stack buffer, so a lookup does not allocate for typical attribute counts.
func (ix *Index) Lookup(p Pattern) (*Cluster, bool) {
	var buf [64]byte
	id, ok := ix.byKey[string(p.AppendKey(buf[:0]))]
	if !ok {
		return nil, false
	}
	return ix.Clusters[id], true
}

// Root returns the all-root cluster (the trivial solution).
func (ix *Index) Root() *Cluster {
	root := make(Pattern, ix.Space.M())
	for j := range root {
		root[j] = int32(ix.Space.Trees[j].RootID())
	}
	c, ok := ix.Lookup(root)
	if !ok {
		// The root pattern generalizes every tuple and is always generated.
		panic("hisummarize: root cluster missing")
	}
	return c
}

// LCACluster returns the cluster for the per-attribute LCA of a and b. The
// generated space is closed under LCA for clusters of this index.
func (ix *Index) LCACluster(a, b *Cluster) (*Cluster, error) {
	p, err := ix.Space.LCA(a.Pat, b.Pat)
	if err != nil {
		return nil, err
	}
	c, ok := ix.Lookup(p)
	if !ok {
		return nil, fmt.Errorf("hisummarize: LCA %v not generated (foreign cluster?)", p)
	}
	return c, nil
}
