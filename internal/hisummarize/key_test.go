package hisummarize

import (
	"math/rand"
	"testing"
)

// TestAppendKeyMatchesKey: the scratch-buffer key must be byte-identical to
// Key for arbitrary node ids (including large and negative ones), since both
// index the same byKey map.
func TestAppendKeyMatchesKey(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 500; i++ {
		p := make(Pattern, 1+rng.Intn(8))
		for j := range p {
			p[j] = int32(rng.Int63()) // full int32 range, sign bit included
		}
		if got, want := string(p.AppendKey(nil)), p.Key(); got != want {
			t.Fatalf("AppendKey(%v) = %q, Key = %q", p, got, want)
		}
	}
	var buf [16]byte
	p := Pattern{1, -2, 3}
	if got, want := string(p.AppendKey(buf[:0])), p.Key(); got != want {
		t.Fatalf("AppendKey with scratch = %q, Key = %q", got, want)
	}
}

// TestLookupDoesNotAllocate pins the satellite fix: probing the index by
// pattern must not allocate a key string per call.
func TestLookupDoesNotAllocate(t *testing.T) {
	s := ageSpace(t, 40, 22)
	ix, err := BuildIndex(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	pat := ix.Clusters[len(ix.Clusters)/2].Pat
	if allocs := testing.AllocsPerRun(100, func() {
		if _, ok := ix.Lookup(pat); !ok {
			t.Fatal("generated pattern not found")
		}
	}); allocs != 0 {
		t.Errorf("Lookup allocates %.1f objects per call, want 0", allocs)
	}
}
