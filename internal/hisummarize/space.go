// Package hisummarize implements the concept-hierarchy extension of
// Appendix A.6 of the paper: cluster summarization where each attribute
// generalizes along a per-attribute concept hierarchy (for example age
// ranges) rather than collapsing directly to the don't-care '*'. Patterns
// hold hierarchy node ids; the '*' of the base framework corresponds to the
// hierarchy root, and the base framework itself is the special case where
// every hierarchy is the flat two-level tree (hierarchy.Flat).
//
// The package mirrors internal/summarize: a generated cluster space over the
// top-L answers and the Bottom-Up / Fixed-Order / Hybrid greedy algorithms,
// with merges taking per-attribute LCAs in the hierarchy (computed in
// O(log n) per attribute via binary lifting, as the appendix prescribes).
package hisummarize

import (
	"fmt"
	"sort"
	"strings"

	"qagview/internal/hierarchy"
)

// Pattern is one hierarchy node id per attribute.
type Pattern []int32

// Key packs a pattern into a map key.
func (p Pattern) Key() string {
	var sb strings.Builder
	for _, v := range p {
		sb.WriteByte(byte(v))
		sb.WriteByte(byte(v >> 8))
		sb.WriteByte(byte(v >> 16))
		sb.WriteByte(byte(v >> 24))
	}
	return sb.String()
}

// AppendKey appends the packed key of p to dst and returns it, for callers
// reusing a scratch buffer: indexing a map[string] with string(dst) does not
// allocate, so hot lookup loops avoid the per-pattern string of Key.
func (p Pattern) AppendKey(dst []byte) []byte {
	for _, v := range p {
		dst = append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return dst
}

// Clone copies p.
func (p Pattern) Clone() Pattern {
	q := make(Pattern, len(p))
	copy(q, p)
	return q
}

// Space is the answer set with per-attribute hierarchies: tuples hold leaf
// node ids, sorted by descending value.
type Space struct {
	Attrs  []string
	Trees  []*hierarchy.Tree
	Tuples []Pattern
	Vals   []float64
}

// NewSpace validates rows against the hierarchies and sorts by value.
// trees[i] may be nil, in which case the flat hierarchy over the attribute's
// active domain is built automatically (plain '*' semantics).
func NewSpace(attrs []string, trees []*hierarchy.Tree, rows [][]string, vals []float64) (*Space, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("hisummarize: no attributes")
	}
	if trees != nil && len(trees) != len(attrs) {
		return nil, fmt.Errorf("hisummarize: %d trees for %d attributes", len(trees), len(attrs))
	}
	if len(rows) == 0 || len(rows) != len(vals) {
		return nil, fmt.Errorf("hisummarize: %d rows, %d values", len(rows), len(vals))
	}
	m := len(attrs)
	s := &Space{
		Attrs: append([]string(nil), attrs...),
		Trees: make([]*hierarchy.Tree, m),
	}
	for j := 0; j < m; j++ {
		if trees != nil && trees[j] != nil {
			s.Trees[j] = trees[j]
			continue
		}
		vals := make([]string, 0, len(rows))
		for _, r := range rows {
			if len(r) != m {
				return nil, fmt.Errorf("hisummarize: ragged row with %d attributes, want %d", len(r), m)
			}
			vals = append(vals, r[j])
		}
		t, err := hierarchy.Flat("*", vals)
		if err != nil {
			return nil, fmt.Errorf("hisummarize: attribute %q: %w", attrs[j], err)
		}
		s.Trees[j] = t
	}

	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })
	s.Tuples = make([]Pattern, len(rows))
	s.Vals = make([]float64, len(rows))
	for out, in := range idx {
		row := rows[in]
		if len(row) != m {
			return nil, fmt.Errorf("hisummarize: ragged row with %d attributes, want %d", len(row), m)
		}
		t := make(Pattern, m)
		for j := 0; j < m; j++ {
			id, ok := s.Trees[j].IDOf(row[j])
			if !ok {
				return nil, fmt.Errorf("hisummarize: value %q is not in the hierarchy of %q", row[j], attrs[j])
			}
			if !s.Trees[j].IsLeafID(id) {
				return nil, fmt.Errorf("hisummarize: value %q of %q is an internal hierarchy node", row[j], attrs[j])
			}
			t[j] = int32(id)
		}
		s.Tuples[out] = t
		s.Vals[out] = vals[in]
	}
	return s, nil
}

// N returns the number of answer tuples.
func (s *Space) N() int { return len(s.Tuples) }

// M returns the number of attributes.
func (s *Space) M() int { return len(s.Attrs) }

// Render maps a pattern to its hierarchy labels (ranges for internal nodes).
func (s *Space) Render(p Pattern) []string {
	out := make([]string, len(p))
	for j, v := range p {
		out[j] = s.Trees[j].Label(int(v))
	}
	return out
}

// FormatPattern renders a pattern as "(1980, [20, 40), M, *)".
func (s *Space) FormatPattern(p Pattern) string {
	return "(" + strings.Join(s.Render(p), ", ") + ")"
}

// Covers reports whether p covers q: every attribute of p is an ancestor of
// (or equal to) the corresponding attribute of q.
func (s *Space) Covers(p, q Pattern) bool {
	for j := range p {
		if !s.Trees[j].CoversID(int(p[j]), int(q[j])) {
			return false
		}
	}
	return true
}

// Comparable reports whether p and q are ordered in the generalization
// semilattice.
func (s *Space) Comparable(p, q Pattern) bool {
	return s.Covers(p, q) || s.Covers(q, p)
}

// Distance extends Definition 3.1 to hierarchies: an attribute contributes
// to the distance unless both patterns pin the exact same leaf value.
// (A shared internal node still admits differing members, just as '*' does,
// so it cannot certify agreement; the distance remains the maximum possible
// member distance.)
func (s *Space) Distance(p, q Pattern) int {
	d := 0
	for j := range p {
		if p[j] != q[j] || !s.Trees[j].IsLeafID(int(p[j])) {
			d++
		}
	}
	return d
}

// LCA returns the per-attribute lowest common ancestor pattern: the most
// specific generalization covering both inputs.
func (s *Space) LCA(p, q Pattern) (Pattern, error) {
	out := make(Pattern, len(p))
	for j := range p {
		id, err := s.Trees[j].LCAIDs(int(p[j]), int(q[j]))
		if err != nil {
			return nil, err
		}
		out[j] = int32(id)
	}
	return out, nil
}

// Ancestors enumerates every generalization of a concrete tuple: the product
// of the per-attribute root paths. The callback pattern is scratch space,
// valid only during the call.
func (s *Space) Ancestors(t Pattern, fn func(Pattern)) {
	m := len(t)
	paths := make([][]int, m)
	total := 1
	for j := 0; j < m; j++ {
		paths[j] = s.Trees[j].PathToRoot(int(t[j]))
		total *= len(paths[j])
		if total > 4<<20 {
			panic("hisummarize: ancestor product too large; reduce hierarchy depth or m")
		}
	}
	scratch := make(Pattern, m)
	var rec func(j int)
	rec = func(j int) {
		if j == m {
			fn(scratch)
			return
		}
		for _, id := range paths[j] {
			scratch[j] = int32(id)
			rec(j + 1)
		}
	}
	rec(0)
}
