// Package intervaltree implements a static centered interval tree with
// stabbing queries. The precomputation layer (Section 6.2 of the paper)
// stores, for each cluster, the contiguous range of k values for which the
// cluster belongs to the solution — a consequence of the continuity property
// (Proposition 6.1) — and retrieves the solution for a requested k with one
// stabbing query in O(log n + answer) time.
package intervaltree

import (
	"fmt"
	"sort"
)

// Interval is a closed integer interval [Lo, Hi] with an opaque payload.
type Interval struct {
	Lo, Hi  int
	Payload int32
}

// Tree is an immutable centered interval tree.
type Tree struct {
	root *node
	n    int
}

type node struct {
	center      int
	byLo        []Interval // intervals containing center, ascending Lo
	byHi        []Interval // same intervals, descending Hi
	left, right *node
}

// Build constructs a tree from the given intervals. Intervals with Lo > Hi
// are rejected.
func Build(intervals []Interval) (*Tree, error) {
	for _, iv := range intervals {
		if iv.Lo > iv.Hi {
			return nil, fmt.Errorf("intervaltree: invalid interval [%d, %d]", iv.Lo, iv.Hi)
		}
	}
	ivs := append([]Interval(nil), intervals...)
	return &Tree{root: build(ivs), n: len(ivs)}, nil
}

func build(ivs []Interval) *node {
	if len(ivs) == 0 {
		return nil
	}
	// Center on the median endpoint for balance.
	endpoints := make([]int, 0, 2*len(ivs))
	for _, iv := range ivs {
		endpoints = append(endpoints, iv.Lo, iv.Hi)
	}
	sort.Ints(endpoints)
	center := endpoints[len(endpoints)/2]

	var here, left, right []Interval
	for _, iv := range ivs {
		switch {
		case iv.Hi < center:
			left = append(left, iv)
		case iv.Lo > center:
			right = append(right, iv)
		default:
			here = append(here, iv)
		}
	}
	n := &node{center: center}
	n.byLo = append([]Interval(nil), here...)
	sort.SliceStable(n.byLo, func(i, j int) bool { return n.byLo[i].Lo < n.byLo[j].Lo })
	n.byHi = append([]Interval(nil), here...)
	sort.SliceStable(n.byHi, func(i, j int) bool { return n.byHi[i].Hi > n.byHi[j].Hi })
	n.left = build(left)
	n.right = build(right)
	return n
}

// Len returns the number of stored intervals.
func (t *Tree) Len() int { return t.n }

// Stab invokes fn for every interval containing x. Order is unspecified.
func (t *Tree) Stab(x int, fn func(Interval)) {
	for n := t.root; n != nil; {
		switch {
		case x < n.center:
			for _, iv := range n.byLo {
				if iv.Lo > x {
					break
				}
				fn(iv)
			}
			n = n.left
		case x > n.center:
			for _, iv := range n.byHi {
				if iv.Hi < x {
					break
				}
				fn(iv)
			}
			n = n.right
		default:
			for _, iv := range n.byLo {
				fn(iv)
			}
			return
		}
	}
}

// StabAll returns all intervals containing x, sorted by (Lo, Hi, Payload)
// for determinism.
func (t *Tree) StabAll(x int) []Interval {
	var out []Interval
	t.Stab(x, func(iv Interval) { out = append(out, iv) })
	sort.Slice(out, func(i, j int) bool {
		if out[i].Lo != out[j].Lo {
			return out[i].Lo < out[j].Lo
		}
		if out[i].Hi != out[j].Hi {
			return out[i].Hi < out[j].Hi
		}
		return out[i].Payload < out[j].Payload
	})
	return out
}
