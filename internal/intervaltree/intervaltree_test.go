package intervaltree

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestBuildRejectsInverted(t *testing.T) {
	if _, err := Build([]Interval{{Lo: 3, Hi: 1}}); err == nil {
		t.Error("inverted interval accepted")
	}
}

func TestEmptyTree(t *testing.T) {
	tr, err := Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
	if got := tr.StabAll(5); len(got) != 0 {
		t.Errorf("StabAll on empty = %v", got)
	}
}

func TestStabSmall(t *testing.T) {
	tr, err := Build([]Interval{
		{1, 5, 10},
		{3, 8, 20},
		{6, 9, 30},
		{2, 2, 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		x    int
		want []int32
	}{
		{0, nil},
		{1, []int32{10}},
		{2, []int32{10, 40}},
		{4, []int32{10, 20}},
		{5, []int32{10, 20}},
		{6, []int32{20, 30}},
		{9, []int32{30}},
		{10, nil},
	}
	for _, c := range cases {
		var got []int32
		for _, iv := range tr.StabAll(c.x) {
			got = append(got, iv.Payload)
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Stab(%d) = %v, want %v", c.x, got, c.want)
		}
	}
}

// TestStabMatchesNaive is a differential property test against a linear scan.
func TestStabMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		ivs := make([]Interval, n)
		for i := range ivs {
			lo := rng.Intn(100)
			hi := lo + rng.Intn(30)
			ivs[i] = Interval{Lo: lo, Hi: hi, Payload: int32(i)}
		}
		tr, err := Build(ivs)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Len() != n {
			t.Fatalf("Len = %d, want %d", tr.Len(), n)
		}
		for x := -5; x < 140; x += 3 {
			var want []int32
			for _, iv := range ivs {
				if iv.Lo <= x && x <= iv.Hi {
					want = append(want, iv.Payload)
				}
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			var got []int32
			for _, iv := range tr.StabAll(x) {
				got = append(got, iv.Payload)
			}
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d Stab(%d) = %v, want %v", trial, x, got, want)
			}
		}
	}
}

func TestStabQuickProperty(t *testing.T) {
	// Property: every stored interval is found when stabbing its midpoint.
	f := func(raw []uint16) bool {
		ivs := make([]Interval, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			lo := int(raw[i] % 1000)
			hi := lo + int(raw[i+1]%50)
			ivs = append(ivs, Interval{Lo: lo, Hi: hi, Payload: int32(i)})
		}
		tr, err := Build(ivs)
		if err != nil {
			return false
		}
		for _, iv := range ivs {
			mid := (iv.Lo + iv.Hi) / 2
			found := false
			tr.Stab(mid, func(got Interval) {
				if got.Payload == iv.Payload {
					found = true
				}
			})
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBuildDoesNotAliasInput(t *testing.T) {
	in := []Interval{{1, 2, 3}}
	tr, err := Build(in)
	if err != nil {
		t.Fatal(err)
	}
	in[0] = Interval{9, 9, 9}
	got := tr.StabAll(1)
	if len(got) != 1 || got[0].Payload != 3 {
		t.Errorf("tree aliased caller slice: %v", got)
	}
}
