// Package kmodes implements k-modes clustering: the k-means analogue for
// categorical data, using Hamming distance and per-attribute majority modes.
// It is the clustering substrate for the k-means-Fixed-Order variant of
// Section 5.2 of the paper (which runs "the k-means clustering algorithm
// (with random seeding) on the top L elements" of a categorical space).
package kmodes

import (
	"fmt"
	"math/rand"
)

// Result is a clustering of the input tuples.
type Result struct {
	// Assign maps each tuple index to its cluster id in [0, K).
	Assign []int
	// Modes holds the final cluster modes.
	Modes [][]int32
	// Iterations is the number of assignment rounds performed.
	Iterations int
}

// Members returns the tuple indices of each cluster, in input order.
func (r *Result) Members() [][]int {
	out := make([][]int, len(r.Modes))
	for i, c := range r.Assign {
		out[c] = append(out[c], i)
	}
	return out
}

// hamming counts differing attributes.
func hamming(a, b []int32) int {
	d := 0
	for i, v := range a {
		if v != b[i] {
			d++
		}
	}
	return d
}

// Cluster partitions tuples into at most k clusters with random seeding from
// rng, iterating assignment and mode updates until convergence or maxIter
// rounds. Empty clusters keep their previous modes. Ties in assignment go to
// the lowest cluster id and ties in mode selection to the smallest value id,
// so results are deterministic given rng.
func Cluster(tuples [][]int32, k int, rng *rand.Rand, maxIter int) (*Result, error) {
	n := len(tuples)
	if n == 0 {
		return nil, fmt.Errorf("kmodes: no tuples")
	}
	if k < 1 {
		return nil, fmt.Errorf("kmodes: k = %d, want >= 1", k)
	}
	if maxIter < 1 {
		maxIter = 1
	}
	m := len(tuples[0])
	for i, t := range tuples {
		if len(t) != m {
			return nil, fmt.Errorf("kmodes: tuple %d has %d attributes, want %d", i, len(t), m)
		}
	}
	if k > n {
		k = n
	}
	// Random seeding: k distinct tuple indices.
	perm := rng.Perm(n)[:k]
	modes := make([][]int32, k)
	for i, ti := range perm {
		modes[i] = append([]int32(nil), tuples[ti]...)
	}
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	res := &Result{Assign: assign, Modes: modes}
	for iter := 0; iter < maxIter; iter++ {
		res.Iterations = iter + 1
		changed := false
		for i, t := range tuples {
			best, bestD := 0, hamming(t, modes[0])
			for c := 1; c < k; c++ {
				if d := hamming(t, modes[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		// Mode update: per-attribute majority among members.
		for c := 0; c < k; c++ {
			counts := make([]map[int32]int, m)
			for j := range counts {
				counts[j] = make(map[int32]int)
			}
			size := 0
			for i, a := range assign {
				if a != c {
					continue
				}
				size++
				for j, v := range tuples[i] {
					counts[j][v]++
				}
			}
			if size == 0 {
				continue // keep previous mode
			}
			for j := 0; j < m; j++ {
				var bestV int32
				bestN := -1
				for v, cnt := range counts[j] {
					if cnt > bestN || (cnt == bestN && v < bestV) {
						bestV, bestN = v, cnt
					}
				}
				modes[c][j] = bestV
			}
		}
	}
	return res, nil
}
