package kmodes

import (
	"math/rand"
	"testing"
)

func TestClusterValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Cluster(nil, 2, rng, 10); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Cluster([][]int32{{1}}, 0, rng, 10); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Cluster([][]int32{{1, 2}, {1}}, 1, rng, 10); err == nil {
		t.Error("ragged tuples accepted")
	}
}

func TestClusterRecoversPlantedGroups(t *testing.T) {
	// Two well-separated planted modes: (0,0,0,0) cloud and (5,5,5,5) cloud.
	rng := rand.New(rand.NewSource(2))
	var tuples [][]int32
	var truth []int
	for i := 0; i < 60; i++ {
		base := int32(0)
		g := 0
		if i%2 == 1 {
			base = 5
			g = 1
		}
		tup := []int32{base, base, base, base}
		// One noisy attribute.
		tup[rng.Intn(4)] = base + int32(rng.Intn(2))
		tuples = append(tuples, tup)
		truth = append(truth, g)
	}
	res, err := Cluster(tuples, 2, rng, 50)
	if err != nil {
		t.Fatal(err)
	}
	// All tuples of the same planted group must land together.
	for g := 0; g < 2; g++ {
		first := -1
		for i, tg := range truth {
			if tg != g {
				continue
			}
			if first == -1 {
				first = res.Assign[i]
			} else if res.Assign[i] != first {
				t.Fatalf("planted group %d split across clusters", g)
			}
		}
	}
	if res.Iterations < 1 {
		t.Error("no iterations recorded")
	}
}

func TestClusterKGreaterThanN(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tuples := [][]int32{{1, 2}, {3, 4}}
	res, err := Cluster(tuples, 10, rng, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Modes) != 2 {
		t.Errorf("modes = %d, want clamped to n=2", len(res.Modes))
	}
}

func TestMembersPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tuples := make([][]int32, 30)
	for i := range tuples {
		tuples[i] = []int32{int32(rng.Intn(3)), int32(rng.Intn(3))}
	}
	res, err := Cluster(tuples, 4, rng, 20)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, members := range res.Members() {
		for _, i := range members {
			if seen[i] {
				t.Fatalf("tuple %d in two clusters", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != len(tuples) {
		t.Errorf("partition covers %d of %d", len(seen), len(tuples))
	}
}

func TestDeterministicGivenRand(t *testing.T) {
	tuples := make([][]int32, 40)
	base := rand.New(rand.NewSource(5))
	for i := range tuples {
		tuples[i] = []int32{int32(base.Intn(4)), int32(base.Intn(4)), int32(base.Intn(4))}
	}
	a, err := Cluster(tuples, 3, rand.New(rand.NewSource(9)), 30)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(tuples, 3, rand.New(rand.NewSource(9)), 30)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed, different clustering")
		}
	}
}
