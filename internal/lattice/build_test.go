package lattice

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"qagview/internal/pattern"
)

// assertIndexBitIdentical compares every observable of two indexes: cluster
// ids and patterns, coverage lists, exact value-sum bits, singleton and
// all-star wiring, and the arena length.
func assertIndexBitIdentical(t *testing.T, label string, a, b *Index) {
	t.Helper()
	if a.NumClusters() != b.NumClusters() {
		t.Fatalf("%s: %d clusters vs %d", label, a.NumClusters(), b.NumClusters())
	}
	for i := range a.Clusters {
		ca, cb := &a.Clusters[i], &b.Clusters[i]
		if ca.ID != cb.ID || !pattern.Equal(ca.Pat, cb.Pat) {
			t.Fatalf("%s: cluster %d is (%d, %v) vs (%d, %v)", label, i, ca.ID, ca.Pat, cb.ID, cb.Pat)
		}
		if len(ca.Cov) != len(cb.Cov) {
			t.Fatalf("%s: cluster %d coverage %d vs %d", label, i, len(ca.Cov), len(cb.Cov))
		}
		for j := range ca.Cov {
			if ca.Cov[j] != cb.Cov[j] {
				t.Fatalf("%s: cluster %d cov[%d] = %d vs %d", label, i, j, ca.Cov[j], cb.Cov[j])
			}
		}
		if math.Float64bits(ca.Sum) != math.Float64bits(cb.Sum) {
			t.Fatalf("%s: cluster %d sum %v (%x) vs %v (%x)",
				label, i, ca.Sum, math.Float64bits(ca.Sum), cb.Sum, math.Float64bits(cb.Sum))
		}
	}
	for rank := 0; rank < a.L; rank++ {
		if a.Singleton(rank).ID != b.Singleton(rank).ID {
			t.Fatalf("%s: singleton %d is %d vs %d", label, rank, a.Singleton(rank).ID, b.Singleton(rank).ID)
		}
	}
	if a.AllStar().ID != b.AllStar().ID {
		t.Fatalf("%s: all-star %d vs %d", label, a.AllStar().ID, b.AllStar().ID)
	}
	if a.CoverageArenaLen() != b.CoverageArenaLen() {
		t.Fatalf("%s: arena %d vs %d", label, a.CoverageArenaLen(), b.CoverageArenaLen())
	}
}

// TestBuildIndexPackedMatchesSlice pins the packed fast path against the
// slice-keyed fallback: the same space must build a bit-identical index
// either way (the packed representation is an encoding change, not a
// semantic one).
func TestBuildIndexPackedMatchesSlice(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		s := randomSpace(t, 40+seed, 150, 5, 4)
		packed, pstats, err := BuildIndexStats(s, 25, true)
		if err != nil {
			t.Fatal(err)
		}
		if !pstats.PackedKeys || !packed.PackedKeys() {
			t.Fatal("packed fast path should engage on a small-domain space")
		}
		slice, sstats, err := BuildIndexStats(s, 25, true, WithSliceKeys())
		if err != nil {
			t.Fatal(err)
		}
		if sstats.PackedKeys || slice.PackedKeys() {
			t.Fatal("WithSliceKeys should force the fallback")
		}
		if pstats.MappingOps != sstats.MappingOps || pstats.Generated != sstats.Generated {
			t.Fatalf("work counters differ: %+v vs %+v", pstats, sstats)
		}
		assertIndexBitIdentical(t, fmt.Sprintf("seed%d", seed), packed, slice)
	}
}

// TestBuildIndexParallelismDeterministic pins the parallel phase-2 build:
// every worker count, on both key representations, must produce the
// sequential index bit for bit.
func TestBuildIndexParallelismDeterministic(t *testing.T) {
	s := randomSpace(t, 50, 300, 5, 3)
	for _, keyOpts := range [][]BuildOption{nil, {WithSliceKeys()}} {
		base, err := BuildIndex(s, 40, append([]BuildOption{BuildParallelism(1)}, keyOpts...)...)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{2, 3, 4, 8, 1000} {
			ix, err := BuildIndex(s, 40, append([]BuildOption{BuildParallelism(par)}, keyOpts...)...)
			if err != nil {
				t.Fatal(err)
			}
			assertIndexBitIdentical(t, fmt.Sprintf("packed=%v/par=%d", base.PackedKeys(), par), base, ix)
		}
	}
}

// TestBuildIndexIdOpsMatchPatternOps: the id-based Distance/Covers accessors
// must agree with the slice pattern algebra on both representations.
func TestBuildIndexIdOpsMatchPatternOps(t *testing.T) {
	s := randomSpace(t, 51, 80, 4, 3)
	for _, opts := range [][]BuildOption{nil, {WithSliceKeys()}} {
		ix, err := BuildIndex(s, 15, opts...)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(52))
		for i := 0; i < 2000; i++ {
			a := int32(rng.Intn(ix.NumClusters()))
			b := int32(rng.Intn(ix.NumClusters()))
			pa, pb := ix.Clusters[a].Pat, ix.Clusters[b].Pat
			if got, want := ix.Distance(a, b), pattern.Distance(pa, pb); got != want {
				t.Fatalf("packed=%v Distance(%v, %v) = %d, want %d", ix.PackedKeys(), pa, pb, got, want)
			}
			if got, want := ix.Covers(a, b), pa.Covers(pb); got != want {
				t.Fatalf("packed=%v Covers(%v, %v) = %v, want %v", ix.PackedKeys(), pa, pb, got, want)
			}
		}
	}
}

// TestBuildIndexAttributeBoundary exercises both sides of the shared
// pattern.MaxAttrs bound end to end: a MaxAttrs-wide space builds, one more
// attribute is rejected.
func TestBuildIndexAttributeBoundary(t *testing.T) {
	row := make([]string, pattern.MaxAttrs)
	for j := range row {
		row[j] = "v"
	}
	s, err := NewSpace(attrNames(pattern.MaxAttrs), [][]string{row}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndex(s, 1)
	if err != nil {
		t.Fatalf("m = MaxAttrs should build: %v", err)
	}
	if want := 1 << pattern.MaxAttrs; ix.NumClusters() != want {
		t.Fatalf("m = MaxAttrs generated %d clusters, want %d", ix.NumClusters(), want)
	}

	wideRow := make([]string, pattern.MaxAttrs+1)
	for j := range wideRow {
		wideRow[j] = "v"
	}
	wide, err := NewSpace(attrNames(pattern.MaxAttrs+1), [][]string{wideRow}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildIndex(wide, 1); err == nil {
		t.Fatal("m = MaxAttrs+1 should be rejected")
	}
}

// TestBuildStatsPhases sanity-checks the new BuildStats fields: phases are
// timed, the worker count is clamped and honored, and the naive path reports
// a single worker.
func TestBuildStatsPhases(t *testing.T) {
	s := randomSpace(t, 53, 120, 4, 3)
	_, st, err := BuildIndexStats(s, 20, true, BuildParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 4 {
		t.Errorf("Workers = %d, want 4", st.Workers)
	}
	if st.GenerateMs < 0 || st.MapMs < 0 || st.AssembleMs < 0 {
		t.Errorf("negative phase timing: %+v", st)
	}
	_, st, err = BuildIndexStats(s, 20, true, BuildParallelism(0))
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 1 {
		t.Errorf("parallelism 0 clamps to 1 worker, got %d", st.Workers)
	}
	_, st, err = BuildIndexStats(s, 20, false, BuildParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 1 {
		t.Errorf("naive path reports %d workers, want 1", st.Workers)
	}
}
