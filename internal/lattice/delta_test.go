package lattice

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// renderAll renders every tuple of a space back to attribute strings, in rank
// order — the row list a from-scratch rebuild of the same space starts from.
func renderAll(s *Space) [][]string {
	rows := make([][]string, s.N())
	for i, t := range s.Tuples {
		rows[i] = s.Render(t)
	}
	return rows
}

// applyToRows mirrors a Delta on plain row/value lists: kept rows stay in
// order, appended rows go at the end (NewSpace's stable sort places them).
func applyToRows(rows [][]string, vals []float64, d Delta) ([][]string, []float64) {
	del := make(map[int]bool, len(d.DeleteRanks))
	for _, r := range d.DeleteRanks {
		del[r] = true
	}
	var outRows [][]string
	var outVals []float64
	for i := range rows {
		if del[i] {
			continue
		}
		outRows = append(outRows, rows[i])
		outVals = append(outVals, vals[i])
	}
	outRows = append(outRows, d.AppendRows...)
	outVals = append(outVals, d.AppendVals...)
	return outRows, outVals
}

// assertIndexEquivalent compares two indexes built over independently encoded
// spaces (dictionary ids may differ): cluster ids must align one to one with
// identical rendered patterns, coverage lists, and exact value-sum bits, and
// the spaces must rank identical rows with identical value bits.
func assertIndexEquivalent(t *testing.T, label string, got, want *Index) {
	t.Helper()
	if got.Space.N() != want.Space.N() {
		t.Fatalf("%s: %d tuples vs %d", label, got.Space.N(), want.Space.N())
	}
	for i := range got.Space.Tuples {
		gr := got.Space.Render(got.Space.Tuples[i])
		wr := want.Space.Render(want.Space.Tuples[i])
		if !reflect.DeepEqual(gr, wr) {
			t.Fatalf("%s: rank %d row %v vs %v", label, i, gr, wr)
		}
		if math.Float64bits(got.Space.Vals[i]) != math.Float64bits(want.Space.Vals[i]) {
			t.Fatalf("%s: rank %d value %v vs %v", label, i, got.Space.Vals[i], want.Space.Vals[i])
		}
	}
	if got.NumClusters() != want.NumClusters() {
		t.Fatalf("%s: %d clusters vs %d", label, got.NumClusters(), want.NumClusters())
	}
	for i := range got.Clusters {
		cg, cw := &got.Clusters[i], &want.Clusters[i]
		if cg.ID != cw.ID {
			t.Fatalf("%s: cluster %d has id %d vs %d", label, i, cg.ID, cw.ID)
		}
		pg := got.Space.Render(cg.Pat)
		pw := want.Space.Render(cw.Pat)
		if !reflect.DeepEqual(pg, pw) {
			t.Fatalf("%s: cluster %d pattern %v vs %v", label, i, pg, pw)
		}
		if !reflect.DeepEqual(cg.Cov, cw.Cov) {
			t.Fatalf("%s: cluster %d coverage %v vs %v", label, i, cg.Cov, cw.Cov)
		}
		if math.Float64bits(cg.Sum) != math.Float64bits(cw.Sum) {
			t.Fatalf("%s: cluster %d sum %v (%x) vs %v (%x)",
				label, i, cg.Sum, math.Float64bits(cg.Sum), cw.Sum, math.Float64bits(cw.Sum))
		}
	}
	for rank := 0; rank < got.L; rank++ {
		if got.Singleton(rank).ID != want.Singleton(rank).ID {
			t.Fatalf("%s: singleton %d is %d vs %d", label, rank, got.Singleton(rank).ID, want.Singleton(rank).ID)
		}
	}
	if got.AllStar().ID != want.AllStar().ID {
		t.Fatalf("%s: all-star %d vs %d", label, got.AllStar().ID, want.AllStar().ID)
	}
	if got.CoverageArenaLen() != want.CoverageArenaLen() {
		t.Fatalf("%s: arena %d vs %d", label, got.CoverageArenaLen(), want.CoverageArenaLen())
	}
}

// applyAndCheck applies d to ix and asserts the result is bit-identical to a
// from-scratch rebuild over the updated row list, returning the maintained
// index and its stats for further chaining.
func applyAndCheck(t *testing.T, label string, ix *Index, d Delta, opts ...BuildOption) (*Index, DeltaStats) {
	t.Helper()
	rows, vals := applyToRows(renderAll(ix.Space), ix.Space.Vals, d)
	nix, stats, err := ix.ApplyDelta(d)
	if err != nil {
		t.Fatalf("%s: ApplyDelta: %v", label, err)
	}
	rs, err := NewSpace(ix.Space.Attrs, rows, vals)
	if err != nil {
		t.Fatalf("%s: rebuild space: %v", label, err)
	}
	rebuilt, err := BuildIndex(rs, ix.L, opts...)
	if err != nil {
		t.Fatalf("%s: rebuild index: %v", label, err)
	}
	assertIndexEquivalent(t, label, nix, rebuilt)
	return nix, stats
}

// lowVal returns a value strictly below the top-L threshold of the space, so
// an append with it cannot disturb the top-L prefix.
func lowVal(ix *Index, off float64) float64 {
	return ix.Space.Vals[ix.L-1] - 1 - off
}

// randomRow draws a row from the space's active domains, with a chance of a
// brand-new value per attribute.
func randomRow(rng *rand.Rand, s *Space, freshProb float64) []string {
	row := make([]string, s.M())
	for j := range row {
		if rng.Float64() < freshProb {
			row[j] = fmt.Sprintf("fresh%d_%d", j, rng.Intn(50))
			continue
		}
		vals := s.Dicts[j].Values()
		row[j] = vals[rng.Intn(len(vals))]
	}
	return row
}

// TestApplyDeltaFastPath pins the unchanged-top-L regime: appends ranking
// below L and deletes at ranks >= L maintain coverage in place with every
// cluster id preserved, bit-identical to the rebuild.
func TestApplyDeltaFastPath(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		s := randomSpace(t, 90+seed, 120, 4, 4)
		ix, err := BuildIndex(s, 30)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1000 + seed))
		d := Delta{DeleteRanks: []int{s.N() - 1, ix.L + 2, ix.L}}
		for i := 0; i < 10; i++ {
			d.AppendRows = append(d.AppendRows, randomRow(rng, s, 0))
			d.AppendVals = append(d.AppendVals, lowVal(ix, rng.Float64()))
		}
		nix, stats := applyAndCheck(t, fmt.Sprintf("seed%d", seed), ix, d)
		if !stats.FastPath {
			t.Fatalf("expected the fast path, got %+v", stats)
		}
		if stats.NewClusters != 0 || stats.DroppedClusters != 0 {
			t.Fatalf("fast path churned clusters: %+v", stats)
		}
		if stats.Appended != 10 || stats.Deleted != 3 {
			t.Fatalf("miscounted batch: %+v", stats)
		}
		if stats.TouchedClusters == 0 {
			t.Fatal("appends must touch at least the all-star cluster")
		}
		if nix.NumClusters() != ix.NumClusters() {
			t.Fatalf("cluster count changed: %d vs %d", nix.NumClusters(), ix.NumClusters())
		}
	}
}

// TestApplyDeltaTopLChurn pins the slow path: appends entering the top L and
// deletes inside it regenerate the cluster set, matching surviving clusters
// and materializing new ones, still bit-identical to the rebuild.
func TestApplyDeltaTopLChurn(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		s := randomSpace(t, 70+seed, 100, 4, 4)
		ix, err := BuildIndex(s, 25)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(2000 + seed))
		top := s.Vals[0] + 1
		d := Delta{
			AppendRows:  [][]string{randomRow(rng, s, 0.5), randomRow(rng, s, 0)},
			AppendVals:  []float64{top, s.Vals[ix.L/2]}, // one new leader, one mid-pack tie
			DeleteRanks: []int{0, ix.L - 1, s.N() - 2},
		}
		_, stats := applyAndCheck(t, fmt.Sprintf("seed%d", seed), ix, d)
		if stats.FastPath {
			t.Fatalf("top-L churn must take the slow path: %+v", stats)
		}
		if stats.NewClusters == 0 {
			t.Fatalf("a fresh leader tuple must materialize clusters: %+v", stats)
		}
		if stats.DroppedClusters == 0 {
			t.Fatalf("deleting rank 0 must drop its exclusive clusters: %+v", stats)
		}
	}
}

// TestApplyDeltaChained applies a random mixed batch three times in a row,
// comparing against the cumulative rebuild after every step — the regime a
// live serving session exercises.
func TestApplyDeltaChained(t *testing.T) {
	for _, sliceKeys := range []bool{false, true} {
		var opts []BuildOption
		name := "packed"
		if sliceKeys {
			opts = append(opts, WithSliceKeys())
			name = "slice"
		}
		t.Run(name, func(t *testing.T) {
			s := randomSpace(t, 7, 90, 4, 3)
			ix, err := BuildIndex(s, 20, opts...)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(77))
			for step := 0; step < 3; step++ {
				var d Delta
				for i := 0; i < 5+step*3; i++ {
					d.AppendRows = append(d.AppendRows, randomRow(rng, ix.Space, 0.1))
					// Mix ranks: some appends enter the top L, most do not.
					if i%4 == 0 {
						d.AppendVals = append(d.AppendVals, ix.Space.Vals[0]+rng.Float64())
					} else {
						d.AppendVals = append(d.AppendVals, lowVal(ix, rng.Float64()))
					}
				}
				for _, r := range rng.Perm(ix.Space.N())[:3] {
					d.DeleteRanks = append(d.DeleteRanks, r)
				}
				ix, _ = applyAndCheck(t, fmt.Sprintf("%s/step%d", name, step), ix, d, opts...)
				if sliceKeys && ix.PackedKeys() {
					t.Fatal("forced slice keys must persist across deltas")
				}
			}
		})
	}
}

// TestApplyDeltaCodecOverflow is the codec-overflow boundary: appending a
// value that pushes an attribute's cardinality past its packed bit width
// must transparently re-derive the codec (wider fields, same one-word keys),
// pinned bit-identical to the rebuild.
func TestApplyDeltaCodecOverflow(t *testing.T) {
	// card 3 packs into a 2-bit field whose all-ones sentinel is 3: ids 0..2
	// fit, a 4th value would collide with Star and must trigger re-packing.
	rng := rand.New(rand.NewSource(5))
	rows := make([][]string, 40)
	vals := make([]float64, 40)
	for i := range rows {
		rows[i] = []string{
			fmt.Sprintf("a%d", rng.Intn(3)),
			fmt.Sprintf("b%d", rng.Intn(3)),
			fmt.Sprintf("c%d", rng.Intn(3)),
		}
		vals[i] = rng.Float64() * 10
	}
	s, err := NewSpace([]string{"x", "y", "z"}, rows, vals)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndex(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !ix.PackedKeys() || ix.codec.CardFits(0, 4) {
		t.Fatalf("fixture broken: want a packed index whose attribute 0 field is full at card 3")
	}
	d := Delta{
		AppendRows: [][]string{{"a3", "b0", "c1"}}, // a3 is the overflowing 4th value
		AppendVals: []float64{lowVal(ix, 0)},
	}
	nix, stats := applyAndCheck(t, "overflow", ix, d)
	if !stats.FastPath || !stats.Repacked || stats.SliceKeys {
		t.Fatalf("want fast-path re-pack, got %+v", stats)
	}
	if !nix.PackedKeys() {
		t.Fatal("re-derived codec should still fit one word")
	}
	// The appended tuple must be covered under the re-derived codec.
	if nix.AllStar().Size() != nix.Space.N() {
		t.Fatalf("all-star covers %d of %d tuples after re-pack", nix.AllStar().Size(), nix.Space.N())
	}
}

// TestApplyDeltaSliceFallback drives the overflow past 64 bits: with every
// field already at capacity in a full word, one more value cannot re-pack
// and the maintained index must fall back to slice keys — still
// bit-identical to the rebuild (which independently derives its own, ghost-
// value-free widths).
func TestApplyDeltaSliceFallback(t *testing.T) {
	// 16 attributes with 15 values each need 4 bits per field = 64 bits
	// total; growing any attribute to 16 values needs a 5-bit field = 65.
	const m = 16
	rng := rand.New(rand.NewSource(6))
	attrs := make([]string, m)
	for j := range attrs {
		attrs[j] = fmt.Sprintf("g%d", j)
	}
	rows := make([][]string, 30)
	vals := make([]float64, 30)
	for i := range rows {
		row := make([]string, m)
		for j := range row {
			// First 15 rows pin the full 15-value domain per attribute so the
			// codec is at exactly 64 bits.
			if i < 15 {
				row[j] = fmt.Sprintf("v%d_%d", j, i)
			} else {
				row[j] = fmt.Sprintf("v%d_%d", j, rng.Intn(15))
			}
		}
		rows[i] = row
		vals[i] = rng.Float64()
	}
	s, err := NewSpace(attrs, rows, vals)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndex(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ix.PackedKeys() {
		t.Fatal("fixture broken: 16x4 bits should pack")
	}
	row := make([]string, m)
	for j := range row {
		row[j] = fmt.Sprintf("v%d_0", j)
	}
	row[3] = "v3_15" // the 16th value of attribute 3: 65 bits, no codec
	d := Delta{AppendRows: [][]string{row}, AppendVals: []float64{lowVal(ix, 0)}}
	nix, stats := applyAndCheck(t, "fallback", ix, d)
	if !stats.FastPath || !stats.SliceKeys || stats.Repacked {
		t.Fatalf("want fast-path slice fallback, got %+v", stats)
	}
	if nix.PackedKeys() {
		t.Fatal("index must run on slice keys after the fallback")
	}
	if nix.AllStar().Size() != nix.Space.N() {
		t.Fatalf("all-star covers %d of %d tuples after fallback", nix.AllStar().Size(), nix.Space.N())
	}
}

// TestRebaseReorder drives Rebase with an origin that reorders kept tuples
// (legal for a caller whose upstream ranking reshuffled ties): sums must be
// re-accumulated in the new order, bit-identical to the rebuild.
func TestRebaseReorder(t *testing.T) {
	rows := [][]string{
		{"a", "x"}, {"b", "x"}, {"a", "y"}, {"b", "y"}, {"c", "x"}, {"c", "y"},
	}
	vals := []float64{5, 4, 3, 3, 3, 1} // a tie block at 3
	s, err := NewSpace([]string{"p", "q"}, rows, vals)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndex(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Reorder the tie block 2,3,4 -> 4,2,3 and append one row.
	newRows := [][]string{
		s.Render(s.Tuples[0]), s.Render(s.Tuples[1]),
		s.Render(s.Tuples[4]), s.Render(s.Tuples[2]), s.Render(s.Tuples[3]),
		{"d", "y"},
		s.Render(s.Tuples[5]),
	}
	newVals := []float64{5, 4, 3, 3, 3, 2, 1}
	origin := []int32{0, 1, 4, 2, 3, -1, 5}
	nix, stats, err := ix.Rebase(newRows, newVals, origin)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.FastPath {
		t.Fatalf("prefix 0,1 unchanged: want fast path, got %+v", stats)
	}
	rs, err := NewSpace(s.Attrs, newRows, newVals)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := BuildIndex(rs, 2)
	if err != nil {
		t.Fatal(err)
	}
	assertIndexEquivalent(t, "reorder", nix, rebuilt)

	// The rebased space owns its values: a caller recycling its result
	// buffers must not reach the installed index.
	before := nix.AllStar().Sum
	for i := range newVals {
		newVals[i] = -1
	}
	if nix.Space.Vals[0] != 5 || nix.AllStar().Sum != before {
		t.Fatal("Rebase aliased the caller's vals slice")
	}
}

// TestApplyDeltaErrors pins the validation surface.
func TestApplyDeltaErrors(t *testing.T) {
	s := randomSpace(t, 11, 30, 3, 3)
	ix, err := BuildIndex(s, 25)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		d    Delta
	}{
		{"arity", Delta{AppendRows: [][]string{{"just-one"}}, AppendVals: []float64{1}}},
		{"vals-mismatch", Delta{AppendRows: [][]string{{"a", "b", "c"}}}},
		{"rank-range", Delta{DeleteRanks: []int{s.N()}}},
		{"rank-dup", Delta{DeleteRanks: []int{3, 3}}},
		{"shrink-below-L", Delta{DeleteRanks: []int{0, 1, 2, 3, 4, 5}}},
	}
	for _, tc := range cases {
		if _, _, err := ix.ApplyDelta(tc.d); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
	// Rebase-specific: reordered values and mismatched origins.
	rows := renderAll(s)
	if _, _, err := ix.Rebase(rows[:s.N()-1], s.Vals[:s.N()-1], make([]int32, s.N()-2)); err == nil {
		t.Error("length mismatch: want error")
	}
	origin := make([]int32, s.N())
	for i := range origin {
		origin[i] = int32(i)
	}
	badVals := append([]float64(nil), s.Vals...)
	badVals[2], badVals[0] = badVals[0], badVals[2]
	if _, _, err := ix.Rebase(rows, badVals, origin); err == nil {
		t.Error("unsorted values: want error")
	}
	origin[1] = 2
	if _, _, err := ix.Rebase(rows, s.Vals, origin); err == nil {
		t.Error("duplicate origin: want error")
	}
}

// TestApplyDeltaCopyOnWrite proves the receiver is never mutated: concurrent
// readers of the old index race against repeated deltas (the serving
// pattern: live summaries over a published index while a refresh builds its
// successor), and afterwards the old index still equals its own rebuild.
func TestApplyDeltaCopyOnWrite(t *testing.T) {
	s := randomSpace(t, 21, 80, 4, 3)
	ix, err := BuildIndex(s, 20)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				a := int32(rng.Intn(ix.NumClusters()))
				b := int32(rng.Intn(ix.NumClusters()))
				_ = ix.Distance(a, b)
				_ = ix.Covers(a, b)
				if _, ok := ix.Lookup(ix.Clusters[a].Pat); !ok {
					t.Error("published cluster pattern vanished")
					return
				}
			}
		}(int64(w))
	}
	rng := rand.New(rand.NewSource(99))
	cur := ix
	for i := 0; i < 20; i++ {
		d := Delta{
			AppendRows:  [][]string{randomRow(rng, cur.Space, 0.2)},
			AppendVals:  []float64{rng.Float64() * 10},
			DeleteRanks: []int{rng.Intn(cur.Space.N())},
		}
		next, _, err := cur.ApplyDelta(d)
		if err != nil {
			t.Fatal(err)
		}
		cur = next
	}
	close(stop)
	wg.Wait()
	// The original index must still be bit-identical to its own rebuild.
	rs, err := NewSpace(s.Attrs, renderAll(s), s.Vals)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := BuildIndex(rs, 20)
	if err != nil {
		t.Fatal(err)
	}
	assertIndexEquivalent(t, "copy-on-write", ix, rebuilt)
}

// TestApplyDeltaEmpty pins the no-op batch: a fresh index equal to the old
// one (still copy-on-write) with zeroed stats.
func TestApplyDeltaEmpty(t *testing.T) {
	s := randomSpace(t, 31, 40, 3, 3)
	ix, err := BuildIndex(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	var d Delta
	if !d.Empty() {
		t.Fatal("zero Delta should be Empty")
	}
	nix, stats := applyAndCheck(t, "empty", ix, d)
	if !stats.FastPath || stats.TouchedClusters != 0 || stats.Appended != 0 || stats.Deleted != 0 {
		t.Fatalf("no-op stats: %+v", stats)
	}
	assertIndexBitIdentical(t, "empty", nix, ix)
}
