package lattice

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"qagview/internal/pattern"
)

// Cluster is a pattern together with the answer tuples it covers and their
// value sum. Clusters are owned by an Index, stored densely in Index.Clusters,
// and identified by their position there.
type Cluster struct {
	// ID is the cluster's position in Index.Clusters.
	ID int32
	// Cov lists covered tuple indices into Space.Tuples, ascending. It is a
	// view into the index's shared coverage arena: clusters do not own their
	// coverage storage individually.
	Cov []int32
	// Pat is the cluster pattern.
	Pat pattern.Pattern
	// Sum is the total value of covered tuples.
	Sum float64
}

// Size returns |cov(C)|.
func (c *Cluster) Size() int { return len(c.Cov) }

// Avg returns the average value of the covered tuples (Section 4.1).
func (c *Cluster) Avg() float64 {
	if len(c.Cov) == 0 {
		return 0
	}
	return c.Sum / float64(len(c.Cov))
}

// Index is the materialized cluster space for one (S, L) pair: every pattern
// that generalizes at least one top-L tuple, mapped to the tuples it covers.
// All clusters any feasible solution can use come from this set, because a
// useful cluster must cover a top-L tuple or improve the average, and the
// paper's algorithms (like its prototype) draw candidates from exactly this
// generated space.
//
// The cluster space is stored columnar: cluster records live in one dense
// slice (no per-cluster heap objects), and all coverage lists share one
// []int32 arena, with each Cluster.Cov a subslice of it. When the
// per-attribute bit widths fit (see pattern.NewCodec), every cluster pattern
// is additionally packed into a uint64 key: the by-pattern map is keyed on
// integers instead of byte strings, and Distance/Covers/LCA between clusters
// run word-parallel on the packed keys. Everything is immutable after
// BuildIndex, so an Index may be shared freely across goroutines.
type Index struct {
	// Space is the underlying answer space.
	Space *Space
	// L is the coverage parameter the index was built for.
	L int
	// Clusters lists all generated clusters densely; Clusters[i].ID == i.
	// Pointers into this slice stay valid for the index's lifetime.
	Clusters []Cluster

	// covArena backs every Cluster.Cov, laid out cluster by cluster.
	covArena []int32

	// codec packs patterns into uint64 keys; nil when the summed widths
	// exceed 64 bits (or slice keys were forced), in which case byKey is the
	// string-keyed fallback.
	codec    *pattern.Codec
	packed   []uint64 // per-cluster packed key, aligned with Clusters
	byPacked *packedMap
	byKey    map[string]int32

	singleton []int32 // rank -> cluster id of the concrete pattern, for ranks < L
	allStar   int32

	// sliceForced records that WithSliceKeys forced the fallback even though
	// the packed widths may fit, so incremental rebuilds (Rebase) stay on the
	// representation the index was built with.
	sliceForced bool
}

// BuildStats reports the work done while building an index, for the
// Figure 8a ablation and the initialization-time and build-throughput
// experiments (figscale).
type BuildStats struct {
	// Generated is the number of distinct clusters generated in phase 1.
	Generated int
	// MappingOps counts tuple→cluster probe operations performed in phase 2;
	// it is N·2^m on the optimized path and |C|·N on the naive path,
	// independent of the worker count.
	MappingOps int
	// PackedKeys reports whether the build ran on the packed uint64 fast
	// path; false means the per-attribute widths exceeded 64 bits (or
	// WithSliceKeys forced the fallback) and patterns were keyed as byte
	// strings.
	PackedKeys bool
	// Workers is the number of goroutines the phase-2 coverage mapping
	// fanned out over (always 1 on the naive path).
	Workers int
	// GenerateMs is the wall-clock time of phase 1, the sequential cluster
	// generation from the top-L tuples.
	GenerateMs float64
	// MapMs is the wall-clock time of phase 2, the tuple→cluster coverage
	// probing (the parallelized part).
	MapMs float64
	// AssembleMs is the wall-clock time of the deterministic counting-sort
	// assembly: computing per-shard arena offsets, scattering hits, and
	// slicing per-cluster coverage with its value sums.
	AssembleMs float64
}

// buildConfig collects BuildIndex options.
type buildConfig struct {
	parallelism int
	sliceKeys   bool
}

func defaultBuildConfig() buildConfig {
	return buildConfig{parallelism: runtime.GOMAXPROCS(0)}
}

// BuildOption customizes BuildIndex.
type BuildOption func(*buildConfig)

// BuildParallelism sets the number of worker goroutines the phase-2 coverage
// mapping fans out over. The default is GOMAXPROCS; n <= 1 forces the
// sequential path. The built index is bit-identical at any setting: shards
// are assembled in tuple order by a counting sort, so cluster ids, coverage
// lists, and value sums do not depend on the worker count.
func BuildParallelism(n int) BuildOption {
	return func(c *buildConfig) { c.parallelism = n }
}

// WithSliceKeys forces the string-keyed slice-pattern representation even
// when the packed widths would fit, for ablation experiments and the
// packed-vs-slice equivalence tests. Output is identical either way.
func WithSliceKeys() BuildOption {
	return func(c *buildConfig) { c.sliceKeys = true }
}

// BuildIndex builds the cluster space for the top-L tuples of s using the
// optimized strategy of Section 6.3: clusters are generated only from top-L
// tuples (so every cluster covers at least one top-L tuple), and the
// cluster→tuple mapping is computed by probing each tuple's generalizations
// against the generated set, instead of scanning all tuples per cluster.
func BuildIndex(s *Space, L int, opts ...BuildOption) (*Index, error) {
	ix, _, err := buildIndex(s, L, true, opts)
	return ix, err
}

// BuildIndexNaive builds the same index without the mapping optimization:
// after cluster generation, each cluster scans every tuple for coverage.
// It exists to reproduce the Figure 8a ablation; results are identical to
// BuildIndex.
func BuildIndexNaive(s *Space, L int, opts ...BuildOption) (*Index, error) {
	ix, _, err := buildIndex(s, L, false, opts)
	return ix, err
}

// BuildIndexStats is BuildIndex returning work counters.
func BuildIndexStats(s *Space, L int, optimized bool, opts ...BuildOption) (*Index, BuildStats, error) {
	return buildIndex(s, L, optimized, opts)
}

// covHit is one (cluster, tuple) coverage pair recorded during the optimized
// tuple-major mapping pass, before the counting sort into the arena.
type covHit struct {
	cluster int32
	tuple   int32
}

// patArenaChunk is how many cluster patterns share one backing allocation
// during phase 1.
const patArenaChunk = 1024

// mapShard is one worker's slice of the phase-2 coverage mapping: a
// contiguous tuple range with its private hit buffer and per-cluster counts
// (the counts array doubles as the shard's arena write cursor during
// assembly).
type mapShard struct {
	lo, hi int
	hits   []covHit
	counts []int32
	ops    int
}

// generate builds the index skeleton for (s, L): every cluster pattern
// generalizing a top-L tuple, with ids assigned in first-seen enumeration
// order (rank-major, subset-mask-minor — the order both key representations
// share, see pattern.Codec.Ancestors), plus the key tables and the
// singleton/all-star ids. Coverage is left empty; BuildIndex fills it with a
// full phase-2 mapping pass, Rebase fills it incrementally from a previous
// index. Keeping generation in one function is what guarantees an
// incrementally maintained index assigns the same cluster ids as a from-
// scratch rebuild.
func generate(s *Space, L int, sliceKeys bool) *Index {
	ix := &Index{
		Space:       s,
		L:           L,
		singleton:   make([]int32, L),
		allStar:     -1,
		sliceForced: sliceKeys,
	}
	if !sliceKeys {
		cards := make([]int, s.M())
		for j := range cards {
			cards[j] = s.Dicts[j].Len()
		}
		// ok = false leaves codec nil: the widths do not fit one word and the
		// build stays on the slice representation.
		ix.codec, _ = pattern.NewCodec(cards)
	}
	if ix.codec != nil {
		// Cluster count is unknown until the dedup runs; the hint trades one
		// possible regrow against over-allocation on star-sparse spaces. The
		// cap keeps wide schemas (the worst case L*2^m is astronomical at
		// m = MaxAttrs) from reserving memory the dedup will never fill —
		// the map and slices regrow fine past it.
		hint := L * (1 << s.M()) / 4
		if hint > 1<<20 {
			hint = 1 << 20
		}
		ix.byPacked = newPackedMap(hint)
		ix.Clusters = make([]Cluster, 0, hint)
		ix.packed = make([]uint64, 0, hint)
		// Cluster patterns are carved out of chunked []int32 arenas: one
		// allocation per patArenaChunk patterns instead of one each, which
		// cuts both allocation count and GC scan work for large spaces.
		m := s.M()
		var patArena []int32
		keys := make([]uint64, 0, 1<<m)
		for rank := 0; rank < L; rank++ {
			base := ix.codec.Pack(s.Tuples[rank])
			keys = ix.codec.AppendAncestors(base, keys[:0])
			for _, key := range keys {
				id := int32(len(ix.Clusters))
				if _, inserted := ix.byPacked.getOrPut(key, id); !inserted {
					continue
				}
				if len(patArena) < m {
					patArena = make([]int32, patArenaChunk*m)
				}
				pat := pattern.Pattern(patArena[:m:m])
				patArena = patArena[m:]
				ix.codec.Unpack(key, pat)
				ix.Clusters = append(ix.Clusters, Cluster{ID: id, Pat: pat})
				ix.packed = append(ix.packed, key)
			}
			// The concrete pattern of each top tuple comes first in its own
			// enumeration, so it is always generated by now.
			ix.singleton[rank], _ = ix.byPacked.get(base)
		}
		ix.allStar, _ = ix.byPacked.get(ix.codec.AllStar())
	} else {
		ix.byKey = make(map[string]int32)
		scratch := make([]byte, 0, 4*s.M())
		for rank := 0; rank < L; rank++ {
			t := s.Tuples[rank]
			pattern.Ancestors(t, func(p pattern.Pattern) {
				scratch = p.AppendKey(scratch[:0])
				if _, ok := ix.byKey[string(scratch)]; ok {
					return
				}
				id := int32(len(ix.Clusters))
				ix.byKey[string(scratch)] = id
				ix.Clusters = append(ix.Clusters, Cluster{ID: id, Pat: p.Clone()})
			})
			ix.singleton[rank] = ix.byKey[t.Key()]
		}
		allStar := make(pattern.Pattern, s.M())
		for i := range allStar {
			allStar[i] = pattern.Star
		}
		ix.allStar = ix.byKey[allStar.Key()]
	}
	return ix
}

func buildIndex(s *Space, L int, optimized bool, opts []BuildOption) (*Index, BuildStats, error) {
	cfg := defaultBuildConfig()
	for _, o := range opts {
		o(&cfg)
	}
	var stats BuildStats
	if L < 1 || L > s.N() {
		return nil, stats, fmt.Errorf("lattice: L = %d out of range [1, %d]", L, s.N())
	}
	if s.M() > pattern.MaxAttrs {
		return nil, stats, fmt.Errorf("lattice: %d grouping attributes exceed the supported maximum of %d (pattern.MaxAttrs)", s.M(), pattern.MaxAttrs)
	}
	t0 := time.Now()
	ix := generate(s, L, cfg.sliceKeys)
	stats.PackedKeys = ix.codec != nil
	stats.Generated = len(ix.Clusters)
	stats.GenerateMs = msSince(t0)

	// Phase 2: map tuples to clusters, writing all coverage lists into one
	// shared arena. The optimized path probes tuple-major (each tuple's
	// generalizations against the generated set) over contiguous tuple
	// shards in parallel, then counting-sorts the hits into the arena; the
	// naive path scans cluster-major and appends in place.
	nc := len(ix.Clusters)
	if optimized {
		workers := cfg.parallelism
		if workers < 1 {
			workers = 1
		}
		if workers > s.N() {
			workers = s.N()
		}
		stats.Workers = workers
		t1 := time.Now()
		shards := make([]mapShard, workers)
		var wg sync.WaitGroup
		for w := range shards {
			shards[w].lo = s.N() * w / workers
			shards[w].hi = s.N() * (w + 1) / workers
			shards[w].counts = make([]int32, nc)
			wg.Add(1)
			go func(sh *mapShard) {
				defer wg.Done()
				ix.probeShard(sh)
			}(&shards[w])
		}
		wg.Wait()
		stats.MapMs = msSince(t1)

		// Deterministic assembly: lay the arena out cluster-major, and within
		// each cluster shard-major (= ascending tuple order, since shards are
		// contiguous tuple ranges and each shard emits hits tuple-major).
		// This reproduces the sequential tuple-major scan bit for bit at any
		// worker count; per-cluster value sums are then accumulated in arena
		// order, the same addition order a sequential build performs.
		t2 := time.Now()
		total := 0
		for w := range shards {
			stats.MappingOps += shards[w].ops
			total += len(shards[w].hits)
		}
		starts := make([]int32, nc+1)
		off := int32(0)
		for id := 0; id < nc; id++ {
			starts[id] = off
			for w := range shards {
				c := shards[w].counts[id]
				shards[w].counts[id] = off // becomes the shard's write cursor
				off += c
			}
		}
		starts[nc] = off
		arena := make([]int32, total)
		for w := range shards {
			wg.Add(1)
			go func(sh *mapShard) {
				defer wg.Done()
				for _, h := range sh.hits {
					arena[sh.counts[h.cluster]] = h.tuple
					sh.counts[h.cluster]++
				}
			}(&shards[w])
		}
		wg.Wait()
		ix.covArena = arena
		for id := 0; id < nc; id++ {
			cov := arena[starts[id]:starts[id+1]:starts[id+1]]
			sum := 0.0
			for _, t := range cov {
				sum += s.Vals[t]
			}
			ix.Clusters[id].Cov = cov
			ix.Clusters[id].Sum = sum
		}
		stats.AssembleMs = msSince(t2)
	} else {
		stats.Workers = 1
		t1 := time.Now()
		var arena []int32
		starts := make([]int32, nc)
		counts := make([]int32, nc)
		for ci := range ix.Clusters {
			c := &ix.Clusters[ci]
			starts[ci] = int32(len(arena))
			for ti, t := range s.Tuples {
				stats.MappingOps++
				if c.Pat.CoversTuple(t) {
					arena = append(arena, int32(ti))
					c.Sum += s.Vals[ti]
				}
			}
			counts[ci] = int32(len(arena)) - starts[ci]
		}
		// Slice only after the arena stops growing: append may reallocate.
		ix.covArena = arena
		for ci := range ix.Clusters {
			start, end := starts[ci], starts[ci]+counts[ci]
			ix.Clusters[ci].Cov = arena[start:end:end]
		}
		stats.MapMs = msSince(t1)
	}
	assertIndexInvariants(ix, "build")
	return ix, stats, nil
}

// probeShard runs the phase-2 probe for one tuple shard: every tuple's 2^m
// generalizations against the generated cluster set. The generated maps are
// immutable by now, so shards only share read-only state.
func (ix *Index) probeShard(sh *mapShard) {
	s := ix.Space
	// Hit volume scales with total coverage (every tuple hits at least the
	// all-star cluster, top-L tuples hit all 2^m ancestors), so seed the
	// buffer at coverage scale, not cluster-count scale.
	sh.hits = make([]covHit, 0, 8*(sh.hi-sh.lo))
	if ix.codec != nil {
		keys := make([]uint64, 0, 1<<s.M())
		for ti := sh.lo; ti < sh.hi; ti++ {
			ti32 := int32(ti)
			base := ix.codec.Pack(s.Tuples[ti])
			keys = ix.codec.AppendAncestors(base, keys[:0])
			sh.ops += len(keys)
			for _, key := range keys {
				if id, ok := ix.byPacked.get(key); ok {
					sh.hits = append(sh.hits, covHit{cluster: id, tuple: ti32})
					sh.counts[id]++
				}
			}
		}
		return
	}
	scratch := make([]byte, 0, 4*s.M())
	for ti := sh.lo; ti < sh.hi; ti++ {
		ti32 := int32(ti)
		pattern.Ancestors(s.Tuples[ti], func(p pattern.Pattern) {
			sh.ops++
			scratch = p.AppendKey(scratch[:0])
			if id, ok := ix.byKey[string(scratch)]; ok {
				sh.hits = append(sh.hits, covHit{cluster: id, tuple: ti32})
				sh.counts[id]++
			}
		})
	}
}

func msSince(t0 time.Time) float64 {
	return float64(time.Since(t0).Microseconds()) / 1000
}

// NumClusters returns the size of the generated cluster space.
func (ix *Index) NumClusters() int { return len(ix.Clusters) }

// Cluster returns the cluster with the given id.
func (ix *Index) Cluster(id int32) *Cluster { return &ix.Clusters[id] }

// PackedKeys reports whether the index runs on the packed uint64 fast path.
func (ix *Index) PackedKeys() bool { return ix.codec != nil }

// Distance returns the cluster distance (Definition 3.1) between the
// clusters with ids a and b, word-parallel on the packed keys when available.
func (ix *Index) Distance(a, b int32) int {
	if ix.codec != nil {
		return ix.codec.Distance(ix.packed[a], ix.packed[b])
	}
	return pattern.Distance(ix.Clusters[a].Pat, ix.Clusters[b].Pat)
}

// Covers reports whether the pattern of cluster a covers the pattern of
// cluster b, word-parallel on the packed keys when available.
func (ix *Index) Covers(a, b int32) bool {
	if ix.codec != nil {
		return ix.codec.Covers(ix.packed[a], ix.packed[b])
	}
	return ix.Clusters[a].Pat.Covers(ix.Clusters[b].Pat)
}

// Lookup finds the cluster for a pattern, if it was generated. Patterns that
// cannot be encoded at all (wrong arity, values outside every active domain)
// are simply not found.
func (ix *Index) Lookup(p pattern.Pattern) (*Cluster, bool) {
	var id int32
	var ok bool
	if ix.codec != nil {
		var key uint64
		if key, ok = ix.codec.PackChecked(p); ok {
			id, ok = ix.byPacked.get(key)
		}
	} else {
		var buf [4 * pattern.MaxAttrs]byte
		id, ok = ix.byKey[string(p.AppendKey(buf[:0]))]
	}
	if !ok {
		return nil, false
	}
	return &ix.Clusters[id], true
}

// Singleton returns the singleton cluster of the rank-th top tuple
// (0-based). It panics if rank >= L.
func (ix *Index) Singleton(rank int) *Cluster {
	return &ix.Clusters[ix.singleton[rank]]
}

// AllStar returns the trivial cluster (*, ..., *) covering every tuple; it is
// the paper's Lower Bound baseline solution.
func (ix *Index) AllStar() *Cluster { return &ix.Clusters[ix.allStar] }

// CoverageArenaLen returns the total number of coverage entries stored across
// all clusters (the shared arena's length), an initialization-space figure.
func (ix *Index) CoverageArenaLen() int { return len(ix.covArena) }

// LCACluster returns the cluster for LCA(a.Pat, b.Pat). The generated space
// is closed under LCA (the LCA of two ancestors of top-L tuples is itself an
// ancestor of a top-L tuple), so the lookup always succeeds for clusters
// from this index; an error indicates a cluster from a different index.
func (ix *Index) LCACluster(a, b *Cluster) (*Cluster, error) {
	l := pattern.LCA(a.Pat, b.Pat)
	c, ok := ix.Lookup(l)
	if !ok {
		return nil, fmt.Errorf("lattice: LCA %v of clusters %d and %d not in index (foreign cluster?)", l, a.ID, b.ID)
	}
	return c, nil
}

// LCAMemo caches LCA cluster ids for pairs of cluster ids from one Index.
// The greedy merge loops probe the same pairs repeatedly (a surviving pair is
// re-evaluated every round until it merges or dies), so memoizing by id pair
// removes the repeated LCA computations and map lookups of LCACluster. A memo
// is index-level state — entries never go stale because the cluster space is
// immutable — but it is NOT safe for concurrent use; give each worker or
// replay state its own memo.
type LCAMemo struct {
	ix      *Index
	memo    *packedMap // (a, b) id pair -> LCA cluster id
	scratch pattern.Pattern
	key     []byte
	hits    int
	misses  int
}

// NewLCAMemo returns an empty memo bound to the index.
func (ix *Index) NewLCAMemo() *LCAMemo {
	return &LCAMemo{
		ix:      ix,
		memo:    newPackedMap(256),
		scratch: make(pattern.Pattern, ix.Space.M()),
		key:     make([]byte, 0, 4*ix.Space.M()),
	}
}

// LCAID returns the id of the LCA cluster of the clusters with ids a and b,
// which must be valid ids of this index (out-of-range ids panic, like any
// Index.Cluster access). Like LCACluster, the returned error signals a
// closure violation — the LCA pattern was never generated — which cannot
// happen for clusters of one index.
func (m *LCAMemo) LCAID(a, b int32) (int32, error) {
	if a > b {
		a, b = b, a
	}
	pairKey := uint64(uint32(a))<<32 | uint64(uint32(b))
	if id, ok := m.memo.get(pairKey); ok {
		m.hits++
		return id, nil
	}
	m.misses++
	var id int32
	var ok bool
	if m.ix.codec != nil {
		lcaKey := m.ix.codec.LCA(m.ix.packed[a], m.ix.packed[b])
		if id, ok = m.ix.byPacked.get(lcaKey); !ok {
			m.ix.codec.Unpack(lcaKey, m.scratch)
		}
	} else {
		pattern.LCAInto(m.scratch, m.ix.Clusters[a].Pat, m.ix.Clusters[b].Pat)
		m.key = m.scratch.AppendKey(m.key[:0])
		id, ok = m.ix.byKey[string(m.key)]
	}
	if !ok {
		return 0, fmt.Errorf("lattice: LCA %v of clusters %d and %d not in index", m.scratch, a, b)
	}
	m.memo.putNew(pairKey, id)
	return id, nil
}

// Rebind attaches the memo to a successor index of the same space shape
// (equal attribute count). keep retains the memoized pairs, which is sound
// exactly when the successor preserved every cluster id — the fast path of
// incremental maintenance (Index.ApplyDelta): entries are id-pair → id facts
// about cluster patterns, and id stability carries them over unchanged. With
// keep false the memo is flushed (the table is re-allocated at its hint
// size; the scratch buffers are kept).
func (m *LCAMemo) Rebind(ix *Index, keep bool) {
	m.ix = ix
	if !keep {
		m.memo = newPackedMap(256)
		m.hits, m.misses = 0, 0
	}
	if len(m.scratch) != ix.Space.M() {
		m.scratch = make(pattern.Pattern, ix.Space.M())
	}
}

// Hits returns the number of memo lookups answered from the cache.
func (m *LCAMemo) Hits() int { return m.hits }

// Misses returns the number of memo lookups that computed a fresh LCA.
func (m *LCAMemo) Misses() int { return m.misses }
