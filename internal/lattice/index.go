package lattice

import (
	"fmt"

	"qagview/internal/pattern"
)

// Cluster is a pattern together with the answer tuples it covers and their
// value sum. Clusters are owned by an Index, stored densely in Index.Clusters,
// and identified by their position there.
type Cluster struct {
	// ID is the cluster's position in Index.Clusters.
	ID int32
	// Cov lists covered tuple indices into Space.Tuples, ascending. It is a
	// view into the index's shared coverage arena: clusters do not own their
	// coverage storage individually.
	Cov []int32
	// Pat is the cluster pattern.
	Pat pattern.Pattern
	// Sum is the total value of covered tuples.
	Sum float64
}

// Size returns |cov(C)|.
func (c *Cluster) Size() int { return len(c.Cov) }

// Avg returns the average value of the covered tuples (Section 4.1).
func (c *Cluster) Avg() float64 {
	if len(c.Cov) == 0 {
		return 0
	}
	return c.Sum / float64(len(c.Cov))
}

// Index is the materialized cluster space for one (S, L) pair: every pattern
// that generalizes at least one top-L tuple, mapped to the tuples it covers.
// All clusters any feasible solution can use come from this set, because a
// useful cluster must cover a top-L tuple or improve the average, and the
// paper's algorithms (like its prototype) draw candidates from exactly this
// generated space.
//
// The cluster space is stored columnar: cluster records live in one dense
// slice (no per-cluster heap objects), and all coverage lists share one
// []int32 arena, with each Cluster.Cov a subslice of it. Both are immutable
// after BuildIndex, so an Index may be shared freely across goroutines.
type Index struct {
	// Space is the underlying answer space.
	Space *Space
	// L is the coverage parameter the index was built for.
	L int
	// Clusters lists all generated clusters densely; Clusters[i].ID == i.
	// Pointers into this slice stay valid for the index's lifetime.
	Clusters []Cluster

	// covArena backs every Cluster.Cov, laid out cluster by cluster.
	covArena []int32

	byKey     map[string]int32
	singleton []int32 // rank -> cluster id of the concrete pattern, for ranks < L
	allStar   int32
}

// BuildStats reports the work done while building an index, for the
// Figure 8a ablation and initialization-time experiments.
type BuildStats struct {
	// Generated is the number of distinct clusters generated.
	Generated int
	// MappingOps counts tuple→cluster probe operations performed.
	MappingOps int
}

// BuildIndex builds the cluster space for the top-L tuples of s using the
// optimized strategy of Section 6.3: clusters are generated only from top-L
// tuples (so every cluster covers at least one top-L tuple), and the
// cluster→tuple mapping is computed by probing each tuple's generalizations
// against the generated set, instead of scanning all tuples per cluster.
func BuildIndex(s *Space, L int) (*Index, error) {
	ix, _, err := buildIndex(s, L, true)
	return ix, err
}

// BuildIndexNaive builds the same index without the mapping optimization:
// after cluster generation, each cluster scans every tuple for coverage.
// It exists to reproduce the Figure 8a ablation; results are identical to
// BuildIndex.
func BuildIndexNaive(s *Space, L int) (*Index, error) {
	ix, _, err := buildIndex(s, L, false)
	return ix, err
}

// BuildIndexStats is BuildIndex returning work counters.
func BuildIndexStats(s *Space, L int, optimized bool) (*Index, BuildStats, error) {
	return buildIndex(s, L, optimized)
}

// covHit is one (cluster, tuple) coverage pair recorded during the optimized
// tuple-major mapping pass, before the counting sort into the arena.
type covHit struct {
	cluster int32
	tuple   int32
}

func buildIndex(s *Space, L int, optimized bool) (*Index, BuildStats, error) {
	var stats BuildStats
	if L < 1 || L > s.N() {
		return nil, stats, fmt.Errorf("lattice: L = %d out of range [1, %d]", L, s.N())
	}
	if s.M() > 16 {
		return nil, stats, fmt.Errorf("lattice: %d grouping attributes exceed the supported maximum of 16", s.M())
	}
	ix := &Index{
		Space:     s,
		L:         L,
		byKey:     make(map[string]int32),
		singleton: make([]int32, L),
		allStar:   -1,
	}
	// Phase 1: generate clusters from each top-L tuple.
	scratch := make([]byte, 0, 4*s.M())
	for rank := 0; rank < L; rank++ {
		t := s.Tuples[rank]
		pattern.Ancestors(t, func(p pattern.Pattern) {
			scratch = p.AppendKey(scratch[:0])
			if _, ok := ix.byKey[string(scratch)]; ok {
				return
			}
			id := int32(len(ix.Clusters))
			ix.byKey[string(scratch)] = id
			ix.Clusters = append(ix.Clusters, Cluster{ID: id, Pat: p.Clone()})
		})
	}
	stats.Generated = len(ix.Clusters)
	for rank := 0; rank < L; rank++ {
		// The concrete pattern of each top-L tuple was generated above.
		key := s.Tuples[rank].Key()
		ix.singleton[rank] = ix.byKey[key]
	}
	allStar := make(pattern.Pattern, s.M())
	for i := range allStar {
		allStar[i] = pattern.Star
	}
	ix.allStar = ix.byKey[allStar.Key()]

	// Phase 2: map tuples to clusters, writing all coverage lists into one
	// shared arena. The optimized path probes tuple-major (each tuple's
	// generalizations against the generated set), so hits arrive out of
	// cluster order and are counting-sorted; the naive path scans
	// cluster-major and appends in place.
	nc := len(ix.Clusters)
	counts := make([]int32, nc)
	if optimized {
		// Hit volume scales with total coverage (every tuple hits at least
		// the all-star cluster, top-L tuples hit all 2^m ancestors), so seed
		// the buffer at coverage scale, not cluster-count scale.
		hits := make([]covHit, 0, 8*s.N())
		for ti, t := range s.Tuples {
			ti32 := int32(ti)
			val := s.Vals[ti]
			pattern.Ancestors(t, func(p pattern.Pattern) {
				stats.MappingOps++
				scratch = p.AppendKey(scratch[:0])
				if id, ok := ix.byKey[string(scratch)]; ok {
					hits = append(hits, covHit{cluster: id, tuple: ti32})
					counts[id]++
					ix.Clusters[id].Sum += val
				}
			})
		}
		arena := make([]int32, len(hits))
		next := make([]int32, nc)
		off := int32(0)
		for id := 0; id < nc; id++ {
			next[id] = off
			off += counts[id]
		}
		for _, h := range hits {
			arena[next[h.cluster]] = h.tuple
			next[h.cluster]++
		}
		ix.covArena = arena
		for id := 0; id < nc; id++ {
			end := next[id]
			start := end - counts[id]
			ix.Clusters[id].Cov = arena[start:end:end]
		}
	} else {
		var arena []int32
		starts := make([]int32, nc)
		for ci := range ix.Clusters {
			c := &ix.Clusters[ci]
			starts[ci] = int32(len(arena))
			for ti, t := range s.Tuples {
				stats.MappingOps++
				if c.Pat.CoversTuple(t) {
					arena = append(arena, int32(ti))
					c.Sum += s.Vals[ti]
				}
			}
			counts[ci] = int32(len(arena)) - starts[ci]
		}
		// Slice only after the arena stops growing: append may reallocate.
		ix.covArena = arena
		for ci := range ix.Clusters {
			start, end := starts[ci], starts[ci]+counts[ci]
			ix.Clusters[ci].Cov = arena[start:end:end]
		}
	}
	return ix, stats, nil
}

// NumClusters returns the size of the generated cluster space.
func (ix *Index) NumClusters() int { return len(ix.Clusters) }

// Cluster returns the cluster with the given id.
func (ix *Index) Cluster(id int32) *Cluster { return &ix.Clusters[id] }

// Lookup finds the cluster for a pattern, if it was generated.
func (ix *Index) Lookup(p pattern.Pattern) (*Cluster, bool) {
	id, ok := ix.byKey[p.Key()]
	if !ok {
		return nil, false
	}
	return &ix.Clusters[id], true
}

// Singleton returns the singleton cluster of the rank-th top tuple
// (0-based). It panics if rank >= L.
func (ix *Index) Singleton(rank int) *Cluster {
	return &ix.Clusters[ix.singleton[rank]]
}

// AllStar returns the trivial cluster (*, ..., *) covering every tuple; it is
// the paper's Lower Bound baseline solution.
func (ix *Index) AllStar() *Cluster { return &ix.Clusters[ix.allStar] }

// CoverageArenaLen returns the total number of coverage entries stored across
// all clusters (the shared arena's length), an initialization-space figure.
func (ix *Index) CoverageArenaLen() int { return len(ix.covArena) }

// LCACluster returns the cluster for LCA(a.Pat, b.Pat). The generated space
// is closed under LCA (the LCA of two ancestors of top-L tuples is itself an
// ancestor of a top-L tuple), so the lookup always succeeds for clusters
// from this index; an error indicates a cluster from a different index.
func (ix *Index) LCACluster(a, b *Cluster) (*Cluster, error) {
	l := pattern.LCA(a.Pat, b.Pat)
	c, ok := ix.Lookup(l)
	if !ok {
		return nil, fmt.Errorf("lattice: LCA %v of clusters %d and %d not in index (foreign cluster?)", l, a.ID, b.ID)
	}
	return c, nil
}

// LCAMemo caches LCA cluster ids for pairs of cluster ids from one Index.
// The greedy merge loops probe the same pairs repeatedly (a surviving pair is
// re-evaluated every round until it merges or dies), so memoizing by id pair
// removes the repeated pattern hashing and map lookups of LCACluster. A memo
// is index-level state — entries never go stale because the cluster space is
// immutable — but it is NOT safe for concurrent use; give each worker or
// replay state its own memo.
type LCAMemo struct {
	ix      *Index
	memo    map[uint64]int32
	scratch pattern.Pattern
	key     []byte
	hits    int
	misses  int
}

// NewLCAMemo returns an empty memo bound to the index.
func (ix *Index) NewLCAMemo() *LCAMemo {
	return &LCAMemo{
		ix:      ix,
		memo:    make(map[uint64]int32),
		scratch: make(pattern.Pattern, ix.Space.M()),
		key:     make([]byte, 0, 4*ix.Space.M()),
	}
}

// LCAID returns the id of the LCA cluster of the clusters with ids a and b,
// which must be valid ids of this index (out-of-range ids panic, like any
// Index.Cluster access). Like LCACluster, the returned error signals a
// closure violation — the LCA pattern was never generated — which cannot
// happen for clusters of one index.
func (m *LCAMemo) LCAID(a, b int32) (int32, error) {
	if a > b {
		a, b = b, a
	}
	pairKey := uint64(uint32(a))<<32 | uint64(uint32(b))
	if id, ok := m.memo[pairKey]; ok {
		m.hits++
		return id, nil
	}
	m.misses++
	pattern.LCAInto(m.scratch, m.ix.Clusters[a].Pat, m.ix.Clusters[b].Pat)
	m.key = m.scratch.AppendKey(m.key[:0])
	id, ok := m.ix.byKey[string(m.key)]
	if !ok {
		return 0, fmt.Errorf("lattice: LCA %v of clusters %d and %d not in index", m.scratch, a, b)
	}
	m.memo[pairKey] = id
	return id, nil
}

// Hits returns the number of memo lookups answered from the cache.
func (m *LCAMemo) Hits() int { return m.hits }

// Misses returns the number of memo lookups that computed a fresh LCA.
func (m *LCAMemo) Misses() int { return m.misses }
