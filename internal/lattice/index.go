package lattice

import (
	"fmt"

	"qagview/internal/pattern"
)

// Cluster is a pattern together with the answer tuples it covers and their
// value sum. Clusters are owned by an Index and identified by dense ids.
type Cluster struct {
	// ID is the cluster's position in Index.Clusters.
	ID int32
	// Pat is the cluster pattern.
	Pat pattern.Pattern
	// Cov lists covered tuple indices into Space.Tuples, ascending.
	Cov []int32
	// Sum is the total value of covered tuples.
	Sum float64
}

// Size returns |cov(C)|.
func (c *Cluster) Size() int { return len(c.Cov) }

// Avg returns the average value of the covered tuples (Section 4.1).
func (c *Cluster) Avg() float64 {
	if len(c.Cov) == 0 {
		return 0
	}
	return c.Sum / float64(len(c.Cov))
}

// Index is the materialized cluster space for one (S, L) pair: every pattern
// that generalizes at least one top-L tuple, mapped to the tuples it covers.
// All clusters any feasible solution can use come from this set, because a
// useful cluster must cover a top-L tuple or improve the average, and the
// paper's algorithms (like its prototype) draw candidates from exactly this
// generated space.
type Index struct {
	// Space is the underlying answer space.
	Space *Space
	// L is the coverage parameter the index was built for.
	L int
	// Clusters lists all generated clusters; Clusters[i].ID == i.
	Clusters []*Cluster

	byKey     map[string]int32
	singleton []int32 // rank -> cluster id of the concrete pattern, for ranks < L
	allStar   int32
}

// BuildStats reports the work done while building an index, for the
// Figure 8a ablation and initialization-time experiments.
type BuildStats struct {
	// Generated is the number of distinct clusters generated.
	Generated int
	// MappingOps counts tuple→cluster probe operations performed.
	MappingOps int
}

// BuildIndex builds the cluster space for the top-L tuples of s using the
// optimized strategy of Section 6.3: clusters are generated only from top-L
// tuples (so every cluster covers at least one top-L tuple), and the
// cluster→tuple mapping is computed by probing each tuple's generalizations
// against the generated set, instead of scanning all tuples per cluster.
func BuildIndex(s *Space, L int) (*Index, error) {
	ix, _, err := buildIndex(s, L, true)
	return ix, err
}

// BuildIndexNaive builds the same index without the mapping optimization:
// after cluster generation, each cluster scans every tuple for coverage.
// It exists to reproduce the Figure 8a ablation; results are identical to
// BuildIndex.
func BuildIndexNaive(s *Space, L int) (*Index, error) {
	ix, _, err := buildIndex(s, L, false)
	return ix, err
}

// BuildIndexStats is BuildIndex returning work counters.
func BuildIndexStats(s *Space, L int, optimized bool) (*Index, BuildStats, error) {
	return buildIndex(s, L, optimized)
}

func buildIndex(s *Space, L int, optimized bool) (*Index, BuildStats, error) {
	var stats BuildStats
	if L < 1 || L > s.N() {
		return nil, stats, fmt.Errorf("lattice: L = %d out of range [1, %d]", L, s.N())
	}
	if s.M() > 16 {
		return nil, stats, fmt.Errorf("lattice: %d grouping attributes exceed the supported maximum of 16", s.M())
	}
	ix := &Index{
		Space:     s,
		L:         L,
		byKey:     make(map[string]int32),
		singleton: make([]int32, L),
		allStar:   -1,
	}
	// Phase 1: generate clusters from each top-L tuple.
	scratch := make([]byte, 0, 4*s.M())
	for rank := 0; rank < L; rank++ {
		t := s.Tuples[rank]
		pattern.Ancestors(t, func(p pattern.Pattern) {
			scratch = p.AppendKey(scratch[:0])
			if _, ok := ix.byKey[string(scratch)]; ok {
				return
			}
			id := int32(len(ix.Clusters))
			ix.byKey[string(scratch)] = id
			ix.Clusters = append(ix.Clusters, &Cluster{ID: id, Pat: p.Clone()})
		})
	}
	stats.Generated = len(ix.Clusters)
	for rank := 0; rank < L; rank++ {
		// The concrete pattern of each top-L tuple was generated above.
		key := s.Tuples[rank].Key()
		ix.singleton[rank] = ix.byKey[key]
	}
	allStar := make(pattern.Pattern, s.M())
	for i := range allStar {
		allStar[i] = pattern.Star
	}
	ix.allStar = ix.byKey[allStar.Key()]

	// Phase 2: map tuples to clusters.
	if optimized {
		for ti, t := range s.Tuples {
			ti32 := int32(ti)
			val := s.Vals[ti]
			pattern.Ancestors(t, func(p pattern.Pattern) {
				stats.MappingOps++
				scratch = p.AppendKey(scratch[:0])
				if id, ok := ix.byKey[string(scratch)]; ok {
					c := ix.Clusters[id]
					c.Cov = append(c.Cov, ti32)
					c.Sum += val
				}
			})
		}
	} else {
		for _, c := range ix.Clusters {
			for ti, t := range s.Tuples {
				stats.MappingOps++
				if c.Pat.CoversTuple(t) {
					c.Cov = append(c.Cov, int32(ti))
					c.Sum += s.Vals[ti]
				}
			}
		}
	}
	return ix, stats, nil
}

// NumClusters returns the size of the generated cluster space.
func (ix *Index) NumClusters() int { return len(ix.Clusters) }

// Cluster returns the cluster with the given id.
func (ix *Index) Cluster(id int32) *Cluster { return ix.Clusters[id] }

// Lookup finds the cluster for a pattern, if it was generated.
func (ix *Index) Lookup(p pattern.Pattern) (*Cluster, bool) {
	id, ok := ix.byKey[p.Key()]
	if !ok {
		return nil, false
	}
	return ix.Clusters[id], true
}

// Singleton returns the singleton cluster of the rank-th top tuple
// (0-based). It panics if rank >= L.
func (ix *Index) Singleton(rank int) *Cluster {
	return ix.Clusters[ix.singleton[rank]]
}

// AllStar returns the trivial cluster (*, ..., *) covering every tuple; it is
// the paper's Lower Bound baseline solution.
func (ix *Index) AllStar() *Cluster { return ix.Clusters[ix.allStar] }

// LCACluster returns the cluster for LCA(a.Pat, b.Pat). The generated space
// is closed under LCA (the LCA of two ancestors of top-L tuples is itself an
// ancestor of a top-L tuple), so the lookup always succeeds for clusters
// from this index; an error indicates a cluster from a different index.
func (ix *Index) LCACluster(a, b *Cluster) (*Cluster, error) {
	l := pattern.LCA(a.Pat, b.Pat)
	c, ok := ix.Lookup(l)
	if !ok {
		return nil, fmt.Errorf("lattice: LCA %v of clusters %d and %d not in index (foreign cluster?)", l, a.ID, b.ID)
	}
	return c, nil
}
