package lattice

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"qagview/internal/pattern"
)

// tinySpace builds the 4-attribute example of Figure 3a.
func tinySpace(t *testing.T) *Space {
	t.Helper()
	rows := [][]string{
		{"a1", "b2", "c1", "d1"},
		{"a1", "b3", "c1", "d1"},
		{"a1", "b4", "c1", "d1"},
		{"a2", "b1", "c1", "d1"},
		{"a2", "b1", "c4", "d1"},
	}
	vals := []float64{5, 4, 3, 2, 1}
	s, err := NewSpace([]string{"A", "B", "C", "D"}, rows, vals)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func randomSpace(t *testing.T, seed int64, n, m, dom int) *Space {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]string, n)
	vals := make([]float64, n)
	for i := range rows {
		row := make([]string, m)
		for j := range row {
			row[j] = fmt.Sprintf("v%d_%d", j, rng.Intn(dom))
		}
		rows[i] = row
		vals[i] = rng.Float64() * 5
	}
	s, err := NewSpace(attrNames(m), rows, vals)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func attrNames(m int) []string {
	names := make([]string, m)
	for i := range names {
		names[i] = fmt.Sprintf("A%d", i)
	}
	return names
}

func TestNewSpaceSortsByValueDesc(t *testing.T) {
	s, err := NewSpace([]string{"x"}, [][]string{{"low"}, {"high"}, {"mid"}}, []float64{1, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !sort.IsSorted(sort.Reverse(sort.Float64Slice(s.Vals))) {
		t.Errorf("vals not descending: %v", s.Vals)
	}
	if got := s.Render(s.Tuples[0])[0]; got != "high" {
		t.Errorf("rank 1 tuple = %q, want high", got)
	}
}

func TestNewSpaceErrors(t *testing.T) {
	if _, err := NewSpace(nil, [][]string{{"a"}}, []float64{1}); err == nil {
		t.Error("no attributes: want error")
	}
	if _, err := NewSpace([]string{"x"}, [][]string{{"a"}}, []float64{1, 2}); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, err := NewSpace([]string{"x"}, nil, nil); err == nil {
		t.Error("empty set: want error")
	}
	if _, err := NewSpace([]string{"x", "y"}, [][]string{{"a"}}, []float64{1}); err == nil {
		t.Error("ragged row: want error")
	}
}

func TestRenderAndEncodeRoundTrip(t *testing.T) {
	s := tinySpace(t)
	for _, tup := range s.Tuples {
		row := s.Render(tup)
		back, ok := s.Encode(row)
		if !ok || !pattern.Equal(back, tup) {
			t.Errorf("round trip failed for %v", row)
		}
	}
	if _, ok := s.Encode([]string{"zzz", "b1", "c1", "d1"}); ok {
		t.Error("Encode of unknown value should fail")
	}
	if _, ok := s.Encode([]string{"a1"}); ok {
		t.Error("Encode of wrong arity should fail")
	}
	p, ok := s.Encode([]string{"*", "b1", "*", "d1"})
	if !ok || p[0] != pattern.Star || p[2] != pattern.Star {
		t.Errorf("Encode with stars = %v, %v", p, ok)
	}
	if got := s.FormatPattern(p); got != "(*, b1, *, d1)" {
		t.Errorf("FormatPattern = %q", got)
	}
}

func TestBuildIndexFigure3aCoverage(t *testing.T) {
	s := tinySpace(t)
	ix, err := BuildIndex(s, s.N())
	if err != nil {
		t.Fatal(err)
	}
	// C1 = (*, *, c1, d1) covers the four c1/d1 tuples.
	c1pat, _ := s.Encode([]string{"*", "*", "c1", "d1"})
	c1, ok := ix.Lookup(c1pat)
	if !ok {
		t.Fatal("C1 not generated")
	}
	if c1.Size() != 4 {
		t.Errorf("|cov(C1)| = %d, want 4", c1.Size())
	}
	// C2 = (a2, b1, *, d1) covers two tuples, overlapping C1 on one.
	c2pat, _ := s.Encode([]string{"a2", "b1", "*", "d1"})
	c2, ok := ix.Lookup(c2pat)
	if !ok {
		t.Fatal("C2 not generated")
	}
	if c2.Size() != 2 {
		t.Errorf("|cov(C2)| = %d, want 2", c2.Size())
	}
}

func TestBuildIndexBounds(t *testing.T) {
	s := tinySpace(t)
	if _, err := BuildIndex(s, 0); err == nil {
		t.Error("L=0: want error")
	}
	if _, err := BuildIndex(s, s.N()+1); err == nil {
		t.Error("L>N: want error")
	}
	wide, err := NewSpace(attrNames(17), [][]string{make([]string, 17)}, []float64{1})
	if err == nil {
		if _, err := BuildIndex(wide, 1); err == nil {
			t.Error("m=17: want error")
		}
	}
}

func TestBuildIndexEveryClusterCoversATopLTuple(t *testing.T) {
	s := randomSpace(t, 11, 60, 4, 3)
	L := 10
	ix, err := BuildIndex(s, L)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range ix.Clusters {
		found := false
		for _, ti := range c.Cov {
			if int(ti) < L {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("cluster %v covers no top-%d tuple", s.FormatPattern(c.Pat), L)
		}
	}
}

func TestBuildIndexCoverageIsExact(t *testing.T) {
	s := randomSpace(t, 12, 80, 4, 3)
	ix, err := BuildIndex(s, 15)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range ix.Clusters {
		var want []int32
		var sum float64
		for ti, tup := range s.Tuples {
			if c.Pat.CoversTuple(tup) {
				want = append(want, int32(ti))
				sum += s.Vals[ti]
			}
		}
		if !reflect.DeepEqual(c.Cov, want) {
			t.Fatalf("cluster %v cov = %v, want %v", c.Pat, c.Cov, want)
		}
		if diff := c.Sum - sum; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("cluster %v sum = %v, want %v", c.Pat, c.Sum, sum)
		}
	}
}

func TestNaiveBuildMatchesOptimized(t *testing.T) {
	s := randomSpace(t, 13, 100, 5, 3)
	opt, err := BuildIndex(s, 20)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := BuildIndexNaive(s, 20)
	if err != nil {
		t.Fatal(err)
	}
	if opt.NumClusters() != naive.NumClusters() {
		t.Fatalf("cluster counts differ: %d vs %d", opt.NumClusters(), naive.NumClusters())
	}
	for i := range opt.Clusters {
		a, b := opt.Clusters[i], naive.Clusters[i]
		if !pattern.Equal(a.Pat, b.Pat) || !reflect.DeepEqual(a.Cov, b.Cov) {
			t.Fatalf("cluster %d differs: %v/%v vs %v/%v", i, a.Pat, a.Cov, b.Pat, b.Cov)
		}
	}
}

func TestBuildStatsShowOptimizationAdvantage(t *testing.T) {
	s := randomSpace(t, 14, 200, 4, 3)
	_, optStats, err := BuildIndexStats(s, 20, true)
	if err != nil {
		t.Fatal(err)
	}
	_, naiveStats, err := BuildIndexStats(s, 20, false)
	if err != nil {
		t.Fatal(err)
	}
	if optStats.Generated != naiveStats.Generated {
		t.Errorf("generated differ: %d vs %d", optStats.Generated, naiveStats.Generated)
	}
	// Optimized probing is N * 2^m; naive is |C| * N. With |C| >> 2^m the
	// naive mapping must do strictly more work.
	if naiveStats.MappingOps <= optStats.MappingOps {
		t.Errorf("naive ops %d not greater than optimized ops %d", naiveStats.MappingOps, optStats.MappingOps)
	}
}

func TestSingletonAndAllStar(t *testing.T) {
	s := tinySpace(t)
	ix, err := BuildIndex(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < 3; rank++ {
		c := ix.Singleton(rank)
		if !pattern.Equal(c.Pat, s.Tuples[rank]) {
			t.Errorf("Singleton(%d) = %v, want %v", rank, c.Pat, s.Tuples[rank])
		}
		if c.Size() < 1 {
			t.Errorf("singleton %d covers nothing", rank)
		}
	}
	all := ix.AllStar()
	if all.Size() != s.N() {
		t.Errorf("all-star covers %d, want %d", all.Size(), s.N())
	}
	if all.Pat.Level() != s.M() {
		t.Errorf("all-star level = %d", all.Pat.Level())
	}
}

func TestLCAClusterClosure(t *testing.T) {
	s := randomSpace(t, 15, 50, 4, 3)
	ix, err := BuildIndex(s, 12)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(16))
	for i := 0; i < 500; i++ {
		a := ix.Cluster(int32(rng.Intn(ix.NumClusters())))
		b := ix.Cluster(int32(rng.Intn(ix.NumClusters())))
		l, err := ix.LCACluster(a, b)
		if err != nil {
			t.Fatalf("LCA closure violated: %v", err)
		}
		if !l.Pat.Covers(a.Pat) || !l.Pat.Covers(b.Pat) {
			t.Fatalf("LCA %v does not cover inputs", l.Pat)
		}
	}
}

func TestLCAClusterForeign(t *testing.T) {
	s := tinySpace(t)
	ix, err := BuildIndex(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	// A cluster whose pattern is not in this index (built from rank 4 tuple
	// only, which is outside top-2 and has c4 that no top-2 tuple has).
	foreignPat, _ := s.Encode([]string{"a2", "b1", "c4", "d1"})
	foreign := &Cluster{ID: 999, Pat: foreignPat}
	if _, err := ix.LCACluster(foreign, foreign); err == nil {
		t.Error("want error for foreign cluster")
	}
}

func TestClusterAvg(t *testing.T) {
	c := &Cluster{Cov: []int32{0, 1}, Sum: 7}
	if c.Avg() != 3.5 {
		t.Errorf("Avg = %v", c.Avg())
	}
	empty := &Cluster{}
	if empty.Avg() != 0 {
		t.Errorf("empty Avg = %v", empty.Avg())
	}
}
