package lattice

// packedMap is an open-addressing hash table from packed pattern keys to
// cluster ids, replacing map[uint64]int32 on the index's hot probe paths
// (phase-2 coverage mapping probes every tuple's 2^m ancestors; LCA memo
// misses probe merged patterns). Linear probing over one flat entry array
// with a Fibonacci-multiplicative hash keeps a probe to about one cache line
// and no runtime map overhead. Ids are non-negative, so a negative id marks
// an empty slot; the zero key is a valid packed pattern and needs no
// sentinel.
//
// The table is single-writer: build it fully, then share it for concurrent
// read-only probes (the phase-2 workers do exactly that).
type packedMap struct {
	entries []packedEntry
	shift   uint // 64 - log2(len(entries)), for the multiplicative hash
	n       int
}

type packedEntry struct {
	key uint64
	id  int32
}

// fibHash is 2^64 / phi, the standard multiplicative-hash constant: it
// spreads the low-entropy packed keys (few fields vary) across the table.
const fibHash = 0x9E3779B97F4A7C15

// newPackedMap sizes the table for about capHint entries without regrowing.
func newPackedMap(capHint int) *packedMap {
	size := 64
	for size < capHint*2 {
		size <<= 1
	}
	m := &packedMap{
		entries: make([]packedEntry, size),
		shift:   uint(64 - log2(size)),
	}
	for i := range m.entries {
		m.entries[i].id = -1
	}
	return m
}

func log2(pow2 int) int {
	n := 0
	for pow2 > 1 {
		pow2 >>= 1
		n++
	}
	return n
}

// get returns the id stored for key.
func (m *packedMap) get(key uint64) (int32, bool) {
	mask := uint64(len(m.entries) - 1)
	for i := (key * fibHash) >> m.shift; ; i = (i + 1) & mask {
		e := m.entries[i]
		if e.key == key && e.id >= 0 {
			return e.id, true
		}
		if e.id < 0 {
			return 0, false
		}
	}
}

// putNew inserts key with the given id; the key must not be present (the
// build inserts each generated pattern exactly once).
func (m *packedMap) putNew(key uint64, id int32) {
	if (m.n+1)*4 >= len(m.entries)*3 {
		m.grow()
	}
	mask := uint64(len(m.entries) - 1)
	i := (key * fibHash) >> m.shift
	for m.entries[i].id >= 0 {
		i = (i + 1) & mask
	}
	m.entries[i] = packedEntry{key: key, id: id}
	m.n++
}

// getOrPut returns the id already stored for key, or inserts id and reports
// inserted = true — one probe sequence for the generate-phase dedup instead
// of a get followed by a putNew.
func (m *packedMap) getOrPut(key uint64, id int32) (int32, bool) {
	if (m.n+1)*4 >= len(m.entries)*3 {
		m.grow()
	}
	mask := uint64(len(m.entries) - 1)
	for i := (key * fibHash) >> m.shift; ; i = (i + 1) & mask {
		e := m.entries[i]
		if e.id < 0 {
			m.entries[i] = packedEntry{key: key, id: id}
			m.n++
			return id, true
		}
		if e.key == key {
			return e.id, false
		}
	}
}

func (m *packedMap) grow() {
	old := m.entries
	m.entries = make([]packedEntry, 2*len(old))
	m.shift--
	for i := range m.entries {
		m.entries[i].id = -1
	}
	mask := uint64(len(m.entries) - 1)
	for _, e := range old {
		if e.id < 0 {
			continue
		}
		j := (e.key * fibHash) >> m.shift
		for m.entries[j].id >= 0 {
			j = (j + 1) & mask
		}
		m.entries[j] = e
	}
}
