//go:build !qagcheck

package lattice

// Without -tags qagcheck the assertions compile to nothing.
func assertIndexInvariants(ix *Index, origin string) {}
