//go:build qagcheck

package lattice

import "fmt"

// Built with -tags qagcheck, every index handed out by a build or an
// incremental update is verified against the structural invariants the rest
// of the system assumes (and qagvet checks callers against statically):
// coverage lists strictly ascending, and the packed codec wide enough for
// every dictionary's active domain. Violations panic: a broken index is a
// determinism bug in the maintenance code, not a recoverable condition.
func assertIndexInvariants(ix *Index, origin string) {
	if ix == nil {
		return
	}
	for ci := range ix.Clusters {
		cov := ix.Clusters[ci].Cov
		for i := 1; i < len(cov); i++ {
			if cov[i-1] >= cov[i] {
				panic(fmt.Sprintf("qagcheck: %s: cluster %d coverage not strictly ascending at offset %d (%d then %d)", origin, ci, i, cov[i-1], cov[i]))
			}
		}
		if n := int32(ix.Space.N()); len(cov) > 0 && (cov[0] < 0 || cov[len(cov)-1] >= n) {
			panic(fmt.Sprintf("qagcheck: %s: cluster %d coverage out of tuple range [0, %d)", origin, ci, n))
		}
	}
	if ix.codec != nil {
		for j, d := range ix.Space.Dicts {
			if !ix.codec.CardFits(j, d.Len()) {
				panic(fmt.Sprintf("qagcheck: %s: codec field %d cannot hold dictionary cardinality %d; packing would alias the Star sentinel", origin, j, d.Len()))
			}
		}
	}
}
