//go:build qagcheck

package lattice

import (
	"strings"
	"testing"

	"qagview/internal/pattern"
)

// Only meaningful under -tags qagcheck: the assertions must actually fire on
// a corrupt index, otherwise the CI job checks nothing.
func TestQagcheckCatchesUnsortedCoverage(t *testing.T) {
	ix := &Index{
		Space:    &Space{Tuples: make([]pattern.Pattern, 3)},
		Clusters: []Cluster{{Cov: []int32{2, 1}}},
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("assertIndexInvariants accepted an unsorted coverage list")
		}
		if !strings.Contains(r.(string), "not strictly ascending") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	assertIndexInvariants(ix, "test")
}

func TestQagcheckCatchesOutOfRangeCoverage(t *testing.T) {
	ix := &Index{
		Space:    &Space{Tuples: make([]pattern.Pattern, 2)},
		Clusters: []Cluster{{Cov: []int32{0, 5}}},
	}
	defer func() {
		if recover() == nil {
			t.Fatal("assertIndexInvariants accepted out-of-range coverage")
		}
	}()
	assertIndexInvariants(ix, "test")
}
