// Package matching implements the Hungarian algorithm for minimum-cost
// perfect matching in a complete bipartite graph, in O(n^3). It is the
// substrate for the optimal cluster-placement problem of Appendix A.7 of the
// paper, which reduces placement of the new solution's clusters to a
// min-cost perfect matching between clusters and display positions.
package matching

import (
	"fmt"
	"math"
)

// MinCost solves the assignment problem for the square cost matrix: it
// returns assignment (assignment[i] = column assigned to row i) and the
// total cost. The implementation is the standard potentials-based Hungarian
// algorithm (Kuhn-Munkres).
func MinCost(cost [][]float64) ([]int, float64, error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, nil
	}
	for i, row := range cost {
		if len(row) != n {
			return nil, 0, fmt.Errorf("matching: row %d has %d entries, want %d (square matrix required)", i, len(row), n)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, 0, fmt.Errorf("matching: cost[%d][%d] = %v is not finite", i, j, v)
			}
		}
	}
	const inf = math.MaxFloat64
	// 1-based arrays per the classic formulation; index 0 is a sentinel.
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1)   // p[j] = row matched to column j
	way := make([]int, n+1) // way[j] = previous column on the alternating path
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	assignment := make([]int, n)
	total := 0.0
	for j := 1; j <= n; j++ {
		assignment[p[j]-1] = j - 1
		total += cost[p[j]-1][j-1]
	}
	return assignment, total, nil
}
