package matching

import (
	"math"
	"math/rand"
	"testing"
)

func bruteForce(cost [][]float64) ([]int, float64) {
	n := len(cost)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := make([]int, n)
	bestCost := math.Inf(1)
	var rec func(i int, used []bool, cur []int, sum float64)
	rec = func(i int, used []bool, cur []int, sum float64) {
		if i == n {
			if sum < bestCost {
				bestCost = sum
				copy(best, cur)
			}
			return
		}
		for j := 0; j < n; j++ {
			if used[j] {
				continue
			}
			used[j] = true
			cur[i] = j
			rec(i+1, used, cur, sum+cost[i][j])
			used[j] = false
		}
	}
	rec(0, make([]bool, n), make([]int, n), 0)
	return best, bestCost
}

func TestMinCostSmallKnown(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	assign, total, err := MinCost(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 5 { // 1 + 2 + 2
		t.Errorf("total = %v, want 5 (assignment %v)", total, assign)
	}
}

func TestMinCostEmptyAndSingle(t *testing.T) {
	if a, c, err := MinCost(nil); err != nil || len(a) != 0 || c != 0 {
		t.Errorf("empty: %v %v %v", a, c, err)
	}
	a, c, err := MinCost([][]float64{{7}})
	if err != nil || len(a) != 1 || a[0] != 0 || c != 7 {
		t.Errorf("single: %v %v %v", a, c, err)
	}
}

func TestMinCostRejectsBadInput(t *testing.T) {
	if _, _, err := MinCost([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, _, err := MinCost([][]float64{{math.NaN()}}); err == nil {
		t.Error("NaN accepted")
	}
	if _, _, err := MinCost([][]float64{{math.Inf(1)}}); err == nil {
		t.Error("Inf accepted")
	}
}

// TestMinCostMatchesBruteForce is the differential correctness test.
func TestMinCostMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = math.Round(rng.Float64()*100) / 4
			}
		}
		assign, total, err := MinCost(cost)
		if err != nil {
			t.Fatal(err)
		}
		// assignment must be a permutation.
		seen := make([]bool, n)
		sum := 0.0
		for i, j := range assign {
			if seen[j] {
				t.Fatalf("trial %d: column %d assigned twice", trial, j)
			}
			seen[j] = true
			sum += cost[i][j]
		}
		if math.Abs(sum-total) > 1e-9 {
			t.Fatalf("trial %d: reported total %v != recomputed %v", trial, total, sum)
		}
		_, want := bruteForce(cost)
		if math.Abs(total-want) > 1e-9 {
			t.Fatalf("trial %d: hungarian %v != brute force %v", trial, total, want)
		}
	}
}

func TestMinCostNegativeCosts(t *testing.T) {
	cost := [][]float64{
		{-5, 2},
		{3, -4},
	}
	_, total, err := MinCost(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != -9 {
		t.Errorf("total = %v, want -9", total)
	}
}
