// Package movielens generates a synthetic MovieLens-like RatingTable: the
// universal relation the paper materializes by joining the MovieLens 100K
// movie, user, occupation, and rating tables (Section 7). The real dataset
// is not redistributable here, so this generator produces the same schema
// (33 attributes of binary, numeric, and categorical types) with *planted
// structure*: specific viewer strata rate specific genres and periods higher
// or lower, so that aggregate queries over the table exhibit the
// high-valued-pattern phenomenon that the paper's framework summarizes
// (e.g. young male students rating older adventure movies highly, as in
// Figure 1a).
package movielens

import (
	"fmt"
	"math"
	"math/rand"

	"qagview/internal/relation"
)

// Config sizes the synthetic dataset. The defaults mirror MovieLens 100K:
// 943 users, 1682 movies, 100,000 ratings.
type Config struct {
	Users   int
	Movies  int
	Ratings int
	Seed    int64
}

// DefaultConfig returns the MovieLens-100K-scale configuration.
func DefaultConfig() Config {
	return Config{Users: 943, Movies: 1682, Ratings: 100_000, Seed: 1}
}

// Occupations is the MovieLens occupation vocabulary.
var Occupations = []string{
	"student", "programmer", "engineer", "educator", "writer", "librarian",
	"administrator", "technician", "marketing", "executive", "scientist",
	"entertainment", "healthcare", "artist", "lawyer", "salesman", "retired",
	"homemaker", "doctor", "none", "other",
}

// Genres is the MovieLens genre vocabulary (19 binary flags).
var Genres = []string{
	"unknown", "action", "adventure", "animation", "children", "comedy",
	"crime", "documentary", "drama", "fantasy", "filmnoir", "horror",
	"musical", "mystery", "romance", "scifi", "thriller", "war", "western",
}

// GroupingAttrs lists the canonical grouping attributes used by the
// experiments when varying the number of group-by attributes m: the first
// four are the running example's attributes, the rest extend m while keeping
// group counts moderate.
var GroupingAttrs = []string{
	"hdec", "agegrp", "gender", "occupation",
	"decade", "zipregion", "weekday", "genre_action", "genre_comedy", "genre_drama",
}

type user struct {
	age        int
	agegrp     string
	gender     string
	occupation string
	zipregion  string
	// Genre affinity per genre index, in rating points.
	affinity []float64
}

type movie struct {
	year   int
	decade string
	hdec   string
	genres []bool
	// Base quality in rating points.
	quality float64
}

// Generate builds the RatingTable deterministically from cfg.
func Generate(cfg Config) (*relation.Relation, error) {
	if cfg.Users < 1 || cfg.Movies < 1 || cfg.Ratings < 1 {
		return nil, fmt.Errorf("movielens: non-positive sizes in %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	users := makeUsers(rng, cfg.Users)
	movies := makeMovies(rng, cfg.Movies)

	n := cfg.Ratings
	cols := map[string]*relation.Column{}
	strCol := func(name string) *relation.Column {
		c := &relation.Column{Name: name, Kind: relation.KindString, Str: make([]string, 0, n)}
		cols[name] = c
		return c
	}
	intCol := func(name string) *relation.Column {
		c := &relation.Column{Name: name, Kind: relation.KindInt, Int: make([]int64, 0, n)}
		cols[name] = c
		return c
	}
	userID := intCol("user_id")
	age := intCol("age")
	agegrp := strCol("agegrp")
	gender := strCol("gender")
	occupation := strCol("occupation")
	zipregion := strCol("zipregion")
	movieID := intCol("movie_id")
	year := intCol("year")
	decade := strCol("decade")
	hdec := strCol("hdec")
	genreCols := make([]*relation.Column, len(Genres))
	for gi, g := range Genres {
		genreCols[gi] = intCol("genre_" + g)
	}
	weekday := strCol("weekday")
	hourofday := intCol("hourofday")
	ts := intCol("ts")
	rating := &relation.Column{Name: "rating", Kind: relation.KindFloat, Float: make([]float64, 0, n)}
	cols["rating"] = rating

	weekdays := []string{"mon", "tue", "wed", "thu", "fri", "sat", "sun"}
	for i := 0; i < n; i++ {
		u := &users[rng.Intn(len(users))]
		m := &movies[rng.Intn(len(movies))]
		userID.Int = append(userID.Int, int64(rng.Intn(len(users))+1))
		age.Int = append(age.Int, int64(u.age))
		agegrp.Str = append(agegrp.Str, u.agegrp)
		gender.Str = append(gender.Str, u.gender)
		occupation.Str = append(occupation.Str, u.occupation)
		zipregion.Str = append(zipregion.Str, u.zipregion)
		movieID.Int = append(movieID.Int, int64(rng.Intn(len(movies))+1))
		year.Int = append(year.Int, int64(m.year))
		decade.Str = append(decade.Str, m.decade)
		hdec.Str = append(hdec.Str, m.hdec)
		for gi := range Genres {
			v := int64(0)
			if m.genres[gi] {
				v = 1
			}
			genreCols[gi].Int = append(genreCols[gi].Int, v)
		}
		weekday.Str = append(weekday.Str, weekdays[rng.Intn(7)])
		hourofday.Int = append(hourofday.Int, int64(rng.Intn(24)))
		ts.Int = append(ts.Int, 874724710+int64(rng.Intn(20_000_000)))
		rating.Float = append(rating.Float, rate(rng, u, m))
	}

	order := []string{"user_id", "age", "agegrp", "gender", "occupation", "zipregion",
		"movie_id", "year", "decade", "hdec"}
	for _, g := range Genres {
		order = append(order, "genre_"+g)
	}
	order = append(order, "weekday", "hourofday", "ts", "rating")
	out := make([]relation.Column, 0, len(order))
	for _, name := range order {
		out = append(out, *cols[name])
	}
	return relation.FromColumns("RatingTable", out...)
}

func makeUsers(rng *rand.Rand, n int) []user {
	users := make([]user, n)
	regions := []string{"northeast", "midwest", "south", "west", "pacific"}
	for i := range users {
		// Age skews young, as in MovieLens.
		age := 10 + int(math.Abs(rng.NormFloat64())*12) + rng.Intn(10)
		if age > 69 {
			age = 69
		}
		g := "M"
		if rng.Float64() < 0.29 {
			g = "F"
		}
		occ := Occupations[occSample(rng)]
		u := user{
			age:        age,
			agegrp:     fmt.Sprintf("%d0s", age/10),
			gender:     g,
			occupation: occ,
			zipregion:  regions[rng.Intn(len(regions))],
			affinity:   make([]float64, len(Genres)),
		}
		for gi := range u.affinity {
			u.affinity[gi] = rng.NormFloat64() * 0.15
		}
		// Planted structure: young male students and programmers love
		// adventure, action and sci-fi; older viewers favour drama and
		// film-noir; females in their 30s favour romance slightly less than
		// documentaries.
		boost := func(genre string, amt float64) {
			u.affinity[genreIndex(genre)] += amt
		}
		if g == "M" && age < 30 && (occ == "student" || occ == "programmer" || occ == "engineer") {
			boost("adventure", 0.9)
			boost("action", 0.6)
			boost("scifi", 0.5)
		}
		if age >= 40 {
			boost("drama", 0.5)
			boost("filmnoir", 0.4)
			boost("adventure", -0.3)
		}
		if g == "F" && age >= 30 && age < 40 {
			boost("documentary", 0.4)
			boost("romance", 0.2)
		}
		if occ == "writer" || occ == "healthcare" {
			boost("adventure", -0.6)
		}
		users[i] = u
	}
	return users
}

// occSample draws an occupation index with a skewed distribution (students
// dominate MovieLens).
func occSample(rng *rand.Rand) int {
	if rng.Float64() < 0.25 {
		return 0 // student
	}
	if rng.Float64() < 0.3 {
		return 1 + rng.Intn(5) // common professions
	}
	return rng.Intn(len(Occupations))
}

func makeMovies(rng *rand.Rand, n int) []movie {
	movies := make([]movie, n)
	for i := range movies {
		// Years 1930-1998, skewed recent.
		year := 1998 - int(math.Abs(rng.NormFloat64())*15)
		if year < 1930 {
			year = 1930
		}
		m := movie{
			year:    year,
			decade:  fmt.Sprintf("%d", year/10*10),
			hdec:    fmt.Sprintf("%d", year/5*5),
			genres:  make([]bool, len(Genres)),
			quality: 3.1 + rng.NormFloat64()*0.4,
		}
		// One to three genres per movie.
		k := 1 + rng.Intn(3)
		for j := 0; j < k; j++ {
			m.genres[1+rng.Intn(len(Genres)-1)] = true
		}
		// Planted structure: older adventure movies are better; mid-90s
		// output is weaker across the board (matching the low 1995 rows of
		// Figure 1a).
		if m.genres[genreIndex("adventure")] && year < 1990 {
			m.quality += 0.5
		}
		if year >= 1995 {
			m.quality -= 0.45
		}
		movies[i] = m
	}
	return movies
}

// genreIndex returns the index of a genre name in Genres.
func genreIndex(name string) int {
	for i, g := range Genres {
		if g == name {
			return i
		}
	}
	panic("movielens: unknown genre " + name)
}

// rate draws a 1-5 star rating from user and movie latent factors.
func rate(rng *rand.Rand, u *user, m *movie) float64 {
	v := m.quality
	for gi, has := range m.genres {
		if has {
			v += u.affinity[gi]
		}
	}
	v += rng.NormFloat64() * 0.9
	r := math.Round(v)
	if r < 1 {
		r = 1
	}
	if r > 5 {
		r = 5
	}
	return r
}

// Query renders the paper's aggregate query template (Appendix A.8) over the
// first m canonical grouping attributes with the given HAVING threshold:
//
//	SELECT <attrs>, avg(rating) AS val FROM RatingTable
//	[WHERE <where>] GROUP BY <attrs>
//	HAVING count(*) > minCount ORDER BY val DESC
//
// where is an optional conjunction such as "genre_adventure = 1".
func Query(m, minCount int, where string) (string, error) {
	if m < 1 || m > len(GroupingAttrs) {
		return "", fmt.Errorf("movielens: m = %d out of range [1, %d]", m, len(GroupingAttrs))
	}
	attrs := ""
	for i := 0; i < m; i++ {
		if i > 0 {
			attrs += ", "
		}
		attrs += GroupingAttrs[i]
	}
	q := "SELECT " + attrs + ", avg(rating) AS val FROM RatingTable"
	if where != "" {
		q += " WHERE " + where
	}
	q += " GROUP BY " + attrs
	if minCount > 0 {
		q += fmt.Sprintf(" HAVING count(*) > %d", minCount)
	}
	q += " ORDER BY val DESC"
	return q, nil
}
