// Package movielens generates a synthetic MovieLens-like RatingTable: the
// universal relation the paper materializes by joining the MovieLens 100K
// movie, user, occupation, and rating tables (Section 7). The real dataset
// is not redistributable here, so this generator produces the same schema
// (33 attributes of binary, numeric, and categorical types) with *planted
// structure*: specific viewer strata rate specific genres and periods higher
// or lower, so that aggregate queries over the table exhibit the
// high-valued-pattern phenomenon that the paper's framework summarizes
// (e.g. young male students rating older adventure movies highly, as in
// Figure 1a).
package movielens

import (
	"fmt"
	"math"
	"math/rand"

	"qagview/internal/relation"
)

// Config sizes the synthetic dataset. The defaults mirror MovieLens 100K:
// 943 users, 1682 movies, 100,000 ratings.
type Config struct {
	Users   int
	Movies  int
	Ratings int
	Seed    int64
}

// DefaultConfig returns the MovieLens-100K-scale configuration.
func DefaultConfig() Config {
	return Config{Users: 943, Movies: 1682, Ratings: 100_000, Seed: 1}
}

// Occupations is the MovieLens occupation vocabulary.
var Occupations = []string{
	"student", "programmer", "engineer", "educator", "writer", "librarian",
	"administrator", "technician", "marketing", "executive", "scientist",
	"entertainment", "healthcare", "artist", "lawyer", "salesman", "retired",
	"homemaker", "doctor", "none", "other",
}

// Genres is the MovieLens genre vocabulary (19 binary flags).
var Genres = []string{
	"unknown", "action", "adventure", "animation", "children", "comedy",
	"crime", "documentary", "drama", "fantasy", "filmnoir", "horror",
	"musical", "mystery", "romance", "scifi", "thriller", "war", "western",
}

// GroupingAttrs lists the canonical grouping attributes used by the
// experiments when varying the number of group-by attributes m: the first
// four are the running example's attributes, the rest extend m while keeping
// group counts moderate.
var GroupingAttrs = []string{
	"hdec", "agegrp", "gender", "occupation",
	"decade", "zipregion", "weekday", "genre_action", "genre_comedy", "genre_drama",
}

type user struct {
	age        int
	agegrp     string
	gender     string
	occupation string
	zipregion  string
	// Genre affinity per genre index, in rating points.
	affinity []float64
}

type movie struct {
	year   int
	decade string
	hdec   string
	genres []bool
	// Base quality in rating points.
	quality float64
}

// Star holds the MovieLens base tables before denormalization: the users
// and movies dimensions and the ratings fact table referencing them by id —
// the tables the paper joins in PostgreSQL to materialize the RatingTable.
// Generate denormalizes exactly these, so the star's JoinQuery aggregates
// reproduce the flat table's bit for bit.
type Star struct {
	Users   *relation.Relation // users: user_id, age, agegrp, gender, occupation, zipregion
	Movies  *relation.Relation // movies: movie_id, year, decade, hdec, genre_*
	Ratings *relation.Relation // ratings: user_id, movie_id, weekday, hourofday, ts, rating
}

// Tables returns the star's relations for catalog registration.
func (s *Star) Tables() []*relation.Relation {
	return []*relation.Relation{s.Users, s.Movies, s.Ratings}
}

// GenerateStar builds the base tables deterministically from cfg. Every
// rating's user_id and movie_id reference the user and movie whose latent
// factors produced the rating, so joins recover the planted structure.
func GenerateStar(cfg Config) (*Star, error) {
	if cfg.Users < 1 || cfg.Movies < 1 || cfg.Ratings < 1 {
		return nil, fmt.Errorf("movielens: non-positive sizes in %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	users := makeUsers(rng, cfg.Users)
	movies := makeMovies(rng, cfg.Movies)

	uid := make([]int64, len(users))
	uage := make([]int64, len(users))
	uagegrp := make([]string, len(users))
	ugender := make([]string, len(users))
	uocc := make([]string, len(users))
	uzip := make([]string, len(users))
	for i := range users {
		u := &users[i]
		uid[i] = int64(i + 1)
		uage[i] = int64(u.age)
		uagegrp[i], ugender[i], uocc[i], uzip[i] = u.agegrp, u.gender, u.occupation, u.zipregion
	}
	userRel, err := relation.FromColumns("users",
		relation.IntCol("user_id", uid),
		relation.IntCol("age", uage),
		relation.StringCol("agegrp", uagegrp),
		relation.StringCol("gender", ugender),
		relation.StringCol("occupation", uocc),
		relation.StringCol("zipregion", uzip),
	)
	if err != nil {
		return nil, err
	}

	mid := make([]int64, len(movies))
	myear := make([]int64, len(movies))
	mdecade := make([]string, len(movies))
	mhdec := make([]string, len(movies))
	mgenres := make([][]int64, len(Genres))
	for gi := range mgenres {
		mgenres[gi] = make([]int64, len(movies))
	}
	for i := range movies {
		m := &movies[i]
		mid[i] = int64(i + 1)
		myear[i] = int64(m.year)
		mdecade[i], mhdec[i] = m.decade, m.hdec
		for gi, has := range m.genres {
			if has {
				mgenres[gi][i] = 1
			}
		}
	}
	movieCols := []relation.Column{
		relation.IntCol("movie_id", mid),
		relation.IntCol("year", myear),
		relation.StringCol("decade", mdecade),
		relation.StringCol("hdec", mhdec),
	}
	for gi, g := range Genres {
		movieCols = append(movieCols, relation.IntCol("genre_"+g, mgenres[gi]))
	}
	movieRel, err := relation.FromColumns("movies", movieCols...)
	if err != nil {
		return nil, err
	}

	n := cfg.Ratings
	fuid := make([]int64, n)
	fmid := make([]int64, n)
	fweekday := make([]string, n)
	fhour := make([]int64, n)
	fts := make([]int64, n)
	frating := make([]float64, n)
	weekdays := []string{"mon", "tue", "wed", "thu", "fri", "sat", "sun"}
	for i := 0; i < n; i++ {
		ui := rng.Intn(len(users))
		mi := rng.Intn(len(movies))
		fuid[i] = int64(ui + 1)
		fmid[i] = int64(mi + 1)
		fweekday[i] = weekdays[rng.Intn(7)]
		fhour[i] = int64(rng.Intn(24))
		fts[i] = 874724710 + int64(rng.Intn(20_000_000))
		frating[i] = rate(rng, &users[ui], &movies[mi])
	}
	ratingRel, err := relation.FromColumns("ratings",
		relation.IntCol("user_id", fuid),
		relation.IntCol("movie_id", fmid),
		relation.StringCol("weekday", fweekday),
		relation.IntCol("hourofday", fhour),
		relation.IntCol("ts", fts),
		relation.FloatCol("rating", frating),
	)
	if err != nil {
		return nil, err
	}
	return &Star{Users: userRel, Movies: movieRel, Ratings: ratingRel}, nil
}

// Denormalize materializes the flat RatingTable from the star's base tables
// — the in-code equivalent of the paper's pre-join, column for column what
// the SQL join of ratings, users, and movies produces.
func Denormalize(s *Star) (*relation.Relation, error) {
	facts := s.Ratings
	n := facts.NumRows()
	col := func(rel *relation.Relation, name string) *relation.Column {
		c, ok := rel.ColumnByName(name)
		if !ok {
			panic("movielens: missing star column " + name)
		}
		return c
	}
	fuid, fmid := col(facts, "user_id").Int, col(facts, "movie_id").Int

	gatherStr := func(rel *relation.Relation, name string, ids []int64) []string {
		src := col(rel, name).Str
		out := make([]string, n)
		for i, id := range ids {
			out[i] = src[id-1]
		}
		return out
	}
	gatherInt := func(rel *relation.Relation, name string, ids []int64) []int64 {
		src := col(rel, name).Int
		out := make([]int64, n)
		for i, id := range ids {
			out[i] = src[id-1]
		}
		return out
	}

	out := []relation.Column{
		relation.IntCol("user_id", append([]int64(nil), fuid...)),
		relation.IntCol("age", gatherInt(s.Users, "age", fuid)),
		relation.StringCol("agegrp", gatherStr(s.Users, "agegrp", fuid)),
		relation.StringCol("gender", gatherStr(s.Users, "gender", fuid)),
		relation.StringCol("occupation", gatherStr(s.Users, "occupation", fuid)),
		relation.StringCol("zipregion", gatherStr(s.Users, "zipregion", fuid)),
		relation.IntCol("movie_id", append([]int64(nil), fmid...)),
		relation.IntCol("year", gatherInt(s.Movies, "year", fmid)),
		relation.StringCol("decade", gatherStr(s.Movies, "decade", fmid)),
		relation.StringCol("hdec", gatherStr(s.Movies, "hdec", fmid)),
	}
	for _, g := range Genres {
		out = append(out, relation.IntCol("genre_"+g, gatherInt(s.Movies, "genre_"+g, fmid)))
	}
	out = append(out,
		relation.StringCol("weekday", append([]string(nil), col(facts, "weekday").Str...)),
		relation.IntCol("hourofday", append([]int64(nil), col(facts, "hourofday").Int...)),
		relation.IntCol("ts", append([]int64(nil), col(facts, "ts").Int...)),
		relation.FloatCol("rating", append([]float64(nil), col(facts, "rating").Float...)),
	)
	return relation.FromColumns("RatingTable", out...)
}

// Generate builds the flat RatingTable deterministically from cfg, by
// denormalizing the star schema of GenerateStar.
func Generate(cfg Config) (*relation.Relation, error) {
	star, err := GenerateStar(cfg)
	if err != nil {
		return nil, err
	}
	return Denormalize(star)
}

func makeUsers(rng *rand.Rand, n int) []user {
	users := make([]user, n)
	regions := []string{"northeast", "midwest", "south", "west", "pacific"}
	for i := range users {
		// Age skews young, as in MovieLens.
		age := 10 + int(math.Abs(rng.NormFloat64())*12) + rng.Intn(10)
		if age > 69 {
			age = 69
		}
		g := "M"
		if rng.Float64() < 0.29 {
			g = "F"
		}
		occ := Occupations[occSample(rng)]
		u := user{
			age:        age,
			agegrp:     fmt.Sprintf("%d0s", age/10),
			gender:     g,
			occupation: occ,
			zipregion:  regions[rng.Intn(len(regions))],
			affinity:   make([]float64, len(Genres)),
		}
		for gi := range u.affinity {
			u.affinity[gi] = rng.NormFloat64() * 0.15
		}
		// Planted structure: young male students and programmers love
		// adventure, action and sci-fi; older viewers favour drama and
		// film-noir; females in their 30s favour romance slightly less than
		// documentaries.
		boost := func(genre string, amt float64) {
			u.affinity[genreIndex(genre)] += amt
		}
		if g == "M" && age < 30 && (occ == "student" || occ == "programmer" || occ == "engineer") {
			boost("adventure", 0.9)
			boost("action", 0.6)
			boost("scifi", 0.5)
		}
		if age >= 40 {
			boost("drama", 0.5)
			boost("filmnoir", 0.4)
			boost("adventure", -0.3)
		}
		if g == "F" && age >= 30 && age < 40 {
			boost("documentary", 0.4)
			boost("romance", 0.2)
		}
		if occ == "writer" || occ == "healthcare" {
			boost("adventure", -0.6)
		}
		users[i] = u
	}
	return users
}

// occSample draws an occupation index with a skewed distribution (students
// dominate MovieLens).
func occSample(rng *rand.Rand) int {
	if rng.Float64() < 0.25 {
		return 0 // student
	}
	if rng.Float64() < 0.3 {
		return 1 + rng.Intn(5) // common professions
	}
	return rng.Intn(len(Occupations))
}

func makeMovies(rng *rand.Rand, n int) []movie {
	movies := make([]movie, n)
	for i := range movies {
		// Years 1930-1998, skewed recent.
		year := 1998 - int(math.Abs(rng.NormFloat64())*15)
		if year < 1930 {
			year = 1930
		}
		m := movie{
			year:    year,
			decade:  fmt.Sprintf("%d", year/10*10),
			hdec:    fmt.Sprintf("%d", year/5*5),
			genres:  make([]bool, len(Genres)),
			quality: 3.1 + rng.NormFloat64()*0.4,
		}
		// One to three genres per movie.
		k := 1 + rng.Intn(3)
		for j := 0; j < k; j++ {
			m.genres[1+rng.Intn(len(Genres)-1)] = true
		}
		// Planted structure: older adventure movies are better; mid-90s
		// output is weaker across the board (matching the low 1995 rows of
		// Figure 1a).
		if m.genres[genreIndex("adventure")] && year < 1990 {
			m.quality += 0.5
		}
		if year >= 1995 {
			m.quality -= 0.45
		}
		movies[i] = m
	}
	return movies
}

// genreIndex returns the index of a genre name in Genres.
func genreIndex(name string) int {
	for i, g := range Genres {
		if g == name {
			return i
		}
	}
	panic("movielens: unknown genre " + name)
}

// rate draws a 1-5 star rating from user and movie latent factors.
func rate(rng *rand.Rand, u *user, m *movie) float64 {
	v := m.quality
	for gi, has := range m.genres {
		if has {
			v += u.affinity[gi]
		}
	}
	v += rng.NormFloat64() * 0.9
	r := math.Round(v)
	if r < 1 {
		r = 1
	}
	if r > 5 {
		r = 5
	}
	return r
}

// Query renders the paper's aggregate query template (Appendix A.8) over the
// first m canonical grouping attributes with the given HAVING threshold:
//
//	SELECT <attrs>, avg(rating) AS val FROM RatingTable
//	[WHERE <where>] GROUP BY <attrs>
//	HAVING count(*) > minCount ORDER BY val DESC
//
// where is an optional conjunction such as "genre_adventure = 1".
func Query(m, minCount int, where string) (string, error) {
	return query(m, minCount, where, "RatingTable")
}

// JoinQuery renders the same aggregate template over the star schema's base
// tables, joining ratings to users and movies on their ids:
//
//	SELECT <attrs>, avg(rating) AS val FROM ratings
//	JOIN users ON ratings.user_id = users.user_id
//	JOIN movies ON ratings.movie_id = movies.movie_id
//	[WHERE <where>] GROUP BY <attrs> HAVING ... ORDER BY val DESC
//
// Its result is bit-identical to Query over the denormalized RatingTable.
func JoinQuery(m, minCount int, where string) (string, error) {
	return query(m, minCount, where,
		"ratings JOIN users ON ratings.user_id = users.user_id JOIN movies ON ratings.movie_id = movies.movie_id")
}

func query(m, minCount int, where, from string) (string, error) {
	if m < 1 || m > len(GroupingAttrs) {
		return "", fmt.Errorf("movielens: m = %d out of range [1, %d]", m, len(GroupingAttrs))
	}
	attrs := ""
	for i := 0; i < m; i++ {
		if i > 0 {
			attrs += ", "
		}
		attrs += GroupingAttrs[i]
	}
	q := "SELECT " + attrs + ", avg(rating) AS val FROM " + from
	if where != "" {
		q += " WHERE " + where
	}
	q += " GROUP BY " + attrs
	if minCount > 0 {
		q += fmt.Sprintf(" HAVING count(*) > %d", minCount)
	}
	q += " ORDER BY val DESC"
	return q, nil
}
