package movielens

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"qagview/internal/engine"
	"qagview/internal/relation"
)

type catalog map[string]*relation.Relation

func (c catalog) Table(name string) (*relation.Relation, error) {
	r, ok := c[name]
	if !ok {
		return nil, fmt.Errorf("no table %q", name)
	}
	return r, nil
}

func smallTable(t *testing.T) *relation.Relation {
	t.Helper()
	r, err := Generate(Config{Users: 200, Movies: 300, Ratings: 20_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestGenerateShape(t *testing.T) {
	r := smallTable(t)
	if r.NumRows() != 20_000 {
		t.Errorf("rows = %d", r.NumRows())
	}
	if r.NumCols() != 33 {
		t.Errorf("cols = %d, want 33 (paper's RatingTable width)", r.NumCols())
	}
	for _, name := range []string{"hdec", "agegrp", "gender", "occupation", "genre_adventure", "rating"} {
		if _, ok := r.ColumnByName(name); !ok {
			t.Errorf("missing column %q", name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{Users: 50, Movies: 60, Ratings: 500, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Users: 50, Movies: 60, Ratings: 500, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for col := 0; col < a.NumCols(); col++ {
		for row := 0; row < a.NumRows(); row++ {
			if a.StringAt(col, row) != b.StringAt(col, row) {
				t.Fatalf("nondeterministic at (%d,%d)", col, row)
			}
		}
	}
	c, err := Generate(Config{Users: 50, Movies: 60, Ratings: 500, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for row := 0; row < 50 && same; row++ {
		if a.StringAt(a.ColumnIndex("rating"), row) != c.StringAt(c.ColumnIndex("rating"), row) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical ratings prefix")
	}
}

func TestGenerateValidates(t *testing.T) {
	if _, err := Generate(Config{Users: 0, Movies: 1, Ratings: 1}); err == nil {
		t.Error("zero users accepted")
	}
}

func TestRatingsInRange(t *testing.T) {
	r := smallTable(t)
	col, _ := r.ColumnByName("rating")
	for i, v := range col.Float {
		if v < 1 || v > 5 || v != float64(int(v)) {
			t.Fatalf("rating[%d] = %v not an integer star in [1,5]", i, v)
		}
	}
}

func TestPlantedStructureVisibleInAggregates(t *testing.T) {
	// The planted affinity must surface in the paper's running query: young
	// male students should rate adventure higher than the overall adventure
	// average.
	r, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cat := catalog{"RatingTable": r}
	all, err := engine.ExecuteSQL(cat,
		"SELECT gender, avg(rating) AS val FROM RatingTable WHERE genre_adventure = 1 GROUP BY gender")
	if err != nil {
		t.Fatal(err)
	}
	overall := 0.0
	for _, v := range all.Vals {
		overall += v
	}
	overall /= float64(len(all.Vals))

	strata, err := engine.ExecuteSQL(cat, `SELECT agegrp, gender, occupation, avg(rating) AS val
		FROM RatingTable WHERE genre_adventure = 1
		GROUP BY agegrp, gender, occupation HAVING count(*) > 30 ORDER BY val DESC`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for i := range strata.Rows {
		row := strata.Rows[i]
		if row[0] == "20s" && row[1] == "M" && row[2] == "student" {
			found = true
			if strata.Vals[i] <= overall {
				t.Errorf("young male students rate adventure %v, not above overall %v", strata.Vals[i], overall)
			}
		}
	}
	if !found {
		t.Error("(20s, M, student) stratum missing from adventure aggregate")
	}
}

func TestRunningExampleQueryProducesEnoughGroups(t *testing.T) {
	r, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	q, err := Query(4, 50, "genre_adventure = 1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.ExecuteSQL(catalog{"RatingTable": r}, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.N() < 10 {
		t.Errorf("running-example query yields only %d groups; generator too sparse", res.N())
	}
	// Descending order.
	for i := 1; i < res.N(); i++ {
		if res.Vals[i] > res.Vals[i-1] {
			t.Fatal("result not sorted descending")
		}
	}
}

func TestQueryTemplate(t *testing.T) {
	q, err := Query(4, 50, "genre_adventure = 1")
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"hdec, agegrp, gender, occupation", "HAVING count(*) > 50", "WHERE genre_adventure = 1", "ORDER BY val DESC"} {
		if !strings.Contains(q, frag) {
			t.Errorf("query missing %q: %s", frag, q)
		}
	}
	if _, err := Query(0, 1, ""); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := Query(99, 1, ""); err == nil {
		t.Error("huge m accepted")
	}
	noHaving, err := Query(2, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(noHaving, "HAVING") || strings.Contains(noHaving, "WHERE") {
		t.Errorf("unexpected clauses: %s", noHaving)
	}
}

// TestStarJoinMatchesFlat pins the tentpole loader property: aggregates over
// the star schema's SQL join reproduce the denormalized RatingTable's bit
// for bit, on the reference, hash, and worst-case-optimal join paths.
func TestStarJoinMatchesFlat(t *testing.T) {
	cfg := Config{Users: 60, Movies: 80, Ratings: 900, Seed: 3}
	star, err := GenerateStar(cfg)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Denormalize(star)
	if err != nil {
		t.Fatal(err)
	}
	flatCat := catalog{"RatingTable": flat}
	starCat := catalog{}
	for _, r := range star.Tables() {
		starCat[r.Name()] = r
	}
	for _, m := range []int{2, 4} {
		fq, err := Query(m, 0, "genre_adventure = 1")
		if err != nil {
			t.Fatal(err)
		}
		jq, err := JoinQuery(m, 0, "genre_adventure = 1")
		if err != nil {
			t.Fatal(err)
		}
		want, err := engine.ExecuteSQL(flatCat, fq)
		if err != nil {
			t.Fatal(err)
		}
		if want.N() == 0 {
			t.Fatalf("flat query m=%d returned no groups", m)
		}
		for _, opts := range [][]engine.ExecOption{
			{engine.ExecReference()},
			{engine.ExecParallelism(1)},
			{engine.ExecParallelism(8)},
			{engine.ExecParallelism(8), engine.ExecStringKeys()},
			{engine.ExecParallelism(2), engine.ExecGenericJoin()},
		} {
			got, err := engine.ExecuteSQL(starCat, jq, opts...)
			if err != nil {
				t.Fatal(err)
			}
			assertSameAnswers(t, fmt.Sprintf("m=%d opts=%d", m, len(opts)), want, got)
		}
	}
}

// assertSameAnswers compares the answer space of two results bit for bit,
// ignoring the FROM-shape headers (Table differs between flat and star).
func assertSameAnswers(t *testing.T, label string, want, got *engine.Result) {
	t.Helper()
	if !reflect.DeepEqual(want.GroupBy, got.GroupBy) || want.ValName != got.ValName {
		t.Fatalf("%s: header mismatch: (%v, %q) vs (%v, %q)", label, want.GroupBy, want.ValName, got.GroupBy, got.ValName)
	}
	if !reflect.DeepEqual(want.Rows, got.Rows) {
		t.Fatalf("%s: rows mismatch:\nwant %v\ngot  %v", label, want.Rows, got.Rows)
	}
	if len(want.Vals) != len(got.Vals) {
		t.Fatalf("%s: %d vals, want %d", label, len(got.Vals), len(want.Vals))
	}
	for i := range want.Vals {
		if math.Float64bits(want.Vals[i]) != math.Float64bits(got.Vals[i]) {
			t.Fatalf("%s: val[%d] bits differ: %v vs %v", label, i, want.Vals[i], got.Vals[i])
		}
	}
}

// TestStarReferentialIntegrity checks every fact row references a real
// dimension row (the join loses no rows: same count as the flat table).
func TestStarReferentialIntegrity(t *testing.T) {
	star, err := GenerateStar(Config{Users: 30, Movies: 40, Ratings: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	uid, _ := star.Ratings.ColumnByName("user_id")
	mid, _ := star.Ratings.ColumnByName("movie_id")
	for i := range uid.Int {
		if uid.Int[i] < 1 || uid.Int[i] > int64(star.Users.NumRows()) {
			t.Fatalf("rating %d: user_id %d out of range", i, uid.Int[i])
		}
		if mid.Int[i] < 1 || mid.Int[i] > int64(star.Movies.NumRows()) {
			t.Fatalf("rating %d: movie_id %d out of range", i, mid.Int[i])
		}
	}
}
