package movielens

import (
	"fmt"
	"strings"
	"testing"

	"qagview/internal/engine"
	"qagview/internal/relation"
)

type catalog map[string]*relation.Relation

func (c catalog) Table(name string) (*relation.Relation, error) {
	r, ok := c[name]
	if !ok {
		return nil, fmt.Errorf("no table %q", name)
	}
	return r, nil
}

func smallTable(t *testing.T) *relation.Relation {
	t.Helper()
	r, err := Generate(Config{Users: 200, Movies: 300, Ratings: 20_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestGenerateShape(t *testing.T) {
	r := smallTable(t)
	if r.NumRows() != 20_000 {
		t.Errorf("rows = %d", r.NumRows())
	}
	if r.NumCols() != 33 {
		t.Errorf("cols = %d, want 33 (paper's RatingTable width)", r.NumCols())
	}
	for _, name := range []string{"hdec", "agegrp", "gender", "occupation", "genre_adventure", "rating"} {
		if _, ok := r.ColumnByName(name); !ok {
			t.Errorf("missing column %q", name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{Users: 50, Movies: 60, Ratings: 500, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Users: 50, Movies: 60, Ratings: 500, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for col := 0; col < a.NumCols(); col++ {
		for row := 0; row < a.NumRows(); row++ {
			if a.StringAt(col, row) != b.StringAt(col, row) {
				t.Fatalf("nondeterministic at (%d,%d)", col, row)
			}
		}
	}
	c, err := Generate(Config{Users: 50, Movies: 60, Ratings: 500, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for row := 0; row < 50 && same; row++ {
		if a.StringAt(a.ColumnIndex("rating"), row) != c.StringAt(c.ColumnIndex("rating"), row) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical ratings prefix")
	}
}

func TestGenerateValidates(t *testing.T) {
	if _, err := Generate(Config{Users: 0, Movies: 1, Ratings: 1}); err == nil {
		t.Error("zero users accepted")
	}
}

func TestRatingsInRange(t *testing.T) {
	r := smallTable(t)
	col, _ := r.ColumnByName("rating")
	for i, v := range col.Float {
		if v < 1 || v > 5 || v != float64(int(v)) {
			t.Fatalf("rating[%d] = %v not an integer star in [1,5]", i, v)
		}
	}
}

func TestPlantedStructureVisibleInAggregates(t *testing.T) {
	// The planted affinity must surface in the paper's running query: young
	// male students should rate adventure higher than the overall adventure
	// average.
	r, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cat := catalog{"RatingTable": r}
	all, err := engine.ExecuteSQL(cat,
		"SELECT gender, avg(rating) AS val FROM RatingTable WHERE genre_adventure = 1 GROUP BY gender")
	if err != nil {
		t.Fatal(err)
	}
	overall := 0.0
	for _, v := range all.Vals {
		overall += v
	}
	overall /= float64(len(all.Vals))

	strata, err := engine.ExecuteSQL(cat, `SELECT agegrp, gender, occupation, avg(rating) AS val
		FROM RatingTable WHERE genre_adventure = 1
		GROUP BY agegrp, gender, occupation HAVING count(*) > 30 ORDER BY val DESC`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for i := range strata.Rows {
		row := strata.Rows[i]
		if row[0] == "20s" && row[1] == "M" && row[2] == "student" {
			found = true
			if strata.Vals[i] <= overall {
				t.Errorf("young male students rate adventure %v, not above overall %v", strata.Vals[i], overall)
			}
		}
	}
	if !found {
		t.Error("(20s, M, student) stratum missing from adventure aggregate")
	}
}

func TestRunningExampleQueryProducesEnoughGroups(t *testing.T) {
	r, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	q, err := Query(4, 50, "genre_adventure = 1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.ExecuteSQL(catalog{"RatingTable": r}, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.N() < 10 {
		t.Errorf("running-example query yields only %d groups; generator too sparse", res.N())
	}
	// Descending order.
	for i := 1; i < res.N(); i++ {
		if res.Vals[i] > res.Vals[i-1] {
			t.Fatal("result not sorted descending")
		}
	}
}

func TestQueryTemplate(t *testing.T) {
	q, err := Query(4, 50, "genre_adventure = 1")
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"hdec, agegrp, gender, occupation", "HAVING count(*) > 50", "WHERE genre_adventure = 1", "ORDER BY val DESC"} {
		if !strings.Contains(q, frag) {
			t.Errorf("query missing %q: %s", frag, q)
		}
	}
	if _, err := Query(0, 1, ""); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := Query(99, 1, ""); err == nil {
		t.Error("huge m accepted")
	}
	noHaving, err := Query(2, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(noHaving, "HAVING") || strings.Contains(noHaving, "WHERE") {
		t.Errorf("unexpected clauses: %s", noHaving)
	}
}
