// Package obs is qagview's stdlib-only observability layer: request-scoped
// span trees carried through context.Context, a fixed-size ring of recent
// traces, per-query operator profiles, and a Prometheus text-format encoder.
//
// The design goal is near-zero cost when tracing is off: every entry point
// is nil-safe, StartSpan returns (ctx, nil) without allocating when the
// context carries no parent span, and callers hold plain *Span pointers so
// the disabled path is a nil check, not an interface dispatch.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is a single key/value annotation on a span. Attrs preserve insertion
// order so rendered traces are stable.
type Attr struct {
	Key string `json:"k"`
	Val string `json:"v"`
}

// Span is one timed node in a trace tree. The zero value is unusable;
// spans are created via Tracer.StartTrace and Span.Child / StartSpan.
// All methods are safe on a nil receiver, which is how the disabled
// path costs nothing: untraced requests thread nil spans everywhere.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	end      time.Time
	attrs    []Attr
	children []*Span
}

// ctxKey carries the current *Span through context.Context. A zero-size
// key type keeps context.WithValue lookups allocation-free on miss.
type ctxKey struct{}

// StartSpan creates a child of the span carried by ctx and returns a
// derived context carrying the child. When ctx carries no span (tracing
// disabled, or an untraced request) it returns (ctx, nil) without
// allocating; the nil *Span absorbs all subsequent calls.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if ctx == nil {
		// The engine accepts a nil execution context (ExecContext unset).
		return nil, nil
	}
	parent, _ := ctx.Value(ctxKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	sp := parent.Child(name)
	return withSpan(ctx, sp), sp
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// Child adds and returns a new child span. Safe for concurrent use: the
// vectorized executor creates per-worker spans from worker goroutines.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End marks the span complete. Ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// SetAttr annotates the span with a string attribute.
func (s *Span) SetAttr(key, val string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Val: val})
	s.mu.Unlock()
}

// SetInt annotates the span with an integer attribute.
func (s *Span) SetInt(key string, val int64) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatInt(val, 10))
}

// SpanSnapshot is an immutable, JSON-ready copy of a span subtree.
// Times are microseconds: StartUS is the offset from the trace root's
// start, DurUS the span's duration (measured to "now" if still open).
type SpanSnapshot struct {
	Name     string         `json:"name"`
	StartUS  int64          `json:"start_us"`
	DurUS    int64          `json:"dur_us"`
	Open     bool           `json:"open,omitempty"`
	Attrs    []Attr         `json:"attrs,omitempty"`
	Children []SpanSnapshot `json:"children,omitempty"`
}

// Snapshot copies the subtree rooted at s. base is the trace start used
// for relative offsets; pass s's own start to snapshot a detached span.
func (s *Span) Snapshot(base time.Time) SpanSnapshot {
	if s == nil {
		return SpanSnapshot{}
	}
	now := time.Now()
	return s.snapshot(base, now)
}

func (s *Span) snapshot(base, now time.Time) SpanSnapshot {
	s.mu.Lock()
	snap := SpanSnapshot{
		Name:    s.name,
		StartUS: s.start.Sub(base).Microseconds(),
	}
	if s.end.IsZero() {
		snap.Open = true
		snap.DurUS = now.Sub(s.start).Microseconds()
	} else {
		snap.DurUS = s.end.Sub(s.start).Microseconds()
	}
	if len(s.attrs) > 0 {
		snap.Attrs = append([]Attr(nil), s.attrs...)
	}
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range kids {
		snap.Children = append(snap.Children, c.snapshot(base, now))
	}
	return snap
}

// spanCount reports the number of spans in the snapshot tree.
func (s SpanSnapshot) spanCount() int {
	n := 1
	for _, c := range s.Children {
		n += c.spanCount()
	}
	return n
}

// Request IDs: a per-boot random prefix plus an atomic counter. Unique
// within a process lifetime and cheap enough for the per-request path.
var (
	ridPrefix = bootPrefix()
	ridSeq    atomic.Uint64
)

func bootPrefix() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; fall back
		// to a fixed prefix rather than take a time-based dependency.
		return "00000000"
	}
	return hex.EncodeToString(b[:])
}

// NewRequestID returns a process-unique request identifier, e.g.
// "3fa9c1d2-1f". It is stamped on responses as X-Request-Id and into
// slog records so client reports correlate with server logs and traces.
func NewRequestID() string {
	return ridPrefix + "-" + strconv.FormatUint(ridSeq.Add(1), 16)
}
