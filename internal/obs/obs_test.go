package obs

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStartSpanNoParentIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "anything")
	if sp != nil {
		t.Fatalf("expected nil span without a parent, got %v", sp)
	}
	if ctx2 != ctx {
		t.Fatalf("expected the same context back on the disabled path")
	}
	// All nil-receiver methods must be safe.
	sp.SetAttr("k", "v")
	sp.SetInt("n", 1)
	sp.Child("child").End()
	sp.End()
	if got := FromContext(ctx2); got != nil {
		t.Fatalf("FromContext on untraced ctx = %v, want nil", got)
	}
}

// TestDisabledPathZeroAlloc pins the tentpole guarantee: with tracing
// off, the instrumentation points allocate nothing.
func TestDisabledPathZeroAlloc(t *testing.T) {
	tr := NewTracer(8, discardLogger())
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		ctx2, trace := tr.StartTrace(ctx, "req", false)
		ctx3, sp := StartSpan(ctx2, "engine.execute")
		sp.SetInt("rows", 1)
		_, sp2 := StartSpan(ctx3, "merge")
		sp2.End()
		sp.End()
		tr.Finish(trace)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing path allocates %.1f per op, want 0", allocs)
	}
}

func TestSpanTreeStructure(t *testing.T) {
	tr := NewTracer(8, discardLogger())
	tr.SetEnabled(true)
	ctx, trace := tr.StartTrace(context.Background(), "req", false)
	if trace == nil {
		t.Fatal("enabled tracer returned nil trace")
	}
	ctx, a := StartSpan(ctx, "a")
	a.SetAttr("table", "ratings")
	_, b := StartSpan(ctx, "b")
	b.SetInt("rows", 42)
	b.End()
	a.End()
	tr.Finish(trace)

	snap, ok := tr.Get(trace.ID)
	if !ok {
		t.Fatalf("trace %s not retained", trace.ID)
	}
	if snap.Root.Name != "req" {
		t.Fatalf("root name %q", snap.Root.Name)
	}
	if len(snap.Root.Children) != 1 || snap.Root.Children[0].Name != "a" {
		t.Fatalf("want root->a, got %+v", snap.Root.Children)
	}
	ac := snap.Root.Children[0]
	if len(ac.Children) != 1 || ac.Children[0].Name != "b" {
		t.Fatalf("want a->b, got %+v", ac.Children)
	}
	if ac.Attrs[0] != (Attr{Key: "table", Val: "ratings"}) {
		t.Fatalf("attr %+v", ac.Attrs)
	}
	if ac.Children[0].Attrs[0] != (Attr{Key: "rows", Val: "42"}) {
		t.Fatalf("int attr %+v", ac.Children[0].Attrs)
	}
	if snap.Spans != 3 {
		t.Fatalf("span count %d, want 3", snap.Spans)
	}
	if snap.Root.Open || ac.Open || ac.Children[0].Open {
		t.Fatal("all spans ended; none should be open")
	}
}

func TestConcurrentChildren(t *testing.T) {
	tr := NewTracer(8, discardLogger())
	tr.SetEnabled(true)
	_, trace := tr.StartTrace(context.Background(), "req", false)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := trace.Root.Child(fmt.Sprintf("worker-%d", i))
			c.SetInt("i", int64(i))
			c.End()
		}(i)
	}
	wg.Wait()
	tr.Finish(trace)
	snap, _ := tr.Get(trace.ID)
	if len(snap.Root.Children) != 16 {
		t.Fatalf("children %d, want 16", len(snap.Root.Children))
	}
}

// TestRingWraparound fills the ring past capacity and checks the oldest
// traces are evicted, newest retained, in order.
func TestRingWraparound(t *testing.T) {
	const size = 4
	tr := NewTracer(size, discardLogger())
	tr.SetEnabled(true)
	var ids []string
	for i := 0; i < 11; i++ {
		_, trace := tr.StartTrace(context.Background(), fmt.Sprintf("t%d", i), false)
		tr.Finish(trace)
		ids = append(ids, trace.ID)
	}
	got := tr.Recent()
	if len(got) != size {
		t.Fatalf("ring holds %d, want %d", len(got), size)
	}
	// Newest first: t10, t9, t8, t7.
	for i := 0; i < size; i++ {
		want := fmt.Sprintf("t%d", 10-i)
		if got[i].Name != want {
			t.Fatalf("slot %d = %s, want %s", i, got[i].Name, want)
		}
	}
	// Evicted traces are gone; retained ones resolvable by ID.
	if _, ok := tr.Get(ids[0]); ok {
		t.Fatal("oldest trace should have been evicted")
	}
	if _, ok := tr.Get(ids[10]); !ok {
		t.Fatal("newest trace should be retained")
	}
	st := tr.Stats()
	if st.Total != 11 || st.Recent != size || st.Capacity != size {
		t.Fatalf("stats %+v", st)
	}
}

// TestSlowRingRetention: slow traces outlive recent-ring churn and are
// logged through slog.
func TestSlowRingRetention(t *testing.T) {
	var buf strings.Builder
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	tr := NewTracer(2, logger)
	tr.SetEnabled(true)
	tr.SetSlowThreshold(time.Nanosecond) // everything is slow

	_, slow := tr.StartTrace(context.Background(), "slowone", false)
	time.Sleep(time.Millisecond)
	tr.Finish(slow)

	tr.SetSlowThreshold(time.Hour) // subsequent traces are fast
	for i := 0; i < 5; i++ {
		_, fast := tr.StartTrace(context.Background(), "fast", false)
		tr.Finish(fast)
	}

	// The slow trace has churned out of the recent ring but must still
	// resolve via the slow ring.
	if _, ok := tr.Get(slow.ID); !ok {
		t.Fatal("slow trace evicted; slow ring must retain it")
	}
	var found bool
	for _, s := range tr.Recent() {
		if s.ID == slow.ID {
			found = true
			if !s.Slow {
				t.Fatal("slow trace not flagged in listing")
			}
		}
	}
	if !found {
		t.Fatal("slow trace missing from listing")
	}
	if !strings.Contains(buf.String(), "slow trace") || !strings.Contains(buf.String(), slow.ID) {
		t.Fatalf("slow trace not logged: %q", buf.String())
	}
	if st := tr.Stats(); st.SlowTotal != 1 {
		t.Fatalf("slow total %d, want 1", st.SlowTotal)
	}
}

func TestForcedTraceWhileDisabled(t *testing.T) {
	tr := NewTracer(8, discardLogger())
	if tr.Enabled() {
		t.Fatal("tracer should start disabled")
	}
	ctx, trace := tr.StartTrace(context.Background(), "forced", true)
	if trace == nil {
		t.Fatal("force=true must start a trace even when disabled")
	}
	_, sp := StartSpan(ctx, "child")
	sp.End()
	tr.Finish(trace)
	if snap, ok := tr.Get(trace.ID); !ok || snap.Spans != 2 {
		t.Fatalf("forced trace not retained correctly: %+v ok=%v", snap, ok)
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	ctx, trace := tr.StartTrace(context.Background(), "x", true)
	if trace != nil {
		t.Fatal("nil tracer must not trace")
	}
	_ = ctx
	tr.Finish(nil)
	if tr.Enabled() {
		t.Fatal("nil tracer enabled")
	}
	if got := tr.Recent(); got != nil {
		t.Fatalf("nil tracer Recent = %v", got)
	}
}

func TestRequestIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewRequestID()
		if seen[id] {
			t.Fatalf("duplicate request id %s", id)
		}
		seen[id] = true
		if !strings.Contains(id, "-") {
			t.Fatalf("malformed id %s", id)
		}
	}
}

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(discard{}, nil))
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
