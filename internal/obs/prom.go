package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromWriter renders the Prometheus text exposition format (version
// 0.0.4) by hand: the module takes no dependencies, and the subset we
// emit — counters and gauges with optional labels — is small enough
// that a correct encoder is ~100 lines. ParseExposition below is the
// matching validator used by unit tests and the e2e smoke scrape.
type PromWriter struct {
	b strings.Builder
}

// Family starts a new metric family, emitting # HELP and # TYPE lines.
// typ must be "counter" or "gauge".
func (w *PromWriter) Family(name, typ, help string) {
	w.b.WriteString("# HELP ")
	w.b.WriteString(name)
	w.b.WriteByte(' ')
	w.b.WriteString(escapeHelp(help))
	w.b.WriteByte('\n')
	w.b.WriteString("# TYPE ")
	w.b.WriteString(name)
	w.b.WriteByte(' ')
	w.b.WriteString(typ)
	w.b.WriteByte('\n')
}

// Sample emits one sample line. labels are alternating key, value pairs;
// values are escaped per the exposition format.
func (w *PromWriter) Sample(name string, value float64, labels ...string) {
	w.b.WriteString(name)
	if len(labels) > 0 {
		w.b.WriteByte('{')
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				w.b.WriteByte(',')
			}
			w.b.WriteString(labels[i])
			w.b.WriteString(`="`)
			w.b.WriteString(escapeLabel(labels[i+1]))
			w.b.WriteByte('"')
		}
		w.b.WriteByte('}')
	}
	w.b.WriteByte(' ')
	w.b.WriteString(formatValue(value))
	w.b.WriteByte('\n')
}

// String returns the rendered exposition body.
func (w *PromWriter) String() string { return w.b.String() }

func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(s)
}

// PromSample is one parsed sample line.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// PromFamily is one parsed metric family.
type PromFamily struct {
	Name    string
	Type    string
	Help    string
	Samples []PromSample
}

// ParseExposition parses and validates a Prometheus text-format body.
// It enforces the invariants our encoder (and the scrapers we care
// about) rely on: every sample belongs to a declared family, TYPE is
// counter/gauge/histogram/summary/untyped, metric and label names match
// the Prometheus grammar, values parse as floats, and no family is
// declared twice.
func ParseExposition(body string) ([]PromFamily, error) {
	var fams []PromFamily
	byName := map[string]int{}
	for ln, line := range strings.Split(body, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, _ := strings.Cut(rest, " ")
			if !validMetricName(name) {
				return nil, fmt.Errorf("line %d: invalid metric name %q in HELP", lineNo, name)
			}
			if _, dup := byName[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate family %q", lineNo, name)
			}
			byName[name] = len(fams)
			fams = append(fams, PromFamily{Name: name, Help: strings.TrimPrefix(rest, name+" ")})
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: malformed TYPE line", lineNo)
			}
			name, typ := fields[0], fields[1]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: invalid metric type %q", lineNo, typ)
			}
			idx, ok := byName[name]
			if !ok {
				byName[name] = len(fams)
				fams = append(fams, PromFamily{Name: name})
				idx = len(fams) - 1
			}
			if fams[idx].Type != "" {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
			}
			fams[idx].Type = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		famName := s.Name
		// Histogram/summary series attach to their base family.
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(s.Name, suf); base != s.Name {
				if _, ok := byName[base]; ok {
					famName = base
					break
				}
			}
		}
		idx, ok := byName[famName]
		if !ok {
			return nil, fmt.Errorf("line %d: sample %q has no declared family", lineNo, s.Name)
		}
		fams[idx].Samples = append(fams[idx].Samples, s)
	}
	for _, f := range fams {
		if f.Type == "" {
			return nil, fmt.Errorf("family %q has HELP but no TYPE", f.Name)
		}
		if len(f.Samples) == 0 {
			return nil, fmt.Errorf("family %q declared but has no samples", f.Name)
		}
	}
	return fams, nil
}

func parseSampleLine(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	rest := line
	brace := strings.IndexByte(rest, '{')
	var nameEnd int
	if brace >= 0 {
		nameEnd = brace
	} else if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		nameEnd = sp
	} else {
		return s, fmt.Errorf("no value on sample line %q", line)
	}
	s.Name = rest[:nameEnd]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[nameEnd:]
	if brace >= 0 {
		end, err := parseLabels(rest, s.Labels)
		if err != nil {
			return s, err
		}
		rest = rest[end:]
	}
	rest = strings.TrimLeft(rest, " ")
	// A timestamp may follow the value; we only emit value-only lines but
	// accept timestamps for generality.
	valStr, _, _ := strings.Cut(rest, " ")
	v, err := parsePromValue(valStr)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", valStr, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a {k="v",...} block at the start of rest, filling
// into. It returns the index just past the closing brace.
func parseLabels(rest string, into map[string]string) (int, error) {
	i := 1 // past '{'
	for {
		if i >= len(rest) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if rest[i] == '}' {
			return i + 1, nil
		}
		eq := strings.IndexByte(rest[i:], '=')
		if eq < 0 {
			return 0, fmt.Errorf("label without '='")
		}
		key := rest[i : i+eq]
		if !validLabelName(key) {
			return 0, fmt.Errorf("invalid label name %q", key)
		}
		i += eq + 1
		if i >= len(rest) || rest[i] != '"' {
			return 0, fmt.Errorf("label value for %q not quoted", key)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(rest) {
				return 0, fmt.Errorf("unterminated label value for %q", key)
			}
			c := rest[i]
			if c == '\\' {
				if i+1 >= len(rest) {
					return 0, fmt.Errorf("dangling escape in label %q", key)
				}
				switch rest[i+1] {
				case '\\':
					val.WriteByte('\\')
				case 'n':
					val.WriteByte('\n')
				case '"':
					val.WriteByte('"')
				default:
					return 0, fmt.Errorf("bad escape \\%c in label %q", rest[i+1], key)
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := into[key]; dup {
			return 0, fmt.Errorf("duplicate label %q", key)
		}
		into[key] = val.String()
		if i < len(rest) && rest[i] == ',' {
			i++
		}
	}
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "NaN":
		return math.NaN(), nil
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// FindSample locates a sample by family name and an exact label subset
// match (every given label must be present with the given value). It is
// the lookup helper tests and promlint use.
func FindSample(fams []PromFamily, name string, labels map[string]string) (PromSample, bool) {
	for _, f := range fams {
		if f.Name != name {
			continue
		}
		for _, s := range f.Samples {
			match := true
			for k, v := range labels {
				if s.Labels[k] != v {
					match = false
					break
				}
			}
			if match {
				return s, true
			}
		}
	}
	return PromSample{}, false
}

// FamilyNames returns the sorted names of all parsed families.
func FamilyNames(fams []PromFamily) []string {
	names := make([]string, 0, len(fams))
	for _, f := range fams {
		names = append(names, f.Name)
	}
	sort.Strings(names)
	return names
}
