package obs

import (
	"math"
	"strings"
	"testing"
)

func TestPromRoundTrip(t *testing.T) {
	var w PromWriter
	w.Family("qag_requests_total", "counter", "Requests by route and code.")
	w.Sample("qag_requests_total", 12, "route", "POST /v1/queries", "code", "200")
	w.Sample("qag_requests_total", 3, "route", "GET /healthz", "code", "200")
	w.Family("qag_heap_bytes", "gauge", "Heap in use.")
	w.Sample("qag_heap_bytes", 1048576)
	w.Family("qag_weird", "gauge", `escapes \ and "quotes"`)
	w.Sample("qag_weird", math.Inf(1), "v", "a\\b\"c\nd")

	fams, err := ParseExposition(w.String())
	if err != nil {
		t.Fatalf("our own output failed to parse: %v\n%s", err, w.String())
	}
	if len(fams) != 3 {
		t.Fatalf("families %d, want 3", len(fams))
	}
	s, ok := FindSample(fams, "qag_requests_total", map[string]string{"route": "POST /v1/queries"})
	if !ok || s.Value != 12 || s.Labels["code"] != "200" {
		t.Fatalf("lookup failed: %+v ok=%v", s, ok)
	}
	if s, ok := FindSample(fams, "qag_heap_bytes", nil); !ok || s.Value != 1048576 {
		t.Fatalf("unlabeled lookup: %+v ok=%v", s, ok)
	}
	s, ok = FindSample(fams, "qag_weird", nil)
	if !ok || !math.IsInf(s.Value, 1) {
		t.Fatalf("inf value: %+v", s)
	}
	if s.Labels["v"] != "a\\b\"c\nd" {
		t.Fatalf("label escaping roundtrip: %q", s.Labels["v"])
	}
	names := FamilyNames(fams)
	if strings.Join(names, ",") != "qag_heap_bytes,qag_requests_total,qag_weird" {
		t.Fatalf("names %v", names)
	}
}

func TestParseExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"sample without family": "orphan_metric 1\n",
		"bad type":              "# HELP m h\n# TYPE m enum\nm 1\n",
		"no TYPE":               "# HELP m h\nm 1\n",
		"family without sample": "# HELP m h\n# TYPE m gauge\n",
		"bad metric name":       "# HELP 9bad h\n# TYPE 9bad gauge\n9bad 1\n",
		"bad value":             "# HELP m h\n# TYPE m gauge\nm notafloat\n",
		"unterminated labels":   "# HELP m h\n# TYPE m gauge\nm{a=\"x\n",
		"duplicate family":      "# HELP m h\n# TYPE m gauge\nm 1\n# HELP m h\n# TYPE m gauge\nm 2\n",
		"duplicate label":       "# HELP m h\n# TYPE m gauge\nm{a=\"1\",a=\"2\"} 3\n",
		"reserved label":        "# HELP m h\n# TYPE m gauge\nm{__a=\"1\"} 3\n",
	}
	for name, body := range cases {
		if _, err := ParseExposition(body); err == nil {
			t.Errorf("%s: expected parse error for %q", name, body)
		}
	}
}

func TestParseExpositionAcceptsTimestampAndComments(t *testing.T) {
	body := "# scraped by test\n# HELP m h\n# TYPE m counter\nm{a=\"b\"} 4 1712345678\n"
	fams, err := ParseExposition(body)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if s, ok := FindSample(fams, "m", nil); !ok || s.Value != 4 {
		t.Fatalf("sample %+v ok=%v", s, ok)
	}
}
