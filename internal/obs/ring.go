package obs

import (
	"context"
	"log/slog"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// withSpan returns a context carrying sp as the current span.
func withSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, sp)
}

// Trace is one completed (or in-flight) request-scoped span tree.
type Trace struct {
	ID    string
	Name  string
	Start time.Time
	Root  *Span

	dur time.Duration // set by Tracer.Finish
}

// Snapshot renders the trace as a JSON-ready tree.
func (tr *Trace) Snapshot() TraceSnapshot {
	if tr == nil {
		return TraceSnapshot{}
	}
	root := tr.Root.Snapshot(tr.Start)
	dur := tr.dur
	if dur == 0 {
		dur = time.Since(tr.Start)
	}
	return TraceSnapshot{
		ID:         tr.ID,
		Name:       tr.Name,
		Start:      tr.Start.UTC().Format(time.RFC3339Nano),
		DurationMS: float64(dur) / float64(time.Millisecond),
		Spans:      root.spanCount(),
		Root:       root,
	}
}

// TraceSnapshot is the wire form of a trace served at /debug/traces/{id}
// and inlined by ?trace=1.
type TraceSnapshot struct {
	ID         string       `json:"id"`
	Name       string       `json:"name"`
	Start      string       `json:"start"`
	DurationMS float64      `json:"duration_ms"`
	Spans      int          `json:"spans"`
	Root       SpanSnapshot `json:"root"`
}

// TraceSummary is the index form served at /debug/traces.
type TraceSummary struct {
	ID         string  `json:"id"`
	Name       string  `json:"name"`
	Start      string  `json:"start"`
	DurationMS float64 `json:"duration_ms"`
	Slow       bool    `json:"slow,omitempty"`
}

// Tracer owns the enabled gate, trace-ID sequence, and two fixed-size
// rings: recent completed traces (overwritten in arrival order) and slow
// traces (retained past ring churn, and logged through slog).
type Tracer struct {
	enabled   atomic.Bool
	slowNanos atomic.Int64
	seq       atomic.Uint64
	prefix    string
	logger    *slog.Logger

	mu        sync.Mutex
	recent    []*Trace // ring of cap ringSize
	next      int
	total     uint64
	slow      []*Trace // ring of cap ringSize
	slowNext  int
	slowTotal uint64
	ringSize  int
}

// DefaultRingSize is the per-ring trace capacity when none is configured.
const DefaultRingSize = 256

// NewTracer returns a disabled tracer with the given ring capacity
// (DefaultRingSize if size <= 0). logger may be nil; slow-trace logging
// then uses slog.Default().
func NewTracer(size int, logger *slog.Logger) *Tracer {
	if size <= 0 {
		size = DefaultRingSize
	}
	if logger == nil {
		logger = slog.Default()
	}
	return &Tracer{prefix: bootPrefix(), logger: logger, ringSize: size}
}

// SetEnabled flips the global tracing gate.
func (t *Tracer) SetEnabled(on bool) { t.enabled.Store(on) }

// Enabled reports whether tracing is globally on. One atomic load: this
// is the per-request fast path.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SetSlowThreshold sets the duration at or above which a finished trace
// is retained in the slow ring and logged. Zero disables slow capture.
func (t *Tracer) SetSlowThreshold(d time.Duration) { t.slowNanos.Store(int64(d)) }

// SlowThreshold returns the armed slow-capture threshold (0 = disarmed).
func (t *Tracer) SlowThreshold() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.slowNanos.Load())
}

// StartTrace begins a new trace rooted at name and returns a context
// carrying the root span. When tracing is disabled and force is false it
// returns (ctx, nil); Finish(nil) is a no-op, so callers need no branches.
// force starts the trace regardless of the gate (the ?trace=1 opt-in).
func (t *Tracer) StartTrace(ctx context.Context, name string, force bool) (context.Context, *Trace) {
	if t == nil || (!t.enabled.Load() && !force) {
		return ctx, nil
	}
	now := time.Now()
	tr := &Trace{
		ID:    t.prefix + "-" + strconv.FormatUint(t.seq.Add(1), 16),
		Name:  name,
		Start: now,
		Root:  &Span{name: name, start: now},
	}
	return withSpan(ctx, tr.Root), tr
}

// Finish ends the trace's root span, records the trace in the recent
// ring, and — when it crossed the slow threshold — in the slow ring plus
// the structured log. Finish(nil) is a no-op.
func (t *Tracer) Finish(tr *Trace) {
	if t == nil || tr == nil {
		return
	}
	tr.Root.End()
	tr.dur = time.Since(tr.Start)

	slowAt := time.Duration(t.slowNanos.Load())
	isSlow := slowAt > 0 && tr.dur >= slowAt

	t.mu.Lock()
	if len(t.recent) < t.ringSize {
		t.recent = append(t.recent, tr)
	} else {
		t.recent[t.next] = tr
	}
	t.next = (t.next + 1) % t.ringSize
	t.total++
	if isSlow {
		if len(t.slow) < t.ringSize {
			t.slow = append(t.slow, tr)
		} else {
			t.slow[t.slowNext] = tr
		}
		t.slowNext = (t.slowNext + 1) % t.ringSize
		t.slowTotal++
	}
	t.mu.Unlock()

	if isSlow {
		t.logger.Warn("slow trace",
			"trace_id", tr.ID,
			"name", tr.Name,
			"duration_ms", float64(tr.dur)/float64(time.Millisecond),
			"threshold_ms", float64(slowAt)/float64(time.Millisecond))
	}
}

// Recent returns summaries of retained traces, newest first. Slow-ring
// traces that have already churned out of the recent ring are appended
// after the recent ones, also newest first.
func (t *Tracer) Recent() []TraceSummary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	recent := t.ringNewestFirst(t.recent, t.next)
	slow := t.ringNewestFirst(t.slow, t.slowNext)
	t.mu.Unlock()

	seen := make(map[string]bool, len(recent))
	var out []TraceSummary
	for _, tr := range recent {
		seen[tr.ID] = true
		out = append(out, summarize(tr, false))
	}
	for _, tr := range slow {
		if !seen[tr.ID] {
			out = append(out, summarize(tr, true))
		}
	}
	// Mark slowness on entries still present in the recent ring.
	slowIDs := make(map[string]bool, len(slow))
	for _, tr := range slow {
		slowIDs[tr.ID] = true
	}
	for i := range out {
		if slowIDs[out[i].ID] {
			out[i].Slow = true
		}
	}
	return out
}

// ringNewestFirst flattens a ring (next = index of the oldest entry once
// full) into newest-first order. Caller holds t.mu.
func (t *Tracer) ringNewestFirst(ring []*Trace, next int) []*Trace {
	out := make([]*Trace, 0, len(ring))
	for i := 0; i < len(ring); i++ {
		idx := next - 1 - i
		for idx < 0 {
			idx += len(ring)
		}
		out = append(out, ring[idx%len(ring)])
	}
	return out
}

func summarize(tr *Trace, slow bool) TraceSummary {
	return TraceSummary{
		ID:         tr.ID,
		Name:       tr.Name,
		Start:      tr.Start.UTC().Format(time.RFC3339Nano),
		DurationMS: float64(tr.dur) / float64(time.Millisecond),
		Slow:       slow,
	}
}

// Get returns the full snapshot of a retained trace by ID.
func (t *Tracer) Get(id string) (TraceSnapshot, bool) {
	if t == nil {
		return TraceSnapshot{}, false
	}
	t.mu.Lock()
	var found *Trace
	for _, tr := range t.recent {
		if tr.ID == id {
			found = tr
			break
		}
	}
	if found == nil {
		for _, tr := range t.slow {
			if tr.ID == id {
				found = tr
				break
			}
		}
	}
	t.mu.Unlock()
	if found == nil {
		return TraceSnapshot{}, false
	}
	return found.Snapshot(), true
}

// RingStats describes ring occupancy for /metrics gauges.
type RingStats struct {
	Enabled   bool   `json:"enabled"`
	Capacity  int    `json:"capacity"`
	Recent    int    `json:"recent"`
	Slow      int    `json:"slow"`
	Total     uint64 `json:"total"`
	SlowTotal uint64 `json:"slow_total"`
}

// Stats reports ring occupancy and lifetime totals.
func (t *Tracer) Stats() RingStats {
	if t == nil {
		return RingStats{}
	}
	t.mu.Lock()
	st := RingStats{
		Enabled:   t.enabled.Load(),
		Capacity:  t.ringSize,
		Recent:    len(t.recent),
		Slow:      len(t.slow),
		Total:     t.total,
		SlowTotal: t.slowTotal,
	}
	t.mu.Unlock()
	return st
}
