package pattern

import "math/bits"

// Codec packs whole patterns into single uint64 words. Each attribute gets a
// bit field just wide enough for its active domain plus the Star sentinel
// (the all-ones field value, which no dictionary id can take), so a pattern
// over m attributes becomes one integer usable directly as a hash key, and
// the pattern algebra (Covers, Distance, LCA, Level) runs word-parallel on
// masks and popcounts instead of looping over []int32 positions.
//
// A codec exists only when the widths fit: NewCodec reports ok = false when
// the summed field widths exceed 64 bits, and callers fall back to the slice
// representation. Packing is injective (each distinct pattern has one key),
// and all operations agree exactly with their slice counterparts — see the
// property tests in packed_test.go.
type Codec struct {
	m     int
	shift []uint8  // field bit offset per attribute; fields are contiguous from bit 0
	field []uint64 // all-ones mask over each attribute's field (== the Star sentinel)

	// prefix[j] is the union of field[0..j-1]: the low-field mask used by the
	// packed ancestor enumeration ((1 << shift[j]) - 1, since fields are
	// contiguous).
	prefix []uint64

	hiMask  uint64 // the top bit of every field
	loMask  uint64 // every field bit except its top bit
	allMask uint64 // every field bit (== the all-star pattern)

	// fieldAt maps a bit position to the attribute whose field contains it,
	// for expanding per-field indicator bits back to full field masks.
	fieldAt [64]uint8
}

// NewCodec derives field widths from per-attribute cardinalities (active
// domain sizes): attribute j gets the narrowest field holding ids 0..cards[j]-1
// plus the all-ones Star sentinel. It returns ok = false — no codec — when the
// total width exceeds 64 bits and callers must keep the slice representation.
func NewCodec(cards []int) (*Codec, bool) {
	m := len(cards)
	if m == 0 || m > MaxAttrs {
		return nil, false
	}
	c := &Codec{
		m:      m,
		shift:  make([]uint8, m),
		field:  make([]uint64, m),
		prefix: make([]uint64, m+1),
	}
	off := 0
	for j, card := range cards {
		// Need (1<<w)-1 > card-1, i.e. 1<<w >= card+1: ids stay below the
		// all-ones sentinel.
		w := bits.Len(uint(card))
		if w == 0 {
			w = 1
		}
		if off+w > 64 {
			return nil, false
		}
		c.shift[j] = uint8(off)
		c.field[j] = ((uint64(1) << w) - 1) << off
		c.prefix[j] = (uint64(1) << off) - 1
		c.hiMask |= uint64(1) << (off + w - 1)
		for b := off; b < off+w; b++ {
			c.fieldAt[b] = uint8(j)
		}
		off += w
	}
	if off == 64 {
		c.prefix[m] = ^uint64(0)
	} else {
		c.prefix[m] = (uint64(1) << off) - 1
	}
	c.allMask = c.prefix[m]
	c.loMask = c.allMask &^ c.hiMask
	return c, true
}

// M returns the number of attributes the codec packs.
func (c *Codec) M() int { return c.m }

// Field returns the all-ones mask over attribute j's bit field — the packed
// Star sentinel for that attribute. Or-ing it into a packed key stars the
// attribute, which is how incremental maintenance jumps from a cluster to
// its lattice parent in O(1).
func (c *Codec) Field(j int) uint64 { return c.field[j] }

// CardFits reports whether attribute j's field can hold an active domain of
// the given cardinality: every id 0..card-1 must stay strictly below the
// all-ones Star sentinel. Incremental maintenance uses it to detect when
// newly interned dictionary values overflow the packed widths, forcing a
// codec re-derivation (or the slice-key fallback).
func (c *Codec) CardFits(j, card int) bool {
	return uint64(card) <= c.field[j]>>c.shift[j]
}

// AllStar returns the packed all-star pattern (every field all-ones).
func (c *Codec) AllStar() uint64 { return c.allMask }

// Pack encodes p, which must have m attributes with every concrete value in
// its field's range (true for any pattern over the codec's dictionaries).
// Use PackChecked for patterns from untrusted sources.
func (c *Codec) Pack(p Pattern) uint64 {
	var key uint64
	for j, v := range p {
		if v == Star {
			key |= c.field[j]
		} else {
			key |= uint64(uint32(v)) << c.shift[j]
		}
	}
	return key
}

// PackChecked is Pack validating arity and field ranges: it reports ok =
// false when p has the wrong number of attributes or a concrete value that
// does not fit its field below the Star sentinel (such a pattern cannot
// equal any packed pattern of this codec's space, so lookups by key must
// treat it as absent rather than risk a colliding encoding).
func (c *Codec) PackChecked(p Pattern) (uint64, bool) {
	if len(p) != c.m {
		return 0, false
	}
	var key uint64
	for j, v := range p {
		if v == Star {
			key |= c.field[j]
			continue
		}
		// Validate before shifting: a shift can push high bits off the word
		// and alias a different (valid) key. Values must stay strictly below
		// the all-ones sentinel.
		if v < 0 || uint64(v) >= c.field[j]>>c.shift[j] {
			return 0, false
		}
		key |= uint64(v) << c.shift[j]
	}
	return key, true
}

// Unpack decodes key into dst, which must have m attributes.
func (c *Codec) Unpack(key uint64, dst Pattern) {
	for j := range dst {
		f := key & c.field[j]
		if f == c.field[j] {
			dst[j] = Star
		} else {
			dst[j] = int32(f >> c.shift[j])
		}
	}
}

// nonzero returns a per-field indicator of the fields of x that are nonzero,
// one bit at each such field's top position (the SWAR carry trick: adding the
// low-bits mask to a field's low bits carries into its top bit exactly when
// some low bit is set; carries cannot cross fields because each sum stays
// below the field's capacity).
func (c *Codec) nonzero(x uint64) uint64 {
	return ((x & c.loMask) + c.loMask | x) & c.hiMask
}

// starBits returns a per-field indicator (top bit of each field) of the
// fields of p that hold the Star sentinel: exactly the fields where the
// complement within the field mask is zero.
func (c *Codec) starBits(p uint64) uint64 {
	return c.hiMask &^ c.nonzero(p^c.allMask)
}

// Covers reports whether packed p covers packed q: every field of p is Star
// or equal to q's. It is the word-parallel equivalent of Pattern.Covers.
func (c *Codec) Covers(p, q uint64) bool {
	return c.nonzero(p^q)&^c.starBits(p) == 0
}

// Distance is the cluster distance of Definition 3.1 on packed patterns: the
// popcount of the per-field indicator of fields where the sides differ or at
// least one is Star. (A Star differs bitwise from every concrete id, so the
// xor term already covers star-vs-concrete fields; star-vs-star is added by
// the starBits term.)
func (c *Codec) Distance(p, q uint64) int {
	return bits.OnesCount64(c.nonzero(p^q) | c.starBits(p))
}

// Level returns the semilattice level of packed p (its number of Stars).
func (c *Codec) Level(p uint64) int {
	return bits.OnesCount64(c.starBits(p))
}

// LCA returns the packed least common ancestor: fields where p and q agree on
// a concrete value are kept, every other field becomes Star. The fields to
// star arrive as one indicator word; each set bit is expanded to its full
// field mask (iterating only set bits, like a popcount loop).
func (c *Codec) LCA(p, q uint64) uint64 {
	r := p
	for s := c.nonzero(p^q) | c.starBits(p); s != 0; s &= s - 1 {
		r |= c.field[c.fieldAt[bits.TrailingZeros64(s)]]
	}
	return r
}

// Ancestors enumerates the packed keys of all 2^m generalizations of the
// packed concrete tuple base, in the same subset-bitmask order as Ancestors
// (bit j of the mask = attribute j starred): the tuple itself first, the
// all-star pattern last. Each step costs O(1) words: incrementing the subset
// mask clears a run of trailing fields and stars one new field, so the
// accumulated star mask is patched with two precomputed masks instead of
// being rebuilt per ancestor.
func (c *Codec) Ancestors(base uint64, fn func(uint64)) {
	fn(base) // mask 0: the concrete tuple
	var acc uint64
	for mask, last := uint32(1), uint32(1)<<c.m; mask < last; mask++ {
		k := bits.TrailingZeros32(mask)
		acc = acc&^c.prefix[k] | c.field[k]
		fn(base | acc)
	}
}

// AppendAncestors appends the same 2^m keys as Ancestors, in the same order,
// to dst and returns it. Enumerating into a reused buffer removes the
// callback indirection per ancestor, which matters in the cluster-mapping
// loop that runs this once per tuple.
func (c *Codec) AppendAncestors(base uint64, dst []uint64) []uint64 {
	dst = append(dst, base)
	var acc uint64
	for mask, last := uint32(1), uint32(1)<<c.m; mask < last; mask++ {
		k := bits.TrailingZeros32(mask)
		acc = acc&^c.prefix[k] | c.field[k]
		dst = append(dst, base|acc)
	}
	return dst
}
