package pattern

import (
	"math/rand"
	"testing"
)

// genCodec draws random per-attribute cardinalities (mixing tiny and
// mid-sized domains) and builds a codec over them; ok must hold for the
// widths drawn here.
func genCodec(t *testing.T, rng *rand.Rand, m int) (*Codec, []int) {
	t.Helper()
	cards := make([]int, m)
	for j := range cards {
		switch rng.Intn(3) {
		case 0:
			cards[j] = 1 + rng.Intn(3) // 1-2 bit fields
		case 1:
			cards[j] = 4 + rng.Intn(12) // 3-4 bit fields
		default:
			cards[j] = 16 + rng.Intn(48) // 5-6 bit fields
		}
	}
	c, ok := NewCodec(cards)
	if !ok {
		t.Fatalf("codec over %v should fit 64 bits", cards)
	}
	return c, cards
}

// genCodecPattern draws a random pattern over the codec's domains; starP is
// the per-attribute probability (out of 100) of drawing Star.
func genCodecPattern(rng *rand.Rand, cards []int, starP int) Pattern {
	p := make(Pattern, len(cards))
	for j := range p {
		if rng.Intn(100) < starP {
			p[j] = Star
		} else {
			p[j] = int32(rng.Intn(cards[j]))
		}
	}
	return p
}

// TestPackedOpsMatchSlice is the packed-vs-slice property test: on random
// codecs and randomized patterns — including star-heavy ones — Covers,
// Distance, LCA, and Level must agree exactly between the packed and slice
// representations, and Pack/Unpack must round-trip.
func TestPackedOpsMatchSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		m := 1 + rng.Intn(10)
		c, cards := genCodec(t, rng, m)
		for _, starP := range []int{0, 33, 80, 100} {
			for i := 0; i < 50; i++ {
				p := genCodecPattern(rng, cards, starP)
				q := genCodecPattern(rng, cards, starP)
				pk, qk := c.Pack(p), c.Pack(q)

				back := make(Pattern, m)
				c.Unpack(pk, back)
				if !Equal(p, back) {
					t.Fatalf("round trip: %v -> %x -> %v (cards %v)", p, pk, back, cards)
				}
				if got, want := c.Covers(pk, qk), p.Covers(q); got != want {
					t.Fatalf("Covers(%v, %v) packed %v, slice %v", p, q, got, want)
				}
				if got, want := c.Distance(pk, qk), Distance(p, q); got != want {
					t.Fatalf("Distance(%v, %v) packed %d, slice %d", p, q, got, want)
				}
				if got, want := c.Level(pk), p.Level(); got != want {
					t.Fatalf("Level(%v) packed %d, slice %d", p, got, want)
				}
				c.Unpack(c.LCA(pk, qk), back)
				if want := LCA(p, q); !Equal(back, want) {
					t.Fatalf("LCA(%v, %v) packed %v, slice %v", p, q, back, want)
				}
			}
		}
	}
}

// TestPackedKeyInjective: distinct patterns must pack to distinct keys (the
// property the integer-keyed cluster index relies on).
func TestPackedKeyInjective(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	c, cards := genCodec(t, rng, 6)
	seen := map[uint64]Pattern{}
	for i := 0; i < 20000; i++ {
		p := genCodecPattern(rng, cards, 33)
		k := c.Pack(p)
		if q, ok := seen[k]; ok && !Equal(p, q) {
			t.Fatalf("key collision: %v and %v both pack to %x", p, q, k)
		}
		seen[k] = p.Clone()
	}
}

// TestPackedAncestorsOrder: the packed enumeration must yield exactly the
// keys of the slice enumeration, in the same subset-mask order — cluster ids
// in the lattice index depend on this order being identical.
func TestPackedAncestorsOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		m := 1 + rng.Intn(8)
		c, cards := genCodec(t, rng, m)
		tup := make([]int32, m)
		for j := range tup {
			tup[j] = int32(rng.Intn(cards[j]))
		}
		var want []uint64
		Ancestors(tup, func(p Pattern) { want = append(want, c.Pack(p)) })
		var got []uint64
		c.Ancestors(c.Pack(FromTuple(tup)), func(k uint64) { got = append(got, k) })
		if len(got) != len(want) {
			t.Fatalf("m=%d: %d packed ancestors, want %d", m, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("m=%d ancestor %d: packed %x, slice-packed %x", m, i, got[i], want[i])
			}
		}
		appended := c.AppendAncestors(c.Pack(FromTuple(tup)), nil)
		if len(appended) != len(want) {
			t.Fatalf("m=%d: AppendAncestors yielded %d keys, want %d", m, len(appended), len(want))
		}
		for i := range appended {
			if appended[i] != want[i] {
				t.Fatalf("m=%d AppendAncestors[%d] = %x, want %x", m, i, appended[i], want[i])
			}
		}
	}
}

// TestCodecOverflowFallback: widths that cannot fit 64 bits must refuse to
// build a codec (the caller's signal to stay on the slice representation),
// while the widest fitting layout still works.
func TestCodecOverflowFallback(t *testing.T) {
	// 16 attributes x 4-bit fields = 64 bits: fits exactly.
	cards := make([]int, MaxAttrs)
	for j := range cards {
		cards[j] = 10 // needs 4 bits (sentinel 15)
	}
	c, ok := NewCodec(cards)
	if !ok {
		t.Fatal("16x4-bit codec should fit")
	}
	p := make(Pattern, MaxAttrs)
	for j := range p {
		p[j] = int32(j % 10)
	}
	back := make(Pattern, MaxAttrs)
	c.Unpack(c.Pack(p), back)
	if !Equal(p, back) {
		t.Fatalf("64-bit-exact round trip failed: %v vs %v", p, back)
	}
	if c.AllStar() != ^uint64(0) {
		t.Fatalf("64-bit-exact all-star = %x", c.AllStar())
	}

	// One more bit anywhere overflows.
	cards[0] = 16 // needs 5 bits
	if _, ok := NewCodec(cards); ok {
		t.Fatal("65-bit codec should not fit")
	}
	// A huge domain next to a small one overflows too.
	if _, ok := NewCodec([]int{1 << 62, 4}); ok {
		t.Fatal("63-bit field plus a 3-bit field should not fit")
	}
	// Too many attributes is a fallback even if widths would fit.
	if _, ok := NewCodec(make([]int, MaxAttrs+1)); ok {
		t.Fatal("m > MaxAttrs should not build a codec")
	}
}

// TestPackChecked: out-of-range values, the sentinel bit pattern, and wrong
// arity must be rejected instead of packed into a colliding key.
func TestPackChecked(t *testing.T) {
	c, ok := NewCodec([]int{3, 5}) // 2-bit and 3-bit fields
	if !ok {
		t.Fatal("codec should fit")
	}
	if k, ok := c.PackChecked(Pattern{2, Star}); !ok || k != c.Pack(Pattern{2, Star}) {
		t.Fatalf("valid pattern rejected or mispacked: %x, %v", k, ok)
	}
	for _, bad := range []Pattern{
		{3, 0},      // 3 is the field-0 sentinel
		{4, 0},      // does not fit field 0
		{-2, 0},     // negative non-star
		{0, 7},      // field-1 sentinel
		{0, 1 << 9}, // far out of range
		{0},         // wrong arity
		{0, 0, 0},   // wrong arity
	} {
		if _, ok := c.PackChecked(bad); ok {
			t.Errorf("PackChecked(%v) should fail", bad)
		}
	}

	// Regression: with a field near the top of the word, an out-of-range
	// value whose high bits fall off the 64-bit shift must not alias the key
	// of a valid value.
	cards := make([]int, MaxAttrs)
	for j := range cards {
		cards[j] = 9 // 4-bit fields; the last one sits at shift 60
	}
	wide, ok := NewCodec(cards)
	if !ok {
		t.Fatal("16x4-bit codec should fit")
	}
	p := make(Pattern, MaxAttrs)
	p[MaxAttrs-1] = 1 | 1<<10 // == 1 after the bits above the field shift off
	if _, ok := wide.PackChecked(p); ok {
		t.Error("PackChecked must reject a value whose high bits overflow the shift")
	}
}
