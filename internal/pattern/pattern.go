// Package pattern implements the cluster-pattern algebra of Section 3 of the
// paper: patterns over m categorical attributes where each position is either
// a concrete (dictionary-encoded) value or the don't-care value Star, with
// coverage, the cluster distance metric of Definition 3.1, least common
// ancestors, and semilattice levels.
package pattern

import (
	"encoding/binary"
	"strings"
)

// Star is the don't-care value '*' in a pattern position.
const Star int32 = -1

// MaxAttrs is the maximum number of grouping attributes the pattern algebra
// supports. It bounds the 2^m ancestor enumerations (Ancestors, cluster
// generation in lattice.BuildIndex) and lets the packed representation
// reserve one subset bit per attribute; every layer that rejects or panics on
// wide schemas uses this one constant, so the bound reported by
// lattice.BuildIndex and enforced by Ancestors cannot drift apart.
const MaxAttrs = 16

// Pattern is a cluster description: one dictionary-encoded value or Star per
// attribute. A concrete tuple is a pattern with no Star (a singleton
// cluster).
type Pattern []int32

// FromTuple copies a concrete tuple into a fresh pattern.
func FromTuple(t []int32) Pattern {
	p := make(Pattern, len(t))
	copy(p, t)
	return p
}

// Clone returns a copy of p.
func (p Pattern) Clone() Pattern {
	q := make(Pattern, len(p))
	copy(q, p)
	return q
}

// Level is the semilattice level of p: the number of Star positions.
// Singleton clusters are at level 0; the all-star pattern is at level m.
func (p Pattern) Level() int {
	n := 0
	for _, v := range p {
		if v == Star {
			n++
		}
	}
	return n
}

// Covers reports whether p covers q: at every position p is Star or agrees
// with q. Every pattern covers itself.
func (p Pattern) Covers(q Pattern) bool {
	for i, v := range p {
		if v != Star && v != q[i] {
			return false
		}
	}
	return true
}

// Comparable reports whether p and q are ordered in the semilattice (one
// covers the other). Feasible solutions must be antichains: no two chosen
// clusters may be comparable (Definition 4.1, condition 4).
func Comparable(p, q Pattern) bool {
	return p.Covers(q) || q.Covers(p)
}

// Equal reports whether p and q are identical patterns.
func Equal(p, q Pattern) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Distance is the cluster distance of Definition 3.1: the number of
// attributes where at least one side is Star or the two sides disagree.
// Equivalently, m minus the number of positions where both sides have the
// same concrete value. It is the maximum possible element distance between
// members of the two clusters, and it is a metric (see the package tests).
func Distance(p, q Pattern) int {
	d := 0
	for i, v := range p {
		if v == Star || q[i] == Star || v != q[i] {
			d++
		}
	}
	return d
}

// TupleDistance is the element distance of Definition 3.1: the number of
// attributes where two concrete tuples differ (Hamming distance).
func TupleDistance(t, u []int32) int {
	d := 0
	for i, v := range t {
		if v != u[i] {
			d++
		}
	}
	return d
}

// LCA returns the least common ancestor of p and q in the semilattice: the
// pattern keeping positions where p and q agree on a concrete value and
// starring the rest. It is the most specific pattern covering both.
func LCA(p, q Pattern) Pattern {
	r := make(Pattern, len(p))
	for i, v := range p {
		if v != Star && v == q[i] {
			r[i] = v
		} else {
			r[i] = Star
		}
	}
	return r
}

// LCAInto is LCA writing the result into dst (which must have len(p));
// it avoids an allocation in hot merge loops.
func LCAInto(dst, p, q Pattern) {
	for i, v := range p {
		if v != Star && v == q[i] {
			dst[i] = v
		} else {
			dst[i] = Star
		}
	}
}

// Key packs the pattern into a compact string usable as a map key.
func (p Pattern) Key() string {
	var b [4]byte
	sb := make([]byte, 0, 4*len(p))
	for _, v := range p {
		binary.LittleEndian.PutUint32(b[:], uint32(v))
		sb = append(sb, b[:]...)
	}
	return string(sb)
}

// AppendKey appends the packed key of p to dst and returns it, for callers
// reusing a scratch buffer.
func (p Pattern) AppendKey(dst []byte) []byte {
	var b [4]byte
	for _, v := range p {
		binary.LittleEndian.PutUint32(b[:], uint32(v))
		dst = append(dst, b[:]...)
	}
	return dst
}

// CoversTuple reports whether the pattern covers a concrete tuple. It is
// Covers specialized to the common case for clarity at call sites.
func (p Pattern) CoversTuple(t []int32) bool {
	for i, v := range p {
		if v != Star && v != t[i] {
			return false
		}
	}
	return true
}

// String renders the pattern with raw ids, Star as "*". Use a lattice.Space
// to render with attribute values.
func (p Pattern) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, v := range p {
		if i > 0 {
			sb.WriteString(", ")
		}
		if v == Star {
			sb.WriteByte('*')
		} else {
			sb.WriteString(itoa(int(v)))
		}
	}
	sb.WriteByte(')')
	return sb.String()
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Ancestors enumerates all 2^level-complement generalizations of a concrete
// tuple t: every pattern obtained by starring a subset of positions. The
// callback receives a scratch pattern that is only valid for the duration of
// the call; callers must Clone it to retain it. Enumeration order is by
// subset bitmask, so the concrete tuple itself comes first and the all-star
// pattern last. Ancestors panics if len(t) > MaxAttrs (the enumeration would
// be astronomically large anyway).
func Ancestors(t []int32, fn func(Pattern)) {
	m := len(t)
	if m > MaxAttrs {
		panic("pattern: Ancestors over more than MaxAttrs attributes")
	}
	scratch := make(Pattern, m)
	for mask := 0; mask < 1<<m; mask++ {
		for i := 0; i < m; i++ {
			if mask&(1<<i) != 0 {
				scratch[i] = Star
			} else {
				scratch[i] = t[i]
			}
		}
		fn(scratch)
	}
}
