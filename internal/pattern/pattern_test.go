package pattern

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// genPattern draws a random pattern with m attributes over a small domain,
// with Star probability ~1/3.
func genPattern(rng *rand.Rand, m int) Pattern {
	p := make(Pattern, m)
	for i := range p {
		switch rng.Intn(3) {
		case 0:
			p[i] = Star
		default:
			p[i] = int32(rng.Intn(4))
		}
	}
	return p
}

func genTuple(rng *rand.Rand, m int) []int32 {
	t := make([]int32, m)
	for i := range t {
		t[i] = int32(rng.Intn(4))
	}
	return t
}

func TestDistanceExamplesFromPaper(t *testing.T) {
	// Figure 3a: C1 = (*, *, c1, d1), C2 = (a2, b1, *, d1): distance 3.
	c1 := Pattern{Star, Star, 0, 0}
	c2 := Pattern{1, 1, Star, 0}
	if got := Distance(c1, c2); got != 3 {
		t.Errorf("Distance(C1, C2) = %d, want 3", got)
	}
	if got := Distance(c1, c1); got != 2 {
		// Two stars always count: the self-distance of a starred pattern is
		// its level, per Definition 3.1.
		t.Errorf("Distance(C1, C1) = %d, want 2", got)
	}
}

func TestDistanceIsMetricOnTuples(t *testing.T) {
	// On concrete tuples (singleton clusters) the distance is the Hamming
	// distance, which is a true metric.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a, b, c := genTuple(rng, 6), genTuple(rng, 6), genTuple(rng, 6)
		if TupleDistance(a, a) != 0 {
			t.Fatal("identity violated")
		}
		if TupleDistance(a, b) != TupleDistance(b, a) {
			t.Fatal("symmetry violated")
		}
		if TupleDistance(a, c) > TupleDistance(a, b)+TupleDistance(b, c) {
			t.Fatalf("triangle violated: %v %v %v", a, b, c)
		}
	}
}

func TestDistanceBoundsQuick(t *testing.T) {
	// Property: symmetric and bounded by [0, m] for arbitrary patterns.
	f := func(av, bv []uint8) bool {
		m := len(av)
		if len(bv) < m {
			m = len(bv)
		}
		if m == 0 {
			return true
		}
		a, b := make(Pattern, m), make(Pattern, m)
		for i := 0; i < m; i++ {
			a[i] = int32(av[i]%5) - 1 // -1 is Star
			b[i] = int32(bv[i]%5) - 1
		}
		d := Distance(a, b)
		return d == Distance(b, a) && d >= 0 && d <= m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClusterDistanceTriangle(t *testing.T) {
	// The cluster distance satisfies the triangle inequality and symmetry
	// (the paper states it is a metric in the extended sense; identity holds
	// up to starred positions).
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		a, b, c := genPattern(rng, 5), genPattern(rng, 5), genPattern(rng, 5)
		if Distance(a, b) != Distance(b, a) {
			t.Fatalf("symmetry violated: %v %v", a, b)
		}
		if Distance(a, c) > Distance(a, b)+Distance(b, c) {
			t.Fatalf("triangle violated: %v %v %v", a, b, c)
		}
	}
}

func TestDistanceUpperBoundsMemberDistance(t *testing.T) {
	// "The distance between two clusters is the maximum possible distance
	// between any two elements that these two clusters may contain."
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		a, b := genPattern(rng, 5), genPattern(rng, 5)
		// Draw random members of each pattern by filling stars.
		x, y := make([]int32, 5), make([]int32, 5)
		for j := 0; j < 5; j++ {
			if a[j] == Star {
				x[j] = int32(rng.Intn(4))
			} else {
				x[j] = a[j]
			}
			if b[j] == Star {
				y[j] = int32(rng.Intn(4))
			} else {
				y[j] = b[j]
			}
		}
		if TupleDistance(x, y) > Distance(a, b) {
			t.Fatalf("member distance %d exceeds cluster distance %d (%v %v)", TupleDistance(x, y), Distance(a, b), a, b)
		}
	}
}

func TestMonotonicityProposition42(t *testing.T) {
	// Proposition 4.2: replacing a cluster by an ancestor never decreases the
	// pairwise distance to any other cluster.
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		c1 := genPattern(rng, 6)
		other := genPattern(rng, 6)
		// Build an ancestor of c1 by starring extra positions.
		c2 := c1.Clone()
		for j := range c2 {
			if rng.Intn(2) == 0 {
				c2[j] = Star
			}
		}
		if !c2.Covers(c1) {
			t.Fatal("constructed non-ancestor")
		}
		if Distance(c2, other) < Distance(c1, other) {
			t.Fatalf("monotonicity violated: d(%v,%v)=%d < d(%v,%v)=%d",
				c2, other, Distance(c2, other), c1, other, Distance(c1, other))
		}
	}
}

func TestCoversAndComparable(t *testing.T) {
	a := Pattern{1, Star, 2}
	b := Pattern{1, 3, 2}
	c := Pattern{Star, 3, 2}
	if !a.Covers(b) || a.Covers(c) {
		t.Errorf("Covers wrong: a>b=%v a>c=%v", a.Covers(b), a.Covers(c))
	}
	if !Comparable(a, b) || Comparable(a, c) {
		t.Error("Comparable wrong")
	}
	if !a.Covers(a) {
		t.Error("pattern must cover itself")
	}
	if !b.CoversTuple([]int32{1, 3, 2}) || b.CoversTuple([]int32{1, 3, 0}) {
		t.Error("CoversTuple wrong")
	}
}

func TestLCA(t *testing.T) {
	// Example from Section 5.1: LCA of (a1,*,c1,*) and (a1,b2,c2,*) is
	// (a1,*,*,*).
	a := Pattern{0, Star, 0, Star}
	b := Pattern{0, 1, 1, Star}
	want := Pattern{0, Star, Star, Star}
	if got := LCA(a, b); !Equal(got, want) {
		t.Errorf("LCA = %v, want %v", got, want)
	}
	dst := make(Pattern, 4)
	LCAInto(dst, a, b)
	if !Equal(dst, want) {
		t.Errorf("LCAInto = %v, want %v", dst, want)
	}
}

func TestLCAProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 3000; i++ {
		a, b := genPattern(rng, 6), genPattern(rng, 6)
		l := LCA(a, b)
		if !l.Covers(a) || !l.Covers(b) {
			t.Fatalf("LCA %v does not cover %v and %v", l, a, b)
		}
		// Least: any pattern covering both must cover the LCA.
		u := genPattern(rng, 6)
		if u.Covers(a) && u.Covers(b) && !u.Covers(l) {
			t.Fatalf("upper bound %v of %v,%v does not cover LCA %v", u, a, b, l)
		}
		if !Equal(LCA(a, b), LCA(b, a)) {
			t.Fatal("LCA not commutative")
		}
		if !Equal(LCA(a, a), starNormalize(a)) {
			t.Fatalf("LCA(a,a) = %v, want %v", LCA(a, a), a)
		}
	}
}

// starNormalize returns a copy of p (LCA(a,a) should equal a exactly).
func starNormalize(p Pattern) Pattern { return p.Clone() }

func TestLevel(t *testing.T) {
	if got := (Pattern{1, 2, 3}).Level(); got != 0 {
		t.Errorf("level of concrete = %d", got)
	}
	if got := (Pattern{Star, 2, Star}).Level(); got != 2 {
		t.Errorf("level = %d, want 2", got)
	}
}

func TestKeyUniqueness(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	seen := map[string]Pattern{}
	for i := 0; i < 5000; i++ {
		p := genPattern(rng, 5)
		k := p.Key()
		if q, ok := seen[k]; ok && !Equal(p, q) {
			t.Fatalf("key collision: %v vs %v", p, q)
		}
		seen[k] = p.Clone()
	}
	// AppendKey must agree with Key.
	p := genPattern(rng, 5)
	if string(p.AppendKey(nil)) != p.Key() {
		t.Error("AppendKey differs from Key")
	}
}

func TestAncestorsEnumeration(t *testing.T) {
	tup := []int32{3, 7}
	var got []Pattern
	Ancestors(tup, func(p Pattern) { got = append(got, p.Clone()) })
	if len(got) != 4 {
		t.Fatalf("ancestors count = %d, want 4", len(got))
	}
	if !Equal(got[0], Pattern{3, 7}) {
		t.Errorf("first ancestor = %v, want concrete tuple", got[0])
	}
	if !Equal(got[3], Pattern{Star, Star}) {
		t.Errorf("last ancestor = %v, want all-star", got[3])
	}
	for _, p := range got {
		if !p.CoversTuple(tup) {
			t.Errorf("ancestor %v does not cover tuple", p)
		}
	}
}

// TestAncestorsAttributeBound pins both sides of the shared MaxAttrs bound:
// enumeration works at exactly MaxAttrs attributes and panics one past it
// (the same constant lattice.BuildIndex rejects schemas against).
func TestAncestorsAttributeBound(t *testing.T) {
	n := 0
	Ancestors(make([]int32, MaxAttrs), func(Pattern) { n++ })
	if n != 1<<MaxAttrs {
		t.Errorf("m = MaxAttrs enumerated %d ancestors, want %d", n, 1<<MaxAttrs)
	}
	defer func() {
		if recover() == nil {
			t.Error("want panic for m > MaxAttrs")
		}
	}()
	Ancestors(make([]int32, MaxAttrs+1), func(Pattern) {})
}

func TestFromTupleAndClone(t *testing.T) {
	tup := []int32{1, 2}
	p := FromTuple(tup)
	tup[0] = 9
	if p[0] != 1 {
		t.Error("FromTuple did not copy")
	}
	q := p.Clone()
	q[1] = 5
	if p[1] != 2 {
		t.Error("Clone did not copy")
	}
}

func TestString(t *testing.T) {
	p := Pattern{1, Star, 23, -0x7fffffff + 1}
	_ = p
	if got := (Pattern{1, Star, 23}).String(); got != "(1, *, 23)" {
		t.Errorf("String = %q", got)
	}
	if got := (Pattern{0}).String(); got != "(0)" {
		t.Errorf("String = %q", got)
	}
}
