package precompute

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestRunCancelledContext checks that a cancelled context aborts the
// precompute deterministically on both the sequential and parallel paths.
func TestRunCancelledContext(t *testing.T) {
	ix := randomIndex(t, 21, 80, 4, 4, 20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, par := range []int{1, 4} {
		st, err := Run(ix, 20, 1, 6, []int{0, 1, 2, 3}, Parallelism(par), WithContext(ctx))
		if st != nil {
			t.Fatalf("Parallelism(%d): cancelled run returned a store", par)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Parallelism(%d): err = %v, want context.Canceled", par, err)
		}
	}
}

// TestRunCancelMidFlight races a cancellation against the per-D fan-out.
// Whichever wins, the outcome must be clean: either a complete store, or a
// nil store with ctx's error — never a partial store or a foreign error.
func TestRunCancelMidFlight(t *testing.T) {
	ix := randomIndex(t, 22, 120, 4, 4, 30)
	for trial := 0; trial < 10; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(time.Duration(trial) * 200 * time.Microsecond)
			cancel()
		}()
		st, err := Run(ix, 30, 1, 8, []int{0, 1, 2, 3, 4}, Parallelism(4), WithContext(ctx))
		wg.Wait()
		switch {
		case err == nil:
			if st == nil {
				t.Fatal("nil store without error")
			}
			if _, serr := st.Solution(4, 2); serr != nil {
				t.Fatalf("complete store cannot retrieve: %v", serr)
			}
		case errors.Is(err, context.Canceled):
			if st != nil {
				t.Fatal("cancelled run returned a store")
			}
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
}

// TestRunWithoutContextUnaffected pins the default path: no option, no
// cancellation checks biting.
func TestRunWithoutContextUnaffected(t *testing.T) {
	ix := randomIndex(t, 23, 60, 4, 4, 15)
	st, err := Run(ix, 15, 1, 5, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Solution(3, 1); err != nil {
		t.Fatal(err)
	}
}
