package precompute

import (
	"bytes"
	"math"
	"testing"

	"qagview/internal/summarize"
)

// TestRunSweeperMatchesRun pins the caller-owned-sweeper entry point against
// Run: same grid, same store, solution by solution.
func TestRunSweeperMatchesRun(t *testing.T) {
	ix := randomIndex(t, 71, 80, 4, 4, 25)
	ds := []int{1, 2, 3}
	want, err := Run(ix, 25, 1, 8, ds)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := summarize.NewSweeper(ix, 25, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSweeper(sw, 1, 8, ds)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		for k := 1; k <= 8; k++ {
			ws, werr := want.Solution(k, d)
			gs, gerr := got.Solution(k, d)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("k=%d d=%d: error mismatch %v vs %v", k, d, werr, gerr)
			}
			if werr != nil {
				continue
			}
			if math.Float64bits(ws.AvgValue()) != math.Float64bits(gs.AvgValue()) || ws.Size() != gs.Size() {
				t.Fatalf("k=%d d=%d: solution (%v, %d) vs (%v, %d)",
					k, d, gs.AvgValue(), gs.Size(), ws.AvgValue(), ws.Size())
			}
		}
	}
}

// TestRunSweeperValidation pins RunSweeper's extra checks: grids beyond the
// sweeper's provisioned kMax and misplaced summarize options are rejected.
func TestRunSweeperValidation(t *testing.T) {
	ix := randomIndex(t, 72, 40, 3, 4, 15)
	sw, err := summarize.NewSweeper(ix, 15, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSweeper(sw, 1, 6, []int{1}); err == nil {
		t.Error("kMax beyond the sweeper's provisioning: want error")
	}
	if _, err := RunSweeper(sw, 1, 5, []int{1}, WithSummarize(summarize.WithDelta(false))); err == nil {
		t.Error("WithSummarize on RunSweeper: want error")
	}
	if _, err := RunSweeper(sw, 1, 5, []int{1, 1}); err == nil {
		t.Error("duplicate D: want error")
	}
}

// TestGenerationRoundTrip pins data-generation stamping: WithGeneration
// marks the store and the stamp survives Encode/Decode (pre-versioning
// snapshots decode as generation 0).
func TestGenerationRoundTrip(t *testing.T) {
	ix := randomIndex(t, 73, 40, 3, 4, 15)
	st, err := Run(ix, 15, 1, 5, []int{1, 2}, WithGeneration(42))
	if err != nil {
		t.Fatal(err)
	}
	if st.Generation() != 42 {
		t.Fatalf("generation = %d, want 42", st.Generation())
	}
	var buf bytes.Buffer
	if err := st.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(&buf, ix)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Generation() != 42 {
		t.Fatalf("decoded generation = %d, want 42", dec.Generation())
	}
	unversioned, err := Run(ix, 15, 1, 5, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if unversioned.Generation() != 0 {
		t.Fatalf("default generation = %d, want 0", unversioned.Generation())
	}
}
