package precompute

import (
	"fmt"
	"strings"
	"testing"

	"qagview/internal/engine"
	"qagview/internal/intervaltree"
	"qagview/internal/lattice"
	"qagview/internal/movielens"
	"qagview/internal/relation"
)

// oneTable is a minimal engine.Catalog over a single relation, so these
// tests can run aggregate queries without importing the root package (which
// itself imports precompute).
type oneTable struct{ rel *relation.Relation }

func (c oneTable) Table(name string) (*relation.Relation, error) {
	if name != c.rel.Name() {
		return nil, fmt.Errorf("unknown table %q", name)
	}
	return c.rel, nil
}

// movieLensIndex builds a cluster index over a small synthetic MovieLens
// aggregate result.
func movieLensIndex(t *testing.T, L int) *lattice.Index {
	t.Helper()
	rel, err := movielens.Generate(movielens.Config{Users: 150, Movies: 200, Ratings: 15_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sql, err := movielens.Query(6, 3, "")
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.ExecuteSQL(oneTable{rel}, sql)
	if err != nil {
		t.Fatal(err)
	}
	space, err := lattice.NewSpace(res.GroupBy, res.Rows, res.Vals)
	if err != nil {
		t.Fatal(err)
	}
	if space.N() < L {
		L = space.N()
	}
	ix, err := lattice.BuildIndex(space, L)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// TestParallelMatchesSequential checks the tentpole guarantee: a parallel
// precompute is bit-identical to the sequential one — same guidance series,
// same stored intervals, same per-D interval lists. Run with -race this also
// exercises the fan-out for data races, on both the synthetic and the
// MovieLens answer spaces.
func TestParallelMatchesSequential(t *testing.T) {
	cases := []struct {
		name string
		ix   *lattice.Index
	}{
		{"synthetic", randomIndex(t, 11, 150, 4, 4, 30)},
		{"movielens", movieLensIndex(t, 40)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ix := tc.ix
			kMin, kMax := 1, 12
			ds := []int{0, 1, 2, 3, 4}
			seq, err := Run(ix, ix.L, kMin, kMax, ds, Parallelism(1))
			if err != nil {
				t.Fatal(err)
			}
			par, err := Run(ix, ix.L, kMin, kMax, ds, Parallelism(8))
			if err != nil {
				t.Fatal(err)
			}
			if got, want := par.StoredIntervals(), seq.StoredIntervals(); got != want {
				t.Errorf("StoredIntervals: parallel %d, sequential %d", got, want)
			}
			gs, gp := seq.Guidance(), par.Guidance()
			if gs.KMin != gp.KMin || gs.KMax != gp.KMax {
				t.Fatalf("guidance ranges differ: [%d,%d] vs [%d,%d]", gs.KMin, gs.KMax, gp.KMin, gp.KMax)
			}
			for _, d := range ds {
				a, b := gs.Series[d], gp.Series[d]
				if len(a) != len(b) {
					t.Fatalf("D=%d: series lengths %d vs %d", d, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Errorf("D=%d k=%d: sequential %v, parallel %v", d, kMin+i, a[i], b[i])
					}
				}
				ea, eb := seq.perD[d], par.perD[d]
				if ea.minSize != eb.minSize {
					t.Errorf("D=%d: minSize %d vs %d", d, ea.minSize, eb.minSize)
				}
				if len(ea.ivs) != len(eb.ivs) {
					t.Fatalf("D=%d: %d intervals vs %d", d, len(ea.ivs), len(eb.ivs))
				}
				for i := range ea.ivs {
					if ea.ivs[i] != eb.ivs[i] {
						t.Errorf("D=%d interval %d: %+v vs %+v", d, i, ea.ivs[i], eb.ivs[i])
					}
				}
			}
		})
	}
}

// TestParallelismDegenerateValues checks that zero/negative parallelism
// falls back to the sequential path rather than deadlocking or panicking.
func TestParallelismDegenerateValues(t *testing.T) {
	ix := randomIndex(t, 12, 80, 4, 4, 20)
	for _, n := range []int{-1, 0, 1, 100} {
		st, err := Run(ix, 20, 1, 6, []int{1, 2}, Parallelism(n))
		if err != nil {
			t.Fatalf("Parallelism(%d): %v", n, err)
		}
		if _, err := st.Solution(4, 2); err != nil {
			t.Fatalf("Parallelism(%d) retrieval: %v", n, err)
		}
	}
}

// TestParallelErrorIsDeterministic checks that when several Ds fail, the
// reported error is the smallest failing D's, independent of goroutine
// scheduling.
func TestParallelErrorIsDeterministic(t *testing.T) {
	ix := randomIndex(t, 13, 80, 4, 4, 20)
	// Ds beyond Space.M() make RunD fail; 98 sorts before 99.
	for trial := 0; trial < 5; trial++ {
		_, err := Run(ix, 20, 1, 6, []int{1, 99, 2, 98}, Parallelism(4))
		if err == nil {
			t.Fatal("want error for out-of-range D")
		}
		if !strings.Contains(err.Error(), "D = 98") {
			t.Fatalf("want the smallest failing D (98) reported, got: %v", err)
		}
	}
}

// TestValueMatchesSolutionBelowMinSize checks the Value/Solution
// consistency fix: for k below the smallest stored solution size both must
// report "no solution stored" instead of Value leaking a zero-initialized
// placeholder.
func TestValueMatchesSolutionBelowMinSize(t *testing.T) {
	ix := randomIndex(t, 14, 60, 4, 4, 10)
	ivs := []intervaltree.Interval{{Lo: 3, Hi: 5, Payload: 0}, {Lo: 3, Hi: 5, Payload: 1}}
	tree, err := intervaltree.Build(ivs)
	if err != nil {
		t.Fatal(err)
	}
	st := &Store{
		ix: ix, L: 10, KMin: 1, KMax: 5, Ds: []int{1},
		perD: map[int]*dEntry{1: {tree: tree, ivs: ivs, avg: make([]float64, 5), minSize: 3}},
	}
	for k := 1; k <= 2; k++ {
		if _, err := st.Solution(k, 1); err == nil {
			t.Errorf("Solution(%d, 1): want error below minSize", k)
		}
		if _, err := st.Value(k, 1); err == nil {
			t.Errorf("Value(%d, 1): want error below minSize, got a silent zero", k)
		}
	}
	if _, err := st.Value(3, 1); err != nil {
		t.Errorf("Value(3, 1): %v", err)
	}
}
