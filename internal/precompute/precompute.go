// Package precompute implements the interactive parameter-selection support
// of Section 6 of the paper: one shared Fixed-Order phase per L, a Bottom-Up
// replay per distance constraint D that records the solution for every k in
// a range, interval-tree storage exploiting the continuity property
// (Proposition 6.1), O(log Nk) retrieval of the solution for any (k, D), and
// the guidance series behind the Figure 2 visualization.
package precompute

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"qagview/internal/intervaltree"
	"qagview/internal/lattice"
	"qagview/internal/obs"
	"qagview/internal/summarize"
)

// config collects precompute options.
type config struct {
	parallelism int
	sum         []summarize.Option
	ctx         context.Context
	gen         uint64
}

func defaultConfig() config {
	return config{parallelism: runtime.GOMAXPROCS(0), ctx: context.Background()}
}

// Option customizes a precompute run.
type Option func(*config)

// Parallelism sets the number of worker goroutines the per-D Bottom-Up
// replays fan out over. The default is GOMAXPROCS; n <= 1 forces the
// sequential path. Results are identical to sequential regardless of n: the
// replays share only the immutable Fixed-Order state and the per-D entries
// are assembled in D order.
func Parallelism(n int) Option { return func(c *config) { c.parallelism = n } }

// WithContext attaches ctx to the run. Cancellation is observed between
// per-D replays: no new replay starts once ctx is done, in-flight replays
// finish, and Run returns ctx.Err(). Serving layers use this to abandon
// background sweeps whose session was evicted.
func WithContext(ctx context.Context) Option { return func(c *config) { c.ctx = ctx } }

// WithSummarize forwards options (Delta-Judgment, hybrid factor, ...) to the
// underlying shared Fixed-Order phase and per-D replays.
func WithSummarize(opts ...summarize.Option) Option {
	return func(c *config) { c.sum = append(c.sum, opts...) }
}

// WithGeneration stamps the store with a data generation: the monotonically
// increasing version of the answer set it was computed over. Serving layers
// use it to tell fresh sweeps from stale ones when live tables change; it
// round-trips through Encode/Decode. The default is 0 (unversioned).
func WithGeneration(gen uint64) Option { return func(c *config) { c.gen = gen } }

// Store holds precomputed solutions for all (k, D) in KMin..KMax x Ds, for
// one coverage parameter L.
type Store struct {
	ix         *lattice.Index
	L          int
	KMin, KMax int
	Ds         []int
	perD       map[int]*dEntry

	gen         uint64
	replayStats summarize.ReplayStats
}

// Generation returns the data generation the store was computed over (see
// WithGeneration); 0 for unversioned stores.
func (s *Store) Generation() uint64 { return s.gen }

// ReplayStats reports the sweeper's allocation-avoidance and memoization
// counters for the run that produced this store: pooled replay-state reuses
// and LCA memo hit rates. Decoded stores report zeros (the replays ran in a
// previous process).
func (s *Store) ReplayStats() summarize.ReplayStats { return s.replayStats }

type dEntry struct {
	tree *intervaltree.Tree
	// ivs is the raw interval list behind tree, kept for serialization.
	ivs []intervaltree.Interval
	// avg[k-KMin] is the objective value of the solution for k.
	avg []float64
	// minSize is the smallest solution size reached for this D.
	minSize int
}

// Run executes the precomputation: the shared Fixed-Order phase sized for
// kMax, then one Bottom-Up replay per D in ds, converting each replay's
// states into per-cluster k-intervals stored in an interval tree. The
// replays are independent given the shared Fixed-Order state, so they fan
// out over a worker pool (see Parallelism); entries are assembled in D
// order, making the store bit-identical to a sequential run.
func Run(ix *lattice.Index, L, kMin, kMax int, ds []int, opts ...Option) (*Store, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if err := validateGrid(kMin, kMax, ds); err != nil {
		return nil, err
	}
	sw, err := summarize.NewSweeper(ix, L, kMax, cfg.sum...)
	if err != nil {
		return nil, err
	}
	return runStore(sw, kMin, kMax, ds, cfg)
}

// RunSweeper is Run over a caller-owned sweeper — typically one warm-started
// from a previous data generation (summarize.Sweeper.Warm), so a live-table
// refresh reuses the previous sweep's replay states and LCA memos instead of
// allocating from scratch. kMax may not exceed the sweeper's provisioned
// KMax (the shared Fixed-Order pool was sized for it). Summarize options
// belong to the sweeper and are rejected here.
func RunSweeper(sw *summarize.Sweeper, kMin, kMax int, ds []int, opts ...Option) (*Store, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if len(cfg.sum) > 0 {
		return nil, fmt.Errorf("precompute: WithSummarize applies at sweeper construction, not to RunSweeper")
	}
	if err := validateGrid(kMin, kMax, ds); err != nil {
		return nil, err
	}
	if kMax > sw.KMax() {
		return nil, fmt.Errorf("precompute: kMax = %d exceeds the sweeper's provisioned %d", kMax, sw.KMax())
	}
	return runStore(sw, kMin, kMax, ds, cfg)
}

func validateGrid(kMin, kMax int, ds []int) error {
	if kMin < 1 || kMin > kMax {
		return fmt.Errorf("precompute: bad k range [%d, %d]", kMin, kMax)
	}
	if len(ds) == 0 {
		return fmt.Errorf("precompute: no D values")
	}
	seen := make(map[int]bool, len(ds))
	for _, d := range ds {
		if seen[d] {
			return fmt.Errorf("precompute: duplicate D = %d", d)
		}
		seen[d] = true
	}
	return nil
}

func runStore(sw *summarize.Sweeper, kMin, kMax int, ds []int, cfg config) (*Store, error) {
	ctx, sp := obs.StartSpan(cfg.ctx, "precompute.run")
	if sp != nil {
		sp.SetInt("l", int64(sw.L()))
		sp.SetInt("k_min", int64(kMin))
		sp.SetInt("k_max", int64(kMax))
		sp.SetInt("ds", int64(len(ds)))
		cfg.ctx = ctx
	}
	defer sp.End()
	st := &Store{
		ix: sw.Index(), L: sw.L(), KMin: kMin, KMax: kMax,
		Ds:   append([]int(nil), ds...),
		perD: make(map[int]*dEntry, len(ds)),
		gen:  cfg.gen,
	}
	sort.Ints(st.Ds)
	entries, err := runAll(cfg.ctx, sw, st.Ds, kMin, kMax, cfg.parallelism)
	if err != nil {
		return nil, err
	}
	for i, d := range st.Ds {
		st.perD[d] = entries[i]
	}
	st.replayStats = sw.Stats()
	return st, nil
}

// runOne replays the Bottom-Up phase for one D and converts the trace into
// interval storage.
func runOne(sw *summarize.Sweeper, d, kMin, kMax int) (*dEntry, error) {
	states, err := sw.RunD(d, kMin)
	if err != nil {
		return nil, err
	}
	return buildEntry(states, kMin, kMax)
}

// runAll computes the per-D entries, fanning out over up to `parallelism`
// workers. Each worker replays from its own clone of the shared Fixed-Order
// state, so replays never share mutable data (see workset.clone). The error
// reported is the one for the smallest failing D, independent of scheduling;
// cancellation takes precedence over per-D errors.
func runAll(ctx context.Context, sw *summarize.Sweeper, ds []int, kMin, kMax, parallelism int) ([]*dEntry, error) {
	entries := make([]*dEntry, len(ds))
	workers := parallelism
	if workers > len(ds) {
		workers = len(ds)
	}
	parent := obs.FromContext(ctx)
	if workers <= 1 {
		for i, d := range ds {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			rsp := parent.Child("replay")
			rsp.SetInt("d", int64(d))
			e, err := runOne(sw, d, kMin, kMax)
			rsp.End()
			if err != nil {
				return nil, err
			}
			entries[i] = e
		}
		return entries, nil
	}
	errs := make([]error, len(ds))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					continue // drain without starting new replays
				}
				rsp := parent.Child("replay")
				rsp.SetInt("d", int64(ds[i]))
				entries[i], errs[i] = runOne(sw, ds[i], kMin, kMax)
				rsp.End()
			}
		}()
	}
dispatch:
	for i := range ds {
		select {
		case <-ctx.Done():
			break dispatch
		case next <- i:
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return entries, nil
}

// buildEntry converts a per-D sweep trace into interval storage. State i is
// the solution for every k in [Size_i, Size_{i-1}-1] (state 0 extends to
// kMax); per the continuity property each cluster's active ks form one
// interval.
func buildEntry(states *summarize.SweepStates, kMin, kMax int) (*dEntry, error) {
	if len(states.States) == 0 {
		return nil, fmt.Errorf("precompute: empty sweep trace")
	}
	type span struct{ lo, hi int }
	spans := map[int32]span{}
	avg := make([]float64, kMax-kMin+1)
	minSize := states.States[len(states.States)-1].Size

	hi := kMax
	for i := range states.States {
		stt := &states.States[i]
		lo := stt.Size
		if lo > hi {
			// This state is never the answer for any k in range (its size
			// exceeds the remaining k budget).
			continue
		}
		cl, ch := lo, hi
		if cl < kMin {
			cl = kMin
		}
		if ch > kMax {
			ch = kMax
		}
		if cl <= ch {
			for k := cl; k <= ch; k++ {
				avg[k-kMin] = stt.Avg()
			}
			for _, id := range stt.Clusters {
				if sp, ok := spans[id]; ok {
					// States are processed in descending k order, so a
					// cluster's next range must extend its span downward.
					if ch != sp.lo-1 {
						return nil, fmt.Errorf("precompute: continuity violated for cluster %d", id)
					}
					sp.lo = cl
					spans[id] = sp
				} else {
					spans[id] = span{cl, ch}
				}
			}
		}
		hi = lo - 1
		if hi < kMin {
			break
		}
	}
	ivs := make([]intervaltree.Interval, 0, len(spans))
	for id, sp := range spans {
		ivs = append(ivs, intervaltree.Interval{Lo: sp.lo, Hi: sp.hi, Payload: id})
	}
	sort.Slice(ivs, func(a, b int) bool { return ivs[a].Payload < ivs[b].Payload })
	tree, err := intervaltree.Build(ivs)
	if err != nil {
		return nil, err
	}
	return &dEntry{tree: tree, ivs: ivs, avg: avg, minSize: minSize}, nil
}

// Solution retrieves the precomputed solution for (k, D) with one stabbing
// query, reconstructing the covered set from the cluster coverage lists.
func (s *Store) Solution(k, d int) (*summarize.Solution, error) {
	entry, ok := s.perD[d]
	if !ok {
		return nil, fmt.Errorf("precompute: D = %d was not precomputed (have %v)", d, s.Ds)
	}
	if k < s.KMin || k > s.KMax {
		return nil, fmt.Errorf("precompute: k = %d outside precomputed range [%d, %d]", k, s.KMin, s.KMax)
	}
	ivs := entry.tree.StabAll(k)
	if len(ivs) == 0 {
		return nil, fmt.Errorf("precompute: no solution stored for k = %d, D = %d", k, d)
	}
	sol := &summarize.Solution{}
	seen := make(map[int32]bool)
	for _, iv := range ivs {
		c := s.ix.Cluster(iv.Payload)
		sol.Clusters = append(sol.Clusters, c)
		for _, t := range c.Cov {
			if !seen[t] {
				seen[t] = true
				sol.Covered = append(sol.Covered, t)
				sol.Sum += s.ix.Space.Vals[t]
			}
		}
	}
	sort.Slice(sol.Covered, func(a, b int) bool { return sol.Covered[a] < sol.Covered[b] })
	sort.SliceStable(sol.Clusters, func(a, b int) bool {
		return sol.Clusters[a].Avg() > sol.Clusters[b].Avg()
	})
	return sol, nil
}

// Guidance is the data behind the parameter-selection visualization
// (Figure 2): for each D, the objective value of the solution as k varies
// over [KMin, KMax].
type Guidance struct {
	KMin, KMax int
	// Series maps D to values indexed by k-KMin. Entries for k below
	// MinSizes[D] are zero placeholders, not objective values: the sweep
	// never reached a solution that small (Value and Solution error there).
	Series map[int][]float64
	// MinSizes maps D to the smallest solution size the sweep stored.
	MinSizes map[int]int
}

// Stored reports whether Series[d] holds a real objective value at k: a
// solution of size <= k was stored. Entries below MinSizes[d] are zero
// placeholders that renderers should not present as values.
func (g *Guidance) Stored(d, k int) bool {
	ms, ok := g.MinSizes[d]
	return ok && k >= ms && k >= g.KMin && k <= g.KMax
}

// Guidance returns the precomputed guidance series.
func (s *Store) Guidance() *Guidance {
	g := &Guidance{
		KMin: s.KMin, KMax: s.KMax,
		Series:   make(map[int][]float64, len(s.perD)),
		MinSizes: make(map[int]int, len(s.perD)),
	}
	for d, e := range s.perD {
		g.Series[d] = append([]float64(nil), e.avg...)
		g.MinSizes[d] = e.minSize
	}
	return g
}

// Value returns the objective value of the stored solution for (k, D).
func (s *Store) Value(k, d int) (float64, error) {
	entry, ok := s.perD[d]
	if !ok {
		return 0, fmt.Errorf("precompute: D = %d was not precomputed", d)
	}
	if k < s.KMin || k > s.KMax {
		return 0, fmt.Errorf("precompute: k = %d outside [%d, %d]", k, s.KMin, s.KMax)
	}
	if k < entry.minSize {
		// The sweep never reached a solution this small; avg[k-KMin] is a
		// zero-initialized placeholder, not a value. Mirror Solution's error.
		return 0, fmt.Errorf("precompute: no solution stored for k = %d, D = %d", k, d)
	}
	return entry.avg[k-s.KMin], nil
}

// SizeBytes estimates the store's resident memory: the per-D interval lists,
// their interval-tree copies, and the guidance value arrays. Serving layers
// use it for byte-budget cache accounting; it is an estimate, not an exact
// allocator figure.
func (s *Store) SizeBytes() int64 {
	const (
		intervalBytes = 24 // Lo, Hi int + Payload int32, padded
		entryOverhead = 96 // dEntry + tree + node headers, amortized
	)
	n := int64(len(s.Ds)) * 8
	for _, e := range s.perD {
		// Intervals are held twice: the raw list kept for serialization and
		// the centered-tree layout built from it.
		n += int64(len(e.ivs)+e.tree.Len()) * intervalBytes
		n += int64(len(e.avg)) * 8
		n += entryOverhead
	}
	return n
}

// StoredIntervals returns the total number of intervals stored across all D,
// the space figure the interval-tree layout optimizes (O(ND) sets of
// intervals instead of O(Nk x ND) full solutions; Section 6.2).
func (s *Store) StoredIntervals() int {
	n := 0
	for _, e := range s.perD {
		n += e.tree.Len()
	}
	return n
}

// NaiveStoredClusters returns the number of cluster references a naive
// per-(k, D) materialization would store, for comparison in experiments.
func (s *Store) NaiveStoredClusters() (int, error) {
	n := 0
	for _, d := range s.Ds {
		for k := s.KMin; k <= s.KMax; k++ {
			sol, err := s.Solution(k, d)
			if err != nil {
				return 0, err
			}
			n += sol.Size()
		}
	}
	return n, nil
}
