package precompute

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"qagview/internal/lattice"
	"qagview/internal/summarize"
)

func randomIndex(t *testing.T, seed int64, n, m, dom, L int) *lattice.Index {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]string, 0, n)
	vals := make([]float64, 0, n)
	seen := map[string]bool{}
	for len(rows) < n {
		row := make([]string, m)
		key := ""
		boost := 0.0
		for j := range row {
			v := rng.Intn(dom)
			row[j] = fmt.Sprintf("v%d_%d", j, v)
			key += row[j] + "|"
			if v == 0 && j < 2 {
				boost++
			}
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		rows = append(rows, row)
		vals = append(vals, rng.Float64()*2+boost)
	}
	attrs := make([]string, m)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("A%d", i)
	}
	s, err := lattice.NewSpace(attrs, rows, vals)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := lattice.BuildIndex(s, L)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestRunValidation(t *testing.T) {
	ix := randomIndex(t, 1, 60, 4, 4, 15)
	if _, err := Run(ix, 15, 0, 5, []int{1}); err == nil {
		t.Error("kMin=0: want error")
	}
	if _, err := Run(ix, 15, 6, 5, []int{1}); err == nil {
		t.Error("kMin>kMax: want error")
	}
	if _, err := Run(ix, 15, 1, 5, nil); err == nil {
		t.Error("no Ds: want error")
	}
	if _, err := Run(ix, 15, 1, 5, []int{2, 2}); err == nil {
		t.Error("duplicate D: want error")
	}
	if _, err := Run(ix, 99, 1, 5, []int{1}); err == nil {
		t.Error("L beyond index: want error")
	}
}

// TestRetrievedSolutionsAreFeasible checks that every (k, D) retrieval is a
// feasible solution and its stored value matches the reconstruction.
func TestRetrievedSolutionsAreFeasible(t *testing.T) {
	ix := randomIndex(t, 2, 150, 4, 4, 30)
	kMin, kMax := 2, 12
	ds := []int{1, 2, 3}
	st, err := Run(ix, 30, kMin, kMax, ds)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		for k := kMin; k <= kMax; k++ {
			sol, err := st.Solution(k, d)
			if err != nil {
				t.Fatalf("Solution(%d, %d): %v", k, d, err)
			}
			if err := summarize.Validate(ix, summarize.Params{K: k, L: 30, D: d}, sol); err != nil {
				t.Errorf("Solution(%d, %d) infeasible: %v", k, d, err)
			}
			v, err := st.Value(k, d)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(v-sol.AvgValue()) > 1e-9 {
				t.Errorf("Value(%d,%d) = %v but retrieved solution avg = %v", k, d, v, sol.AvgValue())
			}
		}
	}
}

// TestMatchesUnbatchedSweep cross-checks retrieval against running the
// sweeper directly for each D.
func TestMatchesUnbatchedSweep(t *testing.T) {
	ix := randomIndex(t, 3, 120, 4, 4, 25)
	kMin, kMax := 1, 10
	st, err := Run(ix, 25, kMin, kMax, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := summarize.NewSweeper(ix, 25, kMax)
	if err != nil {
		t.Fatal(err)
	}
	states, err := sw.RunD(2, kMin)
	if err != nil {
		t.Fatal(err)
	}
	for k := kMin; k <= kMax; k++ {
		want, ok := states.SolutionFor(k)
		if !ok {
			t.Fatalf("sweep has no state for k=%d", k)
		}
		got, err := st.Solution(k, 2)
		if err != nil {
			t.Fatal(err)
		}
		if got.Size() != len(want.Clusters) {
			t.Errorf("k=%d: retrieved %d clusters, sweep has %d", k, got.Size(), len(want.Clusters))
			continue
		}
		ids := map[int32]bool{}
		for _, c := range got.Clusters {
			ids[c.ID] = true
		}
		for _, id := range want.Clusters {
			if !ids[id] {
				t.Errorf("k=%d: cluster %d missing from retrieval", k, id)
			}
		}
	}
}

func TestGuidanceSeries(t *testing.T) {
	ix := randomIndex(t, 4, 100, 4, 4, 20)
	kMin, kMax := 1, 8
	ds := []int{1, 3}
	st, err := Run(ix, 20, kMin, kMax, ds)
	if err != nil {
		t.Fatal(err)
	}
	g := st.Guidance()
	if g.KMin != kMin || g.KMax != kMax {
		t.Fatalf("guidance range = [%d, %d]", g.KMin, g.KMax)
	}
	for _, d := range ds {
		series := g.Series[d]
		if len(series) != kMax-kMin+1 {
			t.Fatalf("D=%d series length %d", d, len(series))
		}
		// Larger k never hurts the greedy objective within one D replay:
		// the value for k comes from an earlier (less merged) state.
		for i := 1; i < len(series); i++ {
			if series[i] < series[i-1]-1e-9 {
				t.Errorf("D=%d: value decreased from k=%d (%v) to k=%d (%v)",
					d, kMin+i-1, series[i-1], kMin+i, series[i])
			}
		}
	}
}

func TestStorageIsCompact(t *testing.T) {
	ix := randomIndex(t, 5, 150, 4, 4, 30)
	kMin, kMax := 1, 15
	st, err := Run(ix, 30, kMin, kMax, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := st.NaiveStoredClusters()
	if err != nil {
		t.Fatal(err)
	}
	if got := st.StoredIntervals(); got >= naive {
		t.Errorf("interval storage %d not smaller than naive %d", got, naive)
	}
}

func TestSolutionErrors(t *testing.T) {
	ix := randomIndex(t, 6, 60, 4, 4, 10)
	st, err := Run(ix, 10, 2, 5, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Solution(3, 9); err == nil {
		t.Error("unknown D: want error")
	}
	if _, err := st.Solution(1, 1); err == nil {
		t.Error("k below range: want error")
	}
	if _, err := st.Solution(6, 1); err == nil {
		t.Error("k above range: want error")
	}
	if _, err := st.Value(3, 9); err == nil {
		t.Error("Value unknown D: want error")
	}
	if _, err := st.Value(99, 1); err == nil {
		t.Error("Value k out of range: want error")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ix := randomIndex(t, 7, 120, 4, 4, 25)
	st, err := Run(ix, 25, 2, 10, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf, ix)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []int{1, 2} {
		for k := 2; k <= 10; k++ {
			a, err := st.Solution(k, d)
			if err != nil {
				t.Fatal(err)
			}
			b, err := back.Solution(k, d)
			if err != nil {
				t.Fatal(err)
			}
			if a.Size() != b.Size() || math.Abs(a.AvgValue()-b.AvgValue()) > 1e-12 {
				t.Fatalf("round trip diverged at k=%d D=%d", k, d)
			}
			ids := map[int32]bool{}
			for _, c := range a.Clusters {
				ids[c.ID] = true
			}
			for _, c := range b.Clusters {
				if !ids[c.ID] {
					t.Fatalf("cluster %d missing after round trip", c.ID)
				}
			}
		}
	}
}

func TestDecodeRejectsWrongIndex(t *testing.T) {
	ix := randomIndex(t, 8, 100, 4, 4, 20)
	st, err := Run(ix, 20, 1, 5, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	other := randomIndex(t, 9, 90, 4, 4, 15)
	if _, err := Decode(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Error("snapshot accepted against a different index")
	}
	if _, err := Decode(bytes.NewReader([]byte("garbage")), ix); err == nil {
		t.Error("garbage accepted")
	}
}
