package precompute

import (
	"encoding/gob"
	"fmt"
	"io"

	"qagview/internal/intervaltree"
	"qagview/internal/lattice"
)

// snapshot is the wire form of a Store. Cluster ids refer to the index the
// store was computed against; decoding therefore requires rebuilding the
// identical index (index construction is deterministic for a given answer
// set and L, so persisting the query result alongside the snapshot is
// sufficient).
type snapshot struct {
	L, KMin, KMax int
	Ds            []int
	PerD          map[int]snapshotEntry
	NumClusters   int // sanity check against the index at decode time
	// Generation is the data generation the store was computed over (see
	// WithGeneration); snapshots written before versioning decode as 0.
	Generation uint64
}

type snapshotEntry struct {
	Intervals []intervaltree.Interval
	Avg       []float64
	MinSize   int
}

// Encode serializes the store with encoding/gob.
func (s *Store) Encode(w io.Writer) error {
	snap := snapshot{
		L: s.L, KMin: s.KMin, KMax: s.KMax,
		Ds:          append([]int(nil), s.Ds...),
		PerD:        make(map[int]snapshotEntry, len(s.perD)),
		NumClusters: s.ix.NumClusters(),
		Generation:  s.gen,
	}
	for d, e := range s.perD {
		snap.PerD[d] = snapshotEntry{
			Intervals: e.ivs,
			Avg:       append([]float64(nil), e.avg...),
			MinSize:   e.minSize,
		}
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("precompute: encoding store: %w", err)
	}
	return nil
}

// Decode reconstructs a store previously written by Encode, binding it to
// ix, which must be the index (same answer set and L) the store was computed
// against.
func Decode(r io.Reader, ix *lattice.Index) (*Store, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("precompute: decoding store: %w", err)
	}
	if snap.NumClusters != ix.NumClusters() {
		return nil, fmt.Errorf("precompute: snapshot was computed against an index with %d clusters, this index has %d",
			snap.NumClusters, ix.NumClusters())
	}
	if snap.L != ix.L {
		return nil, fmt.Errorf("precompute: snapshot L = %d but index L = %d", snap.L, ix.L)
	}
	st := &Store{
		ix: ix, L: snap.L, KMin: snap.KMin, KMax: snap.KMax,
		Ds:   snap.Ds,
		perD: make(map[int]*dEntry, len(snap.PerD)),
		gen:  snap.Generation,
	}
	for d, e := range snap.PerD {
		for _, iv := range e.Intervals {
			if iv.Payload < 0 || int(iv.Payload) >= ix.NumClusters() {
				return nil, fmt.Errorf("precompute: snapshot references cluster %d outside the index", iv.Payload)
			}
		}
		tree, err := intervaltree.Build(e.Intervals)
		if err != nil {
			return nil, err
		}
		st.perD[d] = &dEntry{tree: tree, ivs: e.Intervals, avg: e.Avg, minSize: e.MinSize}
	}
	return st, nil
}
