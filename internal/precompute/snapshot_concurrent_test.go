package precompute

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"testing"
)

// solutionFingerprint renders a solution into a comparable string (cluster
// ids plus the exact objective bits).
func solutionFingerprint(t *testing.T, st *Store, k, d int) string {
	t.Helper()
	sol, err := st.Solution(k, d)
	if err != nil {
		t.Fatalf("Solution(%d, %d): %v", k, d, err)
	}
	var sb bytes.Buffer
	for _, c := range sol.Clusters {
		fmt.Fprintf(&sb, "%d,", c.ID)
	}
	fmt.Fprintf(&sb, "|%x", math.Float64bits(sol.AvgValue()))
	return sb.String()
}

// TestEncodeDecodeConcurrentReaders checks the snapshot round trip under
// load: a decoded store must serve exactly the original's solutions to many
// goroutines at once (Solution reconstructs state per call, so concurrent
// reads share only immutable data), report zero ReplayStats by design, and
// concurrent Encode calls on the shared original must be race-free.
func TestEncodeDecodeConcurrentReaders(t *testing.T) {
	ix := randomIndex(t, 31, 120, 4, 4, 30)
	const kMin, kMax = 1, 8
	ds := []int{0, 1, 2, 3}
	orig, err := Run(ix, 30, kMin, kMax, ds)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(bytes.NewReader(buf.Bytes()), ix)
	if err != nil {
		t.Fatal(err)
	}
	if rs := dec.ReplayStats(); rs.Replays != 0 || rs.PooledReuses != 0 || rs.LCAMemoHits != 0 {
		t.Fatalf("decoded store must report zero ReplayStats (the sweep ran elsewhere), got %+v", rs)
	}
	if got, want := dec.SizeBytes(), orig.SizeBytes(); got != want {
		t.Fatalf("decoded SizeBytes = %d, want %d", got, want)
	}
	if orig.SizeBytes() <= 0 {
		t.Fatalf("SizeBytes = %d, want > 0", orig.SizeBytes())
	}

	// Reference fingerprints from the original, sequentially.
	want := map[[2]int]string{}
	for _, d := range ds {
		for k := kMin; k <= kMax; k++ {
			want[[2]int{k, d}] = solutionFingerprint(t, orig, k, d)
		}
	}

	const readers = 8
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Stagger start points so goroutines hit different entries at
			// the same time.
			for i := 0; i < 3*len(want); i++ {
				d := ds[(g+i)%len(ds)]
				k := kMin + (g*7+i)%(kMax-kMin+1)
				sol, err := dec.Solution(k, d)
				if err != nil {
					errs <- fmt.Errorf("reader %d: Solution(%d, %d): %v", g, k, d, err)
					return
				}
				var sb bytes.Buffer
				for _, c := range sol.Clusters {
					fmt.Fprintf(&sb, "%d,", c.ID)
				}
				fmt.Fprintf(&sb, "|%x", math.Float64bits(sol.AvgValue()))
				if sb.String() != want[[2]int{k, d}] {
					errs <- fmt.Errorf("reader %d: Solution(%d, %d) diverged from original", g, k, d)
					return
				}
				if v, err := dec.Value(k, d); err != nil {
					errs <- fmt.Errorf("reader %d: Value(%d, %d): %v", g, k, d, err)
					return
				} else if ov, _ := orig.Value(k, d); math.Float64bits(v) != math.Float64bits(ov) {
					errs <- fmt.Errorf("reader %d: Value(%d, %d) = %v, want %v", g, k, d, v, ov)
					return
				}
				if g := dec.Guidance(); !g.Stored(d, k) {
					errs <- fmt.Errorf("Guidance.Stored(%d, %d) = false on decoded store", d, k)
					return
				}
			}
		}(g)
	}
	// Two concurrent encoders on the shared original store, racing the
	// readers above (Encode only reads).
	encoded := make([][]byte, 2)
	for e := 0; e < 2; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			var b bytes.Buffer
			if err := orig.Encode(&b); err != nil {
				errs <- fmt.Errorf("encoder %d: %v", e, err)
				return
			}
			encoded[e] = b.Bytes()
		}(e)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Concurrent encodes may differ byte-wise (gob map order) but must both
	// decode to stores serving the original solutions.
	for e, raw := range encoded {
		if len(raw) == 0 {
			continue // errored above
		}
		st, err := Decode(bytes.NewReader(raw), ix)
		if err != nil {
			t.Fatalf("decoding concurrent encode %d: %v", e, err)
		}
		if got := solutionFingerprint(t, st, kMax/2, ds[1]); got != want[[2]int{kMax / 2, ds[1]}] {
			t.Fatalf("concurrent encode %d decoded to a diverged store", e)
		}
	}
}
