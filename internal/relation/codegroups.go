package relation

// ColGroups is the sorted code index of one column: every row id of the
// relation, grouped by the row's dictionary code, with row ids ascending
// within each group. It is the column-granularity sorted "trie level" the
// join executor builds its access paths from — hash-join build sides read
// one representative row per code to key their translation tables, and the
// worst-case-optimal path sorts each relation's rows by these codes to get
// its attribute-at-a-time tries.
type ColGroups struct {
	// Dict is the dictionary the groups are indexed by.
	Dict *ColDict
	// Starts has Card+1 offsets into Rows: code c's rows occupy
	// Rows[Starts[c]:Starts[c+1]].
	Starts []int32
	// Rows holds every row id, grouped by code, ascending within a group.
	Rows []int32
}

// RowsFor returns the ascending row ids bearing code c. The slice aliases
// the shared index and must not be modified.
func (g *ColGroups) RowsFor(c int32) []int32 { return g.Rows[g.Starts[c]:g.Starts[c+1]] }

// Rep returns the first (lowest) row id bearing code c. Codes are assigned
// in first-seen row order, so this is also the row that introduced the code.
func (g *ColGroups) Rep(c int32) int32 { return g.Rows[g.Starts[c]] }

// CodeGroups returns the sorted code index of column col, building it on
// first use and caching it for the relation's lifetime (relations are
// immutable, so the index can never go stale). Safe for concurrent use; the
// returned value is shared and must not be modified.
func (r *Relation) CodeGroups(col int) *ColGroups {
	r.dictMu.Lock()
	defer r.dictMu.Unlock()
	if r.groups == nil {
		r.groups = make([]*ColGroups, len(r.cols))
	}
	if g := r.groups[col]; g != nil {
		return g
	}
	d := r.dictCodesLocked(col)
	// Counting sort: one pass for per-code counts, one prefix sum, one
	// placement pass. O(rows + card), stable, so rows stay ascending.
	starts := make([]int32, d.Card+1)
	for _, c := range d.Codes {
		starts[c+1]++
	}
	for c := 1; c <= d.Card; c++ {
		starts[c] += starts[c-1]
	}
	rows := make([]int32, len(d.Codes))
	next := append([]int32(nil), starts[:d.Card:d.Card]...)
	for i, c := range d.Codes {
		rows[next[c]] = int32(i)
		next[c]++
	}
	g := &ColGroups{Dict: d, Starts: starts, Rows: rows}
	r.groups[col] = g
	return g
}
