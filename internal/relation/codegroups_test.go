package relation

import (
	"math"
	"testing"
)

func TestCodeGroups(t *testing.T) {
	r := MustFromColumns("t",
		StringCol("s", []string{"b", "a", "b", "c", "a", "b"}),
		FloatCol("f", []float64{math.NaN(), 0, math.Copysign(0, -1), math.NaN(), 0, 1}),
	)
	for col := 0; col < 2; col++ {
		d := r.DictCodes(col)
		g := r.CodeGroups(col)
		if g.Dict != d {
			t.Fatalf("col %d: CodeGroups dict != DictCodes dict", col)
		}
		if len(g.Starts) != d.Card+1 || len(g.Rows) != r.NumRows() {
			t.Fatalf("col %d: bad shapes Starts=%d Rows=%d", col, len(g.Starts), len(g.Rows))
		}
		seen := make(map[int32]bool)
		for c := int32(0); c < int32(d.Card); c++ {
			rows := g.RowsFor(c)
			if len(rows) == 0 {
				t.Fatalf("col %d code %d: empty group", col, c)
			}
			if g.Rep(c) != rows[0] {
				t.Fatalf("col %d code %d: Rep %d != rows[0] %d", col, c, g.Rep(c), rows[0])
			}
			prev := int32(-1)
			for _, row := range rows {
				if row <= prev {
					t.Fatalf("col %d code %d: rows not strictly ascending: %v", col, c, rows)
				}
				prev = row
				if d.Codes[row] != c {
					t.Fatalf("col %d row %d: code %d grouped under %d", col, row, d.Codes[row], c)
				}
				if seen[row] {
					t.Fatalf("col %d row %d appears in two groups", col, row)
				}
				seen[row] = true
			}
		}
		if len(seen) != r.NumRows() {
			t.Fatalf("col %d: groups cover %d of %d rows", col, len(seen), r.NumRows())
		}
		if again := r.CodeGroups(col); again != g {
			t.Fatalf("col %d: CodeGroups not cached", col)
		}
	}
	// NaN occurrences collapse to one code; +0 and -0 stay distinct.
	gf := r.CodeGroups(1)
	if got := gf.RowsFor(gf.Dict.Codes[0]); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("NaN group = %v, want [0 3]", got)
	}
	if gf.Dict.Codes[1] == gf.Dict.Codes[2] {
		t.Fatal("+0 and -0 share a code")
	}
}
