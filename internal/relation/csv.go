package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// ReadCSV parses a CSV stream with a header row into a relation. kinds maps
// each header column to its physical type; if kinds is nil every column is
// read as text.
func ReadCSV(r io.Reader, name string, kinds map[string]Kind) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV header: %w", err)
	}
	names := make([]string, len(header))
	copy(names, header)
	cols := make([]Column, len(names))
	for i, n := range names {
		k := KindString
		if kinds != nil {
			if kk, ok := kinds[n]; ok {
				k = kk
			}
		}
		cols[i] = Column{Name: n, Kind: k}
	}
	row := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: reading CSV row %d: %w", row, err)
		}
		if len(rec) != len(cols) {
			return nil, fmt.Errorf("relation: CSV row %d has %d fields, want %d", row, len(rec), len(cols))
		}
		for i, field := range rec {
			c := &cols[i]
			switch c.Kind {
			case KindString:
				c.Str = append(c.Str, field)
			case KindInt:
				v, err := strconv.ParseInt(field, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("relation: CSV row %d column %q: %w", row, c.Name, err)
				}
				c.Int = append(c.Int, v)
			case KindFloat:
				v, err := strconv.ParseFloat(field, 64)
				if err != nil {
					return nil, fmt.Errorf("relation: CSV row %d column %q: %w", row, c.Name, err)
				}
				c.Float = append(c.Float, v)
			}
		}
		row++
	}
	return FromColumns(name, cols...)
}

// WriteCSV writes the relation as CSV with a header row.
func WriteCSV(w io.Writer, r *Relation) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.ColumnNames()); err != nil {
		return fmt.Errorf("relation: writing CSV header: %w", err)
	}
	rec := make([]string, r.NumCols())
	for row := 0; row < r.NumRows(); row++ {
		for col := 0; col < r.NumCols(); col++ {
			rec[col] = r.StringAt(col, row)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("relation: writing CSV row %d: %w", row, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
