package relation

// Dict interns strings to dense int32 ids and back. qagview stores cluster
// patterns and tuples as []int32, so all pattern operations (distance, LCA,
// coverage) compare integers instead of strings. This is the paper's "hash
// values for fields" optimization (Section 6.3), reported there to be worth
// about 50x on its own.
type Dict struct {
	ids  map[string]int32
	vals []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]int32)}
}

// ID interns s, returning its dense id (assigning the next free id on first
// sight).
func (d *Dict) ID(s string) int32 {
	if id, ok := d.ids[s]; ok {
		return id
	}
	id := int32(len(d.vals))
	d.ids[s] = id
	d.vals = append(d.vals, s)
	return id
}

// Lookup returns the id of s without interning.
func (d *Dict) Lookup(s string) (int32, bool) {
	id, ok := d.ids[s]
	return id, ok
}

// Value returns the string for an id. It panics on out-of-range ids, which
// indicate corrupted pattern data.
func (d *Dict) Value(id int32) string { return d.vals[id] }

// Len returns the number of distinct interned values (the active domain
// size of the attribute).
func (d *Dict) Len() int { return len(d.vals) }

// Clone returns an independent copy of the dictionary with identical id
// assignments. Incremental maintenance extends dictionaries copy-on-write:
// existing ids never change, new values take the next free ids in the clone,
// and readers of the original dictionary (a published, immutable index) are
// never exposed to a concurrent mutation.
func (d *Dict) Clone() *Dict {
	c := &Dict{
		ids:  make(map[string]int32, len(d.ids)),
		vals: append([]string(nil), d.vals...),
	}
	for s, id := range d.ids {
		c.ids[s] = id
	}
	return c
}

// Values returns the interned values in id order. The returned slice is
// shared; callers must not modify it.
func (d *Dict) Values() []string { return d.vals }
