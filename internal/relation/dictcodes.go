package relation

import "math"

// ColDict is the dense dictionary encoding of one column: Codes[i] is the
// code of row i, with codes assigned in first-seen row order, and Card is the
// number of distinct codes. Two rows share a code exactly when their rendered
// values (StringAt) are equal, so grouping on codes is grouping on values:
// integer ids are injective for int columns, float codes key on the value's
// bit pattern with every NaN payload collapsed to one code (all NaNs render
// "NaN"), and ±0 stay distinct (they render "0" and "-0").
//
// The query executor groups and hashes on these codes instead of rendering
// and concatenating strings per row — the "hash values for fields"
// optimization of the paper's Section 6.3 applied to the SQL substrate
// itself.
type ColDict struct {
	Codes []int32
	Card  int
}

// canonicalNaN is the single bit pattern all NaN payloads map to, so float
// dictionary codes agree with rendered-string equality (every NaN formats as
// "NaN").
var canonicalNaN = math.Float64bits(math.NaN())

// DictCodes returns the dictionary encoding of column col, building it on
// first use and caching it for the relation's lifetime (relations are
// immutable; appends build new relations with fresh columns, so a cached
// encoding can never go stale). Safe for concurrent use; the returned value
// is shared and must not be modified.
func (r *Relation) DictCodes(col int) *ColDict {
	r.dictMu.Lock()
	defer r.dictMu.Unlock()
	return r.dictCodesLocked(col)
}

func (r *Relation) dictCodesLocked(col int) *ColDict {
	if r.dicts == nil {
		r.dicts = make([]*ColDict, len(r.cols))
	}
	if d := r.dicts[col]; d != nil {
		return d
	}
	d := buildColDict(&r.cols[col])
	r.dicts[col] = d
	return d
}

func buildColDict(c *Column) *ColDict {
	d := &ColDict{Codes: make([]int32, c.Len())}
	switch c.Kind {
	case KindString:
		ids := make(map[string]int32, 64)
		for i, s := range c.Str {
			id, ok := ids[s]
			if !ok {
				id = int32(len(ids))
				ids[s] = id
			}
			d.Codes[i] = id
		}
		d.Card = len(ids)
	case KindInt:
		ids := make(map[int64]int32, 64)
		for i, v := range c.Int {
			id, ok := ids[v]
			if !ok {
				id = int32(len(ids))
				ids[v] = id
			}
			d.Codes[i] = id
		}
		d.Card = len(ids)
	case KindFloat:
		ids := make(map[uint64]int32, 64)
		for i, v := range c.Float {
			bits := math.Float64bits(v)
			if v != v {
				bits = canonicalNaN
			}
			id, ok := ids[bits]
			if !ok {
				id = int32(len(ids))
				ids[bits] = id
			}
			d.Codes[i] = id
		}
		d.Card = len(ids)
	}
	return d
}
