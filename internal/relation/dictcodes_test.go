package relation

import (
	"math"
	"reflect"
	"sync"
	"testing"
)

func TestDictCodesFirstSeenOrder(t *testing.T) {
	r := MustFromColumns("t",
		StringCol("s", []string{"b", "a", "b", "c", "a"}),
		IntCol("i", []int64{7, 7, -1, 7, 2}),
	)
	sd := r.DictCodes(0)
	if want := []int32{0, 1, 0, 2, 1}; !reflect.DeepEqual(sd.Codes, want) {
		t.Fatalf("string codes = %v, want %v", sd.Codes, want)
	}
	if sd.Card != 3 {
		t.Fatalf("string card = %d, want 3", sd.Card)
	}
	id := r.DictCodes(1)
	if want := []int32{0, 0, 1, 0, 2}; !reflect.DeepEqual(id.Codes, want) {
		t.Fatalf("int codes = %v, want %v", id.Codes, want)
	}
	if id.Card != 3 {
		t.Fatalf("int card = %d, want 3", id.Card)
	}
}

// TestDictCodesFloatSemantics pins the float equality the codes encode: it
// must match rendered-string (StringAt) equality, so all NaN payloads share
// one code while +0 and -0 stay distinct ("0" vs "-0").
func TestDictCodesFloatSemantics(t *testing.T) {
	nan2 := math.Float64frombits(math.Float64bits(math.NaN()) ^ 1) // different payload
	r := MustFromColumns("t",
		FloatCol("f", []float64{math.NaN(), 0, nan2, math.Copysign(0, -1), 0}),
	)
	d := r.DictCodes(0)
	if want := []int32{0, 1, 0, 2, 1}; !reflect.DeepEqual(d.Codes, want) {
		t.Fatalf("float codes = %v, want %v", d.Codes, want)
	}
	if d.Card != 3 {
		t.Fatalf("float card = %d, want 3", d.Card)
	}
	c := r.Column(0)
	for i := range d.Codes {
		for j := range d.Codes {
			if (d.Codes[i] == d.Codes[j]) != (c.StringAt(i) == c.StringAt(j)) {
				t.Fatalf("rows %d,%d: code equality %v but rendered %q vs %q",
					i, j, d.Codes[i] == d.Codes[j], c.StringAt(i), c.StringAt(j))
			}
		}
	}
}

// TestDictCodesCached checks the encoding is built once and shared, also
// under concurrent first use (run with -race).
func TestDictCodesCached(t *testing.T) {
	r := MustFromColumns("t", StringCol("s", []string{"x", "y", "x"}))
	var wg sync.WaitGroup
	got := make([]*ColDict, 8)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = r.DictCodes(0)
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(got); i++ {
		if got[i] != got[0] {
			t.Fatal("DictCodes returned different instances for the same column")
		}
	}
}
