package relation

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzCSVLoad throws adversarial CSV at the loader, with the first input
// byte selecting the kind mapping applied to the (up to) first four header
// columns. The loader must never panic: every input either errors cleanly or
// produces a well-formed relation whose values round-trip — through the
// dictionary encoding the cluster space is built on for text columns, and
// through WriteCSV + ReadCSV for the whole relation.
func FuzzCSVLoad(f *testing.F) {
	f.Add([]byte("\x00a,b,c\n1,2,3\n4,5,6\n"))
	f.Add([]byte("\x01a,b\n1,x\n2,y\n"))
	f.Add([]byte("\x02v\n1.5\n-2e9\nNaN\n"))
	f.Add([]byte("\x03\"q,uoted\",plain\n\"a\"\"b\",c\n"))
	f.Add([]byte("\x00a,a\n1,2\n"))                                    // duplicate header
	f.Add([]byte("\x00a,b\n1\n"))                                      // short record
	f.Add([]byte("\x00a,,b\nx,y,z\n"))                                 // empty column name
	f.Add([]byte("\x01n\n9223372036854775807\n9223372036854775808\n")) // int overflow
	f.Add([]byte("\x00\xff\xfe,b\n\x00,\n"))                           // junk bytes
	f.Add([]byte("\x02only_header\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		sel, csvText := data[0], string(data[1:])

		// Derive a kind mapping from the selector byte: two bits per column
		// position over whatever the header turns out to name.
		kinds := map[string]Kind{}
		if header, _, ok := strings.Cut(csvText, "\n"); ok || header != "" {
			cols := strings.Split(header, ",")
			for i, c := range cols {
				if i >= 4 {
					break
				}
				switch (sel >> (2 * i)) & 3 {
				case 1:
					kinds[strings.Trim(c, "\" ")] = KindInt
				case 2:
					kinds[strings.Trim(c, "\" ")] = KindFloat
				}
			}
		}

		rel, err := ReadCSV(strings.NewReader(csvText), "fuzz", kinds)
		if err != nil {
			return // rejected cleanly
		}

		// Accepted inputs produce a rectangular relation...
		for i := 0; i < rel.NumCols(); i++ {
			if rel.Column(i).Len() != rel.NumRows() {
				t.Fatalf("column %q has %d rows, relation has %d", rel.Column(i).Name, rel.Column(i).Len(), rel.NumRows())
			}
		}

		// ...whose text values round-trip through the dictionary encoding
		// (the exact path the cluster space uses for categorical columns).
		for ci := 0; ci < rel.NumCols(); ci++ {
			col := rel.Column(ci)
			if col.Kind != KindString {
				continue
			}
			d := NewDict()
			for row := 0; row < rel.NumRows(); row++ {
				v := col.Str[row]
				id := d.ID(v)
				if got := d.Value(id); got != v {
					t.Fatalf("dictionary round-trip: %q -> %d -> %q", v, id, got)
				}
				if again := d.ID(v); again != id {
					t.Fatalf("interning %q twice gave ids %d and %d", v, id, again)
				}
			}
			c := d.Clone()
			for row := 0; row < rel.NumRows(); row++ {
				v := col.Str[row]
				id, ok := c.Lookup(v)
				if !ok || c.Value(id) != v {
					t.Fatalf("clone lost %q", v)
				}
			}
		}

		// ...and survive a full write/read cycle with identical rendering.
		// One documented encoding/csv asymmetry is excluded: a single-column
		// row holding an empty string serializes as a blank line, which
		// csv.Reader skips on the way back in.
		if rel.NumCols() == 1 {
			for row := 0; row < rel.NumRows(); row++ {
				if rel.StringAt(0, row) == "" {
					return
				}
			}
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, rel); err != nil {
			t.Fatalf("WriteCSV on accepted relation: %v", err)
		}
		kinds2 := map[string]Kind{}
		for i := 0; i < rel.NumCols(); i++ {
			kinds2[rel.Column(i).Name] = rel.Column(i).Kind
		}
		back, err := ReadCSV(&buf, "fuzz2", kinds2)
		if err != nil {
			t.Fatalf("re-reading written CSV: %v", err)
		}
		if back.NumRows() != rel.NumRows() || back.NumCols() != rel.NumCols() {
			t.Fatalf("round-trip shape (%d, %d) vs (%d, %d)", back.NumRows(), back.NumCols(), rel.NumRows(), rel.NumCols())
		}
		for col := 0; col < rel.NumCols(); col++ {
			for row := 0; row < rel.NumRows(); row++ {
				if rel.StringAt(col, row) != back.StringAt(col, row) {
					t.Fatalf("round-trip cell (%d, %d): %q vs %q", col, row, rel.StringAt(col, row), back.StringAt(col, row))
				}
			}
		}
	})
}
