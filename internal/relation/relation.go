// Package relation implements the in-memory columnar relation store used as
// the storage substrate of qagview. The paper's prototype materializes joined
// tables (e.g. the MovieLens RatingTable) in PostgreSQL; this package plays
// that role with typed columns and dictionary encoding for categorical
// attributes, which is also the "hash values for fields" optimization of
// Section 6.3 of the paper.
package relation

import (
	"fmt"
	"strconv"
	"sync"
)

// Kind identifies the physical type of a column.
type Kind int

const (
	// KindString is a categorical (text) column.
	KindString Kind = iota
	// KindInt is a 64-bit signed integer column.
	KindInt
	// KindFloat is a float64 column.
	KindFloat
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "text"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Column is a single typed column. Exactly one of Str, Int, Float is
// populated, according to Kind.
type Column struct {
	Name  string
	Kind  Kind
	Str   []string
	Int   []int64
	Float []float64
}

// Len returns the number of rows stored in the column.
func (c *Column) Len() int {
	switch c.Kind {
	case KindString:
		return len(c.Str)
	case KindInt:
		return len(c.Int)
	case KindFloat:
		return len(c.Float)
	default:
		return 0
	}
}

// StringAt renders the value in row i as a string, independent of kind.
func (c *Column) StringAt(i int) string {
	switch c.Kind {
	case KindString:
		return c.Str[i]
	case KindInt:
		return strconv.FormatInt(c.Int[i], 10)
	case KindFloat:
		return strconv.FormatFloat(c.Float[i], 'g', -1, 64)
	default:
		return ""
	}
}

// FloatAt returns the numeric value of row i. Categorical columns return an
// error, since qagview never interprets categories numerically.
func (c *Column) FloatAt(i int) (float64, error) {
	switch c.Kind {
	case KindInt:
		return float64(c.Int[i]), nil
	case KindFloat:
		return c.Float[i], nil
	default:
		return 0, fmt.Errorf("relation: column %q has kind %s, not numeric", c.Name, c.Kind)
	}
}

// StringCol builds a categorical column.
func StringCol(name string, vals []string) Column {
	return Column{Name: name, Kind: KindString, Str: vals}
}

// IntCol builds an integer column.
func IntCol(name string, vals []int64) Column {
	return Column{Name: name, Kind: KindInt, Int: vals}
}

// FloatCol builds a float column.
func FloatCol(name string, vals []float64) Column {
	return Column{Name: name, Kind: KindFloat, Float: vals}
}

// Relation is an immutable named collection of equal-length columns.
type Relation struct {
	name   string
	cols   []Column
	byName map[string]int
	n      int

	// dicts and groups cache per-column dictionary encodings (see DictCodes)
	// and code-grouped row indexes (see CodeGroups), built lazily under
	// dictMu; the column data itself never changes.
	dictMu sync.Mutex
	dicts  []*ColDict
	groups []*ColGroups
}

// FromColumns assembles a relation, validating that column names are unique
// and all columns have the same length.
func FromColumns(name string, cols ...Column) (*Relation, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("relation %q: no columns", name)
	}
	r := &Relation{name: name, cols: cols, byName: make(map[string]int, len(cols)), n: cols[0].Len()}
	for i := range cols {
		c := &cols[i]
		if c.Name == "" {
			return nil, fmt.Errorf("relation %q: column %d has empty name", name, i)
		}
		if _, dup := r.byName[c.Name]; dup {
			return nil, fmt.Errorf("relation %q: duplicate column %q", name, c.Name)
		}
		if c.Len() != r.n {
			return nil, fmt.Errorf("relation %q: column %q has %d rows, want %d", name, c.Name, c.Len(), r.n)
		}
		r.byName[c.Name] = i
	}
	return r, nil
}

// MustFromColumns is FromColumns that panics on error; intended for tests and
// generators with statically correct shapes.
func MustFromColumns(name string, cols ...Column) *Relation {
	r, err := FromColumns(name, cols...)
	if err != nil {
		panic(err)
	}
	return r
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// NumRows returns the row count.
func (r *Relation) NumRows() int { return r.n }

// NumCols returns the column count.
func (r *Relation) NumCols() int { return len(r.cols) }

// Column returns the i-th column.
func (r *Relation) Column(i int) *Column { return &r.cols[i] }

// ColumnNames returns the names of all columns in declaration order.
func (r *Relation) ColumnNames() []string {
	names := make([]string, len(r.cols))
	for i := range r.cols {
		names[i] = r.cols[i].Name
	}
	return names
}

// ColumnByName returns the named column, or false if absent.
func (r *Relation) ColumnByName(name string) (*Column, bool) {
	i, ok := r.byName[name]
	if !ok {
		return nil, false
	}
	return &r.cols[i], true
}

// ColumnIndex returns the position of the named column, or -1.
func (r *Relation) ColumnIndex(name string) int {
	i, ok := r.byName[name]
	if !ok {
		return -1
	}
	return i
}

// StringAt renders row/column as a string.
func (r *Relation) StringAt(col, row int) string { return r.cols[col].StringAt(row) }
