package relation

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func sample(t *testing.T) *Relation {
	t.Helper()
	r, err := FromColumns("movies",
		StringCol("genre", []string{"adventure", "comedy", "drama"}),
		IntCol("year", []int64{1985, 1990, 1995}),
		FloatCol("rating", []float64{4.2, 3.1, 2.5}),
	)
	if err != nil {
		t.Fatalf("FromColumns: %v", err)
	}
	return r
}

func TestFromColumnsShape(t *testing.T) {
	r := sample(t)
	if r.Name() != "movies" {
		t.Errorf("Name = %q, want movies", r.Name())
	}
	if r.NumRows() != 3 || r.NumCols() != 3 {
		t.Errorf("shape = (%d, %d), want (3, 3)", r.NumRows(), r.NumCols())
	}
}

func TestFromColumnsErrors(t *testing.T) {
	if _, err := FromColumns("empty"); err == nil {
		t.Error("no columns: want error")
	}
	if _, err := FromColumns("dup", StringCol("a", nil), StringCol("a", nil)); err == nil {
		t.Error("duplicate names: want error")
	}
	if _, err := FromColumns("ragged", StringCol("a", []string{"x"}), StringCol("b", nil)); err == nil {
		t.Error("ragged columns: want error")
	}
	if _, err := FromColumns("anon", Column{Kind: KindString}); err == nil {
		t.Error("empty column name: want error")
	}
}

func TestMustFromColumnsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustFromColumns on invalid input did not panic")
		}
	}()
	MustFromColumns("bad", StringCol("a", []string{"x"}), StringCol("a", []string{"y"}))
}

func TestColumnByName(t *testing.T) {
	r := sample(t)
	c, ok := r.ColumnByName("year")
	if !ok || c.Kind != KindInt {
		t.Fatalf("ColumnByName(year) = %v, %v", c, ok)
	}
	if _, ok := r.ColumnByName("nope"); ok {
		t.Error("ColumnByName(nope) found a column")
	}
	if got := r.ColumnIndex("rating"); got != 2 {
		t.Errorf("ColumnIndex(rating) = %d, want 2", got)
	}
	if got := r.ColumnIndex("nope"); got != -1 {
		t.Errorf("ColumnIndex(nope) = %d, want -1", got)
	}
}

func TestStringAtRendering(t *testing.T) {
	r := sample(t)
	cases := []struct {
		col, row int
		want     string
	}{
		{0, 0, "adventure"},
		{1, 1, "1990"},
		{2, 2, "2.5"},
	}
	for _, c := range cases {
		if got := r.StringAt(c.col, c.row); got != c.want {
			t.Errorf("StringAt(%d,%d) = %q, want %q", c.col, c.row, got, c.want)
		}
	}
}

func TestFloatAt(t *testing.T) {
	r := sample(t)
	if v, err := r.Column(1).FloatAt(0); err != nil || v != 1985 {
		t.Errorf("FloatAt int col = %v, %v", v, err)
	}
	if v, err := r.Column(2).FloatAt(0); err != nil || v != 4.2 {
		t.Errorf("FloatAt float col = %v, %v", v, err)
	}
	if _, err := r.Column(0).FloatAt(0); err == nil {
		t.Error("FloatAt on text column: want error")
	}
}

func TestKindString(t *testing.T) {
	if KindString.String() != "text" || KindInt.String() != "int" || KindFloat.String() != "float" {
		t.Errorf("kind names wrong: %s %s %s", KindString, KindInt, KindFloat)
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestDictRoundTrip(t *testing.T) {
	d := NewDict()
	a := d.ID("alpha")
	b := d.ID("beta")
	if a == b {
		t.Fatal("distinct strings got the same id")
	}
	if d.ID("alpha") != a {
		t.Error("re-interning changed the id")
	}
	if d.Value(a) != "alpha" || d.Value(b) != "beta" {
		t.Error("Value does not round-trip")
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
	if _, ok := d.Lookup("gamma"); ok {
		t.Error("Lookup(gamma) should miss")
	}
	if id, ok := d.Lookup("beta"); !ok || id != b {
		t.Error("Lookup(beta) should hit")
	}
	if got := d.Values(); len(got) != 2 || got[0] != "alpha" {
		t.Errorf("Values = %v", got)
	}
}

func TestDictDenseIDsProperty(t *testing.T) {
	// Property: interning any sequence of strings yields ids that are dense
	// in [0, Len) and stable across repeats.
	f := func(words []string) bool {
		d := NewDict()
		for _, w := range words {
			id := d.ID(w)
			if id < 0 || int(id) >= d.Len() {
				return false
			}
			if d.Value(id) != w {
				return false
			}
			if again := d.ID(w); again != id {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := sample(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, r); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf, "movies", map[string]Kind{"year": KindInt, "rating": KindFloat})
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if got.NumRows() != r.NumRows() || got.NumCols() != r.NumCols() {
		t.Fatalf("round trip shape = (%d,%d)", got.NumRows(), got.NumCols())
	}
	for col := 0; col < r.NumCols(); col++ {
		for row := 0; row < r.NumRows(); row++ {
			if got.StringAt(col, row) != r.StringAt(col, row) {
				t.Errorf("cell (%d,%d) = %q, want %q", col, row, got.StringAt(col, row), r.StringAt(col, row))
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), "t", nil); err == nil {
		t.Error("empty input: want error")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1\n"), "t", nil); err == nil {
		t.Error("ragged row: want error")
	}
	if _, err := ReadCSV(strings.NewReader("a\nnotint\n"), "t", map[string]Kind{"a": KindInt}); err == nil {
		t.Error("bad int: want error")
	}
	if _, err := ReadCSV(strings.NewReader("a\nnotfloat\n"), "t", map[string]Kind{"a": KindFloat}); err == nil {
		t.Error("bad float: want error")
	}
}
