package relation

import (
	"fmt"
	"io"

	"encoding/gob"
)

// snapshotMagic versions the snapshot layout; a decoder seeing a different
// magic refuses rather than misreading.
const snapshotMagic = "qagtablesnap/1"

// tableSnapshot is the gob envelope of a persisted relation: the column
// data plus the data generation the snapshot covers — the write-ahead log
// skips replaying records at or below it.
type tableSnapshot struct {
	Magic string
	Name  string
	Gen   uint64
	Cols  []Column
}

// WriteSnapshot serializes the relation and its data generation to w.
// Columns are written by value; the relation stays untouched.
func WriteSnapshot(w io.Writer, r *Relation, gen uint64) error {
	if r == nil {
		return fmt.Errorf("relation: nil relation")
	}
	snap := tableSnapshot{Magic: snapshotMagic, Name: r.name, Gen: gen, Cols: r.cols}
	return gob.NewEncoder(w).Encode(&snap)
}

// ReadSnapshot reloads a relation previously written with WriteSnapshot,
// returning it with the data generation it covers. The rebuilt relation is
// value-identical to the snapshotted one: same column names, kinds, and
// cell contents, so everything derived from it (dictionaries, query
// results, cluster ids) is bit-identical.
func ReadSnapshot(rd io.Reader) (*Relation, uint64, error) {
	var snap tableSnapshot
	if err := gob.NewDecoder(rd).Decode(&snap); err != nil {
		return nil, 0, fmt.Errorf("relation: decoding snapshot: %w", err)
	}
	if snap.Magic != snapshotMagic {
		return nil, 0, fmt.Errorf("relation: snapshot magic %q, want %q", snap.Magic, snapshotMagic)
	}
	r, err := FromColumns(snap.Name, snap.Cols...)
	if err != nil {
		return nil, 0, fmt.Errorf("relation: rebuilding snapshot: %w", err)
	}
	return r, snap.Gen, nil
}
