package relation

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	r := MustFromColumns("t",
		StringCol("g", []string{"a", "b", "", "a\x00b"}),
		IntCol("n", []int64{1, -9, math.MaxInt64, 0}),
		FloatCol("v", []float64{1.5, math.Inf(-1), 0, math.Copysign(0, -1)}),
	)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, r, 7); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	got, gen, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if gen != 7 {
		t.Fatalf("gen = %d, want 7", gen)
	}
	if got.Name() != "t" || got.NumRows() != 4 || got.NumCols() != 3 {
		t.Fatalf("shape: %s %dx%d", got.Name(), got.NumRows(), got.NumCols())
	}
	for c := 0; c < r.NumCols(); c++ {
		want, have := r.Column(c), got.Column(c)
		if want.Name != have.Name || want.Kind != have.Kind {
			t.Fatalf("column %d header mismatch: %+v vs %+v", c, want, have)
		}
		for i := 0; i < r.NumRows(); i++ {
			// StringAt renders every kind; float bit patterns are separately
			// pinned below.
			if want.StringAt(i) != have.StringAt(i) {
				t.Fatalf("col %d row %d: %q vs %q", c, i, want.StringAt(i), have.StringAt(i))
			}
		}
	}
	// -0.0 and -Inf must survive bit-for-bit.
	for i, v := range r.Column(2).Float {
		if math.Float64bits(v) != math.Float64bits(got.Column(2).Float[i]) {
			t.Fatalf("float row %d: bits %x vs %x", i, math.Float64bits(v), math.Float64bits(got.Column(2).Float[i]))
		}
	}
}

func TestSnapshotRejectsForeignPayload(t *testing.T) {
	if _, _, err := ReadSnapshot(strings.NewReader("not a snapshot")); err == nil {
		t.Fatal("decoded garbage")
	}
	var buf bytes.Buffer
	r := MustFromColumns("t", StringCol("g", []string{"a"}))
	if err := WriteSnapshot(&buf, r, 1); err != nil {
		t.Fatal(err)
	}
	// Corrupt the magic in-place: decode must refuse.
	data := bytes.Replace(buf.Bytes(), []byte(snapshotMagic), []byte("qagtablesnap/9"), 1)
	if _, _, err := ReadSnapshot(bytes.NewReader(data)); err == nil {
		t.Fatal("decoded snapshot with wrong magic")
	}
}
