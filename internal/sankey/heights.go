package sankey

import (
	"fmt"
	"math"
	"sort"
)

// This file implements the alternative placement formulation of Appendix
// A.7.2: box heights proportional to cluster sizes, so positions are prefix
// sums rather than uniform slots and the objective weighs band widths by the
// distance between box centers. The paper shows this variant is NP-hard (by
// reduction from earliness-tardiness scheduling) and defers it; here it gets
// an exact solver for small instances and a barycenter heuristic.

// leftCenters returns the vertical center of each left box with heights
// proportional to cluster sizes, in the fixed left order.
func (d *Diff) leftCenters() []float64 {
	centers := make([]float64, len(d.Left))
	y := 0.0
	for i, c := range d.Left {
		h := boxHeight(c.Size())
		centers[i] = y + h/2
		y += h
	}
	return centers
}

// rightCenters returns the center of each right cluster under the placement
// (order[j] = display position of Right[j]).
func (d *Diff) rightCenters(order []int) []float64 {
	n := len(d.Right)
	atPos := make([]int, n)
	for j, p := range order {
		atPos[p] = j
	}
	centers := make([]float64, n)
	y := 0.0
	for p := 0; p < n; p++ {
		j := atPos[p]
		h := boxHeight(d.Right[j].Size())
		centers[j] = y + h/2
		y += h
	}
	return centers
}

func boxHeight(size int) float64 {
	if size < 1 {
		return 1
	}
	return float64(size)
}

// HeightDistance is the variable-height objective: sum over bands of
// band width times the vertical distance between the connected box centers.
func (d *Diff) HeightDistance(order []int) float64 {
	lc := d.leftCenters()
	rc := d.rightCenters(order)
	total := 0.0
	for i := range d.Left {
		for j := range d.Right {
			if d.M[i][j] == 0 {
				continue
			}
			total += float64(d.M[i][j]) * math.Abs(lc[i]-rc[j])
		}
	}
	return total
}

// BarycenterHeightOrder is the heuristic for the NP-hard variable-height
// placement: order the new clusters by the band-weighted average (the
// barycenter) of the centers of the old clusters they share tuples with.
// Clusters without bands keep their relative input order at the end.
func (d *Diff) BarycenterHeightOrder() []int {
	lc := d.leftCenters()
	n := len(d.Right)
	type entry struct {
		j    int
		bary float64
		free bool
	}
	entries := make([]entry, n)
	for j := 0; j < n; j++ {
		wsum, csum := 0.0, 0.0
		for i := range d.Left {
			if d.M[i][j] > 0 {
				wsum += float64(d.M[i][j])
				csum += float64(d.M[i][j]) * lc[i]
			}
		}
		if wsum == 0 {
			entries[j] = entry{j: j, bary: math.Inf(1), free: true}
		} else {
			entries[j] = entry{j: j, bary: csum / wsum}
		}
	}
	sort.SliceStable(entries, func(a, b int) bool { return entries[a].bary < entries[b].bary })
	order := make([]int, n)
	for p, e := range entries {
		order[e.j] = p
	}
	return order
}

// BruteForceHeightOrder enumerates all placements for the variable-height
// objective; it errors beyond 9 clusters.
func (d *Diff) BruteForceHeightOrder() ([]int, error) {
	n := len(d.Right)
	if n > 9 {
		return nil, fmt.Errorf("sankey: height brute force limited to 9 clusters, got %d", n)
	}
	best := make([]int, n)
	bestCost := math.Inf(1)
	cur := make([]int, n)
	used := make([]bool, n)
	var rec func(j int)
	rec = func(j int) {
		if j == n {
			if c := d.HeightDistance(cur); c < bestCost {
				bestCost = c
				copy(best, cur)
			}
			return
		}
		for pos := 0; pos < n; pos++ {
			if used[pos] {
				continue
			}
			used[pos] = true
			cur[j] = pos
			rec(j + 1)
			used[pos] = false
		}
	}
	rec(0)
	return best, nil
}
