// Package sankey implements the successive-solution comparison view of
// Appendix A.7 of the paper: given the cluster sets of two consecutive runs,
// it computes the tuple-overlap bands between old and new clusters and
// chooses a vertical ordering of the new clusters that minimizes the total
// weighted earth-mover's crossing distance, by reduction to minimum-cost
// perfect bipartite matching (solved exactly in polynomial time, per the
// paper's Definition A.3).
package sankey

import (
	"fmt"
	"math"

	"qagview/internal/lattice"
	"qagview/internal/matching"
	"qagview/internal/summarize"
)

// Diff is the comparison data between an old and a new solution.
type Diff struct {
	// Left and Right are the old and new cluster lists, in display (value)
	// order; left positions are fixed at 0..len(Left)-1.
	Left, Right []*lattice.Cluster
	// M[i][j] is the number of tuples shared by Left[i] and Right[j] (the
	// band widths).
	M [][]int
	// LeftTop and RightTop count covered top-L tuples per cluster, the
	// darker box fractions in the visualization.
	LeftTop, RightTop []int
}

// NewDiff builds the overlap matrix between two solutions over the same
// index. L is the coverage parameter used for the top-tuple counts.
func NewDiff(ix *lattice.Index, old, new *summarize.Solution, L int) (*Diff, error) {
	if old == nil || new == nil || old.Size() == 0 || new.Size() == 0 {
		return nil, fmt.Errorf("sankey: both solutions must be non-empty")
	}
	d := &Diff{
		Left:     old.Clusters,
		Right:    new.Clusters,
		LeftTop:  make([]int, old.Size()),
		RightTop: make([]int, new.Size()),
	}
	d.M = make([][]int, old.Size())
	for i, a := range d.Left {
		d.M[i] = make([]int, new.Size())
		for j, b := range d.Right {
			d.M[i][j] = intersectCount(a.Cov, b.Cov)
		}
		d.LeftTop[i] = topCount(a.Cov, L)
	}
	for j, b := range d.Right {
		d.RightTop[j] = topCount(b.Cov, L)
	}
	return d, nil
}

func intersectCount(a, b []int32) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

func topCount(cov []int32, L int) int {
	n := 0
	for _, t := range cov {
		if int(t) < L {
			n++
		}
	}
	return n
}

// DefaultOrder is the baseline placement: new clusters in their given
// (value) order.
func (d *Diff) DefaultOrder() []int {
	out := make([]int, len(d.Right))
	for i := range out {
		out[i] = i
	}
	return out
}

// OptimalOrder returns the position of each right cluster (order[j] is the
// display position of Right[j]) minimizing the total weighted distance
// sum_ij M[i][j] * |i - pos(j)|, via the Hungarian algorithm on the
// cluster-to-position cost matrix (Appendix A.7.2).
func (d *Diff) OptimalOrder() ([]int, error) {
	n := len(d.Right)
	cost := make([][]float64, n)
	for j := 0; j < n; j++ {
		cost[j] = make([]float64, n)
		for pos := 0; pos < n; pos++ {
			c := 0.0
			for i := range d.Left {
				c += float64(d.M[i][j]) * math.Abs(float64(i)-float64(pos))
			}
			cost[j][pos] = c
		}
	}
	assignment, _, err := matching.MinCost(cost)
	if err != nil {
		return nil, err
	}
	return assignment, nil
}

// BruteForceOrder enumerates all placements (for tests and the paper's
// runtime comparison); it errors beyond 9 clusters.
func (d *Diff) BruteForceOrder() ([]int, error) {
	n := len(d.Right)
	if n > 9 {
		return nil, fmt.Errorf("sankey: brute force limited to 9 clusters, got %d", n)
	}
	best := make([]int, n)
	bestCost := math.Inf(1)
	cur := make([]int, n)
	used := make([]bool, n)
	var rec func(j int)
	rec = func(j int) {
		if j == n {
			if c := float64(d.TotalDistance(cur)); c < bestCost {
				bestCost = c
				copy(best, cur)
			}
			return
		}
		for pos := 0; pos < n; pos++ {
			if used[pos] {
				continue
			}
			used[pos] = true
			cur[j] = pos
			rec(j + 1)
			used[pos] = false
		}
	}
	rec(0)
	return best, nil
}

// TotalDistance is the objective of Definition A.3 for a placement:
// sum_ij M[i][j] * |i - order[j]|.
func (d *Diff) TotalDistance(order []int) int {
	total := 0
	for i := range d.Left {
		for j := range d.Right {
			if d.M[i][j] == 0 {
				continue
			}
			diff := i - order[j]
			if diff < 0 {
				diff = -diff
			}
			total += d.M[i][j] * diff
		}
	}
	return total
}

// Crossings counts pairs of non-empty bands that cross under the placement,
// the second clutter metric of Figure 16b.
func (d *Diff) Crossings(order []int) int {
	type band struct{ i, pos int }
	var bands []band
	for i := range d.Left {
		for j := range d.Right {
			if d.M[i][j] > 0 {
				bands = append(bands, band{i, order[j]})
			}
		}
	}
	n := 0
	for x := 0; x < len(bands); x++ {
		for y := x + 1; y < len(bands); y++ {
			if (bands[x].i-bands[y].i)*(bands[x].pos-bands[y].pos) < 0 {
				n++
			}
		}
	}
	return n
}
