package sankey

import (
	"fmt"
	"math/rand"
	"testing"

	"qagview/internal/lattice"
	"qagview/internal/summarize"
)

func solutions(t *testing.T, seed int64) (*lattice.Index, *summarize.Solution, *summarize.Solution) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]string, 0, 80)
	vals := make([]float64, 0, 80)
	seen := map[string]bool{}
	for len(rows) < 80 {
		row := make([]string, 4)
		key := ""
		boost := 0.0
		for j := range row {
			v := rng.Intn(4)
			row[j] = fmt.Sprintf("v%d_%d", j, v)
			key += row[j]
			if v == 0 && j < 2 {
				boost++
			}
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		rows = append(rows, row)
		vals = append(vals, rng.Float64()+boost)
	}
	s, err := lattice.NewSpace([]string{"a", "b", "c", "d"}, rows, vals)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := lattice.BuildIndex(s, 20)
	if err != nil {
		t.Fatal(err)
	}
	oldSol, err := summarize.Hybrid(ix, summarize.Params{K: 5, L: 20, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	newSol, err := summarize.Hybrid(ix, summarize.Params{K: 4, L: 20, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	return ix, oldSol, newSol
}

func TestNewDiffOverlaps(t *testing.T) {
	ix, oldSol, newSol := solutions(t, 1)
	d, err := NewDiff(ix, oldSol, newSol, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.M) != oldSol.Size() || len(d.M[0]) != newSol.Size() {
		t.Fatalf("M shape = %dx%d", len(d.M), len(d.M[0]))
	}
	// Overlap counts are bounded by the smaller coverage and symmetric in
	// definition: recompute one cell naively.
	for i, a := range d.Left {
		for j, b := range d.Right {
			want := 0
			in := map[int32]bool{}
			for _, tt := range a.Cov {
				in[tt] = true
			}
			for _, tt := range b.Cov {
				if in[tt] {
					want++
				}
			}
			if d.M[i][j] != want {
				t.Fatalf("M[%d][%d] = %d, want %d", i, j, d.M[i][j], want)
			}
		}
	}
	for i, c := range d.Left {
		if d.LeftTop[i] > c.Size() {
			t.Errorf("LeftTop[%d] = %d exceeds coverage %d", i, d.LeftTop[i], c.Size())
		}
	}
}

func TestNewDiffRejectsEmpty(t *testing.T) {
	ix, oldSol, _ := solutions(t, 2)
	if _, err := NewDiff(ix, oldSol, &summarize.Solution{}, 20); err == nil {
		t.Error("empty new solution accepted")
	}
	if _, err := NewDiff(ix, nil, oldSol, 20); err == nil {
		t.Error("nil old solution accepted")
	}
}

func TestOptimalOrderMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		ix, oldSol, newSol := solutions(t, seed)
		d, err := NewDiff(ix, oldSol, newSol, 20)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := d.OptimalOrder()
		if err != nil {
			t.Fatal(err)
		}
		bf, err := d.BruteForceOrder()
		if err != nil {
			t.Fatal(err)
		}
		if got, want := d.TotalDistance(opt), d.TotalDistance(bf); got != want {
			t.Errorf("seed %d: hungarian distance %d != brute force %d", seed, got, want)
		}
		// Placement must be a permutation.
		seen := make([]bool, len(opt))
		for _, p := range opt {
			if p < 0 || p >= len(opt) || seen[p] {
				t.Fatalf("seed %d: invalid placement %v", seed, opt)
			}
			seen[p] = true
		}
	}
}

func TestOptimalNeverWorseThanDefault(t *testing.T) {
	for seed := int64(10); seed < 20; seed++ {
		ix, oldSol, newSol := solutions(t, seed)
		d, err := NewDiff(ix, oldSol, newSol, 20)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := d.OptimalOrder()
		if err != nil {
			t.Fatal(err)
		}
		if d.TotalDistance(opt) > d.TotalDistance(d.DefaultOrder()) {
			t.Errorf("seed %d: optimal placement worse than default", seed)
		}
	}
}

func TestCrossingsCountsInversions(t *testing.T) {
	// Hand-built diff: two left clusters, two right clusters, bands on the
	// diagonal and anti-diagonal.
	d := &Diff{
		Left:  make([]*lattice.Cluster, 2),
		Right: make([]*lattice.Cluster, 2),
		M:     [][]int{{1, 1}, {0, 1}},
	}
	straight := []int{0, 1}
	flipped := []int{1, 0}
	if got := d.Crossings(straight); got != 0 {
		t.Errorf("straight crossings = %d, want 0", got)
	}
	// Flipping positions makes band (0,0)->pos1 cross band (1,1)->pos0.
	if got := d.Crossings(flipped); got == 0 {
		t.Error("flipped placement should cross")
	}
	if d.TotalDistance(straight) >= d.TotalDistance(flipped) {
		// With this M the straight order has distance 1 vs flipped 2.
		t.Errorf("distances: straight %d flipped %d", d.TotalDistance(straight), d.TotalDistance(flipped))
	}
}

func TestBruteForceLimit(t *testing.T) {
	d := &Diff{Left: make([]*lattice.Cluster, 1), Right: make([]*lattice.Cluster, 10), M: make([][]int, 1)}
	d.M[0] = make([]int, 10)
	if _, err := d.BruteForceOrder(); err == nil {
		t.Error("10-cluster brute force accepted")
	}
}

func TestHeightLayoutCentersConsistent(t *testing.T) {
	ix, oldSol, newSol := solutions(t, 30)
	d, err := NewDiff(ix, oldSol, newSol, 20)
	if err != nil {
		t.Fatal(err)
	}
	order := d.DefaultOrder()
	// The objective must be permutation-sensitive and non-negative.
	if d.HeightDistance(order) < 0 {
		t.Fatal("negative height distance")
	}
}

func TestBarycenterHeightOrderIsPermutation(t *testing.T) {
	for seed := int64(31); seed < 41; seed++ {
		ix, oldSol, newSol := solutions(t, seed)
		d, err := NewDiff(ix, oldSol, newSol, 20)
		if err != nil {
			t.Fatal(err)
		}
		order := d.BarycenterHeightOrder()
		seen := make([]bool, len(order))
		for _, p := range order {
			if p < 0 || p >= len(order) || seen[p] {
				t.Fatalf("seed %d: invalid permutation %v", seed, order)
			}
			seen[p] = true
		}
		// The heuristic must never be worse than the exact optimum, and the
		// exact optimum must not beat itself.
		exact, err := d.BruteForceHeightOrder()
		if err != nil {
			t.Fatal(err)
		}
		if d.HeightDistance(exact) > d.HeightDistance(order)+1e-9 {
			t.Fatalf("seed %d: exact (%v) worse than heuristic (%v)",
				seed, d.HeightDistance(exact), d.HeightDistance(order))
		}
	}
}

func TestBarycenterFindsObviousOptimum(t *testing.T) {
	// Two equal-height clusters per side with diagonal bands: identity order
	// is optimal and the barycenter heuristic must find it.
	mk := func(size int) *lattice.Cluster {
		cov := make([]int32, size)
		for i := range cov {
			cov[i] = int32(i)
		}
		return &lattice.Cluster{Cov: cov}
	}
	d := &Diff{
		Left:  []*lattice.Cluster{mk(4), mk(4)},
		Right: []*lattice.Cluster{mk(4), mk(4)},
		M:     [][]int{{5, 0}, {0, 5}},
	}
	order := d.BarycenterHeightOrder()
	if order[0] != 0 || order[1] != 1 {
		t.Fatalf("barycenter order = %v, want identity", order)
	}
	exact, err := d.BruteForceHeightOrder()
	if err != nil {
		t.Fatal(err)
	}
	if d.HeightDistance(order) != d.HeightDistance(exact) {
		t.Fatalf("heuristic %v != exact %v on diagonal instance",
			d.HeightDistance(order), d.HeightDistance(exact))
	}
}

func TestBruteForceHeightLimit(t *testing.T) {
	d := &Diff{Left: make([]*lattice.Cluster, 1), Right: make([]*lattice.Cluster, 10), M: make([][]int, 1)}
	d.M[0] = make([]int, 10)
	if _, err := d.BruteForceHeightOrder(); err == nil {
		t.Error("10-cluster height brute force accepted")
	}
}

func TestFreeClustersGoLast(t *testing.T) {
	mk := func(size int) *lattice.Cluster {
		cov := make([]int32, size)
		for i := range cov {
			cov[i] = int32(i)
		}
		return &lattice.Cluster{Cov: cov}
	}
	// Right cluster 0 has no bands; cluster 1 connects to left 0.
	d := &Diff{
		Left:  []*lattice.Cluster{mk(3)},
		Right: []*lattice.Cluster{mk(3), mk(3)},
		M:     [][]int{{0, 2}},
	}
	order := d.BarycenterHeightOrder()
	if order[0] != 1 || order[1] != 0 {
		t.Fatalf("bandless cluster not placed last: %v", order)
	}
}
