package server

import "container/list"

// lruCache is a byte-accounted LRU over string keys: entries carry an
// explicit byte cost and eviction runs while either the entry or the byte
// budget is exceeded. It is not goroutine-safe; the owner holds its own
// lock (sessionManager.mu).
type lruCache struct {
	maxEntries int   // 0 = unlimited
	maxBytes   int64 // 0 = unlimited
	ll         *list.List
	items      map[string]*list.Element
	bytes      int64
	onEvict    func(key string, value any)
}

type lruEntry struct {
	key   string
	value any
	bytes int64
}

func newLRUCache(maxEntries int, maxBytes int64, onEvict func(string, any)) *lruCache {
	return &lruCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
		onEvict:    onEvict,
	}
}

// Get returns the value for key and marks it most-recently-used.
func (c *lruCache) Get(key string) (any, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).value, true
}

// Add inserts (or replaces) key with the given byte cost, then evicts from
// the cold end until the caps hold again. The just-added entry is never
// evicted, even if it alone exceeds the byte budget: a session larger than
// the budget still has to exist to be served.
func (c *lruCache) Add(key string, value any, bytes int64) {
	if el, ok := c.items[key]; ok {
		e := el.Value.(*lruEntry)
		c.bytes += bytes - e.bytes
		e.value, e.bytes = value, bytes
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&lruEntry{key: key, value: value, bytes: bytes})
		c.bytes += bytes
	}
	c.evictOver()
}

// Resize adjusts the byte cost of an existing entry (a session's store
// arrives after the session itself) and evicts if the new cost overflows
// the budget.
func (c *lruCache) Resize(key string, bytes int64) {
	el, ok := c.items[key]
	if !ok {
		return
	}
	e := el.Value.(*lruEntry)
	c.bytes += bytes - e.bytes
	e.bytes = bytes
	c.evictOver()
}

func (c *lruCache) evictOver() {
	for c.ll.Len() > 1 &&
		((c.maxEntries > 0 && c.ll.Len() > c.maxEntries) ||
			(c.maxBytes > 0 && c.bytes > c.maxBytes)) {
		c.removeElement(c.ll.Back())
	}
}

// Remove drops key without LRU consideration.
func (c *lruCache) Remove(key string) {
	if el, ok := c.items[key]; ok {
		c.removeElement(el)
	}
}

func (c *lruCache) removeElement(el *list.Element) {
	e := el.Value.(*lruEntry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= e.bytes
	if c.onEvict != nil {
		c.onEvict(e.key, e.value)
	}
}

// Len returns the number of live entries.
func (c *lruCache) Len() int { return c.ll.Len() }

// Bytes returns the accounted byte total of live entries.
func (c *lruCache) Bytes() int64 { return c.bytes }
