package server

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestLRUCacheByteAccounting(t *testing.T) {
	var evicted []string
	c := newLRUCache(0, 100, func(k string, _ any) { evicted = append(evicted, k) })

	c.Add("a", 1, 40)
	c.Add("b", 2, 40)
	if c.Len() != 2 || c.Bytes() != 80 {
		t.Fatalf("len=%d bytes=%d, want 2/80", c.Len(), c.Bytes())
	}
	// Touch a so b becomes the LRU victim.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Add("c", 3, 40) // 120 > 100: evicts b
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("evicted = %v, want [b]", evicted)
	}
	if c.Len() != 2 || c.Bytes() != 80 {
		t.Fatalf("after eviction: len=%d bytes=%d, want 2/80", c.Len(), c.Bytes())
	}

	// Resize past the budget evicts the cold entry (a), not the resized one.
	c.Resize("c", 90)
	if len(evicted) != 2 || evicted[1] != "a" {
		t.Fatalf("evicted = %v, want [b a]", evicted)
	}
	if c.Bytes() != 90 {
		t.Fatalf("bytes = %d, want 90", c.Bytes())
	}

	// An entry bigger than the whole budget still lives (never evict the
	// newest entry).
	c.Add("huge", 4, 500)
	if _, ok := c.Get("huge"); !ok {
		t.Fatal("oversized entry must survive")
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1 (c evicted)", c.Len())
	}

	c.Remove("huge")
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("after remove: len=%d bytes=%d", c.Len(), c.Bytes())
	}
	if evicted[len(evicted)-1] != "huge" {
		t.Fatalf("explicit remove must fire the evict hook for cleanup, got %v", evicted)
	}
}

func TestLRUCacheEntryCap(t *testing.T) {
	c := newLRUCache(3, 0, nil)
	for _, k := range []string{"a", "b", "c", "d"} {
		c.Add(k, k, 1)
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should have been evicted")
	}
	// Replacing an existing key does not grow the cache.
	c.Add("d", "d2", 5)
	if c.Len() != 3 || c.Bytes() != 7 {
		t.Fatalf("after replace: len=%d bytes=%d, want 3/7", c.Len(), c.Bytes())
	}
	if v, _ := c.Get("d"); v != "d2" {
		t.Fatalf("replace lost the new value: %v", v)
	}
}

func TestSingleflightShares(t *testing.T) {
	var g flightGroup
	started := make(chan struct{})
	release := make(chan struct{})
	results := make(chan string, 8)
	var calls atomic.Int32
	go func() {
		v, _, _ := g.Do("k", func() (any, error) {
			calls.Add(1)
			close(started)
			<-release
			return "owner", nil
		})
		results <- v.(string)
	}()
	<-started
	for i := 0; i < 7; i++ {
		go func() {
			v, _, shared := g.Do("k", func() (any, error) {
				calls.Add(1)
				return "dup", nil
			})
			if !shared {
				t.Error("duplicate call not marked shared")
			}
			results <- v.(string)
		}()
	}
	// Hold the owner until every duplicate is registered on its call, so
	// all 7 must share its result.
	waiters := func() int {
		g.mu.Lock()
		defer g.mu.Unlock()
		if c := g.m["k"]; c != nil {
			return c.dups
		}
		return -1
	}
	deadline := time.Now().Add(10 * time.Second)
	for waiters() != 7 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d waiters registered", waiters())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	for i := 0; i < 8; i++ {
		if v := <-results; v != "owner" {
			t.Fatalf("result %d = %q, want owner", i, v)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1", n)
	}
}
