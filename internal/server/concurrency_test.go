package server

import (
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentSessionTraffic hammers shared sessions from many goroutines
// with mixed solution and diff reads while the background precompute is
// still running, plus concurrent identical session creates racing the
// singleflight. Run under -race this pins the server's central concurrency
// claims: reads never block on (or corrupt) a build, identical creates
// collapse to one build, and the metrics/cache bookkeeping stays
// consistent.
func TestConcurrentSessionTraffic(t *testing.T) {
	// Unlimited admission: this test deliberately drives more concurrent
	// creates than the default build semaphore would admit (the 429 path has
	// its own test in durable_test.go).
	srv, ts := testServer(t, Config{MaxInflightBuilds: -1})

	// A second, larger table so two sessions with different shapes share the
	// server.
	if resp := post(t, ts, "/v1/tables", map[string]any{
		"name":  "big",
		"csv":   makeCSV(4, 4, 3),
		"kinds": map[string]string{"v": "float"},
	}); resp.code != http.StatusCreated {
		t.Fatalf("creating big table: %d %s", resp.code, resp.raw)
	}
	bigSQL := strings.ReplaceAll(testSQL, "FROM t", "FROM big")

	const (
		creators = 4  // goroutines racing identical session creates
		readers  = 8  // goroutines hammering solutions/diffs
		rounds   = 40 // reads per reader
	)
	kmax := 6
	ds := []int{0, 1, 2}

	// Phase 0: everyone starts together; creators race the singleflight for
	// the same two sessions readers will use.
	ids := make([]string, creators)
	var wg sync.WaitGroup
	for c := 0; c < creators; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sql := testSQL
			if c%2 == 1 {
				sql = bigSQL
			}
			resp := post(t, ts, "/v1/sessions", map[string]any{
				"sql": sql, "l": 8, "kmin": 1, "kmax": kmax, "ds": ds,
			})
			if resp.code != http.StatusCreated && resp.code != http.StatusOK {
				t.Errorf("creator %d: %d %s", c, resp.code, resp.raw)
				return
			}
			ids[c] = resp.body["session"].(string)
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		t.Fatal("goroutine failures above")
	}
	for c := 2; c < creators; c++ {
		if ids[c] != ids[c%2] {
			t.Fatalf("identical creates diverged: %q vs %q", ids[c], ids[c%2])
		}
	}
	sessions := []string{ids[0], ids[1]}

	// Phase 1: readers mix solution and diff reads across both shared
	// sessions, racing the in-flight background precomputes (early reads
	// take the live path, later ones the store path).
	var liveReads, storeReads atomic.Int64
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < rounds; i++ {
				id := sessions[rng.Intn(len(sessions))]
				k := 1 + rng.Intn(kmax)
				d := ds[rng.Intn(len(ds))]
				switch i % 4 {
				case 0, 1: // solution
					resp := get(t, ts, fmt.Sprintf("/v1/sessions/%s/solution?k=%d&d=%d", id, k, d))
					if resp.code != http.StatusOK {
						t.Errorf("reader %d solution: %d %s", g, resp.code, resp.raw)
						return
					}
					switch resp.body["source"] {
					case "live":
						liveReads.Add(1)
					case "store":
						storeReads.Add(1)
					}
				case 2: // diff between two neighbouring slider positions
					k2 := k%kmax + 1
					resp := get(t, ts, fmt.Sprintf("/v1/sessions/%s/diff?k1=%d&d1=%d&k2=%d&d2=%d", id, k, d, k2, d))
					if resp.code != http.StatusOK {
						t.Errorf("reader %d diff: %d %s", g, resp.code, resp.raw)
						return
					}
				case 3: // metadata + metrics under load
					if resp := get(t, ts, "/v1/sessions/"+id); resp.code != http.StatusOK {
						t.Errorf("reader %d info: %d %s", g, resp.code, resp.raw)
						return
					}
					if resp := get(t, ts, "/metrics"); resp.code != http.StatusOK {
						t.Errorf("reader %d metrics: %d %s", g, resp.code, resp.raw)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.Fatal("goroutine failures above")
	}

	// The two distinct (query, L, grid) tuples must have built exactly twice
	// despite 4 racing creators and 8 racing readers.
	entries, bytes, stats := srv.sessions.occupancy()
	if stats.Builds != 2 {
		t.Errorf("builds = %d, want 2 (singleflight dedupe)", stats.Builds)
	}
	if entries != 2 {
		t.Errorf("live sessions = %d, want 2", entries)
	}
	if bytes <= 0 {
		t.Errorf("cache bytes = %d, want > 0", bytes)
	}
	if total := liveReads.Load() + storeReads.Load(); total != int64(readers*rounds/2) {
		t.Errorf("solution reads = %d, want %d", total, readers*rounds/2)
	}
	t.Logf("solution reads: %d live, %d store; cache bytes %d",
		liveReads.Load(), storeReads.Load(), bytes)

	// Both sessions finish their builds; post-ready reads come from the
	// store and agree with what live reads reported.
	for _, id := range sessions {
		waitReady(t, ts, id)
		resp := get(t, ts, fmt.Sprintf("/v1/sessions/%s/solution?k=%d&d=1", id, kmax))
		if resp.code != http.StatusOK || resp.body["source"] != "store" {
			t.Errorf("post-ready read: %d %s", resp.code, resp.raw)
		}
	}
}

// TestConcurrentEvictionChurn drives session creates and reads through a
// 2-entry LRU so sessions are constantly evicted mid-build; reads must see
// clean 200s or 404s, never a torn state, and every evicted session's
// background sweep must get cancelled without leaking.
func TestConcurrentEvictionChurn(t *testing.T) {
	// Unlimited admission, as above: churn needs every worker in flight.
	srv, ts := testServer(t, Config{MaxSessions: 2, MaxInflightBuilds: -1})

	const workers = 8
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < 20; i++ {
				// 6 distinct session shapes over a 2-slot cache: constant
				// churn.
				l := 4 + rng.Intn(6)
				resp := post(t, ts, "/v1/sessions", map[string]any{
					"sql": testSQL, "l": l, "kmin": 1, "kmax": 4, "ds": []int{1, 2},
				})
				if resp.code != http.StatusCreated && resp.code != http.StatusOK {
					t.Errorf("worker %d create l=%d: %d %s", g, l, resp.code, resp.raw)
					return
				}
				id := resp.body["session"].(string)
				sol := get(t, ts, fmt.Sprintf("/v1/sessions/%s/solution?k=%d&d=1", id, 1+rng.Intn(4)))
				if sol.code != http.StatusOK && sol.code != http.StatusNotFound {
					t.Errorf("worker %d read: %d %s", g, sol.code, sol.raw)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.Fatal("goroutine failures above")
	}
	entries, _, stats := srv.sessions.occupancy()
	if entries > 2 {
		t.Errorf("live sessions = %d, want <= 2", entries)
	}
	if stats.Evictions == 0 {
		t.Error("expected evictions under churn")
	}
}
