//go:build qagfault

package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"

	"qagview/internal/faultinject"
)

// The crash harness re-execs this test binary as a child running only
// TestCrashChildProcess with a QAGFAULT crash directive armed, so the child
// dies by SIGKILL at a registered fault point mid-operation — true kill -9
// semantics: no deferred cleanup, no buffered flushes. The parent then
// recovers the child's WAL directory in-process and proves the recovered
// state is byte-identical to a never-crashed server fed the same
// acknowledged operations.

// childBatches is the child's append sequence: generations 2..5 on top of
// the create (generation 1). A checkpoint runs between generations 3 and 4,
// so crash points in the rotate/snapshot/prune path fire mid-sequence.
var childBatches = [][][]string{
	{{"A0", "B0", "C0", "100"}, {"A1", "B1", "C1", "90"}},
	{{"A2", "B2", "C0", "80"}},
	{{"A9", "B9", "C9", "70"}, {"A9", "B9", "C9", "71"}},
	{{"A1", "B2", "C1", "60"}},
}

// TestCrashChildProcess is the child half of the harness: it only runs when
// QAGCRASH_DIR is set (the parent's re-exec), serves a durable server, and
// appends an fsynced ack line to QAGCRASH_ACKS after every acknowledged
// write. Somewhere along the way the armed crash point SIGKILLs it.
func TestCrashChildProcess(t *testing.T) {
	dir := os.Getenv("QAGCRASH_DIR")
	if dir == "" {
		t.Skip("not a crash-harness child (QAGCRASH_DIR unset)")
	}
	ackPath := os.Getenv("QAGCRASH_ACKS")
	ackFile, err := os.OpenFile(ackPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("opening ack file: %v", err)
	}
	ack := func(gen float64) {
		// The ack line is itself fsynced: the parent trusts it as "the client
		// saw this generation acknowledged".
		fmt.Fprintf(ackFile, "%d\n", uint64(gen))
		if err := ackFile.Sync(); err != nil {
			t.Fatalf("syncing ack file: %v", err)
		}
	}

	// Explicit checkpoints only: determinism about which operation each
	// crash point fires under.
	srv := New(Config{WALDir: dir, WALCheckpointBytes: -1})
	if _, err := srv.Recover(); err != nil {
		t.Fatalf("child Recover: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	resp := post(t, ts, "/v1/tables", map[string]any{
		"name":  "t",
		"csv":   makeCSV(3, 3, 2),
		"kinds": map[string]string{"v": "float"},
	})
	if resp.code != http.StatusCreated {
		t.Fatalf("child create: %d %s", resp.code, resp.raw)
	}
	ack(resp.body["data_version"].(float64))
	for i, batch := range childBatches {
		if i == 2 {
			if err := srv.checkpoint(); err != nil {
				t.Fatalf("child checkpoint: %v", err)
			}
		}
		resp := appendRows(t, ts, "t", batch)
		if resp.code != http.StatusOK {
			t.Fatalf("child append %d: %d %s", i, resp.code, resp.raw)
		}
		ack(resp.body["data_version"].(float64))
	}
	if err := srv.checkpoint(); err != nil {
		t.Fatalf("child final checkpoint: %v", err)
	}
}

// crashSpec is one harness run: a crash point and the 1-based hit that
// fires.
type crashSpec struct {
	point string
	nth   int
}

// TestCrashRecoveryBitIdentity is the parent half: for every registered
// crash point (plus a couple of later-hit variants), kill a child server at
// that point, recover its WAL directory, and assert
//
//	acked ⊆ recovered ⊆ attempted,
//
// with the recovered state byte-identical — query bodies and session
// solutions — to a never-crashed server fed exactly the recovered prefix.
func TestCrashRecoveryBitIdentity(t *testing.T) {
	if os.Getenv("QAGCRASH_DIR") != "" {
		t.Skip("crash-harness child must not recurse")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]crashSpec, 0, len(faultinject.CrashPoints)+2)
	for _, p := range faultinject.CrashPoints {
		specs = append(specs, crashSpec{p, 1})
	}
	// Later hits land mid-append-sequence rather than on the create.
	specs = append(specs,
		crashSpec{faultinject.CrashWALFsyncAfter, 3},
		crashSpec{faultinject.CrashWALAppendStaged, 4},
	)
	for _, spec := range specs {
		t.Run(fmt.Sprintf("%s-hit%d", spec.point, spec.nth), func(t *testing.T) {
			dir := t.TempDir()
			acks := dir + "/.acks" // dotfile: ignored by segment and snapshot scans
			directive := fmt.Sprintf("crash:%s", spec.point)
			if spec.nth > 1 {
				directive = fmt.Sprintf("%s:%d", directive, spec.nth)
			}
			cmd := exec.Command(exe, "-test.run=^TestCrashChildProcess$", "-test.v")
			cmd.Env = append(os.Environ(),
				"QAGCRASH_DIR="+dir,
				"QAGCRASH_ACKS="+acks,
				"QAGFAULT="+directive,
			)
			out, err := cmd.CombinedOutput()
			if err == nil {
				t.Fatalf("child survived crash point %s (hit %d); harness bug — every spec must kill the child:\n%s",
					spec.point, spec.nth, out)
			}
			if cmd.ProcessState.ExitCode() != -1 {
				// Killed-by-signal reports -1; any real exit code means the
				// child failed for a different reason.
				t.Fatalf("child exited %d instead of dying by SIGKILL:\n%s", cmd.ProcessState.ExitCode(), out)
			}
			lastAcked := readAcks(t, acks)

			srv := New(Config{WALDir: dir})
			stats, err := srv.Recover()
			if err != nil {
				t.Fatalf("recovery after crash at %s: %v", spec.point, err)
			}
			defer srv.Close()
			recovered := srv.db.generation("t")
			attempted := uint64(1 + len(childBatches))
			if recovered < lastAcked {
				t.Fatalf("LOST ACKNOWLEDGED DATA: recovered gen %d < last acked %d (stats %+v)", recovered, lastAcked, stats)
			}
			if recovered > attempted {
				t.Fatalf("recovered gen %d beyond the %d attempted operations", recovered, attempted)
			}
			t.Logf("point %s hit %d: acked %d, recovered %d (replayed %d, snapshots %d, truncated %d bytes)",
				spec.point, spec.nth, lastAcked, recovered, stats.RecordsReplayed, stats.SnapshotsLoaded, stats.TruncatedBytes)
			if recovered == 0 {
				if len(srv.db.tables()) != 0 {
					t.Fatalf("generation 0 but tables exist: %v", srv.db.tables())
				}
				return
			}

			// Reference: a never-crashed, non-durable server fed exactly the
			// recovered prefix.
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			refSrv := New(Config{})
			ref := httptest.NewServer(refSrv.Handler())
			defer ref.Close()
			defer refSrv.Close()
			if resp := post(t, ref, "/v1/tables", map[string]any{
				"name":  "t",
				"csv":   makeCSV(3, 3, 2),
				"kinds": map[string]string{"v": "float"},
			}); resp.code != http.StatusCreated {
				t.Fatalf("reference create: %d %s", resp.code, resp.raw)
			}
			for i := uint64(0); i+2 <= recovered; i++ {
				if resp := appendRows(t, ref, "t", childBatches[i]); resp.code != http.StatusOK {
					t.Fatalf("reference append %d: %d %s", i, resp.code, resp.raw)
				}
			}
			wantQ, gotQ := crashQueryBody(t, ref), crashQueryBody(t, ts)
			if gotQ != wantQ {
				t.Fatalf("recovered query body differs from never-crashed reference:\n%s\nvs\n%s", gotQ, wantQ)
			}
			wantS, gotS := crashSolutionBody(t, ref), crashSolutionBody(t, ts)
			if gotS != wantS {
				t.Fatalf("recovered solution differs from never-crashed reference:\n%s\nvs\n%s", gotS, wantS)
			}
		})
	}
}

// readAcks returns the highest generation the child saw acknowledged.
func readAcks(t *testing.T, path string) uint64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0
		}
		t.Fatal(err)
	}
	var last uint64
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if line == "" {
			continue
		}
		g, err := strconv.ParseUint(line, 10, 64)
		if err != nil {
			t.Fatalf("bad ack line %q: %v", line, err)
		}
		if g > last {
			last = g
		}
	}
	return last
}

// crashQueryBody runs the standard query, 6-group sessions being too small
// to matter here; raw JSON so equality is byte equality.
func crashQueryBody(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp := post(t, ts, "/v1/queries", map[string]any{"sql": testSQL, "limit": 50})
	if resp.code != http.StatusOK {
		t.Fatalf("query: %d %s", resp.code, resp.raw)
	}
	return resp.raw
}

// crashSolutionBody opens a small session and reads one expanded solution.
func crashSolutionBody(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp := post(t, ts, "/v1/sessions", map[string]any{
		"sql": testSQL, "l": 6, "kmin": 1, "kmax": 4, "ds": []int{1, 2},
	})
	if resp.code != http.StatusCreated && resp.code != http.StatusOK {
		t.Fatalf("session: %d %s", resp.code, resp.raw)
	}
	id := resp.body["session"].(string)
	waitReady(t, ts, id)
	sol := get(t, ts, "/v1/sessions/"+id+"/solution?k=3&d=2&expand=1")
	if sol.code != http.StatusOK {
		t.Fatalf("solution: %d %s", sol.code, sol.raw)
	}
	return sol.raw
}

// TestInjectedFsyncErrorFailsStop pins fsyncgate semantics: an injected
// fsync failure 503s the request, leaves the log sticky-broken (every later
// write refuses fast), and a restart recovers cleanly.
func TestInjectedFsyncErrorFailsStop(t *testing.T) {
	if os.Getenv("QAGCRASH_DIR") != "" {
		t.Skip("crash-harness child")
	}
	t.Cleanup(faultinject.Reset)
	dir := t.TempDir()
	srv, ts, _ := durableServer(t, dir, Config{})
	createTestTable(t, ts)

	if err := faultinject.Arm("err:wal.sync:enospc"); err != nil {
		t.Fatal(err)
	}
	resp := appendRows(t, ts, "t", [][]string{{"A0", "B0", "C0", "1"}})
	if resp.code != http.StatusServiceUnavailable {
		t.Fatalf("append with failing fsync: %d %s, want 503", resp.code, resp.raw)
	}
	// Sticky: the next write fails fast even though the disk "recovered".
	faultinject.Reset()
	resp = appendRows(t, ts, "t", [][]string{{"A1", "B1", "C1", "2"}})
	if resp.code != http.StatusServiceUnavailable {
		t.Fatalf("append after fsync failure: %d %s, want sticky 503", resp.code, resp.raw)
	}
	health := get(t, ts, "/healthz")
	if health.body["wal"] != "broken" {
		t.Fatalf("healthz wal = %v, want broken", health.body["wal"])
	}
	srv.dur.mu.Lock()
	l := srv.dur.log
	srv.dur.mu.Unlock()
	_ = l.Close() // returns the sticky error; the file still closes
	ts.Close()

	// Restart: recovery yields only durable state; the refused appends are
	// gone, the acknowledged create is intact or ahead (an un-acked record
	// that reached the OS may legally survive).
	srv2, ts2, _ := durableServer(t, dir, Config{})
	g := srv2.db.generation("t")
	if g < 1 || g > 2 {
		t.Fatalf("recovered generation = %d, want 1 (acked) or 2 (written, un-acked)", g)
	}
	if resp := appendRows(t, ts2, "t", [][]string{{"A2", "B2", "C1", "3"}}); resp.code != http.StatusOK {
		t.Fatalf("append after restart: %d %s", resp.code, resp.raw)
	}
}

// TestInjectedShortWriteTornTail pins torn-write repair with a genuinely
// half-written batch: the failed append is refused, and recovery truncates
// the torn bytes rather than refusing to start.
func TestInjectedShortWriteTornTail(t *testing.T) {
	if os.Getenv("QAGCRASH_DIR") != "" {
		t.Skip("crash-harness child")
	}
	t.Cleanup(faultinject.Reset)
	dir := t.TempDir()
	srv, ts, _ := durableServer(t, dir, Config{})
	createTestTable(t, ts)
	mustAppend(t, ts, "t", [][]string{{"A0", "B0", "C0", "1"}})
	if err := faultinject.Arm("err:wal.write:short"); err != nil {
		t.Fatal(err)
	}
	resp := appendRows(t, ts, "t", [][]string{{"A1", "B1", "C1", "2"}})
	if resp.code != http.StatusServiceUnavailable {
		t.Fatalf("short-written append: %d %s, want 503", resp.code, resp.raw)
	}
	faultinject.Reset()
	srv.dur.mu.Lock()
	l := srv.dur.log
	srv.dur.mu.Unlock()
	_ = l.Close()
	ts.Close()

	srv2, _, stats := durableServer(t, dir, Config{})
	if stats.TruncatedBytes == 0 {
		t.Fatalf("short write left no torn tail to repair: %+v", stats)
	}
	if g := srv2.db.generation("t"); g != 2 {
		t.Fatalf("recovered generation = %d, want 2 (torn record dropped)", g)
	}
}
