package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"qagview"
)

func del(t *testing.T, ts *httptest.Server, path string) response {
	t.Helper()
	req, err := http.NewRequest("DELETE", ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	return do(t, req)
}

// appendRows posts rows to the live-table append endpoint.
func appendRows(t *testing.T, ts *httptest.Server, table string, rows [][]string) response {
	t.Helper()
	return post(t, ts, "/v1/tables/"+table+"/rows", map[string]any{"rows": rows})
}

// metricsEvents fetches the session-manager event counters from /metrics.
func metricsEvents(t *testing.T, ts *httptest.Server) map[string]any {
	t.Helper()
	resp := get(t, ts, "/metrics")
	if resp.code != http.StatusOK {
		t.Fatalf("metrics: %d %s", resp.code, resp.raw)
	}
	return resp.body["sessions"].(map[string]any)["events"].(map[string]any)
}

func TestAppendRowsEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})

	resp := appendRows(t, ts, "t", [][]string{{"A0", "B0", "C0", "99"}})
	if resp.code != http.StatusOK {
		t.Fatalf("append: %d %s", resp.code, resp.raw)
	}
	if resp.body["appended"].(float64) != 1 || resp.body["rows"].(float64) != 37 {
		t.Fatalf("append accounting: %s", resp.raw)
	}
	if resp.body["data_version"].(float64) != 2 {
		t.Fatalf("data_version after first append: %s", resp.raw)
	}

	// CSV form: header must name the table's columns in order.
	resp = post(t, ts, "/v1/tables/t/rows", map[string]any{"csv": "a,b,c,v\nA1,B1,C1,7.5\nA1,B1,C0,2\n"})
	if resp.code != http.StatusOK || resp.body["appended"].(float64) != 2 {
		t.Fatalf("csv append: %d %s", resp.code, resp.raw)
	}
	if resp.body["data_version"].(float64) != 3 {
		t.Fatalf("data_version after csv append: %s", resp.raw)
	}

	// Error paths.
	if resp := appendRows(t, ts, "nope", [][]string{{"A0", "B0", "C0", "1"}}); resp.code != http.StatusNotFound {
		t.Fatalf("unknown table: %d %s", resp.code, resp.raw)
	}
	if resp := post(t, ts, "/v1/tables/t/rows", map[string]any{}); resp.code != http.StatusBadRequest {
		t.Fatalf("empty body: %d %s", resp.code, resp.raw)
	}
	if resp := post(t, ts, "/v1/tables/t/rows", map[string]any{
		"rows": [][]string{{"A0", "B0", "C0", "1"}}, "csv": "a,b,c,v\nA0,B0,C0,1\n",
	}); resp.code != http.StatusBadRequest {
		t.Fatalf("both forms: %d %s", resp.code, resp.raw)
	}
	if resp := appendRows(t, ts, "t", [][]string{{"A0", "B0"}}); resp.code != http.StatusBadRequest {
		t.Fatalf("short row: %d %s", resp.code, resp.raw)
	}
	if resp := appendRows(t, ts, "t", [][]string{{"A0", "B0", "C0", "not-a-float"}}); resp.code != http.StatusBadRequest {
		t.Fatalf("bad value: %d %s", resp.code, resp.raw)
	}
	if resp := post(t, ts, "/v1/tables/t/rows", map[string]any{"csv": "b,a,c,v\nB0,A0,C0,1\n"}); resp.code != http.StatusBadRequest {
		t.Fatalf("reordered header: %d %s", resp.code, resp.raw)
	}
	// Failed appends must not bump the generation.
	resp = appendRows(t, ts, "t", [][]string{{"A0", "B0", "C0", "1"}})
	if resp.body["data_version"].(float64) != 4 {
		t.Fatalf("errors leaked generation bumps: %s", resp.raw)
	}

	// Inline rows are parsed directly, not round-tripped through CSV: on a
	// single-column table an empty string would serialize as a blank CSV
	// line and be silently skipped on re-read.
	if resp := post(t, ts, "/v1/tables", map[string]any{
		"name": "solo", "attrs": []string{"s"}, "rows": [][]string{{"x"}},
	}); resp.code != http.StatusCreated {
		t.Fatalf("solo table: %d %s", resp.code, resp.raw)
	}
	resp = appendRows(t, ts, "solo", [][]string{{"a"}, {""}, {"b"}})
	if resp.code != http.StatusOK || resp.body["appended"].(float64) != 3 || resp.body["rows"].(float64) != 4 {
		t.Fatalf("empty-string row dropped: %d %s", resp.code, resp.raw)
	}

	// A header-only CSV batch is a no-op: nothing appended, generation (and
	// therefore every session's staleness) untouched.
	resp = post(t, ts, "/v1/tables/solo/rows", map[string]any{"csv": "s\n"})
	if resp.code != http.StatusOK || resp.body["appended"].(float64) != 0 {
		t.Fatalf("header-only csv: %d %s", resp.code, resp.raw)
	}
	if resp.body["data_version"].(float64) != 2 {
		t.Fatalf("zero-row append bumped the generation: %s", resp.raw)
	}
}

// TestSessionRefreshOnRead is the end-to-end live-table loop: a session's
// first read after an append refreshes it through the incremental
// maintenance path, serves the bumped data_version, and — once the
// superseding store build finishes — returns exactly what a cold server
// bootstrapped from the updated table returns.
func TestSessionRefreshOnRead(t *testing.T) {
	_, ts := testServer(t, Config{})
	id := openSession(t, ts)
	waitReady(t, ts, id)

	sol := get(t, ts, "/v1/sessions/"+id+"/solution?k=3&d=1")
	if sol.code != http.StatusOK || sol.body["data_version"].(float64) != 1 {
		t.Fatalf("fresh solution: %d %s", sol.code, sol.raw)
	}

	// Crown a new leader: the A2,B2,C1 group's average jumps to the top.
	extra := [][]string{
		{"A2", "B2", "C1", "500"},
		{"A2", "B2", "C1", "500"},
		{"A0", "B1", "C0", "250"},
	}
	if resp := appendRows(t, ts, "t", extra); resp.code != http.StatusOK {
		t.Fatalf("append: %d %s", resp.code, resp.raw)
	}

	// Re-creating the identical session reuses it AND reconciles it: the
	// create response itself must already carry the bumped version.
	recreate := post(t, ts, "/v1/sessions", map[string]any{
		"sql": testSQL, "l": 8, "kmin": 1, "kmax": 6, "ds": []int{0, 1, 2},
	})
	if recreate.code != http.StatusOK || recreate.body["data_version"].(float64) != 2 {
		t.Fatalf("reused create served stale data_version: %d %s", recreate.code, recreate.raw)
	}

	sol = get(t, ts, "/v1/sessions/"+id+"/solution?k=3&d=1")
	if sol.code != http.StatusOK {
		t.Fatalf("refreshed solution: %d %s", sol.code, sol.raw)
	}
	if sol.body["data_version"].(float64) != 2 {
		t.Fatalf("refreshed solution carries data_version %v, want 2: %s", sol.body["data_version"], sol.raw)
	}
	info := waitReady(t, ts, id)
	if info.body["data_version"].(float64) != 2 || info.body["store_generation"].(float64) != 2 {
		t.Fatalf("refreshed store generation: %s", info.raw)
	}
	fromStore := get(t, ts, "/v1/sessions/"+id+"/solution?k=3&d=1&expand=1")
	if fromStore.body["source"] != "store" {
		t.Fatalf("expected store-served solution after rebuild: %s", fromStore.raw)
	}

	// A cold server over the combined table must serve the identical answer.
	coldSrv := New(Config{})
	coldTS := httptest.NewServer(coldSrv.Handler())
	defer func() {
		coldTS.Close()
		coldSrv.Close()
	}()
	var sb strings.Builder
	sb.WriteString(makeCSV(3, 3, 2))
	for _, row := range extra {
		fmt.Fprintf(&sb, "%s\n", strings.Join(row, ","))
	}
	if resp := post(t, coldTS, "/v1/tables", map[string]any{
		"name": "t", "csv": sb.String(), "kinds": map[string]string{"v": "float"},
	}); resp.code != http.StatusCreated {
		t.Fatalf("cold table: %d %s", resp.code, resp.raw)
	}
	coldID := openSession(t, coldTS)
	if coldID != id {
		t.Fatalf("session ids diverged: %s vs %s", coldID, id)
	}
	waitReady(t, coldTS, coldID)
	coldSol := get(t, coldTS, "/v1/sessions/"+coldID+"/solution?k=3&d=1&expand=1")
	if coldSol.body["source"] != "store" {
		t.Fatalf("cold solution not from store: %s", coldSol.raw)
	}
	for _, field := range []string{"objective", "covered", "clusters"} {
		if !reflect.DeepEqual(fromStore.body[field], coldSol.body[field]) {
			t.Fatalf("refreshed %s diverges from cold rebuild:\n%v\nvs\n%v", field, fromStore.body[field], coldSol.body[field])
		}
	}
}

// TestRefreshDeduplicated hammers a stale session with concurrent reads: the
// singleflight must run exactly one refresh.
func TestRefreshDeduplicated(t *testing.T) {
	srv, ts := testServer(t, Config{})
	id := openSession(t, ts)
	waitReady(t, ts, id)
	if resp := appendRows(t, ts, "t", [][]string{{"A1", "B2", "C0", "300"}}); resp.code != http.StatusOK {
		t.Fatalf("append: %d %s", resp.code, resp.raw)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, err := http.NewRequest("GET", ts.URL+"/v1/sessions/"+id+"/solution?k=2&d=1", nil)
			if err != nil {
				errs <- err.Error()
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				errs <- err.Error()
				return
			}
			var body map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				errs <- err.Error()
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Sprintf("status %d", resp.StatusCode)
			} else if body["data_version"].(float64) != 2 {
				errs <- fmt.Sprintf("data_version %v", body["data_version"])
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	_, _, stats := srv.sessions.occupancy()
	if stats.Refreshes != 1 || stats.RefreshErrors != 0 {
		t.Fatalf("refresh stats after concurrent stale reads: %+v", stats)
	}
}

// TestRefreshNoop pins the unchanged-result path: an append the query
// filters out (a new group below the HAVING threshold) bumps the data
// version but carries the finished store over without a resweep.
func TestRefreshNoop(t *testing.T) {
	srv, ts := testServer(t, Config{})
	sql := "SELECT a, b, c, avg(v) AS val FROM t GROUP BY a, b, c HAVING count(*) > 1 ORDER BY val DESC"
	resp := post(t, ts, "/v1/sessions", map[string]any{"sql": sql, "l": 8, "kmin": 1, "kmax": 5, "ds": []int{1}})
	if resp.code != http.StatusCreated {
		t.Fatalf("session: %d %s", resp.code, resp.raw)
	}
	id := resp.body["session"].(string)
	waitReady(t, ts, id)

	// A single-row group fails HAVING count(*) > 1: the answer set is
	// byte-identical after this append.
	if resp := appendRows(t, ts, "t", [][]string{{"Z9", "Z9", "Z9", "5"}}); resp.code != http.StatusOK {
		t.Fatalf("append: %d %s", resp.code, resp.raw)
	}
	info := get(t, ts, "/v1/sessions/"+id)
	if info.code != http.StatusOK {
		t.Fatalf("info: %d %s", info.code, info.raw)
	}
	if info.body["data_version"].(float64) != 2 {
		t.Fatalf("no-op refresh must still bump data_version: %s", info.raw)
	}
	if info.body["store_ready"] != true {
		t.Fatalf("no-op refresh dropped the finished store: %s", info.raw)
	}
	if info.body["store_generation"].(float64) != 1 {
		t.Fatalf("carried store should keep its original generation: %s", info.raw)
	}
	_, _, stats := srv.sessions.occupancy()
	if stats.RefreshNoops != 1 || stats.Refreshes != 0 {
		t.Fatalf("refresh counters: %+v", stats)
	}
}

// TestRefreshFailureKeepsSession pins the 409 path: when the table changes
// incompatibly (here: replaced with one too small for the session's L), a
// stale read reports Conflict and the session survives for a later fix.
func TestRefreshFailureKeepsSession(t *testing.T) {
	srv, ts := testServer(t, Config{})
	id := openSession(t, ts)
	waitReady(t, ts, id)
	// Replace the table with a 4-group version: below the session's l = 8.
	if resp := post(t, ts, "/v1/tables", map[string]any{
		"name": "t", "csv": makeCSV(1, 2, 2), "kinds": map[string]string{"v": "float"},
	}); resp.code != http.StatusCreated {
		t.Fatalf("replacing table: %d %s", resp.code, resp.raw)
	}
	sol := get(t, ts, "/v1/sessions/"+id+"/solution?k=2&d=1")
	if sol.code != http.StatusConflict {
		t.Fatalf("stale read over a shrunken table: %d %s", sol.code, sol.raw)
	}
	if _, ok := srv.sessions.get(id); !ok {
		t.Fatal("failed refresh evicted the session")
	}
	_, _, stats := srv.sessions.occupancy()
	if stats.RefreshErrors == 0 {
		t.Fatalf("refresh error not counted: %+v", stats)
	}
}

// TestDeleteSession pins the explicit-eviction handler: the session is
// removed, its bytes leave the LRU accounting, its in-flight build is
// cancelled, and the id 404s afterwards.
func TestDeleteSession(t *testing.T) {
	srv, ts := testServer(t, Config{})
	id := openSession(t, ts)
	sess, ok := srv.sessions.get(id)
	if !ok {
		t.Fatal("session not registered")
	}
	live, bytes, _ := srv.sessions.occupancy()
	if live != 1 || bytes <= 0 {
		t.Fatalf("occupancy before delete: live=%d bytes=%d", live, bytes)
	}
	resp := del(t, ts, "/v1/sessions/"+id)
	if resp.code != http.StatusOK || resp.body["deleted"] != true {
		t.Fatalf("delete: %d %s", resp.code, resp.raw)
	}
	// The in-flight (or finished) build observed the cancellation path.
	v := sess.currentView()
	<-v.build.ready
	if v.build.buildErr != nil && !errors.Is(v.build.buildErr, context.Canceled) {
		t.Fatalf("deleted session's build error: %v", v.build.buildErr)
	}
	live, bytes, stats := srv.sessions.occupancy()
	if live != 0 || bytes != 0 {
		t.Fatalf("occupancy after delete: live=%d bytes=%d", live, bytes)
	}
	// An explicit delete counts as a delete, not as cache-pressure eviction.
	if stats.Deletes != 1 || stats.Evictions != 0 {
		t.Fatalf("delete stats: %+v", stats)
	}
	if resp := get(t, ts, "/v1/sessions/"+id); resp.code != http.StatusNotFound {
		t.Fatalf("deleted session still served: %d %s", resp.code, resp.raw)
	}
	if resp := del(t, ts, "/v1/sessions/"+id); resp.code != http.StatusNotFound {
		t.Fatalf("double delete: %d %s", resp.code, resp.raw)
	}
	if ev := metricsEvents(t, ts); ev["deletes"].(float64) != 1 {
		t.Fatalf("metrics deletes: %v", ev)
	}
}

// TestRefreshBitIdenticalAcrossExecParallelism drives the full serving loop —
// session build, live-table append, lazy refresh on re-create — on a server
// running the row-at-a-time reference executor and on servers running the
// vectorized executor at several worker counts. Every variant must serve the
// same solutions before and after the data_version bump: query execution
// settings tune cost, never output.
func TestRefreshBitIdenticalAcrossExecParallelism(t *testing.T) {
	extra := [][]string{
		{"A2", "B2", "C1", "500"},
		{"A2", "B2", "C1", "500"},
		{"A0", "B1", "C0", "250"},
	}
	// solutionView keeps the result-determined fields, dropping identifiers
	// and the store-vs-replay source, which depends on build timing.
	solutionView := func(body map[string]any) map[string]any {
		v := make(map[string]any)
		for _, k := range []string{"k", "d", "data_version", "objective", "covered", "clusters"} {
			v[k] = body[k]
		}
		return v
	}
	type snap struct {
		fresh, refreshed map[string]any
	}
	run := func(t *testing.T, reference bool, par int) snap {
		srv, ts := testServer(t, Config{ExecParallelism: par})
		if reference {
			srv.db.execOpts = []qagview.QueryOption{qagview.ExecReference()}
		}
		id := openSession(t, ts)
		waitReady(t, ts, id)
		fresh := get(t, ts, "/v1/sessions/"+id+"/solution?k=3&d=1&expand=1")
		if fresh.code != http.StatusOK || fresh.body["data_version"].(float64) != 1 {
			t.Fatalf("fresh solution: %d %s", fresh.code, fresh.raw)
		}
		if resp := appendRows(t, ts, "t", extra); resp.code != http.StatusOK {
			t.Fatalf("append: %d %s", resp.code, resp.raw)
		}
		// Re-creating the identical session reconciles it through the
		// refresh path (db.query under the hood re-runs the session SQL).
		recreate := post(t, ts, "/v1/sessions", map[string]any{
			"sql": testSQL, "l": 8, "kmin": 1, "kmax": 6, "ds": []int{0, 1, 2},
		})
		if recreate.code != http.StatusOK || recreate.body["data_version"].(float64) != 2 {
			t.Fatalf("refresh on re-create: %d %s", recreate.code, recreate.raw)
		}
		waitReady(t, ts, id)
		refreshed := get(t, ts, "/v1/sessions/"+id+"/solution?k=3&d=1&expand=1")
		if refreshed.code != http.StatusOK || refreshed.body["data_version"].(float64) != 2 {
			t.Fatalf("refreshed solution: %d %s", refreshed.code, refreshed.raw)
		}
		return snap{fresh: solutionView(fresh.body), refreshed: solutionView(refreshed.body)}
	}
	want := run(t, true, 0)
	for _, par := range []int{1, 2, 8} {
		got := run(t, false, par)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("exec parallelism %d diverges from reference executor:\nwant %+v\ngot  %+v", par, want, got)
		}
	}
}
