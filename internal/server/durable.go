package server

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"qagview"
	"qagview/internal/faultinject"
	"qagview/internal/wal"
)

// WAL record ops. The payload is the original request JSON, so replay runs
// the exact same parse-and-apply code as the live write path — the root of
// the crash-recovery bit-identity guarantee.
const (
	walOpCreate byte = 1 // tableRequest: POST /v1/tables
	walOpAppend byte = 2 // appendRequest: POST /v1/tables/{id}/rows
)

// errDurability marks write failures of the durability layer; handlers map
// it to 503 (the data may be applied in memory but could not be made
// durable, and the log has gone fail-stop).
var errDurability = errors.New("durability failure")

// durability owns the server's write-ahead log and table snapshots.
//
// Layout under dir:
//
//	wal-00000001.log ...   record segments (internal/wal)
//	tables/t-<hex>.snap    one snapshot per table, named by hex(table name)
//
// Invariant: at every instant, snapshot(table) + WAL records with
// gen > snapshot gen reproduce the in-memory table byte-for-byte. The
// in-memory state may run ahead of disk only by records whose appends have
// not yet been acknowledged.
type durability struct {
	dir             string
	checkpointBytes int64

	mu            sync.Mutex
	log           *wal.Log // nil until Recover
	snapGens      map[string]uint64
	checkpointing bool
	stats         durStats
}

// durStats counts durability events for /metrics.
type durStats struct {
	Recoveries       int64 `json:"recoveries"`
	RecordsReplayed  int64 `json:"records_replayed"`
	RecordsSkipped   int64 `json:"records_skipped"`
	SnapshotsLoaded  int64 `json:"snapshots_loaded"`
	SnapshotsWritten int64 `json:"snapshots_written"`
	Checkpoints      int64 `json:"checkpoints"`
	CheckpointErrors int64 `json:"checkpoint_errors"`
	TruncatedBytes   int64 `json:"truncated_bytes"`
}

func newDurability(dir string, checkpointBytes int64) *durability {
	return &durability{dir: dir, checkpointBytes: checkpointBytes, snapGens: make(map[string]uint64)}
}

// ready returns the open log, or an error when Recover has not run yet —
// with a WAL configured, nothing may be acknowledged before recovery has
// replayed what the last process acknowledged.
func (d *durability) ready() (*wal.Log, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.log == nil {
		return nil, fmt.Errorf("%w: write-ahead log not recovered yet (call Recover before serving)", errDurability)
	}
	return d.log, nil
}

// stageFunc returns the hook db.register/db.update invoke under the catalog
// lock once the data generation is assigned: it stages the record in the
// WAL's commit buffer (cheap, non-blocking — ordering records in exactly
// the generation order) and hands back the durable-wait the caller runs
// after releasing the lock.
func (d *durability) stageFunc(l *wal.Log, op byte, table string, payload []byte) func(gen uint64) func() error {
	return func(gen uint64) func() error {
		return l.Stage(wal.Record{Op: op, Table: table, Gen: gen, Data: payload})
	}
}

// snapGen returns the generation the on-disk snapshot covers for a table.
func (d *durability) snapGen(table string) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.snapGens[table]
}

// tableSnapDir is where table snapshots live inside the WAL directory.
func (d *durability) tableSnapDir() string { return filepath.Join(d.dir, "tables") }

// snapPath names a table's snapshot file. The hex encoding makes any table
// name filesystem-safe.
func (d *durability) snapPath(table string) string {
	return filepath.Join(d.tableSnapDir(), "t-"+hex.EncodeToString([]byte(table))+".snap")
}

// RecoverStats reports what Recover rebuilt.
type RecoverStats struct {
	// SnapshotsLoaded is the number of table snapshots restored.
	SnapshotsLoaded int
	// RecordsReplayed is the number of WAL records applied on top of them.
	RecordsReplayed int
	// RecordsSkipped is the number of WAL records already covered by a
	// newer snapshot.
	RecordsSkipped int
	// TruncatedBytes counts torn-tail bytes repaired (a record the crash
	// cut mid-write; it was never acknowledged).
	TruncatedBytes int64
	// WALSizeBytes is the log size after recovery.
	WALSizeBytes int64
}

// Recover rebuilds the catalog from the WAL directory and opens the log
// for appends: table snapshots first, then every WAL record not covered by
// a snapshot, in append order, through the same parse-and-apply code as
// the live write path. The result is bit-identical to the no-crash run —
// same column contents, same data generations, and therefore the same
// query results, cluster ids, and solutions.
//
// With no WAL configured it is a no-op. Call it after preloading sample
// tables (their appends replay on top) and before serving. Errors are
// fail-stop: a corrupt snapshot or mid-log corruption refuses to start
// rather than silently serving partial data.
func (s *Server) Recover() (RecoverStats, error) {
	if s.dur == nil {
		return RecoverStats{}, nil
	}
	d := s.dur
	d.mu.Lock()
	if d.log != nil {
		d.mu.Unlock()
		return RecoverStats{}, fmt.Errorf("already recovered")
	}
	d.mu.Unlock()

	var stats RecoverStats
	// 1. Newest table snapshots: each carries the generation it covers.
	tdir := d.tableSnapDir()
	entries, err := os.ReadDir(tdir)
	if err != nil && !os.IsNotExist(err) {
		return stats, err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".snap") {
			continue
		}
		path := filepath.Join(tdir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			return stats, err
		}
		rel, gen, err := qagview.ReadRelationSnapshot(f)
		f.Close()
		if err != nil {
			return stats, fmt.Errorf("table snapshot %s: %w", path, err)
		}
		if err := s.db.restore(rel, gen); err != nil {
			return stats, fmt.Errorf("restoring table snapshot %s: %w", path, err)
		}
		d.mu.Lock()
		d.snapGens[rel.Name()] = gen
		d.mu.Unlock()
		stats.SnapshotsLoaded++
	}

	// 2. WAL replay on top, torn tail truncated, corruption fail-stop.
	walLog, info, err := wal.Open(d.dir, func(rec wal.Record) error {
		applied, err := s.applyWALRecord(rec)
		if err != nil {
			return err
		}
		if applied {
			stats.RecordsReplayed++
		} else {
			stats.RecordsSkipped++
		}
		return nil
	})
	if err != nil {
		return stats, err
	}
	stats.TruncatedBytes = info.TruncatedBytes
	stats.WALSizeBytes = info.SizeBytes

	d.mu.Lock()
	d.log = walLog
	d.stats.Recoveries++
	d.stats.RecordsReplayed += int64(stats.RecordsReplayed)
	d.stats.RecordsSkipped += int64(stats.RecordsSkipped)
	d.stats.SnapshotsLoaded += int64(stats.SnapshotsLoaded)
	d.stats.TruncatedBytes += stats.TruncatedBytes
	d.mu.Unlock()
	return stats, nil
}

// applyWALRecord applies one replayed record through the live write path's
// parse-and-apply code, restoring the exact data generation the record was
// acknowledged with. Records at or below the table's snapshot generation
// are already covered and skip.
func (s *Server) applyWALRecord(rec wal.Record) (applied bool, err error) {
	if rec.Gen <= s.dur.snapGen(rec.Table) {
		return false, nil
	}
	switch rec.Op {
	case walOpCreate:
		var req tableRequest
		if err := json.Unmarshal(rec.Data, &req); err != nil {
			return false, fmt.Errorf("create record for %q: %w", rec.Table, err)
		}
		rel, err := buildRelation(req)
		if err != nil {
			return false, fmt.Errorf("create record for %q: %w", rec.Table, err)
		}
		return true, s.db.restore(rel, rec.Gen)
	case walOpAppend:
		var req appendRequest
		if err := json.Unmarshal(rec.Data, &req); err != nil {
			return false, fmt.Errorf("append record for %q: %w", rec.Table, err)
		}
		rel, err := s.db.table(rec.Table)
		if err != nil {
			return false, fmt.Errorf("append record gen %d: %w (its create record or snapshot is missing)", rec.Gen, err)
		}
		next, _, err := appendToRelation(rel, req)
		if err != nil {
			return false, fmt.Errorf("append record for %q gen %d: %w", rec.Table, rec.Gen, err)
		}
		if next == nil {
			// Zero-row batches are never logged; a record like this means a
			// writer bug, not a crash artifact.
			return false, fmt.Errorf("append record for %q gen %d carries no rows", rec.Table, rec.Gen)
		}
		return true, s.db.restore(next, rec.Gen)
	default:
		return false, fmt.Errorf("unknown WAL op %d for table %q", rec.Op, rec.Table)
	}
}

// maybeCheckpoint starts a background checkpoint when the WAL has outgrown
// its budget. At most one checkpoint runs at a time; appends continue
// concurrently (they land in the newly rotated segment).
func (s *Server) maybeCheckpoint() {
	d := s.dur
	if d == nil {
		return
	}
	d.mu.Lock()
	walLog := d.log
	if walLog == nil || d.checkpointing || d.checkpointBytes <= 0 {
		d.mu.Unlock()
		return
	}
	if walLog.SizeBytes() < d.checkpointBytes {
		d.mu.Unlock()
		return
	}
	d.checkpointing = true
	d.mu.Unlock()
	go func() {
		defer func() {
			d.mu.Lock()
			d.checkpointing = false
			d.mu.Unlock()
		}()
		if err := s.checkpoint(); err != nil {
			d.mu.Lock()
			d.stats.CheckpointErrors++
			d.mu.Unlock()
			s.logger.Warn("checkpoint failed (WAL keeps covering all tables)", "error", err)
		}
	}()
}

// checkpoint makes the WAL prunable: rotate the log (records staged from
// here land in the new segment), snapshot every table whose generation has
// moved past its on-disk snapshot, then delete the sealed segments. A crash
// at any point is safe: replay skips records a snapshot already covers, and
// un-pruned segments merely replay as skips.
func (s *Server) checkpoint() error {
	d := s.dur
	d.mu.Lock()
	walLog := d.log
	d.mu.Unlock()
	if walLog == nil {
		return nil
	}
	sealed, err := walLog.Rotate()
	if err != nil {
		return err
	}
	for _, name := range s.db.tables() {
		rel, gen, err := s.db.tableWithGen(name)
		if err != nil {
			continue // tables cannot be dropped today; belt and suspenders
		}
		if gen <= d.snapGen(name) {
			continue
		}
		if err := s.writeTableSnapshot(rel, gen); err != nil {
			// Abort without pruning: the sealed segments keep covering every
			// table, so nothing is lost — the next checkpoint retries.
			return err
		}
		d.mu.Lock()
		d.snapGens[name] = gen
		d.stats.SnapshotsWritten++
		d.mu.Unlock()
	}
	if err := walLog.Prune(sealed); err != nil {
		return err
	}
	d.mu.Lock()
	d.stats.Checkpoints++
	d.mu.Unlock()
	return nil
}

// writeTableSnapshot persists one table crash-atomically: temp file, fsync,
// rename, directory fsync. Readers of the old snapshot either see the old
// complete file or the new complete file, never a partial one.
func (s *Server) writeTableSnapshot(rel *qagview.Relation, gen uint64) error {
	tdir := s.dur.tableSnapDir()
	if err := os.MkdirAll(tdir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(tdir, "snap-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := faultinject.Err(faultinject.ErrSnapshotWrite); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot %q: %w", rel.Name(), err)
	}
	if err := qagview.WriteRelationSnapshot(tmp, rel, gen); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot %q: %w", rel.Name(), err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	faultinject.Crash(faultinject.CrashSnapshotRenameBefore)
	if err := os.Rename(tmp.Name(), s.dur.snapPath(rel.Name())); err != nil {
		return err
	}
	if err := syncParentDir(tdir); err != nil {
		return err
	}
	faultinject.Crash(faultinject.CrashSnapshotRenameAfter)
	return nil
}

// syncParentDir fsyncs a directory so renames inside it survive a crash.
func syncParentDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// walStats snapshots the durability gauges for /metrics; ok is false when
// durability is disabled.
func (s *Server) walStats() (wal.Stats, durStats, bool) {
	if s.dur == nil {
		return wal.Stats{}, durStats{}, false
	}
	s.dur.mu.Lock()
	walLog := s.dur.log
	stats := s.dur.stats
	s.dur.mu.Unlock()
	var ws wal.Stats
	if walLog != nil {
		ws = walLog.Stats()
	}
	return ws, stats, true
}

// BeginDrain flips the server into drain mode: mutating endpoints return
// 503 + Retry-After immediately, read endpoints keep serving. Call it when
// SIGTERM arrives, before http.Server.Shutdown stops the listener.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Drain gracefully stops the server's background work and makes all
// acknowledged state durable: cancels in-flight session builds and waits
// for them to return, flushes the WAL, snapshots every table, prunes the
// log, and closes it. Call after http.Server.Shutdown has drained in-flight
// requests; the process can exit when Drain returns.
func (s *Server) Drain() error {
	s.BeginDrain()
	s.sessions.close() // cancels builds and waits for the goroutines
	if s.dur == nil {
		return nil
	}
	s.dur.mu.Lock()
	walLog := s.dur.log
	s.dur.mu.Unlock()
	if walLog == nil {
		return nil
	}
	var firstErr error
	if err := walLog.Sync(); err != nil {
		firstErr = err
	}
	if err := s.checkpoint(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := walLog.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
