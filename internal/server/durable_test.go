package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"qagview/internal/wal"
)

// durableServer starts a server with a WAL in dir and recovers it.
func durableServer(t *testing.T, dir string, cfg Config) (*Server, *httptest.Server, RecoverStats) {
	t.Helper()
	cfg.WALDir = dir
	srv := New(cfg)
	stats, err := srv.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts, stats
}

// closeWAL flushes and closes the server's log without checkpointing — the
// in-process stand-in for kill -9 right after the last acknowledgement (the
// real SIGKILL harness is crash_test.go, under -tags qagfault). Recovery
// then runs against snapshots + WAL exactly as after a crash.
func closeWAL(t *testing.T, srv *Server) {
	t.Helper()
	srv.dur.mu.Lock()
	l := srv.dur.log
	srv.dur.mu.Unlock()
	if err := l.Close(); err != nil {
		t.Fatalf("closing WAL: %v", err)
	}
}

// mustAppend posts rows (via delta_test's appendRows) and fails on non-200.
func mustAppend(t *testing.T, ts *httptest.Server, table string, rows [][]string) response {
	t.Helper()
	resp := appendRows(t, ts, table, rows)
	if resp.code != http.StatusOK {
		t.Fatalf("append: %d %s", resp.code, resp.raw)
	}
	return resp
}

// queryBody runs the standard query and returns the raw response JSON — raw
// bytes, so bit-identity means byte-identity.
func queryBody(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp := post(t, ts, "/v1/queries", map[string]any{"sql": testSQL, "limit": 50})
	if resp.code != http.StatusOK {
		t.Fatalf("query: %d %s", resp.code, resp.raw)
	}
	return resp.raw
}

// solutionBody opens the standard session, waits for its store, and reads a
// solution, returning the raw JSON.
func solutionBody(t *testing.T, ts *httptest.Server, k, d int) string {
	t.Helper()
	id := openSession(t, ts)
	waitReady(t, ts, id)
	resp := get(t, ts, fmt.Sprintf("/v1/sessions/%s/solution?k=%d&d=%d&expand=1", id, k, d))
	if resp.code != http.StatusOK {
		t.Fatalf("solution: %d %s", resp.code, resp.raw)
	}
	return resp.raw
}

// createTestTable posts the synthetic table.
func createTestTable(t *testing.T, ts *httptest.Server) {
	t.Helper()
	resp := post(t, ts, "/v1/tables", map[string]any{
		"name":  "t",
		"csv":   makeCSV(3, 3, 2),
		"kinds": map[string]string{"v": "float"},
	})
	if resp.code != http.StatusCreated {
		t.Fatalf("creating table: %d %s", resp.code, resp.raw)
	}
}

// testAppendBatches is the standard mutation sequence: three batches, the
// last introducing new group values (A9/B9/C9) so the answer set genuinely
// changes across generations.
var testAppendBatches = [][][]string{
	{{"A0", "B0", "C0", "100"}, {"A1", "B1", "C1", "90"}},
	{{"A2", "B2", "C0", "80"}},
	{{"A9", "B9", "C9", "70"}, {"A9", "B9", "C9", "71"}},
}

// TestDurableRecoveryBitIdentity is the heart of the tentpole: a server that
// loses its process right after the last acknowledged write recovers to a
// state byte-identical to a server that never crashed — same query bodies,
// same data versions, same session solutions (cluster ids and members).
func TestDurableRecoveryBitIdentity(t *testing.T) {
	dir := t.TempDir()
	srv, ts, _ := durableServer(t, dir, Config{})
	createTestTable(t, ts)
	var lastGen float64
	for _, batch := range testAppendBatches {
		resp := mustAppend(t, ts, "t", batch)
		lastGen = resp.body["data_version"].(float64)
	}
	if lastGen != 4 {
		t.Fatalf("data_version after create+3 appends = %v, want 4", lastGen)
	}
	wantQuery := queryBody(t, ts)
	wantSolution := solutionBody(t, ts, 4, 2)
	closeWAL(t, srv)
	ts.Close()

	// Reference: a fresh non-durable server fed the same requests live.
	_, ref := testServer(t, Config{})
	for _, batch := range testAppendBatches {
		mustAppend(t, ref, "t", batch)
	}
	if got := queryBody(t, ref); got != wantQuery {
		t.Fatalf("durable and non-durable servers disagree before any crash:\n%s\nvs\n%s", got, wantQuery)
	}

	// Crash recovery: new process over the same WAL dir.
	srv2, ts2, stats := durableServer(t, dir, Config{})
	if stats.RecordsReplayed != 4 || stats.SnapshotsLoaded != 0 {
		t.Fatalf("recover stats: %+v, want 4 records replayed from the log", stats)
	}
	if g := srv2.db.generation("t"); g != 4 {
		t.Fatalf("recovered generation = %d, want 4", g)
	}
	if got := queryBody(t, ts2); got != wantQuery {
		t.Fatalf("recovered query body differs:\n%s\nvs\n%s", got, wantQuery)
	}
	if got := solutionBody(t, ts2, 4, 2); got != wantSolution {
		t.Fatalf("recovered solution differs:\n%s\nvs\n%s", got, wantSolution)
	}
}

// TestRecoverEmptyWAL boots durably over an empty directory.
func TestRecoverEmptyWAL(t *testing.T) {
	srv, ts, stats := durableServer(t, t.TempDir(), Config{})
	if stats.RecordsReplayed != 0 || stats.SnapshotsLoaded != 0 || stats.TruncatedBytes != 0 {
		t.Fatalf("empty-dir recovery reported work: %+v", stats)
	}
	createTestTable(t, ts)
	if g := srv.db.generation("t"); g != 1 {
		t.Fatalf("generation = %d", g)
	}
}

// TestRecoverWithoutRecoverRefusesWrites pins the ack contract: a durable
// server that has not recovered yet must refuse writes (503), not silently
// acknowledge into a log that is not open.
func TestRecoverWithoutRecoverRefusesWrites(t *testing.T) {
	srv := New(Config{WALDir: t.TempDir()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()
	resp := post(t, ts, "/v1/tables", map[string]any{"name": "t", "csv": "a,v\nx,1\n"})
	if resp.code != http.StatusServiceUnavailable {
		t.Fatalf("write before Recover: %d %s, want 503", resp.code, resp.raw)
	}
}

// TestCheckpointAndRecoverFromSnapshot exercises the rotate → snapshot →
// prune path: after a checkpoint, recovery loads the snapshot, replays only
// the post-checkpoint records, and still matches the no-crash state.
func TestCheckpointAndRecoverFromSnapshot(t *testing.T) {
	dir := t.TempDir()
	srv, ts, _ := durableServer(t, dir, Config{})
	createTestTable(t, ts)
	mustAppend(t, ts, "t", testAppendBatches[0])
	if err := srv.checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	mustAppend(t, ts, "t", testAppendBatches[1])
	mustAppend(t, ts, "t", testAppendBatches[2])
	want := queryBody(t, ts)
	closeWAL(t, srv)
	ts.Close()

	srv2, ts2, stats := durableServer(t, dir, Config{})
	if stats.SnapshotsLoaded != 1 {
		t.Fatalf("recover stats: %+v, want 1 snapshot loaded", stats)
	}
	if stats.RecordsReplayed != 2 {
		t.Fatalf("recover stats: %+v, want exactly the 2 post-checkpoint appends replayed", stats)
	}
	if g := srv2.db.generation("t"); g != 4 {
		t.Fatalf("recovered generation = %d, want 4", g)
	}
	if got := queryBody(t, ts2); got != want {
		t.Fatalf("recovered-from-snapshot query differs:\n%s\nvs\n%s", got, want)
	}
}

// TestRecoverySnapshotNewerThanWALTail covers a crash between a
// checkpoint's snapshot step and its prune step: stale segments — every
// record at or below the snapshot generation — must replay as skips, not
// double-applies.
func TestRecoverySnapshotNewerThanWALTail(t *testing.T) {
	dir := t.TempDir()
	srv, ts, _ := durableServer(t, dir, Config{})
	createTestTable(t, ts)
	mustAppend(t, ts, "t", testAppendBatches[0])
	mustAppend(t, ts, "t", testAppendBatches[1])
	want := queryBody(t, ts)
	if err := srv.checkpoint(); err != nil { // snapshot at gen 3, WAL pruned
		t.Fatalf("checkpoint: %v", err)
	}
	closeWAL(t, srv)
	ts.Close()

	// Re-create the pruned situation's inverse: append a stale record (gen 2,
	// already inside the snapshot) to the log tail, as if prune had not run.
	l, _, err := wal.Open(dir, func(wal.Record) error { return nil })
	if err != nil {
		t.Fatalf("reopening WAL: %v", err)
	}
	stale := wal.Record{Op: walOpAppend, Table: "t", Gen: 2,
		Data: []byte(`{"rows":[["A0","B0","C0","100"],["A1","B1","C1","90"]]}`)}
	if err := l.Append(stale); err != nil {
		t.Fatalf("appending stale record: %v", err)
	}
	l.Close()

	srv2, ts2, stats := durableServer(t, dir, Config{})
	if stats.SnapshotsLoaded != 1 || stats.RecordsSkipped != 1 || stats.RecordsReplayed != 0 {
		t.Fatalf("recover stats: %+v, want the stale record skipped", stats)
	}
	if g := srv2.db.generation("t"); g != 3 {
		t.Fatalf("recovered generation = %d, want the snapshot's 3", g)
	}
	if got := queryBody(t, ts2); got != want {
		t.Fatalf("stale-tail recovery double-applied:\n%s\nvs\n%s", got, want)
	}
}

// TestReplayAcrossCodecOverflow replays a WAL whose appends straddle a
// packed-codec overflow: the first batches stay inside attribute a's
// 2-bit dictionary (A0..A2), the last introduces a 4th value. The recovered
// server's session — whose lattice re-derives its codec from the recovered
// table — must produce solutions byte-identical to the live server's.
func TestReplayAcrossCodecOverflow(t *testing.T) {
	dir := t.TempDir()
	srv, ts, _ := durableServer(t, dir, Config{})
	createTestTable(t, ts) // a has card 3: A0..A2 fill a 2-bit field
	mustAppend(t, ts, "t", [][]string{{"A2", "B2", "C1", "55"}})
	// A3 is the overflowing 4th value of attribute a.
	mustAppend(t, ts, "t", [][]string{{"A3", "B0", "C0", "60"}, {"A3", "B1", "C1", "61"}})
	want := solutionBody(t, ts, 5, 2)
	closeWAL(t, srv)
	ts.Close()

	_, ts2, stats := durableServer(t, dir, Config{})
	if stats.RecordsReplayed != 3 {
		t.Fatalf("recover stats: %+v, want 3 records", stats)
	}
	if got := solutionBody(t, ts2, 5, 2); got != want {
		t.Fatalf("solution across codec-overflow boundary differs:\n%s\nvs\n%s", got, want)
	}
}

// TestRecoverTornTailTruncates pins torn-write repair at the server level: a
// record the crash cut mid-write was never acknowledged, so recovery
// truncates it and serves the prefix.
func TestRecoverTornTailTruncates(t *testing.T) {
	dir := t.TempDir()
	srv, ts, _ := durableServer(t, dir, Config{})
	createTestTable(t, ts)
	mustAppend(t, ts, "t", testAppendBatches[0])
	want := queryBody(t, ts)
	mustAppend(t, ts, "t", testAppendBatches[2])
	closeWAL(t, srv)
	ts.Close()

	// Tear the final record: cut 3 bytes off the segment tail.
	seg := walSegment(t, dir)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	srv2, ts2, stats := durableServer(t, dir, Config{})
	if stats.TruncatedBytes == 0 {
		t.Fatalf("torn tail not reported: %+v", stats)
	}
	if stats.RecordsReplayed != 2 {
		t.Fatalf("recover stats: %+v, want the 2 intact records", stats)
	}
	if g := srv2.db.generation("t"); g != 2 {
		t.Fatalf("recovered generation = %d, want 2 (torn record dropped)", g)
	}
	if got := queryBody(t, ts2); got != want {
		t.Fatalf("torn-tail recovery state differs:\n%s\nvs\n%s", got, want)
	}
}

// TestRecoverCorruptCRCFailsStop pins fail-stop: flipping a payload byte of
// an interior record must refuse recovery with an explicit error, never
// skip-and-continue.
func TestRecoverCorruptCRCFailsStop(t *testing.T) {
	dir := t.TempDir()
	srv, ts, _ := durableServer(t, dir, Config{})
	createTestTable(t, ts)
	mustAppend(t, ts, "t", testAppendBatches[0])
	mustAppend(t, ts, "t", testAppendBatches[1])
	closeWAL(t, srv)
	ts.Close()

	seg := walSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0xff // interior byte: later records stay intact
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	srv2 := New(Config{WALDir: dir})
	defer srv2.Close()
	_, err = srv2.Recover()
	if err == nil {
		t.Fatal("Recover succeeded over a corrupt WAL")
	}
	if !strings.Contains(err.Error(), "refusing to skip") {
		t.Fatalf("corruption error should state fail-stop, got: %v", err)
	}
}

// walSegment returns the single WAL segment in dir.
func walSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".log") {
			segs = append(segs, dir+"/"+e.Name())
		}
	}
	if len(segs) != 1 {
		t.Fatalf("want exactly 1 segment, have %v", segs)
	}
	return segs[0]
}

// TestDrainRefusesWritesKeepsReads covers graceful shutdown semantics.
func TestDrainRefusesWritesKeepsReads(t *testing.T) {
	dir := t.TempDir()
	srv, ts, _ := durableServer(t, dir, Config{})
	createTestTable(t, ts)
	mustAppend(t, ts, "t", testAppendBatches[0])
	want := queryBody(t, ts)

	srv.BeginDrain()
	resp := appendRows(t, ts, "t", testAppendBatches[1])
	if resp.code != http.StatusServiceUnavailable {
		t.Fatalf("append while draining: %d, want 503", resp.code)
	}
	if got := queryBody(t, ts); got != want {
		t.Fatal("reads must keep serving while draining")
	}
	if err := srv.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	// Drain checkpointed: a fresh process recovers purely from snapshots.
	ts.Close()
	_, ts2, stats := durableServer(t, dir, Config{})
	if stats.SnapshotsLoaded != 1 || stats.RecordsReplayed != 0 {
		t.Fatalf("post-drain recovery: %+v, want snapshot-only", stats)
	}
	if got := queryBody(t, ts2); got != want {
		t.Fatal("post-drain recovery state differs")
	}
}

// TestRequestDeadline pins the 503 mapping: an already-expired deadline
// fails the query at its first morsel check.
func TestRequestDeadline(t *testing.T) {
	_, ts := testServer(t, Config{RequestTimeout: time.Nanosecond})
	resp := post(t, ts, "/v1/queries", map[string]any{"sql": testSQL})
	if resp.code != http.StatusServiceUnavailable {
		t.Fatalf("expired deadline: %d %s, want 503", resp.code, resp.raw)
	}
}

// TestPanicMiddleware pins panic containment: a panicking handler yields a
// 500 JSON error and a metrics count, not a dropped connection.
func TestPanicMiddleware(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	h := srv.instrument("GET /boom", srv.recoverPanics(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	rr := httptest.NewRecorder()
	h(rr, httptest.NewRequest("GET", "/boom", nil))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: %d, want 500", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), "panicked") {
		t.Fatalf("panic body: %s", rr.Body.String())
	}
	if got := srv.metrics.robustness().PanicsRecovered; got != 1 {
		t.Fatalf("panics_recovered = %d, want 1", got)
	}
}

// TestAdmissionControl pins the 429 + Retry-After path when every build
// slot is taken.
func TestAdmissionControl(t *testing.T) {
	srv := New(Config{MaxInflightBuilds: 1})
	defer srv.Close()
	release := make(chan struct{})
	entered := make(chan struct{})
	h := srv.admitBuild(func(http.ResponseWriter, *http.Request) {
		close(entered)
		<-release
	})
	firstDone := make(chan struct{})
	go func() {
		h(httptest.NewRecorder(), httptest.NewRequest("POST", "/v1/sessions", nil))
		close(firstDone)
	}()
	<-entered

	rr := httptest.NewRecorder()
	h(rr, httptest.NewRequest("POST", "/v1/sessions", nil))
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("full semaphore: %d, want 429", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
	if got := srv.metrics.robustness().AdmissionRejects; got != 1 {
		t.Fatalf("admission_rejects = %d, want 1", got)
	}
	close(release)
	<-firstDone // the slot is freed when the first handler returns

	// The slot frees up: the next request is admitted again.
	rr = httptest.NewRecorder()
	done := make(chan struct{})
	h2 := srv.admitBuild(func(http.ResponseWriter, *http.Request) { close(done) })
	h2(rr, httptest.NewRequest("POST", "/v1/sessions", nil))
	<-done
}

// TestMetricsDurabilityFields asserts the new /metrics surface.
func TestMetricsDurabilityFields(t *testing.T) {
	dir := t.TempDir()
	_, ts, _ := durableServer(t, dir, Config{})
	createTestTable(t, ts)
	mustAppend(t, ts, "t", testAppendBatches[0])
	resp := get(t, ts, "/metrics")
	if resp.code != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.code)
	}
	walBody, ok := resp.body["wal"].(map[string]any)
	if !ok {
		t.Fatalf("metrics missing wal section: %s", resp.raw)
	}
	if walBody["appends"].(float64) < 2 || walBody["fsyncs"].(float64) == 0 || walBody["bytes"].(float64) == 0 {
		t.Fatalf("wal stats implausible: %v", walBody)
	}
	for _, key := range []string{"fsync_p50_ms", "fsync_p99_ms", "size_bytes"} {
		if _, ok := walBody[key]; !ok {
			t.Fatalf("wal stats missing %q: %v", key, walBody)
		}
	}
	rec, ok := resp.body["recovery"].(map[string]any)
	if !ok {
		t.Fatalf("metrics missing recovery section: %s", resp.raw)
	}
	if rec["recoveries"].(float64) != 1 {
		t.Fatalf("recoveries = %v, want 1", rec["recoveries"])
	}
	for _, key := range []string{"panics_recovered", "admission_rejects", "inflight_builds", "draining"} {
		if _, ok := resp.body[key]; !ok {
			t.Fatalf("metrics missing %q: %s", key, resp.raw)
		}
	}
	// Non-durable servers omit the wal/recovery sections.
	_, plain := testServer(t, Config{})
	resp = get(t, plain, "/metrics")
	if _, ok := resp.body["wal"]; ok {
		t.Fatalf("non-durable metrics should omit wal: %s", resp.raw)
	}
}

// TestCloseWaitsForBuilds pins satellite 2: Close (and Drain) must not
// return while a cancelled store build still runs.
func TestCloseWaitsForBuilds(t *testing.T) {
	srv, ts := testServer(t, Config{})
	openSession(t, ts)
	// Close immediately: the background sweep may be mid-flight; close must
	// cancel it AND wait. The -race build turns a violated wait into a
	// detected race on the session manager.
	srv.Close()
	srv.sessions.wg.Wait() // returns instantly if close really waited
}
