package server

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"qagview"
)

// writeJSON renders v as the response body with the given status.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeErr renders a JSON error envelope.
func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// decodeBody strictly decodes the request body into v.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// ---- tables ----

type tableRequest struct {
	// Name is the table name queries refer to.
	Name string `json:"name"`
	// CSV is the table content with a header row; mutually exclusive with
	// Attrs/Rows.
	CSV string `json:"csv,omitempty"`
	// Attrs and Rows carry the table inline: a header plus rendered rows.
	Attrs []string   `json:"attrs,omitempty"`
	Rows  [][]string `json:"rows,omitempty"`
	// Kinds maps column names to "string", "int", or "float" (default
	// string).
	Kinds map[string]string `json:"kinds,omitempty"`
}

func parseKinds(kinds map[string]string) (map[string]qagview.Kind, error) {
	if kinds == nil {
		return nil, nil
	}
	out := make(map[string]qagview.Kind, len(kinds))
	for col, k := range kinds {
		switch strings.ToLower(k) {
		case "string", "text":
			out[col] = qagview.KindString
		case "int", "integer":
			out[col] = qagview.KindInt
		case "float", "double", "real":
			out[col] = qagview.KindFloat
		default:
			return nil, fmt.Errorf("column %q: unknown kind %q (want string, int, or float)", col, k)
		}
	}
	return out, nil
}

func (s *Server) handleCreateTable(w http.ResponseWriter, r *http.Request) {
	var req tableRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Name == "" {
		writeErr(w, http.StatusBadRequest, "missing table name")
		return
	}
	hasCSV := req.CSV != ""
	hasInline := len(req.Attrs) > 0 || len(req.Rows) > 0
	if hasCSV == hasInline {
		writeErr(w, http.StatusBadRequest, "provide exactly one of csv or attrs+rows")
		return
	}
	if hasInline && len(req.Attrs) == 0 {
		writeErr(w, http.StatusBadRequest, "inline rows need attrs")
		return
	}
	kinds, err := parseKinds(req.Kinds)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad kinds: %v", err)
		return
	}
	raw := req.CSV
	if raw == "" {
		var buf bytes.Buffer
		cw := csv.NewWriter(&buf)
		_ = cw.Write(req.Attrs)
		for _, row := range req.Rows {
			_ = cw.Write(row)
		}
		cw.Flush()
		raw = buf.String()
	}
	rel, err := qagview.ReadCSV(strings.NewReader(raw), req.Name, kinds)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "loading table: %v", err)
		return
	}
	if err := s.db.register(rel); err != nil {
		writeErr(w, http.StatusBadRequest, "registering table: %v", err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"table": req.Name,
		"rows":  rel.NumRows(),
		"cols":  rel.NumCols(),
	})
}

func (s *Server) handleListTables(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"tables": s.db.tables()})
}

// ---- queries ----

type queryRequest struct {
	SQL string `json:"sql"`
	// Limit bounds the rows echoed back (default 10; the full ranked result
	// stays server-side — sessions re-run the query).
	Limit int `json:"limit,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.SQL == "" {
		writeErr(w, http.StatusBadRequest, "missing sql")
		return
	}
	res, err := s.db.query(req.SQL)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "query failed: %v", err)
		return
	}
	limit := req.Limit
	if limit <= 0 {
		limit = 10
	}
	if limit > res.N() {
		limit = res.N()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"group_by": res.GroupBy,
		"val_name": res.ValName,
		"n":        res.N(),
		"rows":     res.Rows[:limit],
		"vals":     res.Vals[:limit],
	})
}

// ---- sessions ----

// maxSessionKMax caps a session's kmax: beyond this the precompute grid
// (candidate pool c*kmax, per-D arrays) stops being an interactivity aid and
// becomes a memory bomb a single request could throw.
const maxSessionKMax = 4096

type sessionRequest struct {
	SQL  string `json:"sql"`
	L    int    `json:"l"`
	KMin int    `json:"kmin,omitempty"`
	KMax int    `json:"kmax,omitempty"`
	Ds   []int  `json:"ds,omitempty"`
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req sessionRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.SQL == "" {
		writeErr(w, http.StatusBadRequest, "missing sql")
		return
	}
	if req.L < 1 {
		writeErr(w, http.StatusBadRequest, "l must be >= 1, got %d", req.L)
		return
	}
	if req.KMin == 0 {
		req.KMin = 1
	}
	if req.KMax == 0 {
		req.KMax = 12
	}
	if len(req.Ds) == 0 {
		req.Ds = []int{1, 2, 3}
	}
	if req.KMin < 1 || req.KMin > req.KMax {
		writeErr(w, http.StatusBadRequest, "bad k range [%d, %d]", req.KMin, req.KMax)
		return
	}
	// Bound the grid: kmax sizes the shared Fixed-Order pool and the per-D
	// value arrays, so an absurd value must fail here, not OOM the
	// background build.
	if req.KMax > maxSessionKMax {
		writeErr(w, http.StatusBadRequest, "kmax = %d exceeds the server limit %d", req.KMax, maxSessionKMax)
		return
	}
	sess, reused, err := s.sessions.open(s.db, req.SQL, req.L, req.KMin, req.KMax, req.Ds)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "creating session: %v", err)
		return
	}
	code := http.StatusCreated
	if reused {
		code = http.StatusOK
	}
	writeJSON(w, code, s.sessionInfo(sess, reused))
}

func (s *Server) sessionInfo(sess *session, reused bool) map[string]any {
	info := map[string]any{
		"session":  sess.ID,
		"l":        sess.L,
		"kmin":     sess.KMin,
		"kmax":     sess.KMax,
		"ds":       sess.Ds,
		"n":        sess.sum.N(),
		"m":        sess.sum.M(),
		"attrs":    sess.sum.Attrs(),
		"clusters": sess.sum.NumClusters(),
		"packed":   sess.sum.PackedKeys(),
		"reused":   reused,
	}
	st, buildErr, ready := sess.storeIfReady()
	info["store_ready"] = ready && buildErr == nil
	if buildErr != nil {
		info["store_error"] = buildErr.Error()
	}
	if st != nil {
		info["store_bytes"] = st.SizeBytes()
		info["store_intervals"] = st.StoredIntervals()
		info["from_snapshot"] = sess.fromSnapshot
		// Decoded stores report zero ReplayStats by design: the sweep ran in
		// a previous process.
		info["replay_stats"] = st.ReplayStats()
	}
	return info
}

func (s *Server) session(w http.ResponseWriter, r *http.Request) (*session, bool) {
	id := r.PathValue("id")
	sess, ok := s.sessions.get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown session %q (expired, evicted, or never created)", id)
		return nil, false
	}
	return sess, true
}

func (s *Server) handleSessionInfo(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, s.sessionInfo(sess, true))
}

// ---- solutions ----

// intParam parses a required integer query parameter.
func intParam(w http.ResponseWriter, r *http.Request, name string) (int, bool) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		writeErr(w, http.StatusBadRequest, "missing query parameter %q", name)
		return 0, false
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad query parameter %s=%q: %v", name, raw, err)
		return 0, false
	}
	return v, true
}

// checkParams validates (k, d) against the session's precomputed grid.
func checkParams(w http.ResponseWriter, sess *session, k, d int) bool {
	if k < sess.KMin || k > sess.KMax {
		writeErr(w, http.StatusBadRequest, "k = %d outside the session's range [%d, %d]", k, sess.KMin, sess.KMax)
		return false
	}
	for _, have := range sess.Ds {
		if have == d {
			return true
		}
	}
	writeErr(w, http.StatusBadRequest, "d = %d not in the session's precomputed set %v", d, sess.Ds)
	return false
}

// solutionFor retrieves the (k, d) solution: from the precomputed store when
// the background build has finished, otherwise from a live Hybrid run — the
// store is an interactivity optimization, never a blocking dependency.
func solutionFor(sess *session, k, d int) (*qagview.Solution, string, error) {
	st, buildErr, ready := sess.storeIfReady()
	if ready && buildErr == nil {
		sol, err := st.Solution(k, d)
		return sol, "store", err
	}
	sol, err := sess.sum.Summarize(qagview.Hybrid, qagview.Params{K: k, L: sess.L, D: d})
	return sol, "live", err
}

type clusterJSON struct {
	Pattern []string     `json:"pattern"`
	Avg     float64      `json:"avg"`
	Size    int          `json:"size"`
	Members []memberJSON `json:"members,omitempty"`
}

type memberJSON struct {
	Rank int      `json:"rank"`
	Row  []string `json:"row"`
	Val  float64  `json:"val"`
}

func renderSolution(sess *session, sol *qagview.Solution, expand bool) []clusterJSON {
	rows := sess.sum.Rows(sol)
	out := make([]clusterJSON, len(rows))
	for i, row := range rows {
		out[i] = clusterJSON{Pattern: row.Pattern, Avg: row.Avg, Size: row.Size}
		if expand {
			for _, m := range row.Members {
				out[i].Members = append(out[i].Members, memberJSON{Rank: m.Rank, Row: m.Row, Val: m.Val})
			}
		}
	}
	return out
}

func (s *Server) handleSolution(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	k, ok := intParam(w, r, "k")
	if !ok {
		return
	}
	d, ok := intParam(w, r, "d")
	if !ok {
		return
	}
	if !checkParams(w, sess, k, d) {
		return
	}
	sol, source, err := solutionFor(sess, k, d)
	if err != nil {
		// In-range parameters the sweep has no solution for (k below the
		// smallest size the merge reached for this D).
		writeErr(w, http.StatusUnprocessableEntity, "no solution for k=%d, d=%d: %v", k, d, err)
		return
	}
	expand := r.URL.Query().Get("expand") == "1"
	writeJSON(w, http.StatusOK, map[string]any{
		"session":   sess.ID,
		"k":         k,
		"d":         d,
		"source":    source,
		"objective": sol.AvgValue(),
		"covered":   len(sol.Covered),
		"clusters":  renderSolution(sess, sol, expand),
	})
}

func (s *Server) handleGuidance(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	st, buildErr, ready := sess.storeIfReady()
	if !ready {
		writeErr(w, http.StatusConflict, "guidance needs the precomputed store; the background build is still running")
		return
	}
	if buildErr != nil {
		writeErr(w, http.StatusInternalServerError, "store build failed: %v", buildErr)
		return
	}
	g := st.Guidance()
	series := make(map[string][]float64, len(g.Series))
	for d, vals := range g.Series {
		series[strconv.Itoa(d)] = vals
	}
	minSizes := make(map[string]int, len(g.MinSizes))
	for d, ms := range g.MinSizes {
		minSizes[strconv.Itoa(d)] = ms
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"session":   sess.ID,
		"kmin":      g.KMin,
		"kmax":      g.KMax,
		"series":    series,
		"min_sizes": minSizes,
	})
}

// ---- diffs ----

func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	params := make([]int, 4)
	for i, name := range []string{"k1", "d1", "k2", "d2"} {
		v, ok := intParam(w, r, name)
		if !ok {
			return
		}
		params[i] = v
	}
	k1, d1, k2, d2 := params[0], params[1], params[2], params[3]
	if !checkParams(w, sess, k1, d1) || !checkParams(w, sess, k2, d2) {
		return
	}
	prev, prevSrc, err := solutionFor(sess, k1, d1)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "no solution for k1=%d, d1=%d: %v", k1, d1, err)
		return
	}
	next, nextSrc, err := solutionFor(sess, k2, d2)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "no solution for k2=%d, d2=%d: %v", k2, d2, err)
		return
	}
	diff, err := sess.sum.Compare(prev, next)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "diff failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"session":   sess.ID,
		"from":      map[string]any{"k": k1, "d": d1, "source": prevSrc},
		"to":        map[string]any{"k": k2, "d": d2, "source": nextSrc},
		"left":      renderSolution(sess, prev, false),
		"right":     renderSolution(sess, next, false),
		"overlap":   diff.M,
		"left_top":  diff.LeftTop,
		"right_top": diff.RightTop,
	})
}
