package server

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"qagview"
	"qagview/internal/obs"
)

// writeJSON renders v as the response body with the given status.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeErr renders a JSON error envelope, stamped with the request id when
// the middleware stack assigned one, so client-side error reports correlate
// with server logs and traces.
func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	body := map[string]string{"error": fmt.Sprintf(format, args...)}
	if rid := requestID(w); rid != "" {
		body["request_id"] = rid
	}
	writeJSON(w, code, body)
}

// inlineTrace adds the request's span tree to a response body when the
// client opted in with ?trace=1. The snapshot is taken before the trace
// finishes, so the root span renders open; all the work spans are complete.
func inlineTrace(body map[string]any, w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("trace") != "1" {
		return
	}
	if tr := requestTrace(w); tr != nil {
		body["trace"] = tr.Snapshot()
	}
}

// decodeBody strictly decodes the request body into v.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// ---- tables ----

type tableRequest struct {
	// Name is the table name queries refer to.
	Name string `json:"name"`
	// CSV is the table content with a header row; mutually exclusive with
	// Attrs/Rows.
	CSV string `json:"csv,omitempty"`
	// Attrs and Rows carry the table inline: a header plus rendered rows.
	Attrs []string   `json:"attrs,omitempty"`
	Rows  [][]string `json:"rows,omitempty"`
	// Kinds maps column names to "string", "int", or "float" (default
	// string).
	Kinds map[string]string `json:"kinds,omitempty"`
}

func parseKinds(kinds map[string]string) (map[string]qagview.Kind, error) {
	if kinds == nil {
		return nil, nil
	}
	out := make(map[string]qagview.Kind, len(kinds))
	for col, k := range kinds {
		switch strings.ToLower(k) {
		case "string", "text":
			out[col] = qagview.KindString
		case "int", "integer":
			out[col] = qagview.KindInt
		case "float", "double", "real":
			out[col] = qagview.KindFloat
		default:
			return nil, fmt.Errorf("column %q: unknown kind %q (want string, int, or float)", col, k)
		}
	}
	return out, nil
}

// buildRelation validates a table request and parses it into a relation.
// It is the single parse path for both the live create handler and WAL
// replay — recovery re-runs exactly this code, which is what makes the
// recovered table bit-identical to the acknowledged one.
func buildRelation(req tableRequest) (*qagview.Relation, error) {
	if req.Name == "" {
		return nil, fmt.Errorf("missing table name")
	}
	hasCSV := req.CSV != ""
	hasInline := len(req.Attrs) > 0 || len(req.Rows) > 0
	if hasCSV == hasInline {
		return nil, fmt.Errorf("provide exactly one of csv or attrs+rows")
	}
	if hasInline && len(req.Attrs) == 0 {
		return nil, fmt.Errorf("inline rows need attrs")
	}
	kinds, err := parseKinds(req.Kinds)
	if err != nil {
		return nil, fmt.Errorf("bad kinds: %v", err)
	}
	raw := req.CSV
	if raw == "" {
		var buf bytes.Buffer
		cw := csv.NewWriter(&buf)
		_ = cw.Write(req.Attrs)
		for _, row := range req.Rows {
			_ = cw.Write(row)
		}
		cw.Flush()
		raw = buf.String()
	}
	rel, err := qagview.ReadCSV(strings.NewReader(raw), req.Name, kinds)
	if err != nil {
		return nil, fmt.Errorf("loading table: %v", err)
	}
	return rel, nil
}

// stageRecord builds the WAL staging hook for a mutating request, or nil
// when durability is off. The record payload is the request JSON itself, so
// replay re-runs the identical parse-and-apply path the live request took.
// Traced requests get a "wal.append" span around the durable wait, covering
// the group-commit fsync the acknowledgement blocks on.
func (s *Server) stageRecord(ctx context.Context, w http.ResponseWriter, op byte, table string, req any) (func(uint64) func() error, bool) {
	if s.dur == nil {
		return nil, true
	}
	l, err := s.dur.ready()
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
		return nil, false
	}
	payload, err := json.Marshal(req)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "encoding WAL record: %v", err)
		return nil, false
	}
	stage := s.dur.stageFunc(l, op, table, payload)
	parent := obs.FromContext(ctx)
	if parent == nil {
		return stage, true
	}
	return func(gen uint64) func() error {
		wait := stage(gen)
		return func() error {
			sp := parent.Child("wal.append")
			sp.SetAttr("table", table)
			err := wait()
			sp.End()
			return err
		}
	}, true
}

// writeDBErr maps a catalog write error: durability failures are 503 (the
// write may be applied in memory but was not made durable, and the log has
// gone fail-stop), unknown tables 404, everything else 400.
func writeDBErr(w http.ResponseWriter, verb string, err error) {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, errDurability):
		code = http.StatusServiceUnavailable
	case errors.Is(err, qagview.ErrUnknownTable):
		code = http.StatusNotFound
	}
	writeErr(w, code, verb+": %v", err)
}

func (s *Server) handleCreateTable(w http.ResponseWriter, r *http.Request) {
	var req tableRequest
	if !decodeBody(w, r, &req) {
		return
	}
	rel, err := buildRelation(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	stage, ok := s.stageRecord(r.Context(), w, walOpCreate, req.Name, req)
	if !ok {
		return
	}
	gen, err := s.db.register(rel, stage)
	if err != nil {
		writeDBErr(w, "registering table", err)
		return
	}
	s.maybeCheckpoint()
	writeJSON(w, http.StatusCreated, map[string]any{
		"table":        req.Name,
		"rows":         rel.NumRows(),
		"cols":         rel.NumCols(),
		"data_version": gen,
	})
}

func (s *Server) handleListTables(w http.ResponseWriter, r *http.Request) {
	names := s.db.tables()
	versions := make(map[string]uint64, len(names))
	for _, name := range names {
		versions[name] = s.db.generation(name)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"tables":        names,
		"data_versions": versions,
	})
}

// ---- live-table appends ----

type appendRequest struct {
	// Rows carries the new rows inline, one value per table column, in the
	// table's column order.
	Rows [][]string `json:"rows,omitempty"`
	// CSV carries the new rows as CSV whose header row must name the table's
	// columns in order; mutually exclusive with Rows.
	CSV string `json:"csv,omitempty"`
}

// handleAppendRows appends rows to a loaded table, bumping its data
// generation. The table is replaced copy-on-write under the catalog write
// lock, so in-flight queries keep their consistent snapshot; sessions over
// the table refresh lazily on their next read.
func (s *Server) handleAppendRows(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("id")
	var req appendRequest
	if !decodeBody(w, r, &req) {
		return
	}
	hasCSV := req.CSV != ""
	if hasCSV == (len(req.Rows) > 0) {
		writeErr(w, http.StatusBadRequest, "provide exactly one of rows or csv")
		return
	}
	stage, ok := s.stageRecord(r.Context(), w, walOpAppend, name, req)
	if !ok {
		return
	}
	appended, total := 0, 0
	gen, err := s.db.update(name, func(rel *qagview.Relation) (*qagview.Relation, error) {
		next, n, err := appendToRelation(rel, req)
		if err != nil {
			return nil, err
		}
		if next == nil { // zero-row batch: leave the table and generation alone
			appended, total = 0, rel.NumRows()
			return nil, nil
		}
		appended, total = n, next.NumRows()
		return next, nil
	}, stage) // zero-row batches return before staging: nothing is logged
	if err != nil {
		writeDBErr(w, "appending rows", err)
		return
	}
	s.maybeCheckpoint()
	writeJSON(w, http.StatusOK, map[string]any{
		"table":        name,
		"appended":     appended,
		"rows":         total,
		"data_version": gen,
	})
}

// appendToRelation parses the request rows against the table's schema and
// returns a new relation with them appended (copy-on-write: the input
// relation's column slices are never mutated). Each value is parsed exactly
// once: CSV batches keep ReadCSV's typed columns, inline rows are parsed
// value by typed value — never round-tripped through CSV, whose blank-line
// skipping would silently drop a single-column row holding an empty string.
// A batch with zero rows returns a nil relation (db.update treats it as a
// no-op that leaves the data generation alone).
func appendToRelation(rel *qagview.Relation, req appendRequest) (*qagview.Relation, int, error) {
	copyCols := func(extra int) []qagview.Column {
		cols := make([]qagview.Column, rel.NumCols())
		for i := 0; i < rel.NumCols(); i++ {
			src := rel.Column(i)
			c := qagview.Column{Name: src.Name, Kind: src.Kind}
			switch src.Kind {
			case qagview.KindString:
				c.Str = append(make([]string, 0, len(src.Str)+extra), src.Str...)
			case qagview.KindInt:
				c.Int = append(make([]int64, 0, len(src.Int)+extra), src.Int...)
			case qagview.KindFloat:
				c.Float = append(make([]float64, 0, len(src.Float)+extra), src.Float...)
			}
			cols[i] = c
		}
		return cols
	}

	if req.CSV != "" {
		kinds := make(map[string]qagview.Kind, rel.NumCols())
		for i := 0; i < rel.NumCols(); i++ {
			c := rel.Column(i)
			kinds[c.Name] = c.Kind
		}
		batch, err := qagview.ReadCSV(strings.NewReader(req.CSV), rel.Name(), kinds)
		if err != nil {
			return nil, 0, err
		}
		if batch.NumCols() != rel.NumCols() {
			return nil, 0, fmt.Errorf("append has %d columns, table %q has %d", batch.NumCols(), rel.Name(), rel.NumCols())
		}
		for i := 0; i < rel.NumCols(); i++ {
			if batch.Column(i).Name != rel.Column(i).Name {
				return nil, 0, fmt.Errorf("append column %d is %q, table has %q (columns must match the table's order)",
					i, batch.Column(i).Name, rel.Column(i).Name)
			}
		}
		if batch.NumRows() == 0 {
			return nil, 0, nil
		}
		cols := copyCols(batch.NumRows())
		for i := range cols {
			add := batch.Column(i)
			switch cols[i].Kind {
			case qagview.KindString:
				cols[i].Str = append(cols[i].Str, add.Str...)
			case qagview.KindInt:
				cols[i].Int = append(cols[i].Int, add.Int...)
			case qagview.KindFloat:
				cols[i].Float = append(cols[i].Float, add.Float...)
			}
		}
		next, err := qagview.FromColumns(rel.Name(), cols...)
		if err != nil {
			return nil, 0, err
		}
		return next, batch.NumRows(), nil
	}

	cols := copyCols(len(req.Rows))
	for ri, row := range req.Rows {
		if len(row) != rel.NumCols() {
			return nil, 0, fmt.Errorf("row %d has %d values, table %q has %d columns", ri, len(row), rel.Name(), rel.NumCols())
		}
		for i := range cols {
			c := &cols[i]
			switch c.Kind {
			case qagview.KindString:
				c.Str = append(c.Str, row[i])
			case qagview.KindInt:
				v, err := strconv.ParseInt(row[i], 10, 64)
				if err != nil {
					return nil, 0, fmt.Errorf("row %d column %q: %v", ri, c.Name, err)
				}
				c.Int = append(c.Int, v)
			case qagview.KindFloat:
				v, err := strconv.ParseFloat(row[i], 64)
				if err != nil {
					return nil, 0, fmt.Errorf("row %d column %q: %v", ri, c.Name, err)
				}
				c.Float = append(c.Float, v)
			}
		}
	}
	next, err := qagview.FromColumns(rel.Name(), cols...)
	if err != nil {
		return nil, 0, err
	}
	return next, len(req.Rows), nil
}

// ---- queries ----

type queryRequest struct {
	SQL string `json:"sql"`
	// Limit bounds the rows echoed back (default 10; the full ranked result
	// stays server-side — sessions re-run the query).
	Limit int `json:"limit,omitempty"`
	// Profile adds a per-operator execution profile (rows, batches, wall
	// time — EXPLAIN ANALYZE over the vectorized pipeline) to the response.
	Profile bool `json:"profile,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.SQL == "" {
		writeErr(w, http.StatusBadRequest, "missing sql")
		return
	}
	var extra []qagview.QueryOption
	if req.Profile {
		extra = append(extra, qagview.ExecProfile())
	}
	res, err := s.db.query(r.Context(), req.SQL, extra...)
	if err != nil {
		if isDeadline(err) {
			writeErr(w, http.StatusServiceUnavailable, "query canceled: %v", err)
			return
		}
		if errors.Is(err, qagview.ErrUnknownTable) {
			writeErr(w, http.StatusNotFound, "query failed: %v", err)
			return
		}
		writeErr(w, http.StatusBadRequest, "query failed: %v", err)
		return
	}
	limit := req.Limit
	if limit <= 0 {
		limit = 10
	}
	if limit > res.N() {
		limit = res.N()
	}
	body := map[string]any{
		"group_by": res.GroupBy,
		"val_name": res.ValName,
		"tables":   res.Tables,
		"n":        res.N(),
		"rows":     res.Rows[:limit],
		"vals":     res.Vals[:limit],
	}
	if req.Profile {
		body["profile"] = res.Profile
		body["profile_text"] = res.Profile.String()
	}
	inlineTrace(body, w, r)
	writeJSON(w, http.StatusOK, body)
}

// ---- sessions ----

// maxSessionKMax caps a session's kmax: beyond this the precompute grid
// (candidate pool c*kmax, per-D arrays) stops being an interactivity aid and
// becomes a memory bomb a single request could throw.
const maxSessionKMax = 4096

type sessionRequest struct {
	SQL  string `json:"sql"`
	L    int    `json:"l"`
	KMin int    `json:"kmin,omitempty"`
	KMax int    `json:"kmax,omitempty"`
	Ds   []int  `json:"ds,omitempty"`
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req sessionRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.SQL == "" {
		writeErr(w, http.StatusBadRequest, "missing sql")
		return
	}
	if req.L < 1 {
		writeErr(w, http.StatusBadRequest, "l must be >= 1, got %d", req.L)
		return
	}
	if req.KMin == 0 {
		req.KMin = 1
	}
	if req.KMax == 0 {
		req.KMax = 12
	}
	if len(req.Ds) == 0 {
		req.Ds = []int{1, 2, 3}
	}
	if req.KMin < 1 || req.KMin > req.KMax {
		writeErr(w, http.StatusBadRequest, "bad k range [%d, %d]", req.KMin, req.KMax)
		return
	}
	// Bound the grid: kmax sizes the shared Fixed-Order pool and the per-D
	// value arrays, so an absurd value must fail here, not OOM the
	// background build.
	if req.KMax > maxSessionKMax {
		writeErr(w, http.StatusBadRequest, "kmax = %d exceeds the server limit %d", req.KMax, maxSessionKMax)
		return
	}
	sess, reused, err := s.sessions.open(r.Context(), s.db, req.SQL, req.L, req.KMin, req.KMax, req.Ds)
	if err != nil {
		if isDeadline(err) {
			writeErr(w, http.StatusServiceUnavailable, "creating session: %v", err)
			return
		}
		if errors.Is(err, qagview.ErrUnknownTable) {
			writeErr(w, http.StatusNotFound, "creating session: %v", err)
			return
		}
		writeErr(w, http.StatusBadRequest, "creating session: %v", err)
		return
	}
	// A reused session may predate table appends; reconcile it like every
	// read path so the create response's data_version is never stale.
	v, err := s.sessions.freshen(r.Context(), s.db, sess)
	if err != nil {
		writeErr(w, http.StatusConflict, "session %s is stale and could not refresh: %v", sess.ID, err)
		return
	}
	code := http.StatusCreated
	if reused {
		code = http.StatusOK
	}
	writeJSON(w, code, s.sessionInfo(sess, v, reused))
}

func (s *Server) sessionInfo(sess *session, v *sessionView, reused bool) map[string]any {
	info := map[string]any{
		"session":      sess.ID,
		"table":        sess.Table,
		"tables":       sess.Tables,
		"l":            sess.L,
		"kmin":         sess.KMin,
		"kmax":         sess.KMax,
		"ds":           sess.Ds,
		"n":            v.sum.N(),
		"m":            v.sum.M(),
		"attrs":        v.sum.Attrs(),
		"clusters":     v.sum.NumClusters(),
		"packed":       v.sum.PackedKeys(),
		"reused":       reused,
		"data_version": v.dataVersion,
	}
	st, buildErr, ready := v.storeIfReady()
	info["store_ready"] = ready && buildErr == nil
	if buildErr != nil {
		info["store_error"] = buildErr.Error()
	}
	if st != nil {
		info["store_bytes"] = st.SizeBytes()
		info["store_intervals"] = st.StoredIntervals()
		info["store_generation"] = st.Generation()
		info["from_snapshot"] = v.build.fromSnapshot
		// Decoded stores report zero ReplayStats by design: the sweep ran in
		// a previous process.
		info["replay_stats"] = st.ReplayStats()
	}
	return info
}

func (s *Server) session(w http.ResponseWriter, r *http.Request) (*session, bool) {
	id := r.PathValue("id")
	sess, ok := s.sessions.get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown session %q (expired, evicted, or never created)", id)
		return nil, false
	}
	return sess, true
}

// freshSession resolves the session and its current view, lazily refreshing
// a stale session (the table's data generation moved past the view's) before
// serving. A failed refresh is a 409: the session exists but cannot be
// reconciled with the new data (e.g. the table shrank below its L).
func (s *Server) freshSession(w http.ResponseWriter, r *http.Request) (*session, *sessionView, bool) {
	sess, ok := s.session(w, r)
	if !ok {
		return nil, nil, false
	}
	v, err := s.sessions.freshen(r.Context(), s.db, sess)
	if err != nil {
		writeErr(w, http.StatusConflict, "session %s is stale and could not refresh: %v", sess.ID, err)
		return nil, nil, false
	}
	return sess, v, true
}

func (s *Server) handleSessionInfo(w http.ResponseWriter, r *http.Request) {
	sess, v, ok := s.freshSession(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, s.sessionInfo(sess, v, true))
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.sessions.remove(id) {
		writeErr(w, http.StatusNotFound, "unknown session %q (expired, evicted, or never created)", id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"session": id, "deleted": true})
}

// ---- solutions ----

// intParam parses a required integer query parameter.
func intParam(w http.ResponseWriter, r *http.Request, name string) (int, bool) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		writeErr(w, http.StatusBadRequest, "missing query parameter %q", name)
		return 0, false
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad query parameter %s=%q: %v", name, raw, err)
		return 0, false
	}
	return v, true
}

// checkParams validates (k, d) against the session's precomputed grid.
func checkParams(w http.ResponseWriter, sess *session, k, d int) bool {
	if k < sess.KMin || k > sess.KMax {
		writeErr(w, http.StatusBadRequest, "k = %d outside the session's range [%d, %d]", k, sess.KMin, sess.KMax)
		return false
	}
	for _, have := range sess.Ds {
		if have == d {
			return true
		}
	}
	writeErr(w, http.StatusBadRequest, "d = %d not in the session's precomputed set %v", d, sess.Ds)
	return false
}

// solutionFor retrieves the (k, d) solution: from the view's precomputed
// store when the background build has finished, otherwise from a live Hybrid
// run over the view's summarizer — the store is an interactivity
// optimization, never a blocking dependency.
func solutionFor(sess *session, v *sessionView, k, d int) (*qagview.Solution, string, error) {
	st, buildErr, ready := v.storeIfReady()
	if ready && buildErr == nil {
		sol, err := st.Solution(k, d)
		return sol, "store", err
	}
	sol, err := v.sum.Summarize(qagview.Hybrid, qagview.Params{K: k, L: sess.L, D: d})
	return sol, "live", err
}

type clusterJSON struct {
	Pattern []string     `json:"pattern"`
	Avg     float64      `json:"avg"`
	Size    int          `json:"size"`
	Members []memberJSON `json:"members,omitempty"`
}

type memberJSON struct {
	Rank int      `json:"rank"`
	Row  []string `json:"row"`
	Val  float64  `json:"val"`
}

func renderSolution(v *sessionView, sol *qagview.Solution, expand bool) []clusterJSON {
	rows := v.sum.Rows(sol)
	out := make([]clusterJSON, len(rows))
	for i, row := range rows {
		out[i] = clusterJSON{Pattern: row.Pattern, Avg: row.Avg, Size: row.Size}
		if expand {
			for _, m := range row.Members {
				out[i].Members = append(out[i].Members, memberJSON{Rank: m.Rank, Row: m.Row, Val: m.Val})
			}
		}
	}
	return out
}

func (s *Server) handleSolution(w http.ResponseWriter, r *http.Request) {
	sess, v, ok := s.freshSession(w, r)
	if !ok {
		return
	}
	k, ok := intParam(w, r, "k")
	if !ok {
		return
	}
	d, ok := intParam(w, r, "d")
	if !ok {
		return
	}
	if !checkParams(w, sess, k, d) {
		return
	}
	_, sp := obs.StartSpan(r.Context(), "solution")
	sp.SetInt("k", int64(k))
	sp.SetInt("d", int64(d))
	sol, source, err := solutionFor(sess, v, k, d)
	sp.SetAttr("source", source)
	sp.End()
	if err != nil {
		// In-range parameters the sweep has no solution for (k below the
		// smallest size the merge reached for this D).
		writeErr(w, http.StatusUnprocessableEntity, "no solution for k=%d, d=%d: %v", k, d, err)
		return
	}
	expand := r.URL.Query().Get("expand") == "1"
	body := map[string]any{
		"session":      sess.ID,
		"k":            k,
		"d":            d,
		"source":       source,
		"data_version": v.dataVersion,
		"objective":    sol.AvgValue(),
		"covered":      len(sol.Covered),
		"clusters":     renderSolution(v, sol, expand),
	}
	inlineTrace(body, w, r)
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleGuidance(w http.ResponseWriter, r *http.Request) {
	sess, v, ok := s.freshSession(w, r)
	if !ok {
		return
	}
	st, buildErr, ready := v.storeIfReady()
	if !ready {
		writeErr(w, http.StatusConflict, "guidance needs the precomputed store; the background build is still running")
		return
	}
	if buildErr != nil {
		writeErr(w, http.StatusInternalServerError, "store build failed: %v", buildErr)
		return
	}
	g := st.Guidance()
	series := make(map[string][]float64, len(g.Series))
	for d, vals := range g.Series {
		series[strconv.Itoa(d)] = vals
	}
	minSizes := make(map[string]int, len(g.MinSizes))
	for d, ms := range g.MinSizes {
		minSizes[strconv.Itoa(d)] = ms
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"session":      sess.ID,
		"kmin":         g.KMin,
		"kmax":         g.KMax,
		"data_version": v.dataVersion,
		"series":       series,
		"min_sizes":    minSizes,
	})
}

// ---- diffs ----

func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	sess, v, ok := s.freshSession(w, r)
	if !ok {
		return
	}
	params := make([]int, 4)
	for i, name := range []string{"k1", "d1", "k2", "d2"} {
		v, ok := intParam(w, r, name)
		if !ok {
			return
		}
		params[i] = v
	}
	k1, d1, k2, d2 := params[0], params[1], params[2], params[3]
	if !checkParams(w, sess, k1, d1) || !checkParams(w, sess, k2, d2) {
		return
	}
	prev, prevSrc, err := solutionFor(sess, v, k1, d1)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "no solution for k1=%d, d1=%d: %v", k1, d1, err)
		return
	}
	next, nextSrc, err := solutionFor(sess, v, k2, d2)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "no solution for k2=%d, d2=%d: %v", k2, d2, err)
		return
	}
	diff, err := v.sum.Compare(prev, next)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "diff failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"session":      sess.ID,
		"data_version": v.dataVersion,
		"from":         map[string]any{"k": k1, "d": d1, "source": prevSrc},
		"to":           map[string]any{"k": k2, "d": d2, "source": nextSrc},
		"left":         renderSolution(v, prev, false),
		"right":        renderSolution(v, next, false),
		"overlap":      diff.M,
		"left_top":     diff.LeftTop,
		"right_top":    diff.RightTop,
	})
}
