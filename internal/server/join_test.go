package server

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

// joinTestServer is testServer plus a dimension table mapping the fact
// table's a-values to regions, so join sessions read two tables.
func joinTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv, ts := testServer(t, Config{})
	resp := post(t, ts, "/v1/tables", map[string]any{
		"name": "dim",
		"csv":  "a,region\nA0,east\nA1,west\nA2,east\n",
	})
	if resp.code != http.StatusCreated {
		t.Fatalf("creating dim: %d %s", resp.code, resp.raw)
	}
	return srv, ts
}

const joinSQL = "SELECT region, b, avg(v) AS val FROM t JOIN dim ON t.a = dim.a GROUP BY region, b ORDER BY val DESC"

// TestJoinQueryEndpoint runs a two-table join through POST /v1/queries and
// checks the error surface for unknown and ambiguous names.
func TestJoinQueryEndpoint(t *testing.T) {
	_, ts := joinTestServer(t)

	resp := post(t, ts, "/v1/queries", map[string]any{"sql": joinSQL, "limit": 100})
	if resp.code != http.StatusOK {
		t.Fatalf("join query: %d %s", resp.code, resp.raw)
	}
	if n := resp.body["n"].(float64); n != 6 { // 2 regions x 3 b-values
		t.Fatalf("n = %v, want 6", n)
	}
	var tables []string
	for _, v := range resp.body["tables"].([]any) {
		tables = append(tables, v.(string))
	}
	if !reflect.DeepEqual(tables, []string{"t", "dim"}) {
		t.Fatalf("tables = %v", tables)
	}

	// Unknown FROM table: 404, and the message names what is registered.
	resp = post(t, ts, "/v1/queries", map[string]any{
		"sql": "SELECT region, avg(v) AS val FROM t JOIN nope ON t.a = nope.a GROUP BY region",
	})
	if resp.code != http.StatusNotFound {
		t.Fatalf("unknown join table: %d %s", resp.code, resp.raw)
	}
	for _, frag := range []string{"registered tables", "dim", "t"} {
		if !strings.Contains(resp.raw, frag) {
			t.Fatalf("error %s does not mention %q", resp.raw, frag)
		}
	}

	// Ambiguous unqualified column: a distinct 400.
	resp = post(t, ts, "/v1/queries", map[string]any{
		"sql": "SELECT a, avg(v) AS val FROM t JOIN dim ON t.a = dim.a GROUP BY a",
	})
	if resp.code != http.StatusBadRequest || !strings.Contains(resp.raw, "ambiguous column") {
		t.Fatalf("ambiguous column: %d %s", resp.code, resp.raw)
	}
}

// TestJoinSessionRefreshOnAppend is the multi-table live loop: a session
// over a join goes stale when EITHER base table changes, refreshes through
// the incremental-maintenance path, and its data_version reflects the
// summed generations of all FROM tables.
func TestJoinSessionRefreshOnAppend(t *testing.T) {
	_, ts := joinTestServer(t)

	resp := post(t, ts, "/v1/sessions", map[string]any{
		"sql": joinSQL, "l": 4, "kmin": 1, "kmax": 4, "ds": []int{0, 1},
	})
	if resp.code != http.StatusCreated {
		t.Fatalf("join session: %d %s", resp.code, resp.raw)
	}
	id := resp.body["session"].(string)
	var sessTables []string
	for _, v := range resp.body["tables"].([]any) {
		sessTables = append(sessTables, v.(string))
	}
	if !reflect.DeepEqual(sessTables, []string{"t", "dim"}) {
		t.Fatalf("session tables = %v", sessTables)
	}
	// Both tables at generation 1: the session's staleness clock starts at 2.
	if dv := resp.body["data_version"].(float64); dv != 2 {
		t.Fatalf("data_version = %v, want 2 (sum of per-table generations)", dv)
	}
	waitReady(t, ts, id)

	sol := get(t, ts, "/v1/sessions/"+id+"/solution?k=2&d=1")
	if sol.code != http.StatusOK || sol.body["data_version"].(float64) != 2 {
		t.Fatalf("fresh solution: %d %s", sol.code, sol.raw)
	}

	// Append to the probe-side fact table: high-value rows for an existing
	// (a, b) pair shift the ranking, and the session's next read must see it.
	if resp := appendRows(t, ts, "t", [][]string{
		{"A0", "B0", "C0", "500"}, {"A0", "B0", "C1", "500"},
	}); resp.code != http.StatusOK {
		t.Fatalf("append t: %d %s", resp.code, resp.raw)
	}
	sol = get(t, ts, "/v1/sessions/"+id+"/solution?k=2&d=1")
	if sol.code != http.StatusOK {
		t.Fatalf("solution after fact append: %d %s", sol.code, sol.raw)
	}
	if dv := sol.body["data_version"].(float64); dv != 3 {
		t.Fatalf("data_version after fact append = %v, want 3", dv)
	}

	// Append to the build-side dimension: rebinding A2 rows into a new region
	// changes the join result, so the session refreshes again.
	if resp := appendRows(t, ts, "dim", [][]string{{"A2", "north"}}); resp.code != http.StatusOK {
		t.Fatalf("append dim: %d %s", resp.code, resp.raw)
	}
	info := get(t, ts, "/v1/sessions/"+id)
	if info.code != http.StatusOK {
		t.Fatalf("session info after dim append: %d %s", info.code, info.raw)
	}
	if dv := info.body["data_version"].(float64); dv != 4 {
		t.Fatalf("data_version after dim append = %v, want 4", dv)
	}
	// A2 now joins both "east" and "north" rows, so the answer space grew:
	// the refreshed query must include a north group.
	q := post(t, ts, "/v1/queries", map[string]any{"sql": joinSQL, "limit": 100})
	found := false
	for _, row := range q.body["rows"].([]any) {
		if row.([]any)[0].(string) == "north" {
			found = true
		}
	}
	if !found {
		t.Fatalf("north region missing after dim append: %s", q.raw)
	}
}
