package server

import (
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"qagview/internal/obs"
)

// latencySampleCap bounds the per-route latency reservoir: quantiles are
// computed over the most recent samples in a fixed ring, so /metrics stays
// O(1) memory under sustained traffic.
const latencySampleCap = 2048

// metrics aggregates per-route request counters and latency samples. All
// methods are goroutine-safe.
type metrics struct {
	mu     sync.Mutex
	start  time.Time
	routes map[string]*routeMetrics
	// robustness counters (see middleware.go).
	panics           int64
	admissionRejects int64
}

type routeMetrics struct {
	count   int64
	byCode  map[int]int64
	samples []float64 // milliseconds, ring buffer
	next    int
}

func newMetrics() *metrics {
	return &metrics{start: time.Now(), routes: make(map[string]*routeMetrics)}
}

func (m *metrics) observe(route string, code int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rm := m.routes[route]
	if rm == nil {
		rm = &routeMetrics{
			byCode:  make(map[int]int64),
			samples: make([]float64, 0, 64),
		}
		m.routes[route] = rm
	}
	rm.count++
	rm.byCode[code]++
	ms := float64(d) / float64(time.Millisecond)
	if len(rm.samples) < latencySampleCap {
		rm.samples = append(rm.samples, ms)
	} else {
		rm.samples[rm.next] = ms
	}
	rm.next = (rm.next + 1) % latencySampleCap
}

// RouteStats is one route's aggregate in the /metrics report.
type RouteStats struct {
	Count  int64            `json:"count"`
	ByCode map[string]int64 `json:"by_code"`
	P50Ms  float64          `json:"p50_ms"`
	P99Ms  float64          `json:"p99_ms"`
}

func (m *metrics) snapshot() (uptime time.Duration, routes map[string]RouteStats) {
	// Copy counters and latency rings under the lock, sort outside it: the
	// sort is O(n log n) over up to latencySampleCap samples per route, and
	// holding mu through it would stall every in-flight request's observe.
	type rawRoute struct {
		rs      RouteStats
		samples []float64
	}
	m.mu.Lock()
	raw := make(map[string]rawRoute, len(m.routes))
	for name, rm := range m.routes {
		rs := RouteStats{Count: rm.count, ByCode: make(map[string]int64, len(rm.byCode))}
		for code, n := range rm.byCode {
			rs.ByCode[strconv.Itoa(code)] = n
		}
		raw[name] = rawRoute{rs: rs, samples: append([]float64(nil), rm.samples...)}
	}
	uptime = time.Since(m.start)
	m.mu.Unlock()
	routes = make(map[string]RouteStats, len(raw))
	for name, rr := range raw {
		sort.Float64s(rr.samples)
		rr.rs.P50Ms = quantile(rr.samples, 0.50)
		rr.rs.P99Ms = quantile(rr.samples, 0.99)
		routes[name] = rr.rs
	}
	return uptime, routes
}

func (m *metrics) countPanic() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.panics++
}

func (m *metrics) countAdmissionReject() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.admissionRejects++
}

// robustnessStats reports the middleware counters for /metrics.
type robustnessStats struct {
	PanicsRecovered  int64
	AdmissionRejects int64
}

func (m *metrics) robustness() robustnessStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return robustnessStats{PanicsRecovered: m.panics, AdmissionRejects: m.admissionRejects}
}

// quantile reads q from an ascending sample list (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// statusWriter captures the response code for the metrics middleware, and
// whether anything was written — the panic middleware only synthesizes a
// 500 body when the handler had not started responding. It also carries the
// request id and the request's trace (when one is active) inward, so
// writeErr can stamp error bodies and handlers can inline ?trace=1 trees
// without re-deriving either.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
	rid   string
	trace *obs.Trace
}

// requestID extracts the request id stamped by the instrument middleware;
// "" outside it (e.g. a handler under test without the middleware stack).
func requestID(w http.ResponseWriter) string {
	if sw, ok := w.(*statusWriter); ok {
		return sw.rid
	}
	return ""
}

// requestTrace extracts the in-flight trace started by instrument, or nil.
func requestTrace(w http.ResponseWriter) *obs.Trace {
	if sw, ok := w.(*statusWriter); ok {
		return sw.trace
	}
	return nil
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// instrument wraps a handler with request counting, latency sampling, a
// response request id, and — when tracing is enabled, ?trace=1 is set, or a
// slow-query threshold is armed — a request-scoped trace rooted at the route
// label. The trace context flows through r.Context() into the engine,
// precompute, delta, and WAL layers; Finish records it in the tracer's ring
// (and the slow ring + log past the threshold).
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rid := obs.NewRequestID()
		w.Header().Set("X-Request-Id", rid)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK, rid: rid}
		// ?trace=1 forces a trace for this request even with the global gate
		// off; an armed slow-query threshold forces one too, since slowness
		// is only known at Finish time.
		force := r.URL.Query().Get("trace") == "1" || s.tracer.SlowThreshold() > 0
		ctx, trace := s.tracer.StartTrace(r.Context(), route, force)
		if trace != nil {
			trace.Root.SetAttr("request_id", rid)
			sw.trace = trace
			r = r.WithContext(ctx)
		}
		t0 := time.Now()
		h(sw, r)
		if trace != nil {
			trace.Root.SetInt("status", int64(sw.code))
		}
		s.tracer.Finish(trace)
		s.metrics.observe(route, sw.code, time.Since(t0))
	}
}
