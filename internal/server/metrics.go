package server

import (
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// latencySampleCap bounds the per-route latency reservoir: quantiles are
// computed over the most recent samples in a fixed ring, so /metrics stays
// O(1) memory under sustained traffic.
const latencySampleCap = 2048

// metrics aggregates per-route request counters and latency samples. All
// methods are goroutine-safe.
type metrics struct {
	mu     sync.Mutex
	start  time.Time
	routes map[string]*routeMetrics
	// robustness counters (see middleware.go).
	panics           int64
	admissionRejects int64
}

type routeMetrics struct {
	count   int64
	byCode  map[int]int64
	samples []float64 // milliseconds, ring buffer
	next    int
}

func newMetrics() *metrics {
	return &metrics{start: time.Now(), routes: make(map[string]*routeMetrics)}
}

func (m *metrics) observe(route string, code int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rm := m.routes[route]
	if rm == nil {
		rm = &routeMetrics{
			byCode:  make(map[int]int64),
			samples: make([]float64, 0, 64),
		}
		m.routes[route] = rm
	}
	rm.count++
	rm.byCode[code]++
	ms := float64(d) / float64(time.Millisecond)
	if len(rm.samples) < latencySampleCap {
		rm.samples = append(rm.samples, ms)
	} else {
		rm.samples[rm.next] = ms
	}
	rm.next = (rm.next + 1) % latencySampleCap
}

// RouteStats is one route's aggregate in the /metrics report.
type RouteStats struct {
	Count  int64            `json:"count"`
	ByCode map[string]int64 `json:"by_code"`
	P50Ms  float64          `json:"p50_ms"`
	P99Ms  float64          `json:"p99_ms"`
}

func (m *metrics) snapshot() (uptime time.Duration, routes map[string]RouteStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	routes = make(map[string]RouteStats, len(m.routes))
	for name, rm := range m.routes {
		rs := RouteStats{Count: rm.count, ByCode: make(map[string]int64, len(rm.byCode))}
		for code, n := range rm.byCode {
			rs.ByCode[strconv.Itoa(code)] = n
		}
		sorted := append([]float64(nil), rm.samples...)
		sort.Float64s(sorted)
		rs.P50Ms = quantile(sorted, 0.50)
		rs.P99Ms = quantile(sorted, 0.99)
		routes[name] = rs
	}
	return time.Since(m.start), routes
}

func (m *metrics) countPanic() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.panics++
}

func (m *metrics) countAdmissionReject() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.admissionRejects++
}

// robustnessStats reports the middleware counters for /metrics.
type robustnessStats struct {
	PanicsRecovered  int64
	AdmissionRejects int64
}

func (m *metrics) robustness() robustnessStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return robustnessStats{PanicsRecovered: m.panics, AdmissionRejects: m.admissionRejects}
}

// quantile reads q from an ascending sample list (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// statusWriter captures the response code for the metrics middleware, and
// whether anything was written — the panic middleware only synthesizes a
// 500 body when the handler had not started responding.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// instrument wraps a handler with request counting and latency sampling
// under the given route label.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		t0 := time.Now()
		h(sw, r)
		s.metrics.observe(route, sw.code, time.Since(t0))
	}
}
