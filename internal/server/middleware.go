package server

import (
	"context"
	"errors"
	"net/http"
	"runtime/debug"
)

// recoverPanics converts a handler panic into a 500 with a JSON error body
// (when nothing has been written yet) instead of tearing down the
// connection, and counts it in /metrics. http.ErrAbortHandler is re-raised:
// it is the sanctioned way to abort a response.
func (s *Server) recoverPanics(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			s.metrics.countPanic()
			s.logger.Error("panic in handler",
				"method", r.Method,
				"path", r.URL.Path,
				"request_id", requestID(w),
				"panic", rec,
				"stack", string(debug.Stack()))
			if sw, ok := w.(*statusWriter); !ok || !sw.wrote {
				writeErr(w, http.StatusInternalServerError, "internal error: handler panicked")
			}
		}()
		h(w, r)
	}
}

// withDeadline applies Config.RequestTimeout to the request context. Query
// execution observes the deadline between morsels; expired requests get 503
// through the handlers' error mapping.
func (s *Server) withDeadline(h http.HandlerFunc) http.HandlerFunc {
	if s.cfg.RequestTimeout <= 0 {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		h(w, r.WithContext(ctx))
	}
}

// gateWrites refuses mutating requests while the server drains, steering
// clients to retry against the replacement process.
func (s *Server) gateWrites(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusServiceUnavailable, "server is draining; retry against the replacement")
			return
		}
		h(w, r)
	}
}

// admitBuild bounds concurrently admitted session builds. A full semaphore
// answers 429 + Retry-After immediately instead of queueing: a session
// build can run for seconds, and a bounded queue would just move the
// timeout somewhere less visible.
func (s *Server) admitBuild(h http.HandlerFunc) http.HandlerFunc {
	if s.buildSlots == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.buildSlots <- struct{}{}:
		default:
			s.metrics.countAdmissionReject()
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusTooManyRequests, "too many session builds in flight; retry shortly")
			return
		}
		defer func() { <-s.buildSlots }()
		h(w, r)
	}
}

// isDeadline reports whether err stems from the request deadline or a
// cancelled client connection.
func isDeadline(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}
