package server

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"qagview/internal/obs"
)

// findSpanJSON walks a decoded SpanSnapshot tree for a span name.
func findSpanJSON(node map[string]any, name string) (map[string]any, bool) {
	if node["name"] == name {
		return node, true
	}
	kids, _ := node["children"].([]any)
	for _, k := range kids {
		if child, ok := k.(map[string]any); ok {
			if got, ok := findSpanJSON(child, name); ok {
				return got, true
			}
		}
	}
	return nil, false
}

// TestRequestIDOnResponses pins the satellite: every response carries
// X-Request-Id, and error bodies echo it as request_id.
func TestRequestIDOnResponses(t *testing.T) {
	_, ts := testServer(t, Config{})
	req, err := http.NewRequest("POST", ts.URL+"/v1/queries", strings.NewReader(`{"sql":""}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	rid := resp.Header.Get("X-Request-Id")
	if rid == "" {
		t.Fatal("no X-Request-Id on query response")
	}
	bad := post(t, ts, "/v1/queries", map[string]any{"sql": ""})
	if bad.code != http.StatusBadRequest {
		t.Fatalf("empty sql: %d %s", bad.code, bad.raw)
	}
	if got, _ := bad.body["request_id"].(string); got == "" {
		t.Fatalf("error body carries no request_id: %s", bad.raw)
	}
	for _, path := range []string{"/healthz", "/metrics", "/debug/traces"} {
		r := get(t, ts, path)
		if r.code != http.StatusOK {
			t.Fatalf("GET %s: %d %s", path, r.code, r.raw)
		}
	}
}

// TestTracedJoinQueryOverHTTP is the acceptance check: a ?trace=1 join query
// returns an inline span tree covering server route → engine (per-operator
// join and scan spans) → merge, even with the global tracing gate off.
func TestTracedJoinQueryOverHTTP(t *testing.T) {
	_, ts := joinTestServer(t)
	resp := post(t, ts, "/v1/queries?trace=1", map[string]any{"sql": joinSQL})
	if resp.code != http.StatusOK {
		t.Fatalf("traced query: %d %s", resp.code, resp.raw)
	}
	tr, ok := resp.body["trace"].(map[string]any)
	if !ok {
		t.Fatalf("no inline trace in %s", resp.raw)
	}
	root, ok := tr["root"].(map[string]any)
	if !ok {
		t.Fatalf("trace has no root: %v", tr)
	}
	if root["name"] != "POST /v1/queries" {
		t.Fatalf("root span is %v, want the route", root["name"])
	}
	for _, name := range []string{"engine.execute", "join", "join.build", "join.probe", "vexec", "scan", "merge", "finalize"} {
		if _, ok := findSpanJSON(root, name); !ok {
			t.Fatalf("span %q missing from inline trace: %s", name, resp.raw)
		}
	}
}

// TestQueryProfile pins the EXPLAIN ANALYZE surface over HTTP: "profile":
// true returns per-operator rows/batches/wall-time plus a rendered table.
func TestQueryProfile(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp := post(t, ts, "/v1/queries", map[string]any{"sql": testSQL, "profile": true})
	if resp.code != http.StatusOK {
		t.Fatalf("profiled query: %d %s", resp.code, resp.raw)
	}
	ops, ok := resp.body["profile"].([]any)
	if !ok || len(ops) == 0 {
		t.Fatalf("no profile in %s", resp.raw)
	}
	names := map[string]bool{}
	for _, op := range ops {
		names[op.(map[string]any)["op"].(string)] = true
	}
	for _, want := range []string{"plan", "scan", "merge", "finalize"} {
		if !names[want] {
			t.Fatalf("profile missing operator %q: %s", want, resp.raw)
		}
	}
	text, _ := resp.body["profile_text"].(string)
	if !strings.Contains(text, "operator") {
		t.Fatalf("profile_text missing header: %q", text)
	}
	// Without the flag the response stays clean.
	plain := post(t, ts, "/v1/queries", map[string]any{"sql": testSQL})
	if _, leaked := plain.body["profile"]; leaked {
		t.Fatal("profile leaked into an unprofiled response")
	}
}

// TestDebugTraces exercises the ring endpoints: with tracing enabled every
// request is retained, listable, and retrievable by id.
func TestDebugTraces(t *testing.T) {
	_, ts := testServer(t, Config{TraceEnabled: true, TraceRing: 16})
	if r := post(t, ts, "/v1/queries", map[string]any{"sql": testSQL}); r.code != http.StatusOK {
		t.Fatalf("query: %d %s", r.code, r.raw)
	}
	list := get(t, ts, "/debug/traces")
	if list.code != http.StatusOK {
		t.Fatalf("GET /debug/traces: %d %s", list.code, list.raw)
	}
	ring := list.body["ring"].(map[string]any)
	if ring["enabled"] != true {
		t.Fatalf("ring reports disabled: %s", list.raw)
	}
	traces := list.body["traces"].([]any)
	if len(traces) == 0 {
		t.Fatal("no traces retained")
	}
	var queryTrace map[string]any
	for _, tr := range traces {
		if m := tr.(map[string]any); m["name"] == "POST /v1/queries" {
			queryTrace = m
			break
		}
	}
	if queryTrace == nil {
		t.Fatalf("query trace not in ring: %s", list.raw)
	}
	one := get(t, ts, "/debug/traces/"+queryTrace["id"].(string))
	if one.code != http.StatusOK {
		t.Fatalf("GET trace by id: %d %s", one.code, one.raw)
	}
	root := one.body["root"].(map[string]any)
	if _, ok := findSpanJSON(root, "engine.execute"); !ok {
		t.Fatalf("retained trace has no engine span: %s", one.raw)
	}
	missing := get(t, ts, "/debug/traces/nope")
	if missing.code != http.StatusNotFound {
		t.Fatalf("unknown trace id: %d", missing.code)
	}
	if rid, _ := missing.body["request_id"].(string); rid == "" {
		t.Fatalf("404 body carries no request_id: %s", missing.raw)
	}
}

// TestSlowQueryCapture: with a zero-ish threshold armed, ordinary requests
// land in the slow ring and are flagged in the index.
func TestSlowQueryCapture(t *testing.T) {
	srv, ts := testServer(t, Config{SlowQuery: time.Nanosecond})
	if r := post(t, ts, "/v1/queries", map[string]any{"sql": testSQL}); r.code != http.StatusOK {
		t.Fatalf("query: %d %s", r.code, r.raw)
	}
	st := srv.tracer.Stats()
	if st.SlowTotal == 0 {
		t.Fatalf("no slow traces captured: %+v", st)
	}
	list := get(t, ts, "/debug/traces")
	if !strings.Contains(list.raw, `"slow": true`) && !strings.Contains(list.raw, `"slow":true`) {
		t.Fatalf("no trace flagged slow: %s", list.raw)
	}
}

// TestPromMetrics scrapes /metrics?format=prometheus and validates it with
// the exposition parser — the same check the e2e smoke runs.
func TestPromMetrics(t *testing.T) {
	_, ts := testServer(t, Config{TraceEnabled: true})
	if r := post(t, ts, "/v1/queries", map[string]any{"sql": testSQL}); r.code != http.StatusOK {
		t.Fatalf("query: %d %s", r.code, r.raw)
	}
	scrape := get(t, ts, "/metrics?format=prometheus")
	if scrape.code != http.StatusOK {
		t.Fatalf("scrape: %d %s", scrape.code, scrape.raw)
	}
	fams, err := obs.ParseExposition(scrape.raw)
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, scrape.raw)
	}
	have := map[string]bool{}
	for _, f := range fams {
		have[f.Name] = true
	}
	for _, want := range []string{
		"qagviewd_uptime_seconds", "qagviewd_requests_total", "qagviewd_request_latency_ms",
		"qagviewd_sessions_live", "qagviewd_goroutines", "qagviewd_heap_alloc_bytes",
		"qagviewd_trace_ring_occupancy", "qagviewd_traces_total",
	} {
		if !have[want] {
			t.Fatalf("missing family %q in scrape:\n%s", want, scrape.raw)
		}
	}
	s, ok := obs.FindSample(fams, "qagviewd_requests_total", map[string]string{"route": "POST /v1/queries", "code": "200"})
	if !ok || s.Value < 1 {
		t.Fatalf("no request counter for the query route: %s", scrape.raw)
	}
	// JSON stays the default rendering.
	asJSON := get(t, ts, "/metrics")
	if asJSON.body == nil || asJSON.body["requests"] == nil {
		t.Fatalf("default /metrics no longer JSON: %s", asJSON.raw)
	}
}

// TestMetricsScrapeObserveRace pins the satellite fix: quantile sorting must
// not mutate or hold the ring under concurrent observes. Run under -race.
func TestMetricsScrapeObserveRace(t *testing.T) {
	m := newMetrics()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				m.observe(fmt.Sprintf("route-%d", g%2), 200, time.Duration(i)*time.Microsecond)
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		_, routes := m.snapshot()
		for _, rs := range routes {
			if rs.P99Ms < rs.P50Ms {
				t.Errorf("p99 %v < p50 %v", rs.P99Ms, rs.P50Ms)
			}
		}
	}
	close(stop)
	wg.Wait()
}
