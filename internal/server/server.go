// Package server implements qagviewd: an HTTP/JSON service hosting
// concurrent interactive-exploration sessions over the qagview engine — the
// serving face of the paper's system (Section 7.1's client/server split).
//
// A session is a (query, L) Summarizer plus a (k, D) precompute Store. The
// store builds lazily in one background goroutine per session; solution and
// diff reads fall back to live summarization until it is ready, so no read
// path ever blocks on a build. Sessions live in a byte-accounted LRU;
// evicting one cancels its in-flight sweep through the context threaded
// into Precompute. Identical concurrent session requests are deduplicated
// with a singleflight group, and finished stores are snapshotted with
// Store.Encode so a warm restart decodes instead of re-sweeping.
package server

import (
	"fmt"
	"net/http"
	"sync"

	"qagview"
)

// Config sizes the server.
type Config struct {
	// MaxSessions caps the number of live sessions (LRU-evicted beyond it).
	// 0 means the default of 64.
	MaxSessions int
	// MaxCacheBytes caps the summed approximate bytes of live sessions
	// (summarizer + store). 0 means the default of 256 MiB; negative means
	// unlimited.
	MaxCacheBytes int64
	// SnapshotDir, when non-empty, persists finished precompute stores so
	// warm restarts skip the sweep. The directory must exist.
	SnapshotDir string
	// ExecParallelism bounds the morsel worker pool of query execution
	// (session builds, refreshes, and /v1/queries). 0 means GOMAXPROCS;
	// results are bit-identical at any setting.
	ExecParallelism int
}

func (c Config) withDefaults() Config {
	if c.MaxSessions == 0 {
		c.MaxSessions = 64
	}
	switch {
	case c.MaxCacheBytes == 0:
		c.MaxCacheBytes = 256 << 20
	case c.MaxCacheBytes < 0:
		c.MaxCacheBytes = 0 // lruCache treats 0 as unlimited
	}
	return c
}

// db wraps qagview.DB with the lock the HTTP surface needs — table loads
// write the catalog while queries read it — and a per-table data generation,
// bumped on every load or row append, that drives session staleness.
type db struct {
	mu   sync.RWMutex
	db   *qagview.DB
	gens map[string]uint64
	// execOpts are applied to every query run through this catalog (session
	// builds, session refreshes, and ad-hoc /v1/queries alike), so an
	// ExecParallelism setting covers all execution paths uniformly.
	execOpts []qagview.QueryOption
}

func newServerDB(execOpts ...qagview.QueryOption) *db {
	return &db{db: qagview.NewDB(), gens: make(map[string]uint64), execOpts: execOpts}
}

func (d *db) register(r *qagview.Relation) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.db.Register(r); err != nil {
		return err
	}
	d.gens[r.Name()]++
	return nil
}

// update replaces the named table with fn's result and returns the new data
// generation. The expensive part — fn's copy-on-write rebuild, O(table) per
// append — runs outside the catalog lock against a snapshot, so queries are
// never blocked behind it; the swap then re-checks the generation and
// retries from the newer snapshot if a concurrent update won the race
// (appends compose, so re-applying fn is correct, and each retry means
// someone else made progress). A nil next from fn is a no-op: the table and
// its generation stay untouched (an empty append must not mark every
// session over the table stale).
func (d *db) update(name string, fn func(*qagview.Relation) (*qagview.Relation, error)) (uint64, error) {
	for {
		d.mu.RLock()
		rel, err := d.db.Table(name)
		gen := d.gens[name]
		d.mu.RUnlock()
		if err != nil {
			return 0, err
		}
		next, err := fn(rel)
		if err != nil {
			return 0, err
		}
		if next == nil {
			return gen, nil
		}
		d.mu.Lock()
		if d.gens[name] != gen {
			d.mu.Unlock()
			continue // lost the race: rebuild from the newer snapshot
		}
		if err := d.db.Register(next); err != nil {
			d.mu.Unlock()
			return 0, err
		}
		d.gens[name]++
		g := d.gens[name]
		d.mu.Unlock()
		return g, nil
	}
}

func (d *db) query(sql string) (*qagview.Result, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.db.Query(sql, d.execOpts...)
}

// queryVersioned runs sql and reports the generation of its FROM table as of
// (at latest) the start of the query, under one read lock so no append can
// slip between the generation read and the scan.
func (d *db) queryVersioned(sql string) (*qagview.Result, uint64, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	res, err := d.db.Query(sql, d.execOpts...)
	if err != nil {
		return nil, 0, err
	}
	return res, d.gens[res.Table], nil
}

// generation returns the table's current data generation (0 for unknown
// tables).
func (d *db) generation(table string) uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.gens[table]
}

func (d *db) tables() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.db.Tables()
}

// Server is the qagviewd HTTP service.
type Server struct {
	cfg      Config
	db       *db
	sessions *sessionManager
	metrics  *metrics
	mux      *http.ServeMux
}

// New returns a server with an empty catalog.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	var execOpts []qagview.QueryOption
	if cfg.ExecParallelism > 0 {
		execOpts = append(execOpts, qagview.ExecParallelism(cfg.ExecParallelism))
	}
	s := &Server{
		cfg:      cfg,
		db:       newServerDB(execOpts...),
		sessions: newSessionManager(cfg.MaxSessions, cfg.MaxCacheBytes, cfg.SnapshotDir),
		metrics:  newMetrics(),
	}
	s.mux = http.NewServeMux()
	route := func(pattern, label string, h http.HandlerFunc) {
		s.mux.HandleFunc(pattern, s.instrument(label, h))
	}
	route("POST /v1/tables", "POST /v1/tables", s.handleCreateTable)
	route("GET /v1/tables", "GET /v1/tables", s.handleListTables)
	route("POST /v1/tables/{id}/rows", "POST /v1/tables/{id}/rows", s.handleAppendRows)
	route("POST /v1/queries", "POST /v1/queries", s.handleQuery)
	route("POST /v1/sessions", "POST /v1/sessions", s.handleCreateSession)
	route("GET /v1/sessions/{id}", "GET /v1/sessions/{id}", s.handleSessionInfo)
	route("DELETE /v1/sessions/{id}", "DELETE /v1/sessions/{id}", s.handleDeleteSession)
	route("GET /v1/sessions/{id}/solution", "GET /v1/sessions/{id}/solution", s.handleSolution)
	route("GET /v1/sessions/{id}/guidance", "GET /v1/sessions/{id}/guidance", s.handleGuidance)
	route("GET /v1/sessions/{id}/diff", "GET /v1/sessions/{id}/diff", s.handleDiff)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the HTTP surface, ready to mount on an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// Register preloads a relation into the catalog (sample datasets; tests).
func (s *Server) Register(r *qagview.Relation) error { return s.db.register(r) }

// Close cancels all background session work. In-flight requests finish.
func (s *Server) Close() { s.sessions.close() }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	uptime, _ := s.metrics.snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": uptime.Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	uptime, routes := s.metrics.snapshot()
	entries, bytes, stats := s.sessions.occupancy()
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_seconds": uptime.Seconds(),
		"requests":       routes,
		"sessions": map[string]any{
			"live":        entries,
			"bytes":       bytes,
			"max_entries": s.cfg.MaxSessions,
			"max_bytes":   s.cfg.MaxCacheBytes,
			"events":      stats,
		},
	})
}

// String renders the bind hint for logs.
func (s *Server) String() string {
	return fmt.Sprintf("qagviewd{sessions<=%d, bytes<=%d}", s.cfg.MaxSessions, s.cfg.MaxCacheBytes)
}
