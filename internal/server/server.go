// Package server implements qagviewd: an HTTP/JSON service hosting
// concurrent interactive-exploration sessions over the qagview engine — the
// serving face of the paper's system (Section 7.1's client/server split).
//
// A session is a (query, L) Summarizer plus a (k, D) precompute Store. The
// store builds lazily in one background goroutine per session; solution and
// diff reads fall back to live summarization until it is ready, so no read
// path ever blocks on a build. Sessions live in a byte-accounted LRU;
// evicting one cancels its in-flight sweep through the context threaded
// into Precompute. Identical concurrent session requests are deduplicated
// with a singleflight group, and finished stores are snapshotted with
// Store.Encode so a warm restart decodes instead of re-sweeping.
//
// With a WAL directory configured the live tables are durable: every table
// create and row append is written to a write-ahead log and fsynced before
// the request is acknowledged, and Recover rebuilds the exact acknowledged
// state — snapshots plus log replay — after a crash. See durable.go.
package server

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"qagview"
	"qagview/internal/obs"
)

// Config sizes the server.
type Config struct {
	// MaxSessions caps the number of live sessions (LRU-evicted beyond it).
	// 0 means the default of 64.
	MaxSessions int
	// MaxCacheBytes caps the summed approximate bytes of live sessions
	// (summarizer + store). 0 means the default of 256 MiB; negative means
	// unlimited.
	MaxCacheBytes int64
	// SnapshotDir, when non-empty, persists finished precompute stores so
	// warm restarts skip the sweep. The directory must exist.
	SnapshotDir string
	// ExecParallelism bounds the morsel worker pool of query execution
	// (session builds, refreshes, and /v1/queries). 0 means GOMAXPROCS;
	// results are bit-identical at any setting.
	ExecParallelism int
	// WALDir, when non-empty, makes live tables durable: creates and
	// appends are logged and fsynced before acknowledgement, and Recover
	// replays the log on startup. Created if missing.
	WALDir string
	// WALCheckpointBytes triggers a checkpoint (snapshot tables, prune the
	// log) once the WAL exceeds this size. 0 means the default of 64 MiB;
	// negative disables automatic checkpoints (Drain still checkpoints).
	WALCheckpointBytes int64
	// MaxInflightBuilds bounds concurrently admitted session builds; excess
	// POST /v1/sessions requests get 429 + Retry-After. 0 means the default
	// of 2×GOMAXPROCS (min 4); negative means unlimited.
	MaxInflightBuilds int
	// RequestTimeout bounds each request's handler; queries observe the
	// deadline between morsels and the response is 503. 0 disables.
	RequestTimeout time.Duration
	// TraceEnabled turns on request tracing for every request. Off, traces
	// still start for ?trace=1 requests and — when SlowQuery is set — to
	// detect slow ones; everything else runs the nil-span zero-cost path.
	TraceEnabled bool
	// TraceRing caps the recent- and slow-trace rings at /debug/traces.
	// 0 means obs.DefaultRingSize.
	TraceRing int
	// SlowQuery, when positive, retains traces of requests at or above this
	// duration in the slow ring and logs them through the structured logger.
	SlowQuery time.Duration
	// Logger receives the server's structured logs (panics, checkpoint
	// failures, slow traces). nil means slog.Default().
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxSessions == 0 {
		c.MaxSessions = 64
	}
	switch {
	case c.MaxCacheBytes == 0:
		c.MaxCacheBytes = 256 << 20
	case c.MaxCacheBytes < 0:
		c.MaxCacheBytes = 0 // lruCache treats 0 as unlimited
	}
	switch {
	case c.WALCheckpointBytes == 0:
		c.WALCheckpointBytes = 64 << 20
	case c.WALCheckpointBytes < 0:
		c.WALCheckpointBytes = 0 // durability treats 0 as "never auto-checkpoint"
	}
	switch {
	case c.MaxInflightBuilds == 0:
		c.MaxInflightBuilds = 2 * runtime.GOMAXPROCS(0)
		if c.MaxInflightBuilds < 4 {
			c.MaxInflightBuilds = 4
		}
	case c.MaxInflightBuilds < 0:
		c.MaxInflightBuilds = 0 // 0 after defaults means unlimited
	}
	return c
}

// db wraps qagview.DB with the lock the HTTP surface needs — table loads
// write the catalog while queries read it — and a per-table data generation,
// bumped on every load or row append, that drives session staleness.
type db struct {
	mu   sync.RWMutex
	db   *qagview.DB
	gens map[string]uint64
	// execOpts are applied to every query run through this catalog (session
	// builds, session refreshes, and ad-hoc /v1/queries alike), so an
	// ExecParallelism setting covers all execution paths uniformly.
	execOpts []qagview.QueryOption
}

func newServerDB(execOpts ...qagview.QueryOption) *db {
	return &db{db: qagview.NewDB(), gens: make(map[string]uint64), execOpts: execOpts}
}

// register installs a relation and bumps its data generation. A non-nil
// stage hook runs under the catalog lock right after the generation is
// assigned — write-ahead-log staging, which must see generations in
// assignment order — and returns a wait that runs after the lock drops;
// registration only counts as durable once that wait returns nil. The
// returned generation is valid either way (the caller may already have
// applied the data in memory).
func (d *db) register(r *qagview.Relation, stage func(gen uint64) func() error) (uint64, error) {
	d.mu.Lock()
	if err := d.db.Register(r); err != nil {
		d.mu.Unlock()
		return 0, err
	}
	d.gens[r.Name()]++
	g := d.gens[r.Name()]
	var wait func() error
	if stage != nil {
		wait = stage(g)
	}
	d.mu.Unlock()
	if wait != nil {
		if err := wait(); err != nil {
			return g, fmt.Errorf("%w: %v", errDurability, err)
		}
	}
	return g, nil
}

// restore installs a relation at an explicit data generation — recovery
// replay, where the generation must match what the record was acknowledged
// with, not a fresh increment.
func (d *db) restore(r *qagview.Relation, gen uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.db.Register(r); err != nil {
		return err
	}
	if gen > d.gens[r.Name()] {
		d.gens[r.Name()] = gen
	}
	return nil
}

// update replaces the named table with fn's result and returns the new data
// generation. The expensive part — fn's copy-on-write rebuild, O(table) per
// append — runs outside the catalog lock against a snapshot, so queries are
// never blocked behind it; the swap then re-checks the generation and
// retries from the newer snapshot if a concurrent update won the race
// (appends compose, so re-applying fn is correct, and each retry means
// someone else made progress). A nil next from fn is a no-op: the table and
// its generation stay untouched (an empty append must not mark every
// session over the table stale). A non-nil stage hook behaves as in
// register: staged under the lock in generation order, awaited outside it.
func (d *db) update(name string, fn func(*qagview.Relation) (*qagview.Relation, error), stage func(gen uint64) func() error) (uint64, error) {
	for {
		d.mu.RLock()
		rel, err := d.db.Table(name)
		gen := d.gens[name]
		d.mu.RUnlock()
		if err != nil {
			return 0, err
		}
		next, err := fn(rel)
		if err != nil {
			return 0, err
		}
		if next == nil {
			return gen, nil
		}
		d.mu.Lock()
		if d.gens[name] != gen {
			d.mu.Unlock()
			continue // lost the race: rebuild from the newer snapshot
		}
		if err := d.db.Register(next); err != nil {
			d.mu.Unlock()
			return 0, err
		}
		d.gens[name]++
		g := d.gens[name]
		var wait func() error
		if stage != nil {
			wait = stage(g)
		}
		d.mu.Unlock()
		if wait != nil {
			if err := wait(); err != nil {
				return g, fmt.Errorf("%w: %v", errDurability, err)
			}
		}
		return g, nil
	}
}

// table returns the named relation under the read lock.
func (d *db) table(name string) (*qagview.Relation, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.db.Table(name)
}

// tableWithGen returns a relation together with its data generation, read
// atomically so a checkpoint never pairs a table with a stale generation.
func (d *db) tableWithGen(name string) (*qagview.Relation, uint64, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	rel, err := d.db.Table(name)
	if err != nil {
		return nil, 0, err
	}
	return rel, d.gens[name], nil
}

// execOptions returns the catalog's query options, extended with ctx when
// one is supplied. The base slice is never appended to in place — handlers
// run concurrently and share it.
func (d *db) execOptions(ctx context.Context) []qagview.QueryOption {
	if ctx == nil {
		return d.execOpts
	}
	opts := make([]qagview.QueryOption, 0, len(d.execOpts)+1)
	opts = append(opts, d.execOpts...)
	return append(opts, qagview.ExecContext(ctx))
}

func (d *db) query(ctx context.Context, sql string, extra ...qagview.QueryOption) (*qagview.Result, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	opts := d.execOptions(ctx)
	if len(extra) > 0 {
		// Full-slice append: execOptions may return the shared base slice.
		opts = append(opts[:len(opts):len(opts)], extra...)
	}
	return d.db.Query(sql, opts...)
}

// queryVersioned runs sql and reports the summed generation of every FROM
// table as of (at latest) the start of the query, under one read lock so no
// append can slip between the generation read and the scan.
func (d *db) queryVersioned(ctx context.Context, sql string) (*qagview.Result, uint64, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	res, err := d.db.Query(sql, d.execOptions(ctx)...)
	if err != nil {
		return nil, 0, err
	}
	return res, d.genSumLocked(res.Tables), nil
}

// generation returns the table's current data generation (0 for unknown
// tables).
func (d *db) generation(table string) uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.gens[table]
}

// generationSum sums the data generations of the given tables. Each
// per-table generation only ever increments, so the sum is a monotonic
// staleness clock for a session reading all of them: any append to any
// joined table moves it forward.
func (d *db) generationSum(tables []string) uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.genSumLocked(tables)
}

func (d *db) genSumLocked(tables []string) uint64 {
	var sum uint64
	for _, t := range tables {
		sum += d.gens[t]
	}
	return sum
}

func (d *db) tables() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.db.Tables()
}

// Server is the qagviewd HTTP service.
type Server struct {
	cfg      Config
	db       *db
	sessions *sessionManager
	metrics  *metrics
	tracer   *obs.Tracer
	logger   *slog.Logger
	mux      *http.ServeMux
	dur      *durability // nil when Config.WALDir is empty
	// buildSlots is the session-build admission semaphore (nil = unlimited).
	buildSlots chan struct{}
	draining   atomic.Bool
}

// New returns a server with an empty catalog. With Config.WALDir set, call
// Recover after preloading samples and before serving.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	var execOpts []qagview.QueryOption
	if cfg.ExecParallelism > 0 {
		execOpts = append(execOpts, qagview.ExecParallelism(cfg.ExecParallelism))
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	s := &Server{
		cfg:      cfg,
		db:       newServerDB(execOpts...),
		sessions: newSessionManager(cfg.MaxSessions, cfg.MaxCacheBytes, cfg.SnapshotDir),
		metrics:  newMetrics(),
		tracer:   obs.NewTracer(cfg.TraceRing, logger),
		logger:   logger,
	}
	s.tracer.SetEnabled(cfg.TraceEnabled)
	s.tracer.SetSlowThreshold(cfg.SlowQuery)
	// Background store builds start their own traces (no request to attach
	// to); the manager needs the tracer for that.
	s.sessions.tracer = s.tracer
	if cfg.WALDir != "" {
		s.dur = newDurability(cfg.WALDir, cfg.WALCheckpointBytes)
	}
	if cfg.MaxInflightBuilds > 0 {
		s.buildSlots = make(chan struct{}, cfg.MaxInflightBuilds)
	}
	s.mux = http.NewServeMux()
	// Middleware order, outermost first: instrument (counts every response,
	// including 429/500/503 from inner layers) → panic recovery → deadline.
	// Write endpoints additionally refuse while draining; session creation
	// passes admission control.
	route := func(pattern, label string, h http.HandlerFunc) {
		s.mux.HandleFunc(pattern, s.instrument(label, s.recoverPanics(s.withDeadline(h))))
	}
	route("POST /v1/tables", "POST /v1/tables", s.gateWrites(s.handleCreateTable))
	route("GET /v1/tables", "GET /v1/tables", s.handleListTables)
	route("POST /v1/tables/{id}/rows", "POST /v1/tables/{id}/rows", s.gateWrites(s.handleAppendRows))
	route("POST /v1/queries", "POST /v1/queries", s.handleQuery)
	route("POST /v1/sessions", "POST /v1/sessions", s.gateWrites(s.admitBuild(s.handleCreateSession)))
	route("GET /v1/sessions/{id}", "GET /v1/sessions/{id}", s.handleSessionInfo)
	route("DELETE /v1/sessions/{id}", "DELETE /v1/sessions/{id}", s.handleDeleteSession)
	route("GET /v1/sessions/{id}/solution", "GET /v1/sessions/{id}/solution", s.handleSolution)
	route("GET /v1/sessions/{id}/guidance", "GET /v1/sessions/{id}/guidance", s.handleGuidance)
	route("GET /v1/sessions/{id}/diff", "GET /v1/sessions/{id}/diff", s.handleDiff)
	// Ops endpoints skip the metrics middleware (scrapes should not dominate
	// the request counters) but still get a request id on every response.
	s.mux.HandleFunc("GET /healthz", s.stampRequestID(s.recoverPanics(s.handleHealthz)))
	s.mux.HandleFunc("GET /metrics", s.stampRequestID(s.recoverPanics(s.handleMetrics)))
	s.mux.HandleFunc("GET /debug/traces", s.stampRequestID(s.recoverPanics(s.handleTraces)))
	s.mux.HandleFunc("GET /debug/traces/{id}", s.stampRequestID(s.recoverPanics(s.handleTrace)))
	return s
}

// stampRequestID wraps ops endpoints outside the instrument middleware so
// every response still carries X-Request-Id (and error bodies a request_id).
func (s *Server) stampRequestID(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rid := obs.NewRequestID()
		w.Header().Set("X-Request-Id", rid)
		h(&statusWriter{ResponseWriter: w, code: http.StatusOK, rid: rid}, r)
	}
}

// Handler returns the HTTP surface, ready to mount on an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// Register preloads a relation into the catalog (sample datasets; tests).
// Preloads are not write-ahead logged: samples are regenerated
// deterministically at boot, and WAL appends replay on top of them.
func (s *Server) Register(r *qagview.Relation) error {
	_, err := s.db.register(r, nil)
	return err
}

// Close cancels all background session work and waits for it to stop.
// In-flight requests finish. For a durable server prefer Drain, which also
// flushes and checkpoints the WAL.
func (s *Server) Close() { s.sessions.close() }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	uptime, _ := s.metrics.snapshot()
	ws, _, durable := s.walStats()
	walStatus := "disabled"
	if durable {
		switch {
		case ws.Broken:
			walStatus = "broken"
		default:
			walStatus = "ok"
		}
	}
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         status,
		"uptime_seconds": uptime.Seconds(),
		"wal":            walStatus,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		s.promMetrics(w)
		return
	}
	uptime, routes := s.metrics.snapshot()
	entries, bytes, stats := s.sessions.occupancy()
	robust := s.metrics.robustness()
	body := map[string]any{
		"uptime_seconds": uptime.Seconds(),
		"requests":       routes,
		"sessions": map[string]any{
			"live":        entries,
			"bytes":       bytes,
			"max_entries": s.cfg.MaxSessions,
			"max_bytes":   s.cfg.MaxCacheBytes,
			"events":      stats,
		},
		"panics_recovered":  robust.PanicsRecovered,
		"admission_rejects": robust.AdmissionRejects,
		"inflight_builds":   len(s.buildSlots),
		"draining":          s.draining.Load(),
	}
	if ws, ds, durable := s.walStats(); durable {
		body["wal"] = ws
		body["recovery"] = ds
	}
	writeJSON(w, http.StatusOK, body)
}

// promMetrics renders the /metrics counters in the Prometheus text
// exposition format (version 0.0.4): the same numbers the JSON report
// carries, plus runtime gauges. JSON stays the default; this is the
// ?format=prometheus branch scrape configs point at.
func (s *Server) promMetrics(w http.ResponseWriter) {
	uptime, routes := s.metrics.snapshot()
	entries, bytes, stats := s.sessions.occupancy()
	robust := s.metrics.robustness()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	ring := s.tracer.Stats()

	var pw obs.PromWriter
	pw.Family("qagviewd_uptime_seconds", "gauge", "Seconds since the server started.")
	pw.Sample("qagviewd_uptime_seconds", uptime.Seconds())
	pw.Family("qagviewd_requests_total", "counter", "Requests served, by route and status code.")
	pw.Family("qagviewd_request_latency_ms", "gauge", "Request latency quantiles over the recent-sample ring, by route.")
	for route, rs := range routes {
		for code, n := range rs.ByCode {
			pw.Sample("qagviewd_requests_total", float64(n), "route", route, "code", code)
		}
		pw.Sample("qagviewd_request_latency_ms", rs.P50Ms, "route", route, "quantile", "0.5")
		pw.Sample("qagviewd_request_latency_ms", rs.P99Ms, "route", route, "quantile", "0.99")
	}
	pw.Family("qagviewd_sessions_live", "gauge", "Live sessions in the LRU cache.")
	pw.Sample("qagviewd_sessions_live", float64(entries))
	pw.Family("qagviewd_sessions_bytes", "gauge", "Approximate bytes held by live sessions.")
	pw.Sample("qagviewd_sessions_bytes", float64(bytes))
	pw.Family("qagviewd_session_events_total", "counter", "Session-manager lifecycle events.")
	for _, ev := range []struct {
		name string
		n    int64
	}{
		{"builds", stats.Builds}, {"build_errors", stats.BuildErrors},
		{"deduped", stats.Deduped}, {"evictions", stats.Evictions},
		{"deletes", stats.Deletes}, {"refreshes", stats.Refreshes},
		{"refresh_noops", stats.RefreshNoops}, {"refresh_errors", stats.RefreshErrors},
		{"snapshot_loads", stats.SnapshotLoads}, {"snapshot_saves", stats.SnapshotSaves},
	} {
		pw.Sample("qagviewd_session_events_total", float64(ev.n), "event", ev.name)
	}
	pw.Family("qagviewd_panics_recovered_total", "counter", "Handler panics converted to 500s.")
	pw.Sample("qagviewd_panics_recovered_total", float64(robust.PanicsRecovered))
	pw.Family("qagviewd_admission_rejects_total", "counter", "Session builds refused with 429.")
	pw.Sample("qagviewd_admission_rejects_total", float64(robust.AdmissionRejects))
	pw.Family("qagviewd_inflight_builds", "gauge", "Session builds currently admitted.")
	pw.Sample("qagviewd_inflight_builds", float64(len(s.buildSlots)))
	pw.Family("qagviewd_draining", "gauge", "1 while the server refuses writes for drain.")
	pw.Sample("qagviewd_draining", boolGauge(s.draining.Load()))

	pw.Family("qagviewd_goroutines", "gauge", "Goroutines in the process.")
	pw.Sample("qagviewd_goroutines", float64(runtime.NumGoroutine()))
	pw.Family("qagviewd_heap_alloc_bytes", "gauge", "Bytes of allocated heap objects.")
	pw.Sample("qagviewd_heap_alloc_bytes", float64(ms.HeapAlloc))

	pw.Family("qagviewd_tracing_enabled", "gauge", "1 when the global tracing gate is on.")
	pw.Sample("qagviewd_tracing_enabled", boolGauge(ring.Enabled))
	pw.Family("qagviewd_trace_ring_occupancy", "gauge", "Retained traces, by ring.")
	pw.Sample("qagviewd_trace_ring_occupancy", float64(ring.Recent), "ring", "recent")
	pw.Sample("qagviewd_trace_ring_occupancy", float64(ring.Slow), "ring", "slow")
	pw.Family("qagviewd_traces_total", "counter", "Traces finished, by kind.")
	pw.Sample("qagviewd_traces_total", float64(ring.Total), "kind", "all")
	pw.Sample("qagviewd_traces_total", float64(ring.SlowTotal), "kind", "slow")

	if ws, ds, durable := s.walStats(); durable {
		pw.Family("qagviewd_wal_appends_total", "counter", "Acknowledged WAL appends.")
		pw.Sample("qagviewd_wal_appends_total", float64(ws.Appends))
		pw.Family("qagviewd_wal_fsyncs_total", "counter", "WAL fsync batches (group commit).")
		pw.Sample("qagviewd_wal_fsyncs_total", float64(ws.Fsyncs))
		pw.Family("qagviewd_wal_bytes_total", "counter", "Bytes appended to the WAL this process.")
		pw.Sample("qagviewd_wal_bytes_total", float64(ws.Bytes))
		pw.Family("qagviewd_wal_size_bytes", "gauge", "On-disk bytes across live WAL segments.")
		pw.Sample("qagviewd_wal_size_bytes", float64(ws.SizeBytes))
		pw.Family("qagviewd_wal_fsync_ms", "gauge", "WAL fsync latency quantiles over the recent-sample ring.")
		pw.Sample("qagviewd_wal_fsync_ms", ws.FsyncP50Ms, "quantile", "0.5")
		pw.Sample("qagviewd_wal_fsync_ms", ws.FsyncP99Ms, "quantile", "0.99")
		pw.Family("qagviewd_wal_broken", "gauge", "1 after the WAL went fail-stop.")
		pw.Sample("qagviewd_wal_broken", boolGauge(ws.Broken))
		pw.Family("qagviewd_recovery_records_replayed_total", "counter", "WAL records replayed by Recover.")
		pw.Sample("qagviewd_recovery_records_replayed_total", float64(ds.RecordsReplayed))
		pw.Family("qagviewd_checkpoints_total", "counter", "Completed WAL checkpoints.")
		pw.Sample("qagviewd_checkpoints_total", float64(ds.Checkpoints))
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(pw.String()))
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// handleTraces serves the retained-trace index: ring stats plus summaries,
// newest first (slow traces that outlived the recent ring included).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	traces := s.tracer.Recent()
	if traces == nil {
		traces = []obs.TraceSummary{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ring":   s.tracer.Stats(),
		"traces": traces,
	})
}

// handleTrace serves one retained trace's full span tree by id.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, ok := s.tracer.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "trace %q not retained (expired from the ring, or never existed)", id)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// DebugHandler returns the debug surface — pprof plus the trace ring — for
// a separate listener (qagviewd -debug-addr), so profiling endpoints are
// never exposed on the service port.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /debug/traces", s.stampRequestID(s.recoverPanics(s.handleTraces)))
	mux.HandleFunc("GET /debug/traces/{id}", s.stampRequestID(s.recoverPanics(s.handleTrace)))
	return mux
}

// String renders the bind hint for logs.
func (s *Server) String() string {
	return fmt.Sprintf("qagviewd{sessions<=%d, bytes<=%d}", s.cfg.MaxSessions, s.cfg.MaxCacheBytes)
}
