package server

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"qagview/internal/intervaltree"
)

// makeCSV renders a synthetic answer table: na x nb x nc groups with two
// rows each and distinct per-group averages, so aggregate queries over it
// rank deterministically.
func makeCSV(na, nb, nc int) string {
	var sb strings.Builder
	sb.WriteString("a,b,c,v\n")
	for i := 0; i < na; i++ {
		for j := 0; j < nb; j++ {
			for l := 0; l < nc; l++ {
				base := float64(i*nb*nc + j*nc + l)
				fmt.Fprintf(&sb, "A%d,B%d,C%d,%g\n", i, j, l, base)
				fmt.Fprintf(&sb, "A%d,B%d,C%d,%g\n", i, j, l, base+1)
			}
		}
	}
	return sb.String()
}

const testSQL = "SELECT a, b, c, avg(v) AS val FROM t GROUP BY a, b, c ORDER BY val DESC"

// testServer starts a server over httptest with the synthetic table loaded.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	resp := post(t, ts, "/v1/tables", map[string]any{
		"name": "t",
		"csv":  makeCSV(3, 3, 2),
		"kinds": map[string]string{
			"v": "float",
		},
	})
	if resp.code != http.StatusCreated {
		t.Fatalf("creating table: %d %s", resp.code, resp.raw)
	}
	return srv, ts
}

type response struct {
	code int
	raw  string
	body map[string]any
}

func do(t *testing.T, req *http.Request) response {
	t.Helper()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", req.Method, req.URL, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	out := response{code: resp.StatusCode, raw: string(raw)}
	if json.Unmarshal(raw, &out.body) != nil {
		out.body = nil
	}
	return out
}

func post(t *testing.T, ts *httptest.Server, path string, body any) response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", ts.URL+path, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return do(t, req)
}

func get(t *testing.T, ts *httptest.Server, path string) response {
	t.Helper()
	req, err := http.NewRequest("GET", ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	return do(t, req)
}

// openSession creates the standard test session and returns its id.
func openSession(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp := post(t, ts, "/v1/sessions", map[string]any{
		"sql": testSQL, "l": 8, "kmin": 1, "kmax": 6, "ds": []int{0, 1, 2},
	})
	if resp.code != http.StatusCreated && resp.code != http.StatusOK {
		t.Fatalf("creating session: %d %s", resp.code, resp.raw)
	}
	return resp.body["session"].(string)
}

// waitReady polls session info until the background store build finishes.
func waitReady(t *testing.T, ts *httptest.Server, id string) response {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp := get(t, ts, "/v1/sessions/"+id)
		if resp.code != http.StatusOK {
			t.Fatalf("session info: %d %s", resp.code, resp.raw)
		}
		if se, ok := resp.body["store_error"]; ok {
			t.Fatalf("store build failed: %v", se)
		}
		if resp.body["store_ready"] == true {
			return resp
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("store build did not finish in time")
	return response{}
}

func TestTableQuerySessionSolutionFlow(t *testing.T) {
	_, ts := testServer(t, Config{})

	if resp := get(t, ts, "/v1/tables"); resp.code != http.StatusOK || !strings.Contains(resp.raw, `"t"`) {
		t.Fatalf("listing tables: %d %s", resp.code, resp.raw)
	}
	resp := post(t, ts, "/v1/queries", map[string]any{"sql": testSQL, "limit": 3})
	if resp.code != http.StatusOK {
		t.Fatalf("query: %d %s", resp.code, resp.raw)
	}
	if n := resp.body["n"].(float64); n != 18 {
		t.Fatalf("query n = %v, want 18", n)
	}
	if rows := resp.body["rows"].([]any); len(rows) != 3 {
		t.Fatalf("query echoed %d rows, want 3", len(rows))
	}

	id := openSession(t, ts)
	info := waitReady(t, ts, id)
	if info.body["from_snapshot"] != false {
		t.Fatalf("fresh build marked from_snapshot: %s", info.raw)
	}
	if info.body["store_bytes"].(float64) <= 0 {
		t.Fatalf("store_bytes not reported: %s", info.raw)
	}

	sol := get(t, ts, "/v1/sessions/"+id+"/solution?k=3&d=1&expand=1")
	if sol.code != http.StatusOK {
		t.Fatalf("solution: %d %s", sol.code, sol.raw)
	}
	if sol.body["source"] != "store" {
		t.Fatalf("post-ready solution source = %v, want store", sol.body["source"])
	}
	clusters := sol.body["clusters"].([]any)
	if len(clusters) == 0 || len(clusters) > 3 {
		t.Fatalf("solution has %d clusters, want 1..3", len(clusters))
	}
	if _, ok := clusters[0].(map[string]any)["members"]; !ok {
		t.Fatalf("expand=1 did not include members: %s", sol.raw)
	}

	diff := get(t, ts, "/v1/sessions/"+id+"/diff?k1=2&d1=1&k2=3&d2=1")
	if diff.code != http.StatusOK {
		t.Fatalf("diff: %d %s", diff.code, diff.raw)
	}
	if len(diff.body["overlap"].([]any)) == 0 {
		t.Fatalf("diff overlap empty: %s", diff.raw)
	}

	guid := get(t, ts, "/v1/sessions/"+id+"/guidance")
	if guid.code != http.StatusOK {
		t.Fatalf("guidance: %d %s", guid.code, guid.raw)
	}
	if len(guid.body["series"].(map[string]any)) != 3 {
		t.Fatalf("guidance series: %s", guid.raw)
	}

	met := get(t, ts, "/metrics")
	if met.code != http.StatusOK {
		t.Fatalf("metrics: %d %s", met.code, met.raw)
	}
	sessions := met.body["sessions"].(map[string]any)
	if sessions["live"].(float64) != 1 {
		t.Fatalf("metrics live sessions = %v, want 1", sessions["live"])
	}
	if sessions["bytes"].(float64) <= 0 {
		t.Fatalf("metrics session bytes = %v, want > 0", sessions["bytes"])
	}
	reqs := met.body["requests"].(map[string]any)
	if _, ok := reqs["GET /v1/sessions/{id}/solution"]; !ok {
		t.Fatalf("metrics missing solution route: %s", met.raw)
	}
	if h := get(t, ts, "/healthz"); h.code != http.StatusOK || h.body["status"] != "ok" {
		t.Fatalf("healthz: %d %s", h.code, h.raw)
	}
}

func TestSolutionLiveFallbackBeforeReady(t *testing.T) {
	_, ts := testServer(t, Config{})
	id := openSession(t, ts)
	// The store builds in the background; a read racing it must succeed
	// either way and label its source.
	sol := get(t, ts, "/v1/sessions/"+id+"/solution?k=3&d=1")
	if sol.code != http.StatusOK {
		t.Fatalf("solution during build: %d %s", sol.code, sol.raw)
	}
	if src := sol.body["source"]; src != "live" && src != "store" {
		t.Fatalf("source = %v", src)
	}
	waitReady(t, ts, id)
	after := get(t, ts, "/v1/sessions/"+id+"/solution?k=3&d=1")
	if after.body["source"] != "store" {
		t.Fatalf("post-ready source = %v, want store", after.body["source"])
	}
	// Store and live solutions agree on the objective (the store replays the
	// same Hybrid sweep).
	if sol.body["objective"].(float64) != after.body["objective"].(float64) {
		t.Fatalf("live objective %v != store objective %v", sol.body["objective"], after.body["objective"])
	}
}

func TestHandlerErrorPaths(t *testing.T) {
	_, ts := testServer(t, Config{})
	id := openSession(t, ts)
	waitReady(t, ts, id)

	cases := []struct {
		name string
		path string
		code int
		want string
	}{
		{"unknown session", "/v1/sessions/s-nope/solution?k=1&d=1", http.StatusNotFound, "unknown session"},
		{"unknown session info", "/v1/sessions/s-nope", http.StatusNotFound, "unknown session"},
		{"missing k", "/v1/sessions/" + id + "/solution?d=1", http.StatusBadRequest, "missing query parameter"},
		{"malformed k", "/v1/sessions/" + id + "/solution?k=abc&d=1", http.StatusBadRequest, "bad query parameter"},
		{"malformed d", "/v1/sessions/" + id + "/solution?k=2&d=1.5", http.StatusBadRequest, "bad query parameter"},
		{"k over range", "/v1/sessions/" + id + "/solution?k=99&d=1", http.StatusBadRequest, "outside the session's range"},
		{"k under range", "/v1/sessions/" + id + "/solution?k=0&d=1", http.StatusBadRequest, "outside the session's range"},
		{"d not precomputed", "/v1/sessions/" + id + "/solution?k=2&d=9", http.StatusBadRequest, "not in the session's precomputed set"},
		{"diff missing param", "/v1/sessions/" + id + "/diff?k1=2&d1=1&k2=3", http.StatusBadRequest, "missing query parameter"},
		{"diff bad range", "/v1/sessions/" + id + "/diff?k1=2&d1=1&k2=99&d2=1", http.StatusBadRequest, "outside the session's range"},
	}
	for _, tc := range cases {
		resp := get(t, ts, tc.path)
		if resp.code != tc.code {
			t.Errorf("%s: code = %d, want %d (%s)", tc.name, resp.code, tc.code, resp.raw)
		}
		if !strings.Contains(resp.raw, tc.want) {
			t.Errorf("%s: body %q does not mention %q", tc.name, resp.raw, tc.want)
		}
	}

	for _, tc := range []struct {
		name string
		body map[string]any
		want string
	}{
		{"missing sql", map[string]any{"l": 5}, "missing sql"},
		{"bad l", map[string]any{"sql": testSQL, "l": -1}, "l must be"},
		{"l over n", map[string]any{"sql": testSQL, "l": 1000}, "exceeds the 18 result groups"},
		{"bad sql", map[string]any{"sql": "DROP TABLE t", "l": 5}, "creating session"},
		{"bad k range", map[string]any{"sql": testSQL, "l": 5, "kmin": 9, "kmax": 2}, "bad k range"},
		{"absurd kmax", map[string]any{"sql": testSQL, "l": 5, "kmax": 1 << 40}, "exceeds the server limit"},
		{"dup ds", map[string]any{"sql": testSQL, "l": 5, "ds": []int{1, 1}}, "duplicate D"},
	} {
		resp := post(t, ts, "/v1/sessions", tc.body)
		if resp.code != http.StatusBadRequest {
			t.Errorf("%s: code = %d, want 400 (%s)", tc.name, resp.code, resp.raw)
		}
		if !strings.Contains(resp.raw, tc.want) {
			t.Errorf("%s: body %q does not mention %q", tc.name, resp.raw, tc.want)
		}
	}

	if resp := post(t, ts, "/v1/tables", map[string]any{"name": "x"}); resp.code != http.StatusBadRequest {
		t.Errorf("table without content: %d", resp.code)
	}
	if resp := post(t, ts, "/v1/tables", map[string]any{
		"name": "x", "csv": "a,v\np,1\n", "rows": [][]string{{"q", "2"}},
	}); resp.code != http.StatusBadRequest {
		t.Errorf("table with both csv and rows must be rejected, got %d %s", resp.code, resp.raw)
	}
	if resp := post(t, ts, "/v1/tables", map[string]any{
		"name": "x", "rows": [][]string{{"q", "2"}},
	}); resp.code != http.StatusBadRequest || !strings.Contains(resp.raw, "need attrs") {
		t.Errorf("inline rows without attrs must be rejected, got %d %s", resp.code, resp.raw)
	}
	if resp := post(t, ts, "/v1/tables", map[string]any{
		"name": "x", "csv": "a,v\np,1\n", "kinds": map[string]string{"v": "complex"},
	}); resp.code != http.StatusBadRequest || !strings.Contains(resp.raw, "unknown kind") {
		t.Errorf("bad kind: %d %s", resp.code, resp.raw)
	}
	if resp := post(t, ts, "/v1/queries", map[string]any{"sql": "SELECT"}); resp.code != http.StatusBadRequest {
		t.Errorf("bad query: %d", resp.code)
	}
}

// gob wire twins of precompute's unexported snapshot types: gob matches
// struct types structurally (by name and field names), so the test can
// fabricate a snapshot whose sweep bottomed out above kmin — the stored
// "k below smallest sweep" state the handler must turn into a 422.
type snapshot struct {
	L, KMin, KMax int
	Ds            []int
	PerD          map[int]snapshotEntry
	NumClusters   int
}

type snapshotEntry struct {
	Intervals []intervaltree.Interval
	Avg       []float64
	MinSize   int
}

func TestSolutionBelowSmallestSweep(t *testing.T) {
	// Run a real session once to learn its cluster count and snapshot file
	// name (which embeds the data fingerprint), then overwrite that
	// snapshot with a doctored one whose intervals all start at k=3.
	dir := t.TempDir()
	_, probe := testServer(t, Config{SnapshotDir: dir})
	id := openSession(t, probe)
	info := waitReady(t, probe, id)
	numClusters := int(info.body["clusters"].(float64))
	files, err := filepath.Glob(filepath.Join(dir, "*.store"))
	if err != nil || len(files) != 1 {
		t.Fatalf("snapshot files = %v (err %v), want exactly one", files, err)
	}

	snap := snapshot{
		L: 8, KMin: 1, KMax: 6, Ds: []int{0, 1, 2},
		PerD:        make(map[int]snapshotEntry),
		NumClusters: numClusters,
	}
	for _, d := range snap.Ds {
		snap.PerD[d] = snapshotEntry{
			Intervals: []intervaltree.Interval{{Lo: 3, Hi: 6, Payload: 0}},
			Avg:       make([]float64, 6),
			MinSize:   3,
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	_, ts := testServer(t, Config{SnapshotDir: dir})
	id2 := openSession(t, ts)
	if id2 != id {
		t.Fatalf("session id not deterministic: %q vs %q", id2, id)
	}
	info = waitReady(t, ts, id)
	if info.body["from_snapshot"] != true {
		t.Fatalf("doctored snapshot not loaded: %s", info.raw)
	}
	resp := get(t, ts, "/v1/sessions/"+id+"/solution?k=2&d=1")
	if resp.code != http.StatusUnprocessableEntity {
		t.Fatalf("k below smallest sweep: code = %d, want 422 (%s)", resp.code, resp.raw)
	}
	if !strings.Contains(resp.raw, "no solution") {
		t.Fatalf("422 body: %s", resp.raw)
	}
	if resp := get(t, ts, "/v1/sessions/"+id+"/solution?k=3&d=1"); resp.code != http.StatusOK {
		t.Fatalf("k at smallest sweep: %d %s", resp.code, resp.raw)
	}
}

func TestSnapshotWarmRestart(t *testing.T) {
	dir := t.TempDir()

	_, ts := testServer(t, Config{SnapshotDir: dir})
	id := openSession(t, ts)
	info := waitReady(t, ts, id)
	if info.body["from_snapshot"] != false {
		t.Fatal("first build must sweep, not load a snapshot")
	}
	want := get(t, ts, "/v1/sessions/"+id+"/solution?k=3&d=1")

	files, err := filepath.Glob(filepath.Join(dir, "*.store"))
	if err != nil || len(files) != 1 {
		t.Fatalf("snapshot files = %v (err %v), want exactly one", files, err)
	}

	// "Restart": a fresh server over the same snapshot dir decodes instead
	// of re-sweeping.
	_, ts2 := testServer(t, Config{SnapshotDir: dir})
	id2 := openSession(t, ts2)
	if id2 != id {
		t.Fatalf("warm restart changed the session id: %q vs %q", id2, id)
	}
	info2 := waitReady(t, ts2, id2)
	if info2.body["from_snapshot"] != true {
		t.Fatalf("warm restart did not use the snapshot: %s", info2.raw)
	}
	// Decoded stores report zero ReplayStats by design (the sweep ran in a
	// previous process).
	rs := info2.body["replay_stats"].(map[string]any)
	if rs["Replays"].(float64) != 0 {
		t.Fatalf("decoded store reports replays: %s", info2.raw)
	}
	got := get(t, ts2, "/v1/sessions/"+id2+"/solution?k=3&d=1")
	if got.body["objective"].(float64) != want.body["objective"].(float64) {
		t.Fatalf("snapshot solution objective %v != fresh %v", got.body["objective"], want.body["objective"])
	}

	// Changed table data under the same query text must NOT reuse the
	// snapshot: the file name carries the answer-set fingerprint.
	_, ts3 := testServer(t, Config{SnapshotDir: dir})
	if resp := post(t, ts3, "/v1/tables", map[string]any{
		"name": "t", "csv": makeCSV(3, 3, 3), "kinds": map[string]string{"v": "float"},
	}); resp.code != http.StatusCreated {
		t.Fatalf("replacing table: %d %s", resp.code, resp.raw)
	}
	id3 := openSession(t, ts3)
	if id3 != id {
		t.Fatalf("session id should depend only on (sql, params): %q vs %q", id3, id)
	}
	info3 := waitReady(t, ts3, id3)
	if info3.body["from_snapshot"] != false {
		t.Fatal("stale snapshot served for changed table data")
	}
}

func TestSessionDedupeAndEviction(t *testing.T) {
	srv, ts := testServer(t, Config{MaxSessions: 1})

	id := openSession(t, ts)
	again := post(t, ts, "/v1/sessions", map[string]any{
		"sql": testSQL, "l": 8, "kmin": 1, "kmax": 6, "ds": []int{0, 1, 2},
	})
	if again.code != http.StatusOK || again.body["session"] != id || again.body["reused"] != true {
		t.Fatalf("identical request did not reuse the session: %d %s", again.code, again.raw)
	}

	// A different session evicts the first (MaxSessions: 1) and cancels its
	// background build.
	other := post(t, ts, "/v1/sessions", map[string]any{
		"sql": testSQL, "l": 4, "kmin": 1, "kmax": 3, "ds": []int{1},
	})
	if other.code != http.StatusCreated {
		t.Fatalf("second session: %d %s", other.code, other.raw)
	}
	if resp := get(t, ts, "/v1/sessions/"+id+"/solution?k=2&d=1"); resp.code != http.StatusNotFound {
		t.Fatalf("evicted session still served: %d %s", resp.code, resp.raw)
	}
	_, _, stats := srv.sessions.occupancy()
	if stats.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", stats.Evictions)
	}
	if stats.Builds != 2 {
		t.Fatalf("builds = %d, want 2", stats.Builds)
	}
}
