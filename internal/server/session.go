package server

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qagview"
	"qagview/internal/obs"
)

// session is one live exploration context: a (query, L, grid) spine plus a
// chain of per-generation views. The spine fields are immutable; the current
// view is published through an atomic pointer, so reads never lock, and
// refreshes (live tables changed under the session) swap in a successor view
// built by the incremental-maintenance subsystem.
type session struct {
	ID         string
	SQL        string
	Table      string   // first FROM relation, kept for display
	Tables     []string // every FROM relation; their summed generation drives staleness
	L          int
	KMin, KMax int
	Ds         []int

	// live owns the delta-maintained index and warm sweeper chain. It is
	// single-writer: only the refresh critical section (refreshMu, entered
	// through the manager's singleflight) and the one in-flight store build
	// between a view's creation and its ready-close may touch it.
	live      *qagview.Live
	refreshMu sync.Mutex
	dead      atomic.Bool

	view atomic.Pointer[sessionView]

	created time.Time
}

// sessionView is one data generation's immutable serving state: the
// summarizer snapshot, the data version it reflects, and the store build it
// serves from. Views whose data is byte-identical (a no-op refresh: an
// append the query filters out) share one storeBuild, so the sweep —
// finished or still running — carries across version bumps untouched.
type sessionView struct {
	sum         *qagview.Summarizer
	dataVersion uint64
	dataFP      string
	build       *storeBuild
}

// storeBuild is one background (k, D) sweep. Result fields are written
// exactly once, before ready closes; readers that find ready open fall back
// to live summarization, so no read ever blocks on a build.
type storeBuild struct {
	ready        chan struct{}
	store        *qagview.Store
	buildErr     error
	fromSnapshot bool

	cancel context.CancelFunc
}

func newStoreBuild(cancel context.CancelFunc) *storeBuild {
	return &storeBuild{ready: make(chan struct{}), cancel: cancel}
}

// storeIfReady returns the precomputed store without blocking: (nil, nil,
// false) while the background build is still running.
func (v *sessionView) storeIfReady() (*qagview.Store, error, bool) {
	select {
	case <-v.build.ready:
		return v.build.store, v.build.buildErr, true
	default:
		return nil, nil, false
	}
}

// currentView returns the session's live view.
func (s *session) currentView() *sessionView { return s.view.Load() }

// shutdown cancels the session's background work (eviction, explicit
// delete). A refresh racing shutdown re-checks dead after swapping and
// cancels its own view, so no build outlives the session.
func (s *session) shutdown() {
	s.dead.Store(true)
	if v := s.view.Load(); v != nil {
		v.build.cancel()
	}
}

// sessionKey derives the dedupe key of a session request: identical
// (query, L, grid) tuples map to the same session.
func sessionKey(sql string, l, kMin, kMax int, ds []int) string {
	sorted := append([]int(nil), ds...)
	sort.Ints(sorted)
	var sb strings.Builder
	sb.WriteString(sql)
	fmt.Fprintf(&sb, "|L=%d|k=[%d,%d]|ds=", l, kMin, kMax)
	for _, d := range sorted {
		sb.WriteString(strconv.Itoa(d))
		sb.WriteByte(',')
	}
	sum := sha256.Sum256([]byte(sb.String()))
	return hex.EncodeToString(sum[:])
}

// resultFingerprint hashes the ranked answer set (attributes, rows, exact
// value bits) a session view is built from.
func resultFingerprint(res *qagview.Result) string {
	h := sha256.New()
	for _, a := range res.GroupBy {
		h.Write([]byte(a))
		h.Write([]byte{0})
	}
	for i, row := range res.Rows {
		for _, cell := range row {
			h.Write([]byte(cell))
			h.Write([]byte{0})
		}
		var bits [8]byte
		binary.LittleEndian.PutUint64(bits[:], math.Float64bits(res.Vals[i]))
		h.Write(bits[:])
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// managerStats counts session-manager events for /metrics.
type managerStats struct {
	Builds        int64 `json:"builds"`
	BuildErrors   int64 `json:"build_errors"`
	Deduped       int64 `json:"deduped"`
	Evictions     int64 `json:"evictions"`
	Deletes       int64 `json:"deletes"`
	Refreshes     int64 `json:"refreshes"`
	RefreshNoops  int64 `json:"refresh_noops"`
	RefreshErrors int64 `json:"refresh_errors"`
	SnapshotLoads int64 `json:"snapshot_loads"`
	SnapshotSaves int64 `json:"snapshot_saves"`
}

// sessionManager owns the LRU of live sessions. Summarizer construction and
// session refreshes are deduplicated through a singleflight group; precompute
// stores build in one background goroutine per view, cancelled on eviction or
// supersession via the context threaded into Precompute.
type sessionManager struct {
	mu    sync.Mutex
	cache *lruCache // session id -> *session
	stats managerStats

	flight      flightGroup
	snapshotDir string

	// tracer roots background-build traces (builds have no request trace to
	// attach to). Set by Server.New; nil in bare-manager tests, where every
	// obs call is a nil-safe no-op.
	tracer *obs.Tracer

	// wg tracks background store-build goroutines so close can wait for
	// them after cancelling: graceful shutdown must not exit while a sweep
	// still touches a Live maintainer.
	wg sync.WaitGroup

	// removing marks an explicit DELETE in progress (under mu), so the
	// eviction hook can tell cache-pressure evictions from user deletes and
	// keep the evictions gauge meaningful for LRU sizing.
	removing bool
}

func newSessionManager(maxSessions int, maxBytes int64, snapshotDir string) *sessionManager {
	m := &sessionManager{snapshotDir: snapshotDir}
	m.cache = newLRUCache(maxSessions, maxBytes, func(_ string, v any) {
		// Runs under m.mu (all cache mutations do). Cancelling an in-flight
		// build makes Precompute return ctx.Err() at its next per-D check.
		if !m.removing {
			m.stats.Evictions++
		}
		v.(*session).shutdown()
	})
	return m
}

// get returns the live session with the given id, refreshing its LRU slot.
func (m *sessionManager) get(id string) (*session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.cache.Get(id)
	if !ok {
		return nil, false
	}
	return v.(*session), true
}

// remove drops the session (explicit DELETE), cancelling its background
// work through the eviction hook.
func (m *sessionManager) remove(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.cache.Get(id); !ok {
		return false
	}
	m.stats.Deletes++
	m.removing = true
	m.cache.Remove(id)
	m.removing = false
	return true
}

// open returns the live session for (sql, L, grid), building it if needed.
// Concurrent identical requests share one build; reused reports whether the
// caller got a session someone else created (live cache hit or singleflight
// duplicate).
func (m *sessionManager) open(ctx context.Context, db *db, sql string, l, kMin, kMax int, ds []int) (sess *session, reused bool, err error) {
	key := sessionKey(sql, l, kMin, kMax, ds)
	id := "s-" + key[:16]
	if s, ok := m.get(id); ok {
		return s, true, nil
	}
	v, err, shared := m.flight.Do(key, func() (any, error) {
		// A duplicate that lost the fast-path race may still find the
		// session built by the previous flight owner.
		if s, ok := m.get(id); ok {
			return s, nil
		}
		return m.build(ctx, db, id, sql, l, kMin, kMax, ds)
	})
	if err != nil {
		return nil, false, err
	}
	if shared {
		m.mu.Lock()
		m.stats.Deduped++
		m.mu.Unlock()
	}
	return v.(*session), shared, nil
}

// build runs the expensive synchronous part of session creation (query +
// cluster-space construction), registers the session, and kicks off the
// background store build. Callers hold the singleflight slot for key, so at
// most one build per key runs at a time.
// The ctx bounds only the synchronous query (the caller's request deadline;
// duplicate singleflight callers share the first caller's fate); the
// background sweep runs under its own cancel-on-eviction context.
func (m *sessionManager) build(ctx context.Context, db *db, id, sql string, l, kMin, kMax int, ds []int) (*session, error) {
	// Read the table generation before running the query: if an append races
	// in between, the view is labeled older than the data it may contain and
	// the first read triggers a refresh that diffs to a no-op — never the
	// other way around (stale data labeled fresh).
	res, gen, err := db.queryVersioned(ctx, sql)
	if err != nil {
		return nil, err
	}
	if res.N() == 0 {
		return nil, fmt.Errorf("query returned no groups")
	}
	if l > res.N() {
		return nil, fmt.Errorf("l = %d exceeds the %d result groups", l, res.N())
	}
	sum, err := qagview.NewSummarizer(res, l)
	if err != nil {
		return nil, err
	}
	// Validate the (k, D) grid now, while the client is still listening:
	// these would otherwise surface only as a background build error.
	seen := make(map[int]bool, len(ds))
	for _, d := range ds {
		if d < 0 || d > sum.M() {
			return nil, fmt.Errorf("d = %d out of range [0, %d]", d, sum.M())
		}
		if seen[d] {
			return nil, fmt.Errorf("duplicate D = %d", d)
		}
		seen[d] = true
	}
	buildCtx, cancel := context.WithCancel(context.Background())
	s := &session{
		ID: id, SQL: sql, Table: res.Table,
		Tables: append([]string(nil), res.Tables...),
		L:      l, KMin: kMin, KMax: kMax,
		Ds:      append([]int(nil), ds...),
		live:    qagview.NewLive(sum),
		created: time.Now(),
	}
	sort.Ints(s.Ds)
	v := &sessionView{
		sum:         sum,
		dataVersion: gen,
		dataFP:      resultFingerprint(res),
		build:       newStoreBuild(cancel),
	}
	s.view.Store(v)
	m.mu.Lock()
	m.stats.Builds++
	m.cache.Add(id, s, sum.ApproxBytes())
	m.mu.Unlock()
	m.wg.Add(1)
	go m.buildStore(buildCtx, s, v)
	return s, nil
}

// freshen returns the session's current view, first reconciling it with the
// table's data generation: the first read of a stale session re-runs the
// query, applies the answer-set delta through the incremental maintenance
// subsystem, supersedes any in-flight sweep (cancel + wait), and kicks off
// the successor store build. Concurrent stale reads share one refresh
// through the singleflight group.
func (m *sessionManager) freshen(ctx context.Context, db *db, s *session) (*sessionView, error) {
	cur := s.currentView()
	if s.dead.Load() || cur.dataVersion >= db.generationSum(s.Tables) {
		return cur, nil
	}
	v, err, _ := m.flight.Do("refresh|"+s.ID, func() (any, error) {
		s.refreshMu.Lock()
		defer s.refreshMu.Unlock()
		cur := s.currentView()
		want := db.generationSum(s.Tables)
		if s.dead.Load() || cur.dataVersion >= want {
			return cur, nil // raced with another refresh or a delete
		}
		// Refreshes run uncancelled: the result is shared by every concurrent
		// stale reader through the singleflight group, so one caller's
		// deadline must not fail the others' reads. WithoutCancel keeps the
		// flight owner's trace span (a context value) while dropping its
		// deadline — losers' reads were never traced into this refresh.
		rctx, rsp := obs.StartSpan(context.WithoutCancel(ctx), "session.refresh")
		defer rsp.End()
		rsp.SetAttr("session", s.ID)
		res, err := db.query(rctx, s.SQL)
		if err != nil {
			m.countRefresh(&m.stats.RefreshErrors)
			return nil, fmt.Errorf("refresh query: %w", err)
		}
		if res.N() < s.L {
			m.countRefresh(&m.stats.RefreshErrors)
			return nil, fmt.Errorf("refreshed result has %d groups, below the session's l = %d", res.N(), s.L)
		}
		fp := resultFingerprint(res)
		if fp == cur.dataFP {
			// The answer set is byte-identical (e.g. the append fell below
			// the query's HAVING threshold): bump the version label, sharing
			// the current store build — finished or still sweeping — without
			// cancelling anything.
			nv := &sessionView{sum: cur.sum, dataVersion: want, dataFP: fp, build: cur.build}
			s.view.Store(nv)
			m.countRefresh(&m.stats.RefreshNoops)
			return nv, nil
		}
		// Supersede the current generation's sweep: cancel it and wait for
		// the build goroutine to let go of the maintainer (Live is
		// single-writer; ready closes when the build returns).
		cur.build.cancel()
		//qag:allow lockscope deliberate: refreshMu serializes refreshes per session, and the superseded build was just cancelled, so ready closes promptly; waiting here is what guarantees Live's single-writer contract
		<-cur.build.ready
		if _, _, err := s.live.RefreshCtx(rctx, res); err != nil {
			m.countRefresh(&m.stats.RefreshErrors)
			return nil, fmt.Errorf("refresh: %w", err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		nv := &sessionView{
			sum:         s.live.Summarizer(),
			dataVersion: want,
			dataFP:      fp,
			build:       newStoreBuild(cancel),
		}
		s.view.Store(nv)
		if s.dead.Load() {
			cancel() // lost a race with eviction; don't leak the build
		}
		m.mu.Lock()
		m.stats.Refreshes++
		m.cache.Resize(s.ID, nv.sum.ApproxBytes())
		m.mu.Unlock()
		m.wg.Add(1)
		go m.buildStore(ctx, s, nv)
		return nv, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*sessionView), nil
}

func (m *sessionManager) countRefresh(counter *int64) {
	m.mu.Lock()
	*counter++
	m.mu.Unlock()
}

// buildStore materializes a view's precompute store in the background: from
// a snapshot when one exists for this session key and data fingerprint (warm
// restart, no sweep), otherwise by running the cancellable sweep — through
// the warm sweeper chain, so a refreshed session reuses the previous
// generation's replay state — and snapshotting the result for the next
// restart.
func (m *sessionManager) buildStore(ctx context.Context, s *session, v *sessionView) {
	defer m.wg.Done()
	defer close(v.build.ready)
	// Background builds run on a cancel-on-eviction context with no request
	// attached, so they root their own trace (recorded only while the global
	// gate is on; nil otherwise).
	ctx, btr := m.tracer.StartTrace(ctx, "session.build_store", false)
	if btr != nil {
		btr.Root.SetAttr("session", s.ID)
		btr.Root.SetInt("data_version", int64(v.dataVersion))
		defer m.tracer.Finish(btr)
	}
	// A panic here would kill the whole process (background goroutine), so
	// degrade to a build error: the session keeps serving via the live path.
	defer func() {
		if r := recover(); r != nil {
			v.build.buildErr = fmt.Errorf("store build panicked: %v", r)
			m.mu.Lock()
			m.stats.BuildErrors++
			m.mu.Unlock()
		}
	}()
	if st, ok := m.loadSnapshot(s, v); ok {
		v.build.store, v.build.fromSnapshot = st, true
		m.resize(s, v)
		return
	}
	st, err := s.live.Precompute(s.KMin, s.KMax, s.Ds,
		qagview.WithPrecomputeContext(ctx),
		qagview.WithStoreGeneration(v.dataVersion))
	if err != nil {
		v.build.buildErr = err
		if !errors.Is(err, context.Canceled) {
			// Cancellation is routine eviction/supersession cleanup (already
			// counted), not a failure signal.
			m.mu.Lock()
			m.stats.BuildErrors++
			m.mu.Unlock()
		}
		return
	}
	v.build.store = st
	m.resize(s, v)
	m.saveSnapshot(s, v, st)
}

// resize re-accounts the session's cache cost once its store exists.
func (m *sessionManager) resize(s *session, v *sessionView) {
	m.mu.Lock()
	m.cache.Resize(s.ID, v.sum.ApproxBytes()+v.build.store.SizeBytes())
	m.mu.Unlock()
}

// snapshotPath names a view's snapshot file: session id, data generation,
// and content fingerprint. Keying by generation keeps every generation's
// sweep on disk (the freshest wins on restart); the fingerprint is what
// load matches on, since generation counters restart with the process.
func (m *sessionManager) snapshotPath(s *session, v *sessionView) string {
	return filepath.Join(m.snapshotDir, fmt.Sprintf("%s-g%d-%s.store", s.ID, v.dataVersion, v.dataFP))
}

// loadSnapshot finds a snapshot whose content fingerprint matches the view's
// data, regardless of which generation number wrote it (a warm restart
// resets generation counters but not table contents).
func (m *sessionManager) loadSnapshot(s *session, v *sessionView) (*qagview.Store, bool) {
	if m.snapshotDir == "" {
		return nil, false
	}
	matches, err := filepath.Glob(filepath.Join(m.snapshotDir, s.ID+"-g*-"+v.dataFP+".store"))
	if err != nil || len(matches) == 0 {
		return nil, false
	}
	// All matches hold identical data (same fingerprint); prefer the highest
	// generation number — parsed, not lexicographic, so g10 beats g9 — for
	// the freshest stamp when GC left more than one behind.
	best := matches[0]
	bestGen := snapshotGen(best, s.ID)
	for _, mpath := range matches[1:] {
		if g := snapshotGen(mpath, s.ID); g > bestGen {
			best, bestGen = mpath, g
		}
	}
	f, err := os.Open(best)
	if err != nil {
		return nil, false
	}
	defer f.Close()
	st, err := v.sum.DecodeStore(f)
	if err != nil {
		// Stale or foreign snapshot (e.g. the table changed under the same
		// query text): fall back to a fresh sweep, which overwrites it.
		return nil, false
	}
	if st.KMin != s.KMin || st.KMax != s.KMax || len(st.Ds) != len(s.Ds) {
		return nil, false
	}
	for i, d := range st.Ds {
		if s.Ds[i] != d {
			return nil, false
		}
	}
	m.mu.Lock()
	m.stats.SnapshotLoads++
	m.mu.Unlock()
	return st, true
}

// snapshotGen extracts the generation number from a snapshot filename
// ({session}-g{gen}-{fingerprint}.store); malformed names rank lowest.
func snapshotGen(path, sessionID string) uint64 {
	base := strings.TrimPrefix(filepath.Base(path), sessionID+"-g")
	digits, _, ok := strings.Cut(base, "-")
	if !ok {
		return 0
	}
	g, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0
	}
	return g
}

func (m *sessionManager) saveSnapshot(s *session, v *sessionView, st *qagview.Store) {
	if m.snapshotDir == "" {
		return
	}
	tmp, err := os.CreateTemp(m.snapshotDir, s.ID+".tmp*")
	if err != nil {
		return
	}
	defer os.Remove(tmp.Name())
	if err := st.Encode(tmp); err != nil {
		tmp.Close()
		return
	}
	if err := tmp.Close(); err != nil {
		return
	}
	target := m.snapshotPath(s, v)
	if err := os.Rename(tmp.Name(), target); err != nil {
		return
	}
	// Garbage-collect superseded generations: without this, a session over a
	// table under routine appends would grow one store file per refresh
	// forever. Open readers on unix keep their fd across the unlink, so a
	// concurrent warm-restart load racing the delete still decodes cleanly
	// (or misses and re-sweeps).
	if old, err := filepath.Glob(filepath.Join(m.snapshotDir, s.ID+"-g*.store")); err == nil {
		for _, f := range old {
			if f != target {
				_ = os.Remove(f)
			}
		}
	}
	m.mu.Lock()
	m.stats.SnapshotSaves++
	m.mu.Unlock()
}

// occupancy reports the cache gauges for /metrics.
func (m *sessionManager) occupancy() (entries int, bytes int64, stats managerStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cache.Len(), m.cache.Bytes(), m.stats
}

// close cancels every live session's background work and waits for the
// build goroutines to return. Safe to call more than once.
func (m *sessionManager) close() {
	m.mu.Lock()
	for m.cache.Len() > 0 {
		m.cache.removeElement(m.cache.ll.Back())
	}
	m.mu.Unlock()
	// Outside the lock: cancelled builds may still need m.mu to count their
	// cancellation before they return.
	m.wg.Wait()
}
