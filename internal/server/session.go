package server

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"qagview"
)

// session is one live exploration context: a Summarizer for (query, L) plus
// a lazily built precompute Store over its (k, D) grid. The summarizer and
// the immutable fields are safe for concurrent reads; the store is published
// exactly once, before ready closes.
type session struct {
	ID         string
	SQL        string
	L          int
	KMin, KMax int
	Ds         []int

	sum *qagview.Summarizer
	// dataFP fingerprints the query result the summarizer was built from;
	// snapshot files carry it so a warm restart over changed table data
	// re-sweeps instead of serving stale solutions.
	dataFP string

	// ready closes when the background build finishes (store or buildErr
	// set). Readers that find it open fall back to live summarization, so no
	// read ever blocks on a build — this session's or another's.
	ready        chan struct{}
	store        *qagview.Store
	buildErr     error
	fromSnapshot bool

	cancel  context.CancelFunc
	created time.Time
}

// storeIfReady returns the precomputed store without blocking: (nil, nil,
// false) while the background build is still running.
func (s *session) storeIfReady() (*qagview.Store, error, bool) {
	select {
	case <-s.ready:
		return s.store, s.buildErr, true
	default:
		return nil, nil, false
	}
}

// sessionKey derives the dedupe key of a session request: identical
// (query, L, grid) tuples map to the same session.
func sessionKey(sql string, l, kMin, kMax int, ds []int) string {
	sorted := append([]int(nil), ds...)
	sort.Ints(sorted)
	var sb strings.Builder
	sb.WriteString(sql)
	fmt.Fprintf(&sb, "|L=%d|k=[%d,%d]|ds=", l, kMin, kMax)
	for _, d := range sorted {
		sb.WriteString(strconv.Itoa(d))
		sb.WriteByte(',')
	}
	sum := sha256.Sum256([]byte(sb.String()))
	return hex.EncodeToString(sum[:])
}

// resultFingerprint hashes the ranked answer set (attributes, rows, exact
// value bits) a session is built from.
func resultFingerprint(res *qagview.Result) string {
	h := sha256.New()
	for _, a := range res.GroupBy {
		h.Write([]byte(a))
		h.Write([]byte{0})
	}
	for i, row := range res.Rows {
		for _, cell := range row {
			h.Write([]byte(cell))
			h.Write([]byte{0})
		}
		var bits [8]byte
		binary.LittleEndian.PutUint64(bits[:], math.Float64bits(res.Vals[i]))
		h.Write(bits[:])
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// managerStats counts session-manager events for /metrics.
type managerStats struct {
	Builds        int64 `json:"builds"`
	BuildErrors   int64 `json:"build_errors"`
	Deduped       int64 `json:"deduped"`
	Evictions     int64 `json:"evictions"`
	SnapshotLoads int64 `json:"snapshot_loads"`
	SnapshotSaves int64 `json:"snapshot_saves"`
}

// sessionManager owns the LRU of live sessions. Summarizer construction is
// deduplicated through a singleflight group; precompute stores build in one
// background goroutine per session, cancelled on eviction via the context
// threaded into Precompute.
type sessionManager struct {
	mu    sync.Mutex
	cache *lruCache // session id -> *session
	stats managerStats

	flight      flightGroup
	snapshotDir string
}

func newSessionManager(maxSessions int, maxBytes int64, snapshotDir string) *sessionManager {
	m := &sessionManager{snapshotDir: snapshotDir}
	m.cache = newLRUCache(maxSessions, maxBytes, func(_ string, v any) {
		// Runs under m.mu (all cache mutations do). Cancelling an in-flight
		// build makes Precompute return ctx.Err() at its next per-D check.
		m.stats.Evictions++
		v.(*session).cancel()
	})
	return m
}

// get returns the live session with the given id, refreshing its LRU slot.
func (m *sessionManager) get(id string) (*session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.cache.Get(id)
	if !ok {
		return nil, false
	}
	return v.(*session), true
}

// open returns the live session for (sql, L, grid), building it if needed.
// Concurrent identical requests share one build; reused reports whether the
// caller got a session someone else created (live cache hit or singleflight
// duplicate).
func (m *sessionManager) open(db *db, sql string, l, kMin, kMax int, ds []int) (sess *session, reused bool, err error) {
	key := sessionKey(sql, l, kMin, kMax, ds)
	id := "s-" + key[:16]
	if s, ok := m.get(id); ok {
		return s, true, nil
	}
	v, err, shared := m.flight.Do(key, func() (any, error) {
		// A duplicate that lost the fast-path race may still find the
		// session built by the previous flight owner.
		if s, ok := m.get(id); ok {
			return s, nil
		}
		return m.build(db, id, sql, l, kMin, kMax, ds)
	})
	if err != nil {
		return nil, false, err
	}
	if shared {
		m.mu.Lock()
		m.stats.Deduped++
		m.mu.Unlock()
	}
	return v.(*session), shared, nil
}

// build runs the expensive synchronous part of session creation (query +
// cluster-space construction), registers the session, and kicks off the
// background store build. Callers hold the singleflight slot for key, so at
// most one build per key runs at a time.
func (m *sessionManager) build(db *db, id, sql string, l, kMin, kMax int, ds []int) (*session, error) {
	res, err := db.query(sql)
	if err != nil {
		return nil, err
	}
	if res.N() == 0 {
		return nil, fmt.Errorf("query returned no groups")
	}
	if l > res.N() {
		return nil, fmt.Errorf("l = %d exceeds the %d result groups", l, res.N())
	}
	sum, err := qagview.NewSummarizer(res, l)
	if err != nil {
		return nil, err
	}
	// Validate the (k, D) grid now, while the client is still listening:
	// these would otherwise surface only as a background build error.
	seen := make(map[int]bool, len(ds))
	for _, d := range ds {
		if d < 0 || d > sum.M() {
			return nil, fmt.Errorf("d = %d out of range [0, %d]", d, sum.M())
		}
		if seen[d] {
			return nil, fmt.Errorf("duplicate D = %d", d)
		}
		seen[d] = true
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &session{
		ID: id, SQL: sql, L: l, KMin: kMin, KMax: kMax,
		Ds:      append([]int(nil), ds...),
		sum:     sum,
		dataFP:  resultFingerprint(res),
		ready:   make(chan struct{}),
		cancel:  cancel,
		created: time.Now(),
	}
	sort.Ints(s.Ds)
	m.mu.Lock()
	m.stats.Builds++
	m.cache.Add(id, s, sum.ApproxBytes())
	m.mu.Unlock()
	go m.buildStore(ctx, s)
	return s, nil
}

// buildStore materializes the session's precompute store in the background:
// from a snapshot when one exists for this session key (warm restart, no
// sweep), otherwise by running the cancellable sweep and snapshotting the
// result for the next restart.
func (m *sessionManager) buildStore(ctx context.Context, s *session) {
	defer close(s.ready)
	// A panic here would kill the whole process (background goroutine), so
	// degrade to a build error: the session keeps serving via the live path.
	defer func() {
		if r := recover(); r != nil {
			s.buildErr = fmt.Errorf("store build panicked: %v", r)
			m.mu.Lock()
			m.stats.BuildErrors++
			m.mu.Unlock()
		}
	}()
	if st, ok := m.loadSnapshot(s); ok {
		s.store, s.fromSnapshot = st, true
		m.resize(s)
		return
	}
	st, err := s.sum.Precompute(s.KMin, s.KMax, s.Ds, qagview.WithPrecomputeContext(ctx))
	if err != nil {
		s.buildErr = err
		if !errors.Is(err, context.Canceled) {
			// Cancellation is routine eviction cleanup (already counted in
			// Evictions), not a failure signal.
			m.mu.Lock()
			m.stats.BuildErrors++
			m.mu.Unlock()
		}
		return
	}
	s.store = st
	m.resize(s)
	m.saveSnapshot(s, st)
}

// resize re-accounts the session's cache cost once its store exists.
func (m *sessionManager) resize(s *session) {
	m.mu.Lock()
	m.cache.Resize(s.ID, s.sum.ApproxBytes()+s.store.SizeBytes())
	m.mu.Unlock()
}

func (m *sessionManager) snapshotPath(s *session) string {
	return filepath.Join(m.snapshotDir, s.ID+"-"+s.dataFP+".store")
}

func (m *sessionManager) loadSnapshot(s *session) (*qagview.Store, bool) {
	if m.snapshotDir == "" {
		return nil, false
	}
	f, err := os.Open(m.snapshotPath(s))
	if err != nil {
		return nil, false
	}
	defer f.Close()
	st, err := s.sum.DecodeStore(f)
	if err != nil {
		// Stale or foreign snapshot (e.g. the table changed under the same
		// query text): fall back to a fresh sweep, which overwrites it.
		return nil, false
	}
	if st.KMin != s.KMin || st.KMax != s.KMax || len(st.Ds) != len(s.Ds) {
		return nil, false
	}
	for i, d := range st.Ds {
		if s.Ds[i] != d {
			return nil, false
		}
	}
	m.mu.Lock()
	m.stats.SnapshotLoads++
	m.mu.Unlock()
	return st, true
}

func (m *sessionManager) saveSnapshot(s *session, st *qagview.Store) {
	if m.snapshotDir == "" {
		return
	}
	tmp, err := os.CreateTemp(m.snapshotDir, s.ID+".tmp*")
	if err != nil {
		return
	}
	defer os.Remove(tmp.Name())
	if err := st.Encode(tmp); err != nil {
		tmp.Close()
		return
	}
	if err := tmp.Close(); err != nil {
		return
	}
	if err := os.Rename(tmp.Name(), m.snapshotPath(s)); err != nil {
		return
	}
	m.mu.Lock()
	m.stats.SnapshotSaves++
	m.mu.Unlock()
}

// occupancy reports the cache gauges for /metrics.
func (m *sessionManager) occupancy() (entries int, bytes int64, stats managerStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cache.Len(), m.cache.Bytes(), m.stats
}

// close cancels every live session's background work.
func (m *sessionManager) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.cache.Len() > 0 {
		m.cache.removeElement(m.cache.ll.Back())
	}
}
