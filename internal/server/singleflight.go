package server

import "sync"

// flightGroup is a minimal singleflight: concurrent Do calls that share a
// key share one execution of fn. Session creation uses it so a burst of
// identical (query, L, grid) requests builds one Summarizer, not one per
// caller.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  any
	err  error
	dups int // callers sharing this result, for tests and metrics
}

// Do executes fn once per in-flight key; duplicate callers block until the
// owner finishes and receive its result. shared reports whether the caller
// received another call's result instead of running fn itself.
func (g *flightGroup) Do(key string, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		c.dups++
		g.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}
