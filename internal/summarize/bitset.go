package summarize

// bitset is a fixed-size bitmap over tuple indices.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) has(i int32) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

func (b bitset) set(i int32) { b[i>>6] |= 1 << (uint(i) & 63) }

func (b bitset) unset(i int32) { b[i>>6] &^= 1 << (uint(i) & 63) }

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}
