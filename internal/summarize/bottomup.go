package summarize

import (
	"qagview/internal/lattice"
	"qagview/internal/pattern"
)

// pairInfo is one candidate merge between two clusters of the working
// solution. lca is the id of their LCA cluster, computed lazily (-1 until
// first evaluation).
type pairInfo struct {
	a, b int32
	lca  int32
	dist int32
}

// pairSet incrementally maintains the candidate merge pairs over the working
// solution: pairs whose endpoints left the solution are dropped lazily, and
// merging appends pairs between the merged cluster and the survivors. This
// avoids recomputing the quadratic pair set every greedy round. The pairs
// buffer is retained across init calls, so a pooled replay state rebuilds
// its pair set without reallocating.
type pairSet struct {
	ws    *workset
	pairs []pairInfo
}

func newPairSet(ws *workset) *pairSet {
	ps := &pairSet{}
	ps.init(ws)
	return ps
}

// init rebuilds the pair set over ws's current solution, reusing the pairs
// buffer.
func (ps *pairSet) init(ws *workset) {
	ps.ws = ws
	ps.pairs = ps.pairs[:0]
	for i, a := range ws.ids {
		for _, b := range ws.ids[i+1:] {
			ps.pairs = append(ps.pairs, pairInfo{
				a: a, b: b, lca: -1,
				dist: int32(ws.ix.Distance(a, b)),
			})
		}
	}
}

// sortedIDs returns a fresh copy of the current solution's cluster ids,
// ascending, for callers that outlive the workset's next mutation (sweep
// snapshots).
func sortedIDs(ws *workset) []int32 {
	return append([]int32(nil), ws.ids...)
}

// evaluator scores a candidate merged cluster; higher is better. The
// standard UpdateSolution criterion is the tentative solution average
// (ws.evalAdd); the max-LCA variant uses the LCA's own average.
type evaluator func(lca *lattice.Cluster) float64

// best scans the live pairs, compacting out dead ones, and returns the pair
// maximizing eval among those passing the filter (nil filter accepts all
// pairs, as in the second phase of Algorithm 1). ok is false when no live
// pair passes the filter. The LCA of a pair is filled lazily, only once a
// pair survives compaction and passes the filter for the first time.
func (ps *pairSet) best(filter func(dist int) bool, eval evaluator) (pairInfo, bool) {
	alive := ps.pairs[:0]
	var best pairInfo
	bestVal := 0.0
	found := false
	for _, pi := range ps.pairs {
		if !ps.ws.has(pi.a) || !ps.ws.has(pi.b) {
			continue // an endpoint was merged away; drop the pair
		}
		if filter == nil || filter(int(pi.dist)) {
			if pi.lca < 0 {
				id, err := ps.ws.lca.LCAID(pi.a, pi.b)
				if err != nil {
					// Clusters in a workset always come from its index; treat a
					// miss as impossible-by-construction.
					panic(err)
				}
				pi.lca = id
			}
			v := eval(ps.ws.ix.Cluster(pi.lca))
			if !found || v > bestVal {
				found = true
				bestVal = v
				best = pi
			}
		}
		alive = append(alive, pi)
	}
	ps.pairs = alive
	return best, found
}

// merge applies the chosen pair: replaces its endpoints (and anything the
// LCA covers) with the LCA cluster and adds candidate pairs between the new
// cluster and the survivors.
func (ps *pairSet) merge(pi pairInfo) error {
	a, b := ps.ws.ix.Cluster(pi.a), ps.ws.ix.Cluster(pi.b)
	lca, _, err := ps.ws.merge(a, b)
	if err != nil {
		return err
	}
	for _, id := range ps.ws.ids {
		if id == lca.ID {
			continue
		}
		x, y := lca.ID, id
		if x > y {
			x, y = y, x
		}
		ps.pairs = append(ps.pairs, pairInfo{
			a: x, b: y, lca: -1,
			dist: int32(ps.ws.ix.Distance(lca.ID, id)),
		})
	}
	return nil
}

// bottomUpPhases runs the two phases of Algorithm 1 on the current working
// solution: first merge pairs violating the distance constraint, then merge
// down to the size constraint. eval scores candidate merges.
func bottomUpPhases(ws *workset, p Params, eval evaluator) error {
	ps := newPairSet(ws)
	// Phase 1: enforce pairwise distance >= D.
	for {
		pi, ok := ps.best(func(d int) bool { return d < p.D }, eval)
		if !ok {
			break
		}
		if err := ps.merge(pi); err != nil {
			return err
		}
	}
	// Phase 2: enforce |O| <= k, considering all pairs.
	for ws.size() > p.K {
		pi, ok := ps.best(nil, eval)
		if !ok {
			break
		}
		if err := ps.merge(pi); err != nil {
			return err
		}
	}
	return nil
}

// BottomUp is Algorithm 1: start from the top-L singleton clusters and
// greedily merge, first to satisfy the distance constraint, then the size
// constraint, choosing at each step the merge that maximizes the tentative
// solution average.
func BottomUp(ix *lattice.Index, p Params, opts ...Option) (*Solution, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if err := p.Validate(ix); err != nil {
		return nil, err
	}
	ws := newWorkset(ix, cfg.delta)
	ws.obj = cfg.obj
	for rank := 0; rank < p.L; rank++ {
		ws.add(ix.Singleton(rank))
	}
	if err := bottomUpPhases(ws, p, ws.evalAdd); err != nil {
		return nil, err
	}
	return finish(ws, &cfg), nil
}

// BottomUpMaxLCA is the Section 5.1 variant that greedily merges the pair
// whose LCA has the maximum own average, instead of maximizing the overall
// solution average. The paper found it comparable or worse; it is kept for
// the ablation experiments.
func BottomUpMaxLCA(ix *lattice.Index, p Params, opts ...Option) (*Solution, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if err := p.Validate(ix); err != nil {
		return nil, err
	}
	ws := newWorkset(ix, cfg.delta)
	ws.obj = cfg.obj
	for rank := 0; rank < p.L; rank++ {
		ws.add(ix.Singleton(rank))
	}
	if err := bottomUpPhases(ws, p, func(lca *lattice.Cluster) float64 { return lca.Avg() }); err != nil {
		return nil, err
	}
	return finish(ws, &cfg), nil
}

// levelStartLevel clamps the seed level of BottomUpLevelStart to [0, m]: the
// variant seeds with each top tuple's ancestor at level D-1, which is below
// the lattice for D = 0 and above it for D > m+1 (parameter validation keeps
// public callers at D <= m, but the clamp makes the helper total).
func levelStartLevel(D, m int) int {
	level := D - 1
	if level < 0 {
		level = 0
	}
	if level > m {
		level = m
	}
	return level
}

// BottomUpLevelStart is the Section 5.1 variant that seeds the working
// solution with, for each top-L tuple, its ancestor at level D-1 (which
// already satisfies the distance constraint between distinct seeds derived
// from the monotonicity property), then runs the two phases.
func BottomUpLevelStart(ix *lattice.Index, p Params, opts ...Option) (*Solution, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if err := p.Validate(ix); err != nil {
		return nil, err
	}
	level := levelStartLevel(p.D, ix.Space.M())
	ws := newWorkset(ix, cfg.delta)
	ws.obj = cfg.obj
	for rank := 0; rank < p.L; rank++ {
		t := ix.Space.Tuples[rank]
		anc := t.Clone()
		// Deterministically star the trailing `level` attributes.
		for j := len(anc) - level; j < len(anc); j++ {
			anc[j] = pattern.Star
		}
		c, ok := ix.Lookup(anc)
		if !ok {
			// Ancestors of top-L tuples are always generated.
			panic("summarize: level-start ancestor missing from index")
		}
		// Skip seeds covered by an existing seed to keep the antichain.
		skip := false
		for _, id := range ws.ids {
			if ws.ix.Covers(id, c.ID) {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		ws.add(c)
	}
	if err := bottomUpPhases(ws, p, ws.evalAdd); err != nil {
		return nil, err
	}
	return finish(ws, &cfg), nil
}
