package summarize

import (
	"fmt"

	"qagview/internal/lattice"
	"qagview/internal/pattern"
)

// DefaultBruteForceBudget bounds the number of search nodes BruteForce
// explores before giving up. The paper's brute force needed hours already at
// k = 4 (Section 7.1); the budget keeps the exact solver usable for the
// small instances where it is meaningful.
const DefaultBruteForceBudget = 50_000_000

// ErrBudgetExceeded reports that the exact search exceeded its node budget.
var ErrBudgetExceeded = fmt.Errorf("summarize: brute-force node budget exceeded")

// BruteForce finds the exact Max-Avg optimum by branch-and-bound over the
// generated cluster space. The search branches on clusters covering the
// first uncovered top-L tuple, and once coverage is complete tries feasible
// extensions in id order. It is exponential; use it only for small L and k
// (the Figure 5 comparison uses L = 5, k <= 4).
func BruteForce(ix *lattice.Index, p Params) (*Solution, error) {
	return BruteForceBudget(ix, p, DefaultBruteForceBudget)
}

// BruteForceBudget is BruteForce with an explicit node budget.
func BruteForceBudget(ix *lattice.Index, p Params, budget int) (*Solution, error) {
	if err := p.Validate(ix); err != nil {
		return nil, err
	}
	// coverers[rank] lists clusters covering the rank-th top tuple.
	coverers := make([][]int32, p.L)
	for ci := range ix.Clusters {
		c := &ix.Clusters[ci]
		for _, t := range c.Cov {
			if int(t) < p.L {
				coverers[t] = append(coverers[t], c.ID)
			}
		}
	}
	s := &bfSearch{
		ix:      ix,
		p:       p,
		cov:     coverers,
		covered: newBitset(ix.Space.N()),
		budget:  budget,
	}
	if err := s.dfs(); err != nil {
		return nil, err
	}
	if s.best == nil {
		return nil, fmt.Errorf("summarize: no feasible solution found (k=%d, L=%d, D=%d)", p.K, p.L, p.D)
	}
	return newSolution(ix, s.best), nil
}

type bfSearch struct {
	ix  *lattice.Index
	p   Params
	cov [][]int32

	chosen    []*lattice.Cluster
	covered   bitset // covered tuples (whole space)
	topMask   uint64 // covered top-L tuples (L <= 64 enforced below)
	sum       float64
	cnt       int
	nodes     int
	budget    int
	best      []*lattice.Cluster
	bestAvg   float64
	haveSolve bool
}

// feasibleWith reports whether c can join the chosen set: pairwise distance
// >= D and incomparable with every chosen cluster.
func (s *bfSearch) feasibleWith(c *lattice.Cluster) bool {
	for _, o := range s.chosen {
		if pattern.Distance(c.Pat, o.Pat) < s.p.D {
			return false
		}
		if pattern.Comparable(c.Pat, o.Pat) {
			return false
		}
	}
	return true
}

// push adds c and returns the undo list of newly covered tuples.
func (s *bfSearch) push(c *lattice.Cluster) []int32 {
	var newly []int32
	for _, t := range c.Cov {
		if !s.covered.has(t) {
			s.covered.set(t)
			s.sum += s.ix.Space.Vals[t]
			s.cnt++
			newly = append(newly, t)
			if int(t) < s.p.L {
				s.topMask |= 1 << uint(t)
			}
		}
	}
	s.chosen = append(s.chosen, c)
	return newly
}

func (s *bfSearch) pop(c *lattice.Cluster, newly []int32) {
	s.chosen = s.chosen[:len(s.chosen)-1]
	for _, t := range newly {
		s.covered[t>>6] &^= 1 << (uint(t) & 63)
		s.sum -= s.ix.Space.Vals[t]
		s.cnt--
		if int(t) < s.p.L {
			s.topMask &^= 1 << uint(t)
		}
	}
}

func (s *bfSearch) record() {
	if s.cnt == 0 {
		return
	}
	avg := s.sum / float64(s.cnt)
	if !s.haveSolve || avg > s.bestAvg {
		s.haveSolve = true
		s.bestAvg = avg
		s.best = append(s.best[:0], s.chosen...)
	}
}

func (s *bfSearch) dfs() error {
	if s.p.L > 64 {
		return fmt.Errorf("summarize: brute force supports L <= 64, got %d", s.p.L)
	}
	full := uint64(1)<<uint(s.p.L) - 1
	var rec func(minExt int32) error
	rec = func(minExt int32) error {
		s.nodes++
		if s.nodes > s.budget {
			return ErrBudgetExceeded
		}
		if s.topMask == full {
			s.record()
			if len(s.chosen) == s.p.K {
				return nil
			}
			// Extension phase: add feasible clusters in id order. Extensions
			// can only help by raising the average with high-valued
			// redundant tuples.
			for id := minExt; id < int32(s.ix.NumClusters()); id++ {
				c := s.ix.Cluster(id)
				if !s.feasibleWith(c) {
					continue
				}
				newly := s.push(c)
				if err := rec(id + 1); err != nil {
					return err
				}
				s.pop(c, newly)
			}
			return nil
		}
		if len(s.chosen) == s.p.K {
			return nil // cannot cover the rest
		}
		// Branch on clusters covering the first uncovered top tuple.
		var rank int
		for rank = 0; rank < s.p.L; rank++ {
			if s.topMask&(1<<uint(rank)) == 0 {
				break
			}
		}
		for _, id := range s.cov[rank] {
			c := s.ix.Cluster(id)
			if !s.feasibleWith(c) {
				continue
			}
			newly := s.push(c)
			if err := rec(0); err != nil {
				return err
			}
			s.pop(c, newly)
		}
		return nil
	}
	return rec(0)
}
